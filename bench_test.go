// Benchmarks regenerating the paper's evaluation, one per figure (see
// DESIGN.md §5 and EXPERIMENTS.md). Each benchmark runs the corresponding
// experiment at quick scale per iteration; run with
//
//	go test -bench=. -benchmem
//
// plus micro-benchmarks of the pipeline stages (matrix generation, pruning,
// precision reduction, sampling).
package corgi

import (
	"encoding/json"
	"math/rand"
	"testing"

	"corgi/internal/experiments"
	"corgi/internal/proto"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := &experiments.Config{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Convergence regenerates Fig. 9 (Algorithm-1 convergence).
func BenchmarkFig9Convergence(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10aGraphApproxTime regenerates Fig. 10(a) (runtime with vs
// without the graph approximation).
func BenchmarkFig10aGraphApproxTime(b *testing.B) { benchExperiment(b, "fig10a") }

// BenchmarkFig10bConstraintCount regenerates Fig. 10(b) (constraint counts).
func BenchmarkFig10bConstraintCount(b *testing.B) { benchExperiment(b, "fig10b") }

// BenchmarkFig11PrivacyParams regenerates Fig. 11 (quality loss vs epsilon
// and delta).
func BenchmarkFig11PrivacyParams(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12PruneViolations regenerates Fig. 12 (violations vs pruned
// locations).
func BenchmarkFig12PruneViolations(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13PrivacyLevel regenerates Fig. 13 (quality loss vs privacy
// level).
func BenchmarkFig13PrivacyLevel(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14PrecisionReduction regenerates Fig. 14 (precision reduction
// vs matrix recalculation).
func BenchmarkFig14PrecisionReduction(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkHeadline regenerates the abstract's headline violation numbers.
func BenchmarkHeadline(b *testing.B) { benchExperiment(b, "headline") }

// --- micro-benchmarks of the pipeline stages ---

func benchSetup(b *testing.B) (*Region, *Priors, *Forest) {
	b.Helper()
	region, err := NewRegion(SanFrancisco.Center(), 0.1, 2)
	if err != nil {
		b.Fatal(err)
	}
	priors := UniformPriors(region.Tree)
	targets, err := RandomLeafTargets(region.Tree, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	server, err := NewServer(region, priors, targets, Params{
		Epsilon: 15, Iterations: 2, UseGraphApprox: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	forest, err := server.GenerateForest(1, 2)
	if err != nil {
		b.Fatal(err)
	}
	return region, priors, forest
}

// BenchmarkGenerateMatrixK7 measures one non-robust matrix generation for a
// 7-cell subtree (the privacy-level-1 unit of work).
func BenchmarkGenerateMatrixK7(b *testing.B) {
	region, priors, _ := benchSetup(b)
	targets, _ := RandomLeafTargets(region.Tree, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server, err := NewServer(region, priors, targets, Params{
			Epsilon: 15, Iterations: 1, UseGraphApprox: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := server.GenerateEntry(region.Tree.LevelNodes(1)[0], 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGenerateForest measures a full privacy-level-1 forest generation
// (7 independent subtree LP solves on the height-2 tree) at a given engine
// worker count. A fresh server per iteration defeats the cache, so each
// iteration pays the real solve cost; comparing Workers=1 against Workers=4
// shows the worker-pool speedup.
func benchGenerateForest(b *testing.B, workers int) {
	region, err := NewRegion(SanFrancisco.Center(), 0.1, 2)
	if err != nil {
		b.Fatal(err)
	}
	priors := UniformPriors(region.Tree)
	targets, err := RandomLeafTargets(region.Tree, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ServerConfig{
		Params: Params{Epsilon: 15, Iterations: 2, UseGraphApprox: true},
		Engine: EngineOptions{Workers: workers},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server, err := NewServerWithConfig(region, priors, targets, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := server.GenerateForest(1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateForestWorkers1(b *testing.B) { benchGenerateForest(b, 1) }
func BenchmarkGenerateForestWorkers2(b *testing.B) { benchGenerateForest(b, 2) }
func BenchmarkGenerateForestWorkers4(b *testing.B) { benchGenerateForest(b, 4) }

// BenchmarkGenerateForestCached measures the warm path: the whole forest is
// served from the engine's cache.
func BenchmarkGenerateForestCached(b *testing.B) {
	region, priors, _ := benchSetup(b)
	targets, _ := RandomLeafTargets(region.Tree, 10, 1)
	server, err := NewServer(region, priors, targets, Params{
		Epsilon: 15, Iterations: 2, UseGraphApprox: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := server.GenerateForest(1, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.GenerateForest(1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireSetup builds the 49x49 root forest for encoding benchmarks.
func benchWireSetup(b *testing.B) (*Region, *Forest) {
	b.Helper()
	region, priors, _ := benchSetup(b)
	targets, _ := RandomLeafTargets(region.Tree, 10, 1)
	server, err := NewServer(region, priors, targets, Params{
		Epsilon: 15, Iterations: 1, UseGraphApprox: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	forest, err := server.GenerateForest(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	return region, forest
}

// BenchmarkWireEncodeV1 measures dense-JSON forest encoding and reports the
// payload size.
func BenchmarkWireEncodeV1(b *testing.B) {
	region, forest := benchWireSetup(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		resp, err := proto.EncodeForestV1(region.Tree, forest)
		if err != nil {
			b.Fatal(err)
		}
		buf, err := json.Marshal(resp)
		if err != nil {
			b.Fatal(err)
		}
		n = len(buf)
	}
	b.ReportMetric(float64(n), "payload-bytes")
}

// BenchmarkWireEncodeV2 measures the compact quantized row-sparse encoding
// and reports the payload size for comparison with v1.
func BenchmarkWireEncodeV2(b *testing.B) {
	region, forest := benchWireSetup(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		resp, err := proto.EncodeForestV2(region.Tree, forest)
		if err != nil {
			b.Fatal(err)
		}
		buf, err := json.Marshal(resp)
		if err != nil {
			b.Fatal(err)
		}
		n = len(buf)
	}
	b.ReportMetric(float64(n), "payload-bytes")
}

// BenchmarkObfuscate measures the full user-side pipeline (Algorithm 4)
// against a prebuilt forest.
func BenchmarkObfuscate(b *testing.B) {
	region, priors, forest := benchSetup(b)
	pol := Policy{PrivacyLevel: 1, PrecisionLevel: 0}
	rng := rand.New(rand.NewSource(1))
	real := SanFrancisco.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Obfuscate(region, forest, real, pol, nil, priors, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatrixPrune measures pruning 2 of 49 locations.
func BenchmarkMatrixPrune(b *testing.B) {
	region, priors, _ := benchSetup(b)
	targets, _ := RandomLeafTargets(region.Tree, 10, 1)
	server, err := NewServer(region, priors, targets, Params{
		Epsilon: 15, Iterations: 1, UseGraphApprox: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	entry, err := server.GenerateEntry(region.Tree.Root(), 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := entry.Matrix.Prune([]int{3, 17}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrecisionReduce measures Equ. (17) for 49 leaves -> 7 nodes.
func BenchmarkPrecisionReduce(b *testing.B) {
	region, priors, forest := benchSetup(b)
	pol := Policy{PrivacyLevel: 1, PrecisionLevel: 0}
	_ = pol
	_ = forest
	targets, _ := RandomLeafTargets(region.Tree, 10, 1)
	server, err := NewServer(region, priors, targets, Params{
		Epsilon: 15, Iterations: 1, UseGraphApprox: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	entry, err := server.GenerateEntry(region.Tree.Root(), 0)
	if err != nil {
		b.Fatal(err)
	}
	// Reuse the user-side full pipeline with precision 1 per iteration.
	fullForest := &Forest{PrivacyLevel: 2, Delta: 0,
		Entries: map[NodeID]*ForestEntry{region.Tree.Root(): entry}}
	rng := rand.New(rand.NewSource(2))
	polP := Policy{PrivacyLevel: 2, PrecisionLevel: 1}
	real := SanFrancisco.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Obfuscate(region, fullForest, real, polP, nil, priors, rng); err != nil {
			b.Fatal(err)
		}
	}
}
