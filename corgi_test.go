package corgi

import (
	"context"
	"math/rand"
	"testing"
)

// TestPublicAPIEndToEnd drives the full published flow: region, dataset,
// priors, metadata, server, forest, customization, reporting.
func TestPublicAPIEndToEnd(t *testing.T) {
	region, err := NewRegion(SanFrancisco.Center(), 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if region.Tree.NumLeaves() != 49 {
		t.Fatalf("height-2 region has %d leaves", region.Tree.NumLeaves())
	}
	cs, err := GenerateCheckIns(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 38523 {
		t.Fatalf("generated %d check-ins, want the paper's 38523", len(cs))
	}
	priors, err := PriorsFromCheckIns(cs, region.Tree)
	if err != nil {
		t.Fatal(err)
	}
	md, err := BuildMetadata(cs, region.Tree)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := RandomLeafTargets(region.Tree, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(region, priors, targets, Params{
		Epsilon: 15, Iterations: 2, UseGraphApprox: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := server.GenerateForest(1, 2)
	if err != nil {
		t.Fatal(err)
	}

	real := SanFrancisco.Center()
	attrs := md.Annotate(0, real)
	notHome, err := ParsePredicate("home != true")
	if err != nil {
		t.Fatal(err)
	}
	pol := Policy{PrivacyLevel: 1, PrecisionLevel: 0, Preferences: []Predicate{notHome}}
	rng := rand.New(rand.NewSource(9))
	out, err := Obfuscate(region, forest, real, pol, attrs, priors, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !region.Tree.Contains(out.Reported) {
		t.Fatalf("reported node %v outside region", out.Reported)
	}
	if out.Reported.Level != 0 {
		t.Fatalf("reported level %d", out.Reported.Level)
	}
	// The reported location must differ from the real one at least
	// sometimes across repeats (it is a distribution, not the identity).
	differs := false
	realLeaf, _ := region.Tree.Locate(real, 0)
	for i := 0; i < 50; i++ {
		o, err := Obfuscate(region, forest, real, pol, attrs, priors, rng)
		if err != nil {
			t.Fatal(err)
		}
		if o.Reported != realLeaf {
			differs = true
		}
	}
	if !differs {
		t.Error("obfuscation never moved the reported location")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := NewRegion(LatLng{Lat: 99, Lng: 0}, 0.1, 2); err == nil {
		t.Error("bad center must fail")
	}
	if _, err := NewRegion(SanFrancisco.Center(), 0, 2); err == nil {
		t.Error("zero spacing must fail")
	}
	if _, err := NewRegion(SanFrancisco.Center(), 0.1, 0); err == nil {
		t.Error("zero height must fail")
	}
	if _, err := NewServer(nil, nil, nil, Params{}); err == nil {
		t.Error("nil region must fail")
	}
	if _, err := Obfuscate(nil, nil, LatLng{}, Policy{}, nil, nil, nil); err == nil {
		t.Error("nil region must fail")
	}
	region, _ := NewRegion(SanFrancisco.Center(), 0.1, 2)
	if _, err := RandomLeafTargets(region.Tree, 0, 1); err == nil {
		t.Error("zero targets must fail")
	}
	if _, err := RandomLeafTargets(region.Tree, 100, 1); err == nil {
		t.Error("too many targets must fail")
	}
}

// TestMultiServerPublicAPI drives the multi-region sharding layer through
// the facade: builtin specs, lazy bootstrap, per-shard forests, stats.
func TestMultiServerPublicAPI(t *testing.T) {
	sf, ok := BuiltinRegion("sf")
	if !ok {
		t.Fatal("builtin sf missing")
	}
	nyc, ok := BuiltinRegion("nyc")
	if !ok {
		t.Fatal("builtin nyc missing")
	}
	for _, spec := range []*RegionSpec{&sf, &nyc} {
		spec.UniformPriors = true // keep the test fast
		spec.Iterations = 1
		spec.Targets = 3
	}
	ms, err := NewMultiServer([]RegionSpec{sf, nyc}, MultiServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ms.DefaultRegion() != "sf" || len(ms.Names()) != 2 {
		t.Fatalf("names %v default %q", ms.Names(), ms.DefaultRegion())
	}
	sh, err := ms.Shard(context.Background(), "nyc")
	if err != nil {
		t.Fatal(err)
	}
	forest, err := sh.Server.GenerateForest(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(forest.Entries) != 7 {
		t.Fatalf("nyc forest has %d entries", len(forest.Entries))
	}
	if ms.Ready("sf") {
		t.Error("sf bootstrapped without being addressed")
	}
	if agg := ms.AggregateStats(); agg.Solves == 0 {
		t.Error("aggregate stats lost the nyc solves")
	}
	if _, err := NewMultiServer(nil, MultiServerConfig{}); err == nil {
		t.Error("empty spec list must fail")
	}
}

func TestHaversineExported(t *testing.T) {
	if Haversine(SanFrancisco.Center(), SanFrancisco.Center()) != 0 {
		t.Error("self distance must be zero")
	}
}
