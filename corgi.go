// Package corgi is the public API of this CORGI implementation —
// "CustOmizable Robust Geo-Indistinguishability" (Pappachan, Qiu,
// Squicciarini, Hunsur Manjunath; EDBT 2023). It generates location
// obfuscation matrices that satisfy epsilon-Geo-Indistinguishability and
// remain private after user-side customization: pruning up to delta
// locations from the obfuscation range and reducing reporting precision
// along a hierarchical location tree.
//
// Typical flow (mirroring Fig. 1 of the paper):
//
//	region, _ := corgi.NewRegion(corgi.SanFrancisco.Center(), 0.1, 2)
//	priors := corgi.UniformPriors(region.Tree)
//	server, _ := corgi.NewServer(region, priors, targets, corgi.Params{
//	    Epsilon: 15, Delta is per-request, Iterations: 10,
//	})
//	forest, _ := server.GenerateForest(privacyLevel, delta)
//	out, _ := corgi.Obfuscate(region, forest, realLocation, policy, attrs, priors, rng)
//	// out.Reported is what the location-based service sees.
//
// The heavy lifting lives in internal packages: internal/lp (a from-scratch
// sparse revised simplex), internal/core (the LP formulation, the
// Dantzig-Wolfe decomposition and Algorithms 1/3/4), internal/hexgrid (an
// aperture-7 hexagonal index substituting Uber H3), internal/obf (pruning,
// precision reduction, audits), internal/gowalla (the dataset substrate),
// and internal/planar + internal/attack (baselines and adversaries).
//
// Forest generation is served by a concurrent engine (see ARCHITECTURE.md):
// independent subtree LP solves fan out across a bounded worker pool,
// concurrent requests for the same (node, delta) share one solve, and
// finished matrices live in a byte-bounded LRU cache. NewServer uses
// engine defaults; NewServerWithConfig tunes workers, cache size, and
// startup warmup, and Server.Stats exposes the engine counters.
package corgi

import (
	"fmt"
	"math/rand"

	"corgi/internal/budget"
	"corgi/internal/clientdraw"
	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
	"corgi/internal/policy"
	"corgi/internal/registry"
	"corgi/internal/session"
	"corgi/internal/store"
	"corgi/internal/stream"
)

// Re-exported fundamental types. Aliases keep the public API a strict view
// of the internal implementation.
type (
	// LatLng is a geographic point in degrees.
	LatLng = geo.LatLng
	// BoundingBox is a lat/lng rectangle.
	BoundingBox = geo.BoundingBox
	// Tree is the hierarchical location tree of Sec. 3.1.
	Tree = loctree.Tree
	// NodeID identifies a tree node (level + hex cell).
	NodeID = loctree.NodeID
	// Priors is a prior distribution over tree leaves with per-level
	// aggregation.
	Priors = loctree.Priors
	// Policy is the customization triple <Privacy_l, Precision_l,
	// User_Preferences> of Sec. 3.2.
	Policy = policy.Policy
	// Predicate is one Boolean preference <var, op, val>.
	Predicate = policy.Predicate
	// Attributes carries a location's metadata for predicate evaluation.
	Attributes = policy.Attributes
	// Params tunes matrix generation (epsilon, delta, Algorithm-1 rounds).
	Params = core.Params
	// EngineOptions tunes the concurrent generation engine (workers, cache).
	EngineOptions = core.EngineOptions
	// EngineStats snapshots the engine's cache and solve counters.
	EngineStats = core.EngineStats
	// Server is the CORGI server (Algorithm 3).
	Server = core.Server
	// Forest is a privacy forest: one robust matrix per privacy-level node.
	Forest = core.Forest
	// ForestEntry is one subtree's matrix.
	ForestEntry = core.ForestEntry
	// Outcome reports one user-side obfuscation (Algorithm 4).
	Outcome = core.Outcome
	// Matrix is a row-stochastic obfuscation matrix.
	Matrix = obf.Matrix
	// Pair is an ordered Geo-Ind constraint pair (used for audits).
	Pair = obf.Pair
	// ViolationReport summarizes a Geo-Ind audit.
	ViolationReport = obf.ViolationReport
	// CheckIn is one Gowalla-format check-in record.
	CheckIn = gowalla.CheckIn
	// Metadata holds the per-user/per-cell policy heuristics of Sec. 6.1.
	Metadata = gowalla.Metadata
	// RegionSpec declares one named region of a multi-region deployment
	// (center, tree shape, generation parameters, prior source).
	RegionSpec = registry.Spec
	// RegionShard is one bootstrapped region: its spec plus its serving
	// engine (tree and priors are reachable through Shard.Server).
	RegionShard = registry.Shard
	// MultiServer is the multi-region sharding layer: named regions, one
	// engine shard each, bootstrapped lazily on first use.
	MultiServer = registry.Registry
	// ReportSession is a bound per-user report stream: one forest entry,
	// one evaluated policy, one seeded RNG, O(1) alias-table draws. It is
	// mobility-aware: ReportSession.Rebind re-anchors it onto the forest
	// entry covering a moved user's new location without resetting the RNG
	// stream.
	ReportSession = session.Session
	// ReportSessionConfig configures NewReportSession.
	ReportSessionConfig = session.Config
	// ReportSessionRebind carries the new subtree binding for
	// ReportSession.Rebind (the mobility move).
	ReportSessionRebind = session.Rebind
	// BudgetConfig tunes per-user epsilon-budget accounting (sliding
	// window, per-window cap, tracked-user bound).
	BudgetConfig = budget.Config
	// BudgetAccountant tracks per-user epsilon spend under linear
	// composition over a sliding window.
	BudgetAccountant = budget.Accountant
	// StreamServer serves the report pipeline over the corgi-stream binary
	// transport (length-prefixed frames on persistent TCP), answering from
	// the same MultiServer as the HTTP routes.
	StreamServer = stream.Server
	// StreamServerConfig tunes a StreamServer (batch/count limits,
	// per-request timeout, frame-size cap).
	StreamServerConfig = stream.Config
	// StreamClient is the pooling, auto-reconnecting corgi-stream client.
	StreamClient = stream.Client
	// StreamClientConfig tunes a StreamClient.
	StreamClientConfig = stream.ClientConfig
	// StreamRequest is one report request on the stream wire; it mirrors
	// the HTTP ReportRequest field for field.
	StreamRequest = stream.Request
	// StreamResponse is one report response on the stream wire.
	StreamResponse = stream.Response
	// StreamStatusError is an application-level stream failure carrying the
	// same HTTP-equivalent status the JSON routes would have answered.
	StreamStatusError = stream.StatusError
	// LeaseRequest asks the registry for a client-side draw lease: one
	// epsilon charge pre-pays a whole draw cap, and the grant carries the
	// user's customized distribution rows plus a signed token.
	LeaseRequest = registry.LeaseRequest
	// LeaseGrant is an issued draw lease (token + bundle + the
	// customization facts a report response would carry).
	LeaseGrant = registry.LeaseGrant
	// LeaseStats snapshots lease issuance/denial counters.
	LeaseStats = registry.LeaseStats
	// LeaseToken is the authenticated claim set inside a lease token
	// (user, subtree, epsilon rate, draw cap, RNG position, expiry).
	LeaseToken = budget.LeaseToken
	// LeaseKeyring signs and verifies lease tokens with per-user
	// HMAC-SHA256 keys derived from one master secret.
	LeaseKeyring = budget.Keyring
	// ClientLease replays the server's exact draw sequence on the device
	// from a lease grant; open one with OpenClientLease.
	ClientLease = clientdraw.Lease
)

// ErrBudgetExhausted marks a report rejected because drawing it would push
// the user's epsilon spend over their sliding-window cap (the serving
// stack answers 429 Too Many Requests).
var ErrBudgetExhausted = budget.ErrBudgetExhausted

// ErrBadLeaseToken marks a forged, tampered, or expired lease token (the
// serving stack answers 403 Forbidden).
var ErrBadLeaseToken = budget.ErrBadLeaseToken

// ErrLeaseExhausted marks a client-side draw past a lease's pre-paid cap;
// renew the lease (its token rides along) to continue the stream.
var ErrLeaseExhausted = clientdraw.ErrLeaseExhausted

// OpenClientLease opens a granted draw lease for on-device sampling: it
// rebuilds the server's alias tables from the bundle's exact weights and
// positions the RNG stream so every draw is byte-identical to what the
// server would have produced for the same seed.
func OpenClientLease(tree *Tree, g *LeaseGrant) (*ClientLease, error) {
	if g == nil {
		return nil, fmt.Errorf("corgi: nil lease grant")
	}
	return clientdraw.Open(tree, g.Bundle, g.Token)
}

// NewBudgetAccountant builds a sliding-window per-user epsilon accountant;
// cfg.LimitEps must be positive.
func NewBudgetAccountant(cfg BudgetConfig) (*BudgetAccountant, error) {
	return budget.NewAccountant(cfg)
}

// SanFrancisco is the paper's evaluation region.
var SanFrancisco = geo.SanFrancisco

// Haversine returns the great-circle distance between two points in km.
func Haversine(a, b LatLng) float64 { return geo.Haversine(a, b) }

// ParsePredicate parses "var op value" (e.g. "home != true",
// "distance <= 5").
func ParsePredicate(s string) (Predicate, error) { return policy.ParsePredicate(s) }

// Region bundles a hexagonal system and its location tree.
type Region struct {
	System *hexgrid.System
	Tree   *loctree.Tree
}

// NewRegion builds a height-`height` location tree of hexagonal cells with
// the given leaf center spacing (km), rooted at the cell containing center.
// A height-2 tree has 49 leaves; height 3 has 343 (the paper's setup).
func NewRegion(center LatLng, leafSpacingKm float64, height int) (*Region, error) {
	sys, err := hexgrid.NewSystem(center, leafSpacingKm)
	if err != nil {
		return nil, err
	}
	tree, err := loctree.NewAt(sys, center, height)
	if err != nil {
		return nil, err
	}
	return &Region{System: sys, Tree: tree}, nil
}

// UniformPriors returns the uniform leaf distribution for a tree.
func UniformPriors(t *Tree) *Priors { return loctree.UniformPriors(t) }

// PriorsFromCheckIns counts check-ins per leaf (add-one smoothed), the
// paper's prior construction (Sec. 6.1).
func PriorsFromCheckIns(cs []CheckIn, t *Tree) (*Priors, error) {
	leaf, err := gowalla.LeafPriors(cs, t, 1)
	if err != nil {
		return nil, err
	}
	return loctree.NewPriors(t, leaf)
}

// GenerateCheckIns produces the synthetic Gowalla-style San Francisco
// sample (38,523 check-ins by default; see internal/gowalla for the
// generator's fidelity notes).
func GenerateCheckIns(seed int64) ([]CheckIn, error) {
	ds, err := gowalla.Generate(gowalla.GenConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	return ds.CheckIns, nil
}

// LoadCheckIns parses the real Gowalla check-in file format.
func LoadCheckIns(path string) ([]CheckIn, error) { return gowalla.LoadFile(path) }

// BuildMetadata derives home/office/outlier/popular heuristics from
// check-ins for policy construction.
func BuildMetadata(cs []CheckIn, t *Tree) (*Metadata, error) {
	return gowalla.BuildMetadata(cs, t, 0.2)
}

// ServerConfig bundles generation parameters with engine tuning for
// NewServerWithConfig.
type ServerConfig struct {
	// Params tunes matrix generation; Delta is ignored (per-request).
	Params Params
	// Engine tunes concurrency and caching; the zero value uses defaults
	// (GOMAXPROCS workers, a 256 MiB cache).
	Engine EngineOptions
}

// NewServer constructs the CORGI server over a region with default engine
// options. targets are the service locations Q of Equ. (6); params.Delta is
// ignored (chosen per request).
func NewServer(r *Region, priors *Priors, targets []LatLng, params Params) (*Server, error) {
	return NewServerWithConfig(r, priors, targets, ServerConfig{Params: params})
}

// NewServerWithConfig is NewServer with explicit engine tuning.
func NewServerWithConfig(r *Region, priors *Priors, targets []LatLng, cfg ServerConfig) (*Server, error) {
	if r == nil {
		return nil, fmt.Errorf("corgi: nil region")
	}
	probs := make([]float64, len(targets))
	for i := range probs {
		probs[i] = 1
	}
	return core.NewServerWithOptions(r.Tree, priors, targets, probs, cfg.Params, cfg.Engine)
}

// MultiServerConfig tunes a multi-region deployment.
type MultiServerConfig struct {
	// Engine tunes each region's shard (workers, cache bytes); every
	// shard gets its own worker pool and cache of this shape. Engine.Store
	// must be nil here — it has no region namespacing; use StoreDir, which
	// keys each shard's snapshots by its region's spec hash.
	Engine EngineOptions
	// WarmupDelta > 0 precomputes every (level, delta <= WarmupDelta)
	// forest right after a shard bootstraps; 0 (and negatives) disable
	// warmup. (Warming only delta 0 is possible via the internal
	// registry, which cmd/corgi-server uses.)
	WarmupDelta int
	// StoreDir, when non-empty, attaches the persistent forest store at
	// that directory: shards hydrate from snapshots when they bootstrap
	// (a restart over a populated store serves precomputed forests with
	// zero LP solves) and newly solved forests write back asynchronously,
	// keyed by each region's spec hash so spec changes invalidate stale
	// snapshots. Populate a store offline with cmd/corgi-gen.
	StoreDir string
	// Budget, when Budget.LimitEps > 0, enables per-user epsilon-budget
	// accounting on the report pipeline: each draw charges the region's
	// epsilon against the user's sliding-window cap, and over-cap users
	// are rejected with ErrBudgetExhausted (429 on the wire).
	Budget BudgetConfig
}

// NewMultiServer builds the multi-region sharding layer over a set of
// region specs: each region gets its own location tree, priors, service
// targets, and generation engine, bootstrapped lazily (and exactly once,
// even under concurrent first requests) when first addressed. The first
// spec is the default region for requests that name none. Builtin metro
// specs are available via BuiltinRegion.
func NewMultiServer(specs []RegionSpec, cfg MultiServerConfig) (*MultiServer, error) {
	warmup := -1
	if cfg.WarmupDelta > 0 {
		warmup = cfg.WarmupDelta
	}
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir); err != nil {
			return nil, err
		}
	}
	return registry.New(specs, registry.Options{
		Engine: cfg.Engine, WarmupDelta: warmup, Store: st, Budget: cfg.Budget,
	})
}

// NewStreamServer builds a corgi-stream transport server over a
// MultiServer; serve it on a net.Listener with StreamServer.Serve and
// drain it with StreamServer.Shutdown.
func NewStreamServer(ms *MultiServer, cfg StreamServerConfig) (*StreamServer, error) {
	return stream.NewServer(ms, cfg)
}

// NewStreamClient builds a corgi-stream client for addr ("host:port").
// Connections dial lazily, pool after use, and failed pooled exchanges
// retry once on a fresh connection.
func NewStreamClient(addr string, cfg StreamClientConfig) *StreamClient {
	return stream.NewClient(addr, cfg)
}

// BuiltinRegion returns the builtin spec for a metro name ("sf", "nyc",
// "la", ...); see BuiltinRegionNames for the full list.
func BuiltinRegion(name string) (RegionSpec, bool) { return registry.BuiltinSpec(name) }

// BuiltinRegionNames lists the builtin metro names.
func BuiltinRegionNames() []string { return registry.BuiltinNames() }

// Obfuscate runs the user-side pipeline (Algorithm 4): locate the subtree,
// evaluate preferences, prune, reduce precision, sample. Each call
// re-derives the customized matrix; for repeated reports under one policy,
// NewReportSession amortizes the customization and draws in O(1).
func Obfuscate(r *Region, forest *Forest, real LatLng, pol Policy,
	attrs map[NodeID]Attributes, priors *Priors, rng *rand.Rand) (*Outcome, error) {
	if r == nil {
		return nil, fmt.Errorf("corgi: nil region")
	}
	return core.GenerateObfuscatedLocation(r.Tree, forest, real, pol, attrs, priors, rng)
}

// NewReportSession binds a per-user report session: preferences are
// evaluated once, |S| is verified against the forest entry's reserved
// prune budget, and every draw is O(1) via cached Walker alias tables —
// the row-wise hot path the serving stack's POST /v1/report uses. Draw
// sequences are deterministic per Config.Seed.
func NewReportSession(cfg ReportSessionConfig) (*ReportSession, error) {
	return session.New(cfg)
}

// RandomLeafTargets picks n distinct leaf centers as service targets, the
// paper's NR_TARGET protocol.
func RandomLeafTargets(t *Tree, n int, seed int64) ([]LatLng, error) {
	leaves := t.LevelNodes(0)
	if n < 1 || n > len(leaves) {
		return nil, fmt.Errorf("corgi: %d targets from %d leaves", n, len(leaves))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(leaves))[:n]
	out := make([]LatLng, n)
	for i, idx := range perm {
		out[i] = t.Center(leaves[idx])
	}
	return out, nil
}
