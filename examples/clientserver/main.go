// Clientserver: the full untrusted-server architecture of Sec. 5 running
// in one process over real HTTP on localhost. The "cloud" half owns the
// tree and solves the LPs; the "device" half reveals only (privacy level,
// |S|), rebuilds the forest from the wire format, and customizes locally.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/proto"
)

func main() {
	// ---- cloud side ----
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		log.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := gowalla.Generate(gowalla.GenConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := gowalla.LeafPriors(ds.CheckIns, tree, 1)
	if err != nil {
		log.Fatal(err)
	}
	priors, err := loctree.NewPriors(tree, leaf)
	if err != nil {
		log.Fatal(err)
	}
	leaves := tree.LevelNodes(0)
	targets := []geo.LatLng{tree.Center(leaves[3]), tree.Center(leaves[24]), tree.Center(leaves[44])}
	srv, err := core.NewServer(tree, priors, targets, []float64{1, 1, 1}, core.Params{
		Epsilon: 15, Iterations: 2, UseGraphApprox: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	handler, err := proto.NewHandler(srv, priors, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, handler.Mux()); err != nil {
			log.Printf("server stopped: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("cloud: CORGI server listening on", base)

	// ---- device side ----
	client := proto.NewClient(base)
	userTree, info, err := client.FetchTree()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: rebuilt tree (height %d, %d leaves, eps=%g)\n",
		info.Height, userTree.NumLeaves(), info.Epsilon)
	userPriors, err := client.FetchPriors(userTree)
	if err != nil {
		log.Fatal(err)
	}

	real := geo.SanFrancisco.Center()
	// The user wants two specific cells out of the range; only |S| = 2 is
	// sent to the cloud.
	realLeaf, _ := userTree.Locate(real, 0)
	root, _ := userTree.AncestorAt(realLeaf, 1)
	subLeaves := userTree.LeavesUnder(root)
	secret := map[loctree.NodeID]bool{}
	for _, l := range subLeaves {
		if l != realLeaf && len(secret) < 2 {
			secret[l] = true
		}
	}
	attrs := map[loctree.NodeID]policy.Attributes{}
	for _, l := range userTree.LevelNodes(0) {
		attrs[l] = policy.Attributes{"sensitive": policy.Bool(secret[l])}
	}
	pred, err := policy.ParsePredicate("sensitive != true")
	if err != nil {
		log.Fatal(err)
	}
	pol := policy.Policy{PrivacyLevel: 1, PrecisionLevel: 0, Preferences: []policy.Predicate{pred}}

	fmt.Println("device: requesting forest with privacy_l=1 delta=2 (nothing else leaves the device)")
	forest, err := client.FetchForest(userTree, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 3; i++ {
		out, err := core.GenerateObfuscatedLocation(userTree, forest, real, pol, attrs, userPriors, rng)
		if err != nil {
			log.Fatal(err)
		}
		c := userTree.Center(out.Reported)
		fmt.Printf("device: report %d -> %v (%.6f, %.6f), pruned %d sensitive cells\n",
			i+1, out.Reported, c.Lat, c.Lng, len(out.Pruned))
	}
}
