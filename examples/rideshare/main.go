// Rideshare: the paper's motivating service scenario (Sec. 2.2). A rider
// shares an obfuscated pickup area with a ride-hailing service; the service
// estimates travel cost from the reported location. This example measures
// the rider-visible utility loss (Equ. 3: the difference in estimated
// travel distance) across privacy budgets, demonstrating the
// privacy/utility dial the paper's Fig. 11 sweeps.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"corgi"
)

func main() {
	region, err := corgi.NewRegion(corgi.SanFrancisco.Center(), 0.1, 2)
	if err != nil {
		log.Fatal(err)
	}
	checkins, err := corgi.GenerateCheckIns(1)
	if err != nil {
		log.Fatal(err)
	}
	priors, err := corgi.PriorsFromCheckIns(checkins, region.Tree)
	if err != nil {
		log.Fatal(err)
	}
	// Drivers idle at a handful of staging spots: the target set Q.
	stagingSpots, err := corgi.RandomLeafTargets(region.Tree, 8, 99)
	if err != nil {
		log.Fatal(err)
	}

	rider := corgi.SanFrancisco.Center()
	rng := rand.New(rand.NewSource(3))
	pol := corgi.Policy{PrivacyLevel: 2, PrecisionLevel: 0}

	fmt.Println("eps(km^-1)  mean pickup estimation error (km) over 200 reports")
	for _, eps := range []float64{15, 17, 19} {
		server, err := corgi.NewServer(region, priors, stagingSpots, corgi.Params{
			Epsilon: eps, Iterations: 1, UseGraphApprox: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		forest, err := server.GenerateForest(2, 0)
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		const reports = 200
		for i := 0; i < reports; i++ {
			out, err := corgi.Obfuscate(region, forest, rider, pol, nil, priors, rng)
			if err != nil {
				log.Fatal(err)
			}
			reported := region.Tree.Center(out.Reported)
			// The service dispatches from the staging spot nearest the
			// *reported* location; the rider pays the difference between
			// the estimated and true pickup distance (Equ. 3).
			var bestSpot corgi.LatLng
			best := -1.0
			for _, s := range stagingSpots {
				if d := corgi.Haversine(reported, s); best < 0 || d < best {
					best = d
					bestSpot = s
				}
			}
			est := corgi.Haversine(reported, bestSpot)
			truth := corgi.Haversine(rider, bestSpot)
			if est > truth {
				total += est - truth
			} else {
				total += truth - est
			}
		}
		fmt.Printf("%10.0f  %.4f\n", eps, total/reports)
	}
	fmt.Println("\nHigher eps (weaker privacy) -> smaller pickup estimation error,")
	fmt.Println("the trade-off CORGI's Fig. 11 quantifies.")
}
