// Rideshare: the paper's motivating service scenario (Sec. 2.2), served
// over the remote report API. A rider asks a multi-region corgi-server for
// obfuscated pickup reports via POST /v1/report — one privacy-budget
// region per epsilon — and the ride-hailing side estimates travel cost
// from each reported location. The example measures the rider-visible
// utility loss (Equ. 3: the difference in estimated travel distance)
// across privacy budgets, demonstrating the privacy/utility dial the
// paper's Fig. 11 sweeps, now end to end through the serving stack: the
// server evaluates the policy, prunes nothing (no preferences), and draws
// every report from a per-user session with O(1) alias sampling.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"corgi/internal/geo"
	"corgi/internal/policy"
	"corgi/internal/proto"
	"corgi/internal/registry"
)

func main() {
	// One region per privacy budget: a multi-region server shards them.
	budgets := []float64{15, 17, 19}
	var specs []registry.Spec
	for _, eps := range budgets {
		specs = append(specs, registry.Spec{
			Name:       fmt.Sprintf("sf-eps%g", eps),
			CenterLat:  geo.SanFrancisco.Center().Lat,
			CenterLng:  geo.SanFrancisco.Center().Lng,
			Epsilon:    eps,
			Height:     2,
			Targets:    8, // the driver staging spots Q
			Iterations: 1,
			Seed:       1,
		})
	}
	reg, err := registry.New(specs, registry.Options{})
	if err != nil {
		log.Fatal(err)
	}
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h.Mux()); err != nil {
			log.Printf("server stopped: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("cloud: multi-region CORGI server on", base)

	rider := geo.SanFrancisco.Center()
	pol := policy.Policy{PrivacyLevel: 2, PrecisionLevel: 0}
	const reports = 200

	fmt.Println("eps(km^-1)  mean pickup estimation error (km) over", reports, "remote reports")
	for i, eps := range budgets {
		c := proto.NewRegionClient(base, specs[i].Name)
		tree, _, err := c.FetchTree()
		if err != nil {
			log.Fatal(err)
		}
		leaf, ok := tree.Locate(rider, 0)
		if !ok {
			log.Fatal("rider outside the service region")
		}
		// Drivers idle at the region's service targets: recompute the same
		// even spread the server configured, purely for cost estimation.
		leaves := tree.LevelNodes(0)
		var stagingSpots []geo.LatLng
		for k := 0; k < specs[i].Targets; k++ {
			stagingSpots = append(stagingSpots, tree.Center(leaves[k*len(leaves)/specs[i].Targets]))
		}

		resp, err := c.Report(proto.ReportRequest{
			Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
			UID:    3,
			Policy: pol,
			Seed:   3,
			Count:  reports,
		})
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, rep := range resp.Reports {
			reported := geo.LatLng{Lat: rep.Lat, Lng: rep.Lng}
			// The service dispatches from the staging spot nearest the
			// *reported* location; the rider pays the difference between
			// the estimated and true pickup distance (Equ. 3).
			var bestSpot geo.LatLng
			best := -1.0
			for _, s := range stagingSpots {
				if d := geo.Haversine(reported, s); best < 0 || d < best {
					best = d
					bestSpot = s
				}
			}
			est := geo.Haversine(reported, bestSpot)
			truth := geo.Haversine(rider, bestSpot)
			if est > truth {
				total += est - truth
			} else {
				total += truth - est
			}
		}
		fmt.Printf("%10.0f  %.4f\n", eps, total/reports)
	}
	fmt.Println("\nHigher eps (weaker privacy) -> smaller pickup estimation error,")
	fmt.Println("the trade-off CORGI's Fig. 11 quantifies — measured through /v1/report.")
}
