// Mobility: a commuter's morning reported through one budget-capped
// session stream. The paper evaluates the customization triple per
// location, but real users move — repeated reports from a trajectory both
// force session re-anchoring across privacy subtrees and consume epsilon
// under sequential composition, the dominant leakage channel of deployed
// Geo-Ind systems (Primault et al.; Oya et al.).
//
// The example spins an in-process corgi-server with epsilon-budget
// accounting enabled, walks one user across the region through several
// level-1 subtrees via POST /v1/report, and prints, per step: the subtree
// that served the draw, whether the server re-anchored the resident
// session (same RNG stream, fresh subtree binding), and the remaining
// window budget — until the sliding-window accountant says the user's
// epsilon is spent and the server answers 429 Too Many Requests.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"corgi/internal/budget"
	"corgi/internal/geo"
	"corgi/internal/policy"
	"corgi/internal/proto"
	"corgi/internal/registry"
)

func main() {
	const eps = 15.0
	spec := registry.Spec{
		Name:      "sf",
		CenterLat: geo.SanFrancisco.Center().Lat,
		CenterLng: geo.SanFrancisco.Center().Lng,
		Epsilon:   eps,
		Height:    2,
		Targets:   8,
		// Uniform priors bootstrap fast; the mobility mechanics are the
		// same either way.
		UniformPriors: true,
		Iterations:    1,
	}
	// Budget: six reports per hour-long window, then 429.
	reg, err := registry.New([]registry.Spec{spec}, registry.Options{
		Budget: budget.Config{LimitEps: 6 * eps, Window: time.Hour},
	})
	if err != nil {
		log.Fatal(err)
	}
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h.Mux()); err != nil {
			log.Printf("server stopped: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("cloud: budget-capped CORGI server on", base)

	c := proto.NewRegionClient(base, "sf")
	tree, _, err := c.FetchTree()
	if err != nil {
		log.Fatal(err)
	}
	// A commute: home subtree -> two transit subtrees -> office subtree,
	// with a report from each cell along the way (one leaf per subtree
	// plus a second report from the office, totalling 8 asks against a
	// 6-report budget).
	roots := tree.LevelNodes(1)
	var route []string
	var cells [][2]int
	hop := func(name string, rootIdx int) {
		leaf := tree.LeavesUnder(roots[rootIdx])[0]
		route = append(route, name)
		cells = append(cells, [2]int{leaf.Coord.Q, leaf.Coord.R})
	}
	hop("home", 0)
	hop("home", 0) // second report before leaving
	hop("transit", 1)
	hop("transit", 2)
	hop("office", 3)
	hop("office", 3)
	hop("office", 3)
	hop("office", 3)

	fmt.Printf("\nuser 42 commutes across %d subtrees (budget: %.0f eps = 6 reports/hour)\n\n",
		4, 6*eps)
	for i, cell := range cells {
		resp, err := c.Report(proto.ReportRequest{
			Cell:   cell,
			UID:    42,
			Policy: policy.Policy{PrivacyLevel: 1},
			Seed:   7,
		})
		if err != nil {
			// The budget rejection arrives as a 429 error from the client.
			if strings.Contains(err.Error(), "429") {
				fmt.Printf("step %d (%-7s): 429 Too Many Requests — epsilon window spent; retry after the window slides\n",
					i+1, route[i])
				continue
			}
			log.Fatal(err)
		}
		tag := "warm      "
		if resp.Reanchored {
			tag = "re-anchor "
		}
		if i == 0 {
			tag = "cold      "
		}
		fmt.Printf("step %d (%-7s): %s subtree (%3d,%3d) -> reported (%3d,%3d), %.0f of %.0f eps left\n",
			i+1, route[i], tag,
			resp.SubtreeRoot[0], resp.SubtreeRoot[1],
			resp.Reports[0].Q, resp.Reports[0].R,
			resp.EpsRemaining, 6*eps)
	}

	st := reg.AggregateSessionStats()
	bt := reg.AggregateBudgetStats()
	fmt.Printf("\nserver: %d session created, %d re-anchors, %d draws; budget: %d charges, %d rejections\n",
		st.Created, st.Reanchors, st.Draws, bt.Charges, bt.Rejections)
	fmt.Println("\nThe whole trajectory rode ONE session stream: moves re-anchored the")
	fmt.Println("subtree binding without resetting the RNG, and the epsilon accountant")
	fmt.Println("capped the trajectory's total leakage under linear composition.")
}
