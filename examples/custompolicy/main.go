// Custompolicy: the paper's headline capability — a user removes sensitive
// cells (home, office, odd-hour outliers) from the obfuscation range, and
// the robust matrix keeps its Geo-Ind guarantee while a non-robust matrix
// breaks (Sec. 4.4, Fig. 12). The example prints both violation rates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"corgi"
)

func main() {
	// 0.25 km cells over ~3.5 km: large enough that real users' homes and
	// offices fall inside the obfuscation range.
	region, err := corgi.NewRegion(corgi.SanFrancisco.Center(), 0.25, 2)
	if err != nil {
		log.Fatal(err)
	}
	checkins, err := corgi.GenerateCheckIns(1)
	if err != nil {
		log.Fatal(err)
	}
	priors, err := corgi.PriorsFromCheckIns(checkins, region.Tree)
	if err != nil {
		log.Fatal(err)
	}
	md, err := corgi.BuildMetadata(checkins, region.Tree)
	if err != nil {
		log.Fatal(err)
	}
	targets, err := corgi.RandomLeafTargets(region.Tree, 10, 5)
	if err != nil {
		log.Fatal(err)
	}
	const eps = 15.0
	server, err := corgi.NewServer(region, priors, targets, corgi.Params{
		Epsilon: eps, Iterations: 4, UseGraphApprox: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The user's policy: keep home, office, and outlier cells out of the
	// obfuscation range (exactly the predicates of Sec. 6.1).
	preds := []string{"home != true", "office != true", "outlier != true"}
	pol := corgi.Policy{PrivacyLevel: 2, PrecisionLevel: 0}
	for _, s := range preds {
		p, err := corgi.ParsePredicate(s)
		if err != nil {
			log.Fatal(err)
		}
		pol.Preferences = append(pol.Preferences, p)
	}
	real := corgi.SanFrancisco.Center()
	realLeaf, _ := region.Tree.Locate(real, 0)
	root, _ := region.Tree.AncestorAt(realLeaf, 2)
	leaves := region.Tree.LeavesUnder(root)

	// Pick a user whose inferred home lies inside the obfuscation range
	// (and is not the cell the user currently stands in).
	inRange := map[corgi.NodeID]bool{}
	for _, l := range leaves {
		inRange[l] = true
	}
	user := -1
	for u := 0; u < 500; u++ {
		if h, ok := md.HomeLeaf[u]; ok && inRange[h] && h != realLeaf {
			user = u
			break
		}
	}
	if user < 0 {
		log.Fatal("no user with a home in range; try another seed")
	}
	attrs := md.Annotate(user, real)
	pruneCount := 0
	for _, l := range leaves {
		ok, err := pol.Allowed(attrs[l])
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			pruneCount++
		}
	}
	fmt.Printf("policy %v prunes %d of %d cells\n", preds, pruneCount, len(leaves))

	// Robust (delta = |S|) vs non-robust (delta = 0) forests.
	robust, err := server.GenerateForest(2, pruneCount)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := server.GenerateForest(2, 0)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	out, err := corgi.Obfuscate(region, robust, real, pol, attrs, priors, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customized robust matrix: %d x %d, reported %v\n",
		out.Matrix.Dim(), out.Matrix.Dim(), out.Reported)

	// Audit both matrices after the same customization (Fig. 12's metric).
	for _, f := range []struct {
		name   string
		forest *corgi.Forest
	}{{"robust (CORGI)", robust}, {"non-robust", plain}} {
		entry := f.forest.Entries[root]
		idx := map[corgi.NodeID]int{}
		for i, l := range entry.Leaves {
			idx[l] = i
		}
		var s []int
		for _, l := range leaves {
			ok, _ := pol.Allowed(attrs[l])
			if !ok {
				s = append(s, idx[l])
			}
		}
		pruned, keep, err := entry.Matrix.Prune(s)
		if err != nil {
			log.Fatal(err)
		}
		newIdx := map[int]int{}
		for ni, oi := range keep {
			newIdx[oi] = ni
		}
		var surviving []corgi.Pair
		for _, p := range entry.Pairs {
			ni, iok := newIdx[p.I]
			nj, jok := newIdx[p.J]
			if iok && jok {
				surviving = append(surviving, corgi.Pair{I: ni, J: nj, Dist: p.Dist})
			}
		}
		rep := pruned.CheckGeoInd(surviving, eps, 1e-6)
		fmt.Printf("%-16s violations after pruning: %d / %d (%.2f%%)\n",
			f.name, rep.Violated, rep.Total, rep.Percent())
	}
	fmt.Println("\nThe robust matrix absorbs the customization; the non-robust one leaks.")
}
