// Custompolicy: the paper's headline capability — a user removes sensitive
// cells (home, office, odd-hour outliers) from the obfuscation range, and
// the robust matrix keeps its Geo-Ind guarantee while a non-robust matrix
// breaks (Sec. 4.4, Fig. 12) — run against a real corgi-server over HTTP.
//
// The example exercises both serving paths. The audit half fetches robust
// (delta = |S|) and non-robust (delta = 0) forests over the wire, prunes
// them with the user's local policy, and prints both violation rates; the
// drawing half sends the same policy inline to POST /v1/report and lets
// the server's session pipeline prune and draw — the end-to-end report
// path this repo serves at scale.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/graphx"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
	"corgi/internal/policy"
	"corgi/internal/proto"
	"corgi/internal/registry"
)

const eps = 15.0

func main() {
	// ---- cloud side: a region with 0.25 km cells over ~3.5 km, large
	// enough that real users' homes and offices fall inside the
	// obfuscation range. The server derives its own report-path metadata
	// from its seeded sample; the device keeps a separate local corpus,
	// which is exactly the paper's split — user data stays user data.
	spec := registry.Spec{
		Name:          "sf-custom",
		CenterLat:     geo.SanFrancisco.Center().Lat,
		CenterLng:     geo.SanFrancisco.Center().Lng,
		LeafSpacingKm: 0.25,
		Height:        2,
		Epsilon:       eps,
		Iterations:    4,
		Targets:       10,
		Seed:          1,
	}
	reg, err := registry.New([]registry.Spec{spec}, registry.Options{})
	if err != nil {
		log.Fatal(err)
	}
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h.Mux()); err != nil {
			log.Printf("server stopped: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("cloud: CORGI server on", base)

	// ---- device side ----
	c := proto.NewRegionClient(base, spec.Name)
	tree, info, err := c.FetchTree()
	if err != nil {
		log.Fatal(err)
	}
	// The user's own metadata (home/office/outlier heuristics) derives
	// locally; it never leaves the device on the forest path. (The remote
	// report below evaluates against the server's metadata instead — the
	// trust trade-off that path makes.)
	ds, err := gowalla.Generate(gowalla.GenConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	md, err := gowalla.BuildMetadata(ds.CheckIns, tree, 0.2)
	if err != nil {
		log.Fatal(err)
	}

	// The user's policy: keep home, office, and outlier cells out of the
	// obfuscation range (exactly the predicates of Sec. 6.1).
	preds := []string{"home != true", "office != true", "outlier != true"}
	pol := policy.Policy{PrivacyLevel: 2, PrecisionLevel: 0}
	for _, s := range preds {
		p, err := policy.ParsePredicate(s)
		if err != nil {
			log.Fatal(err)
		}
		pol.Preferences = append(pol.Preferences, p)
	}
	real := geo.SanFrancisco.Center()
	realLeaf, _ := tree.Locate(real, 0)
	root, _ := tree.AncestorAt(realLeaf, 2)
	leaves := tree.LeavesUnder(root)

	// Pick a user whose inferred home lies inside the obfuscation range
	// (and is not the cell the user currently stands in).
	inRange := map[loctree.NodeID]bool{}
	for _, l := range leaves {
		inRange[l] = true
	}
	user := -1
	for u := 0; u < 500; u++ {
		if h, ok := md.HomeLeaf[u]; ok && inRange[h] && h != realLeaf {
			user = u
			break
		}
	}
	if user < 0 {
		log.Fatal("no user with a home in range; try another seed")
	}
	attrs := md.Annotate(user, real)
	var s []int
	idxOf := map[loctree.NodeID]int{}
	for i, l := range leaves {
		idxOf[l] = i
	}
	for _, l := range leaves {
		ok, err := pol.Allowed(attrs[l])
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			s = append(s, idxOf[l])
		}
	}
	fmt.Printf("policy %v prunes %d of %d cells\n", preds, len(s), len(leaves))

	// Robust (delta = |S|) vs non-robust (delta = 0) forests, fetched over
	// the wire; only (privacy_l, |S|) reaches the server on this path.
	robust, err := c.FetchForest(tree, 2, len(s))
	if err != nil {
		log.Fatal(err)
	}
	plain, err := c.FetchForest(tree, 2, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Wire forests carry matrices, not constraint sets; rebuild the
	// graph-approximation pairs locally to audit what was served.
	cellCoords := make([]hexgrid.Coord, len(leaves))
	leafPriors := make([]float64, len(leaves))
	for i, l := range leaves {
		cellCoords[i] = l.Coord
		leafPriors[i] = 1
	}
	sys, err := hexgrid.NewSystem(geo.LatLng{Lat: info.OriginLat, Lng: info.OriginLng}, info.LeafSpacingKm)
	if err != nil {
		log.Fatal(err)
	}
	auditInst, err := core.NewInstance(sys, cellCoords, leafPriors,
		[]geo.LatLng{real}, []float64{1}, graphx.WeightPaper)
	if err != nil {
		log.Fatal(err)
	}
	pairs := auditInst.NeighborPairs()

	// Audit both matrices after the same customization (Fig. 12's metric).
	for _, f := range []struct {
		name   string
		forest *core.Forest
	}{{"robust (CORGI)", robust}, {"non-robust", plain}} {
		entry := f.forest.Entries[root]
		pruned, keep, err := entry.Matrix.Prune(s)
		if err != nil {
			log.Fatal(err)
		}
		newIdx := map[int]int{}
		for ni, oi := range keep {
			newIdx[oi] = ni
		}
		var surviving []obf.Pair
		for _, p := range pairs {
			ni, iok := newIdx[p.I]
			nj, jok := newIdx[p.J]
			if iok && jok {
				surviving = append(surviving, obf.Pair{I: ni, J: nj, Dist: p.Dist})
			}
		}
		rep := pruned.CheckGeoInd(surviving, eps, 1e-6)
		fmt.Printf("%-16s violations after pruning: %d / %d (%.2f%%)\n",
			f.name, rep.Violated, rep.Total, rep.Percent())
	}

	// The same policy served end to end: POST /v1/report lets the server
	// evaluate, prune, and draw from a per-user session.
	resp, err := c.Report(proto.ReportRequest{
		Cell:   [2]int{realLeaf.Coord.Q, realLeaf.Coord.R},
		UID:    int64(user),
		Policy: pol,
		Seed:   11,
		Count:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, rep := range resp.Reports {
		fmt.Printf("remote report %d: cell (%d,%d) center %.6f,%.6f (server pruned %d)\n",
			i+1, rep.Q, rep.R, rep.Lat, rep.Lng, resp.Pruned)
	}
	fmt.Println("\nThe robust matrix absorbs the customization; the non-robust one leaks.")
}
