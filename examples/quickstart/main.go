// Quickstart: the complete CORGI flow in one file — build a region, derive
// priors from check-ins, generate a robust privacy forest, apply a user
// policy, and report an obfuscated location.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"corgi"
)

func main() {
	// 1. The area of interest: a two-level hex tree over San Francisco
	//    (49 leaf cells of ~0.1 km spacing).
	region, err := corgi.NewRegion(corgi.SanFrancisco.Center(), 0.1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("region: height %d, %d leaf cells\n", region.Tree.Height(), region.Tree.NumLeaves())

	// 2. Public priors from (synthetic) Gowalla check-ins (Sec. 6.1).
	checkins, err := corgi.GenerateCheckIns(1)
	if err != nil {
		log.Fatal(err)
	}
	priors, err := corgi.PriorsFromCheckIns(checkins, region.Tree)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The server generates the privacy forest: one robust matrix per
	//    privacy-level node, delta-prunable for up to 2 locations.
	targets, err := corgi.RandomLeafTargets(region.Tree, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	server, err := corgi.NewServer(region, priors, targets, corgi.Params{
		Epsilon: 15, Iterations: 3, UseGraphApprox: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	forest, err := server.GenerateForest(1 /* privacy level */, 2 /* delta */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forest: %d subtree matrices, delta-prunable up to %d\n",
		len(forest.Entries), forest.Delta)

	// 4. The user customizes locally: never report their home cell.
	md, err := corgi.BuildMetadata(checkins, region.Tree)
	if err != nil {
		log.Fatal(err)
	}
	real := corgi.SanFrancisco.Center()
	attrs := md.Annotate(0 /* user id */, real)
	notHome, err := corgi.ParsePredicate("home != true")
	if err != nil {
		log.Fatal(err)
	}
	pol := corgi.Policy{
		PrivacyLevel:   1,
		PrecisionLevel: 0,
		Preferences:    []corgi.Predicate{notHome},
	}

	// 5. Report.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		out, err := corgi.Obfuscate(region, forest, real, pol, attrs, priors, rng)
		if err != nil {
			log.Fatal(err)
		}
		c := region.Tree.Center(out.Reported)
		fmt.Printf("report %d: %v (%.3f km from the real location, %d cells pruned)\n",
			i+1, out.Reported, corgi.Haversine(real, c), len(out.Pruned))
	}
}
