// Command corgi-client is the user side (Sec. 5.2): it fetches the location
// tree and privacy forest from a corgi-server, evaluates the user's policy
// locally, customizes the matrix (pruning + precision reduction), and
// prints the obfuscated location. The real location and the preference
// contents never leave this process.
//
// -region addresses one shard of a multi-region server; the default (empty)
// resolves to the server's default region, so the client works unchanged
// against single-region deployments. An unknown region fails with the
// server's 404, whose message lists the available region names.
//
// Local draws run through one report session bound to the fetched forest:
// the pruned, renormalized row and its O(1) alias sampler are derived once
// and reused across every -reports N draw, and a fixed -seed makes the
// printed sequence deterministic.
//
// -remote switches to the server-side report pipeline instead: the client
// sends (region, cell, inline policy, uid, seed, count) to POST /v1/report
// and prints the drawn reports. This trades the paper's trust model (the
// true cell and the policy cross the wire) for never downloading a matrix;
// preference evaluation then uses the *server's* region metadata, so
// remote draws with -pref may prune differently than local ones.
//
// -local-draw splits the difference: one POST /v1/lease reveals the cell
// and policy once, pre-pays -reports draws' epsilon in a single budget
// charge, and brings back the customized distribution rows plus a signed
// lease token; the draws themselves then run on-device
// (internal/clientdraw), replaying the server's RNG stream exactly — the
// printed sequence is byte-identical to what -remote would print for the
// same seed.
//
// Forests travel in the compact wire-v2 encoding with gzip by default
// (-v1 falls back to dense JSON), and the client keeps a small on-disk
// forest cache: each fetch sends the cached copy's ETag as If-None-Match,
// and a 304 reuses the cached bytes instead of re-downloading the forest.
// -cache-dir moves the cache; -no-cache disables it.
//
// Usage:
//
//	corgi-client [-server http://127.0.0.1:8080] [-region nyc] \
//	             -lat 37.765 -lng -122.435 \
//	             [-privacy 1] [-precision 0] [-pref "home != true" -pref "distance <= 5"] \
//	             [-reports 1] [-seed 0] [-remote] [-local-draw] [-uid 0] \
//	             [-v1] [-no-cache] [-cache-dir DIR]
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"corgi/internal/clientdraw"
	"corgi/internal/cluster"
	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/policy"
	"corgi/internal/proto"
	"corgi/internal/session"
)

type prefList []string

func (p *prefList) String() string     { return fmt.Sprint(*p) }
func (p *prefList) Set(s string) error { *p = append(*p, s); return nil }

// forestCacheConfig keys the on-disk conditional-fetch cache.
type forestCacheConfig struct {
	disabled bool
	dir      string
	server   string
	region   string
	v1       bool
}

// cachedForest is one cached forest response: the tag to revalidate with
// and the raw body to re-decode after a 304.
type cachedForest struct {
	ETag        string `json:"etag"`
	ContentType string `json:"content_type"`
	Body        []byte `json:"body"`
}

// cachePath names one (server, region, level, delta, encoding) slot.
func (cfg forestCacheConfig) cachePath(level, delta int) (string, error) {
	dir := cfg.dir
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			return "", err
		}
		dir = filepath.Join(base, "corgi-client")
	}
	wire := "v2"
	if cfg.v1 {
		wire = "v1"
	}
	key := fmt.Sprintf("%s|%s|%d|%d|%s", cfg.server, cfg.region, level, delta, wire)
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:12])+".json"), nil
}

// fetchForestCached fetches a forest through the on-disk cache: the cached
// copy's ETag rides as If-None-Match, a 304 reuses the cached bytes, and a
// fresh body replaces them. Any cache trouble (unreadable dir, stale or
// undecodable entry) silently degrades to an unconditional fetch — the
// cache is an optimization, never a requirement.
func fetchForestCached(c *proto.Client, tree *loctree.Tree, level, delta int, cfg forestCacheConfig) (*core.Forest, error) {
	if cfg.disabled {
		return c.FetchForest(tree, level, delta)
	}
	path, err := cfg.cachePath(level, delta)
	if err != nil {
		return c.FetchForest(tree, level, delta)
	}
	var cached *cachedForest
	if data, err := os.ReadFile(path); err == nil {
		var cf cachedForest
		if json.Unmarshal(data, &cf) == nil && cf.ETag != "" {
			cached = &cf
		}
	}
	etag := ""
	if cached != nil {
		etag = cached.ETag
	}
	res, err := c.FetchForestTagged(tree, level, delta, etag)
	if err != nil {
		return nil, err
	}
	if res.NotModified {
		forest, err := proto.DecodeForestBody(tree, cached.ContentType, cached.Body)
		if err == nil {
			log.Printf("forest unchanged (HTTP 304), reused cached copy from %s", path)
			return forest, nil
		}
		// The cached bytes rotted; refetch unconditionally.
		os.Remove(path)
		res, err = c.FetchForestTagged(tree, level, delta, "")
		if err != nil {
			return nil, err
		}
	}
	if res.ETag != "" {
		if data, err := json.Marshal(cachedForest{ETag: res.ETag, ContentType: res.ContentType, Body: res.Body}); err == nil {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err == nil {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					log.Printf("forest cache write failed: %v", err)
				}
			}
		}
	}
	return res.Forest, nil
}

// dialCluster resolves -peers: it builds the same consistent-hash ring
// the servers run (member names hash identically when the flag value
// matches their -cluster-peers), walks this uid's failover sequence owner
// first, and binds to the first node that answers a tree fetch. A node
// that is down is skipped with a log line; the one that answers is
// surfaced so the user knows where their session lives. Wrong-node
// fallback is still correct — the server forwards one hop — it just adds
// that hop's latency.
func dialCluster(spec, region string, uid int64, v1 bool) (*proto.Client, string, *loctree.Tree, *proto.TreeResponse, error) {
	peers, err := cluster.ParsePeers(spec)
	if err != nil {
		return nil, "", nil, nil, err
	}
	byName := make(map[string]cluster.Peer, len(peers))
	names := make([]string, len(peers))
	for i, p := range peers {
		if p.HTTPURL == "" {
			// A bare entry names an HTTP endpoint directly.
			p.HTTPURL = "http://" + p.StreamAddr
		}
		byName[p.Name] = p
		names[i] = p.Name
	}
	ring, err := cluster.NewRing(names, 0, 0)
	if err != nil {
		return nil, "", nil, nil, err
	}
	seq := ring.Sequence(uid)
	var lastErr error
	for i, name := range seq {
		p := byName[name]
		c := proto.NewRegionClient(p.HTTPURL, region)
		c.ForceV1 = v1
		tree, info, err := c.FetchTree()
		if err != nil {
			lastErr = err
			log.Printf("cluster: node %s (%s) unreachable, trying next ring node: %v", name, p.HTTPURL, err)
			continue
		}
		role := "owner"
		if i > 0 {
			role = fmt.Sprintf("failover #%d for owner %s", i, seq[0])
		}
		log.Printf("cluster: node %s (%s) answered — %s for uid %d", name, p.HTTPURL, role, uid)
		return c, p.HTTPURL, tree, info, nil
	}
	return nil, "", nil, nil, fmt.Errorf("all %d cluster nodes unreachable, last error: %w", len(seq), lastErr)
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "corgi-server base URL")
	region := flag.String("region", "", "region name on a multi-region server (empty: server default)")
	lat := flag.Float64("lat", 37.765, "real latitude")
	lng := flag.Float64("lng", -122.435, "real longitude")
	privacy := flag.Int("privacy", 1, "privacy level (obfuscation range)")
	precision := flag.Int("precision", 0, "precision level of the report")
	reports := flag.Int("reports", 1, "number of obfuscated reports to draw")
	seed := flag.Int64("seed", 0, "sampling seed (0: time-based)")
	remote := flag.Bool("remote", false, "draw via the server-side report pipeline (POST /v1/report)")
	localDraw := flag.Bool("local-draw", false, "lease the distribution once (POST /v1/lease) and draw on-device")
	uid := flag.Int64("uid", 0, "user id for remote metadata attributes and session state")
	v1 := flag.Bool("v1", false, "request the dense v1 forest encoding instead of compact v2")
	noCache := flag.Bool("no-cache", false, "disable the on-disk forest cache")
	cacheDir := flag.String("cache-dir", "", "forest cache directory (default: user cache dir)")
	peersFlag := flag.String("peers", "",
		"cluster member list, comma-separated addr[=httpURL] entries (pass the servers' -cluster-peers value for exact owner affinity): the client contacts this uid's owner node first and fails over to the next ring node when one is down (overrides -server)")
	var prefs prefList
	flag.Var(&prefs, "pref", "preference predicate, e.g. 'home != true' (repeatable)")
	flag.Parse()

	var (
		c    *proto.Client
		tree *loctree.Tree
		info *proto.TreeResponse
		err  error
	)
	serverURL := *server
	if *peersFlag != "" {
		c, serverURL, tree, info, err = dialCluster(*peersFlag, *region, *uid, *v1)
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
	} else {
		c = proto.NewRegionClient(*server, *region)
		c.ForceV1 = *v1
		tree, info, err = c.FetchTree()
		if err != nil {
			// The server's 404 for an unknown region already lists the
			// available names; surface it verbatim.
			log.Fatalf("fetching tree: %v", err)
		}
	}
	which := *region
	if which == "" {
		which = "server default"
	}
	log.Printf("region %s: tree height %d, %d leaves, eps=%g", which, info.Height, tree.NumLeaves(), info.Epsilon)

	pol := policy.Policy{PrivacyLevel: *privacy, PrecisionLevel: *precision}
	for _, s := range prefs {
		pred, err := policy.ParsePredicate(s)
		if err != nil {
			log.Fatalf("predicate %q: %v", s, err)
		}
		pol.Preferences = append(pol.Preferences, pred)
	}
	if err := pol.Validate(tree.Height()); err != nil {
		log.Fatalf("policy: %v", err)
	}
	real := geo.LatLng{Lat: *lat, Lng: *lng}
	leaf, ok := tree.Locate(real, 0)
	if !ok {
		log.Fatalf("location outside the service region")
	}

	s := *seed
	if s == 0 {
		s = time.Now().UnixNano()
	}

	if *localDraw {
		log.Printf("draw lease: cell (%d,%d) uid %d seed %d cap %d (cell and policy cross the wire once; draws stay on-device)",
			leaf.Coord.Q, leaf.Coord.R, *uid, s, *reports)
		lr, err := c.Lease(proto.LeaseRequest{
			Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
			UID:    *uid,
			Policy: pol,
			Seed:   s,
			Draws:  *reports,
		})
		if err != nil {
			log.Fatalf("lease: %v", err)
		}
		lease, err := clientdraw.Open(tree, lr.Bundle, lr.Token)
		if err != nil {
			log.Fatalf("opening lease: %v", err)
		}
		if lr.Budgeted {
			log.Printf("lease granted: %d draws pre-paid (eps %.4g spent, %.4g remaining), expires %s",
				lr.DrawCap, lr.EpsSpent, lr.EpsRemaining,
				time.UnixMilli(lr.ExpiresUnixMs).Format(time.RFC3339))
		} else {
			log.Printf("lease granted: %d draws, expires %s",
				lr.DrawCap, time.UnixMilli(lr.ExpiresUnixMs).Format(time.RFC3339))
		}
		for i := 0; i < *reports; i++ {
			reported, err := lease.DrawCell(leaf)
			if err != nil {
				log.Fatalf("local draw: %v", err)
			}
			center := tree.Center(reported)
			fmt.Printf("report %d: node %v center %.6f,%.6f (moved %.3f km, pruned %d)\n",
				i+1, reported, center.Lat, center.Lng,
				geo.Haversine(real, center), lr.Pruned)
		}
		return
	}

	if *remote {
		log.Printf("remote report: cell (%d,%d) uid %d seed %d count %d (cell and policy cross the wire)",
			leaf.Coord.Q, leaf.Coord.R, *uid, s, *reports)
		resp, err := c.Report(proto.ReportRequest{
			Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
			UID:    *uid,
			Policy: pol,
			Seed:   s,
			Count:  *reports,
		})
		if err != nil {
			log.Fatalf("remote report: %v", err)
		}
		for i, rep := range resp.Reports {
			center := geo.LatLng{Lat: rep.Lat, Lng: rep.Lng}
			fmt.Printf("report %d: node L%d(%d,%d) center %.6f,%.6f (moved %.3f km, pruned %d)\n",
				i+1, resp.PrecisionLevel, rep.Q, rep.R, rep.Lat, rep.Lng,
				geo.Haversine(real, center), resp.Pruned)
		}
		return
	}

	// Only the local sampling path needs the public priors (precision
	// reduction, Equ. 17); the remote path above never fetches them.
	priors, err := c.FetchPriors(tree)
	if err != nil {
		log.Fatalf("fetching priors: %v", err)
	}

	// Local attributes for preference evaluation: derived from the
	// synthetic corpus (a real deployment would use the user's own data —
	// it stays on-device either way).
	var attrs map[loctree.NodeID]policy.Attributes
	if len(pol.Preferences) > 0 {
		ds, err := gowalla.Generate(gowalla.GenConfig{Seed: 1})
		if err != nil {
			log.Fatalf("attributes: %v", err)
		}
		md, err := gowalla.BuildMetadata(ds.CheckIns, tree, 0.2)
		if err != nil {
			log.Fatalf("attributes: %v", err)
		}
		attrs = md.Annotate(0, real)
	}

	// Count the prune set first so only |S| is requested from the server.
	delta := 0
	if len(pol.Preferences) > 0 {
		root, _ := tree.AncestorAt(leaf, pol.PrivacyLevel)
		pruned, err := mechanism.EvalPreferences(tree.LeavesUnder(root), pol, attrs)
		if err != nil {
			log.Fatalf("preferences: %v", err)
		}
		delta = len(pruned)
	}
	log.Printf("requesting forest: privacy_l=%d delta=|S|=%d", pol.PrivacyLevel, delta)
	forest, err := fetchForestCached(c, tree, pol.PrivacyLevel, delta, forestCacheConfig{
		disabled: *noCache,
		dir:      *cacheDir,
		server:   serverURL,
		region:   *region,
		v1:       *v1,
	})
	if err != nil {
		log.Fatalf("fetching forest: %v", err)
	}

	// Bind one local report session to the fetched forest: the pruned,
	// renormalized row and its alias sampler derive once, and every draw
	// after the first is O(1) — no per-report re-customization.
	root, ok := tree.AncestorAt(leaf, pol.PrivacyLevel)
	if !ok {
		log.Fatalf("no ancestor at privacy level %d", pol.PrivacyLevel)
	}
	entry, ok := forest.Entries[root]
	if !ok {
		log.Fatalf("forest has no entry for subtree %v", root)
	}
	sess, err := session.New(session.Config{
		Tree:   tree,
		Entry:  entry,
		Delta:  forest.Delta,
		Policy: pol,
		Attrs:  attrs,
		Priors: priors,
		Seed:   s,
	})
	if err != nil {
		log.Fatalf("session: %v", err)
	}
	for i := 0; i < *reports; i++ {
		reported, err := sess.DrawCell(leaf)
		if err != nil {
			log.Fatalf("obfuscating: %v", err)
		}
		center := tree.Center(reported)
		fmt.Printf("report %d: node %v center %.6f,%.6f (moved %.3f km, pruned %d)\n",
			i+1, reported, center.Lat, center.Lng,
			geo.Haversine(real, center), len(sess.Pruned()))
	}
}
