// Command corgi-client is the user side (Sec. 5.2): it fetches the location
// tree and privacy forest from a corgi-server, evaluates the user's policy
// locally, customizes the matrix (pruning + precision reduction), and
// prints the obfuscated location. The real location and the preference
// contents never leave this process.
//
// -region addresses one shard of a multi-region server; the default (empty)
// resolves to the server's default region, so the client works unchanged
// against single-region deployments. An unknown region fails with the
// server's 404, whose message lists the available region names.
//
// Usage:
//
//	corgi-client [-server http://127.0.0.1:8080] [-region nyc] \
//	             -lat 37.765 -lng -122.435 \
//	             [-privacy 1] [-precision 0] [-pref "home != true" -pref "distance <= 5"] \
//	             [-reports 1] [-seed 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/proto"
)

type prefList []string

func (p *prefList) String() string     { return fmt.Sprint(*p) }
func (p *prefList) Set(s string) error { *p = append(*p, s); return nil }

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "corgi-server base URL")
	region := flag.String("region", "", "region name on a multi-region server (empty: server default)")
	lat := flag.Float64("lat", 37.765, "real latitude")
	lng := flag.Float64("lng", -122.435, "real longitude")
	privacy := flag.Int("privacy", 1, "privacy level (obfuscation range)")
	precision := flag.Int("precision", 0, "precision level of the report")
	reports := flag.Int("reports", 1, "number of obfuscated reports to draw")
	seed := flag.Int64("seed", 0, "sampling seed (0: time-based)")
	var prefs prefList
	flag.Var(&prefs, "pref", "preference predicate, e.g. 'home != true' (repeatable)")
	flag.Parse()

	c := proto.NewRegionClient(*server, *region)
	tree, info, err := c.FetchTree()
	if err != nil {
		// The server's 404 for an unknown region already lists the
		// available names; surface it verbatim.
		log.Fatalf("fetching tree: %v", err)
	}
	which := *region
	if which == "" {
		which = "server default"
	}
	log.Printf("region %s: tree height %d, %d leaves, eps=%g", which, info.Height, tree.NumLeaves(), info.Epsilon)
	priors, err := c.FetchPriors(tree)
	if err != nil {
		log.Fatalf("fetching priors: %v", err)
	}

	pol := policy.Policy{PrivacyLevel: *privacy, PrecisionLevel: *precision}
	for _, s := range prefs {
		pred, err := policy.ParsePredicate(s)
		if err != nil {
			log.Fatalf("predicate %q: %v", s, err)
		}
		pol.Preferences = append(pol.Preferences, pred)
	}
	if err := pol.Validate(tree.Height()); err != nil {
		log.Fatalf("policy: %v", err)
	}
	real := geo.LatLng{Lat: *lat, Lng: *lng}

	// Local attributes for preference evaluation: derived from the
	// synthetic corpus (a real deployment would use the user's own data —
	// it stays on-device either way).
	var attrs map[loctree.NodeID]policy.Attributes
	if len(pol.Preferences) > 0 {
		ds, err := gowalla.Generate(gowalla.GenConfig{Seed: 1})
		if err != nil {
			log.Fatalf("attributes: %v", err)
		}
		md, err := gowalla.BuildMetadata(ds.CheckIns, tree, 0.2)
		if err != nil {
			log.Fatalf("attributes: %v", err)
		}
		attrs = md.Annotate(0, real)
	}

	// Count the prune set first so only |S| is requested from the server.
	delta := 0
	if len(pol.Preferences) > 0 {
		leaf, ok := tree.Locate(real, 0)
		if !ok {
			log.Fatalf("location outside the service region")
		}
		root, _ := tree.AncestorAt(leaf, pol.PrivacyLevel)
		pruned, err := core.EvalPreferences(tree.LeavesUnder(root), pol, attrs)
		if err != nil {
			log.Fatalf("preferences: %v", err)
		}
		delta = len(pruned)
	}
	log.Printf("requesting forest: privacy_l=%d delta=|S|=%d", pol.PrivacyLevel, delta)
	forest, err := c.FetchForest(tree, pol.PrivacyLevel, delta)
	if err != nil {
		log.Fatalf("fetching forest: %v", err)
	}

	s := *seed
	if s == 0 {
		s = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(s))
	for i := 0; i < *reports; i++ {
		out, err := core.GenerateObfuscatedLocation(tree, forest, real, pol, attrs, priors, rng)
		if err != nil {
			log.Fatalf("obfuscating: %v", err)
		}
		center := tree.Center(out.Reported)
		fmt.Printf("report %d: node %v center %.6f,%.6f (moved %.3f km, pruned %d)\n",
			i+1, out.Reported, center.Lat, center.Lng,
			geo.Haversine(real, center), len(out.Pruned))
	}
}
