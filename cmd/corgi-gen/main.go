// Command corgi-gen writes a synthetic Gowalla-style check-in sample in the
// real dataset's format (user <TAB> RFC3339-time <TAB> lat <TAB> lng <TAB>
// place-id), so the rest of the toolchain can be exercised without the
// original data — or pointed at the original file interchangeably.
//
// Usage:
//
//	corgi-gen [-n 38523] [-users 500] [-places 2000] [-seed 1] [-o checkins.txt]
package main

import (
	"flag"
	"log"
	"os"

	"corgi/internal/gowalla"
)

func main() {
	n := flag.Int("n", 38523, "number of check-ins (paper's SF sample size)")
	users := flag.Int("users", 500, "number of users")
	places := flag.Int("places", 2000, "number of venues")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	ds, err := gowalla.Generate(gowalla.GenConfig{
		Seed: *seed, NumUsers: *users, NumPlaces: *places, NumCheckIns: *n,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("create %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := gowalla.Save(w, ds.CheckIns); err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("wrote %d check-ins (%d users, %d places, seed %d)",
		len(ds.CheckIns), *users, *places, *seed)
}
