// Command corgi-gen precomputes privacy forests offline and populates a
// persistent forest store directory that corgi-server mounts with -store.
// The iterated LP solves behind every robust matrix are the deployment
// bottleneck, and the mechanisms are static per (prior, epsilon, delta) —
// so they are paid here, once, instead of on the serving path: a server
// started over a populated store serves every precomputed (region, level,
// delta) forest with zero LP solves.
//
// Regions come from -regions (builtin metro names) or -region-config (the
// same JSON spec file corgi-server takes), and the generation-default
// flags (-eps, -height, -spacing, -iters, -targets, -seed, -checkins,
// -uniform-priors) mirror corgi-server's exactly: both binaries assemble
// specs through registry.BuildSpecs, so precomputing and serving with the
// same flags addresses the same spec hashes by construction. For every
// region, every privacy level of its tree is generated for deltas
// 0..-max-delta and written as checksummed snapshots keyed by the
// region's spec hash — rerunning after a spec change recomputes only
// under the new hash, leaving nothing stale to serve.
//
// The original synthetic check-in generator lives on behind -checkins-out:
// it writes a Gowalla-format sample (user <TAB> RFC3339-time <TAB> lat
// <TAB> lng <TAB> place-id) so the toolchain can run without the real
// dataset.
//
// Usage:
//
//	corgi-gen -store ./forests [-regions sf,nyc,la | -region-config regions.json]
//	          [-max-delta 3] [-workers 0] [-eps 15] [-height 2] [-spacing 0.1]
//	          [-iters 5] [-targets 20] [-checkins gowalla.txt] [-seed 0]
//	          [-uniform-priors]
//	corgi-gen -checkins-out checkins.txt [-n 38523] [-users 500] [-places 2000] [-gen-seed 1]
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"corgi/internal/core"
	"corgi/internal/gowalla"
	"corgi/internal/registry"
	"corgi/internal/store"
)

func main() {
	storeDir := flag.String("store", "", "forest store directory to populate (required for precompute)")
	regions := flag.String("regions", "", "comma-separated builtin region names (default: sf)")
	regionConfig := flag.String("region-config", "", "JSON region-spec file (overrides -regions)")
	maxDelta := flag.Int("max-delta", 3, "precompute deltas 0..N for every privacy level")
	workers := flag.Int("workers", 0, "parallel subtree solves per region (0: GOMAXPROCS)")
	// Generation defaults, mirroring cmd/corgi-server flag for flag: the
	// precomputed spec hashes match a server started with the same values.
	eps := flag.Float64("eps", 15, "default Geo-Ind privacy budget (km^-1)")
	height := flag.Int("height", 2, "default tree height (2 -> 49 leaves, 3 -> 343)")
	spacing := flag.Float64("spacing", 0.1, "default leaf cell center spacing in km")
	iters := flag.Int("iters", 5, "default Algorithm-1 robust iterations")
	targetsN := flag.Int("targets", 20, "default service target count per region")
	checkins := flag.String("checkins", "", "Gowalla check-in file for the default region's priors")
	seed := flag.Int64("seed", 0, "synthetic-prior seed override (0: per-region name hash)")
	uniformPriors := flag.Bool("uniform-priors", false, "use uniform priors everywhere (fast precompute)")

	checkinsOut := flag.String("checkins-out", "", "write a synthetic Gowalla-style check-in file instead of precomputing")
	n := flag.Int("n", 38523, "check-ins to generate (paper's SF sample size)")
	users := flag.Int("users", 500, "users in the synthetic sample")
	places := flag.Int("places", 2000, "venues in the synthetic sample")
	genSeed := flag.Int64("gen-seed", 1, "synthetic-sample generator seed (for -checkins-out)")
	flag.Parse()

	if *checkinsOut != "" {
		genCheckins(*checkinsOut, *n, *users, *places, *genSeed)
		return
	}
	if *storeDir == "" {
		log.Fatalf("-store is required (or -checkins-out for the synthetic dataset mode)")
	}
	if *maxDelta < 0 {
		log.Fatalf("-max-delta must be >= 0, got %d", *maxDelta)
	}

	specs, err := registry.BuildSpecs(*regions, *regionConfig, registry.SpecDefaults{
		Epsilon: *eps, Height: *height, LeafSpacingKm: *spacing, Iterations: *iters,
		Targets: *targetsN, Seed: *seed, UniformPriors: *uniformPriors, CheckinsPath: *checkins,
	})
	if err != nil {
		log.Fatalf("regions: %v", err)
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		log.Fatalf("store: %v", err)
	}
	// The registry already implements precompute as "bootstrap every shard
	// with warmup and a store attached": warmup generates every (level,
	// delta <= max-delta) forest and the engine writes each back as a
	// snapshot. Rerunning over a populated store hydrates first, so only
	// missing forests are solved.
	reg, err := registry.New(specs, registry.Options{
		Engine:      core.EngineOptions{Workers: *workers},
		WarmupDelta: *maxDelta,
		Store:       st,
	})
	if err != nil {
		log.Fatalf("registry: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	for _, name := range reg.Names() {
		regionStart := time.Now()
		sh, err := reg.Shard(ctx, name)
		if err != nil {
			log.Fatalf("precompute %q: %v", name, err)
		}
		sh.Server.FlushStore()
		est := sh.Server.Stats()
		log.Printf("region %s (spec %s): %d solves, %d hydrated, %d snapshots written in %v",
			name, sh.Spec.Hash()[:16], est.Solves, est.StoreHydrated, est.StoreWrites,
			time.Since(regionStart).Round(time.Millisecond))
	}
	reg.FlushStores()

	agg := reg.AggregateStats()
	size, err := st.SizeBytes()
	if err != nil {
		log.Printf("sizing store: %v", err)
	}
	log.Printf("done: %d regions, %d solves, %d snapshots written, store %s = %.2f MiB in %v",
		len(reg.Names()), agg.Solves, agg.StoreWrites, st.Dir(), float64(size)/(1<<20),
		time.Since(start).Round(time.Millisecond))
}

// genCheckins is the legacy synthetic-dataset mode.
func genCheckins(out string, n, users, places int, seed int64) {
	ds, err := gowalla.Generate(gowalla.GenConfig{
		Seed: seed, NumUsers: users, NumPlaces: places, NumCheckIns: n,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatalf("create %s: %v", out, err)
		}
		defer f.Close()
		w = f
	}
	if err := gowalla.Save(w, ds.CheckIns); err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("wrote %d check-ins (%d users, %d places, seed %d)",
		len(ds.CheckIns), users, places, seed)
}
