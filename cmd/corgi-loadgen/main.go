// Command corgi-loadgen drives a corgi-server with a multi-region request
// mix and reports latency and throughput, so scale claims about the
// sharded serving layer are measurable instead of anecdotal.
//
// Three workloads exist (-workload):
//
//   - forest (default): the matrix-distribution path — POST /v1/forest
//     (or batched /v1/forests) requests for (region, privacy level,
//     delta) keys;
//   - report: the per-report hot path — POST /v1/report (or batched
//     /v1/reports) requests carrying a true cell, an inline policy, a
//     user id, and a seed, exercising the server-side session + alias
//     sampling pipeline end to end;
//   - mobility: moving-user report streams — per-user trajectories
//     (Gowalla check-in sequences via -checkins, or synthetic
//     random-waypoint walks over the leaf lattice, -users x -moves steps)
//     replayed as /v1/report requests from one session stream per user,
//     measuring re-anchor rate, budget-rejection rate (429s under
//     -budget-eps servers), and latency split warm / re-anchor / cold.
//
// Against a -degraded-serving server, every workload additionally counts
// responses flagged degraded (served from the planar-Laplace fallback
// while the LP optimum solved in the background) and slices their latency
// out — driving a cold region shows the degraded-vs-optimal split
// directly: degraded_reports with millisecond latency up front, then the
// degraded rate decaying to zero as background solves land.
//
// The request stream is a replayable trace. It comes from one of:
//
//   - a trace file (-trace): whitespace-separated lines of
//     "region privacy_level delta" (forest workload) or
//     "region privacy_level q r" (report workload), replayed in order
//     (cycling);
//   - a Gowalla-format check-in file (-checkins): each check-in is
//     assigned to the nearest serving region's center, and the resulting
//     per-region weights drive a synthetic mix — a data-derived workload;
//   - a synthetic mix (default): regions weighted uniformly or by a Zipf
//     law (-mix zipf, mimicking the few-hot-metros shape of real traffic)
//     over the privacy levels of -levels and prune allowances of -deltas.
//     For the report workload, true cells are drawn per region uniformly
//     or Zipf-weighted (-cell-mix zipf: a few hot cells dominate, the
//     shape of real check-in data), user ids spread over -users, and each
//     request draws -report-count reports.
//
// The generator runs closed-loop by default (-concurrency workers, each
// issuing the next request as soon as the previous completes) or open-loop
// with -rate R (arrivals at R req/s dispatched to the worker pool;
// arrivals that find no free worker within the queue bound count as
// dropped, keeping the arrival process honest under overload). -batch N
// packs N consecutive trace entries into one batched round trip.
//
// The report is JSON (stdout, or -out FILE): request and per-item counts,
// error breakdown, req/s (and drawn reports/s for the report workload),
// p50/p90/p95/p99/max latency, a log-scaled latency histogram, and
// per-region counts. Latency is additionally split into a cold slice (the
// first request per key — (region, level, delta) for forests, (region,
// level, subtree) for reports — which absorbs lazy bootstraps and first
// LP solves) and a warm slice (steady state), so bootstrap absorption
// stops polluting p99/max.
//
// Usage:
//
//	corgi-loadgen [-server http://127.0.0.1:8080] [-duration 10s]
//	              [-workload forest|report|mobility] [-concurrency 8] [-rate 0]
//	              [-regions sf,nyc,la] [-levels 1,2] [-deltas 0,1,2]
//	              [-mix uniform|zipf] [-cell-mix uniform|zipf]
//	              [-users 1000] [-moves 64] [-report-count 1] [-precision 0]
//	              [-batch 0] [-trace FILE | -checkins FILE]
//	              [-transport http|stream|lease] [-stream-addr host:port]
//	              [-lease-draws 256] [-wire v2|v1] [-seed 1] [-out report.json]
//
// -transport stream sends report and mobility requests over the
// corgi-stream binary transport (persistent TCP, length-prefixed frames)
// instead of HTTP+JSON, against a server started with -stream-addr. Trace
// construction (region listing, tree metadata) still uses the HTTP
// -server. Running the same workload under both transports on the same
// server measures the wire-protocol cost directly — same sessions, same
// draws, different encoding and connection model.
//
// -transport lease moves the draws onto the client: each user stream
// holds a clientdraw lease (one POST /v1/lease pre-pays -lease-draws
// draws' epsilon and carries the customized rows home) and resolves trace
// entries on-device, renewing when the cap runs out or a mobility
// trajectory leaves the leased subtree. Most entries then cost no server
// round trip at all — the per-entry latency histogram shows the
// amortization directly, and 429s on renewal surface as budget
// rejections just like the other transports.
//
// To measure the persistent forest store's effect on cold starts, drive a
// store-backed server and compare latency_cold against a storeless run —
// precomputed keys skip their LP solves entirely:
//
//	corgi-gen -store ./forests -regions sf,nyc,la -max-delta 2
//	corgi-server -addr :18080 -regions sf,nyc,la -store ./forests &
//	corgi-loadgen -server http://127.0.0.1:18080 -duration 15s \
//	              -levels 1,2 -deltas 0,1,2 -out report-store.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"corgi/internal/clientdraw"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/proto"
	"corgi/internal/registry"
	"corgi/internal/stream"
)

// request is one trace entry. Forest entries use (Region, Level, Delta);
// report entries use (Region, Level, Cell, UID, Seed) and carry ColdKey,
// the subtree identity the first-request cold split keys on.
type request struct {
	Region  string
	Level   int
	Delta   int
	Cell    [2]int
	UID     int64
	Seed    int64
	ColdKey string
}

// sample is one measured HTTP round trip.
type sample struct {
	latency time.Duration
	status  int
	bytes   int64
	region  string // "" for batch requests (they span regions)
	err     bool
	// cold marks the first request touching a (region, level, delta) key
	// (any key in the batch, for batch requests): it may absorb a region
	// bootstrap and the key's LP solves, so its latency is reported in a
	// separate slice instead of polluting warm p99/max.
	cold bool
	// reanchored marks a mobility-workload response whose server-side
	// session re-anchored onto a new subtree — the middle latency tier
	// between warm O(1) draws and cold session builds.
	reanchored bool
	// budgetRejected marks a 429: the user's sliding-window epsilon budget
	// was spent. An expected outcome of budget-capped runs, reported as a
	// rate rather than an error.
	budgetRejected bool
	// degraded marks a response served from a planar-Laplace fallback
	// entry (-degraded-serving servers): same epsilon bound, utility below
	// the LP optimum until the background solve lands. For batch requests
	// it means at least one item in the batch was degraded.
	degraded bool
}

// coldTracker decides request temperature: the first request per (region,
// level, delta) across all workers is cold, everything after is warm. A
// failed first request releases its claim (forget), so the request that
// actually absorbs the bootstrap — not a pre-listen connection refusal —
// is the one labeled cold.
type coldTracker struct{ seen sync.Map }

func (t *coldTracker) first(r request) bool {
	_, loaded := t.seen.LoadOrStore(t.key(r), struct{}{})
	return !loaded
}

func (t *coldTracker) forget(r request) { t.seen.Delete(t.key(r)) }

func (t *coldTracker) key(r request) string {
	if r.ColdKey != "" {
		return r.ColdKey
	}
	return fmt.Sprintf("%s|%d|%d", r.Region, r.Level, r.Delta)
}

// worker accumulates samples and per-item outcomes locally to avoid lock
// contention on the hot path; results merge after the run.
type worker struct {
	samples  []sample
	itemsOK  int64
	itemsErr int64
}

func main() {
	server := flag.String("server", "http://127.0.0.1:8080", "corgi-server base URL")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	workload := flag.String("workload", "forest", "request type: forest (matrix distribution), report (server-side draws), or mobility (moving-user report streams)")
	concurrency := flag.Int("concurrency", 8, "worker count (max in-flight requests)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in req/s (0: closed loop)")
	regionsFlag := flag.String("regions", "", "comma-separated regions to hit (empty: ask /v1/regions)")
	levelsFlag := flag.String("levels", "1", "comma-separated privacy levels to mix")
	deltasFlag := flag.String("deltas", "0,1", "comma-separated prune allowances to mix (forest workload)")
	mix := flag.String("mix", "uniform", "region weighting: uniform or zipf")
	cellMix := flag.String("cell-mix", "uniform", "report workload true-cell weighting: uniform or zipf")
	users := flag.Int("users", 1000, "report/mobility workload distinct user-id pool")
	moves := flag.Int("moves", 64, "mobility workload random-waypoint steps per synthetic user")
	reportCount := flag.Int("report-count", 1, "draws per report request")
	precisionFlag := flag.Int("precision", 0, "report workload precision level")
	batch := flag.Int("batch", 0, "pack N trace entries per batched round trip (0: single requests)")
	tracePath := flag.String("trace", "", "trace file: 'region level delta' (forest) or 'region level q r' (report) lines")
	checkinsPath := flag.String("checkins", "", "Gowalla check-in file; per-region weights follow its geography")
	transport := flag.String("transport", "http", "report/mobility transport: http (JSON round trips), stream (corgi-stream binary frames), or lease (client-side draws against POST /v1/lease)")
	streamAddr := flag.String("stream-addr", "", "corgi-stream address, host:port (required with -transport stream)")
	leaseDraws := flag.Int("lease-draws", 256, "draw cap pre-paid per lease (-transport lease)")
	clusterSpec := flag.String("cluster", "",
		"cluster member list, comma-separated streamAddr[=httpURL] entries matching the servers' -cluster-peers: each request routes to its uid's owner node over the same consistent-hash ring (report/mobility workloads, no -batch)")
	wire := flag.String("wire", "v2", "forest encoding to request: v1 or v2")
	seed := flag.Int64("seed", 1, "mix/shuffle seed")
	out := flag.String("out", "", "write the JSON report here (empty: stdout)")
	flag.Parse()

	if *concurrency < 1 {
		log.Fatalf("-concurrency must be >= 1")
	}
	if *wire != "v1" && *wire != "v2" {
		log.Fatalf("-wire must be v1 or v2")
	}
	if *workload != "forest" && *workload != "report" && *workload != "mobility" {
		log.Fatalf("-workload must be forest, report, or mobility")
	}
	if *workload == "mobility" && *batch > 0 {
		log.Fatalf("-batch is not supported by the mobility workload (per-response re-anchor parsing)")
	}
	if *workload == "mobility" && *tracePath != "" {
		log.Fatalf("the mobility workload replays -checkins trajectories or synthesizes random-waypoint walks; -trace is for forest/report")
	}
	if *transport != "http" && *transport != "stream" && *transport != "lease" {
		log.Fatalf("-transport must be http, stream, or lease")
	}
	if *transport == "stream" {
		if *workload == "forest" {
			log.Fatalf("-transport stream serves the report pipeline; use -workload report or mobility")
		}
		if *streamAddr == "" && *clusterSpec == "" {
			log.Fatalf("-transport stream needs -stream-addr (the server's corgi-stream listener; trace building still uses the HTTP -server) or -cluster")
		}
	}
	if *clusterSpec != "" {
		if *workload == "forest" {
			log.Fatalf("-cluster routes the report pipeline; use -workload report or mobility")
		}
		if *batch > 0 {
			log.Fatalf("-batch is not supported with -cluster (batches span users, per-uid routing is per-request)")
		}
		if *transport == "lease" {
			log.Fatalf("-transport lease is not supported with -cluster yet")
		}
	}
	if *transport == "lease" {
		if *workload == "forest" {
			log.Fatalf("-transport lease serves the report pipeline; use -workload report or mobility")
		}
		if *batch > 0 {
			log.Fatalf("-batch is not supported by -transport lease (leases are per-user draw streams)")
		}
		if *leaseDraws < 1 {
			log.Fatalf("-lease-draws must be >= 1")
		}
	}

	// The idle pool must cover every worker or keep-alive connections are
	// torn down and re-dialed constantly (DefaultTransport keeps only 2
	// idle conns per host).
	client := &http.Client{
		Timeout: 10 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency + 8,
			MaxIdleConnsPerHost: *concurrency + 8,
			IdleConnTimeout:     90 * time.Second,
		},
	}
	regions, err := resolveRegions(client, *server, *regionsFlag)
	if err != nil {
		log.Fatalf("regions: %v", err)
	}
	var trace []request
	var traceSource string
	if *workload == "mobility" {
		trace, traceSource, err = buildMobilityTrace(*server, regions, mobilityTraceConfig{
			CheckinsPath: *checkinsPath, Levels: *levelsFlag,
			Users: *users, Moves: *moves, Seed: *seed,
		})
	} else if *workload == "report" {
		trace, traceSource, err = buildReportTrace(*server, regions, reportTraceConfig{
			TracePath: *tracePath, CheckinsPath: *checkinsPath,
			Levels: *levelsFlag, Mix: *mix, CellMix: *cellMix,
			Users: *users, Precision: *precisionFlag, Seed: *seed,
		})
	} else {
		trace, traceSource, err = buildTrace(regions, *tracePath, *checkinsPath, *levelsFlag, *deltasFlag, *mix, *seed)
	}
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	log.Printf("trace: %d %s entries (%s) over regions [%s]", len(trace), *workload, traceSource, strings.Join(regions, ", "))

	// Cluster mode: one ring over the member list, per-uid owner routing.
	var ct *clusterTargets
	if *clusterSpec != "" {
		if ct, err = newClusterTargets(*clusterSpec, *transport, *concurrency); err != nil {
			log.Fatalf("cluster: %v", err)
		}
		defer ct.Close()
	}

	// The stream client pools persistent connections; every worker shares
	// it, and each in-flight exchange checks out its own connection. In
	// cluster mode the per-node clients live in clusterTargets instead.
	var streamClient *stream.Client
	if *transport == "stream" && ct == nil {
		streamClient = stream.NewClient(*streamAddr, stream.ClientConfig{
			Timeout:      10 * time.Minute,
			MaxIdleConns: *concurrency,
		})
		defer streamClient.Close()
	}

	// The lease transport draws on-device: trace entries resolve against
	// per-user clientdraw leases, renewed over POST /v1/lease when a cap
	// runs out or a user's trajectory leaves the leased subtree.
	var leaseMgr *leaseManager
	if *transport == "lease" {
		trees := make(map[string]*loctree.Tree, len(regions))
		for _, r := range regions {
			w, err := fetchRegionWorld(*server, r)
			if err != nil {
				log.Fatalf("lease trees: %v", err)
			}
			trees[r] = w.tree
		}
		draws := *leaseDraws
		if draws < *reportCount {
			// A lease must cover at least one request's draws or no cap
			// could ever serve it.
			draws = *reportCount
		}
		leaseMgr = &leaseManager{
			client: proto.NewClient(*server),
			trees:  trees,
			draws:  draws,
			states: make(map[string]*leaseState),
		}
	}

	workers := make([]*worker, *concurrency)
	for i := range workers {
		workers[i] = &worker{}
	}

	var (
		next    atomic.Int64 // next trace index to issue
		dropped atomic.Int64 // open-loop arrivals that found the queue full
		cold    coldTracker
		wg      sync.WaitGroup
	)
	deadline := time.Now().Add(*duration)
	issue := func(w *worker) {
		idx := next.Add(1) - 1
		switch {
		case leaseMgr != nil:
			entry := trace[int(idx)%len(trace)]
			w.record(doReportLease(leaseMgr, entry, *precisionFlag, *reportCount, &cold))
		case streamClient != nil && *batch > 0:
			w.record(doReportBatchStream(streamClient, trace, idx, *batch, *precisionFlag, *reportCount, &cold))
		case ct != nil && *transport == "stream":
			// Cluster mode: the exchange goes to the uid's owner node over
			// that node's pooled stream client.
			entry := trace[int(idx)%len(trace)]
			w.record(doReportStream(ct.streamFor(entry.UID), entry, *precisionFlag, *reportCount, &cold))
		case streamClient != nil:
			// The stream response always carries the reanchored flag, so one
			// path serves both the report and mobility workloads.
			entry := trace[int(idx)%len(trace)]
			w.record(doReportStream(streamClient, entry, *precisionFlag, *reportCount, &cold))
		case *workload == "mobility":
			entry := trace[int(idx)%len(trace)]
			srv := *server
			if ct != nil {
				srv = ct.httpFor(entry.UID)
			}
			w.record(doMobilityReport(client, srv, entry, *precisionFlag, *reportCount, &cold))
		case *workload == "report" && *batch > 0:
			w.record(doReportBatch(client, *server, trace, idx, *batch, *precisionFlag, *reportCount, &cold))
		case *workload == "report":
			entry := trace[int(idx)%len(trace)]
			srv := *server
			if ct != nil {
				srv = ct.httpFor(entry.UID)
			}
			w.record(doReport(client, srv, entry, *precisionFlag, *reportCount, &cold))
		case *batch > 0:
			w.record(doBatch(client, *server, trace, idx, *batch, *wire, &cold))
		default:
			entry := trace[int(idx)%len(trace)]
			w.record(doSingle(client, *server, entry, *wire, &cold))
		}
	}

	start := time.Now()
	if *rate > 0 {
		// Open loop: a ticker models the arrival process; workers drain a
		// small queue. A full queue drops the arrival instead of stalling
		// the clock, so overload shows up as drops + tail latency.
		queue := make(chan struct{}, *concurrency)
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for range queue {
					issue(w)
				}
			}(w)
		}
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		timer := time.NewTimer(time.Until(deadline))
	arrivals:
		for {
			// Racing the ticker against the deadline keeps low rates from
			// overshooting -duration by a whole interval.
			select {
			case <-ticker.C:
				select {
				case queue <- struct{}{}:
				default:
					dropped.Add(1)
				}
			case <-timer.C:
				break arrivals
			}
		}
		ticker.Stop()
		timer.Stop()
		close(queue)
	} else {
		// Closed loop: each worker issues back-to-back requests.
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					issue(w)
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := summarize(workers, elapsed, config{
		Server: *server, Workload: *workload, Transport: *transport, Regions: regions,
		DurationS:   duration.Seconds(),
		Concurrency: *concurrency, RateRPS: *rate, Batch: *batch,
		Wire: *wire, Mix: *mix, CellMix: *cellMix, ReportCount: *reportCount,
		TraceSource: traceSource,
	})
	if leaseMgr != nil {
		report.Config.LeaseDraws = leaseMgr.draws
	}
	report.DroppedArrivals = dropped.Load()
	if streamClient != nil {
		// Per-sample byte counts are an HTTP-body concept; the stream
		// client accounts transfer at the connection, so report its totals.
		cs := streamClient.Stats()
		report.BytesReceived = int64(cs.BytesIn)
		report.StreamDials = int64(cs.Dials)
		report.StreamRetries = int64(cs.Retries)
	}
	if ct != nil {
		report.PerNode = ct.nodeCounts()
		if *transport == "stream" {
			cs := ct.streamStats()
			report.BytesReceived = int64(cs.BytesIn)
			report.StreamDials = int64(cs.Dials)
			report.StreamRetries = int64(cs.Retries)
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("report: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
		log.Printf("report written to %s", *out)
	}
	if report.Requests == 0 {
		log.Fatalf("no requests completed inside %v", *duration)
	}
}

func (w *worker) record(s sample, itemsOK, itemsErr int64) {
	w.samples = append(w.samples, s)
	w.itemsOK += itemsOK
	w.itemsErr += itemsErr
}

// resolveRegions uses the -regions flag, or asks the server.
func resolveRegions(client *http.Client, server, flagVal string) ([]string, error) {
	if flagVal != "" {
		var regions []string
		for _, r := range strings.Split(flagVal, ",") {
			if r = strings.TrimSpace(r); r != "" {
				regions = append(regions, r)
			}
		}
		if len(regions) == 0 {
			return nil, fmt.Errorf("-regions named no regions")
		}
		return regions, nil
	}
	resp, err := client.Get(server + "/v1/regions")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// Pre-sharding server: drive its single implicit region.
		return []string{""}, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var rr proto.RegionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, err
	}
	regions := make([]string, len(rr.Regions))
	for i, info := range rr.Regions {
		regions[i] = info.Name
	}
	if len(regions) == 0 {
		return nil, fmt.Errorf("server lists no regions")
	}
	return regions, nil
}

// buildTrace materializes the replay trace (bounded; it cycles during the
// run) and names its source for the report.
func buildTrace(regions []string, tracePath, checkinsPath, levelsFlag, deltasFlag, mix string, seed int64) ([]request, string, error) {
	if tracePath != "" && checkinsPath != "" {
		return nil, "", fmt.Errorf("use either -trace or -checkins, not both")
	}
	if tracePath != "" {
		trace, err := loadTrace(tracePath)
		return trace, "replay:" + tracePath, err
	}
	levels, err := parseIntList(levelsFlag)
	if err != nil {
		return nil, "", fmt.Errorf("-levels: %w", err)
	}
	deltas, err := parseIntList(deltasFlag)
	if err != nil {
		return nil, "", fmt.Errorf("-deltas: %w", err)
	}
	weights := make([]float64, len(regions))
	source := "synthetic:" + mix
	switch {
	case checkinsPath != "":
		if err := checkinWeights(checkinsPath, regions, weights); err != nil {
			return nil, "", err
		}
		source = "gowalla:" + checkinsPath
	case mix == "zipf":
		for i := range weights {
			weights[i] = 1 / float64(i+1) // Zipf s=1 over region order
		}
	case mix == "uniform":
		for i := range weights {
			weights[i] = 1
		}
	default:
		return nil, "", fmt.Errorf("unknown -mix %q (uniform or zipf)", mix)
	}
	const traceLen = 65536
	rng := rand.New(rand.NewSource(seed))
	trace := make([]request, traceLen)
	for i := range trace {
		trace[i] = request{
			Region: regions[weightedPick(rng, weights)],
			Level:  levels[rng.Intn(len(levels))],
			Delta:  deltas[rng.Intn(len(deltas))],
		}
	}
	return trace, source, nil
}

// reportTraceConfig bundles the report-workload trace parameters.
type reportTraceConfig struct {
	TracePath    string
	CheckinsPath string
	Levels       string
	Mix          string
	CellMix      string
	Users        int
	Precision    int
	Seed         int64
}

// regionWorld is one region's client-side view for trace building: its
// rebuilt tree and leaf list.
type regionWorld struct {
	tree   *loctree.Tree
	leaves []loctree.NodeID
}

// fetchRegionWorld rebuilds one region's tree from /v1/tree.
func fetchRegionWorld(server, region string) (*regionWorld, error) {
	tree, _, err := proto.NewRegionClient(server, region).FetchTree()
	if err != nil {
		return nil, fmt.Errorf("region %q tree: %w", region, err)
	}
	return &regionWorld{tree: tree, leaves: tree.LevelNodes(0)}, nil
}

// reportColdKey identifies the server work a report request can be the
// first to absorb: the (region, level, subtree) whose forest entry must be
// solved. Distinct cells of one subtree share the key, so only the true
// first solve lands in the cold latency slice.
func reportColdKey(w *regionWorld, region string, level int, leaf loctree.NodeID) string {
	if root, ok := w.tree.AncestorAt(leaf, level); ok {
		return fmt.Sprintf("%s|%d|%v", region, level, root)
	}
	return fmt.Sprintf("%s|%d|%v", region, level, leaf)
}

// buildReportTrace materializes the report-workload trace: every entry
// carries a true cell (uniform or Zipf-weighted over the region's leaves),
// a user id from the -users pool with a per-user seed (so one user's
// repeat requests hit one server session), and the privacy level mix.
func buildReportTrace(server string, regions []string, cfg reportTraceConfig) ([]request, string, error) {
	if cfg.TracePath != "" && cfg.CheckinsPath != "" {
		return nil, "", fmt.Errorf("use either -trace or -checkins, not both")
	}
	worlds := map[string]*regionWorld{}
	world := func(region string) (*regionWorld, error) {
		if w, ok := worlds[region]; ok {
			return w, nil
		}
		w, err := fetchRegionWorld(server, region)
		if err != nil {
			return nil, err
		}
		worlds[region] = w
		return w, nil
	}

	if cfg.TracePath != "" {
		entries, err := loadReportTrace(cfg.TracePath, cfg.Users, cfg.Seed, world)
		return entries, "replay:" + cfg.TracePath, err
	}

	levels, err := parseIntList(cfg.Levels)
	if err != nil {
		return nil, "", fmt.Errorf("-levels: %w", err)
	}
	weights := make([]float64, len(regions))
	source := "synthetic:" + cfg.Mix + "/cells:" + cfg.CellMix
	switch {
	case cfg.CheckinsPath != "":
		if err := checkinWeights(cfg.CheckinsPath, regions, weights); err != nil {
			return nil, "", err
		}
		source = "gowalla:" + cfg.CheckinsPath + "/cells:" + cfg.CellMix
	case cfg.Mix == "zipf":
		for i := range weights {
			weights[i] = 1 / float64(i+1)
		}
	case cfg.Mix == "uniform":
		for i := range weights {
			weights[i] = 1
		}
	default:
		return nil, "", fmt.Errorf("unknown -mix %q (uniform or zipf)", cfg.Mix)
	}
	cellWeights := map[string][]float64{}
	for _, region := range regions {
		w, err := world(region)
		if err != nil {
			return nil, "", err
		}
		cw := make([]float64, len(w.leaves))
		switch cfg.CellMix {
		case "zipf":
			for i := range cw {
				cw[i] = 1 / float64(i+1) // Zipf s=1 over leaf order
			}
		case "uniform":
			for i := range cw {
				cw[i] = 1
			}
		default:
			return nil, "", fmt.Errorf("unknown -cell-mix %q (uniform or zipf)", cfg.CellMix)
		}
		cellWeights[region] = cw
	}
	users := cfg.Users
	if users < 1 {
		users = 1
	}
	const traceLen = 65536
	rng := rand.New(rand.NewSource(cfg.Seed))
	trace := make([]request, traceLen)
	for i := range trace {
		region := regions[weightedPick(rng, weights)]
		w := worlds[region]
		leaf := w.leaves[weightedPick(rng, cellWeights[region])]
		level := levels[rng.Intn(len(levels))]
		uid := int64(rng.Intn(users))
		trace[i] = request{
			Region:  region,
			Level:   level,
			Cell:    [2]int{leaf.Coord.Q, leaf.Coord.R},
			UID:     uid,
			Seed:    uid*1000003 + 7, // per-user stream: repeat requests share a session
			ColdKey: reportColdKey(w, region, level, leaf),
		}
	}
	return trace, source, nil
}

// mobilityTraceConfig bundles the mobility-workload trace parameters.
type mobilityTraceConfig struct {
	CheckinsPath string
	Levels       string
	Users        int
	Moves        int
	Seed         int64
}

// buildMobilityTrace materializes a moving-user trace: an interleaved
// timeline of per-user cell sequences. Each user keeps one privacy level
// and one session stream (uid-derived seed) for their whole trajectory, so
// the server re-anchors the resident session whenever the trajectory
// crosses a subtree boundary — the mobility hot path under test.
//
// Sources:
//
//   - a Gowalla check-in file (-checkins): each user's check-ins become
//     their trajectory (time-ordered), mapped to the nearest region and
//     that region's leaf cells; the global timeline interleaves users in
//     true timestamp order, the shape of real mobile traffic;
//   - synthetic (default): a random-waypoint walk per user — pick a
//     waypoint leaf, step through the leaf lattice toward it, pick the
//     next — interleaved round-robin.
func buildMobilityTrace(server string, regions []string, cfg mobilityTraceConfig) ([]request, string, error) {
	levels, err := parseIntList(cfg.Levels)
	if err != nil {
		return nil, "", fmt.Errorf("-levels: %w", err)
	}
	worlds := map[string]*regionWorld{}
	for _, region := range regions {
		w, err := fetchRegionWorld(server, region)
		if err != nil {
			return nil, "", err
		}
		worlds[region] = w
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.CheckinsPath != "" {
		trace, err := gowallaMobilityTrace(cfg.CheckinsPath, regions, worlds, levels, rng)
		return trace, "gowalla-trajectories:" + cfg.CheckinsPath, err
	}
	trace, err := waypointMobilityTrace(regions, worlds, levels, cfg.Users, cfg.Moves, rng)
	return trace, "synthetic:random-waypoint", err
}

// mobilityRequest assembles one trace entry for a user standing at leaf.
func mobilityRequest(w *regionWorld, region string, level int, leaf loctree.NodeID, uid int64) request {
	return request{
		Region:  region,
		Level:   level,
		Cell:    [2]int{leaf.Coord.Q, leaf.Coord.R},
		UID:     uid,
		Seed:    uid*1000003 + 7,
		ColdKey: reportColdKey(w, region, level, leaf),
	}
}

// gowallaMobilityTrace replays real per-user check-in sequences: each
// check-in maps to the nearest region's tree (points outside every tree
// are dropped), users become uid streams, and the flat trace preserves the
// corpus's global time order — so per-user move order survives replay.
func gowallaMobilityTrace(path string, regions []string, worlds map[string]*regionWorld,
	levels []int, rng *rand.Rand) ([]request, error) {
	cs, err := gowalla.LoadFile(path)
	if err != nil {
		return nil, err
	}
	centers, err := regionCenters(regions)
	if err != nil {
		return nil, err
	}
	type point struct {
		ts    time.Time
		req   request
		order int
	}
	var points []point
	dropped := 0
	for _, traj := range gowalla.Trajectories(cs) {
		// One privacy level per user, fixed for their whole trajectory
		// (Trajectories yields each user exactly once).
		lvl := levels[rng.Intn(len(levels))]
		for _, c := range traj.Points {
			best, bestDist := -1, math.MaxFloat64
			for i, center := range centers {
				if d := geo.Haversine(c.Loc, center); d < bestDist {
					best, bestDist = i, d
				}
			}
			region := regions[best]
			w := worlds[region]
			leaf, ok := w.tree.Locate(c.Loc, 0)
			if !ok {
				dropped++
				continue
			}
			points = append(points, point{
				ts:    c.Time,
				req:   mobilityRequest(w, region, lvl, leaf, int64(traj.UserID)),
				order: len(points),
			})
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("%s: no check-ins landed inside any serving region", path)
	}
	if dropped > 0 {
		log.Printf("mobility trace: dropped %d of %d check-ins outside every region's tree",
			dropped, dropped+len(points))
	}
	sort.SliceStable(points, func(a, b int) bool {
		if !points[a].ts.Equal(points[b].ts) {
			return points[a].ts.Before(points[b].ts)
		}
		return points[a].order < points[b].order
	})
	trace := make([]request, len(points))
	for i, p := range points {
		trace[i] = p.req
	}
	return trace, nil
}

// waypointMobilityTrace synthesizes random-waypoint walks: each user
// starts at a random leaf of their region, repeatedly picks a waypoint
// leaf, and steps through the lattice toward it (greedy neighbor descent
// on hex grid distance), reporting from every cell visited. User timelines
// interleave round-robin.
func waypointMobilityTrace(regions []string, worlds map[string]*regionWorld,
	levels []int, users, moves int, rng *rand.Rand) ([]request, error) {
	if users < 1 {
		users = 1
	}
	if moves < 1 {
		moves = 1
	}
	// One leaf-coordinate index per region, shared by every walker in it.
	leafSets := make(map[string]map[hexgrid.Coord]loctree.NodeID, len(regions))
	for _, region := range regions {
		w := worlds[region]
		leafSet := make(map[hexgrid.Coord]loctree.NodeID, len(w.leaves))
		for _, l := range w.leaves {
			leafSet[l.Coord] = l
		}
		leafSets[region] = leafSet
	}
	type walker struct {
		region   string
		level    int
		at       loctree.NodeID
		waypoint loctree.NodeID
	}
	walkers := make([]*walker, users)
	for u := range walkers {
		region := regions[u%len(regions)]
		w := worlds[region]
		walkers[u] = &walker{
			region:   region,
			level:    levels[rng.Intn(len(levels))],
			at:       w.leaves[rng.Intn(len(w.leaves))],
			waypoint: w.leaves[rng.Intn(len(w.leaves))],
		}
	}
	trace := make([]request, 0, users*moves)
	for step := 0; step < moves; step++ {
		for u, wk := range walkers {
			w := worlds[wk.region]
			trace = append(trace, mobilityRequest(w, wk.region, wk.level, wk.at, int64(u)))
			if wk.at == wk.waypoint {
				wk.waypoint = w.leaves[rng.Intn(len(w.leaves))]
			}
			wk.at = stepToward(wk.at, wk.waypoint, leafSets[wk.region])
		}
	}
	return trace, nil
}

// stepToward moves one lattice step from at toward waypoint, restricted to
// leaves that exist in the region (the tree's hull is not convex in axial
// coordinates, so a neighbor on the straight line may not exist). When no
// neighboring leaf gets closer, it jumps to the waypoint — trading one
// teleport for guaranteed progress.
func stepToward(at, waypoint loctree.NodeID, leafSet map[hexgrid.Coord]loctree.NodeID) loctree.NodeID {
	if at == waypoint {
		return at
	}
	best := at
	bestDist := hexgrid.GridDist(at.Coord, waypoint.Coord)
	for _, nb := range hexgrid.Neighbors(at.Coord) {
		leaf, ok := leafSet[nb]
		if !ok {
			continue
		}
		if d := hexgrid.GridDist(nb, waypoint.Coord); d < bestDist {
			best, bestDist = leaf, d
		}
	}
	if best == at {
		return waypoint
	}
	return best
}

// loadReportTrace parses "region level q r" lines; '#' starts a comment.
func loadReportTrace(path string, users int, seed int64, world func(string) (*regionWorld, error)) ([]request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if users < 1 {
		users = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var trace []request
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: want 'region level q r', got %q", path, line, text)
		}
		level, err1 := strconv.Atoi(fields[1])
		q, err2 := strconv.Atoi(fields[2])
		r, err3 := strconv.Atoi(fields[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s:%d: bad integers in %q", path, line, text)
		}
		w, err := world(fields[0])
		if err != nil {
			return nil, err
		}
		uid := int64(rng.Intn(users))
		leaf := loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: q, R: r}}
		trace = append(trace, request{
			Region:  fields[0],
			Level:   level,
			Cell:    [2]int{q, r},
			UID:     uid,
			Seed:    uid*1000003 + 7,
			ColdKey: reportColdKey(w, fields[0], level, leaf),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("%s: empty trace", path)
	}
	return trace, nil
}

// checkinWeights assigns each check-in to the nearest serving region
// center (resolved via /v1/regions metadata is unavailable here, so the
// builtin metro table and the check-in geography decide) and normalizes
// the counts into mix weights.
func checkinWeights(path string, regions []string, weights []float64) error {
	cs, err := gowalla.LoadFile(path)
	if err != nil {
		return err
	}
	centers, err := regionCenters(regions)
	if err != nil {
		return err
	}
	matched := 0.0
	for _, c := range cs {
		best, bestDist := -1, math.MaxFloat64
		for i, center := range centers {
			if d := geo.Haversine(c.Loc, center); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best >= 0 {
			weights[best]++
			matched++
		}
	}
	if matched == 0 {
		return fmt.Errorf("%s: no check-ins matched any region", path)
	}
	for i, w := range weights {
		if w == 0 {
			weights[i] = 1 // keep every region reachable
		}
	}
	return nil
}

// regionCenters resolves region names to builtin metro centers for
// check-in assignment.
func regionCenters(regions []string) ([]geo.LatLng, error) {
	centers := make([]geo.LatLng, len(regions))
	for i, name := range regions {
		spec, ok := registry.BuiltinSpec(name)
		if !ok {
			return nil, fmt.Errorf("region %q is not a builtin metro; -checkins weighting needs builtin regions", name)
		}
		centers[i] = spec.Center()
	}
	return centers, nil
}

// loadTrace parses "region level delta" lines; '#' starts a comment.
func loadTrace(path string) ([]request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var trace []request
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'region level delta', got %q", path, line, text)
		}
		level, err1 := strconv.Atoi(fields[1])
		delta, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%s:%d: bad integers in %q", path, line, text)
		}
		trace = append(trace, request{Region: fields[0], Level: level, Delta: delta})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("%s: empty trace", path)
	}
	return trace, nil
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func weightedPick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// doSingle issues one region-addressed forest request.
func doSingle(client *http.Client, server string, entry request, wire string, cold *coldTracker) (sample, int64, int64) {
	isCold := cold.first(entry)
	body, _ := json.Marshal(proto.MatrixRequest{PrivacyLevel: entry.Level, Delta: entry.Delta})
	target := server + "/v1/forest"
	if entry.Region != "" {
		target += "?region=" + url.QueryEscape(entry.Region)
	}
	req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		if isCold {
			cold.forget(entry)
		}
		return sample{region: entry.Region, err: true, cold: isCold}, 0, 1
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	if wire == "v2" {
		req.Header.Set("Accept", proto.ContentTypeForestV2+", application/json")
	}
	s := roundTrip(client, req)
	s.region = entry.Region
	s.cold = isCold
	if s.err {
		if isCold {
			cold.forget(entry)
		}
		return s, 0, 1
	}
	return s, 1, 0
}

// doBatch packs n consecutive trace entries into one /v1/forests request
// and counts per-item outcomes from the envelope.
func doBatch(client *http.Client, server string, trace []request, idx int64, n int, wire string, cold *coldTracker) (sample, int64, int64) {
	items := make([]proto.BatchItem, n)
	entries := make([]request, n)
	claimed := make([]bool, n) // this batch first-saw entry i's key
	isCold := false
	for i := 0; i < n; i++ {
		entries[i] = trace[int(idx*int64(n)+int64(i))%len(trace)]
		items[i] = proto.BatchItem{Region: entries[i].Region, PrivacyLevel: entries[i].Level, Delta: entries[i].Delta}
		if cold.first(entries[i]) {
			claimed[i] = true
			isCold = true
		}
	}
	// A failed request — or a failed item inside a 200 envelope — releases
	// its cold claims so the request that really absorbs each key's
	// bootstrap gets the cold label.
	forgetAll := func() {
		for i, c := range claimed {
			if c {
				cold.forget(entries[i])
			}
		}
	}
	body, _ := json.Marshal(proto.BatchForestRequest{Items: items})
	req, err := http.NewRequest(http.MethodPost, server+"/v1/forests", bytes.NewReader(body))
	if err != nil {
		forgetAll()
		return sample{err: true, cold: isCold}, 0, int64(n)
	}
	req.Header.Set("Content-Type", "application/json")
	// No explicit Accept-Encoding here: the transport negotiates gzip on
	// its own and transparently decompresses, which the envelope decode
	// below relies on.
	if wire == "v2" {
		req.Header.Set("Accept", proto.ContentTypeForestV2+", application/json")
	}

	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		forgetAll()
		return sample{latency: time.Since(start), err: true, cold: isCold}, 0, int64(n)
	}
	defer resp.Body.Close()
	var envelope proto.BatchForestResponse
	dec := json.NewDecoder(resp.Body)
	decodeErr := dec.Decode(&envelope)
	s := sample{latency: time.Since(start), status: resp.StatusCode, cold: isCold}
	if resp.StatusCode != http.StatusOK || decodeErr != nil {
		forgetAll()
		s.err = true
		return s, 0, int64(n)
	}
	var ok, bad int64
	for i, item := range envelope.Items {
		if item.Status == http.StatusOK {
			ok++
		} else {
			bad++
			if i < len(claimed) && claimed[i] {
				cold.forget(entries[i])
			}
		}
	}
	return s, ok, bad
}

// reportWireRequest translates a trace entry into the /v1/report body.
func reportWireRequest(entry request, precision, count int) proto.ReportRequest {
	return proto.ReportRequest{
		Region: entry.Region,
		Cell:   entry.Cell,
		UID:    entry.UID,
		Policy: policy.Policy{PrivacyLevel: entry.Level, PrecisionLevel: precision},
		Seed:   entry.Seed,
		Count:  count,
	}
}

// doReport issues one POST /v1/report draw.
func doReport(client *http.Client, server string, entry request, precision, count int, cold *coldTracker) (sample, int64, int64) {
	isCold := cold.first(entry)
	body, _ := json.Marshal(reportWireRequest(entry, precision, count))
	req, err := http.NewRequest(http.MethodPost, server+"/v1/report", bytes.NewReader(body))
	if err != nil {
		if isCold {
			cold.forget(entry)
		}
		return sample{region: entry.Region, err: true, cold: isCold}, 0, 1
	}
	req.Header.Set("Content-Type", "application/json")
	s, body := roundTripBody(client, req)
	s.region = entry.Region
	s.cold = isCold
	if s.err {
		if isCold {
			cold.forget(entry)
		}
		return s, 0, 1
	}
	var rr proto.ReportResponse
	if json.Unmarshal(body, &rr) == nil {
		s.degraded = rr.Degraded
	}
	return s, 1, 0
}

// doMobilityReport issues one POST /v1/report draw and, unlike doReport,
// decodes the response body: the mobility report needs the server's
// reanchored flag to split latency by temperature, and a 429 marks a
// budget rejection rather than a generic error.
func doMobilityReport(client *http.Client, server string, entry request, precision, count int, cold *coldTracker) (sample, int64, int64) {
	isCold := cold.first(entry)
	body, _ := json.Marshal(reportWireRequest(entry, precision, count))
	req, err := http.NewRequest(http.MethodPost, server+"/v1/report", bytes.NewReader(body))
	if err != nil {
		if isCold {
			cold.forget(entry)
		}
		return sample{region: entry.Region, err: true, cold: isCold}, 0, 1
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if isCold {
			cold.forget(entry)
		}
		return sample{latency: time.Since(start), region: entry.Region, err: true, cold: isCold}, 0, 1
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	s := sample{
		latency: time.Since(start),
		status:  resp.StatusCode,
		bytes:   int64(len(body)),
		region:  entry.Region,
		cold:    isCold,
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// An expected outcome of budget-capped runs: the user's epsilon
		// window is just spent. The server charges before any session or
		// entry work, so a 429 absorbed no subtree bootstrap — release the
		// cold claim so the first *granted* request keeps the cold label,
		// and keep the cheap rejection round trip out of the cold slice.
		s.budgetRejected = true
		if isCold {
			s.cold = false
			cold.forget(entry)
		}
		return s, 0, 1
	}
	var rr proto.ReportResponse
	if resp.StatusCode != http.StatusOK || readErr != nil || json.Unmarshal(body, &rr) != nil {
		s.err = true
		if isCold {
			cold.forget(entry)
		}
		return s, 0, 1
	}
	s.reanchored = rr.Reanchored
	s.degraded = rr.Degraded
	return s, 1, 0
}

// doReportBatch packs n consecutive trace entries into one /v1/reports
// request and counts per-item outcomes from the envelope.
func doReportBatch(client *http.Client, server string, trace []request, idx int64, n, precision, count int, cold *coldTracker) (sample, int64, int64) {
	items := make([]proto.ReportRequest, n)
	entries := make([]request, n)
	claimed := make([]bool, n)
	isCold := false
	for i := 0; i < n; i++ {
		entries[i] = trace[int(idx*int64(n)+int64(i))%len(trace)]
		items[i] = reportWireRequest(entries[i], precision, count)
		if cold.first(entries[i]) {
			claimed[i] = true
			isCold = true
		}
	}
	forgetAll := func() {
		for i, c := range claimed {
			if c {
				cold.forget(entries[i])
			}
		}
	}
	body, _ := json.Marshal(proto.BatchReportRequest{Items: items})
	req, err := http.NewRequest(http.MethodPost, server+"/v1/reports", bytes.NewReader(body))
	if err != nil {
		forgetAll()
		return sample{err: true, cold: isCold}, 0, int64(n)
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		forgetAll()
		return sample{latency: time.Since(start), err: true, cold: isCold}, 0, int64(n)
	}
	defer resp.Body.Close()
	var envelope proto.BatchReportResponse
	decodeErr := json.NewDecoder(resp.Body).Decode(&envelope)
	s := sample{latency: time.Since(start), status: resp.StatusCode, cold: isCold}
	if resp.StatusCode != http.StatusOK || decodeErr != nil {
		forgetAll()
		s.err = true
		return s, 0, int64(n)
	}
	var ok, bad int64
	for i, item := range envelope.Items {
		if item.Status == http.StatusOK {
			ok++
			if item.Report != nil && item.Report.Degraded {
				s.degraded = true
			}
		} else {
			bad++
			if i < len(claimed) && claimed[i] {
				cold.forget(entries[i])
			}
		}
	}
	return s, ok, bad
}

// streamWireRequest is reportWireRequest for the binary transport.
func streamWireRequest(entry request, precision, count int) stream.Request {
	return stream.Request{
		Region: entry.Region,
		Cell:   entry.Cell,
		UID:    entry.UID,
		Policy: policy.Policy{PrivacyLevel: entry.Level, PrecisionLevel: precision},
		Seed:   entry.Seed,
		Count:  count,
	}
}

// doReportStream issues one REPORT frame over corgi-stream. The decoded
// response always carries the reanchored flag, so this one function
// serves both the report and mobility workloads; a 429 StatusError marks
// a budget rejection exactly like doMobilityReport's HTTP path.
func doReportStream(sc *stream.Client, entry request, precision, count int, cold *coldTracker) (sample, int64, int64) {
	isCold := cold.first(entry)
	start := time.Now()
	resp, err := sc.Report(streamWireRequest(entry, precision, count))
	s := sample{latency: time.Since(start), region: entry.Region, cold: isCold}
	if err != nil {
		var se *stream.StatusError
		if errors.As(err, &se) {
			s.status = se.Status
			if se.Status == http.StatusTooManyRequests {
				// Same accounting as the HTTP path: the rejection absorbed
				// no session work, so release the cold claim for the first
				// granted request.
				s.budgetRejected = true
				if isCold {
					s.cold = false
					cold.forget(entry)
				}
				return s, 0, 1
			}
		}
		s.err = true
		if isCold {
			cold.forget(entry)
		}
		return s, 0, 1
	}
	s.status = http.StatusOK
	s.reanchored = resp.Reanchored
	s.degraded = resp.Degraded
	return s, 1, 0
}

// doReportBatchStream packs n consecutive trace entries into one REPORTS
// frame and counts per-item outcomes, mirroring doReportBatch.
func doReportBatchStream(sc *stream.Client, trace []request, idx int64, n, precision, count int, cold *coldTracker) (sample, int64, int64) {
	items := make([]stream.Request, n)
	entries := make([]request, n)
	claimed := make([]bool, n)
	isCold := false
	for i := 0; i < n; i++ {
		entries[i] = trace[int(idx*int64(n)+int64(i))%len(trace)]
		items[i] = streamWireRequest(entries[i], precision, count)
		if cold.first(entries[i]) {
			claimed[i] = true
			isCold = true
		}
	}
	start := time.Now()
	results, err := sc.ReportBatch(items)
	s := sample{latency: time.Since(start), cold: isCold}
	if err != nil {
		for i, c := range claimed {
			if c {
				cold.forget(entries[i])
			}
		}
		var se *stream.StatusError
		if errors.As(err, &se) {
			s.status = se.Status
		}
		s.err = true
		return s, 0, int64(n)
	}
	s.status = http.StatusOK
	var ok, bad int64
	for i, item := range results {
		if item.Status == http.StatusOK {
			ok++
			if item.Report != nil && item.Report.Degraded {
				s.degraded = true
			}
		} else {
			bad++
			if i < len(claimed) && claimed[i] {
				cold.forget(entries[i])
			}
		}
	}
	return s, ok, bad
}

// leaseManager holds the lease transport's per-user state: one clientdraw
// lease per (region, uid, seed, policy) session stream, renewed over POST
// /v1/lease when its cap runs out or the user's trajectory leaves the
// leased subtree. The states map is keyed exactly like server-side
// sessions, so one loadgen user maps onto one server RNG stream.
type leaseManager struct {
	client *proto.Client
	trees  map[string]*loctree.Tree
	draws  int

	mu     sync.Mutex
	states map[string]*leaseState
}

// leaseState is one user stream's lease; its mutex serializes that
// stream's draws and renewals (matching the per-connection FIFO ordering
// the stream transport gives a user), while distinct users proceed in
// parallel.
type leaseState struct {
	mu    sync.Mutex
	lease *clientdraw.Lease
}

func (m *leaseManager) state(key string) *leaseState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[key]
	if !ok {
		st = &leaseState{}
		m.states[key] = st
	}
	return st
}

// doReportLease resolves one trace entry through the lease transport:
// draw on-device from the user's open lease, acquiring or renewing it
// first when needed. The measured latency covers whatever the entry
// actually cost — near-zero for a leased draw, one HTTP round trip when a
// renewal was due — which is exactly the amortization the transport
// sells. A 429 on renewal is a budget rejection like the other
// transports; a 403 on an expired token falls back to one fresh
// (un-renewed) lease attempt.
func doReportLease(m *leaseManager, entry request, precision, count int, cold *coldTracker) (sample, int64, int64) {
	st := m.state(fmt.Sprintf("%s|%d|%d|%d|%d", entry.Region, entry.UID, entry.Seed, entry.Level, precision))
	st.mu.Lock()
	defer st.mu.Unlock()

	tree := m.trees[entry.Region]
	leaf := loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: entry.Cell[0], R: entry.Cell[1]}}
	isCold := cold.first(entry)
	s := sample{region: entry.Region, cold: isCold}
	fail := func(start time.Time) (sample, int64, int64) {
		s.latency = time.Since(start)
		s.err = true
		if isCold {
			cold.forget(entry)
		}
		return s, 0, 1
	}
	out := make([]loctree.NodeID, count)
	start := time.Now()
	for attempt := 0; ; attempt++ {
		if st.lease != nil && tree != nil {
			err := st.lease.DrawCellNInto(leaf, out)
			if err == nil {
				s.latency = time.Since(start)
				s.status = http.StatusOK
				s.degraded = st.lease.Degraded()
				return s, 1, 0
			}
			if !errors.Is(err, clientdraw.ErrLeaseExhausted) && !errors.Is(err, clientdraw.ErrOutsideSubtree) {
				return fail(start)
			}
			// Cap spent or the user moved off the leased subtree: renew.
		}
		if attempt >= 3 {
			return fail(start)
		}
		var token []byte
		if st.lease != nil {
			token = st.lease.Token()
		}
		lr, err := m.client.Lease(proto.LeaseRequest{
			Region: entry.Region,
			Cell:   entry.Cell,
			UID:    entry.UID,
			Policy: policy.Policy{PrivacyLevel: entry.Level, PrecisionLevel: precision},
			Seed:   entry.Seed,
			Draws:  m.draws,
			Token:  token,
		})
		if err != nil {
			var le *proto.LeaseError
			if errors.As(err, &le) {
				if le.Status == http.StatusTooManyRequests {
					// Same accounting as the other transports: the refused
					// renewal absorbed no session work, so release the cold
					// claim for the first granted request.
					s.latency = time.Since(start)
					s.status = le.Status
					s.budgetRejected = true
					if isCold {
						s.cold = false
						cold.forget(entry)
					}
					return s, 0, 1
				}
				if le.Status == http.StatusForbidden && token != nil {
					// The renewal token expired while the lease idled; one
					// fresh lease continues the stream (the server session
					// still holds the position).
					st.lease = nil
					continue
				}
				s.status = le.Status
			}
			return fail(start)
		}
		var lease *clientdraw.Lease
		if st.lease != nil {
			// Renewal: hand the live RNG stream to the next window instead
			// of replaying O(position) variates from the seed.
			lease, err = st.lease.Renew(lr.Bundle, lr.Token)
		} else {
			lease, err = clientdraw.Open(tree, lr.Bundle, lr.Token)
		}
		if err != nil {
			st.lease = nil
			return fail(start)
		}
		st.lease = lease
		if lr.Reanchored {
			s.reanchored = true
		}
	}
}

// roundTrip measures one request to full-body completion.
func roundTrip(client *http.Client, req *http.Request) sample {
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{latency: time.Since(start), err: true}
	}
	defer resp.Body.Close()
	n, _ := io.Copy(io.Discard, resp.Body)
	s := sample{latency: time.Since(start), status: resp.StatusCode, bytes: n}
	s.err = resp.StatusCode != http.StatusOK
	return s
}

// roundTripBody is roundTrip for callers that need a flag out of the
// response body; the returned bytes are nil on transport errors, and the
// measured latency still covers full-body completion.
func roundTripBody(client *http.Client, req *http.Request) (sample, []byte) {
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sample{latency: time.Since(start), err: true}, nil
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	s := sample{latency: time.Since(start), status: resp.StatusCode, bytes: int64(len(body))}
	s.err = resp.StatusCode != http.StatusOK
	return s, body
}

// config echoes the run parameters into the report.
type config struct {
	Server      string   `json:"server"`
	Workload    string   `json:"workload"`
	Transport   string   `json:"transport,omitempty"`
	Regions     []string `json:"regions"`
	DurationS   float64  `json:"duration_s"`
	Concurrency int      `json:"concurrency"`
	RateRPS     float64  `json:"rate_rps"`
	Batch       int      `json:"batch"`
	Wire        string   `json:"wire"`
	Mix         string   `json:"mix"`
	CellMix     string   `json:"cell_mix,omitempty"`
	ReportCount int      `json:"report_count,omitempty"`
	// LeaseDraws is the pre-paid cap per lease (-transport lease only).
	LeaseDraws  int    `json:"lease_draws,omitempty"`
	TraceSource string `json:"trace_source"`
}

// latencySummary is the quantile block of the report, in milliseconds.
type latencySummary struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// histBucket is one log-scaled latency histogram bin.
type histBucket struct {
	UpToMs float64 `json:"up_to_ms"`
	Count  int64   `json:"count"`
}

// regionReport is one region's slice of the run.
type regionReport struct {
	Requests int64           `json:"requests"`
	Errors   int64           `json:"errors"`
	Latency  *latencySummary `json:"latency,omitempty"`
}

// report is the JSON output. Latency splits three ways: the overall
// distribution, the cold slice (first request per (region, level, delta) —
// absorbs lazy bootstraps and first solves), and the warm slice
// (everything else — the steady-state serving latency). Without the split,
// a handful of multi-second bootstraps pollute p99/max of a run whose
// steady state sits at single-digit milliseconds.
type report struct {
	Config          config  `json:"config"`
	ElapsedS        float64 `json:"elapsed_s"`
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	DroppedArrivals int64   `json:"dropped_arrivals"`
	ItemsOK         int64   `json:"items_ok"`
	ItemsErr        int64   `json:"items_err"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	ItemsPerSec     float64 `json:"items_per_sec"`
	ReportsPerSec   float64 `json:"reports_per_sec,omitempty"`
	BytesReceived   int64   `json:"bytes_received"`
	// StreamDials/StreamRetries appear on -transport stream runs: how many
	// TCP connections the pooled client opened and how many exchanges it
	// replayed on a fresh connection after a pooled one failed.
	StreamDials   int64 `json:"stream_dials,omitempty"`
	StreamRetries int64 `json:"stream_retries,omitempty"`
	ColdRequests  int64 `json:"cold_requests"`
	// Reanchors counts mobility responses whose server-side session moved
	// onto a new subtree; ReanchorRate is Reanchors over successful
	// requests. BudgetRejections counts 429s (the user's sliding-window
	// epsilon budget was spent); BudgetRejectionRate is over all requests.
	Reanchors           int64   `json:"reanchors,omitempty"`
	ReanchorRate        float64 `json:"reanchor_rate,omitempty"`
	BudgetRejections    int64   `json:"budget_rejections,omitempty"`
	BudgetRejectionRate float64 `json:"budget_rejection_rate,omitempty"`
	// DegradedReports counts responses served from a planar-Laplace
	// fallback entry (-degraded-serving servers); DegradedRate is over
	// successful requests. LatencyDegraded slices their latency out, so a
	// cold-region run shows the degraded-vs-optimal serving split
	// directly: degraded responses arrive in milliseconds while the LP
	// optimum is still solving in the background.
	DegradedReports int64           `json:"degraded_reports,omitempty"`
	DegradedRate    float64         `json:"degraded_rate,omitempty"`
	LatencyDegraded *latencySummary `json:"latency_degraded,omitempty"`
	Latency         latencySummary  `json:"latency"`
	LatencyCold     *latencySummary `json:"latency_cold,omitempty"`
	LatencyWarm     *latencySummary `json:"latency_warm,omitempty"`
	// LatencyReanchor slices out the mobility middle tier: requests that
	// re-anchored a session (preference re-evaluation + entry lookup, but
	// no cold session build). Warm then means steady-state O(1) draws.
	LatencyReanchor *latencySummary         `json:"latency_reanchor,omitempty"`
	Histogram       []histBucket            `json:"latency_histogram"`
	StatusCounts    map[string]int64        `json:"status_counts"`
	PerRegion       map[string]regionReport `json:"per_region"`
	// PerNode is the -cluster request distribution: how many requests the
	// ring routed to each member node.
	PerNode map[string]int64 `json:"per_node,omitempty"`
}

func summarize(workers []*worker, elapsed time.Duration, cfg config) *report {
	rep := &report{
		Config:       cfg,
		ElapsedS:     elapsed.Seconds(),
		StatusCounts: map[string]int64{},
		PerRegion:    map[string]regionReport{},
	}
	var all, coldMs, warmMs, reanchorMs, degradedMs []float64
	perRegion := map[string][]float64{}
	var okRequests int64
	for _, w := range workers {
		rep.ItemsOK += w.itemsOK
		rep.ItemsErr += w.itemsErr
		for _, s := range w.samples {
			rep.Requests++
			rep.BytesReceived += s.bytes
			ms := float64(s.latency) / float64(time.Millisecond)
			all = append(all, ms)
			switch {
			case s.budgetRejected:
				// 429s draw nothing: their near-instant round trips belong
				// in the rejection rate, not in any latency temperature.
			case s.cold:
				rep.ColdRequests++
				coldMs = append(coldMs, ms)
			case s.reanchored:
				reanchorMs = append(reanchorMs, ms)
			default:
				warmMs = append(warmMs, ms)
			}
			if s.reanchored {
				rep.Reanchors++
			}
			if s.degraded {
				rep.DegradedReports++
				degradedMs = append(degradedMs, ms)
			}
			if s.budgetRejected {
				rep.BudgetRejections++
			}
			if !s.err && !s.budgetRejected {
				okRequests++
			}
			key := "transport_error"
			if s.status != 0 {
				key = strconv.Itoa(s.status)
			}
			rep.StatusCounts[key]++
			if s.err {
				rep.Errors++
			}
			if s.region != "" || cfg.Batch == 0 {
				name := s.region
				if name == "" {
					name = "default"
				}
				rr := rep.PerRegion[name]
				rr.Requests++
				if s.err {
					rr.Errors++
				}
				rep.PerRegion[name] = rr
				perRegion[name] = append(perRegion[name], ms)
			}
		}
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / elapsed.Seconds()
		rep.ItemsPerSec = float64(rep.ItemsOK+rep.ItemsErr) / elapsed.Seconds()
		if cfg.Workload == "report" || cfg.Workload == "mobility" {
			count := cfg.ReportCount
			if count < 1 {
				count = 1
			}
			rep.ReportsPerSec = float64(rep.ItemsOK*int64(count)) / elapsed.Seconds()
		}
	}
	rep.Latency = quantiles(all)
	rep.Histogram = histogram(all)
	if len(coldMs) > 0 {
		q := quantiles(coldMs)
		rep.LatencyCold = &q
	}
	if len(warmMs) > 0 {
		q := quantiles(warmMs)
		rep.LatencyWarm = &q
	}
	if len(reanchorMs) > 0 {
		q := quantiles(reanchorMs)
		rep.LatencyReanchor = &q
	}
	if len(degradedMs) > 0 {
		q := quantiles(degradedMs)
		rep.LatencyDegraded = &q
	}
	if okRequests > 0 {
		rep.ReanchorRate = round4(float64(rep.Reanchors) / float64(okRequests))
		rep.DegradedRate = round4(float64(rep.DegradedReports) / float64(okRequests))
	}
	if rep.Requests > 0 {
		rep.BudgetRejectionRate = round4(float64(rep.BudgetRejections) / float64(rep.Requests))
	}
	for name, ms := range perRegion {
		rr := rep.PerRegion[name]
		q := quantiles(ms)
		rr.Latency = &q
		rep.PerRegion[name] = rr
	}
	return rep
}

func quantiles(ms []float64) latencySummary {
	if len(ms) == 0 {
		return latencySummary{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	// Nearest-rank (ceil) quantiles: P(q) is the smallest sample with at
	// least a q fraction of the distribution at or below it. The previous
	// int(q*(n-1)) truncation rounded the rank down, biasing p90/p95/p99
	// low on small samples (with 10 samples it reported p99 as the 9th
	// largest instead of the maximum).
	at := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return round2(sorted[idx])
	}
	mean := 0.0
	for _, v := range sorted {
		mean += v
	}
	mean /= float64(len(sorted))
	return latencySummary{
		P50:  at(0.50),
		P90:  at(0.90),
		P95:  at(0.95),
		P99:  at(0.99),
		Mean: round2(mean),
		Max:  round2(sorted[len(sorted)-1]),
	}
}

// histogram buckets latencies into half-decade log bins from 1 ms up to
// the 10-minute client timeout (the final bucket absorbs anything above).
func histogram(ms []float64) []histBucket {
	if len(ms) == 0 {
		return nil
	}
	bounds := []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 600000}
	buckets := make([]histBucket, len(bounds))
	for i, b := range bounds {
		buckets[i].UpToMs = b
	}
	for _, v := range ms {
		i := sort.SearchFloat64s(bounds, v)
		if i == len(bounds) {
			i--
		}
		buckets[i].Count++
	}
	// Trim empty tail buckets.
	last := 0
	for i, b := range buckets {
		if b.Count > 0 {
			last = i
		}
	}
	return buckets[:last+1]
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func round4(v float64) float64 { return math.Round(v*10000) / 10000 }
