package main

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"corgi/internal/loctree"
	"corgi/internal/proto"
	"corgi/internal/registry"
)

func TestLoadTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	content := "# multi-region replay\nsf 1 0\nnyc 2 1\n\nla 1 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	trace, err := loadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []request{
		{Region: "sf", Level: 1, Delta: 0},
		{Region: "nyc", Level: 2, Delta: 1},
		{Region: "la", Level: 1, Delta: 2},
	}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, trace[i], want[i])
		}
	}

	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("sf one 0\n"), 0o644)
	if _, err := loadTrace(bad); err == nil {
		t.Error("non-integer trace line must fail")
	}
	empty := filepath.Join(t.TempDir(), "empty.txt")
	os.WriteFile(empty, []byte("# nothing\n"), 0o644)
	if _, err := loadTrace(empty); err == nil {
		t.Error("empty trace must fail")
	}
}

func TestBuildTraceSyntheticMix(t *testing.T) {
	regions := []string{"sf", "nyc", "la"}
	trace, source, err := buildTrace(regions, "", "", "1,2", "0,1", "zipf", 7)
	if err != nil {
		t.Fatal(err)
	}
	if source != "synthetic:zipf" {
		t.Errorf("source %q", source)
	}
	counts := map[string]int{}
	for _, r := range trace {
		counts[r.Region]++
		if r.Level != 1 && r.Level != 2 {
			t.Fatalf("level %d escaped -levels", r.Level)
		}
		if r.Delta != 0 && r.Delta != 1 {
			t.Fatalf("delta %d escaped -deltas", r.Delta)
		}
	}
	// Zipf: sf must dominate nyc, nyc must dominate la.
	if counts["sf"] <= counts["nyc"] || counts["nyc"] <= counts["la"] {
		t.Errorf("zipf mix not monotone: %v", counts)
	}

	if _, _, err := buildTrace(regions, "", "", "1", "0", "pareto", 7); err == nil {
		t.Error("unknown mix must fail")
	}
	if _, _, err := buildTrace(regions, "", "", "x", "0", "uniform", 7); err == nil {
		t.Error("bad levels list must fail")
	}
	if _, _, err := buildTrace(regions, "a", "b", "1", "0", "uniform", 7); err == nil {
		t.Error("-trace plus -checkins must fail")
	}
}

// reportTestServer runs an in-process multi-region server for the report
// workload tests.
func reportTestServer(t *testing.T, names ...string) *httptest.Server {
	t.Helper()
	specs := make([]registry.Spec, len(names))
	for i, name := range names {
		specs[i] = registry.Spec{
			Name:      name,
			CenterLat: 37.765 + float64(i),
			CenterLng: -122.435,
			Height:    2, Iterations: 1, Targets: 3,
			UniformPriors: true,
		}
	}
	reg, err := registry.New(specs, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Mux())
	t.Cleanup(srv.Close)
	return srv
}

func TestBuildReportTraceAndDraw(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real region")
	}
	srv := reportTestServer(t, "lg-a", "lg-b")
	regions := []string{"lg-a", "lg-b"}
	trace, source, err := buildReportTrace(srv.URL, regions, reportTraceConfig{
		Levels: "1", Mix: "zipf", CellMix: "zipf", Users: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if source == "" || len(trace) == 0 {
		t.Fatalf("trace %d entries, source %q", len(trace), source)
	}
	counts := map[string]int{}
	for _, r := range trace {
		counts[r.Region]++
		if r.ColdKey == "" {
			t.Fatal("report entry without a cold key")
		}
		if r.Level != 1 {
			t.Fatalf("level %d escaped -levels", r.Level)
		}
	}
	if counts["lg-a"] <= counts["lg-b"] {
		t.Errorf("zipf region mix not monotone: %v", counts)
	}

	// One end-to-end draw through the real wire path.
	client := &http.Client{Timeout: time.Minute}
	var cold coldTracker
	s, ok, bad := doReport(client, srv.URL, trace[0], 0, 3, &cold)
	if s.err || ok != 1 || bad != 0 {
		t.Fatalf("doReport: sample %+v ok %d bad %d", s, ok, bad)
	}
	if !s.cold {
		t.Error("first draw for a subtree must be cold")
	}
	s, _, _ = doReport(client, srv.URL, trace[0], 0, 3, &cold)
	if s.cold {
		t.Error("repeat draw for the same subtree must be warm")
	}

	// Batch path with per-item accounting.
	s, ok, bad = doReportBatch(client, srv.URL, trace, 1, 4, 0, 2, &cold)
	if s.err || ok != 4 || bad != 0 {
		t.Fatalf("doReportBatch: sample %+v ok %d bad %d", s, ok, bad)
	}

	// Reports/s lands in the summary for the report workload.
	w := &worker{itemsOK: 6}
	w.samples = []sample{{latency: time.Millisecond, status: 200, region: "lg-a"}}
	rep := summarize([]*worker{w}, 2*time.Second, config{Workload: "report", ReportCount: 3})
	if rep.ReportsPerSec != 9 {
		t.Errorf("reports_per_sec = %v, want 9", rep.ReportsPerSec)
	}
}

func TestLoadReportTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real region")
	}
	srv := reportTestServer(t, "lg-a")
	// Grab two real cells via the proto client.
	tree, _, err := proto.NewRegionClient(srv.URL, "lg-a").FetchTree()
	if err != nil {
		t.Fatal(err)
	}
	leaves := tree.LevelNodes(0)
	path := filepath.Join(t.TempDir(), "trace.txt")
	content := "# report replay\n"
	for _, l := range leaves[:2] {
		content += "lg-a 1 " + itoa(l.Coord.Q) + " " + itoa(l.Coord.R) + "\n"
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	trace, source, err := buildReportTrace(srv.URL, []string{"lg-a"}, reportTraceConfig{
		TracePath: path, Users: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || source != "replay:"+path {
		t.Fatalf("trace %v source %q", trace, source)
	}
	for _, r := range trace {
		if r.ColdKey == "" || r.Region != "lg-a" {
			t.Fatalf("bad entry %+v", r)
		}
	}
}

func itoa(v int) string { return strconv.Itoa(v) }

func TestQuantilesAndHistogram(t *testing.T) {
	var ms []float64
	for i := 1; i <= 100; i++ {
		ms = append(ms, float64(i))
	}
	q := quantiles(ms)
	if q.P50 != 50 || q.P99 != 99 || q.Max != 100 || q.Mean != 50.5 {
		t.Errorf("quantiles %+v", q)
	}
	if z := quantiles(nil); z.P50 != 0 || z.Max != 0 {
		t.Errorf("empty quantiles %+v", z)
	}

	h := histogram([]float64{0.5, 2, 20, 20000})
	var total int64
	for _, b := range h {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("histogram dropped samples: %+v", h)
	}
	if h[len(h)-1].UpToMs != 30000 {
		t.Errorf("tail bucket %+v", h[len(h)-1])
	}
	if histogram(nil) != nil {
		t.Error("empty histogram must be nil")
	}
}

func TestWeightedPick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[weightedPick(rng, []float64{8, 1, 1})]++
	}
	if counts[0] < 7000 || counts[1] == 0 || counts[2] == 0 {
		t.Errorf("weighted pick skew: %v", counts)
	}
}

func TestColdTracker(t *testing.T) {
	var ct coldTracker
	a := request{Region: "sf", Level: 1, Delta: 0}
	b := request{Region: "sf", Level: 1, Delta: 1}
	if !ct.first(a) {
		t.Error("first sighting of a key must be cold")
	}
	if ct.first(a) {
		t.Error("second sighting of a key must be warm")
	}
	if !ct.first(b) {
		t.Error("a distinct (region, level, delta) key must be cold")
	}
	// A failed first request releases its claim: the retry that actually
	// absorbs the bootstrap is the one labeled cold.
	ct.forget(a)
	if !ct.first(a) {
		t.Error("a forgotten key must be cold again")
	}
	if ct.first(a) {
		t.Error("re-claimed key must be warm")
	}
}

// TestSummarizeColdWarmSplit checks cold samples are sliced out of the
// warm quantiles: a multi-second bootstrap absorbed by a first request
// must not set the warm max.
func TestSummarizeColdWarmSplit(t *testing.T) {
	w := &worker{}
	w.samples = []sample{
		{latency: 2 * time.Second, status: 200, region: "sf", cold: true},
		{latency: 5 * time.Millisecond, status: 200, region: "sf"},
		{latency: 7 * time.Millisecond, status: 200, region: "sf"},
	}
	rep := summarize([]*worker{w}, time.Second, config{})
	if rep.ColdRequests != 1 {
		t.Fatalf("cold requests %d, want 1", rep.ColdRequests)
	}
	if rep.LatencyCold == nil || rep.LatencyCold.Max != 2000 {
		t.Fatalf("cold latency %+v", rep.LatencyCold)
	}
	if rep.LatencyWarm == nil || rep.LatencyWarm.Max != 7 {
		t.Fatalf("warm latency %+v, want max 7ms without the bootstrap", rep.LatencyWarm)
	}
	if rep.Latency.Max != 2000 {
		t.Fatalf("overall latency must still include cold samples: %+v", rep.Latency)
	}

	// All-warm runs omit the cold block rather than reporting zeros.
	rep = summarize([]*worker{{samples: []sample{{latency: time.Millisecond, status: 200}}}}, time.Second, config{})
	if rep.LatencyCold != nil || rep.LatencyWarm == nil {
		t.Fatalf("all-warm run: cold %+v warm %+v", rep.LatencyCold, rep.LatencyWarm)
	}
}

func TestSummarize(t *testing.T) {
	w := &worker{itemsOK: 3, itemsErr: 1}
	w.samples = []sample{
		{latency: 10 * time.Millisecond, status: 200, bytes: 100, region: "sf"},
		{latency: 20 * time.Millisecond, status: 200, bytes: 100, region: "nyc"},
		{latency: 30 * time.Millisecond, status: 422, region: "sf", err: true},
		{latency: 5 * time.Millisecond, err: true}, // transport error
	}
	rep := summarize([]*worker{w, {}}, 2*time.Second, config{Batch: 0})
	if rep.Requests != 4 || rep.Errors != 2 || rep.ItemsOK != 3 || rep.ItemsErr != 1 {
		t.Errorf("report counts %+v", rep)
	}
	if rep.ThroughputRPS != 2 {
		t.Errorf("throughput %v", rep.ThroughputRPS)
	}
	if rep.StatusCounts["200"] != 2 || rep.StatusCounts["422"] != 1 || rep.StatusCounts["transport_error"] != 1 {
		t.Errorf("status counts %v", rep.StatusCounts)
	}
	sf := rep.PerRegion["sf"]
	if sf.Requests != 2 || sf.Errors != 1 || sf.Latency == nil {
		t.Errorf("sf region report %+v", sf)
	}
	if rep.Latency.P50 == 0 || rep.Latency.Max != 30 {
		t.Errorf("latency %+v", rep.Latency)
	}
}

// TestQuantilesNearestRank pins the percentile bugfix: nearest-rank (ceil)
// quantiles against known values. The old int(q*(n-1)) truncation biased
// high quantiles low on small samples — with 10 samples it reported p99 as
// 9 instead of 10, and p90 as 9 instead of... it happened to agree there,
// but p95 came out 9 instead of 10.
func TestQuantilesNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i + 1)
		}
		return out
	}
	cases := []struct {
		name               string
		ms                 []float64
		p50, p90, p95, p99 float64
		max                float64
	}{
		// Nearest rank over 1..10: P(q) = value at index ceil(q*10).
		{"ten", seq(10), 5, 9, 10, 10, 10},
		// A single sample is every quantile.
		{"one", []float64{7}, 7, 7, 7, 7, 7},
		// Two samples: p50 is the lower, everything above the upper.
		{"two", []float64{1, 9}, 1, 9, 9, 9, 9},
		// 1..100: quantiles land exactly on their rank.
		{"hundred", seq(100), 50, 90, 95, 99, 100},
		// 1..20: p95 = ceil(19)th = 19, p99 = ceil(19.8)th = 20.
		{"twenty", seq(20), 10, 18, 19, 20, 20},
		// Unsorted input must not matter.
		{"unsorted", []float64{30, 10, 20}, 20, 30, 30, 30, 30},
	}
	for _, tc := range cases {
		q := quantiles(tc.ms)
		if q.P50 != tc.p50 || q.P90 != tc.p90 || q.P95 != tc.p95 || q.P99 != tc.p99 || q.Max != tc.max {
			t.Errorf("%s: got p50=%v p90=%v p95=%v p99=%v max=%v, want p50=%v p90=%v p95=%v p99=%v max=%v",
				tc.name, q.P50, q.P90, q.P95, q.P99, q.Max, tc.p50, tc.p90, tc.p95, tc.p99, tc.max)
		}
	}
}

// TestWaypointMobilityTrace checks the synthetic random-waypoint source:
// per-user order, lattice adjacency (steps move at most one cell except
// documented waypoint teleports), and actual movement.
func TestWaypointMobilityTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real region")
	}
	srv := reportTestServer(t, "lg-a")
	w, err := fetchRegionWorld(srv.URL, "lg-a")
	if err != nil {
		t.Fatal(err)
	}
	worlds := map[string]*regionWorld{"lg-a": w}
	rng := rand.New(rand.NewSource(2))
	trace, err := waypointMobilityTrace([]string{"lg-a"}, worlds, []int{1}, 3, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 3*40 {
		t.Fatalf("trace has %d entries, want %d", len(trace), 3*40)
	}
	perUser := map[int64][]request{}
	for _, r := range trace {
		if r.Region != "lg-a" || r.Level != 1 || r.ColdKey == "" {
			t.Fatalf("bad entry %+v", r)
		}
		perUser[r.UID] = append(perUser[r.UID], r)
	}
	if len(perUser) != 3 {
		t.Fatalf("trace spans %d users, want 3", len(perUser))
	}
	moved := false
	for uid, reqs := range perUser {
		if len(reqs) != 40 {
			t.Fatalf("user %d has %d steps, want 40", uid, len(reqs))
		}
		for i := 1; i < len(reqs); i++ {
			if reqs[i].Cell != reqs[i-1].Cell {
				moved = true
			}
			if reqs[i].Seed != reqs[0].Seed {
				t.Fatalf("user %d changed seed mid-trajectory", uid)
			}
		}
	}
	if !moved {
		t.Fatal("no user ever moved")
	}
}

// TestGowallaMobilityTrace feeds a tiny synthetic check-in corpus through
// the trajectory source: global time order, per-user order preserved.
func TestGowallaMobilityTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real region")
	}
	// The builtin "sf" metro is required for -checkins region assignment.
	srv := reportTestServer(t, "sf")
	w, err := fetchRegionWorld(srv.URL, "sf")
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize check-ins across the region's own leaves so every point
	// lands in the tree.
	leaves := w.leaves
	var lines []string
	ts := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		leaf := leaves[(i*7)%len(leaves)]
		c := w.tree.Center(leaf)
		lines = append(lines, fmt.Sprintf("%d\t%s\t%.6f\t%.6f\t%d",
			i%3, ts.Add(time.Duration(i)*time.Minute).Format(time.RFC3339), c.Lat, c.Lng, i))
	}
	path := filepath.Join(t.TempDir(), "checkins.txt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	worlds := map[string]*regionWorld{"sf": w}
	rng := rand.New(rand.NewSource(1))
	trace, err := gowallaMobilityTrace(path, []string{"sf"}, worlds, []int{1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 30 {
		t.Fatalf("trace has %d entries, want 30", len(trace))
	}
	// The corpus timestamps are strictly increasing, so the trace must
	// replay the corpus order exactly (round-robin over users 0,1,2).
	for i, r := range trace {
		if r.UID != int64(i%3) {
			t.Fatalf("entry %d is user %d, want %d (global time order broken)", i, r.UID, i%3)
		}
	}
}

// TestMobilityEndToEnd drives doMobilityReport against a live in-process
// server: the subtree crossing must come back with the reanchored flag and
// land in the re-anchor latency slice, and a budget-capped server must
// produce 429s that count as rejections, not errors.
func TestMobilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real region")
	}
	srv := reportTestServer(t, "lg-a")
	w, err := fetchRegionWorld(srv.URL, "lg-a")
	if err != nil {
		t.Fatal(err)
	}
	roots := w.tree.LevelNodes(1)
	leafA := w.tree.LeavesUnder(roots[0])[0]
	leafB := w.tree.LeavesUnder(roots[1])[0]
	mk := func(leaf loctree.NodeID) request {
		return mobilityRequest(w, "lg-a", 1, leaf, 4)
	}
	client := &http.Client{Timeout: time.Minute}
	var cold coldTracker
	wk := &worker{}
	wk.record(doMobilityReport(client, srv.URL, mk(leafA), 0, 1, &cold))
	wk.record(doMobilityReport(client, srv.URL, mk(leafA), 0, 1, &cold))
	wk.record(doMobilityReport(client, srv.URL, mk(leafB), 0, 1, &cold))
	// Crossing back: subtree A's forest is already warm, so this sample is
	// a pure re-anchor — the middle latency tier.
	wk.record(doMobilityReport(client, srv.URL, mk(leafA), 0, 1, &cold))
	if wk.itemsOK != 4 || wk.itemsErr != 0 {
		t.Fatalf("items ok=%d err=%d", wk.itemsOK, wk.itemsErr)
	}
	if !wk.samples[0].cold || wk.samples[1].cold {
		t.Fatalf("cold split wrong: %+v", wk.samples[:2])
	}
	if wk.samples[1].reanchored {
		t.Fatal("warm same-subtree repeat flagged as re-anchor")
	}
	if !wk.samples[2].reanchored || !wk.samples[2].cold {
		t.Fatalf("first subtree crossing must be a cold re-anchor: %+v", wk.samples[2])
	}
	if !wk.samples[3].reanchored || wk.samples[3].cold {
		t.Fatalf("return crossing must be a warm-forest re-anchor: %+v", wk.samples[3])
	}
	rep := summarize([]*worker{wk}, time.Second, config{Workload: "mobility", ReportCount: 1})
	if rep.Reanchors != 2 {
		t.Fatalf("reanchors = %d, want 2", rep.Reanchors)
	}
	if rep.ReanchorRate == 0 {
		t.Fatal("reanchor rate missing")
	}
	if rep.LatencyReanchor == nil {
		t.Fatal("re-anchor latency slice missing")
	}
}

// TestSummarizeBudgetRejections checks 429 accounting: rejections are
// counted and rated, and budget-rejected samples are not "ok" for the
// re-anchor rate denominator.
func TestSummarizeBudgetRejections(t *testing.T) {
	w := &worker{itemsOK: 2, itemsErr: 2}
	w.samples = []sample{
		{latency: time.Millisecond, status: 200},
		{latency: time.Millisecond, status: 200, reanchored: true},
		{latency: time.Millisecond, status: 429, budgetRejected: true},
		{latency: time.Millisecond, status: 429, budgetRejected: true},
	}
	rep := summarize([]*worker{w}, time.Second, config{Workload: "mobility"})
	if rep.BudgetRejections != 2 {
		t.Fatalf("budget rejections = %d, want 2", rep.BudgetRejections)
	}
	if rep.BudgetRejectionRate != 0.5 {
		t.Fatalf("budget rejection rate = %v, want 0.5", rep.BudgetRejectionRate)
	}
	if rep.Reanchors != 1 || rep.ReanchorRate != 0.5 {
		t.Fatalf("reanchor accounting: %d at rate %v, want 1 at 0.5", rep.Reanchors, rep.ReanchorRate)
	}
	// 429s draw nothing: their near-instant round trips must not dilute
	// the warm (or any other) latency temperature.
	if rep.LatencyWarm == nil || rep.LatencyWarm.Max != 1 {
		t.Fatalf("warm slice polluted by rejections: %+v", rep.LatencyWarm)
	}
}
