package main

// Cluster-mode target routing: -cluster gives the loadgen the same member
// list the servers run with, and each request routes to its user's owner
// node over the identical consistent-hash ring — the client half of
// session affinity. A request that lands on the wrong node still succeeds
// (the server forwards one hop), so the ring here is an optimization the
// per-node counters make visible, not a correctness requirement.

import (
	"fmt"
	"sync"
	"time"

	"corgi/internal/cluster"
	"corgi/internal/stream"
)

// clusterTargets picks the target node per request uid and counts the
// per-node distribution for the report.
type clusterTargets struct {
	ring    *cluster.Ring
	peers   map[string]cluster.Peer
	streams map[string]*stream.Client

	mu     sync.Mutex
	counts map[string]int64
}

// newClusterTargets parses the member list and, for the stream transport,
// opens one pooled client per node.
func newClusterTargets(spec, transport string, concurrency int) (*clusterTargets, error) {
	peers, err := cluster.ParsePeers(spec)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(peers))
	for i, p := range peers {
		names[i] = p.Name
	}
	ring, err := cluster.NewRing(names, 0, 0)
	if err != nil {
		return nil, err
	}
	ct := &clusterTargets{
		ring:    ring,
		peers:   make(map[string]cluster.Peer, len(peers)),
		streams: make(map[string]*stream.Client, len(peers)),
		counts:  make(map[string]int64, len(peers)),
	}
	for _, p := range peers {
		ct.peers[p.Name] = p
		switch transport {
		case "http":
			if p.HTTPURL == "" {
				return nil, fmt.Errorf("cluster: peer %s needs an =httpURL entry with -transport http", p.Name)
			}
		case "stream":
			ct.streams[p.Name] = stream.NewClient(p.StreamAddr, stream.ClientConfig{
				Timeout:      10 * time.Minute,
				MaxIdleConns: concurrency,
			})
		}
	}
	return ct, nil
}

// node resolves a uid's owner and counts the hit.
func (ct *clusterTargets) node(uid int64) string {
	n := ct.ring.Owner(uid)
	ct.mu.Lock()
	ct.counts[n]++
	ct.mu.Unlock()
	return n
}

// httpFor returns the owner node's HTTP base URL for a uid.
func (ct *clusterTargets) httpFor(uid int64) string { return ct.peers[ct.node(uid)].HTTPURL }

// streamFor returns the owner node's pooled stream client for a uid.
func (ct *clusterTargets) streamFor(uid int64) *stream.Client { return ct.streams[ct.node(uid)] }

// nodeCounts snapshots the per-node request distribution.
func (ct *clusterTargets) nodeCounts() map[string]int64 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	out := make(map[string]int64, len(ct.counts))
	for k, v := range ct.counts {
		out[k] = v
	}
	return out
}

// streamStats sums dial/retry/byte counters across the per-node clients.
func (ct *clusterTargets) streamStats() stream.ClientStats {
	var total stream.ClientStats
	for _, c := range ct.streams {
		s := c.Stats()
		total.Dials += s.Dials
		total.Retries += s.Retries
		total.BytesIn += s.BytesIn
		total.BytesOut += s.BytesOut
	}
	return total
}

func (ct *clusterTargets) Close() {
	for _, c := range ct.streams {
		c.Close()
	}
}
