// Command corgi-experiments regenerates the paper's evaluation (Figs. 9-14,
// the abstract's headline numbers) and the extension studies. See
// EXPERIMENTS.md for the mapping to the paper and the expected shapes.
//
// Usage:
//
//	corgi-experiments -list
//	corgi-experiments -run fig12 [-full] [-seed 1]
//	corgi-experiments -run all
//	corgi-experiments -frontier [-frontier-out FRONTIER.json] [-full] [-seed 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"corgi/internal/eval"
	"corgi/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list experiments")
	full := flag.Bool("full", false, "paper-scale sweeps (slower)")
	seed := flag.Int64("seed", 1, "master seed")
	frontier := flag.Bool("frontier", false, "run the utility-vs-privacy frontier sweep (internal/eval)")
	frontierOut := flag.String("frontier-out", "", "write the frontier JSON artifact here (default stdout only)")
	flag.Parse()

	if *frontier {
		runFrontier(*full, *seed, *frontierOut)
		return
	}

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-20s %s\n", id, experiments.Describe(id))
		}
		return
	}
	cfg := &experiments.Config{Quick: !*full, Seed: *seed}
	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			log.Fatalf("unknown experiment %q (try -list)", id)
		}
		fmt.Printf("--- %s: %s\n", id, experiments.Describe(id))
		start := time.Now()
		tables, err := run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("--- %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// runFrontier executes the internal/eval sweep (both adversaries over every
// registered mechanism), prints a summary, and optionally writes the JSON
// artifact CI uploads.
func runFrontier(full bool, seed int64, out string) {
	start := time.Now()
	f, err := eval.Run(eval.Config{Seed: seed, Quick: !full})
	if err != nil {
		log.Fatalf("frontier: %v", err)
	}
	fmt.Printf("frontier %s: %d cells, delta=%d, robust_dominates=%v\n",
		f.Schema, f.Cells, f.Delta, f.RobustDominates)
	for _, m := range f.Mechanisms {
		fmt.Printf("  %-18s robust=%-5v", m.Name, m.Robust)
		for _, p := range m.Points {
			fmt.Printf("  eps=%g loss=%.3fkm remap=%.3fkm pruned=%.3fkm", p.Epsilon,
				p.UtilityLossKm, p.RemapErrorKm, p.PrunedRemapErrorKm)
			if p.PruneFailed {
				fmt.Printf(" PRUNE-FAILED")
			}
		}
		fmt.Println()
	}
	for _, tp := range f.Trajectory {
		fmt.Printf("  traj %-18s eps=%g users=%d steps=%d reanchors=%d traj=%.3fkm indep=%.3fkm gain=%.2fx eps-budget=%.1f comp-ratio=%.3f holds=%v\n",
			tp.Mechanism, tp.Epsilon, tp.Users, tp.Steps, tp.Reanchors,
			tp.TrajErrorKm, tp.IndepErrorKm, tp.CorrelationGain,
			tp.LinearEpsBudget, tp.CompositionRatio, tp.CompositionHolds)
	}
	fmt.Printf("frontier done in %v\n", time.Since(start).Round(time.Millisecond))
	if out != "" {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			log.Fatalf("frontier: %v", err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("frontier: %v", err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}
