// Command corgi-experiments regenerates the paper's evaluation (Figs. 9-14,
// the abstract's headline numbers) and the extension studies. See
// EXPERIMENTS.md for the mapping to the paper and the expected shapes.
//
// Usage:
//
//	corgi-experiments -list
//	corgi-experiments -run fig12 [-full] [-seed 1]
//	corgi-experiments -run all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"corgi/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list experiments")
	full := flag.Bool("full", false, "paper-scale sweeps (slower)")
	seed := flag.Int64("seed", 1, "master seed")
	flag.Parse()

	if *list || *runID == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-20s %s\n", id, experiments.Describe(id))
		}
		return
	}
	cfg := &experiments.Config{Quick: !*full, Seed: *seed}
	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			log.Fatalf("unknown experiment %q (try -list)", id)
		}
		fmt.Printf("--- %s: %s\n", id, experiments.Describe(id))
		start := time.Now()
		tables, err := run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("--- %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
