// Command corgi-server runs the CORGI cloud side (Sec. 5.1): it builds the
// location tree over a region, computes public priors from a check-in file
// (or the synthetic sample), and serves robust obfuscation matrices over
// HTTP. Users never send it locations or preference contents — only the
// privacy level and a prune allowance.
//
// Generation runs on the concurrent engine (see ARCHITECTURE.md): -workers
// bounds parallel subtree LP solves, -cache-mb bounds the generated-entry
// LRU cache, and -warmup N precomputes every (level, delta<=N) forest
// before the listener opens. /healthz reports liveness and /v1/stats the
// engine counters. SIGINT/SIGTERM drain in-flight requests gracefully.
//
// Usage:
//
//	corgi-server [-addr :8080] [-eps 15] [-height 2] [-spacing 0.1]
//	             [-iters 5] [-checkins gowalla.txt] [-seed 1] [-targets 20]
//	             [-workers 0] [-cache-mb 256] [-warmup -1]
//	             [-read-timeout 30s] [-write-timeout 10m] [-idle-timeout 2m]
//	             [-request-timeout 5m]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/proto"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	eps := flag.Float64("eps", 15, "Geo-Ind privacy budget (km^-1)")
	height := flag.Int("height", 2, "location tree height (2 -> 49 leaves, 3 -> 343)")
	spacing := flag.Float64("spacing", 0.1, "leaf cell center spacing in km")
	iters := flag.Int("iters", 5, "Algorithm-1 robust iterations")
	checkins := flag.String("checkins", "", "Gowalla check-in file (empty: synthetic sample)")
	seed := flag.Int64("seed", 1, "seed for the synthetic sample")
	targetsN := flag.Int("targets", 20, "number of service target locations (1..leaf count)")
	workers := flag.Int("workers", 0, "parallel subtree solves (0: GOMAXPROCS)")
	cacheMB := flag.Int64("cache-mb", 256, "generated-entry cache bound in MiB")
	warmup := flag.Int("warmup", -1, "precompute all levels for deltas 0..N at startup (-1: off)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout")
	writeTimeout := flag.Duration("write-timeout", 10*time.Minute, "HTTP server write timeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP server idle timeout")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request generation timeout (0: none)")
	flag.Parse()

	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), *spacing)
	if err != nil {
		log.Fatalf("hex system: %v", err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), *height)
	if err != nil {
		log.Fatalf("location tree: %v", err)
	}
	var cs []gowalla.CheckIn
	if *checkins != "" {
		cs, err = gowalla.LoadFile(*checkins)
		if err != nil {
			log.Fatalf("loading %s: %v", *checkins, err)
		}
		cs = gowalla.FilterBBox(cs, geo.SanFrancisco)
		log.Printf("loaded %d SF check-ins from %s", len(cs), *checkins)
	} else {
		ds, err := gowalla.Generate(gowalla.GenConfig{Seed: *seed})
		if err != nil {
			log.Fatalf("synthetic sample: %v", err)
		}
		cs = ds.CheckIns
		log.Printf("generated %d synthetic check-ins (seed %d)", len(cs), *seed)
	}
	leaf, err := gowalla.LeafPriors(cs, tree, 1)
	if err != nil {
		log.Fatalf("priors: %v", err)
	}
	priors, err := loctree.NewPriors(tree, leaf)
	if err != nil {
		log.Fatalf("priors: %v", err)
	}
	targets, probs, err := pickTargets(tree, *targetsN)
	if err != nil {
		log.Fatalf("targets: %v", err)
	}
	srv, err := core.NewServerWithOptions(tree, priors, targets, probs, core.Params{
		Epsilon: *eps, Iterations: *iters, UseGraphApprox: true,
	}, core.EngineOptions{
		Workers:    *workers,
		CacheBytes: *cacheMB << 20,
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	h, err := proto.NewHandler(srv, priors, *spacing)
	if err != nil {
		log.Fatalf("handler: %v", err)
	}
	h.Timeout = *requestTimeout

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *warmup >= 0 {
		start := time.Now()
		if err := srv.Warmup(ctx, *warmup); err != nil {
			log.Fatalf("warmup: %v", err)
		}
		st := srv.Stats()
		log.Printf("warmup: %d solves, %d cached entries (%.1f MiB) in %v",
			st.Solves, st.CacheEntries, float64(st.CacheBytes)/(1<<20), time.Since(start).Round(time.Millisecond))
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      h.Mux(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("CORGI server on %s (eps=%g, height=%d, %d leaves, %d workers, %d MiB cache)",
		*addr, *eps, *height, tree.NumLeaves(), srv.Stats().Workers, *cacheMB)

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (draining in-flight requests)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}

// pickTargets spreads n service targets evenly over the leaves. n beyond
// the leaf count is an error (the old stride walk silently under-delivered
// instead of failing).
func pickTargets(tree *loctree.Tree, n int) ([]geo.LatLng, []float64, error) {
	leaves := tree.LevelNodes(0)
	if n < 1 || n > len(leaves) {
		return nil, nil, fmt.Errorf("target count must be in [1, %d], got %d", len(leaves), n)
	}
	targets := make([]geo.LatLng, 0, n)
	probs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Even spread: index i maps to floor(i * len/n).
		targets = append(targets, tree.Center(leaves[i*len(leaves)/n]))
		probs = append(probs, 1)
	}
	return targets, probs, nil
}
