// Command corgi-server runs the CORGI cloud side (Sec. 5.1) as a
// multi-region sharded service: each named region owns its own location
// tree, public priors, service targets, and concurrent generation engine,
// bootstrapped lazily on first request (or eagerly with -eager). Users
// never send locations or preference contents — only a region name, the
// privacy level, and a prune allowance.
//
// Regions come from -regions (comma-separated builtin metro names; see
// -list-regions) or -region-config (a JSON array of region specs, each
// overriding only what it needs). Omitting ?region= on the wire addresses
// the first configured region, so pre-sharding clients keep working.
//
// Generation runs on one engine shard per region (see ARCHITECTURE.md):
// -workers bounds parallel subtree LP solves per shard, -cache-mb bounds
// each shard's LRU cache, and -warmup N precomputes every (level,
// delta<=N) forest at bootstrap time. -store DIR attaches the persistent
// forest store: shards hydrate from snapshots at bootstrap (a restart or
// a corgi-gen precompute means zero LP solves for covered forests) and
// newly solved forests write back asynchronously. /healthz reports
// liveness, /v1/regions the region set, and /v1/stats per-region plus
// aggregate engine counters (including store hit/miss/write counts and
// report-session/alias-table counters). SIGINT/SIGTERM drain in-flight
// requests gracefully and flush pending store writes.
//
// Beyond forest distribution, the server runs the report pipeline: POST
// /v1/report (and batch /v1/reports) evaluates an inline policy, prunes,
// and draws obfuscated reports server-side from per-user sessions with
// O(1) alias-table sampling. Sessions are mobility-aware: a user whose
// reports leave their bound subtree re-anchor the resident session (same
// RNG stream, fresh subtree binding) instead of fragmenting into one
// session per subtree. -max-sessions bounds each region's live session
// LRU; -max-report-count caps draws per request.
//
// -budget-eps EPS enables per-user epsilon-budget accounting: each report
// draw charges the region's epsilon against the user's sliding -budget-
// window cap (linear composition, the sequential-composition leakage of
// repeated location reports), and a user over cap gets 429 Too Many
// Requests until spend slides out of the window. budget_* counters appear
// in /v1/stats.
//
// -degraded-serving kills the cold-path latency cliff: a report request
// whose forest entry misses both the cache and the store is answered
// immediately from a discretized planar-Laplace fallback — same epsilon
// guarantee, lower utility — while the real LP solve runs in the
// background; the optimal entry atomically replaces the fallback, resident
// sessions upgrade without resetting their RNG streams, and responses
// carry a "degraded" flag until then. degraded_* counters appear in
// /v1/stats.
//
// POST /v1/lease (and the stream transport's LEASE frame) issues
// client-side draw leases: one request pre-pays n draws' epsilon in a
// single budget charge, and the response carries the user's customized
// distribution rows plus an HMAC-signed token (user, subtree, draw cap,
// RNG position, expiry) so the device draws locally at memory speed and
// renews when the cap runs out — see internal/clientdraw. -lease-secret
// fixes the token-signing key (hex; default: a random per-process key,
// meaning leases do not survive a restart) and -lease-ttl bounds token
// lifetime. lease_* counters appear in /v1/stats.
//
// -stream-addr ADDR additionally serves the report pipeline over the
// corgi-stream binary transport (internal/stream): length-prefixed frames
// on persistent TCP connections, answering from the same registry —
// sessions, budgets, and error classes identical to HTTP — at a fraction
// of the per-report cost. Stream counters merge into /v1/stats, and
// shutdown drains stream connections (GOODBYE frames) alongside HTTP.
//
// Usage:
//
//	corgi-server [-addr :8080] [-stream-addr :8081]
//	             [-regions sf,nyc,la | -region-config regions.json]
//	             [-eps 15] [-height 2] [-spacing 0.1] [-iters 5] [-targets 20]
//	             [-checkins gowalla.txt] [-seed 0] [-uniform-priors]
//	             [-workers 0] [-cache-mb 256] [-warmup -1] [-eager]
//	             [-store ./forests] [-max-batch 64] [-max-sessions 4096]
//	             [-max-report-count 1000] [-budget-eps 0] [-budget-window 1h]
//	             [-lease-secret HEX] [-lease-ttl 1m] [-degraded-serving]
//	             [-read-timeout 30s] [-write-timeout 10m] [-idle-timeout 2m]
//	             [-request-timeout 5m]
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"corgi/internal/budget"
	"corgi/internal/cluster"
	"corgi/internal/core"
	"corgi/internal/proto"
	"corgi/internal/registry"
	"corgi/internal/store"
	"corgi/internal/stream"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	streamAddr := flag.String("stream-addr", "", "corgi-stream binary transport listen address (empty: disabled)")
	regions := flag.String("regions", "", "comma-separated builtin region names (default: sf)")
	regionConfig := flag.String("region-config", "", "JSON region-spec file (overrides -regions)")
	listRegions := flag.Bool("list-regions", false, "print builtin region names and exit")
	eps := flag.Float64("eps", 15, "default Geo-Ind privacy budget (km^-1)")
	height := flag.Int("height", 2, "default tree height (2 -> 49 leaves, 3 -> 343)")
	spacing := flag.Float64("spacing", 0.1, "default leaf cell center spacing in km")
	iters := flag.Int("iters", 5, "default Algorithm-1 robust iterations")
	targetsN := flag.Int("targets", 20, "default service target count per region")
	checkins := flag.String("checkins", "", "Gowalla check-in file for the default region's priors")
	seed := flag.Int64("seed", 0, "synthetic-prior seed override (0: per-region name hash)")
	uniformPriors := flag.Bool("uniform-priors", false, "use uniform priors everywhere (fast bootstrap)")
	workers := flag.Int("workers", 0, "parallel subtree solves per region shard (0: GOMAXPROCS)")
	cacheMB := flag.Int64("cache-mb", 256, "per-shard generated-entry cache bound in MiB")
	warmup := flag.Int("warmup", -1, "precompute all levels for deltas 0..N at shard bootstrap (-1: off)")
	storeDir := flag.String("store", "", "persistent forest store directory (populate offline with corgi-gen)")
	eager := flag.Bool("eager", false, "bootstrap every region at startup instead of on first request")
	maxBatch := flag.Int("max-batch", proto.DefaultMaxBatch, "max items per POST /v1/forests or /v1/reports request")
	maxSessions := flag.Int("max-sessions", 0, "live report sessions per region shard (0: default 4096)")
	maxReportCount := flag.Int("max-report-count", proto.DefaultMaxReportCount, "max draws per POST /v1/report request")
	budgetEps := flag.Float64("budget-eps", 0, "per-user epsilon budget per sliding window (0: accounting off)")
	budgetWindow := flag.Duration("budget-window", time.Hour, "sliding epsilon-budget window")
	budgetUsers := flag.Int("budget-users", 0, "tracked users per region budget accountant (0: default 65536)")
	leaseSecret := flag.String("lease-secret", "", "hex key for lease-token signing (empty: random per-process key)")
	leaseTTL := flag.Duration("lease-ttl", registry.DefaultLeaseTTL, "draw-lease token lifetime")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout")
	writeTimeout := flag.Duration("write-timeout", 10*time.Minute, "HTTP server write timeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP server idle timeout")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request generation timeout (0: none)")
	degradedServing := flag.Bool("degraded-serving", false,
		"serve cold report requests immediately from a planar-Laplace fallback (same epsilon bound, lower utility) while the LP solve runs in the background")
	clusterPeers := flag.String("cluster-peers", "",
		"full cluster member list, comma-separated streamAddr[=httpURL] entries (identical on every node); empty: single-node mode")
	clusterSelf := flag.String("cluster-self", "",
		"this node's own entry in -cluster-peers (its stream address); required with -cluster-peers")
	flag.Parse()

	if *listRegions {
		fmt.Println(strings.Join(registry.BuiltinNames(), "\n"))
		os.Exit(0)
	}
	if *targetsN < 1 {
		log.Fatalf("targets: count must be >= 1, got %d", *targetsN)
	}

	// registry.BuildSpecs is shared with cmd/corgi-gen so both binaries
	// derive identical spec hashes from identical flags — a store
	// populated offline is hit here by construction.
	specs, err := registry.BuildSpecs(*regions, *regionConfig, registry.SpecDefaults{
		Epsilon: *eps, Height: *height, LeafSpacingKm: *spacing, Iterations: *iters,
		Targets: *targetsN, Seed: *seed, UniformPriors: *uniformPriors, CheckinsPath: *checkins,
	})
	if err != nil {
		log.Fatalf("regions: %v", err)
	}
	var st *store.Store
	if *storeDir != "" {
		if st, err = store.Open(*storeDir); err != nil {
			log.Fatalf("store: %v", err)
		}
	}
	var secret []byte
	if *leaseSecret != "" {
		if secret, err = hex.DecodeString(*leaseSecret); err != nil {
			log.Fatalf("lease-secret: %v", err)
		}
	}
	reg, err := registry.New(specs, registry.Options{
		Engine: core.EngineOptions{
			Workers:         *workers,
			CacheBytes:      *cacheMB << 20,
			DegradedServing: *degradedServing,
		},
		WarmupDelta: *warmup,
		Store:       st,
		SessionCap:  *maxSessions,
		Budget: budget.Config{
			LimitEps: *budgetEps,
			Window:   *budgetWindow,
			MaxUsers: *budgetUsers,
		},
		LeaseSecret: secret,
		LeaseTTL:    *leaseTTL,
	})
	if err != nil {
		log.Fatalf("registry: %v", err)
	}
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		log.Fatalf("handler: %v", err)
	}
	h.Timeout = *requestTimeout
	h.MaxBatch = *maxBatch
	h.MaxReportCount = *maxReportCount

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *eager {
		start := time.Now()
		if err := reg.BootstrapAll(ctx); err != nil {
			log.Fatalf("eager bootstrap: %v", err)
		}
		agg := reg.AggregateStats()
		log.Printf("bootstrapped %d regions: %d solves, %d entries hydrated from store, %d cached entries (%.1f MiB) in %v",
			reg.Bootstraps(), agg.Solves, agg.StoreHydrated, agg.CacheEntries, float64(agg.CacheBytes)/(1<<20),
			time.Since(start).Round(time.Millisecond))
	}

	// The stream listener shares the registry (and so the report pipeline,
	// sessions, and budget accounting) with the HTTP routes; its counters
	// surface through GET /v1/stats.
	var streamSrv *stream.Server
	var streamLis net.Listener
	if *streamAddr != "" {
		streamSrv, err = stream.NewServer(reg, stream.Config{
			MaxBatch:       *maxBatch,
			MaxReportCount: *maxReportCount,
			Timeout:        *requestTimeout,
		})
		if err != nil {
			log.Fatalf("stream: %v", err)
		}
		if streamLis, err = net.Listen("tcp", *streamAddr); err != nil {
			log.Fatalf("stream listen: %v", err)
		}
		h.Stream = streamSrv
	}
	// The snapshot route serves raw store files to cluster peers; it is
	// harmless (read-only, checksummed payloads) in single-node mode too.
	h.Store = st

	// Cluster mode: every node embeds the consistent-hash router. Requests
	// for users this node owns serve locally; everything else forwards one
	// hop to the owner (stream first, HTTP fallback), carrying the epsilon
	// budget handoff so a rebalance or failover never re-opens a window.
	var router *cluster.Router
	if *clusterPeers != "" {
		if *clusterSelf == "" {
			log.Fatalf("cluster: -cluster-self is required with -cluster-peers")
		}
		members, err := cluster.ParsePeers(*clusterPeers)
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		router, err = cluster.NewRouter(reg, *clusterSelf, members, cluster.RouterConfig{})
		if err != nil {
			log.Fatalf("cluster: %v", err)
		}
		h.Handler = router
		h.Cluster = router
		if streamSrv != nil {
			streamSrv.SetHandler(router)
		}
		if st != nil {
			st.SetPeerFetch(router.FetchSnapshot)
		}
		log.Printf("cluster mode: %d members, self %s, owning %.1f%% of the keyspace",
			len(members), *clusterSelf, router.Ring().Shares()[*clusterSelf]*100)
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      h.Mux(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	errc := make(chan error, 2)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if streamSrv != nil {
		go func() { errc <- streamSrv.Serve(streamLis) }()
		log.Printf("corgi-stream transport on %s", streamLis.Addr())
	}
	storeDesc := "no store"
	if st != nil {
		storeDesc = "store " + st.Dir()
	}
	budgetDesc := "no budget accounting"
	if *budgetEps > 0 {
		budgetDesc = fmt.Sprintf("budget %.4g eps per %v", *budgetEps, *budgetWindow)
	}
	log.Printf("CORGI server on %s: regions [%s] (default %s), %d MiB cache per shard, warmup %d, %s, %s, %s bootstrap",
		*addr, strings.Join(reg.Names(), ", "), reg.DefaultRegion(), *cacheMB, *warmup, storeDesc, budgetDesc,
		map[bool]string{true: "eager", false: "lazy"}[*eager])

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (draining in-flight requests)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if streamSrv != nil {
		// Drain the stream first: clients get GOODBYE frames, in-flight
		// report frames finish writing, then connections close.
		if err := streamSrv.Shutdown(shutCtx); err != nil {
			log.Printf("stream shutdown: %v", err)
		}
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if router != nil {
		router.Close()
	}
	if st != nil {
		// Freshly solved forests persist asynchronously; make them durable
		// before exit so the next start hydrates them.
		reg.FlushStores()
	}
	drained := 1
	if streamSrv != nil {
		drained = 2
	}
	for i := 0; i < drained; i++ {
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, stream.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}
	log.Printf("bye")
}
