// Command corgi-server runs the CORGI cloud side (Sec. 5.1) as a
// multi-region sharded service: each named region owns its own location
// tree, public priors, service targets, and concurrent generation engine,
// bootstrapped lazily on first request (or eagerly with -eager). Users
// never send locations or preference contents — only a region name, the
// privacy level, and a prune allowance.
//
// Regions come from -regions (comma-separated builtin metro names; see
// -list-regions) or -region-config (a JSON array of region specs, each
// overriding only what it needs). Omitting ?region= on the wire addresses
// the first configured region, so pre-sharding clients keep working.
//
// Generation runs on one engine shard per region (see ARCHITECTURE.md):
// -workers bounds parallel subtree LP solves per shard, -cache-mb bounds
// each shard's LRU cache, and -warmup N precomputes every (level,
// delta<=N) forest at bootstrap time. /healthz reports liveness,
// /v1/regions the region set, and /v1/stats per-region plus aggregate
// engine counters. SIGINT/SIGTERM drain in-flight requests gracefully.
//
// Usage:
//
//	corgi-server [-addr :8080] [-regions sf,nyc,la | -region-config regions.json]
//	             [-eps 15] [-height 2] [-spacing 0.1] [-iters 5] [-targets 20]
//	             [-checkins gowalla.txt] [-seed 0] [-uniform-priors]
//	             [-workers 0] [-cache-mb 256] [-warmup -1] [-eager]
//	             [-max-batch 64] [-read-timeout 30s] [-write-timeout 10m]
//	             [-idle-timeout 2m] [-request-timeout 5m]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"corgi/internal/core"
	"corgi/internal/proto"
	"corgi/internal/registry"
)

// specDefaults carries the flag-level generation defaults applied to any
// region spec field left at its zero value.
type specDefaults struct {
	epsilon  float64
	height   int
	spacing  float64
	iters    int
	targets  int
	seed     int64
	uniform  bool
	checkins string // applied to the first (default) region only
}

// buildSpecs assembles the region specs from -regions / -region-config
// and fills unset fields from the flag defaults.
func buildSpecs(regionsFlag, configPath string, d specDefaults) ([]registry.Spec, error) {
	var specs []registry.Spec
	switch {
	case configPath != "" && regionsFlag != "":
		return nil, fmt.Errorf("use either -regions or -region-config, not both")
	case configPath != "":
		var err error
		specs, err = registry.LoadSpecsFile(configPath)
		if err != nil {
			return nil, err
		}
	default:
		if regionsFlag == "" {
			regionsFlag = "sf"
		}
		for _, name := range strings.Split(regionsFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			spec, ok := registry.BuiltinSpec(name)
			if !ok {
				return nil, fmt.Errorf("unknown builtin region %q; builtins: %s (use -region-config for custom regions)",
					name, strings.Join(registry.BuiltinNames(), ", "))
			}
			specs = append(specs, spec)
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("-regions named no regions")
		}
	}
	for i := range specs {
		if specs[i].Epsilon == 0 {
			specs[i].Epsilon = d.epsilon
		}
		if specs[i].Height == 0 {
			specs[i].Height = d.height
		}
		if specs[i].LeafSpacingKm == 0 {
			specs[i].LeafSpacingKm = d.spacing
		}
		if specs[i].Iterations == 0 {
			specs[i].Iterations = d.iters
		}
		if specs[i].Targets == 0 {
			specs[i].Targets = d.targets
		}
		if specs[i].Seed == 0 {
			specs[i].Seed = d.seed
		}
		if d.uniform {
			specs[i].UniformPriors = true
		}
	}
	if d.checkins != "" {
		specs[0].CheckinsPath = d.checkins
	}
	return specs, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	regions := flag.String("regions", "", "comma-separated builtin region names (default: sf)")
	regionConfig := flag.String("region-config", "", "JSON region-spec file (overrides -regions)")
	listRegions := flag.Bool("list-regions", false, "print builtin region names and exit")
	eps := flag.Float64("eps", 15, "default Geo-Ind privacy budget (km^-1)")
	height := flag.Int("height", 2, "default tree height (2 -> 49 leaves, 3 -> 343)")
	spacing := flag.Float64("spacing", 0.1, "default leaf cell center spacing in km")
	iters := flag.Int("iters", 5, "default Algorithm-1 robust iterations")
	targetsN := flag.Int("targets", 20, "default service target count per region")
	checkins := flag.String("checkins", "", "Gowalla check-in file for the default region's priors")
	seed := flag.Int64("seed", 0, "synthetic-prior seed override (0: per-region name hash)")
	uniformPriors := flag.Bool("uniform-priors", false, "use uniform priors everywhere (fast bootstrap)")
	workers := flag.Int("workers", 0, "parallel subtree solves per region shard (0: GOMAXPROCS)")
	cacheMB := flag.Int64("cache-mb", 256, "per-shard generated-entry cache bound in MiB")
	warmup := flag.Int("warmup", -1, "precompute all levels for deltas 0..N at shard bootstrap (-1: off)")
	eager := flag.Bool("eager", false, "bootstrap every region at startup instead of on first request")
	maxBatch := flag.Int("max-batch", proto.DefaultMaxBatch, "max items per POST /v1/forests request")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout")
	writeTimeout := flag.Duration("write-timeout", 10*time.Minute, "HTTP server write timeout")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP server idle timeout")
	requestTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request generation timeout (0: none)")
	flag.Parse()

	if *listRegions {
		fmt.Println(strings.Join(registry.BuiltinNames(), "\n"))
		os.Exit(0)
	}
	if *targetsN < 1 {
		log.Fatalf("targets: count must be >= 1, got %d", *targetsN)
	}

	specs, err := buildSpecs(*regions, *regionConfig, specDefaults{
		epsilon: *eps, height: *height, spacing: *spacing, iters: *iters,
		targets: *targetsN, seed: *seed, uniform: *uniformPriors, checkins: *checkins,
	})
	if err != nil {
		log.Fatalf("regions: %v", err)
	}
	reg, err := registry.New(specs, registry.Options{
		Engine: core.EngineOptions{
			Workers:    *workers,
			CacheBytes: *cacheMB << 20,
		},
		WarmupDelta: *warmup,
	})
	if err != nil {
		log.Fatalf("registry: %v", err)
	}
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		log.Fatalf("handler: %v", err)
	}
	h.Timeout = *requestTimeout
	h.MaxBatch = *maxBatch

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *eager {
		start := time.Now()
		if err := reg.BootstrapAll(ctx); err != nil {
			log.Fatalf("eager bootstrap: %v", err)
		}
		st := reg.AggregateStats()
		log.Printf("bootstrapped %d regions: %d solves, %d cached entries (%.1f MiB) in %v",
			reg.Bootstraps(), st.Solves, st.CacheEntries, float64(st.CacheBytes)/(1<<20),
			time.Since(start).Round(time.Millisecond))
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      h.Mux(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("CORGI server on %s: regions [%s] (default %s), %d MiB cache per shard, warmup %d, %s bootstrap",
		*addr, strings.Join(reg.Names(), ", "), reg.DefaultRegion(), *cacheMB, *warmup,
		map[bool]string{true: "eager", false: "lazy"}[*eager])

	select {
	case err := <-errc:
		log.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (draining in-flight requests)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}
