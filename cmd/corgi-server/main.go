// Command corgi-server runs the CORGI cloud side (Sec. 5.1): it builds the
// location tree over a region, computes public priors from a check-in file
// (or the synthetic sample), and serves robust obfuscation matrices over
// HTTP. Users never send it locations or preference contents — only the
// privacy level and a prune allowance.
//
// Usage:
//
//	corgi-server [-addr :8080] [-eps 15] [-height 2] [-spacing 0.1]
//	             [-iters 5] [-checkins gowalla.txt] [-seed 1]
package main

import (
	"flag"
	"log"
	"net/http"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/proto"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	eps := flag.Float64("eps", 15, "Geo-Ind privacy budget (km^-1)")
	height := flag.Int("height", 2, "location tree height (2 -> 49 leaves, 3 -> 343)")
	spacing := flag.Float64("spacing", 0.1, "leaf cell center spacing in km")
	iters := flag.Int("iters", 5, "Algorithm-1 robust iterations")
	checkins := flag.String("checkins", "", "Gowalla check-in file (empty: synthetic sample)")
	seed := flag.Int64("seed", 1, "seed for the synthetic sample")
	targetsN := flag.Int("targets", 20, "number of service target locations")
	flag.Parse()

	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), *spacing)
	if err != nil {
		log.Fatalf("hex system: %v", err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), *height)
	if err != nil {
		log.Fatalf("location tree: %v", err)
	}
	var cs []gowalla.CheckIn
	if *checkins != "" {
		cs, err = gowalla.LoadFile(*checkins)
		if err != nil {
			log.Fatalf("loading %s: %v", *checkins, err)
		}
		cs = gowalla.FilterBBox(cs, geo.SanFrancisco)
		log.Printf("loaded %d SF check-ins from %s", len(cs), *checkins)
	} else {
		ds, err := gowalla.Generate(gowalla.GenConfig{Seed: *seed})
		if err != nil {
			log.Fatalf("synthetic sample: %v", err)
		}
		cs = ds.CheckIns
		log.Printf("generated %d synthetic check-ins (seed %d)", len(cs), *seed)
	}
	leaf, err := gowalla.LeafPriors(cs, tree, 1)
	if err != nil {
		log.Fatalf("priors: %v", err)
	}
	priors, err := loctree.NewPriors(tree, leaf)
	if err != nil {
		log.Fatalf("priors: %v", err)
	}
	leaves := tree.LevelNodes(0)
	step := len(leaves) / *targetsN
	if step < 1 {
		step = 1
	}
	var targets []geo.LatLng
	var probs []float64
	for i := 0; i < len(leaves) && len(targets) < *targetsN; i += step {
		targets = append(targets, tree.Center(leaves[i]))
		probs = append(probs, 1)
	}
	srv, err := core.NewServer(tree, priors, targets, probs, core.Params{
		Epsilon: *eps, Iterations: *iters, UseGraphApprox: true,
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	h, err := proto.NewHandler(srv, priors, *spacing)
	if err != nil {
		log.Fatalf("handler: %v", err)
	}
	log.Printf("CORGI server on %s (eps=%g, height=%d, %d leaves)",
		*addr, *eps, *height, tree.NumLeaves())
	log.Fatal(http.ListenAndServe(*addr, h.Mux()))
}
