package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func defaults() specDefaults {
	return specDefaults{epsilon: 15, height: 2, spacing: 0.1, iters: 5, targets: 20}
}

func TestBuildSpecsBuiltins(t *testing.T) {
	specs, err := buildSpecs("", "", defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "sf" {
		t.Fatalf("default specs: %+v", specs)
	}

	specs, err = buildSpecs("sf, nyc ,la", "", defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[1].Name != "nyc" {
		t.Fatalf("parsed specs: %+v", specs)
	}
	for _, s := range specs {
		if s.Epsilon != 15 || s.Height != 2 || s.Targets != 20 {
			t.Errorf("flag defaults not applied to %+v", s)
		}
	}

	if _, err := buildSpecs("atlantis", "", defaults()); err == nil ||
		!strings.Contains(err.Error(), "sf") {
		t.Errorf("unknown builtin must fail listing builtins, got %v", err)
	}
	if _, err := buildSpecs(" , ", "", defaults()); err == nil {
		t.Error("blank region list must fail")
	}
}

func TestBuildSpecsConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.json")
	cfg := `[
		{"name": "alpha", "center_lat": 37.7, "center_lng": -122.4, "epsilon": 8},
		{"name": "beta", "center_lat": 40.7, "center_lng": -74.0, "height": 3}
	]`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	d := defaults()
	d.checkins = "gowalla.txt"
	d.uniform = true
	specs, err := buildSpecs("", path, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs: %+v", specs)
	}
	// Explicit file values win; flag defaults fill the gaps.
	if specs[0].Epsilon != 8 || specs[0].Height != 2 {
		t.Errorf("alpha spec: %+v", specs[0])
	}
	if specs[1].Height != 3 || specs[1].Epsilon != 15 {
		t.Errorf("beta spec: %+v", specs[1])
	}
	// -checkins applies to the default (first) region only.
	if specs[0].CheckinsPath != "gowalla.txt" || specs[1].CheckinsPath != "" {
		t.Errorf("checkins wiring: %+v", specs)
	}
	if !specs[0].UniformPriors || !specs[1].UniformPriors {
		t.Error("-uniform-priors must apply everywhere")
	}

	if _, err := buildSpecs("sf", path, defaults()); err == nil {
		t.Error("-regions and -region-config together must fail")
	}
	if _, err := buildSpecs("", filepath.Join(t.TempDir(), "missing.json"), defaults()); err == nil {
		t.Error("missing config file must fail")
	}
}
