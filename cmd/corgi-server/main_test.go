package main

import (
	"testing"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
)

func TestPickTargetsValidation(t *testing.T) {
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2) // 49 leaves
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := pickTargets(tree, 0); err == nil {
		t.Error("0 targets must fail")
	}
	if _, _, err := pickTargets(tree, 50); err == nil {
		t.Error("more targets than leaves must fail instead of silently under-delivering")
	}

	for _, n := range []int{1, 7, 20, 49} {
		targets, probs, err := pickTargets(tree, n)
		if err != nil {
			t.Fatalf("pickTargets(%d): %v", n, err)
		}
		if len(targets) != n || len(probs) != n {
			t.Fatalf("pickTargets(%d) returned %d targets, %d probs", n, len(targets), len(probs))
		}
		seen := map[geo.LatLng]bool{}
		for _, p := range targets {
			if seen[p] {
				t.Fatalf("pickTargets(%d) returned duplicate target %v", n, p)
			}
			seen[p] = true
		}
	}
}
