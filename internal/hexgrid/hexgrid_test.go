package hexgrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"corgi/internal/geo"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(geo.SanFrancisco.Center(), 0.5)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(geo.LatLng{Lat: 37, Lng: -122}, 0); err == nil {
		t.Error("zero spacing should fail")
	}
	if _, err := NewSystem(geo.LatLng{Lat: 37, Lng: -122}, -1); err == nil {
		t.Error("negative spacing should fail")
	}
	if _, err := NewSystem(geo.LatLng{Lat: 91, Lng: 0}, 1); err == nil {
		t.Error("invalid origin should fail")
	}
	if _, err := NewSystem(geo.LatLng{Lat: 37, Lng: -122}, math.Inf(1)); err == nil {
		t.Error("infinite spacing should fail")
	}
}

func TestNeighborsDistance(t *testing.T) {
	s := testSystem(t)
	c := Coord{3, -2}
	a := s.Spacing(0)
	for _, n := range Neighbors(c) {
		d := s.CenterXY(0, c).Dist(s.CenterXY(0, n))
		if math.Abs(d-a) > 1e-9 {
			t.Errorf("immediate neighbor %v at distance %v, want %v", n, d, a)
		}
	}
	for _, n := range DiagonalNeighbors(c) {
		d := s.CenterXY(0, c).Dist(s.CenterXY(0, n))
		if math.Abs(d-math.Sqrt(3)*a) > 1e-9 {
			t.Errorf("diagonal neighbor %v at distance %v, want %v", n, d, math.Sqrt(3)*a)
		}
	}
}

func TestNeighbors12Unique(t *testing.T) {
	c := Coord{0, 0}
	seen := map[Coord]bool{c: true}
	for _, n := range Neighbors12(c) {
		if seen[n] {
			t.Errorf("duplicate neighbor %v", n)
		}
		seen[n] = true
	}
	if len(seen) != 13 {
		t.Errorf("got %d distinct cells, want 13", len(seen))
	}
}

func TestGridDist(t *testing.T) {
	tests := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{1, 0}, 1},
		{Coord{0, 0}, Coord{1, 1}, 2},
		{Coord{0, 0}, Coord{2, -1}, 2},
		{Coord{0, 0}, Coord{-3, 1}, 3},
		{Coord{2, 3}, Coord{2, 3}, 0},
		{Coord{-1, -1}, Coord{1, 1}, 4},
	}
	for _, tc := range tests {
		if got := GridDist(tc.a, tc.b); got != tc.want {
			t.Errorf("GridDist(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestGridDistMetricProperties(t *testing.T) {
	cfg := &quick.Config{Values: nil}
	f := func(aq, ar, bq, br, cq, cr int8) bool {
		a, b, c := Coord{int(aq), int(ar)}, Coord{int(bq), int(br)}, Coord{int(cq), int(cr)}
		if GridDist(a, b) != GridDist(b, a) {
			return false
		}
		if GridDist(a, a) != 0 {
			return false
		}
		return GridDist(a, c) <= GridDist(a, b)+GridDist(b, c)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParentChildrenRoundTrip(t *testing.T) {
	f := func(q, r int16) bool {
		p := Coord{int(q), int(r)}
		for digit, ch := range Children(p) {
			if Parent(ch) != p {
				return false
			}
			if ChildDigit(ch) != digit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEveryCellHasUniqueParentSlot(t *testing.T) {
	// The 7-child assignment must tile the child lattice: each child cell is
	// produced by exactly one parent.
	f := func(q, r int16) bool {
		c := Coord{int(q), int(r)}
		p := Parent(c)
		found := 0
		for _, ch := range Children(p) {
			if ch == c {
				found++
			}
		}
		return found == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChildrenDisjointAcrossParents(t *testing.T) {
	seen := map[Coord]Coord{}
	for _, p := range Disk(Coord{0, 0}, 4) {
		for _, ch := range Children(p) {
			if prev, ok := seen[ch]; ok {
				t.Fatalf("child %v claimed by parents %v and %v", ch, prev, p)
			}
			seen[ch] = p
		}
	}
}

func TestParentCenterIsCenterChildCenter(t *testing.T) {
	s := testSystem(t)
	for _, p := range Disk(Coord{0, 0}, 3) {
		for level := 1; level <= 3; level++ {
			pc := s.CenterXY(level, p)
			cc := s.CenterXY(level-1, Children(p)[0])
			if pc.Dist(cc) > 1e-9*s.Spacing(level) {
				t.Fatalf("level %d cell %v center %v != its center child %v", level, p, pc, cc)
			}
		}
	}
}

func TestChildrenNearParentCenter(t *testing.T) {
	// Children must be the 7 child-lattice cells nearest the parent center.
	s := testSystem(t)
	p := Coord{2, -1}
	pc := s.CenterXY(1, p)
	maxChildDist := 0.0
	for _, ch := range Children(p) {
		if d := s.CenterXY(0, ch).Dist(pc); d > maxChildDist {
			maxChildDist = d
		}
	}
	// Any non-child cell must be farther than every child.
	for _, other := range Disk(Children(p)[0], 3) {
		if Parent(other) == p {
			continue
		}
		if d := s.CenterXY(0, other).Dist(pc); d < maxChildDist-1e-9 {
			t.Errorf("non-child %v (d=%v) closer to parent center than child (max %v)", other, d, maxChildDist)
		}
	}
}

func TestSpacingScalesBySqrt7(t *testing.T) {
	s := testSystem(t)
	for level := 0; level < 4; level++ {
		ratio := s.Spacing(level+1) / s.Spacing(level)
		if math.Abs(ratio-math.Sqrt(7)) > 1e-12 {
			t.Errorf("spacing ratio at level %d = %v, want sqrt(7)", level, ratio)
		}
	}
	if math.Abs(s.Spacing(0)-0.5) > 1e-12 {
		t.Errorf("leaf spacing = %v, want 0.5", s.Spacing(0))
	}
}

func TestCellArea(t *testing.T) {
	s := testSystem(t)
	// Area of a parent must equal 7x the child area (aperture 7).
	r := s.CellArea(1) / s.CellArea(0)
	if math.Abs(r-7) > 1e-9 {
		t.Errorf("area ratio = %v, want 7", r)
	}
	want := math.Sqrt(3) / 2 * 0.25
	if math.Abs(s.CellArea(0)-want) > 1e-12 {
		t.Errorf("leaf area = %v, want %v", s.CellArea(0), want)
	}
}

func TestRing(t *testing.T) {
	if got := Ring(Coord{5, 5}, 0); len(got) != 1 || got[0] != (Coord{5, 5}) {
		t.Errorf("Ring k=0 = %v", got)
	}
	if got := Ring(Coord{0, 0}, -1); got != nil {
		t.Errorf("Ring k<0 = %v, want nil", got)
	}
	for k := 1; k <= 5; k++ {
		ring := Ring(Coord{1, -2}, k)
		if len(ring) != 6*k {
			t.Errorf("Ring k=%d has %d cells, want %d", k, len(ring), 6*k)
		}
		seen := map[Coord]bool{}
		for _, c := range ring {
			if GridDist(c, Coord{1, -2}) != k {
				t.Errorf("Ring k=%d: cell %v at distance %d", k, c, GridDist(c, Coord{1, -2}))
			}
			if seen[c] {
				t.Errorf("Ring k=%d: duplicate %v", k, c)
			}
			seen[c] = true
		}
	}
}

func TestDisk(t *testing.T) {
	for k := 0; k <= 5; k++ {
		disk := Disk(Coord{-3, 2}, k)
		want := 1 + 3*k*(k+1)
		if len(disk) != want {
			t.Errorf("Disk k=%d has %d cells, want %d", k, len(disk), want)
		}
		seen := map[Coord]bool{}
		for _, c := range disk {
			if GridDist(c, Coord{-3, 2}) > k {
				t.Errorf("Disk k=%d contains far cell %v", k, c)
			}
			seen[c] = true
		}
		if len(seen) != want {
			t.Errorf("Disk k=%d has duplicates", k)
		}
	}
}

func TestLocateRoundTrip(t *testing.T) {
	s := testSystem(t)
	rng := rand.New(rand.NewSource(7))
	for level := 0; level <= 3; level++ {
		for i := 0; i < 200; i++ {
			c := Coord{rng.Intn(41) - 20, rng.Intn(41) - 20}
			if got := s.Locate(level, s.Center(level, c)); got != c {
				t.Fatalf("level %d: Locate(Center(%v)) = %v", level, c, got)
			}
			// Perturb the point within 40% of the inradius: must stay in cell.
			inradius := s.Spacing(level) / 2
			p := s.CenterXY(level, c)
			p.X += (rng.Float64()*2 - 1) * 0.4 * inradius
			p.Y += (rng.Float64()*2 - 1) * 0.4 * inradius
			if got := s.LocateXY(level, p); got != c {
				t.Fatalf("level %d: perturbed point left cell: %v vs %v", level, got, c)
			}
		}
	}
}

func TestCenterDistanceMatchesProjected(t *testing.T) {
	s := testSystem(t)
	a, b := Coord{0, 0}, Coord{8, -3}
	hav := s.CenterDistance(0, a, b)
	eu := s.CenterXY(0, a).Dist(s.CenterXY(0, b))
	if math.Abs(hav-eu)/eu > 0.01 {
		t.Errorf("haversine %v vs projected %v differ by more than 1%%", hav, eu)
	}
}

func TestBoundaryVerticesEquidistant(t *testing.T) {
	s := testSystem(t)
	c := Coord{2, 1}
	center := s.Center(0, c)
	want := s.Spacing(0) / math.Sqrt(3)
	for i, v := range s.Boundary(0, c) {
		d := geo.Haversine(center, v)
		if math.Abs(d-want)/want > 0.01 {
			t.Errorf("vertex %d at %v km, want %v", i, d, want)
		}
	}
}

func TestBoundarySharedVertexWithNeighbor(t *testing.T) {
	// Adjacent cells share two vertices; verify at least one vertex of a
	// neighbor coincides with one of ours (within tolerance).
	s := testSystem(t)
	c := Coord{0, 0}
	bc := s.Boundary(0, c)
	n := Neighbors(c)[0]
	bn := s.Boundary(0, n)
	shared := 0
	for _, v1 := range bc {
		for _, v2 := range bn {
			if geo.Haversine(v1, v2) < 1e-6 {
				shared++
			}
		}
	}
	if shared != 2 {
		t.Errorf("adjacent cells share %d vertices, want 2", shared)
	}
}

func TestChildDigitCoverage(t *testing.T) {
	// All 7 digits occur among a parent's children, in order.
	for digit, ch := range Children(Coord{-4, 9}) {
		if got := ChildDigit(ch); got != digit {
			t.Errorf("ChildDigit(%v) = %d, want %d", ch, got, digit)
		}
	}
}

func TestRoundDiv7(t *testing.T) {
	tests := []struct{ x, want int }{
		{0, 0}, {3, 0}, {4, 1}, {7, 1}, {10, 1}, {11, 2},
		{-3, 0}, {-4, -1}, {-7, -1}, {-10, -1}, {-11, -2},
	}
	for _, tc := range tests {
		if got := roundDiv7(tc.x); got != tc.want {
			t.Errorf("roundDiv7(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}
