package store

// This file is the store's cluster arm: the shared-tier hooks that let N
// nodes pay for each LP solve once. The store is content-addressed (spec
// hash keys generation inputs, the file checksum covers the bytes), which
// makes peer transfer trivially safe: a node that misses locally asks its
// peers for the raw snapshot file, validates it with exactly the same
// decodeFile pipeline a local read uses, and persists it — from then on it
// is indistinguishable from a locally solved snapshot. A corrupt or
// truncated peer response fails the checksum, is NOT persisted, and the
// miss falls through to a local solve, so a bad peer can cost latency but
// never correctness.

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// PeerFetchFunc asks the cluster for one snapshot's raw file bytes. It
// returns ErrNotFound (or any error) when no peer has it; the bytes it
// returns are validated by the caller, so the fetcher itself does not need
// to trust the peer.
type PeerFetchFunc func(k Key) ([]byte, error)

// SetPeerFetch installs the cluster fetch hook: Load misses consult it
// before giving up, hydrating the local store from a peer that already
// paid the solve. Call during wiring, before traffic; nil disables.
func (s *Store) SetPeerFetch(fn PeerFetchFunc) {
	s.peerFetch.Store(&fn)
}

// peerLoad runs the peer-fetch path for a local miss. It returns
// ErrNotFound when there is no hook, no peer copy, or the peer bytes fail
// validation — the caller's fall-through to compute is the same in every
// case.
func (s *Store) peerLoad(k Key) (*Snapshot, error) {
	p := s.peerFetch.Load()
	if p == nil || *p == nil {
		return nil, ErrNotFound
	}
	raw, err := (*p)(k)
	if err != nil {
		return nil, ErrNotFound
	}
	snap, err := decodeFile(raw)
	if err == nil && (snap.SpecHash != k.SpecHash || snap.PrivacyLevel != k.Level || snap.Delta != k.Delta) {
		err = fmt.Errorf("%w: peer payload key (%s, L%d, d%d) disagrees with requested key (%s, L%d, d%d)",
			ErrCorrupt, snap.SpecHash, snap.PrivacyLevel, snap.Delta, k.SpecHash, k.Level, k.Delta)
	}
	if err != nil {
		// The checksum caught a corrupt or truncated peer transfer: count
		// it, do not persist it, and let the caller solve locally.
		s.peerCorrupt.Add(1)
		return nil, ErrNotFound
	}
	s.peerHits.Add(1)
	// Persist the validated bytes so the next restart (and subsequent
	// loads) read locally. Best-effort: a full disk still serves this
	// request from the fetched snapshot.
	if err := s.writeRaw(k, raw); err == nil {
		s.writes.Add(1)
	}
	return snap, nil
}

// LoadRaw reads a snapshot's raw file bytes without decoding, for serving
// peer fetches: the requester re-validates, so the read side only needs
// the cheap existence check. A missing file returns ErrNotFound.
func (s *Store) LoadRaw(k Key) ([]byte, error) {
	if err := k.validate(); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	s.peerServes.Add(1)
	return raw, nil
}

// writeRaw atomically persists pre-encoded snapshot bytes under k,
// mirroring Save's temp-file + rename discipline.
func (s *Store) writeRaw(k Key, raw []byte) error {
	dir := s.specDir(k.SpecHash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// IsNotFound reports whether err is the store's miss sentinel — a helper
// for peer-fetch transports that map it to 404.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }

// peerFetchState is embedded in Store (see store.go); split out here so
// the cluster surface stays in one file.
type peerFetchState struct {
	peerFetch                         atomic.Pointer[PeerFetchFunc]
	peerHits, peerCorrupt, peerServes atomic.Uint64
}
