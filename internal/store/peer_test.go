package store

import (
	"errors"
	"testing"
)

// peerPair builds a source store holding one snapshot and an empty local
// store, returning both plus the snapshot's key.
func peerPair(t *testing.T) (src, local *Store, k Key) {
	t.Helper()
	var err error
	if src, err = Open(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if local, err = Open(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	k = Key{SpecHash: testHash, Level: 1, Delta: 2}
	snap := &Snapshot{
		SpecHash:     testHash,
		PrivacyLevel: 1,
		Delta:        2,
		Entries: []EntrySnapshot{{
			RootQ: 1, RootR: -1,
			Leaves: [][2]int{{0, 0}, {1, 0}},
			Dim:    2,
			Data:   []byte{1, 2, 3},
		}},
	}
	if err := src.Save(snap); err != nil {
		t.Fatal(err)
	}
	return src, local, k
}

// TestPeerFetchHydrates: a local miss hydrates from a peer's raw bytes,
// persists the validated file, and subsequent loads are local — the
// cluster pays each solve once.
func TestPeerFetchHydrates(t *testing.T) {
	src, local, k := peerPair(t)
	local.SetPeerFetch(func(key Key) ([]byte, error) { return src.LoadRaw(key) })

	got, err := local.Load(k)
	if err != nil {
		t.Fatalf("peer-hydrated load: %v", err)
	}
	if got.SpecHash != testHash || len(got.Entries) != 1 {
		t.Fatalf("hydrated snapshot mangled: %+v", got)
	}
	st := local.Stats()
	if st.PeerHits != 1 || st.PeerCorrupt != 0 {
		t.Fatalf("stats after hydrate: %+v", st)
	}
	if src.Stats().PeerServes != 1 {
		t.Fatalf("source did not count the serve: %+v", src.Stats())
	}
	// Persisted: the next load succeeds with the hook gone.
	local.SetPeerFetch(nil)
	if _, err := local.Load(k); err != nil {
		t.Fatalf("reload after hydration: %v", err)
	}
	if st := local.Stats(); st.PeerHits != 1 {
		t.Fatalf("second load went back to the peer: %+v", st)
	}
}

// TestPeerFetchRejectsCorrupt is the satellite contract: a corrupt or
// truncated peer snapshot fails the checksum, is counted, is NOT
// persisted, and the miss falls through (to a local solve, in the serving
// stack) as a plain ErrNotFound.
func TestPeerFetchRejectsCorrupt(t *testing.T) {
	src, local, k := peerPair(t)
	raw, err := src.LoadRaw(k)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string][]byte{
		"flipped byte": append(append([]byte(nil), raw[:len(raw)-3]...), raw[len(raw)-3]^0xff, raw[len(raw)-2], raw[len(raw)-1]),
		"truncated":    raw[:len(raw)/2],
		"empty":        {},
	}
	for name, bad := range corruptions {
		payload := bad
		local.SetPeerFetch(func(Key) ([]byte, error) { return payload, nil })
		if _, err := local.Load(k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s peer payload: got %v, want ErrNotFound fall-through", name, err)
		}
	}
	st := local.Stats()
	if st.PeerCorrupt != uint64(len(corruptions)) {
		t.Fatalf("corrupt peer responses counted %d, want %d", st.PeerCorrupt, len(corruptions))
	}
	if st.PeerHits != 0 {
		t.Fatalf("corrupt payload counted as a hit: %+v", st)
	}
	// Nothing was persisted: with the hook removed the snapshot is still
	// absent locally.
	local.SetPeerFetch(nil)
	if _, err := local.Load(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt payload was persisted: %v", err)
	}
	if _, err := local.LoadRaw(k); !errors.Is(err, ErrNotFound) {
		t.Fatal("corrupt payload reached the snapshot directory")
	}
}

// TestPeerFetchRejectsWrongKey: a checksum-valid snapshot for a different
// key (a confused or malicious peer) is rejected by the key cross-check.
func TestPeerFetchRejectsWrongKey(t *testing.T) {
	src, local, k := peerPair(t)
	other := &Snapshot{
		SpecHash:     testHash,
		PrivacyLevel: 2, // valid snapshot, wrong level
		Delta:        2,
		Entries:      []EntrySnapshot{{RootQ: 0, RootR: 0, Leaves: [][2]int{{0, 0}}, Dim: 1, Data: []byte{9}}},
	}
	if err := src.Save(other); err != nil {
		t.Fatal(err)
	}
	local.SetPeerFetch(func(Key) ([]byte, error) {
		return src.LoadRaw(Key{SpecHash: testHash, Level: 2, Delta: 2})
	})
	if _, err := local.Load(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wrong-key peer payload: got %v, want ErrNotFound", err)
	}
	if st := local.Stats(); st.PeerCorrupt != 1 {
		t.Fatalf("wrong-key response not counted corrupt: %+v", st)
	}
}
