package store

import (
	"context"
	"errors"
	"fmt"

	"corgi/internal/codec"
	"corgi/internal/core"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
)

// ForestStore binds a snapshot Store to one region — its spec hash and
// location tree — and implements core.ForestStore, the engine's durable
// second tier. Loads validate snapshots against the live tree (membership,
// completeness, row-stochasticity) exactly like the wire decoder, so a
// snapshot can never smuggle a malformed matrix into the cache; anything
// that fails validation is purged from disk and reported as absent, which
// makes the engine fall through to compute and overwrite it.
type ForestStore struct {
	store    *Store
	specHash string
	tree     *loctree.Tree
}

// NewForestStore adapts a Store for one region's engine.
func NewForestStore(s *Store, specHash string, tree *loctree.Tree) (*ForestStore, error) {
	if s == nil || tree == nil {
		return nil, fmt.Errorf("store: nil store or tree")
	}
	if len(specHash) < 16 {
		return nil, fmt.Errorf("store: spec hash %q too short", specHash)
	}
	return &ForestStore{store: s, specHash: specHash, tree: tree}, nil
}

// Load implements core.ForestStore. Absent, corrupt, stale, and
// tree-incompatible snapshots all return (nil, nil): the engine computes
// instead, and its write-back replaces the bad file. Only infrastructure
// errors (unreadable directory) surface as errors.
func (f *ForestStore) Load(_ context.Context, level, delta int) ([]*core.ForestEntry, error) {
	key := Key{SpecHash: f.specHash, Level: level, Delta: delta}
	snap, err := f.store.Load(key)
	switch {
	case errors.Is(err, ErrNotFound):
		return nil, nil
	case errors.Is(err, ErrCorrupt):
		// Purge so the recomputed forest's write-back lands cleanly.
		_ = f.store.Remove(key)
		return nil, nil
	case err != nil:
		return nil, err
	}
	entries, err := f.decode(snap)
	if err != nil {
		_ = f.store.Remove(key)
		return nil, nil
	}
	return entries, nil
}

// Save implements core.ForestStore.
func (f *ForestStore) Save(_ context.Context, level, delta int, entries []*core.ForestEntry) error {
	snap := &Snapshot{
		SpecHash:     f.specHash,
		PrivacyLevel: level,
		Delta:        delta,
		Entries:      make([]EntrySnapshot, 0, len(entries)),
	}
	for _, e := range entries {
		data, err := codec.EncodeMatrix(e.Matrix)
		if err != nil {
			return err
		}
		es := EntrySnapshot{
			RootQ: e.Root.Coord.Q,
			RootR: e.Root.Coord.R,
			Dim:   e.Matrix.Dim(),
			Data:  data,
		}
		for _, l := range e.Leaves {
			es.Leaves = append(es.Leaves, [2]int{l.Coord.Q, l.Coord.R})
		}
		snap.Entries = append(snap.Entries, es)
	}
	return f.store.Save(snap)
}

// List implements core.ForestStore, enumerating this region's snapshots.
// Forests whose privacy level exceeds the live tree's height (a snapshot
// from a differently-shaped spec could only get here by hand-copying; the
// spec hash normally rules it out) are skipped.
func (f *ForestStore) List() ([]core.StoredForestRef, error) {
	keys, err := f.store.List(f.specHash)
	if err != nil {
		return nil, err
	}
	refs := make([]core.StoredForestRef, 0, len(keys))
	for _, k := range keys {
		if k.Level > f.tree.Height() {
			continue
		}
		refs = append(refs, core.StoredForestRef{Level: k.Level, Delta: k.Delta})
	}
	return refs, nil
}

// decode validates a snapshot against the live tree and rebuilds its
// entries. The forest must be complete: exactly one entry per node of the
// privacy level, each with a row-stochastic matrix over its own leaf set.
func (f *ForestStore) decode(snap *Snapshot) ([]*core.ForestEntry, error) {
	if snap.PrivacyLevel < 1 || snap.PrivacyLevel > f.tree.Height() {
		return nil, fmt.Errorf("store: snapshot level %d outside tree height %d", snap.PrivacyLevel, f.tree.Height())
	}
	nodes := f.tree.LevelNodes(snap.PrivacyLevel)
	if len(snap.Entries) != len(nodes) {
		return nil, fmt.Errorf("store: snapshot has %d entries, level %d has %d nodes",
			len(snap.Entries), snap.PrivacyLevel, len(nodes))
	}
	seen := make(map[loctree.NodeID]bool, len(nodes))
	entries := make([]*core.ForestEntry, 0, len(snap.Entries))
	for _, es := range snap.Entries {
		root := loctree.NodeID{Level: snap.PrivacyLevel, Coord: hexgrid.Coord{Q: es.RootQ, R: es.RootR}}
		if !f.tree.Contains(root) || seen[root] {
			return nil, fmt.Errorf("store: snapshot entry root %v invalid or duplicated", root)
		}
		seen[root] = true
		if es.Dim != len(es.Leaves) {
			return nil, fmt.Errorf("store: entry %v has dim %d for %d leaves", root, es.Dim, len(es.Leaves))
		}
		m, err := codec.DecodeMatrix(es.Data, es.Dim)
		if err != nil {
			return nil, fmt.Errorf("store: entry %v: %w", root, err)
		}
		if err := m.CheckStochastic(1e-6); err != nil {
			return nil, fmt.Errorf("store: entry %v: %w", root, err)
		}
		leaves := make([]loctree.NodeID, len(es.Leaves))
		for i, qr := range es.Leaves {
			leaves[i] = loctree.NodeID{Level: 0, Coord: hexgrid.Coord{Q: qr[0], R: qr[1]}}
			if !f.tree.Contains(leaves[i]) {
				return nil, fmt.Errorf("store: entry %v leaf %v not in tree", root, leaves[i])
			}
		}
		entries = append(entries, &core.ForestEntry{Root: root, Leaves: leaves, Matrix: m})
	}
	return entries, nil
}
