// Package store is the persistent forest store: a content-addressed,
// versioned, checksummed on-disk snapshot format for privacy forests, keyed
// by (region spec hash, privacy level, delta).
//
// The paper's dominant cost is the iterated LP solve behind every robust
// matrix (Algorithms 1/3), yet the mechanisms themselves are static per
// (prior, epsilon, delta): Bordenabe et al. and Primault et al. both note
// that optimal-mechanism computation is the deployment bottleneck and
// should be paid once. The store makes that work durable across process
// lifetimes — a restarted server hydrates its caches from snapshots instead
// of re-solving, and an offline tool (cmd/corgi-gen) can populate a store
// directory before the first request ever arrives.
//
// Layout: one directory per region spec hash, one file per (level, delta)
// forest:
//
//	<dir>/<specHash[:16]>/L<level>_d<delta>.snap
//	<dir>/<specHash[:16]>/spec.json            (debugging aid, not read back)
//
// Keying by spec hash is the invalidation mechanism: any change to a
// region's generation inputs (priors, epsilon, iterations, tree shape, ...)
// changes the hash, so stale snapshots are simply never addressed again. A
// snapshot additionally embeds its own spec hash and key; a file that
// disagrees with its path (copied or renamed by hand) is rejected as
// corrupt rather than served.
//
// File format (version 1): a fixed header followed by a gzip-compressed
// JSON payload. The SHA-256 checksum covers the compressed payload bytes as
// they sit on disk, so truncation and bit rot are caught before decoding:
//
//	[4]byte  magic "CRGF"
//	uint16   format version (little endian)
//	uint16   reserved (zero)
//	uint32   payload length (little endian)
//	[32]byte SHA-256 of the payload
//	[]byte   payload: gzip(JSON(Snapshot))
//
// Matrix bytes inside the payload reuse the quantized row-sparse encoding
// of internal/codec — the same representation as wire format v2 — so a
// snapshot and a v2 response carry identical matrix bytes, and a forest
// that round-trips through the store re-encodes identically (the codec's
// quantization is idempotent).
package store

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// FormatVersion is the snapshot file format version this package writes.
// Readers reject other versions as corrupt (forcing a recompute) rather
// than guessing.
const FormatVersion = 1

var magic = [4]byte{'C', 'R', 'G', 'F'}

const headerLen = 4 + 2 + 2 + 4 + sha256.Size

// ErrNotFound marks a lookup of a snapshot that does not exist.
var ErrNotFound = errors.New("store: snapshot not found")

// ErrCorrupt marks a snapshot file that failed validation (bad magic,
// version, checksum, truncation, or a payload that disagrees with its key).
// Callers fall through to compute instead of serving it.
var ErrCorrupt = errors.New("store: snapshot corrupt")

// Key addresses one forest snapshot.
type Key struct {
	// SpecHash identifies the full set of generation inputs (see
	// registry.Spec.Hash). Must be non-empty hex-ish; the first 16
	// characters become the directory name.
	SpecHash string
	// Level and Delta are the forest's privacy level and prune allowance.
	Level, Delta int
}

// EntrySnapshot is one subtree's matrix at rest, mirroring the wire-v2
// entry shape.
type EntrySnapshot struct {
	RootQ  int      `json:"root_q"`
	RootR  int      `json:"root_r"`
	Leaves [][2]int `json:"leaves"`
	Dim    int      `json:"dim"`
	Data   []byte   `json:"data"` // internal/codec blob
}

// Snapshot is one persisted forest: every entry of a (level, delta)
// privacy forest, plus the key it was generated under.
type Snapshot struct {
	SpecHash     string          `json:"spec_hash"`
	PrivacyLevel int             `json:"privacy_l"`
	Delta        int             `json:"delta"`
	CreatedUnix  int64           `json:"created_unix"`
	Entries      []EntrySnapshot `json:"entries"`
}

// Stats counts the store's file-level traffic.
type Stats struct {
	// Loads / LoadMisses / LoadCorrupt classify Load outcomes.
	Loads, LoadMisses, LoadCorrupt uint64
	// Writes counts successful Save calls.
	Writes uint64
	// PeerHits counts misses hydrated from a cluster peer; PeerCorrupt
	// peer responses rejected by checksum (fell through to local solve);
	// PeerServes raw snapshot reads served TO peers.
	PeerHits, PeerCorrupt, PeerServes uint64
}

// Store is a forest snapshot directory. All methods are safe for
// concurrent use; Save is atomic (temp file + rename), so a reader never
// observes a half-written snapshot.
type Store struct {
	dir string

	loads, loadMisses, loadCorrupt, writes atomic.Uint64

	// peerFetchState is the cluster shared-tier hook: a Load miss can
	// hydrate from a peer node's store before falling through to a local
	// solve (see peer.go).
	peerFetchState
}

// Open creates the directory if needed and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Loads:       s.loads.Load(),
		LoadMisses:  s.loadMisses.Load(),
		LoadCorrupt: s.loadCorrupt.Load(),
		Writes:      s.writes.Load(),
		PeerHits:    s.peerHits.Load(),
		PeerCorrupt: s.peerCorrupt.Load(),
		PeerServes:  s.peerServes.Load(),
	}
}

func (k Key) validate() error {
	if len(k.SpecHash) < 16 {
		return fmt.Errorf("store: spec hash %q too short (want >= 16 chars)", k.SpecHash)
	}
	if k.Level < 1 || k.Delta < 0 {
		return fmt.Errorf("store: key (level %d, delta %d) out of range", k.Level, k.Delta)
	}
	return nil
}

func (s *Store) specDir(specHash string) string {
	return filepath.Join(s.dir, specHash[:16])
}

func (s *Store) path(k Key) string {
	return filepath.Join(s.specDir(k.SpecHash), fmt.Sprintf("L%d_d%d.snap", k.Level, k.Delta))
}

// Load reads and validates the snapshot for a key. A missing file returns
// ErrNotFound; any validation failure returns ErrCorrupt (wrapped with the
// reason).
func (s *Store) Load(k Key) (*Snapshot, error) {
	if err := k.validate(); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		if os.IsNotExist(err) {
			s.loadMisses.Add(1)
			// Shared tier: a peer node may already have paid this solve.
			// peerLoad validates (same checksum pipeline as a local read)
			// and persists; any failure is just ErrNotFound to the caller.
			if snap, perr := s.peerLoad(k); perr == nil {
				s.loads.Add(1)
				return snap, nil
			}
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	snap, err := decodeFile(raw)
	if err != nil {
		s.loadCorrupt.Add(1)
		return nil, err
	}
	if snap.SpecHash != k.SpecHash || snap.PrivacyLevel != k.Level || snap.Delta != k.Delta {
		s.loadCorrupt.Add(1)
		return nil, fmt.Errorf("%w: payload key (%s, L%d, d%d) disagrees with path key (%s, L%d, d%d)",
			ErrCorrupt, snap.SpecHash, snap.PrivacyLevel, snap.Delta, k.SpecHash, k.Level, k.Delta)
	}
	s.loads.Add(1)
	return snap, nil
}

// Save atomically persists a snapshot under its embedded key.
func (s *Store) Save(snap *Snapshot) error {
	k := Key{SpecHash: snap.SpecHash, Level: snap.PrivacyLevel, Delta: snap.Delta}
	if err := k.validate(); err != nil {
		return err
	}
	if len(snap.Entries) == 0 {
		return fmt.Errorf("store: refusing to save empty snapshot for %+v", k)
	}
	if snap.CreatedUnix == 0 {
		snap.CreatedUnix = time.Now().Unix()
	}
	raw, err := encodeFile(snap)
	if err != nil {
		return err
	}
	dir := s.specDir(k.SpecHash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	return nil
}

// Remove deletes a snapshot file (used to purge corrupt or stale files).
// Removing a missing snapshot is not an error.
func (s *Store) Remove(k Key) error {
	if err := k.validate(); err != nil {
		return err
	}
	if err := os.Remove(s.path(k)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// WriteSpecNote drops a human-readable spec description next to a spec
// hash's snapshots. It is a debugging aid only and is never read back.
func (s *Store) WriteSpecNote(specHash string, note any) error {
	if len(specHash) < 16 {
		return fmt.Errorf("store: spec hash %q too short", specHash)
	}
	data, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dir := s.specDir(specHash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, "spec.json"), append(data, '\n'), 0o644)
}

// List enumerates the snapshot keys stored for one spec hash, sorted by
// (level, delta). Unparseable file names are skipped.
func (s *Store) List(specHash string) ([]Key, error) {
	if len(specHash) < 16 {
		return nil, fmt.Errorf("store: spec hash %q too short", specHash)
	}
	entries, err := os.ReadDir(s.specDir(specHash))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []Key
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var level, delta int
		if n, err := fmt.Sscanf(e.Name(), "L%d_d%d.snap", &level, &delta); n != 2 || err != nil {
			continue
		}
		keys = append(keys, Key{SpecHash: specHash, Level: level, Delta: delta})
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Level != keys[j].Level {
			return keys[i].Level < keys[j].Level
		}
		return keys[i].Delta < keys[j].Delta
	})
	return keys, nil
}

// SizeBytes walks the store directory and sums snapshot file sizes.
func (s *Store) SizeBytes() (int64, error) {
	var total int64
	err := filepath.WalkDir(s.dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	return total, err
}

// encodeFile frames a snapshot: header + checksum + gzip(JSON).
func encodeFile(snap *Snapshot) ([]byte, error) {
	js, err := json.Marshal(snap)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var payload bytes.Buffer
	gz := gzip.NewWriter(&payload)
	if _, err := gz.Write(js); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	out := make([]byte, 0, headerLen+payload.Len())
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = binary.LittleEndian.AppendUint16(out, 0) // reserved
	out = binary.LittleEndian.AppendUint32(out, uint32(payload.Len()))
	out = append(out, sum[:]...)
	out = append(out, payload.Bytes()...)
	return out, nil
}

// decodeFile validates the frame and decodes the snapshot. Every failure
// wraps ErrCorrupt so callers can uniformly fall through to compute.
func decodeFile(raw []byte) (*Snapshot, error) {
	if len(raw) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(raw), headerLen)
	}
	if !bytes.Equal(raw[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, raw[:4])
	}
	if v := binary.LittleEndian.Uint16(raw[4:]); v != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d, reader supports %d", ErrCorrupt, v, FormatVersion)
	}
	payloadLen := int(binary.LittleEndian.Uint32(raw[8:]))
	payload := raw[headerLen:]
	if len(payload) != payloadLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d", ErrCorrupt, len(payload), payloadLen)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[12:12+sha256.Size]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	gz, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	js, err := io.ReadAll(gz)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var snap Snapshot
	if err := json.Unmarshal(js, &snap); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &snap, nil
}
