package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"corgi/internal/codec"
	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
)

const testHash = "0123456789abcdef0123456789abcdef"

func testTree(t *testing.T) *loctree.Tree {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// levelEntries builds a complete, valid entry set for a privacy level:
// identity-ish row-stochastic matrices over each subtree's leaves.
func levelEntries(t *testing.T, tree *loctree.Tree, level int) []*core.ForestEntry {
	t.Helper()
	var entries []*core.ForestEntry
	for _, node := range tree.LevelNodes(level) {
		leaves := tree.LeavesUnder(node)
		m := obf.NewMatrix(len(leaves))
		for i := range leaves {
			// A slightly off-diagonal mass so sparse and dense rows both occur.
			m.Set(i, i, 0.75)
			m.Set(i, (i+1)%len(leaves), 0.25)
		}
		entries = append(entries, &core.ForestEntry{Root: node, Leaves: leaves, Matrix: m})
	}
	return entries
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{
		SpecHash:     testHash,
		PrivacyLevel: 1,
		Delta:        2,
		Entries: []EntrySnapshot{{
			RootQ: 1, RootR: -1,
			Leaves: [][2]int{{0, 0}, {1, 0}},
			Dim:    2,
			Data:   []byte{1, 2, 3},
		}},
	}
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(Key{SpecHash: testHash, Level: 1, Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecHash != testHash || got.PrivacyLevel != 1 || got.Delta != 2 ||
		len(got.Entries) != 1 || got.Entries[0].RootQ != 1 || string(got.Entries[0].Data) != "\x01\x02\x03" {
		t.Fatalf("round trip mangled snapshot: %+v", got)
	}
	if got.CreatedUnix == 0 {
		t.Error("Save must stamp CreatedUnix")
	}
	st := s.Stats()
	if st.Writes != 1 || st.Loads != 1 {
		t.Errorf("stats %+v, want 1 write / 1 load", st)
	}
}

func TestLoadMissingAndKeyValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(Key{SpecHash: testHash, Level: 1, Delta: 0}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing snapshot: got %v, want ErrNotFound", err)
	}
	if s.Stats().LoadMisses != 1 {
		t.Errorf("miss not counted: %+v", s.Stats())
	}
	if _, err := s.Load(Key{SpecHash: "short", Level: 1, Delta: 0}); err == nil {
		t.Error("short spec hash must fail")
	}
	if _, err := s.Load(Key{SpecHash: testHash, Level: 0, Delta: 0}); err == nil {
		t.Error("level 0 must fail")
	}
	if err := s.Save(&Snapshot{SpecHash: testHash, PrivacyLevel: 1, Delta: 0}); err == nil {
		t.Error("empty snapshot must be refused")
	}
	if _, err := Open(""); err == nil {
		t.Error("empty directory must fail")
	}
}

// TestCorruptionRejectedByChecksum flips, truncates, and rebrands snapshot
// bytes and checks every mutation comes back as ErrCorrupt — never as a
// silently wrong forest.
func TestCorruptionRejectedByChecksum(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{SpecHash: testHash, Level: 1, Delta: 0}
	snap := &Snapshot{
		SpecHash: testHash, PrivacyLevel: 1, Delta: 0,
		Entries: []EntrySnapshot{{Leaves: [][2]int{{0, 0}}, Dim: 1, Data: []byte{9}}},
	}
	if err := s.Save(snap); err != nil {
		t.Fatal(err)
	}
	path := s.path(key)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, corrupt func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, corrupt(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(key); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	mutate("flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b })
	mutate("flipped checksum byte", func(b []byte) []byte { b[20] ^= 0xFF; return b })
	mutate("truncated payload", func(b []byte) []byte { return b[:len(b)-5] })
	mutate("truncated header", func(b []byte) []byte { return b[:10] })
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("future version", func(b []byte) []byte { b[4] = 0xFE; return b })
	if got := s.Stats().LoadCorrupt; got != 6 {
		t.Errorf("corrupt loads counted %d, want 6", got)
	}

	// A snapshot whose payload disagrees with its path key (hand-copied
	// between spec dirs) is also corrupt.
	otherHash := "fedcba9876543210fedcba9876543210"
	if err := os.MkdirAll(s.specDir(otherHash), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(Key{SpecHash: otherHash, Level: 1, Delta: 0}), pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(Key{SpecHash: otherHash, Level: 1, Delta: 0}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("foreign spec hash: got %v, want ErrCorrupt", err)
	}
}

func TestListSortsAndSkipsForeignFiles(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{{testHash, 2, 1}, {testHash, 1, 3}, {testHash, 1, 0}} {
		snap := &Snapshot{
			SpecHash: testHash, PrivacyLevel: k.Level, Delta: k.Delta,
			Entries: []EntrySnapshot{{Leaves: [][2]int{{0, 0}}, Dim: 1, Data: []byte{1}}},
		}
		if err := s.Save(snap); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteSpecNote(testHash, map[string]string{"name": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.specDir(testHash), "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.List(testHash)
	if err != nil {
		t.Fatal(err)
	}
	want := []Key{{testHash, 1, 0}, {testHash, 1, 3}, {testHash, 2, 1}}
	if len(keys) != len(want) {
		t.Fatalf("keys %+v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys[%d] = %+v, want %+v", i, keys[i], want[i])
		}
	}
	if other, err := s.List("fedcba9876543210"); err != nil || other != nil {
		t.Errorf("unknown hash: %v, %v", other, err)
	}
	if size, err := s.SizeBytes(); err != nil || size == 0 {
		t.Errorf("store size: %d, %v", size, err)
	}
}

// TestForestStoreRoundTrip saves a real entry set through the adapter and
// loads it back against the same tree.
func TestForestStoreRoundTrip(t *testing.T) {
	tree := testTree(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewForestStore(s, testHash, tree)
	if err != nil {
		t.Fatal(err)
	}
	entries := levelEntries(t, tree, 1)
	if err := fs.Save(context.Background(), 1, 0, entries); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Load(context.Background(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(entries))
	}
	byRoot := map[loctree.NodeID]*core.ForestEntry{}
	for _, e := range got {
		byRoot[e.Root] = e
	}
	for _, want := range entries {
		e, ok := byRoot[want.Root]
		if !ok {
			t.Fatalf("missing entry %v", want.Root)
		}
		if len(e.Leaves) != len(want.Leaves) || e.Matrix.Dim() != want.Matrix.Dim() {
			t.Fatalf("entry %v shape mismatch", want.Root)
		}
		// The codec re-encodes decoded matrices to identical bytes, so
		// comparing blobs checks value fidelity within quantization.
		a, _ := codec.EncodeMatrix(want.Matrix)
		b, _ := codec.EncodeMatrix(e.Matrix)
		if string(a) != string(b) {
			t.Fatalf("entry %v matrix changed across the store", want.Root)
		}
	}
	refs, err := fs.List()
	if err != nil || len(refs) != 1 || refs[0] != (core.StoredForestRef{Level: 1, Delta: 0}) {
		t.Fatalf("refs %+v, err %v", refs, err)
	}
}

// TestForestStoreRejectsBadSnapshots checks the adapter treats corrupt and
// incomplete snapshots as absent — the engine falls through to compute —
// and purges them from disk.
func TestForestStoreRejectsBadSnapshots(t *testing.T) {
	tree := testTree(t)
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewForestStore(s, testHash, tree)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{SpecHash: testHash, Level: 1, Delta: 0}

	// Corrupt file bytes: absent, and the file is purged.
	if err := fs.Save(context.Background(), 1, 0, levelEntries(t, tree, 1)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Load(context.Background(), 1, 0); err != nil || got != nil {
		t.Fatalf("truncated snapshot: got %v, %v; want nil, nil", got, err)
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Error("corrupt snapshot not purged")
	}

	// Incomplete forest (one entry missing): validated away.
	entries := levelEntries(t, tree, 1)
	if err := fs.Save(context.Background(), 1, 0, entries[:len(entries)-1]); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Load(context.Background(), 1, 0); err != nil || got != nil {
		t.Fatalf("incomplete snapshot: got %v, %v; want nil, nil", got, err)
	}

	// Non-stochastic matrix: validated away.
	entries = levelEntries(t, tree, 1)
	entries[0].Matrix.Set(0, 0, 0.1)
	if err := fs.Save(context.Background(), 1, 0, entries); err != nil {
		t.Fatal(err)
	}
	if got, err := fs.Load(context.Background(), 1, 0); err != nil || got != nil {
		t.Fatalf("non-stochastic snapshot: got %v, %v; want nil, nil", got, err)
	}
}
