// Package loctree implements the paper's location tree (Sec. 3.1,
// Definition 3.1): a balanced rooted tree over a region where each level
// represents one granularity of location sharing, each non-leaf node's
// children partition it, and leaves are the finest cells. The tree is built
// on the aperture-7 hexagonal hierarchy of internal/hexgrid, exactly as the
// paper builds it on Uber H3 (Fig. 2): a height-H tree has 7^H leaves.
//
// Node enumeration is deterministic (BFS from the root, children in digit
// order), so node indices are stable across processes — a property the
// client/server protocol relies on.
package loctree

import (
	"fmt"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
)

// NodeID identifies a tree node: a hex cell coordinate at a tree level.
// Level 0 is the leaf level; Level == Tree.Height() is the root.
type NodeID struct {
	Level int
	Coord hexgrid.Coord
}

// String implements fmt.Stringer.
func (n NodeID) String() string { return fmt.Sprintf("L%d%v", n.Level, n.Coord) }

// Tree is an immutable location tree.
type Tree struct {
	sys    *hexgrid.System
	height int
	root   hexgrid.Coord
	levels [][]hexgrid.Coord       // levels[h] = nodes at level h in BFS order
	index  []map[hexgrid.Coord]int // index[h][coord] = position in levels[h]
}

// New builds a location tree of the given height rooted at root (a cell at
// level height of sys). Height must be at least 1; a height-H tree has
// 7^H leaves.
func New(sys *hexgrid.System, root hexgrid.Coord, height int) (*Tree, error) {
	if sys == nil {
		return nil, fmt.Errorf("loctree: nil hex system")
	}
	if height < 1 {
		return nil, fmt.Errorf("loctree: height must be >= 1, got %d", height)
	}
	t := &Tree{
		sys:    sys,
		height: height,
		root:   root,
		levels: make([][]hexgrid.Coord, height+1),
		index:  make([]map[hexgrid.Coord]int, height+1),
	}
	t.levels[height] = []hexgrid.Coord{root}
	for h := height; h > 0; h-- {
		parents := t.levels[h]
		children := make([]hexgrid.Coord, 0, len(parents)*7)
		for _, p := range parents {
			ch := hexgrid.Children(p)
			children = append(children, ch[:]...)
		}
		t.levels[h-1] = children
	}
	for h := 0; h <= height; h++ {
		m := make(map[hexgrid.Coord]int, len(t.levels[h]))
		for i, c := range t.levels[h] {
			m[c] = i
		}
		t.index[h] = m
	}
	return t, nil
}

// NewAt builds a tree of the given height whose root is the level-`height`
// cell containing the geographic point p.
func NewAt(sys *hexgrid.System, p geo.LatLng, height int) (*Tree, error) {
	if sys == nil {
		return nil, fmt.Errorf("loctree: nil hex system")
	}
	return New(sys, sys.Locate(height, p), height)
}

// System returns the underlying hex system.
func (t *Tree) System() *hexgrid.System { return t.sys }

// Height returns the tree height H (root level).
func (t *Tree) Height() int { return t.height }

// Root returns the root node (the whole area of interest).
func (t *Tree) Root() NodeID { return NodeID{Level: t.height, Coord: t.root} }

// NumLeaves returns 7^H.
func (t *Tree) NumLeaves() int { return len(t.levels[0]) }

// LevelNodes returns the nodes of level h in BFS order. The returned slice
// must not be modified.
func (t *Tree) LevelNodes(h int) []NodeID {
	if h < 0 || h > t.height {
		return nil
	}
	out := make([]NodeID, len(t.levels[h]))
	for i, c := range t.levels[h] {
		out[i] = NodeID{Level: h, Coord: c}
	}
	return out
}

// Contains reports whether n is a node of this tree.
func (t *Tree) Contains(n NodeID) bool {
	if n.Level < 0 || n.Level > t.height {
		return false
	}
	_, ok := t.index[n.Level][n.Coord]
	return ok
}

// IndexOf returns n's position within its level's BFS order.
func (t *Tree) IndexOf(n NodeID) (int, bool) {
	if n.Level < 0 || n.Level > t.height {
		return 0, false
	}
	i, ok := t.index[n.Level][n.Coord]
	return i, ok
}

// Children returns the children N(v) of a non-leaf node, in digit order.
func (t *Tree) Children(n NodeID) []NodeID {
	if n.Level <= 0 || !t.Contains(n) {
		return nil
	}
	ch := hexgrid.Children(n.Coord)
	out := make([]NodeID, 7)
	for i, c := range ch {
		out[i] = NodeID{Level: n.Level - 1, Coord: c}
	}
	return out
}

// ParentOf returns the parent of n, or ok=false for the root or foreign nodes.
func (t *Tree) ParentOf(n NodeID) (NodeID, bool) {
	if !t.Contains(n) || n.Level >= t.height {
		return NodeID{}, false
	}
	return NodeID{Level: n.Level + 1, Coord: hexgrid.Parent(n.Coord)}, true
}

// AncestorAt returns n's ancestor at the given level (n itself if
// level == n.Level). ok=false if level is out of range or n is foreign.
func (t *Tree) AncestorAt(n NodeID, level int) (NodeID, bool) {
	if !t.Contains(n) || level < n.Level || level > t.height {
		return NodeID{}, false
	}
	c := n.Coord
	for h := n.Level; h < level; h++ {
		c = hexgrid.Parent(c)
	}
	return NodeID{Level: level, Coord: c}, true
}

// LeavesUnder returns the leaf descendants of n in deterministic order
// (digit-order DFS, which coincides with the global BFS order restricted to
// the subtree). For a leaf it returns the leaf itself.
func (t *Tree) LeavesUnder(n NodeID) []NodeID {
	if !t.Contains(n) {
		return nil
	}
	cur := []hexgrid.Coord{n.Coord}
	for h := n.Level; h > 0; h-- {
		next := make([]hexgrid.Coord, 0, len(cur)*7)
		for _, c := range cur {
			ch := hexgrid.Children(c)
			next = append(next, ch[:]...)
		}
		cur = next
	}
	out := make([]NodeID, len(cur))
	for i, c := range cur {
		out[i] = NodeID{Level: 0, Coord: c}
	}
	return out
}

// Locate returns the tree node at the given level containing the geographic
// point p, or ok=false if p falls outside the tree's region.
func (t *Tree) Locate(p geo.LatLng, level int) (NodeID, bool) {
	if level < 0 || level > t.height {
		return NodeID{}, false
	}
	n := NodeID{Level: level, Coord: t.sys.Locate(level, p)}
	if !t.Contains(n) {
		return NodeID{}, false
	}
	return n, true
}

// Center returns the geographic center of node n.
func (t *Tree) Center(n NodeID) geo.LatLng {
	return t.sys.Center(n.Level, n.Coord)
}

// Distance returns the haversine distance (km) between the centers of two
// nodes at the same level. It panics if the levels differ, which indicates
// a programming error (the paper only defines obfuscation within a level).
func (t *Tree) Distance(a, b NodeID) float64 {
	if a.Level != b.Level {
		panic(fmt.Sprintf("loctree: distance across levels %d and %d", a.Level, b.Level))
	}
	return t.sys.CenterDistance(a.Level, a.Coord, b.Coord)
}

// ClusterLeaves returns a connected leaf set of size 7*m: the descendant
// leaves of the first m level-1 nodes in a center-out spiral around the
// root's center-child lineage. This generalizes "the leaves of one subtree"
// to the intermediate sizes used by the paper's experiments (K = 7, 14, ...,
// 70 in Figs. 10b, 12b, 14a). m must be in [1, 7^(H-1)].
func (t *Tree) ClusterLeaves(m int) ([]NodeID, error) {
	maxParents := len(t.levels[1])
	if m < 1 || m > maxParents {
		return nil, fmt.Errorf("loctree: cluster size %d out of range [1,%d]", m, maxParents)
	}
	// Spiral of level-1 cells around the root's center lineage at level 1.
	center := t.root
	for h := t.height; h > 1; h-- {
		center = hexgrid.Children(center)[0]
	}
	parents := make([]hexgrid.Coord, 0, m)
	for k := 0; len(parents) < m; k++ {
		for _, c := range hexgrid.Ring(center, k) {
			if _, ok := t.index[1][c]; !ok {
				continue
			}
			parents = append(parents, c)
			if len(parents) == m {
				break
			}
		}
		if k > 4*t.height+maxParents { // cannot happen; guards infinite loop
			return nil, fmt.Errorf("loctree: spiral failed to collect %d parents", m)
		}
	}
	out := make([]NodeID, 0, 7*m)
	for _, p := range parents {
		out = append(out, t.LeavesUnder(NodeID{Level: 1, Coord: p})...)
	}
	return out, nil
}

// Priors holds a prior probability distribution over the leaves of a tree,
// aligned with LevelNodes(0) order, plus aggregated priors for every upper
// level (a node's prior is the sum of its children's — footnote 5 / Sec. 6.1).
type Priors struct {
	byLevel [][]float64
}

// NewPriors validates and aggregates a leaf-level distribution. leaf must
// have length tree.NumLeaves(), non-negative entries, and a positive sum;
// it is normalized to sum to 1.
func NewPriors(t *Tree, leaf []float64) (*Priors, error) {
	if len(leaf) != t.NumLeaves() {
		return nil, fmt.Errorf("loctree: got %d leaf priors, tree has %d leaves", len(leaf), t.NumLeaves())
	}
	sum := 0.0
	for i, v := range leaf {
		if v < 0 {
			return nil, fmt.Errorf("loctree: negative prior %v at leaf %d", v, i)
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("loctree: leaf priors sum to %v, want > 0", sum)
	}
	p := &Priors{byLevel: make([][]float64, t.height+1)}
	p.byLevel[0] = make([]float64, len(leaf))
	for i, v := range leaf {
		p.byLevel[0][i] = v / sum
	}
	for h := 1; h <= t.height; h++ {
		nodes := t.levels[h]
		agg := make([]float64, len(nodes))
		for i, c := range nodes {
			for _, ch := range hexgrid.Children(c) {
				agg[i] += p.byLevel[h-1][t.index[h-1][ch]]
			}
		}
		p.byLevel[h] = agg
	}
	return p, nil
}

// UniformPriors returns the uniform distribution over leaves.
func UniformPriors(t *Tree) *Priors {
	leaf := make([]float64, t.NumLeaves())
	for i := range leaf {
		leaf[i] = 1
	}
	p, err := NewPriors(t, leaf)
	if err != nil {
		panic("loctree: uniform priors cannot fail: " + err.Error())
	}
	return p
}

// Of returns the prior of node n. The tree used to build the Priors must be
// the one n belongs to; unknown nodes return 0.
func (p *Priors) Of(t *Tree, n NodeID) float64 {
	i, ok := t.IndexOf(n)
	if !ok {
		return 0
	}
	return p.byLevel[n.Level][i]
}

// Level returns the distribution over level-h nodes (aligned with
// LevelNodes(h)). The returned slice must not be modified.
func (p *Priors) Level(h int) []float64 {
	if h < 0 || h >= len(p.byLevel) {
		return nil
	}
	return p.byLevel[h]
}

// Subset returns the (re-normalized if normalize is set) prior vector for an
// arbitrary set of same-level nodes, aligned with the given order.
func (p *Priors) Subset(t *Tree, nodes []NodeID, normalize bool) ([]float64, error) {
	out := make([]float64, len(nodes))
	sum := 0.0
	for i, n := range nodes {
		idx, ok := t.IndexOf(n)
		if !ok {
			return nil, fmt.Errorf("loctree: node %v not in tree", n)
		}
		out[i] = p.byLevel[n.Level][idx]
		sum += out[i]
	}
	if normalize {
		if sum <= 0 {
			return nil, fmt.Errorf("loctree: subset prior mass is %v, cannot normalize", sum)
		}
		for i := range out {
			out[i] /= sum
		}
	}
	return out, nil
}
