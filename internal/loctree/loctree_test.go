package loctree

import (
	"math"
	"testing"
	"testing/quick"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
)

func newTestTree(t *testing.T, height int) *Tree {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.5)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	tree, err := NewAt(sys, geo.SanFrancisco.Center(), height)
	if err != nil {
		t.Fatalf("NewAt: %v", err)
	}
	return tree
}

func TestNewValidation(t *testing.T) {
	sys, _ := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.5)
	if _, err := New(sys, hexgrid.Coord{}, 0); err == nil {
		t.Error("height 0 should fail")
	}
	if _, err := New(nil, hexgrid.Coord{}, 2); err == nil {
		t.Error("nil system should fail")
	}
	if _, err := NewAt(nil, geo.SanFrancisco.Center(), 2); err == nil {
		t.Error("nil system should fail")
	}
}

func TestTreeShape(t *testing.T) {
	for height := 1; height <= 3; height++ {
		tree := newTestTree(t, height)
		if tree.Height() != height {
			t.Errorf("Height = %d, want %d", tree.Height(), height)
		}
		want := 1
		for h := height; h >= 0; h-- {
			nodes := tree.LevelNodes(h)
			if len(nodes) != want {
				t.Errorf("height %d: level %d has %d nodes, want %d", height, h, len(nodes), want)
			}
			want *= 7
		}
		if tree.NumLeaves() != intPow(7, height) {
			t.Errorf("NumLeaves = %d, want %d", tree.NumLeaves(), intPow(7, height))
		}
	}
}

func intPow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func TestLevelNodesOutOfRange(t *testing.T) {
	tree := newTestTree(t, 2)
	if tree.LevelNodes(-1) != nil || tree.LevelNodes(3) != nil {
		t.Error("out-of-range levels must return nil")
	}
}

func TestParentChildConsistency(t *testing.T) {
	tree := newTestTree(t, 3)
	for h := 3; h > 0; h-- {
		for _, n := range tree.LevelNodes(h) {
			children := tree.Children(n)
			if len(children) != 7 {
				t.Fatalf("node %v has %d children", n, len(children))
			}
			for _, c := range children {
				p, ok := tree.ParentOf(c)
				if !ok || p != n {
					t.Fatalf("ParentOf(%v) = %v,%v, want %v", c, p, ok, n)
				}
				if !tree.Contains(c) {
					t.Fatalf("child %v not in tree", c)
				}
			}
		}
	}
	if _, ok := tree.ParentOf(tree.Root()); ok {
		t.Error("root must have no parent")
	}
	if ch := tree.Children(NodeID{Level: 0, Coord: tree.LevelNodes(0)[0].Coord}); ch != nil {
		t.Error("leaves must have no children")
	}
}

func TestChildrenPartitionLevel(t *testing.T) {
	// Children of all level-h nodes must be exactly the level-(h-1) nodes.
	tree := newTestTree(t, 3)
	for h := 3; h > 0; h-- {
		seen := map[NodeID]bool{}
		for _, n := range tree.LevelNodes(h) {
			for _, c := range tree.Children(n) {
				if seen[c] {
					t.Fatalf("node %v has two parents", c)
				}
				seen[c] = true
			}
		}
		if len(seen) != len(tree.LevelNodes(h-1)) {
			t.Fatalf("level %d children cover %d of %d nodes", h, len(seen), len(tree.LevelNodes(h-1)))
		}
	}
}

func TestLeavesUnder(t *testing.T) {
	tree := newTestTree(t, 3)
	root := tree.Root()
	leaves := tree.LeavesUnder(root)
	if len(leaves) != 343 {
		t.Fatalf("root has %d leaves, want 343", len(leaves))
	}
	// LeavesUnder(root) must match LevelNodes(0) exactly (same order).
	level0 := tree.LevelNodes(0)
	for i := range leaves {
		if leaves[i] != level0[i] {
			t.Fatalf("leaf order mismatch at %d: %v vs %v", i, leaves[i], level0[i])
		}
	}
	// Union of leaves under level-2 nodes partitions all leaves.
	seen := map[NodeID]bool{}
	for _, n := range tree.LevelNodes(2) {
		sub := tree.LeavesUnder(n)
		if len(sub) != 49 {
			t.Fatalf("level-2 node has %d leaves, want 49", len(sub))
		}
		for _, l := range sub {
			if seen[l] {
				t.Fatalf("leaf %v under two level-2 nodes", l)
			}
			seen[l] = true
		}
	}
	if len(seen) != 343 {
		t.Fatalf("level-2 subtrees cover %d leaves", len(seen))
	}
	// A leaf's LeavesUnder is itself.
	l := level0[5]
	if got := tree.LeavesUnder(l); len(got) != 1 || got[0] != l {
		t.Errorf("LeavesUnder(leaf) = %v", got)
	}
}

func TestAncestorAt(t *testing.T) {
	tree := newTestTree(t, 3)
	for _, leaf := range tree.LeavesUnder(tree.Root())[:20] {
		cur := leaf
		for lv := 0; lv <= 3; lv++ {
			anc, ok := tree.AncestorAt(leaf, lv)
			if !ok {
				t.Fatalf("AncestorAt(%v, %d) failed", leaf, lv)
			}
			if anc != cur {
				t.Fatalf("AncestorAt(%v, %d) = %v, want %v", leaf, lv, anc, cur)
			}
			if lv < 3 {
				p, ok := tree.ParentOf(cur)
				if !ok {
					t.Fatalf("ParentOf(%v) failed", cur)
				}
				cur = p
			}
		}
	}
	if _, ok := tree.AncestorAt(tree.Root(), 0); ok {
		t.Error("ancestor below node must fail")
	}
	if _, ok := tree.AncestorAt(tree.Root(), 4); ok {
		t.Error("ancestor above root must fail")
	}
}

func TestLocate(t *testing.T) {
	tree := newTestTree(t, 2)
	for _, leaf := range tree.LevelNodes(0) {
		p := tree.Center(leaf)
		got, ok := tree.Locate(p, 0)
		if !ok || got != leaf {
			t.Fatalf("Locate(center of %v) = %v,%v", leaf, got, ok)
		}
		anc, _ := tree.AncestorAt(leaf, 1)
		got1, ok := tree.Locate(p, 1)
		if !ok {
			t.Fatalf("Locate level 1 failed for %v", leaf)
		}
		// The level-1 cell containing a leaf center is usually the parent,
		// but aperture-7 children are not strictly contained; accept the
		// geometric answer and only require tree membership.
		if !tree.Contains(got1) {
			t.Fatalf("Locate returned foreign node %v", got1)
		}
		_ = anc
	}
	// A point far outside the region must not locate.
	if _, ok := tree.Locate(geo.LatLng{Lat: 0, Lng: 0}, 0); ok {
		t.Error("far point must not locate in tree")
	}
	if _, ok := tree.Locate(geo.SanFrancisco.Center(), -1); ok {
		t.Error("negative level must fail")
	}
}

func TestDistanceSymmetricPositive(t *testing.T) {
	tree := newTestTree(t, 2)
	leaves := tree.LevelNodes(0)
	a, b := leaves[0], leaves[17]
	d1, d2 := tree.Distance(a, b), tree.Distance(b, a)
	if d1 != d2 || d1 <= 0 {
		t.Errorf("Distance: %v vs %v", d1, d2)
	}
	defer func() {
		if recover() == nil {
			t.Error("cross-level distance must panic")
		}
	}()
	tree.Distance(a, tree.Root())
}

func TestClusterLeaves(t *testing.T) {
	tree := newTestTree(t, 3)
	for _, m := range []int{1, 2, 4, 7, 10} {
		leaves, err := tree.ClusterLeaves(m)
		if err != nil {
			t.Fatalf("ClusterLeaves(%d): %v", m, err)
		}
		if len(leaves) != 7*m {
			t.Fatalf("ClusterLeaves(%d) = %d leaves, want %d", m, len(leaves), 7*m)
		}
		seen := map[NodeID]bool{}
		for _, l := range leaves {
			if !tree.Contains(l) {
				t.Fatalf("cluster leaf %v not in tree", l)
			}
			if seen[l] {
				t.Fatalf("duplicate cluster leaf %v", l)
			}
			seen[l] = true
		}
		// Connectivity under the immediate-neighbor graph.
		if !connected(leaves) {
			t.Fatalf("ClusterLeaves(%d) not connected", m)
		}
	}
	if _, err := tree.ClusterLeaves(0); err == nil {
		t.Error("m=0 must fail")
	}
	if _, err := tree.ClusterLeaves(50); err == nil {
		t.Error("m > 7^(H-1) must fail")
	}
}

func connected(nodes []NodeID) bool {
	in := map[hexgrid.Coord]bool{}
	for _, n := range nodes {
		in[n.Coord] = true
	}
	visited := map[hexgrid.Coord]bool{}
	stack := []hexgrid.Coord{nodes[0].Coord}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[c] {
			continue
		}
		visited[c] = true
		for _, nb := range hexgrid.Neighbors(c) {
			if in[nb] && !visited[nb] {
				stack = append(stack, nb)
			}
		}
	}
	return len(visited) == len(nodes)
}

func TestPriorsValidation(t *testing.T) {
	tree := newTestTree(t, 1)
	if _, err := NewPriors(tree, []float64{1, 2}); err == nil {
		t.Error("wrong length must fail")
	}
	if _, err := NewPriors(tree, []float64{1, 1, 1, 1, 1, 1, -1}); err == nil {
		t.Error("negative prior must fail")
	}
	if _, err := NewPriors(tree, make([]float64, 7)); err == nil {
		t.Error("zero-sum priors must fail")
	}
}

func TestPriorsAggregation(t *testing.T) {
	tree := newTestTree(t, 2)
	leaf := make([]float64, tree.NumLeaves())
	for i := range leaf {
		leaf[i] = float64(i + 1)
	}
	p, err := NewPriors(tree, leaf)
	if err != nil {
		t.Fatalf("NewPriors: %v", err)
	}
	// Leaf level normalized.
	sum := 0.0
	for _, v := range p.Level(0) {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("leaf priors sum to %v", sum)
	}
	// Every level sums to 1 and each node's prior equals sum of children.
	for h := 1; h <= 2; h++ {
		lvSum := 0.0
		for _, v := range p.Level(h) {
			lvSum += v
		}
		if math.Abs(lvSum-1) > 1e-12 {
			t.Errorf("level %d priors sum to %v", h, lvSum)
		}
		for _, n := range tree.LevelNodes(h) {
			childSum := 0.0
			for _, c := range tree.Children(n) {
				childSum += p.Of(tree, c)
			}
			if math.Abs(childSum-p.Of(tree, n)) > 1e-12 {
				t.Errorf("node %v prior %v != child sum %v", n, p.Of(tree, n), childSum)
			}
		}
	}
	if p.Of(tree, NodeID{Level: 0, Coord: hexgrid.Coord{Q: 999, R: 999}}) != 0 {
		t.Error("foreign node prior must be 0")
	}
	if p.Level(5) != nil || p.Level(-1) != nil {
		t.Error("out-of-range level must return nil")
	}
}

func TestPriorsAggregationProperty(t *testing.T) {
	tree := newTestTree(t, 2)
	f := func(seed int64) bool {
		leaf := make([]float64, tree.NumLeaves())
		x := uint64(seed)
		for i := range leaf {
			x = x*6364136223846793005 + 1442695040888963407
			leaf[i] = float64(x%1000) + 1
		}
		p, err := NewPriors(tree, leaf)
		if err != nil {
			return false
		}
		root := p.Of(tree, tree.Root())
		return math.Abs(root-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUniformPriors(t *testing.T) {
	tree := newTestTree(t, 2)
	p := UniformPriors(tree)
	want := 1.0 / 49
	for _, v := range p.Level(0) {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("uniform leaf prior %v, want %v", v, want)
		}
	}
}

func TestPriorsSubset(t *testing.T) {
	tree := newTestTree(t, 2)
	p := UniformPriors(tree)
	nodes := tree.LevelNodes(0)[:10]
	raw, err := p.Subset(tree, nodes, false)
	if err != nil {
		t.Fatalf("Subset: %v", err)
	}
	for _, v := range raw {
		if math.Abs(v-1.0/49) > 1e-12 {
			t.Errorf("raw subset value %v", v)
		}
	}
	norm, err := p.Subset(tree, nodes, true)
	if err != nil {
		t.Fatalf("Subset normalize: %v", err)
	}
	sum := 0.0
	for _, v := range norm {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("normalized subset sums to %v", sum)
	}
	if _, err := p.Subset(tree, []NodeID{{Level: 0, Coord: hexgrid.Coord{Q: 99, R: 99}}}, false); err == nil {
		t.Error("foreign node must fail")
	}
}
