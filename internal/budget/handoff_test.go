package budget

import (
	"errors"
	"testing"
	"time"
)

// handoffPair builds two accountants (node A and node B) sharing a config
// and a controllable clock.
func handoffPair(t *testing.T, limit float64) (a, b *Accountant, now *time.Time) {
	t.Helper()
	base := time.Unix(1_700_000_000, 0)
	now = &base
	clock := func() time.Time { return *now }
	var err error
	if a, err = NewAccountant(Config{LimitEps: limit, Window: time.Hour, Now: clock}); err != nil {
		t.Fatal(err)
	}
	if b, err = NewAccountant(Config{LimitEps: limit, Window: time.Hour, Now: clock}); err != nil {
		t.Fatal(err)
	}
	return a, b, now
}

// TestHandoffMovesSpend: export moves the events out of A, import counts
// them on B, and the user's global spend is unchanged — the cap holds
// across the move with no double charge and no reset.
func TestHandoffMovesSpend(t *testing.T) {
	a, b, _ := handoffPair(t, 10)
	const uid = 42
	if _, err := a.Charge(uid, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(uid, 2); err != nil {
		t.Fatal(err)
	}

	h := a.ExportHandoff(uid, "nodeA")
	if h == nil || h.Source != "nodeA" || h.Seq != 1 {
		t.Fatalf("export: %+v", h)
	}
	if got := h.Eps(); got != 5 {
		t.Fatalf("exported eps %v, want 5", got)
	}
	// The events left A's window immediately (move semantics).
	if spent := a.Spent(uid); spent != 0 {
		t.Fatalf("A still counts %v after export", spent)
	}

	applied, ok := b.ImportHandoff(uid, h)
	if !ok || applied != 5 {
		t.Fatalf("import applied %v ok=%v", applied, ok)
	}
	a.CommitHandoff(uid, h.Seq)
	if rem := b.Remaining(uid); rem != 5 {
		t.Fatalf("B remaining %v, want 5", rem)
	}
	// The cap now binds on B: 5 handed off + 5 fresh = the full limit,
	// and the next charge is refused.
	if _, err := b.Charge(uid, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Charge(uid, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-cap charge after handoff: %v", err)
	}
}

// TestHandoffRollback: a failed forward restores the exported spend, so a
// user cannot mint budget by triggering transport failures.
func TestHandoffRollback(t *testing.T) {
	a, _, _ := handoffPair(t, 10)
	const uid = 7
	if _, err := a.Charge(uid, 6); err != nil {
		t.Fatal(err)
	}
	h := a.ExportHandoff(uid, "nodeA")
	if h == nil {
		t.Fatal("no handoff")
	}
	a.RollbackHandoff(uid, h.Seq)
	if spent := a.Spent(uid); spent != 6 {
		t.Fatalf("spend after rollback %v, want 6", spent)
	}
	// Rollback is idempotent; a second call must not double the spend.
	a.RollbackHandoff(uid, h.Seq)
	if spent := a.Spent(uid); spent != 6 {
		t.Fatalf("spend after duplicate rollback %v, want 6", spent)
	}
	if st := a.Stats(); st.HandoffsRolledBack != 1 {
		t.Fatalf("rollback counter %d", st.HandoffsRolledBack)
	}
}

// TestHandoffDedupe: redelivering the same handoff (same source+seq)
// applies once — the watermark makes forward retries safe.
func TestHandoffDedupe(t *testing.T) {
	a, b, _ := handoffPair(t, 10)
	const uid = 9
	if _, err := a.Charge(uid, 4); err != nil {
		t.Fatal(err)
	}
	h := a.ExportHandoff(uid, "nodeA")
	if applied, ok := b.ImportHandoff(uid, h); !ok || applied != 4 {
		t.Fatalf("first import: %v %v", applied, ok)
	}
	if _, ok := b.ImportHandoff(uid, h); ok {
		t.Fatal("duplicate import applied")
	}
	if spent := b.Spent(uid); spent != 4 {
		t.Fatalf("spend after duplicate delivery %v, want 4", spent)
	}
	if st := b.Stats(); st.HandoffDupes != 1 || st.HandoffsImported != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if wm := b.HandoffsApplied(uid, "nodeA"); wm != 1 {
		t.Fatalf("watermark %d", wm)
	}
	// Distinct sources keep independent watermarks.
	h2 := &Handoff{Source: "nodeC", Seq: 1, Events: h.Events}
	if applied, ok := b.ImportHandoff(uid, h2); !ok || applied != 4 {
		t.Fatalf("import from second source: %v %v", applied, ok)
	}
}

// TestHandoffExpiry: handoffs carry event timestamps, so imported spend
// slides out of the receiver's window exactly when it would have expired
// on the exporter.
func TestHandoffExpiry(t *testing.T) {
	a, b, now := handoffPair(t, 10)
	const uid = 3
	if _, err := a.Charge(uid, 5); err != nil {
		t.Fatal(err)
	}
	h := a.ExportHandoff(uid, "nodeA")
	*now = now.Add(30 * time.Minute)
	if applied, ok := b.ImportHandoff(uid, h); !ok || applied != 5 {
		t.Fatalf("mid-window import: %v %v", applied, ok)
	}
	if spent := b.Spent(uid); spent != 5 {
		t.Fatalf("spend mid-window %v", spent)
	}
	*now = now.Add(31 * time.Minute) // past the 1h window from charge time
	if spent := b.Spent(uid); spent != 0 {
		t.Fatalf("imported spend did not expire: %v", spent)
	}

	// A handoff whose events are all already expired imports as zero.
	if _, err := a.Charge(uid, 2); err != nil {
		t.Fatal(err)
	}
	h2 := a.ExportHandoff(uid, "nodeA")
	*now = now.Add(2 * time.Hour)
	if applied, ok := b.ImportHandoff(uid, h2); !ok || applied != 0 {
		t.Fatalf("expired import applied %v ok=%v", applied, ok)
	}
}

// TestHandoffNothingToExport: a user with no live spend produces no
// handoff — the forward path stays zero-overhead for fresh users.
func TestHandoffNothingToExport(t *testing.T) {
	a, _, now := handoffPair(t, 10)
	if h := a.ExportHandoff(1, "nodeA"); h != nil {
		t.Fatalf("export for untouched user: %+v", h)
	}
	if _, err := a.Charge(1, 2); err != nil {
		t.Fatal(err)
	}
	*now = now.Add(2 * time.Hour)
	if h := a.ExportHandoff(1, "nodeA"); h != nil {
		t.Fatalf("export of fully expired spend: %+v", h)
	}
}
