package budget

import (
	"testing"
	"time"

	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
)

func testToken(now time.Time) LeaseToken {
	return LeaseToken{
		UID:       42,
		Region:    "porto",
		Root:      loctree.NodeID{Level: 2, Coord: hexgrid.Coord{Q: -1, R: 3}},
		Delta:     5,
		Eps:       1.6,
		DrawCap:   256,
		RNGPos:    1024,
		IssuedAt:  now.UnixMilli(),
		ExpiresAt: now.Add(time.Minute).UnixMilli(),
	}
}

func TestLeaseTokenRoundTrip(t *testing.T) {
	now := time.Unix(1700000000, 0)
	kr, err := NewKeyring([]byte("test-master-secret"))
	if err != nil {
		t.Fatal(err)
	}
	want := testToken(now)
	data := kr.Sign(want)

	got, err := kr.Verify(data, now)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("verified token = %+v want %+v", got, want)
	}
	// Unauthenticated decode (the client-side read path) sees the same
	// fields.
	dec, err := DecodeLeaseToken(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec != want {
		t.Fatalf("decoded token = %+v want %+v", dec, want)
	}
}

func TestLeaseTokenForgeryRejected(t *testing.T) {
	now := time.Unix(1700000000, 0)
	kr, err := NewKeyring([]byte("test-master-secret"))
	if err != nil {
		t.Fatal(err)
	}
	data := kr.Sign(testToken(now))

	// Flipping any single byte — payload or tag — must fail verification.
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, err := kr.Verify(bad, now); err == nil {
			t.Fatalf("token with byte %d flipped verified", i)
		}
	}
	// A different master secret (wrong server) must fail too.
	other, err := NewKeyring([]byte("a-different-secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Verify(data, now); err == nil {
		t.Fatal("token verified under a foreign keyring")
	}
	// Truncated tag.
	if _, err := kr.Verify(data[:len(data)-1], now); err == nil {
		t.Fatal("token with truncated tag verified")
	}
}

func TestLeaseTokenCrossUserKeyIsolation(t *testing.T) {
	now := time.Unix(1700000000, 0)
	kr, err := NewKeyring([]byte("test-master-secret"))
	if err != nil {
		t.Fatal(err)
	}
	tok := testToken(now)
	data := kr.Sign(tok)
	// Re-signing the same claims under another UID produces a different
	// tag: per-user derived keys, not one shared key.
	tok2 := tok
	tok2.UID = 43
	data2 := kr.Sign(tok2)
	if string(data[len(data)-tagLen:]) == string(data2[len(data2)-tagLen:]) {
		t.Fatal("two users' tokens share an HMAC tag")
	}
}

func TestLeaseTokenExpiry(t *testing.T) {
	now := time.Unix(1700000000, 0)
	kr, err := NewKeyring([]byte("test-master-secret"))
	if err != nil {
		t.Fatal(err)
	}
	tok := testToken(now)
	data := kr.Sign(tok)
	// Valid right up to the expiry instant, rejected one millisecond past.
	if _, err := kr.Verify(data, tok.Expiry()); err != nil {
		t.Fatalf("token rejected at expiry instant: %v", err)
	}
	if _, err := kr.Verify(data, tok.Expiry().Add(time.Millisecond)); err == nil {
		t.Fatal("expired token verified")
	}
}

func TestNewKeyringRejectsEmptySecret(t *testing.T) {
	if _, err := NewKeyring(nil); err == nil {
		t.Fatal("empty secret accepted")
	}
}

func FuzzDecodeLeaseToken(f *testing.F) {
	now := time.Unix(1700000000, 0)
	kr, err := NewKeyring([]byte("test-master-secret"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(kr.Sign(testToken(now)))
	f.Add([]byte("CGT1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tok, err := DecodeLeaseToken(data)
		if err != nil {
			return
		}
		if tok.DrawCap < 0 || len(tok.Region) > 256 {
			t.Fatalf("decoded token violates bounds: %+v", tok)
		}
	})
}
