package budget

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopDeltaSum(t *testing.T) {
	row := []float64{0.1, 0.4, 0.05, 0.3, 0.15}
	tests := []struct {
		delta int
		want  float64
	}{
		{0, 0},
		{1, 0.4},
		{2, 0.7},
		{3, 0.85},
		{5, 1.0},
		{9, 1.0}, // delta beyond length
	}
	for _, tc := range tests {
		if got := TopDeltaSum(row, tc.delta); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("TopDeltaSum(delta=%d) = %v, want %v", tc.delta, got, tc.want)
		}
	}
	if got := TopDeltaSum(nil, 3); got != 0 {
		t.Errorf("empty row = %v", got)
	}
	// Negative entries are never selected.
	if got := TopDeltaSum([]float64{-1, 0.5, -2}, 2); got != 0.5 {
		t.Errorf("negative entries selected: %v", got)
	}
	if got := TopDeltaSum([]float64{-1, -2}, 5); got != 0 {
		t.Errorf("all-negative full sum = %v", got)
	}
}

func TestTopDeltaSumMonotone(t *testing.T) {
	f := func(seed int64, rawDelta uint8) bool {
		r := rand.New(rand.NewSource(seed))
		row := make([]float64, 10)
		for i := range row {
			row[i] = r.Float64() / 10
		}
		d := int(rawDelta % 10)
		return TopDeltaSum(row, d) <= TopDeltaSum(row, d+1)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxValidation(t *testing.T) {
	zi := []float64{0.5, 0.5}
	if _, err := Approx(zi, zi, 0, 1, 1, VariantProof); err == nil {
		t.Error("zero distance must fail")
	}
	if _, err := Approx(zi, zi, 1, 0, 1, VariantProof); err == nil {
		t.Error("zero epsilon must fail")
	}
	if _, err := Approx(zi, zi, 1, 1, -1, VariantProof); err == nil {
		t.Error("negative delta must fail")
	}
}

func TestApproxZeroDelta(t *testing.T) {
	zi := []float64{0.2, 0.3, 0.5}
	got, err := Approx(zi, zi, 1.5, 10, 0, VariantProof)
	if err != nil || got != 0 {
		t.Errorf("delta=0 must reserve nothing, got %v err %v", got, err)
	}
}

func TestApproxIncreasesWithDelta(t *testing.T) {
	zi := []float64{0.4, 0.3, 0.2, 0.1}
	prev := -1.0
	for delta := 0; delta <= 4; delta++ {
		got, err := Approx(zi, zi, 1, 5, delta, VariantProof)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Errorf("reserved budget decreased at delta=%d: %v < %v", delta, got, prev)
		}
		prev = got
	}
}

func TestApproxFormula(t *testing.T) {
	// Hand check: T = 0.6, eps=2, d=0.5 -> eps' = 2*ln((1-0.6/e)/(0.4)).
	zi := []float64{0.6, 0.25, 0.15}
	got, err := Approx(zi, nil, 0.5, 2, 1, VariantProof)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log((1-0.6/math.E)/0.4) / 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Approx = %v, want %v", got, want)
	}
}

func TestApproxVariants(t *testing.T) {
	zi := []float64{0.9, 0.05, 0.05}
	zj := []float64{0.2, 0.4, 0.4}
	pi, err := Approx(zi, zj, 1, 3, 1, VariantProof)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := Approx(zi, zj, 1, 3, 1, VariantPrinted)
	if err != nil {
		t.Fatal(err)
	}
	if pi <= pj {
		t.Errorf("row i has the heavier top mass here, so proof variant should reserve more: %v vs %v", pi, pj)
	}
}

func TestApproxHeavyMassClamped(t *testing.T) {
	// Nearly all mass in the top entry: must stay finite.
	zi := []float64{1 - 1e-15, 1e-15}
	got, err := Approx(zi, nil, 1, 5, 1, VariantProof)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Approx overflowed: %v", got)
	}
	if got <= 0 {
		t.Errorf("heavy mass must reserve a positive budget, got %v", got)
	}
}

func TestExactValidation(t *testing.T) {
	if _, err := Exact([]float64{1}, []float64{0.5, 0.5}, 1, 1); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := Exact([]float64{1}, []float64{1}, 0, 1); err == nil {
		t.Error("zero distance must fail")
	}
	if _, err := Exact([]float64{1}, []float64{1}, 1, -2); err == nil {
		t.Error("negative delta must fail")
	}
}

func TestExactBruteForceSmall(t *testing.T) {
	zi := []float64{0.5, 0.3, 0.2}
	zj := []float64{0.1, 0.6, 0.3}
	d := 2.0
	// delta=1: candidates S={}, {0}, {1}, {2}:
	// {}: 1; {0}: 0.9/0.5=1.8; {1}: 0.4/0.7; {2}: 0.7/0.8.
	got, err := Exact(zi, zj, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(1.8) / d
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Exact = %v, want %v", got, want)
	}
	// delta=2: best is {0,2}: (1-0.4)/(1-0.7) = 2.0.
	got2, err := Exact(zi, zj, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	want2 := math.Log(2.0) / d
	if math.Abs(got2-want2) > 1e-12 {
		t.Errorf("Exact delta=2 = %v, want %v", got2, want2)
	}
}

func TestExactNonNegative(t *testing.T) {
	f := func(seed int64, rawDelta uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		zi, zj := make([]float64, n), make([]float64, n)
		si, sj := 0.0, 0.0
		for k := range zi {
			zi[k], zj[k] = r.Float64(), r.Float64()
			si += zi[k]
			sj += zj[k]
		}
		for k := range zi {
			zi[k] /= si
			zj[k] /= sj
		}
		delta := int(rawDelta % 3)
		got, err := Exact(zi, zj, 1.0, delta)
		return err == nil && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestApproxUpperBoundsExactUnderGeoInd verifies Proposition 4.5: when the
// rows already satisfy Geo-Ind (e^{eps d} z_j >= z_i entrywise), the
// approximation is an upper bound on the exact reserved budget.
func TestApproxUpperBoundsExactUnderGeoInd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const eps, d = 3.0, 0.7
	bound := math.Exp(eps * d)
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(5)
		zj := make([]float64, n)
		sum := 0.0
		for k := range zj {
			zj[k] = rng.Float64() + 0.05
			sum += zj[k]
		}
		for k := range zj {
			zj[k] /= sum
		}
		// Build z_i <= e^{eps d} z_j entrywise, then normalize downward so
		// the constraint still holds (scaling a row down preserves it
		// only if we cap; instead sample within the box and normalize,
		// retrying if normalization breaks the bound).
		zi := make([]float64, n)
		ok := false
		for attempt := 0; attempt < 50 && !ok; attempt++ {
			s := 0.0
			for k := range zi {
				zi[k] = rng.Float64() * bound * zj[k]
				s += zi[k]
			}
			ok = true
			for k := range zi {
				zi[k] /= s
				if zi[k] > bound*zj[k]+1e-12 {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		for delta := 0; delta <= 2; delta++ {
			exact, err := Exact(zi, zj, d, delta)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := Approx(zi, zj, d, eps, delta, VariantProof)
			if err != nil {
				t.Fatal(err)
			}
			if approx < exact-1e-9 {
				t.Fatalf("trial %d delta %d: approx %v < exact %v", trial, delta, approx, exact)
			}
		}
	}
}

func TestTightenedMultiplier(t *testing.T) {
	if got := TightenedMultiplier(10, 0, 0.5); math.Abs(got-math.Exp(5)) > 1e-9 {
		t.Errorf("no reservation: %v", got)
	}
	if got := TightenedMultiplier(10, 4, 0.5); math.Abs(got-math.Exp(3)) > 1e-9 {
		t.Errorf("reserved 4: %v", got)
	}
	// Over-reservation tightens below 1 but stays positive.
	if got := TightenedMultiplier(1, 5, 1); got >= 1 || got <= 0 {
		t.Errorf("over-reserved multiplier = %v", got)
	}
}
