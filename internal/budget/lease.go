package budget

// This file is the lease half of the budget package: where the Accountant
// enforces how much epsilon a user may spend, the Keyring proves how much
// they already paid. A draw lease pre-pays n draws' epsilon in one Charge
// and hands the client an HMAC-signed token binding everything the server
// must not re-trust the client about — user, region, subtree, prune
// budget, epsilon rate, draw cap, RNG position, expiry. The server keeps
// no per-lease state: a renewal presents the token, the HMAC proves the
// server issued it, and the carried RNG position lets an evicted session
// be rebuilt exactly where the leased stream ends. Keys are per-user
// (derived from one master secret via HMAC-SHA256, in the spirit of the
// Psiphon OSL key hierarchy), so one user's captured token material never
// verifies another user's leases.

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"corgi/internal/loctree"
)

// ErrBadLeaseToken marks a lease token that fails verification: forged or
// tampered bytes, a wrong user's key, or an expired lease. The serving
// layer maps it to 403 Forbidden — unlike a budget rejection (429), the
// condition does not clear by waiting.
var ErrBadLeaseToken = errors.New("budget: invalid lease token")

// tokenMagic brands an encoded lease token.
const tokenMagic = "CGT1"

// tokenVersion is the current token layout version.
const tokenVersion = 1

// tagLen is the HMAC-SHA256 tag length appended to the token payload.
const tagLen = sha256.Size

// LeaseToken is the signed claim a draw lease carries: the facts the
// server asserted at issuance and refuses to re-derive from client input.
type LeaseToken struct {
	// UID is the user the lease's epsilon was charged to; the token only
	// verifies under that user's derived key.
	UID int64
	// Region and Root name the shard and privacy subtree the leased rows
	// customize.
	Region string
	Root   loctree.NodeID
	// Delta is the prune budget (|S|) the leased binding was built with.
	Delta int
	// Eps is the per-draw epsilon rate charged (linear composition: the
	// lease pre-paid Eps x DrawCap).
	Eps float64
	// DrawCap is how many draws the lease pre-paid; the client-side
	// sampler refuses draws beyond it.
	DrawCap int
	// RNGPos is the draws-consumed position the leased window starts at;
	// RNGPos + DrawCap is where the user's stream continues after it.
	RNGPos uint64
	// IssuedAt / ExpiresAt bound the lease lifetime (Unix milliseconds).
	IssuedAt  int64
	ExpiresAt int64
}

// Expiry returns the token's expiry instant.
func (t LeaseToken) Expiry() time.Time { return time.UnixMilli(t.ExpiresAt) }

// appendTokenPayload serializes the signed portion of a token.
func appendTokenPayload(buf []byte, t LeaseToken) []byte {
	buf = append(buf, tokenMagic...)
	buf = append(buf, tokenVersion)
	buf = binary.AppendVarint(buf, t.UID)
	buf = binary.AppendUvarint(buf, uint64(len(t.Region)))
	buf = append(buf, t.Region...)
	buf = binary.AppendVarint(buf, int64(t.Root.Level))
	buf = binary.AppendVarint(buf, int64(t.Root.Coord.Q))
	buf = binary.AppendVarint(buf, int64(t.Root.Coord.R))
	buf = binary.AppendUvarint(buf, uint64(t.Delta))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Eps))
	buf = binary.AppendUvarint(buf, uint64(t.DrawCap))
	buf = binary.AppendUvarint(buf, t.RNGPos)
	buf = binary.AppendVarint(buf, t.IssuedAt)
	buf = binary.AppendVarint(buf, t.ExpiresAt)
	return buf
}

// decodeTokenPayload parses the signed portion, returning the payload
// length consumed so the caller can locate the tag.
func decodeTokenPayload(data []byte) (LeaseToken, int, error) {
	var t LeaseToken
	if len(data) < len(tokenMagic)+1 || string(data[:len(tokenMagic)]) != tokenMagic {
		return t, 0, fmt.Errorf("%w: bad magic", ErrBadLeaseToken)
	}
	off := len(tokenMagic)
	if data[off] != tokenVersion {
		return t, 0, fmt.Errorf("%w: version %d unsupported", ErrBadLeaseToken, data[off])
	}
	off++
	varint := func() (int64, error) {
		v, n := binary.Varint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated at byte %d", ErrBadLeaseToken, off)
		}
		off += n
		return v, nil
	}
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated at byte %d", ErrBadLeaseToken, off)
		}
		off += n
		return v, nil
	}
	var err error
	if t.UID, err = varint(); err != nil {
		return t, 0, err
	}
	rl, err := uvarint()
	if err != nil {
		return t, 0, err
	}
	if rl > 256 || off+int(rl) > len(data) {
		return t, 0, fmt.Errorf("%w: region length %d out of range", ErrBadLeaseToken, rl)
	}
	t.Region = string(data[off : off+int(rl)])
	off += int(rl)
	lvl, err := varint()
	if err != nil {
		return t, 0, err
	}
	q, err := varint()
	if err != nil {
		return t, 0, err
	}
	r, err := varint()
	if err != nil {
		return t, 0, err
	}
	t.Root = loctree.NodeID{Level: int(lvl)}
	t.Root.Coord.Q = int(q)
	t.Root.Coord.R = int(r)
	delta, err := uvarint()
	if err != nil {
		return t, 0, err
	}
	t.Delta = int(delta)
	if off+8 > len(data) {
		return t, 0, fmt.Errorf("%w: truncated at byte %d", ErrBadLeaseToken, off)
	}
	t.Eps = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	cap64, err := uvarint()
	if err != nil {
		return t, 0, err
	}
	if cap64 > math.MaxInt32 {
		return t, 0, fmt.Errorf("%w: draw cap %d out of range", ErrBadLeaseToken, cap64)
	}
	t.DrawCap = int(cap64)
	if t.RNGPos, err = uvarint(); err != nil {
		return t, 0, err
	}
	if t.IssuedAt, err = varint(); err != nil {
		return t, 0, err
	}
	if t.ExpiresAt, err = varint(); err != nil {
		return t, 0, err
	}
	return t, off, nil
}

// DecodeLeaseToken parses a token WITHOUT authenticating it. Clients use
// it to read their own lease's cap and expiry; servers must only trust
// fields coming out of Keyring.Verify.
func DecodeLeaseToken(data []byte) (LeaseToken, error) {
	t, off, err := decodeTokenPayload(data)
	if err != nil {
		return t, err
	}
	if len(data) != off+tagLen {
		return t, fmt.Errorf("%w: bad tag length", ErrBadLeaseToken)
	}
	return t, nil
}

// Keyring derives per-user lease-signing keys from one master secret and
// signs/verifies lease tokens with them.
type Keyring struct {
	master []byte
}

// NewKeyring builds a keyring over a non-empty master secret.
func NewKeyring(secret []byte) (*Keyring, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("budget: keyring needs a non-empty secret")
	}
	return &Keyring{master: append([]byte(nil), secret...)}, nil
}

// userKey derives uid's signing key: HMAC-SHA256(master, uid). Capturing
// one user's tag material therefore never helps forging another user's.
func (k *Keyring) userKey(uid int64) []byte {
	mac := hmac.New(sha256.New, k.master)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(uid))
	mac.Write(b[:])
	return mac.Sum(nil)
}

// Sign encodes and signs a token under its user's derived key.
func (k *Keyring) Sign(t LeaseToken) []byte {
	payload := appendTokenPayload(nil, t)
	mac := hmac.New(sha256.New, k.userKey(t.UID))
	mac.Write(payload)
	return mac.Sum(payload)
}

// Verify authenticates an encoded token and checks it against the clock:
// a tampered payload, a truncated tag, a key mismatch (wrong user or
// wrong server secret), or an expired lease all fail with
// ErrBadLeaseToken. Only a verified token's fields may be trusted.
func (k *Keyring) Verify(data []byte, now time.Time) (LeaseToken, error) {
	t, off, err := decodeTokenPayload(data)
	if err != nil {
		return LeaseToken{}, err
	}
	if len(data) != off+tagLen {
		return LeaseToken{}, fmt.Errorf("%w: bad tag length", ErrBadLeaseToken)
	}
	mac := hmac.New(sha256.New, k.userKey(t.UID))
	mac.Write(data[:off])
	if !hmac.Equal(mac.Sum(nil), data[off:]) {
		return LeaseToken{}, fmt.Errorf("%w: signature mismatch", ErrBadLeaseToken)
	}
	if now.UnixMilli() > t.ExpiresAt {
		return LeaseToken{}, fmt.Errorf("%w: lease expired %v ago",
			ErrBadLeaseToken, now.Sub(t.Expiry()).Round(time.Millisecond))
	}
	return t, nil
}
