package budget

// This file is the *runtime* side of the package: where budget.go computes
// the reserved budget a matrix must set aside at generation time (Sec. 4.4),
// the Accountant tracks the epsilon each user actually spends at serving
// time. Every obfuscated report drawn under an epsilon-Geo-Ind matrix leaks
// epsilon, and repeated reports compose linearly (the sequential-composition
// channel Primault et al. and Oya et al. identify as the dominant leakage of
// deployed Geo-Ind systems): a user who reports n times from a trajectory
// has spent n*epsilon. The Accountant enforces a per-user cap over a
// sliding window — spend expires as the window slides, modeling the
// adversary's bounded correlation horizon — and rejects draws that would
// exceed it with ErrBudgetExhausted, which the serving layer maps to a
// 429-class response.

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBudgetExhausted marks a report rejected because drawing it would push
// the user's epsilon spend over their sliding-window cap. It is a
// rate-class condition (the budget regenerates as the window slides), so
// the serving layer answers 429 Too Many Requests, not 4xx-invalid.
var ErrBudgetExhausted = errors.New("budget: per-user epsilon budget exhausted")

// ExhaustedError is the concrete rejection Charge returns: it matches
// ErrBudgetExhausted under errors.Is, and carries the accounting facts so
// serving layers can answer with the user's live headroom (the stream
// transport's 429-class ERROR frame includes eps_remaining) instead of
// re-querying the accountant.
type ExhaustedError struct {
	UID int64
	// Spent is the user's live window total at rejection time; Limit the
	// per-window cap and Window the sliding horizon. Remaining is the
	// headroom left (positive when the cap has room, just not enough for
	// the rejected request's full cost).
	Spent, Limit, Remaining float64
	Window                  time.Duration
}

// Error formats the rejection with the user's spend, cap, and window.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("%v: user %d spent %.4g of %.4g eps in the last %v",
		ErrBudgetExhausted, e.UID, e.Spent, e.Limit, e.Window)
}

// Unwrap makes errors.Is(err, ErrBudgetExhausted) match.
func (e *ExhaustedError) Unwrap() error { return ErrBudgetExhausted }

// DefaultWindow is the sliding accounting window when Config.Window is not
// positive.
const DefaultWindow = time.Hour

// DefaultMaxUsers bounds the tracked-user LRU when Config.MaxUsers is not
// positive. An untracked user re-enters with an empty window, so the bound
// trades memory against remembering rare users' spend.
const DefaultMaxUsers = 1 << 16

// Config tunes an Accountant.
type Config struct {
	// LimitEps is the per-user epsilon cap per window. It must be positive;
	// an Accountant is only constructed when accounting is enabled.
	LimitEps float64
	// Window is the sliding accounting horizon (DefaultWindow if <= 0).
	Window time.Duration
	// MaxUsers bounds the tracked-user LRU (DefaultMaxUsers if <= 0).
	MaxUsers int
	// Resolution buckets spend events: all charges inside one
	// Resolution-sized interval merge into one event stamped at the
	// interval's *end*, bounding per-user memory to Window/Resolution
	// events (default 1s). Bucketed spend expires at most Resolution later
	// than its exact time — never earlier (no under-count), and never
	// later than that bound (sustained sub-Resolution traffic cannot stop
	// the window from sliding).
	Resolution time.Duration
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.MaxUsers <= 0 {
		c.MaxUsers = DefaultMaxUsers
	}
	if c.Resolution <= 0 {
		c.Resolution = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a point-in-time snapshot of an accountant's counters.
type Stats struct {
	// Users is the number of users currently tracked; Cap the LRU bound.
	Users int `json:"users"`
	Cap   int `json:"cap"`
	// LimitEps and WindowS echo the configuration so dashboards can read
	// rejection counts against the policy that produced them.
	LimitEps float64 `json:"limit_eps"`
	WindowS  float64 `json:"window_s"`
	// Charges counts granted spend events; Rejections counts draws refused
	// with ErrBudgetExhausted; EpsGranted totals the epsilon handed out.
	Charges    uint64  `json:"charges"`
	Rejections uint64  `json:"rejections"`
	EpsGranted float64 `json:"eps_granted"`
	// EvictedUsers counts users dropped by the LRU bound (their remaining
	// window spend is forgotten).
	EvictedUsers uint64 `json:"evicted_users"`
	// Cluster handoff counters (see handoff.go): exports move local spend
	// to a forwarded report, imports merge a peer's spend in, rollbacks
	// restore failed exports, and dupes are redeliveries the (source, seq)
	// watermark rejected. EpsExported/EpsImported total the epsilon moved.
	HandoffsExported   uint64  `json:"handoffs_exported,omitempty"`
	HandoffsImported   uint64  `json:"handoffs_imported,omitempty"`
	HandoffsRolledBack uint64  `json:"handoffs_rolled_back,omitempty"`
	HandoffDupes       uint64  `json:"handoff_dupes,omitempty"`
	EpsExported        float64 `json:"eps_exported,omitempty"`
	EpsImported        float64 `json:"eps_imported,omitempty"`
}

// Merge accumulates o into s for fleet-wide aggregation. Configuration
// echoes (LimitEps, WindowS) keep the maximum, which is only meaningful
// when shards share a config — the common case.
func (s *Stats) Merge(o Stats) {
	s.Users += o.Users
	s.Cap += o.Cap
	if o.LimitEps > s.LimitEps {
		s.LimitEps = o.LimitEps
	}
	if o.WindowS > s.WindowS {
		s.WindowS = o.WindowS
	}
	s.Charges += o.Charges
	s.Rejections += o.Rejections
	s.EpsGranted += o.EpsGranted
	s.EvictedUsers += o.EvictedUsers
	s.HandoffsExported += o.HandoffsExported
	s.HandoffsImported += o.HandoffsImported
	s.HandoffsRolledBack += o.HandoffsRolledBack
	s.HandoffDupes += o.HandoffDupes
	s.EpsExported += o.EpsExported
	s.EpsImported += o.EpsImported
}

// spend is one (coalesced) epsilon expenditure.
type spend struct {
	at  time.Time
	eps float64
}

// userWindow is one user's live spend events, oldest first. The three
// cluster fields carry the handoff protocol's state (see handoff.go):
// exportSeq numbers this node's exports for the user, pending holds
// exported-but-unacknowledged events so a failed forward can roll back,
// and applied is the per-source import watermark that deduplicates
// redelivered handoffs.
type userWindow struct {
	uid    int64
	events []spend
	total  float64

	exportSeq uint64
	pending   map[uint64][]spend
	applied   map[string]uint64
}

// expire drops events that left the window as of now and returns the live
// total.
func (u *userWindow) expire(now time.Time, window time.Duration) float64 {
	cut := now.Add(-window)
	i := 0
	for i < len(u.events) && !u.events[i].at.After(cut) {
		u.total -= u.events[i].eps
		i++
	}
	if i > 0 {
		u.events = append(u.events[:0], u.events[i:]...)
		if len(u.events) == 0 {
			u.total = 0 // clear numerical dust so idle users fully reset
		}
	}
	return u.total
}

// Accountant tracks per-user epsilon spend under linear composition over a
// sliding window. It is safe for concurrent use.
type Accountant struct {
	cfg Config

	mu    sync.Mutex
	ll    *list.List // front = most recently charged user
	users map[int64]*list.Element

	charges    uint64
	rejections uint64
	granted    float64
	evicted    uint64

	handoffsExported   uint64
	handoffsImported   uint64
	handoffsRolledBack uint64
	handoffDupes       uint64
	epsExported        float64
	epsImported        float64
}

// NewAccountant builds a sliding-window accountant. LimitEps must be
// positive — a non-positive cap would reject every report, which callers
// should express by not constructing an accountant at all.
func NewAccountant(cfg Config) (*Accountant, error) {
	if cfg.LimitEps <= 0 {
		return nil, fmt.Errorf("budget: LimitEps must be positive, got %v", cfg.LimitEps)
	}
	cfg = cfg.withDefaults()
	return &Accountant{
		cfg:   cfg,
		ll:    list.New(),
		users: map[int64]*list.Element{},
	}, nil
}

// Window returns the configured sliding horizon.
func (a *Accountant) Window() time.Duration { return a.cfg.Window }

// LimitEps returns the per-user cap.
func (a *Accountant) LimitEps() float64 { return a.cfg.LimitEps }

// Charge records eps of spend for uid if the user's live window total plus
// eps stays within the cap, returning the window headroom left after the
// charge; it returns ErrBudgetExhausted (charging nothing) otherwise. The
// boundary is inclusive: a charge landing exactly on the cap is granted,
// the first one beyond it is not — so with limit = n*eps, exactly n draws
// fit per window. eps must be positive. Returning the remaining headroom
// from the same critical section keeps the hot path at one lock
// acquisition per report.
func (a *Accountant) Charge(uid int64, eps float64) (remaining float64, err error) {
	if eps <= 0 {
		return 0, fmt.Errorf("budget: charge must be positive, got %v", eps)
	}
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	u := a.touchLocked(uid)
	live := u.expire(now, a.cfg.Window)
	// The epsilon-scale comparison tolerates the float dust a long run of
	// equal charges accumulates, without admitting a meaningful overdraw.
	if live+eps > a.cfg.LimitEps*(1+1e-9) {
		a.rejections++
		rem := a.cfg.LimitEps - live
		if rem < 0 {
			rem = 0
		}
		return 0, &ExhaustedError{
			UID: uid, Spent: live, Limit: a.cfg.LimitEps, Remaining: rem,
			Window: a.cfg.Window,
		}
	}
	// Bucket the charge: everything inside one Resolution interval merges
	// into one event stamped at the interval's end. The fixed stamp is
	// what keeps the window sliding — rewriting the stamp on each merge
	// would let a sustained sub-Resolution stream postpone its own expiry
	// forever, turning the sliding window into a full-window lockout.
	bucketEnd := now.Truncate(a.cfg.Resolution).Add(a.cfg.Resolution)
	if n := len(u.events); n > 0 && u.events[n-1].at.Equal(bucketEnd) {
		u.events[n-1].eps += eps
	} else {
		u.events = append(u.events, spend{at: bucketEnd, eps: eps})
	}
	u.total += eps
	a.charges++
	a.granted += eps
	remaining = a.cfg.LimitEps - u.total
	if remaining < 0 {
		remaining = 0
	}
	return remaining, nil
}

// Spent returns uid's live window total (0 for untracked users) without
// refreshing the user's LRU recency.
func (a *Accountant) Spent(uid int64) float64 {
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	el, ok := a.users[uid]
	if !ok {
		return 0
	}
	return el.Value.(*userWindow).expire(now, a.cfg.Window)
}

// Remaining returns how much of uid's cap is left in the current window.
func (a *Accountant) Remaining(uid int64) float64 {
	rem := a.cfg.LimitEps - a.Spent(uid)
	if rem < 0 {
		return 0
	}
	return rem
}

// touchLocked returns uid's window, admitting (and LRU-evicting) as needed.
// Caller holds a.mu.
func (a *Accountant) touchLocked(uid int64) *userWindow {
	if el, ok := a.users[uid]; ok {
		a.ll.MoveToFront(el)
		return el.Value.(*userWindow)
	}
	u := &userWindow{uid: uid}
	el := a.ll.PushFront(u)
	a.users[uid] = el
	for a.ll.Len() > a.cfg.MaxUsers {
		back := a.ll.Back()
		old := back.Value.(*userWindow)
		a.ll.Remove(back)
		delete(a.users, old.uid)
		a.evicted++
	}
	return u
}

// Stats snapshots the accountant's counters.
func (a *Accountant) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Users:        a.ll.Len(),
		Cap:          a.cfg.MaxUsers,
		LimitEps:     a.cfg.LimitEps,
		WindowS:      a.cfg.Window.Seconds(),
		Charges:      a.charges,
		Rejections:   a.rejections,
		EpsGranted:   a.granted,
		EvictedUsers: a.evicted,

		HandoffsExported:   a.handoffsExported,
		HandoffsImported:   a.handoffsImported,
		HandoffsRolledBack: a.handoffsRolledBack,
		HandoffDupes:       a.handoffDupes,
		EpsExported:        a.epsExported,
		EpsImported:        a.epsImported,
	}
}
