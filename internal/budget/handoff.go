package budget

// This file is the cluster arm of the accountant: the windowed delta-sync
// protocol that keeps a user's sliding-window epsilon spend coherent when
// ownership of the user moves between nodes (rebalance, failover, or a
// client dialing the wrong node). Linear composition (Sec. 4.4 / the
// sequential-composition channel) is a per-user global property — the cap
// must hold over ALL of a user's reports, not per node — so when node A
// forwards a user's first report to the new owner B, A exports its live
// spend events for the user and piggybacks them on the request. B merges
// them into its own window before charging, so the user cannot mint a
// fresh budget by moving.
//
// The protocol is exactly-once in the direction that matters for privacy:
//
//   - Export MOVES the events out of the local window (the forwarder will
//     no longer double-report them) into a pending set keyed by a
//     per-user sequence number.
//   - A successful forward commits the export (pending entry dropped); a
//     transport failure rolls it back (events re-merged locally), so
//     spend is never lost to a failed forward.
//   - The importer deduplicates by (source, seq): a retried or duplicated
//     handoff applies once. The ambiguous case — the owner applied the
//     handoff but the ack was lost, and the forwarder rolled back — double
//     counts the spend, which over-restricts the user. Over-counting is
//     the privacy-conservative direction; under-counting (over-spend) is
//     impossible by construction because no path discards an uncommitted
//     export.
//
// Handoffs carry event timestamps, not totals, so the receiver's window
// keeps sliding correctly: imported spend expires exactly when it would
// have expired on the exporting node.

import (
	"sort"
	"time"
)

// HandoffEvent is one spend event in transit: when it was charged (the
// bucketed stamp, see Config.Resolution) and how much epsilon.
type HandoffEvent struct {
	AtUnixNano int64   `json:"at"`
	Eps        float64 `json:"eps"`
}

// Handoff is one user's exported window spend, sent by the node that held
// it to the user's (new) owner. Source names the exporting node and Seq is
// the exporter's per-user export sequence; together they deduplicate
// retries on the importing side.
type Handoff struct {
	Source string         `json:"source"`
	Seq    uint64         `json:"seq"`
	Events []HandoffEvent `json:"events"`
}

// Eps totals the handoff's event spend.
func (h *Handoff) Eps() float64 {
	var sum float64
	for _, e := range h.Events {
		sum += e.Eps
	}
	return sum
}

// ExportHandoff moves uid's live window spend out of this accountant into
// a Handoff addressed from source. It returns nil when the user has no
// live spend (nothing to hand off). The events leave the local window
// immediately — the exporter must call CommitHandoff after the handoff is
// acknowledged, or RollbackHandoff after a failed forward, to resolve the
// pending export. Crash-between-export-and-resolve loses at most one
// window of one user's local spend (the forward it was attached to also
// died, so the report it paid for was never served).
func (a *Accountant) ExportHandoff(uid int64, source string) *Handoff {
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	el, ok := a.users[uid]
	if !ok {
		return nil
	}
	u := el.Value.(*userWindow)
	if u.expire(now, a.cfg.Window) <= 0 || len(u.events) == 0 {
		return nil
	}
	u.exportSeq++
	h := &Handoff{Source: source, Seq: u.exportSeq, Events: make([]HandoffEvent, len(u.events))}
	for i, e := range u.events {
		h.Events[i] = HandoffEvent{AtUnixNano: e.at.UnixNano(), Eps: e.eps}
	}
	if u.pending == nil {
		u.pending = make(map[uint64][]spend, 1)
	}
	u.pending[u.exportSeq] = append([]spend(nil), u.events...)
	u.events = u.events[:0]
	u.total = 0
	a.handoffsExported++
	a.epsExported += h.Eps()
	return h
}

// CommitHandoff resolves a pending export after the forward carrying it
// was acknowledged: the receiver owns the spend now, so the local copy is
// dropped for good.
func (a *Accountant) CommitHandoff(uid int64, seq uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if el, ok := a.users[uid]; ok {
		delete(el.Value.(*userWindow).pending, seq)
	}
}

// RollbackHandoff restores a pending export after a failed forward: the
// receiver never saw the spend, so it must count locally again or the
// user could over-spend by retrying against a partitioned owner.
func (a *Accountant) RollbackHandoff(uid int64, seq uint64) {
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	el, ok := a.users[uid]
	if !ok {
		return
	}
	u := el.Value.(*userWindow)
	events, ok := u.pending[seq]
	if !ok {
		return
	}
	delete(u.pending, seq)
	u.merge(events, now, a.cfg.Window)
	a.handoffsRolledBack++
}

// ImportHandoff merges a forwarded handoff into uid's window, returning
// the epsilon applied. Duplicate deliveries — same (source, seq) or an
// older seq than one already applied — are ignored, which is what makes
// retrying a forward safe. Call before Charge for the same request so the
// handed-off spend is counted against the cap the charge checks.
func (a *Accountant) ImportHandoff(uid int64, h *Handoff) (applied float64, ok bool) {
	if h == nil || h.Source == "" || len(h.Events) == 0 {
		return 0, false
	}
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	u := a.touchLocked(uid)
	if u.applied == nil {
		u.applied = make(map[string]uint64, 1)
	}
	if u.applied[h.Source] >= h.Seq {
		a.handoffDupes++
		return 0, false
	}
	u.applied[h.Source] = h.Seq
	events := make([]spend, len(h.Events))
	for i, e := range h.Events {
		events[i] = spend{at: time.Unix(0, e.AtUnixNano), eps: e.Eps}
	}
	before := u.expire(now, a.cfg.Window)
	u.merge(events, now, a.cfg.Window)
	a.handoffsImported++
	applied = u.total - before
	a.epsImported += applied
	return applied, true
}

// HandoffsApplied returns uid's applied import watermark for a source
// (0 when none) — test and debugging visibility into the dedup state.
func (a *Accountant) HandoffsApplied(uid int64, source string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	el, ok := a.users[uid]
	if !ok {
		return 0
	}
	return el.Value.(*userWindow).applied[source]
}

// merge folds events into the window, keeping the slice sorted by stamp
// (expire depends on oldest-first order) and dropping already-expired
// spend. Caller holds a.mu.
func (u *userWindow) merge(events []spend, now time.Time, window time.Duration) {
	cut := now.Add(-window)
	for _, e := range events {
		if !e.at.After(cut) {
			continue
		}
		u.events = append(u.events, e)
		u.total += e.eps
	}
	sort.Slice(u.events, func(i, j int) bool { return u.events[i].at.Before(u.events[j].at) })
}
