// Package budget computes the reserved privacy budget of Sec. 4.4: the
// extra epsilon each pair of locations must set aside so that pruning up to
// delta locations (matrix pruning, Sec. 4.3) cannot break epsilon-Geo-Ind
// (Definition 4.2, "delta-prunable").
//
// Exact implements Definition 4.3 / Equ. (12) by exhaustive subset
// enumeration (exponential in delta; test- and ablation-only). Approx
// implements the O(K log K) approximation of Equ. (14). The paper prints
// Equ. (14) with row j inside the max, while the derivation in Proposition
// 4.5 bounds via row i; both variants are provided (VariantProof is the
// default used by the solver, VariantPrinted feeds the ext-rpbvariant
// ablation).
package budget

import (
	"fmt"
	"math"
	"sort"
)

// Variant selects which row's top-delta mass enters Equ. (14).
type Variant int

// Variants of the approximate reserved budget.
const (
	// VariantProof uses row i (the form derived in Proposition 4.5).
	VariantProof Variant = iota
	// VariantPrinted uses row j (the form printed as Equ. (14)).
	VariantPrinted
)

// TopDeltaSum returns max_{|S| <= delta} sum_{l in S} row[l]: the sum of
// the delta largest entries (negative entries are never chosen). It runs in
// O(K log K).
func TopDeltaSum(row []float64, delta int) float64 {
	if delta <= 0 || len(row) == 0 {
		return 0
	}
	if delta >= len(row) {
		sum := 0.0
		for _, v := range row {
			if v > 0 {
				sum += v
			}
		}
		return sum
	}
	tmp := append([]float64(nil), row...)
	sort.Float64s(tmp)
	sum := 0.0
	for k := 0; k < delta; k++ {
		v := tmp[len(tmp)-1-k]
		if v <= 0 {
			break
		}
		sum += v
	}
	return sum
}

// clampMass keeps 1-T strictly positive for the logarithm.
func clampMass(t float64) float64 {
	const maxMass = 1 - 1e-12
	if t > maxMass {
		return maxMass
	}
	if t < 0 {
		return 0
	}
	return t
}

// Approx computes the approximate reserved budget eps'_{i,j} of Equ. (14):
//
//	eps' = (1/d) * ln( (1 - T/exp(eps*d)) / (1 - T) )
//
// where T is the top-delta mass of row i (VariantProof) or row j
// (VariantPrinted). d must be positive. The result is always >= 0.
func Approx(zi, zj []float64, d, eps float64, delta int, v Variant) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("budget: distance must be positive, got %v", d)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("budget: epsilon must be positive, got %v", eps)
	}
	if delta < 0 {
		return 0, fmt.Errorf("budget: delta must be >= 0, got %d", delta)
	}
	row := zi
	if v == VariantPrinted {
		row = zj
	}
	t := clampMass(TopDeltaSum(row, delta))
	if t == 0 {
		return 0, nil
	}
	num := 1 - t/math.Exp(eps*d)
	den := 1 - t
	ep := math.Log(num/den) / d
	if ep < 0 {
		ep = 0 // numerical dust; the true value is >= 0
	}
	return ep, nil
}

// Exact computes the exact reserved budget eps_{i,j} of Equ. (12):
//
//	eps = (1/d) * ln( max_{|S| <= delta} (1 - sum_S z_j) / (1 - sum_S z_i) )
//
// by exhaustive enumeration of subsets (choose(K, delta) work — keep delta
// small). The empty set is always a candidate, so the result is >= 0.
func Exact(zi, zj []float64, d float64, delta int) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("budget: distance must be positive, got %v", d)
	}
	if len(zi) != len(zj) {
		return 0, fmt.Errorf("budget: row lengths differ: %d vs %d", len(zi), len(zj))
	}
	if delta < 0 {
		return 0, fmt.Errorf("budget: delta must be >= 0, got %d", delta)
	}
	best := 1.0 // S = empty set
	var rec func(start int, size int, sumI, sumJ float64)
	rec = func(start, size int, sumI, sumJ float64) {
		den := clampOne(1 - sumI)
		ratio := (1 - sumJ) / den
		if ratio > best {
			best = ratio
		}
		if size == delta {
			return
		}
		for l := start; l < len(zi); l++ {
			rec(l+1, size+1, sumI+zi[l], sumJ+zj[l])
		}
	}
	rec(0, 0, 0, 0)
	if best < 1 {
		best = 1
	}
	return math.Log(best) / d, nil
}

func clampOne(v float64) float64 {
	const floor = 1e-12
	if v < floor {
		return floor
	}
	return v
}

// TightenedMultiplier returns exp((eps - epsReserved) * d): the Geo-Ind
// multiplier for the robust constraint of Equ. (13)/(15). It may be < 1
// when the reserved budget exceeds eps, which simply makes the constraint
// tighter than the vanilla one.
func TightenedMultiplier(eps, epsReserved, d float64) float64 {
	return math.Exp((eps - epsReserved) * d)
}

// ApproxPair computes the approximate reserved budget for the constraint
// pair (i, j), maximizing over prune sets S that keep the pair alive, i.e.
// i, j not in S. The paper's Equ. (12)/(14) write the max over all
// S ⊆ V_{i,0}, but Definition 4.2 only requires the pruned matrix to stay
// Geo-Ind for the *surviving* pairs: pruning i or j deletes the (i, j)
// constraint together with its row and column (Sec. 4.3). Because a row's
// dominant entry is typically its own diagonal z[i][i], including it in the
// top-delta mass wildly over-reserves — enough to make Equ. (16) infeasible
// in strong-budget regimes — so the solver uses this corrected form (the
// literal form remains available as Approx for the ablation).
func ApproxPair(zi, zj []float64, i, j int, d, eps float64, delta int, v Variant) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("budget: distance must be positive, got %v", d)
	}
	if eps <= 0 {
		return 0, fmt.Errorf("budget: epsilon must be positive, got %v", eps)
	}
	if delta < 0 {
		return 0, fmt.Errorf("budget: delta must be >= 0, got %d", delta)
	}
	row := zi
	if v == VariantPrinted {
		row = zj
	}
	t := clampMass(topDeltaSumExcluding(row, delta, i, j))
	if t == 0 {
		return 0, nil
	}
	num := 1 - t/math.Exp(eps*d)
	den := 1 - t
	ep := math.Log(num/den) / d
	if ep < 0 {
		ep = 0
	}
	return ep, nil
}

// topDeltaSumExcluding is TopDeltaSum over the row with indices i and j
// masked out.
func topDeltaSumExcluding(row []float64, delta, i, j int) float64 {
	if delta <= 0 || len(row) == 0 {
		return 0
	}
	tmp := make([]float64, 0, len(row))
	for k, v := range row {
		if k == i || k == j {
			continue
		}
		tmp = append(tmp, v)
	}
	return TopDeltaSum(tmp, delta)
}

// ExactPair is Exact restricted to prune sets avoiding i and j, matching
// ApproxPair's semantics.
func ExactPair(zi, zj []float64, i, j int, d float64, delta int) (float64, error) {
	if d <= 0 {
		return 0, fmt.Errorf("budget: distance must be positive, got %v", d)
	}
	if len(zi) != len(zj) {
		return 0, fmt.Errorf("budget: row lengths differ: %d vs %d", len(zi), len(zj))
	}
	if delta < 0 {
		return 0, fmt.Errorf("budget: delta must be >= 0, got %d", delta)
	}
	best := 1.0
	var rec func(start, size int, sumI, sumJ float64)
	rec = func(start, size int, sumI, sumJ float64) {
		den := clampOne(1 - sumI)
		if ratio := (1 - sumJ) / den; ratio > best {
			best = ratio
		}
		if size == delta {
			return
		}
		for l := start; l < len(zi); l++ {
			if l == i || l == j {
				continue
			}
			rec(l+1, size+1, sumI+zi[l], sumJ+zj[l])
		}
	}
	rec(0, 0, 0, 0)
	if best < 1 {
		best = 1
	}
	return math.Log(best) / d, nil
}
