package budget

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestAccountantRejectsNonPositiveLimit(t *testing.T) {
	for _, limit := range []float64{0, -1} {
		if _, err := NewAccountant(Config{LimitEps: limit}); err == nil {
			t.Fatalf("LimitEps=%v: want error", limit)
		}
	}
}

// TestChargeBoundary pins the acceptance-criteria semantics: with
// limit = n*eps, exactly n draws are granted per window; draw n+1 is
// rejected with ErrBudgetExhausted and charges nothing.
func TestChargeBoundary(t *testing.T) {
	clk := newFakeClock()
	const eps = 15.0
	a, err := NewAccountant(Config{LimitEps: 3 * eps, Window: time.Hour, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Charge(7, eps); err != nil {
			t.Fatalf("charge %d: %v", i+1, err)
		}
		clk.Advance(time.Minute)
	}
	if _, err := a.Charge(7, eps); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("4th charge: want ErrBudgetExhausted, got %v", err)
	}
	if got := a.Spent(7); got != 3*eps {
		t.Fatalf("rejected charge changed spend: got %v, want %v", got, 3*eps)
	}
	st := a.Stats()
	if st.Charges != 3 || st.Rejections != 1 {
		t.Fatalf("stats: charges=%d rejections=%d, want 3/1", st.Charges, st.Rejections)
	}
	if st.EpsGranted != 3*eps {
		t.Fatalf("eps granted %v, want %v", st.EpsGranted, 3*eps)
	}
}

// TestWindowSlideRegeneratesBudget verifies spend expires as the window
// slides: the same user is rejected while saturated and granted again the
// moment their oldest spend leaves the window.
func TestWindowSlideRegeneratesBudget(t *testing.T) {
	clk := newFakeClock()
	a, err := NewAccountant(Config{LimitEps: 2, Window: 10 * time.Minute, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(1, 1); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Minute)
	if _, err := a.Charge(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(1, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("saturated user: want ErrBudgetExhausted, got %v", err)
	}
	// 10m after the first charge it leaves the window; one unit regenerates.
	clk.Advance(5*time.Minute + time.Second)
	if _, err := a.Charge(1, 1); err != nil {
		t.Fatalf("after slide: %v", err)
	}
	if _, err := a.Charge(1, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("re-saturated user: want ErrBudgetExhausted, got %v", err)
	}
	// Once everything expires the user is back to a full budget.
	clk.Advance(11 * time.Minute)
	if got := a.Spent(1); got != 0 {
		t.Fatalf("spend after full expiry: %v, want 0", got)
	}
	if got := a.Remaining(1); got != 2 {
		t.Fatalf("remaining after full expiry: %v, want 2", got)
	}
}

// TestChargeExactCapInclusive verifies a charge landing exactly on the cap
// is granted (the boundary is inclusive).
func TestChargeExactCapInclusive(t *testing.T) {
	clk := newFakeClock()
	a, err := NewAccountant(Config{LimitEps: 5, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(1, 5); err != nil {
		t.Fatalf("exact-cap charge rejected: %v", err)
	}
	if _, err := a.Charge(1, 0.0001); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("beyond-cap charge: want ErrBudgetExhausted, got %v", err)
	}
}

// TestRepeatedEqualChargesNoDrift guards the float tolerance: many equal
// charges summing exactly to the cap must all be granted.
func TestRepeatedEqualChargesNoDrift(t *testing.T) {
	clk := newFakeClock()
	const eps = 0.1 // not exactly representable in binary
	a, err := NewAccountant(Config{LimitEps: 100 * eps, Window: time.Hour, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := a.Charge(1, eps); err != nil {
			t.Fatalf("charge %d: %v", i+1, err)
		}
		clk.Advance(time.Second)
	}
	if _, err := a.Charge(1, eps); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("101st charge: want ErrBudgetExhausted, got %v", err)
	}
}

func TestChargeRejectsNonPositiveEps(t *testing.T) {
	a, err := NewAccountant(Config{LimitEps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(1, 0); err == nil || errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("zero charge: want a plain error, got %v", err)
	}
}

// TestUsersIndependent checks one user's saturation never affects another.
func TestUsersIndependent(t *testing.T) {
	clk := newFakeClock()
	a, err := NewAccountant(Config{LimitEps: 1, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(1, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("user 1: want ErrBudgetExhausted, got %v", err)
	}
	if _, err := a.Charge(2, 1); err != nil {
		t.Fatalf("user 2 must be unaffected: %v", err)
	}
}

// TestCoalescingKeepsSpendLive verifies the resolution-bucketing path
// never expires merged spend before any of its charges would have expired
// exactly: a bucket is stamped at its interval's end, so expiry is at most
// Resolution late and never early.
func TestCoalescingKeepsSpendLive(t *testing.T) {
	clk := newFakeClock()
	a, err := NewAccountant(Config{
		LimitEps: 10, Window: 10 * time.Second, Resolution: 5 * time.Second, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(1, 1); err != nil { // t=0, bucket [0,5s) stamped 5s
		t.Fatal(err)
	}
	clk.Advance(4 * time.Second) // t=4s: same bucket, merges
	if _, err := a.Charge(1, 1); err != nil {
		t.Fatal(err)
	}
	// t=9s: 9s after the first charge, 5s after the second — both must be
	// live (the second charge's exact expiry is t=14s).
	clk.Advance(5 * time.Second)
	if got := a.Spent(1); got != 2 {
		t.Fatalf("bucketed spend expired early: live %v, want 2", got)
	}
	// The bucket stamp is t=5s, so the merged spend expires at t=15s —
	// within Resolution of the last charge's exact expiry, never before it.
	clk.Advance(5 * time.Second) // t=14s
	if got := a.Spent(1); got != 2 {
		t.Fatalf("bucketed spend expired before the last charge's exact expiry: live %v", got)
	}
	clk.Advance(time.Second + time.Millisecond) // t=15.001s
	if got := a.Spent(1); got != 0 {
		t.Fatalf("bucketed spend should be expired: live %v", got)
	}
}

// TestSustainedTrafficWindowSlides pins the fixed-stamp semantics: a
// steady sub-Resolution report stream must see old spend expire as the
// window slides. (A previous formulation rewrote the merged event's
// timestamp on every charge, so a sustained stream postponed its own
// expiry forever and hit a full-window lockout.)
func TestSustainedTrafficWindowSlides(t *testing.T) {
	clk := newFakeClock()
	// 2 eps/s of steady spend against a 10s window: the sliding total is
	// ~20-22 eps (window + one bucket of slack), well under the 25 cap —
	// so a true sliding window grants every charge indefinitely.
	a, err := NewAccountant(Config{
		LimitEps: 25, Window: 10 * time.Second, Resolution: time.Second, Now: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ { // 30s of charges every 500ms
		if _, err := a.Charge(1, 1); err != nil {
			t.Fatalf("charge %d (t=%.1fs) rejected — window not sliding: %v",
				i+1, float64(i)*0.5, err)
		}
		clk.Advance(500 * time.Millisecond)
	}
	// Live spend is bounded by rate x (window + resolution), not by the
	// 60-charge total.
	if got := a.Spent(1); got > 22 {
		t.Fatalf("live spend %v exceeds the sliding bound 22", got)
	}
}

// TestUserLRUBound verifies the tracked-user LRU evicts the least recently
// charged user, whose budget then resets.
func TestUserLRUBound(t *testing.T) {
	clk := newFakeClock()
	a, err := NewAccountant(Config{LimitEps: 1, MaxUsers: 2, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Charge(3, 1); err != nil { // evicts user 1
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Users != 2 || st.EvictedUsers != 1 {
		t.Fatalf("users=%d evicted=%d, want 2/1", st.Users, st.EvictedUsers)
	}
	// User 1 was forgotten: a full budget again (the documented trade-off).
	if _, err := a.Charge(1, 1); err != nil {
		t.Fatalf("evicted user should reset: %v", err)
	}
	// User 3 is still tracked and saturated.
	if _, err := a.Charge(3, 1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("tracked user 3: want ErrBudgetExhausted, got %v", err)
	}
}

// TestAccountantConcurrentCharges hammers one accountant from many
// goroutines; under -race this is the data-race stress, and the granted
// total must exactly match the cap accounting.
func TestAccountantConcurrentCharges(t *testing.T) {
	a, err := NewAccountant(Config{LimitEps: 50, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				uid := int64(i % 4)
				_, err := a.Charge(uid, 1)
				if err != nil && !errors.Is(err, ErrBudgetExhausted) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := a.Stats()
	if st.Charges+st.Rejections != workers*perWorker {
		t.Fatalf("charges+rejections = %d, want %d", st.Charges+st.Rejections, workers*perWorker)
	}
	// 4 users, cap 50 each, 200 attempts per user inside one window:
	// exactly 50 grants per user.
	if st.Charges != 4*50 {
		t.Fatalf("granted %d charges, want %d", st.Charges, 4*50)
	}
	for uid := int64(0); uid < 4; uid++ {
		if got := a.Remaining(uid); got != 0 {
			t.Fatalf("user %d remaining %v, want 0", uid, got)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	s := Stats{Users: 1, Cap: 10, LimitEps: 5, WindowS: 60, Charges: 2, Rejections: 1, EpsGranted: 10}
	s.Merge(Stats{Users: 2, Cap: 10, LimitEps: 5, WindowS: 60, Charges: 3, Rejections: 4, EpsGranted: 15, EvictedUsers: 2})
	want := Stats{Users: 3, Cap: 20, LimitEps: 5, WindowS: 60, Charges: 5, Rejections: 5, EpsGranted: 25, EvictedUsers: 2}
	if s != want {
		t.Fatalf("merge: got %+v, want %+v", s, want)
	}
}

// BenchmarkAccountantCharge measures the per-report accounting overhead on
// the serving hot path: one warm user charging within budget.
func BenchmarkAccountantCharge(b *testing.B) {
	a, err := NewAccountant(Config{LimitEps: float64(b.N) + 1e9, Window: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Charge(42, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccountantChargeManyUsers spreads charges over a large user
// pool, exercising the LRU admission path.
func BenchmarkAccountantChargeManyUsers(b *testing.B) {
	a, err := NewAccountant(Config{LimitEps: 1e12, Window: time.Hour, MaxUsers: 4096})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Charge(int64(i%8192), 1); err != nil {
			b.Fatal(err)
		}
	}
}
