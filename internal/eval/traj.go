package eval

import (
	"context"
	"fmt"
	"math"
	"sort"

	"corgi/internal/budget"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/obf"
	"corgi/internal/policy"
	"corgi/internal/registry"
	"corgi/internal/session"
)

// TrajPoint is one (mechanism, epsilon) cell of the frontier under the
// trajectory-correlation adversary: Gowalla mobility sessions replayed
// through the real serving stack, attacked by a forward-filtering HMM
// that knows the mechanism, the leaf priors, and a mobility model — the
// correlation the single-report remap metric cannot exploit.
type TrajPoint struct {
	Mechanism string  `json:"mechanism"`
	Epsilon   float64 `json:"epsilon"`
	Users     int     `json:"users"`
	Steps     int     `json:"steps"`
	// Reanchors counts subtree crossings served mid-stream — the mobility
	// path (session.Rebind) exercised under attack, not just in tests.
	Reanchors int `json:"reanchors"`
	// TrajErrorKm is the HMM adversary's mean distance error per step;
	// IndepErrorKm is the same adversary forced to treat each report
	// independently (posterior from one observation, no mobility carry).
	TrajErrorKm  float64 `json:"traj_error_km"`
	IndepErrorKm float64 `json:"indep_error_km"`
	// CorrelationGain = indep/traj: how much exploiting trajectory
	// correlation sharpens the attack (>= 1 means correlation helps).
	CorrelationGain float64 `json:"correlation_gain"`
	// LinearEpsBudget is the mean per-user epsilon the serving stack
	// charged (internal/budget's linear composition: draws x epsilon).
	LinearEpsBudget float64 `json:"linear_eps_budget"`
	// CompositionRatio is the realized observation log-likelihood ratio
	// between same-subtree location hypotheses, relative to the linear
	// Geo-Ind composition bound eps * t * d(i,j) — the worst pair over
	// the replay. <= 1 means the bound the accountant charges by held
	// against this correlating adversary.
	CompositionRatio float64 `json:"composition_ratio"`
	CompositionHolds bool    `json:"composition_holds"`
}

// reporter abstracts "the serving stack draws one report": the forest
// path goes through a live registry (sessions, re-anchors, budget,
// entry cache), the planar path through session.Session over static
// planar-Laplace sources with its own accountant.
type reporter interface {
	// draw returns the reported leaf node for one true leaf, plus whether
	// this draw re-anchored the user's session.
	draw(uid int64, leaf loctree.NodeID) (loctree.NodeID, bool, error)
	// rows returns, for one privacy-subtree root, the row-stochastic
	// matrix and its leaf index — the adversary's (public) knowledge of
	// the mechanism.
	rows(root loctree.NodeID) (*obf.Matrix, []loctree.NodeID, error)
	// chargedEps returns the total epsilon the budget layer charged uid.
	chargedEps(uid int64) float64
}

const trajPrivacyLevel = 1

// forestReporter serves draws through a real registry shard: resident
// sessions, Rebind on subtree crossings, per-user epsilon accounting —
// the exact /v1/report pipeline minus the HTTP framing.
type forestReporter struct {
	ctx     context.Context
	reg     *registry.Registry
	region  string
	seed    int64
	charged map[int64]float64
}

func newForestReporter(ctx context.Context, eps float64, seed int64) (*forestReporter, *loctree.Tree, error) {
	region := fmt.Sprintf("eval-traj-e%g", eps)
	reg, err := registry.New([]registry.Spec{{
		Name:      region,
		CenterLat: geo.SanFrancisco.Center().Lat,
		CenterLng: geo.SanFrancisco.Center().Lng,
		Height:    2,
		Epsilon:   eps,
		// Two robustness rounds keep the per-subtree LP solves cheap; the
		// replay prunes nothing, so delta stays 0 anyway.
		Iterations:    2,
		Targets:       3,
		Seed:          seed,
		UniformPriors: true,
	}}, registry.Options{
		// A cap far above any replay's spend: the accountant runs (so the
		// linear-composition charge is the real code path) without ever
		// rejecting a draw.
		Budget: budget.Config{LimitEps: 1e9},
	})
	if err != nil {
		return nil, nil, err
	}
	if err := reg.BootstrapAll(ctx); err != nil {
		return nil, nil, err
	}
	sh, err := reg.Shard(ctx, region)
	if err != nil {
		return nil, nil, err
	}
	return &forestReporter{ctx: ctx, reg: reg, region: region, seed: seed,
		charged: map[int64]float64{}}, sh.Server.Tree(), nil
}

func (f *forestReporter) draw(uid int64, leaf loctree.NodeID) (loctree.NodeID, bool, error) {
	res, err := f.reg.Report(f.ctx, registry.ReportRequest{
		Region: f.region,
		Cell:   leaf.Coord,
		UID:    uid,
		Policy: policy.Policy{PrivacyLevel: trajPrivacyLevel},
		Seed:   f.seed + uid,
		Count:  1,
	})
	if err != nil {
		return loctree.NodeID{}, false, err
	}
	f.charged[uid] += res.EpsSpent
	return res.Reports[0], res.Reanchored, nil
}

func (f *forestReporter) rows(root loctree.NodeID) (*obf.Matrix, []loctree.NodeID, error) {
	sh, err := f.reg.Shard(f.ctx, f.region)
	if err != nil {
		return nil, nil, err
	}
	entry, err := sh.Server.ServeEntryCtx(f.ctx, root, 0)
	if err != nil {
		return nil, nil, err
	}
	return entry.Matrix, entry.Leaves, nil
}

func (f *forestReporter) chargedEps(uid int64) float64 { return f.charged[uid] }

// planarReporter serves draws through session.Session over per-subtree
// planar-Laplace StaticSources — the degraded-serving mechanism replayed
// as a first-class citizen, with its own linear-composition accountant.
type planarReporter struct {
	tree    *loctree.Tree
	eps     float64
	seed    int64
	sources map[loctree.NodeID]*mechanism.StaticSource
	matrix  map[loctree.NodeID]*obf.Matrix
	priors  *loctree.Priors
	acct    *budget.Accountant
	sess    map[int64]*session.Session
	charged map[int64]float64
}

func newPlanarReporter(tree *loctree.Tree, eps float64, seed int64) (*planarReporter, error) {
	acct, err := budget.NewAccountant(budget.Config{LimitEps: 1e9})
	if err != nil {
		return nil, err
	}
	p := &planarReporter{
		tree:    tree,
		eps:     eps,
		seed:    seed,
		sources: map[loctree.NodeID]*mechanism.StaticSource{},
		matrix:  map[loctree.NodeID]*obf.Matrix{},
		priors:  loctree.UniformPriors(tree),
		acct:    acct,
		sess:    map[int64]*session.Session{},
		charged: map[int64]float64{},
	}
	for _, root := range tree.LevelNodes(trajPrivacyLevel) {
		leaves := tree.LeavesUnder(root)
		cells := make([]hexgrid.Coord, len(leaves))
		for i, l := range leaves {
			cells[i] = l.Coord
		}
		m, err := mechanism.Build(mechanism.PlanarLaplaceName, mechanism.BuildConfig{
			Sys: tree.System(), Cells: cells, Epsilon: eps,
		})
		if err != nil {
			return nil, err
		}
		src, err := mechanism.NewStaticSource(root, leaves, m, true)
		if err != nil {
			return nil, err
		}
		p.sources[root] = src
		p.matrix[root] = m
	}
	return p, nil
}

func (p *planarReporter) draw(uid int64, leaf loctree.NodeID) (loctree.NodeID, bool, error) {
	root, ok := p.tree.AncestorAt(leaf, trajPrivacyLevel)
	if !ok {
		return loctree.NodeID{}, false, fmt.Errorf("eval: no subtree over %v", leaf)
	}
	src := p.sources[root]
	sess, ok := p.sess[uid]
	if !ok {
		var err error
		sess, err = session.New(session.Config{
			Tree:    p.tree,
			Entry:   src,
			Policy:  policy.Policy{PrivacyLevel: trajPrivacyLevel},
			Priors:  p.priors,
			Seed:    p.seed + uid,
			Epsilon: p.eps,
		})
		if err != nil {
			return loctree.NodeID{}, false, err
		}
		p.sess[uid] = sess
	}
	reanchored := false
	if sess.Root() != root {
		if err := sess.Rebind(session.Rebind{Entry: src}); err != nil {
			return loctree.NodeID{}, false, err
		}
		reanchored = true
	}
	if _, err := p.acct.Charge(uid, p.eps); err != nil {
		return loctree.NodeID{}, false, err
	}
	p.charged[uid] += p.eps
	out, err := sess.DrawCell(leaf)
	if err != nil {
		return loctree.NodeID{}, false, err
	}
	return out, reanchored, nil
}

func (p *planarReporter) rows(root loctree.NodeID) (*obf.Matrix, []loctree.NodeID, error) {
	m, ok := p.matrix[root]
	if !ok {
		return nil, nil, fmt.Errorf("eval: no planar matrix for subtree %v", root)
	}
	return m, p.tree.LeavesUnder(root), nil
}

func (p *planarReporter) chargedEps(uid int64) float64 { return p.charged[uid] }

// trajStep is one located replay step: the true leaf and the stack's
// reported node.
type trajStep struct {
	truth    loctree.NodeID
	observed loctree.NodeID
}

// mobilityCorpus locates Gowalla trajectories inside the region tree:
// check-ins are generated over the tree's own bounding box so sessions
// wander across privacy subtrees (re-anchors are part of the replay, not
// an edge case).
func mobilityCorpus(tree *loctree.Tree, seed int64, users, steps int) ([][]loctree.NodeID, float64, error) {
	leaves := tree.LevelNodes(0)
	box := geo.BoundingBox{MinLat: math.Inf(1), MinLng: math.Inf(1),
		MaxLat: math.Inf(-1), MaxLng: math.Inf(-1)}
	for _, l := range leaves {
		c := tree.Center(l)
		box.MinLat = math.Min(box.MinLat, c.Lat)
		box.MaxLat = math.Max(box.MaxLat, c.Lat)
		box.MinLng = math.Min(box.MinLng, c.Lng)
		box.MaxLng = math.Max(box.MaxLng, c.Lng)
	}
	ds, err := gowalla.Generate(gowalla.GenConfig{
		Seed:        seed + 3000,
		NumUsers:    users * 4, // headroom: some users won't locate enough steps
		NumCheckIns: users * steps * 8,
		BBox:        box,
	})
	if err != nil {
		return nil, 0, err
	}
	var out [][]loctree.NodeID
	var stepKm []float64
	for _, tr := range gowalla.Trajectories(ds.CheckIns) {
		var path []loctree.NodeID
		for _, c := range tr.Points {
			leaf, ok := tree.Locate(c.Loc, 0)
			if !ok {
				continue
			}
			path = append(path, leaf)
			if len(path) == steps {
				break
			}
		}
		if len(path) < 2 {
			continue
		}
		for i := 1; i < len(path); i++ {
			stepKm = append(stepKm, tree.Distance(path[i-1], path[i]))
		}
		out = append(out, path)
		if len(out) == users {
			break
		}
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("eval: no trajectory landed inside the region")
	}
	sort.Float64s(stepKm)
	lambda := stepKm[len(stepKm)/2]
	if lambda < 0.05 {
		lambda = 0.05 // floor: a degenerate corpus still gets a usable mobility scale
	}
	return out, lambda, nil
}

// hmm is the correlating adversary's model over the region's leaves:
// prior, mobility transition T(a,b) ~ exp(-d/lambda), and per-subtree
// emission rows taken from the served mechanism itself.
type hmm struct {
	tree     *loctree.Tree
	leaves   []loctree.NodeID
	idx      map[loctree.NodeID]int
	rootOf   []loctree.NodeID
	prior    []float64
	trans    [][]float64 // row-normalized
	dist     [][]float64
	emission map[loctree.NodeID]map[loctree.NodeID][]float64 // root -> observed -> per-leaf likelihood
}

func newHMM(tree *loctree.Tree, rep reporter, lambda float64) (*hmm, error) {
	leaves := tree.LevelNodes(0)
	n := len(leaves)
	h := &hmm{
		tree:     tree,
		leaves:   leaves,
		idx:      make(map[loctree.NodeID]int, n),
		rootOf:   make([]loctree.NodeID, n),
		prior:    make([]float64, n),
		trans:    make([][]float64, n),
		dist:     make([][]float64, n),
		emission: map[loctree.NodeID]map[loctree.NodeID][]float64{},
	}
	for i, l := range leaves {
		h.idx[l] = i
		root, ok := tree.AncestorAt(l, trajPrivacyLevel)
		if !ok {
			return nil, fmt.Errorf("eval: no privacy subtree over %v", l)
		}
		h.rootOf[i] = root
		h.prior[i] = 1 / float64(n)
	}
	for i := range leaves {
		h.dist[i] = make([]float64, n)
		h.trans[i] = make([]float64, n)
		sum := 0.0
		for j := range leaves {
			h.dist[i][j] = tree.Distance(leaves[i], leaves[j])
			h.trans[i][j] = math.Exp(-h.dist[i][j] / lambda)
			sum += h.trans[i][j]
		}
		for j := range leaves {
			h.trans[i][j] /= sum
		}
	}
	// Emission tables: for an observed report o (a leaf of subtree root),
	// the likelihood of true leaf l is Z_root[l][o] when l shares the
	// subtree (reports never leave their subtree) and 0 otherwise.
	for _, root := range tree.LevelNodes(trajPrivacyLevel) {
		m, mLeaves, err := rep.rows(root)
		if err != nil {
			return nil, err
		}
		col := make(map[loctree.NodeID]int, len(mLeaves))
		for i, l := range mLeaves {
			col[l] = i
		}
		byObs := map[loctree.NodeID][]float64{}
		for _, o := range mLeaves {
			lik := make([]float64, n)
			for li, leaf := range leaves {
				if h.rootOf[li] != root {
					continue
				}
				ri, ok := col[leaf]
				if !ok {
					return nil, fmt.Errorf("eval: leaf %v missing from subtree matrix %v", leaf, root)
				}
				lik[li] = m.At(ri, col[o])
			}
			byObs[o] = lik
		}
		h.emission[root] = byObs
	}
	return h, nil
}

// likelihood returns the per-leaf emission vector for one observed report.
func (h *hmm) likelihood(observed loctree.NodeID) ([]float64, error) {
	root, ok := h.tree.AncestorAt(observed, trajPrivacyLevel)
	if !ok {
		return nil, fmt.Errorf("eval: observed node %v outside the tree", observed)
	}
	lik, ok := h.emission[root][observed]
	if !ok {
		return nil, fmt.Errorf("eval: no emission row for observation %v", observed)
	}
	return lik, nil
}

// remapEstimate is the Bayes-optimal point estimate under a belief:
// argmin_x sum_l belief_l d(l, x).
func (h *hmm) remapEstimate(belief []float64) int {
	best, bestCost := 0, math.Inf(1)
	for x := range h.leaves {
		cost := 0.0
		for l, b := range belief {
			if b > 0 {
				cost += b * h.dist[l][x]
			}
		}
		if cost < bestCost {
			best, bestCost = x, cost
		}
	}
	return best
}

// replayUser runs one trajectory through the forward filter. Returns the
// summed per-step errors for the correlating and independent attackers,
// the step count, and the per-subtree observation log-likelihoods for the
// composition check.
func (h *hmm) replayUser(steps []trajStep) (trajSum, indepSum float64, n int, logLik map[loctree.NodeID][]float64, obsCount map[loctree.NodeID]int, err error) {
	belief := append([]float64(nil), h.prior...)
	// logLik[root][l] accumulates sum_t log Z_root[l][o_t] over the steps
	// observed inside root's subtree; leaves outside root stay NaN.
	logLik = map[loctree.NodeID][]float64{}
	obsCount = map[loctree.NodeID]int{}
	pred := make([]float64, len(belief))
	for _, st := range steps {
		lik, lerr := h.likelihood(st.observed)
		if lerr != nil {
			return 0, 0, 0, nil, nil, lerr
		}
		// Predict: belief through one mobility-transition step.
		for j := range pred {
			pred[j] = 0
		}
		for a, b := range belief {
			if b <= 0 {
				continue
			}
			ta := h.trans[a]
			for j, t := range ta {
				pred[j] += b * t
			}
		}
		// Update: multiply in the emission, renormalize.
		sum := 0.0
		for j := range pred {
			pred[j] *= lik[j]
			sum += pred[j]
		}
		if sum <= 0 {
			// An observation the mobility model finds impossible: reset to
			// the single-step posterior rather than dividing by zero.
			for j := range pred {
				pred[j] = h.prior[j] * lik[j]
				sum += pred[j]
			}
		}
		for j := range pred {
			pred[j] /= sum
		}
		copy(belief, pred)

		truth := h.idx[st.truth]
		trajSum += h.dist[h.remapEstimate(belief)][truth]

		// Independent baseline: posterior from this observation alone.
		indep := make([]float64, len(belief))
		isum := 0.0
		for j := range indep {
			indep[j] = h.prior[j] * lik[j]
			isum += indep[j]
		}
		if isum > 0 {
			for j := range indep {
				indep[j] /= isum
			}
			indepSum += h.dist[h.remapEstimate(indep)][truth]
		} else {
			indepSum += h.dist[h.remapEstimate(h.prior)][truth]
		}
		n++

		// Composition bookkeeping: static-hypothesis log-likelihoods per
		// subtree.
		root, _ := h.tree.AncestorAt(st.observed, trajPrivacyLevel)
		ll, ok := logLik[root]
		if !ok {
			ll = make([]float64, len(h.leaves))
			for j := range ll {
				if h.rootOf[j] == root {
					ll[j] = 0
				} else {
					ll[j] = math.NaN()
				}
			}
			logLik[root] = ll
		}
		obsCount[root]++
		for j := range ll {
			if math.IsNaN(ll[j]) {
				continue
			}
			if lik[j] > 0 {
				ll[j] += math.Log(lik[j])
			} else {
				ll[j] = math.Inf(-1)
			}
		}
	}
	return trajSum, indepSum, n, logLik, obsCount, nil
}

// compositionRatio checks the realized observation log-likelihood ratios
// against the linear Geo-Ind composition bound: for static hypotheses i, j
// in one subtree observed t times, |log L_i - log L_j| <= eps * t * d(i,j)
// (Equ. 2 composed linearly — exactly what internal/budget charges for).
// Returns the worst realized/bound ratio.
func (h *hmm) compositionRatio(eps float64, logLik map[loctree.NodeID][]float64, obsCount map[loctree.NodeID]int) float64 {
	worst := 0.0
	for root, ll := range logLik {
		t := float64(obsCount[root])
		for i := range ll {
			if math.IsNaN(ll[i]) || math.IsInf(ll[i], -1) {
				continue
			}
			for j := range ll {
				if j == i || math.IsNaN(ll[j]) || math.IsInf(ll[j], -1) {
					continue
				}
				d := h.dist[i][j]
				if d <= 0 {
					continue
				}
				if r := (ll[i] - ll[j]) / (eps * t * d); r > worst {
					worst = r
				}
			}
		}
	}
	return worst
}

// runTrajectory replays the corpus through one reporter and attacks the
// transcript.
func runTrajectory(name string, eps float64, tree *loctree.Tree, rep reporter,
	corpus [][]loctree.NodeID, lambda float64) (TrajPoint, error) {
	h, err := newHMM(tree, rep, lambda)
	if err != nil {
		return TrajPoint{}, err
	}
	pt := TrajPoint{Mechanism: name, Epsilon: eps}
	var trajSum, indepSum, chargedSum, worstRatio float64
	for uid, path := range corpus {
		steps := make([]trajStep, 0, len(path))
		for _, leaf := range path {
			observed, reanchored, err := rep.draw(int64(uid), leaf)
			if err != nil {
				return TrajPoint{}, fmt.Errorf("eval: replaying %s uid=%d: %w", name, uid, err)
			}
			if reanchored {
				pt.Reanchors++
			}
			steps = append(steps, trajStep{truth: leaf, observed: observed})
		}
		ts, is, n, logLik, obsCount, err := h.replayUser(steps)
		if err != nil {
			return TrajPoint{}, err
		}
		trajSum += ts
		indepSum += is
		pt.Steps += n
		chargedSum += rep.chargedEps(int64(uid))
		if r := h.compositionRatio(eps, logLik, obsCount); r > worstRatio {
			worstRatio = r
		}
	}
	pt.Users = len(corpus)
	if pt.Steps > 0 {
		pt.TrajErrorKm = trajSum / float64(pt.Steps)
		pt.IndepErrorKm = indepSum / float64(pt.Steps)
	}
	if pt.TrajErrorKm > 0 {
		pt.CorrelationGain = pt.IndepErrorKm / pt.TrajErrorKm
	}
	if pt.Users > 0 {
		pt.LinearEpsBudget = chargedSum / float64(pt.Users)
	}
	pt.CompositionRatio = worstRatio
	pt.CompositionHolds = worstRatio <= 1+1e-6
	return pt, nil
}

// sweepTrajectories runs the trajectory adversary against the forest
// mechanism (through a live registry) and planar Laplace (through
// session.Session) at each swept epsilon.
func sweepTrajectories(cfg Config) ([]TrajPoint, error) {
	users, steps := 12, 16
	epsilons := cfg.Epsilons
	if cfg.Quick {
		users, steps = 6, 8
		epsilons = cfg.Epsilons[len(cfg.Epsilons)-1:]
	}
	ctx := context.Background()
	var out []TrajPoint
	for _, eps := range epsilons {
		forest, tree, err := newForestReporter(ctx, eps, cfg.Seed)
		if err != nil {
			return nil, err
		}
		corpus, lambda, err := mobilityCorpus(tree, cfg.Seed, users, steps)
		if err != nil {
			return nil, err
		}
		fp, err := runTrajectory("forest-optimal", eps, tree, forest, corpus, lambda)
		if err != nil {
			return nil, err
		}
		out = append(out, fp)

		planar, err := newPlanarReporter(tree, eps, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pp, err := runTrajectory(mechanism.PlanarLaplaceName, eps, tree, planar, corpus, lambda)
		if err != nil {
			return nil, err
		}
		out = append(out, pp)
	}
	return out, nil
}
