package eval

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	_ "corgi/internal/core" // register the forest mechanism factories
	"corgi/internal/mechanism"
)

// TestFrontierReportPR10 runs the quick frontier sweep — both adversaries,
// truncated Gowalla replay — and asserts the PR's acceptance shape: at
// least the three registered mechanisms under the remapping adversary,
// both serving mechanisms under the trajectory adversary, and the robust
// mechanism dominating the non-robust baseline post-prune. When
// FRONTIER_PR10_OUT names a path the frontier JSON is written there for
// the CI artifact.
func TestFrontierReportPR10(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier sweep solves LPs and replays trajectories; skipped in -short")
	}
	f, err := Run(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != Schema {
		t.Fatalf("schema = %q, want %q", f.Schema, Schema)
	}
	if len(f.Mechanisms) < 2 {
		t.Fatalf("frontier covers %d mechanisms, want >= 2", len(f.Mechanisms))
	}
	want := map[string]bool{"forest-optimal": false, "forest-nonrobust": false,
		mechanism.PlanarLaplaceName: false}
	for _, m := range f.Mechanisms {
		if len(m.Points) != len(f.Epsilons) {
			t.Fatalf("%s has %d points, want %d", m.Name, len(m.Points), len(f.Epsilons))
		}
		for _, p := range m.Points {
			if p.RemapErrorKm <= 0 {
				t.Fatalf("%s at eps=%g: remap error %v, want > 0", m.Name, p.Epsilon, p.RemapErrorKm)
			}
		}
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("mechanism %s missing from the frontier", name)
		}
	}
	if !f.RobustDominates {
		t.Fatal("robust mechanism does not dominate the non-robust baseline post-prune")
	}
	if len(f.Trajectory) < 2 {
		t.Fatalf("trajectory adversary covered %d mechanism points, want >= 2", len(f.Trajectory))
	}
	for _, tp := range f.Trajectory {
		if tp.Steps == 0 {
			t.Fatalf("trajectory point %s/eps=%g replayed zero steps", tp.Mechanism, tp.Epsilon)
		}
		if tp.TrajErrorKm <= 0 {
			t.Fatalf("trajectory point %s/eps=%g: traj error %v, want > 0", tp.Mechanism, tp.Epsilon, tp.TrajErrorKm)
		}
		if tp.LinearEpsBudget <= 0 {
			t.Fatalf("trajectory point %s/eps=%g: no epsilon charged", tp.Mechanism, tp.Epsilon)
		}
	}

	if out := os.Getenv("FRONTIER_PR10_OUT"); out != "" {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("FRONTIER_pr10: mechanisms=%d trajectory=%d robust_dominates=%v\n",
			len(f.Mechanisms), len(f.Trajectory), f.RobustDominates)
	}
}
