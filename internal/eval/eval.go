// Package eval is the evaluation harness over the mechanism registry: it
// sweeps every registered mechanism (internal/mechanism.Factories — the
// LP-optimal robust forest, its non-robust baseline, discretized planar
// Laplace) across epsilon under two adversaries and emits a
// utility-vs-privacy frontier artifact.
//
// Adversary one is the Bayesian remapping attacker (attack.RemapError):
// observe one report, form the posterior, answer with the Bayes-optimal
// remap; its expected distance error is the paper's privacy metric
// (Sec. 6, refs [26, 27]). Each mechanism is measured both intact and
// after δ preference-pruning (attack.PrunedRemapError) — the robustness
// probe: a δ-prunable matrix should hold its error where the non-robust
// baseline collapses or fails to renormalize at all.
//
// Adversary two is the trajectory-correlation attacker (traj.go): a
// forward-filtering HMM that replays Gowalla mobility sessions through
// the real serving stack — resident sessions, re-anchors across subtree
// crossings, budget accounting — and exploits step-to-step correlation
// the single-report metric cannot see. Alongside it the harness checks
// the linear-composition bound internal/budget charges by (t draws cost
// t*eps) against the realized observation-likelihood ratios.
//
// The Frontier JSON ("corgi-frontier/1") is reproduced as a CI artifact;
// its robust_dominates field is the build gate: the robust mechanism's
// post-prune remap error must dominate the non-robust baseline at every
// matched epsilon (matched epsilon fixes the utility side of the
// frontier, so dominance there is dominance at matched utility).
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"corgi/internal/attack"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/obf"
)

// Schema identifies the frontier artifact format.
const Schema = "corgi-frontier/1"

// Config parameterizes one frontier run.
type Config struct {
	// Seed drives every random choice (priors corpus, prune sets,
	// trajectory replay); equal seeds reproduce equal frontiers.
	Seed int64
	// Quick shrinks the sweep for CI: fewer cells, epsilons, users.
	Quick bool
	// Epsilons overrides the swept Geo-Ind budgets (km^-1). Nil uses the
	// default grid around the paper's eps = 15.
	Epsilons []float64
	// Delta is the preference-prune budget the robust mechanisms are
	// built for and the pruned-remap probe removes. Default 3.
	Delta int
}

func (c Config) withDefaults() Config {
	if c.Epsilons == nil {
		if c.Quick {
			c.Epsilons = []float64{10, 15}
		} else {
			c.Epsilons = []float64{5, 10, 15}
		}
	}
	if c.Delta == 0 {
		c.Delta = 3
	}
	return c
}

// Point is one (mechanism, epsilon) cell of the frontier under the
// remapping adversary. Distances are km; higher error = more private,
// lower utility loss = more useful.
type Point struct {
	Epsilon float64 `json:"epsilon"`
	// UtilityLossKm is the expected true-to-reported distance
	// sum_i prior_i sum_j z_ij d_ij — the paper's quality-loss objective.
	UtilityLossKm float64 `json:"utility_loss_km"`
	// RemapErrorKm is the Bayes-optimal remapping adversary's expected
	// inference error against the intact mechanism.
	RemapErrorKm float64 `json:"remap_error_km"`
	// PrunedRemapErrorKm is the same metric after delta leaves are pruned
	// and the matrix renormalized — the worst (lowest) error over the
	// sampled prune sets. Zero when every sampled prune failed.
	PrunedRemapErrorKm float64 `json:"pruned_remap_error_km"`
	// PruneFailed marks a mechanism that could not renormalize some
	// sampled prune set at all (a row lost essentially all mass) — the
	// failure mode delta-prunable generation exists to rule out.
	PruneFailed bool `json:"prune_failed"`
}

// MechanismFrontier is one registered mechanism's sweep.
type MechanismFrontier struct {
	Name   string  `json:"name"`
	Robust bool    `json:"robust"`
	Points []Point `json:"points"`
}

// Frontier is the artifact one Run emits.
type Frontier struct {
	Schema   string    `json:"schema"`
	Seed     int64     `json:"seed"`
	Quick    bool      `json:"quick"`
	Delta    int       `json:"delta"`
	Epsilons []float64 `json:"epsilons"`
	// Cells is the remap-sweep instance size (matrix dimension).
	Cells      int                 `json:"cells"`
	Mechanisms []MechanismFrontier `json:"mechanisms"`
	Trajectory []TrajPoint         `json:"trajectory"`
	// RobustDominates is the CI gate: at every swept epsilon the robust
	// forest mechanism's post-prune remap error is at least the
	// non-robust baseline's (a baseline whose prune failed outright is
	// dominated by definition).
	RobustDominates bool `json:"robust_dominates"`
}

// world is the shared remap-sweep instance: a region tree, data-derived
// priors, and one cluster of leaf cells the matrices cover.
type world struct {
	sys    *hexgrid.System
	tree   *loctree.Tree
	leaves []loctree.NodeID
	cells  []hexgrid.Coord
	prior  []float64 // normalized over leaves
	dist   func(i, j int) float64
	build  mechanism.BuildConfig // template; Epsilon/Delta set per point
}

func newWorld(cfg Config) (*world, error) {
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		return nil, err
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		return nil, err
	}
	ds, err := gowalla.Generate(gowalla.GenConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	leafW, err := gowalla.LeafPriors(ds.CheckIns, tree, 1)
	if err != nil {
		return nil, err
	}
	priors, err := loctree.NewPriors(tree, leafW)
	if err != nil {
		return nil, err
	}
	clusters := 3 // K = 21
	if cfg.Quick {
		clusters = 1 // K = 7
	}
	leaves, err := tree.ClusterLeaves(clusters)
	if err != nil {
		return nil, err
	}
	prior, err := priors.Subset(tree, leaves, true)
	if err != nil {
		return nil, err
	}
	w := &world{sys: sys, tree: tree, leaves: leaves, prior: prior}
	w.cells = make([]hexgrid.Coord, len(leaves))
	centers := make([]geo.LatLng, len(leaves))
	for i, l := range leaves {
		w.cells[i] = l.Coord
		centers[i] = tree.Center(l)
	}
	w.dist = func(i, j int) float64 { return geo.Haversine(centers[i], centers[j]) }

	// Shared NR_TARGET service locations so every mechanism optimizes the
	// same quality objective. A thin target set concentrates row mass on a
	// few columns, which inflates the reserved budget (Equ. 14) until the
	// tightened multiplier saturates and the robust solve degenerates — so
	// the sweep follows the paper's protocol of spreading targets across
	// the instance.
	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	var targets []geo.LatLng
	var tprobs []float64
	nTargets := max(3, len(leaves)/3)
	for _, idx := range rng.Perm(len(leaves))[:min(nTargets, len(leaves))] {
		targets = append(targets, centers[idx])
		tprobs = append(tprobs, 1)
	}
	iters := 6
	if cfg.Quick {
		iters = 3
	}
	w.build = mechanism.BuildConfig{
		Sys: sys, Cells: w.cells, Priors: prior,
		Targets: targets, TargetProbs: tprobs, Iterations: iters,
	}
	return w, nil
}

// utilityLoss is the expected reporting distance sum_i p_i sum_j z_ij d_ij.
func utilityLoss(prior []float64, z *obf.Matrix, dist func(i, j int) float64) float64 {
	total := 0.0
	for i := 0; i < z.Dim(); i++ {
		row := z.Row(i)
		for j, v := range row {
			if v > 0 {
				total += prior[i] * v * dist(i, j)
			}
		}
	}
	return total
}

// pruneSets samples `sets` distinct delta-sized prune sets; the pruned
// metric takes the worst case over them, which is the robustness claim's
// shape (delta-prunable = survives any |S| <= delta).
func pruneSets(rng *rand.Rand, n, delta, sets int) [][]int {
	out := make([][]int, sets)
	for s := range out {
		out[s] = append([]int(nil), rng.Perm(n)[:delta]...)
		sort.Ints(out[s])
	}
	return out
}

// sweepMechanisms measures every registered mechanism at every epsilon
// under the remapping adversary.
func sweepMechanisms(cfg Config, w *world) ([]MechanismFrontier, error) {
	sets := 5
	if cfg.Quick {
		sets = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2000))
	prunes := pruneSets(rng, len(w.leaves), cfg.Delta, sets)

	var out []MechanismFrontier
	for _, f := range mechanism.Factories() {
		mf := MechanismFrontier{Name: f.Name, Robust: f.Robust}
		for _, eps := range cfg.Epsilons {
			bc := w.build
			bc.Epsilon = eps
			bc.Delta = cfg.Delta
			z, err := mechanism.Build(f.Name, bc)
			if err != nil {
				return nil, fmt.Errorf("eval: building %s at eps=%g: %w", f.Name, eps, err)
			}
			p := Point{Epsilon: eps, UtilityLossKm: utilityLoss(w.prior, z, w.dist)}
			p.RemapErrorKm, err = attack.RemapError(w.prior, z, w.dist)
			if err != nil {
				return nil, fmt.Errorf("eval: remap error for %s at eps=%g: %w", f.Name, eps, err)
			}
			worst := -1.0
			for _, set := range prunes {
				e, err := attack.PrunedRemapError(w.prior, z, w.dist, set)
				if err != nil {
					// A prune the matrix cannot absorb: the non-robust
					// failure mode, recorded rather than fatal.
					p.PruneFailed = true
					continue
				}
				if worst < 0 || e < worst {
					worst = e
				}
			}
			if worst >= 0 {
				p.PrunedRemapErrorKm = worst
			}
			mf.Points = append(mf.Points, p)
		}
		out = append(out, mf)
	}
	return out, nil
}

// robustDominates is the gate: at every epsilon the robust forest
// mechanism's worst-case post-prune error must be at least the
// non-robust baseline's (an outright prune failure is dominated).
func robustDominates(ms []MechanismFrontier) bool {
	var robust, plain *MechanismFrontier
	for i := range ms {
		switch ms[i].Name {
		case "forest-optimal":
			robust = &ms[i]
		case "forest-nonrobust":
			plain = &ms[i]
		}
	}
	if robust == nil || plain == nil {
		return false
	}
	byEps := map[float64]Point{}
	for _, p := range plain.Points {
		byEps[p.Epsilon] = p
	}
	const tol = 1e-9
	for _, rp := range robust.Points {
		pp, ok := byEps[rp.Epsilon]
		if !ok {
			continue
		}
		if rp.PruneFailed {
			return false // the robust mechanism must absorb every sampled prune
		}
		if pp.PruneFailed {
			continue // baseline collapsed outright: dominated at this eps
		}
		if rp.PrunedRemapErrorKm+tol < pp.PrunedRemapErrorKm {
			return false
		}
	}
	return true
}

// Run executes the full frontier sweep: the remapping adversary across
// all registered mechanisms and epsilons, then the trajectory-correlation
// adversary through the real serving stack.
func Run(cfg Config) (*Frontier, error) {
	cfg = cfg.withDefaults()
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	mechs, err := sweepMechanisms(cfg, w)
	if err != nil {
		return nil, err
	}
	traj, err := sweepTrajectories(cfg)
	if err != nil {
		return nil, err
	}
	return &Frontier{
		Schema:          Schema,
		Seed:            cfg.Seed,
		Quick:           cfg.Quick,
		Delta:           cfg.Delta,
		Epsilons:        cfg.Epsilons,
		Cells:           len(w.leaves),
		Mechanisms:      mechs,
		Trajectory:      traj,
		RobustDominates: robustDominates(mechs),
	}, nil
}
