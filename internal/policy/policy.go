// Package policy implements the paper's user customization policies
// (Sec. 3.2). A policy is the triple
//
//	<Privacy_l, Precision_l, User_Preferences>
//
// where Privacy_l selects the obfuscation range (the privacy-forest level),
// Precision_l the granularity of the reported location, and
// User_Preferences is a conjunction of Boolean predicates <var, op, val>
// over per-location attributes (home, office, popular, outlier, distance,
// ...). Locations failing any predicate are pruned from the obfuscation
// range on the user side; only their count is ever shared with the server.
package policy

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Kind tags the dynamic type of a Value.
type Kind int8

// Value kinds.
const (
	KindString Kind = iota
	KindNumber
	KindBool
)

// Value is a typed attribute/predicate value.
type Value struct {
	Kind Kind
	S    string
	F    float64
	B    bool
}

// String makes a string value.
func String(s string) Value { return Value{Kind: KindString, S: s} }

// Number makes a numeric value.
func Number(f float64) Value { return Value{Kind: KindNumber, F: f} }

// Bool makes a boolean value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Equal reports deep equality of two values (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.S == o.S
	case KindNumber:
		return v.F == o.F
	default:
		return v.B == o.B
	}
}

// GoString renders the value as it would appear in a predicate.
func (v Value) GoString() string {
	switch v.Kind {
	case KindString:
		return v.S
	case KindNumber:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return strconv.FormatBool(v.B)
	}
}

// MarshalJSON encodes the value as a native JSON scalar.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.Kind {
	case KindString:
		return json.Marshal(v.S)
	case KindNumber:
		return json.Marshal(v.F)
	default:
		return json.Marshal(v.B)
	}
}

// UnmarshalJSON decodes a JSON scalar into a typed value.
func (v *Value) UnmarshalJSON(data []byte) error {
	var raw interface{}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch x := raw.(type) {
	case string:
		*v = String(x)
	case float64:
		*v = Number(x)
	case bool:
		*v = Bool(x)
	default:
		return fmt.Errorf("policy: unsupported JSON value %T", raw)
	}
	return nil
}

// Op is a predicate comparison operator.
type Op int8

// Predicate operators, matching the paper's {=, !=, <, >, >=, <=}.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
)

var opNames = map[Op]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpGt: ">", OpLe: "<=", OpGe: ">=",
}

var opByName = map[string]Op{
	"=": OpEq, "==": OpEq, "!=": OpNe, "<": OpLt, ">": OpGt, "<=": OpLe, ">=": OpGe,
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// MarshalJSON encodes the operator as its symbol.
func (o Op) MarshalJSON() ([]byte, error) {
	s, ok := opNames[o]
	if !ok {
		return nil, fmt.Errorf("policy: unknown op %d", int(o))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes an operator symbol.
func (o *Op) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	op, ok := opByName[s]
	if !ok {
		return fmt.Errorf("policy: unknown op %q", s)
	}
	*o = op
	return nil
}

// Predicate is one Boolean requirement <var, op, val>. A location must
// satisfy every predicate of a policy to remain in the obfuscation range.
type Predicate struct {
	Var string `json:"var"`
	Op  Op     `json:"op"`
	Val Value  `json:"val"`
}

// String renders the predicate in the paper's <var op val> form.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Var, p.Op, p.Val.GoString())
}

// Attributes carries a location's metadata, keyed by variable name.
type Attributes map[string]Value

// Eval evaluates the predicate against a location's attributes. A missing
// attribute or a kind mismatch is an error: policies must be checkable, not
// silently vacuous.
func (p Predicate) Eval(attrs Attributes) (bool, error) {
	v, ok := attrs[p.Var]
	if !ok {
		return false, fmt.Errorf("policy: attribute %q not present", p.Var)
	}
	switch p.Op {
	case OpEq:
		if v.Kind != p.Val.Kind {
			return false, kindMismatch(p, v)
		}
		return v.Equal(p.Val), nil
	case OpNe:
		if v.Kind != p.Val.Kind {
			return false, kindMismatch(p, v)
		}
		return !v.Equal(p.Val), nil
	case OpLt, OpGt, OpLe, OpGe:
		if v.Kind != KindNumber || p.Val.Kind != KindNumber {
			return false, fmt.Errorf("policy: ordering comparison %s needs numbers", p)
		}
		switch p.Op {
		case OpLt:
			return v.F < p.Val.F, nil
		case OpGt:
			return v.F > p.Val.F, nil
		case OpLe:
			return v.F <= p.Val.F, nil
		default:
			return v.F >= p.Val.F, nil
		}
	}
	return false, fmt.Errorf("policy: unknown operator %d", int(p.Op))
}

func kindMismatch(p Predicate, v Value) error {
	return fmt.Errorf("policy: predicate %q compares kind %d with kind %d", p, p.Val.Kind, v.Kind)
}

// ParsePredicate parses "var op value" (e.g. "popular = true",
// "distance <= 5", "category != bar"). Values parse as bool, then number,
// then fall back to string.
func ParsePredicate(s string) (Predicate, error) {
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return Predicate{}, fmt.Errorf("policy: predicate %q needs 'var op value'", s)
	}
	op, ok := opByName[fields[1]]
	if !ok {
		return Predicate{}, fmt.Errorf("policy: unknown operator %q in %q", fields[1], s)
	}
	raw := strings.Join(fields[2:], " ")
	var val Value
	if b, err := strconv.ParseBool(strings.ToLower(raw)); err == nil {
		val = Bool(b)
	} else if f, err := strconv.ParseFloat(raw, 64); err == nil {
		val = Number(f)
	} else {
		val = String(strings.Trim(raw, `"'`))
	}
	return Predicate{Var: fields[0], Op: op, Val: val}, nil
}

// Policy is the paper's customization triple.
type Policy struct {
	// PrivacyLevel is the tree level whose subtrees form the privacy forest
	// (the obfuscation range).
	PrivacyLevel int `json:"privacy_l"`
	// PrecisionLevel is the tree level of the reported location. It must be
	// strictly below PrivacyLevel (Sec. 3.2).
	PrecisionLevel int `json:"precision_l"`
	// Preferences is the conjunction of predicates a location must satisfy
	// to remain in the obfuscation range.
	Preferences []Predicate `json:"user_preferences,omitempty"`
}

// Validate checks the structural rules of Sec. 3.2 against a tree of the
// given height.
func (p Policy) Validate(treeHeight int) error {
	if p.PrivacyLevel < 1 || p.PrivacyLevel > treeHeight {
		return fmt.Errorf("policy: privacy level %d outside [1,%d]", p.PrivacyLevel, treeHeight)
	}
	if p.PrecisionLevel < 0 {
		return fmt.Errorf("policy: precision level %d negative", p.PrecisionLevel)
	}
	if p.PrecisionLevel >= p.PrivacyLevel {
		return fmt.Errorf("policy: precision level %d must be below privacy level %d",
			p.PrecisionLevel, p.PrivacyLevel)
	}
	return nil
}

// Allowed reports whether a location with the given attributes satisfies
// every preference (and so may stay in the obfuscation range).
func (p Policy) Allowed(attrs Attributes) (bool, error) {
	for _, pred := range p.Preferences {
		ok, err := pred.Eval(attrs)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// String renders the policy in the paper's notation.
func (p Policy) String() string {
	prefs := make([]string, len(p.Preferences))
	for i, pr := range p.Preferences {
		prefs[i] = pr.String()
	}
	return fmt.Sprintf("<privacy_l=%d, precision_l=%d, user_preferences=[%s]>",
		p.PrivacyLevel, p.PrecisionLevel, strings.Join(prefs, ", "))
}
