package policy

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{String("x"), String("x"), true},
		{String("x"), String("y"), false},
		{Number(5), Number(5), true},
		{Number(5), Number(6), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{String("5"), Number(5), false},
		{Bool(true), String("true"), false},
	}
	for _, tc := range tests {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("Equal(%#v, %#v) = %v", tc.a, tc.b, got)
		}
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	for _, v := range []Value{String("home"), Number(3.5), Bool(true)} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %#v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !v.Equal(back) {
			t.Errorf("roundtrip %#v -> %s -> %#v", v, data, back)
		}
	}
	var bad Value
	if err := json.Unmarshal([]byte(`[1,2]`), &bad); err == nil {
		t.Error("array must not decode as Value")
	}
}

func TestPredicateEval(t *testing.T) {
	attrs := Attributes{
		"popular":  Bool(true),
		"home":     Bool(false),
		"distance": Number(3.2),
		"category": String("cafe"),
	}
	tests := []struct {
		pred string
		want bool
	}{
		{"popular = true", true},
		{"popular != true", false},
		{"home = false", true},
		{"distance <= 5", true},
		{"distance < 3.2", false},
		{"distance >= 3.2", true},
		{"distance > 10", false},
		{"category = cafe", true},
		{"category != bar", true},
	}
	for _, tc := range tests {
		p, err := ParsePredicate(tc.pred)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.pred, err)
		}
		got, err := p.Eval(attrs)
		if err != nil {
			t.Fatalf("eval %q: %v", tc.pred, err)
		}
		if got != tc.want {
			t.Errorf("%q = %v, want %v", tc.pred, got, tc.want)
		}
	}
}

func TestPredicateEvalErrors(t *testing.T) {
	attrs := Attributes{"distance": Number(1), "name": String("x")}
	cases := []Predicate{
		{Var: "missing", Op: OpEq, Val: Bool(true)},
		{Var: "distance", Op: OpEq, Val: String("1")}, // kind mismatch
		{Var: "name", Op: OpLt, Val: String("y")},     // ordering on strings
		{Var: "name", Op: Op(42), Val: String("x")},   // unknown op
	}
	for _, p := range cases {
		if _, err := p.Eval(attrs); err == nil {
			t.Errorf("predicate %v should error", p)
		}
	}
}

func TestParsePredicateErrors(t *testing.T) {
	for _, s := range []string{"", "x =", "x ~ 5", "x"} {
		if _, err := ParsePredicate(s); err == nil {
			t.Errorf("%q should fail to parse", s)
		}
	}
}

func TestParsePredicateMultiwordString(t *testing.T) {
	p, err := ParsePredicate(`name = Golden Gate Park`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Val.Kind != KindString || p.Val.S != "Golden Gate Park" {
		t.Errorf("parsed %#v", p.Val)
	}
}

func TestPolicyValidate(t *testing.T) {
	ok := Policy{PrivacyLevel: 2, PrecisionLevel: 0}
	if err := ok.Validate(3); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	cases := []Policy{
		{PrivacyLevel: 0, PrecisionLevel: 0},  // privacy too low
		{PrivacyLevel: 4, PrecisionLevel: 0},  // above tree height
		{PrivacyLevel: 2, PrecisionLevel: 2},  // precision == privacy
		{PrivacyLevel: 2, PrecisionLevel: 3},  // precision above privacy
		{PrivacyLevel: 2, PrecisionLevel: -1}, // negative precision
	}
	for _, p := range cases {
		if err := p.Validate(3); err == nil {
			t.Errorf("policy %+v should be invalid", p)
		}
	}
}

func TestPolicyAllowed(t *testing.T) {
	pop, _ := ParsePredicate("popular = true")
	near, _ := ParsePredicate("distance <= 5")
	p := Policy{PrivacyLevel: 2, PrecisionLevel: 0, Preferences: []Predicate{pop, near}}

	ok, err := p.Allowed(Attributes{"popular": Bool(true), "distance": Number(2)})
	if err != nil || !ok {
		t.Errorf("conjunction satisfied: got %v %v", ok, err)
	}
	ok, err = p.Allowed(Attributes{"popular": Bool(false), "distance": Number(2)})
	if err != nil || ok {
		t.Errorf("failed predicate must prune: got %v %v", ok, err)
	}
	if _, err := p.Allowed(Attributes{"popular": Bool(true)}); err == nil {
		t.Error("missing attribute must error")
	}
	// Empty preferences allow everything.
	empty := Policy{PrivacyLevel: 1, PrecisionLevel: 0}
	if ok, err := empty.Allowed(nil); err != nil || !ok {
		t.Errorf("empty preferences: %v %v", ok, err)
	}
}

func TestPolicyString(t *testing.T) {
	pop, _ := ParsePredicate("popular = true")
	p := Policy{PrivacyLevel: 3, PrecisionLevel: 0, Preferences: []Predicate{pop}}
	s := p.String()
	for _, want := range []string{"privacy_l=3", "precision_l=0", "popular = true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestPolicyJSONRoundTrip(t *testing.T) {
	pop, _ := ParsePredicate("popular = true")
	near, _ := ParsePredicate("distance <= 5")
	p := Policy{PrivacyLevel: 3, PrecisionLevel: 1, Preferences: []Predicate{pop, near}}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Policy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.PrivacyLevel != 3 || back.PrecisionLevel != 1 || len(back.Preferences) != 2 {
		t.Errorf("roundtrip lost fields: %+v", back)
	}
	if back.Preferences[1].Op != OpLe || back.Preferences[1].Val.F != 5 {
		t.Errorf("roundtrip lost predicate: %+v", back.Preferences[1])
	}
	var badOp Op
	if err := json.Unmarshal([]byte(`"~"`), &badOp); err == nil {
		t.Error("unknown op symbol must fail")
	}
	if _, err := json.Marshal(Op(42)); err == nil {
		t.Error("unknown op must fail to marshal")
	}
}

func TestOpString(t *testing.T) {
	if OpLe.String() != "<=" || OpEq.String() != "=" {
		t.Error("op strings wrong")
	}
	if Op(42).String() == "" {
		t.Error("unknown op must still print")
	}
}
