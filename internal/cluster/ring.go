// Package cluster is the horizontal scale-out tier: a consistent-hash
// router embedded in every corgi-server node that pins each user's report
// session and epsilon budget to one owner node, so warm-path draws never
// cross a node boundary and fleet throughput scales with node count.
//
// The design follows the ROADMAP's distributed-serving item: routing, not
// re-solving, is the scaling primitive. The paper's per-user guarantees —
// linear epsilon composition across a trajectory's reports — only hold if
// one accountant sees every charge for a user, and session draw sequences
// only replay deterministically if one RNG stream serves them. Both are
// per-uid state, so the ring hashes uids: a user always lands on the same
// node regardless of which node their client dialed, and the non-owner
// nodes forward over the corgi-stream transport (HTTP fallback) instead of
// serving locally. Budget coherence across rebalances and failovers rides
// on internal/budget's windowed handoff protocol (see router.go).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is each member's virtual-node count. The count is fixed
// (never a function of who else is in the ring): a member contributes the
// same hash points to every ring it appears in, which is what makes
// membership changes move only ~1/N of the keyspace. 256 points keeps
// shares within a few percent of 1/N before the spill pass intervenes.
const DefaultVnodes = 256

// DefaultMaxLoadFactor bounds any member's keyspace share at
// MaxLoadFactor/N (the "bounded load" variant): excess arcs of an
// over-bound member spill to under-bound members, deterministically, so
// every node computes the same spilled ring.
const DefaultMaxLoadFactor = 1.25

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint64
	member int // index into members
}

// Ring is an immutable consistent-hash ring over named members. Every
// node (and the cluster-aware clients) builds the ring from the same
// member list with the same parameters, so ownership decisions agree
// across the fleet with no coordination — determinism is what lets the
// router run embedded in every node instead of as a separate proxy.
type Ring struct {
	members []string
	points  []ringPoint
	vnodes  int
	shares  []float64
}

// NewRing builds a ring over members (order-insensitive; the list is
// sorted and must be non-empty and duplicate-free). vnodes <= 0 uses
// DefaultVnodes; maxLoad <= 1 uses DefaultMaxLoadFactor. Each member's
// hash points depend only on its own name and the vnode count — never on
// the rest of the membership — so adding or removing a member leaves the
// survivors' points in place and moves only the arcs the change touches.
// A deterministic spill pass then enforces the bounded-load cap: every
// node independently arrives at the same ring.
func NewRing(members []string, vnodes int, maxLoad float64) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	if maxLoad <= 1 {
		maxLoad = DefaultMaxLoadFactor
	}
	r := build(sorted, vnodes)
	if len(sorted) > 1 {
		r.spill(maxLoad / float64(len(sorted)))
	}
	return r, nil
}

// build places vnodes hash points per member and sorts them.
func build(members []string, vnodes int) *Ring {
	r := &Ring{
		members: members,
		vnodes:  vnodes,
		points:  make([]ringPoint, 0, len(members)*vnodes),
	}
	for mi, m := range members {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			h.Write([]byte(m))
			h.Write([]byte("#"))
			h.Write([]byte(strconv.Itoa(v)))
			// fnv over near-identical keys ("m#17" vs "m#18") clusters;
			// the splitmix64 finalizer spreads the points uniformly, the
			// same treatment uid keys get in locate.
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.shares = make([]float64, len(members))
	// Each point owns the arc that ends at it (keys hash-forward to the
	// next point clockwise), so point i's arc runs from point i-1 to i.
	prev := r.points[len(r.points)-1].hash
	for i, p := range r.points {
		arc := p.hash - prev // uint64 wraparound handles the first point
		r.shares[p.member] += float64(arc) / (1 << 64)
		prev = r.points[i].hash
	}
	return r
}

// spill enforces the bounded-load cap. While some member's keyspace share
// exceeds bound, one of its arcs is reassigned to another member: the
// largest arc that fits inside the member's excess (so the move never
// overshoots), received by the first clockwise member that stays under
// the cap after absorbing it. Every choice is a deterministic function of
// the sorted member list, so all nodes compute identical spills. Only the
// excess over the cap ever moves — a few percent of the keyspace at most
// — and the un-spilled points never change, which preserves the ~1/N
// movement bound across membership changes.
func (r *Ring) spill(bound float64) {
	const eps = 1e-15
	arcs := make([]float64, len(r.points))
	prev := r.points[len(r.points)-1].hash
	for i, p := range r.points {
		arcs[i] = float64(p.hash-prev) / (1 << 64)
		prev = p.hash
	}
	for iter := 0; iter < len(r.points); iter++ {
		// Most-loaded member, if any is over the cap (ties: lowest index).
		over := -1
		for m, s := range r.shares {
			if s > bound+eps && (over < 0 || s > r.shares[over]) {
				over = m
			}
		}
		if over < 0 {
			return
		}
		// Its largest arc that fits inside the excess; if every arc is
		// bigger than the excess, the smallest arc (still a strict
		// improvement, converges under the iteration cap).
		excess := r.shares[over] - bound
		fit, small := -1, -1
		for i, p := range r.points {
			if p.member != over {
				continue
			}
			if arcs[i] <= excess+eps && (fit < 0 || arcs[i] > arcs[fit]) {
				fit = i
			}
			if small < 0 || arcs[i] < arcs[small] {
				small = i
			}
		}
		pi := fit
		if pi < 0 {
			pi = small
		}
		if pi < 0 {
			return
		}
		// Receiver: first member clockwise from the arc that stays under
		// the cap after absorbing it; fall back to the least loaded.
		to := -1
		for n := 1; n < len(r.points); n++ {
			m := r.points[(pi+n)%len(r.points)].member
			if m != over && r.shares[m]+arcs[pi] <= bound+eps {
				to = m
				break
			}
		}
		if to < 0 {
			for m := range r.shares {
				if m != over && (to < 0 || r.shares[m] < r.shares[to]) {
					to = m
				}
			}
		}
		r.shares[over] -= arcs[pi]
		r.shares[to] += arcs[pi]
		r.points[pi].member = to
	}
}

// mix64 is the splitmix64 finalizer: uids are often small sequential
// integers, and fnv over 8 little-endian bytes clusters them; the
// finalizer spreads them uniformly over the 64-bit keyspace.
func mix64(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// locate returns the index of the first ring point at or after the key's
// hash (wrapping to 0 past the last point).
func (r *Ring) locate(uid int64) int {
	h := mix64(uint64(uid))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Owner returns the member that owns a uid's session and budget.
func (r *Ring) Owner(uid int64) string {
	return r.members[r.points[r.locate(uid)].member]
}

// Sequence returns every member in the uid's failover order: the owner
// first, then each distinct member encountered walking the ring clockwise.
// A router that cannot reach the owner tries the next member in this
// order, and every node computes the same order — so during an outage the
// whole fleet agrees on the interim owner without coordination.
func (r *Ring) Sequence(uid int64) []string {
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	for i, n := r.locate(uid), 0; n < len(r.points) && len(out) < len(r.members); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Members returns the ring's member names, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Vnodes returns the virtual-node count per member.
func (r *Ring) Vnodes() int { return r.vnodes }

// Shares returns each member's keyspace share (fractions summing to 1).
func (r *Ring) Shares() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	for i, m := range r.members {
		out[m] = r.shares[i]
	}
	return out
}
