package cluster_test

// TestBenchReportPR9 writes BENCH_pr9.json for the CI benchmark artifact:
// a 3-node in-process cluster replaying a Gowalla trajectory workload
// against a single node replaying the same trace, plus the coherence
// gates — zero budget over-spend (client-counted rejections == summed
// node-accountant rejections) and byte-identical draw sequences for a
// non-migrated user. Skipped unless BENCH_PR9_OUT names the output path.
//
// Single-core methodology: this container has one CPU, so running three
// nodes concurrently would just timeslice one core three ways and show
// nothing. Instead each node's req/s is measured sequentially while it
// serves its ring-owned partition of the trace (exactly the traffic
// session affinity sends it — forwarded requests are asserted to be
// zero), and the cluster rate is the sum, the throughput N nodes sustain
// on separate machines. The scaling factor therefore measures what the
// router actually risks: per-request routing overhead and broken
// affinity, either of which would drag the sum below the gate.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"corgi/internal/budget"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/registry"
)

type benchPR9Report struct {
	SingleNodeReqsPerSec float64 `json:"single_node_reqs_per_sec"`
	ClusterReqsPerSec    float64 `json:"cluster_reqs_per_sec"`
	// ScalingX = cluster / single-node; acceptance >= 2.5 at 3 nodes
	// (CI's smoke gate relaxes to 2.0 for noisy shared runners).
	ScalingX float64 `json:"scaling_x"`
	Nodes    int     `json:"nodes"`

	TraceRequests int     `json:"trace_requests"`
	Users         int     `json:"users"`
	LimitEps      float64 `json:"limit_eps"`

	// Over-spend accounting: rejections the replaying client counted vs
	// rejections the three node accountants counted (must be equal and
	// nonzero for the gate to mean anything), and how many users ever got
	// granted more than their epsilon window (must be zero).
	ClientRejections uint64 `json:"client_rejections"`
	NodeRejections   uint64 `json:"node_rejections"`
	OverspendUsers   int    `json:"overspend_users"`

	// DrawsIdentical: the busiest user's successful draw sequence from
	// the cluster replay is byte-identical to the single-node replay.
	DrawsIdentical bool `json:"draws_identical"`

	PerNodeRequests   map[string]int     `json:"per_node_requests"`
	PerNodeReqsPerSec map[string]float64 `json:"per_node_reqs_per_sec"`
	Methodology       string             `json:"methodology"`
}

// benchTraceReq is one replayed check-in.
type benchTraceReq struct {
	uid  int64
	cell hexgrid.Coord
}

// buildGowallaTrace generates the synthetic Gowalla corpus (the paper's
// SF sample statistics, scaled down and boxed to the bench region's tree)
// and maps each check-in to a leaf cell, preserving global time order.
func buildGowallaTrace(t *testing.T, tree *loctree.Tree) []benchTraceReq {
	t.Helper()
	const d = 0.002 // degrees half-width that keeps the corpus inside the height-2 tree
	box := geo.BoundingBox{
		MinLat: 37.765 - d, MaxLat: 37.765 + d,
		MinLng: -122.435 - d*1.27, MaxLng: -122.435 + d*1.27,
	}
	ds, err := gowalla.Generate(gowalla.GenConfig{
		Seed: 1, NumUsers: 48, NumPlaces: 150, NumCheckIns: 6000, BBox: box,
	})
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		ts  time.Time
		ord int
		req benchTraceReq
	}
	var points []point
	for _, c := range ds.CheckIns {
		leaf, ok := tree.Locate(c.Loc, 0)
		if !ok {
			continue
		}
		points = append(points, point{ts: c.Time, ord: len(points),
			req: benchTraceReq{uid: int64(c.UserID), cell: leaf.Coord}})
	}
	if len(points) < len(ds.CheckIns)/2 {
		t.Fatalf("only %d of %d check-ins landed inside the bench tree", len(points), len(ds.CheckIns))
	}
	sort.SliceStable(points, func(a, b int) bool {
		if !points[a].ts.Equal(points[b].ts) {
			return points[a].ts.Before(points[b].ts)
		}
		return points[a].ord < points[b].ord
	})
	trace := make([]benchTraceReq, len(points))
	for i, p := range points {
		trace[i] = p.req
	}
	return trace
}

func benchReq(r benchTraceReq) registry.ReportRequest {
	return registry.ReportRequest{
		Region: testRegion,
		Cell:   r.cell,
		UID:    r.uid,
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   r.uid*1000003 + 7,
		Count:  1,
	}
}

// replayStats accumulates one replay's outcomes.
type replayStats struct {
	served     int
	rejections uint64
	granted    map[int64]float64          // per-uid eps actually granted
	draws      map[int64][]loctree.NodeID // per-uid successful draw sequence
}

func newReplayStats() *replayStats {
	return &replayStats{granted: map[int64]float64{}, draws: map[int64][]loctree.NodeID{}}
}

func (rs *replayStats) record(uid int64, res *registry.ReportResult, err error, t *testing.T) {
	rs.served++
	if err != nil {
		if errors.Is(err, budget.ErrBudgetExhausted) {
			rs.rejections++
			return
		}
		t.Fatalf("replay request failed: %v", err)
	}
	rs.granted[uid] += res.EpsSpent
	rs.draws[uid] = append(rs.draws[uid], res.Reports...)
}

func TestBenchReportPR9(t *testing.T) {
	out := os.Getenv("BENCH_PR9_OUT")
	if out == "" {
		t.Skip("set BENCH_PR9_OUT=path to generate the benchmark report")
	}
	minScaling := 2.5
	if v := os.Getenv("BENCH_PR9_MIN_SCALING"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("BENCH_PR9_MIN_SCALING: %v", err)
		}
		minScaling = f
	}
	ctx := t.Context()

	// The trace, mapped on a scratch node's tree (all nodes build the
	// identical tree from the shared spec).
	scratch, err := registry.New(clusterSpec(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree := (&testNode{reg: scratch}).shard(t).Server.Tree()
	trace := buildGowallaTrace(t, tree)

	// Per-report epsilon, probed once, sets a budget that exhausts the
	// heavier half of the users mid-trace — so the over-spend gate
	// actually sees rejections on both sides of the comparison.
	probeReg, err := registry.New(clusterSpec(), registry.Options{Budget: budget.Config{LimitEps: 1e9, Window: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := probeReg.Report(ctx, benchReq(trace[0]))
	if err != nil || !probe.Budgeted || probe.EpsSpent <= 0 {
		t.Fatalf("epsilon probe: res=%+v err=%v", probe, err)
	}
	perUser := map[int64]int{}
	for _, r := range trace {
		perUser[r.uid]++
	}
	counts := make([]int, 0, len(perUser))
	for _, n := range perUser {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	limitEps := probe.EpsSpent * float64(counts[len(counts)/2])
	opts := registry.Options{Budget: budget.Config{LimitEps: limitEps, Window: time.Hour}}

	// One off-trace request warms a serving stack before its timer runs:
	// it triggers the shard build and the forest LP solve, a fixed cost
	// every node pays once at boot (not per request) that would otherwise
	// swamp these sub-second replay windows.
	warmReq := benchReq(trace[0])
	warmReq.UID, warmReq.Seed = -1, -1
	warm := func(reg *registry.Registry) {
		if _, err := reg.Report(ctx, warmReq); err != nil {
			t.Fatalf("warmup: %v", err)
		}
	}

	// Single-node baseline: one registry serves the full trace in order.
	single, err := registry.New(clusterSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warm(single)
	singleStats := newReplayStats()
	runtime.GC()
	start := time.Now()
	for _, r := range trace {
		res, err := single.Report(ctx, benchReq(r))
		singleStats.record(r.uid, res, err, t)
	}
	singleRate := float64(len(trace)) / time.Since(start).Seconds()

	// Cluster: 3 nodes, trace partitioned by ring owner (the traffic
	// affinity routing delivers), each partition replayed through its
	// owner's router and timed on its own.
	nodes := startCluster(t, 3, opts)
	ring := nodes[0].router.Ring()
	byNode := map[string][]benchTraceReq{}
	for _, r := range trace {
		owner := ring.Owner(r.uid)
		byNode[owner] = append(byNode[owner], r)
	}
	clusterStats := newReplayStats()
	perNodeReqs := map[string]int{}
	perNodeRate := map[string]float64{}
	clusterRate := 0.0
	for _, n := range nodes {
		part := byNode[n.name]
		if len(part) == 0 {
			t.Fatalf("node %s owns no trace requests — ring imbalance", n.name)
		}
		warm(n.reg)
		runtime.GC()
		start := time.Now()
		for _, r := range part {
			res, err := n.router.Report(ctx, benchReq(r))
			clusterStats.record(r.uid, res, err, t)
		}
		rate := float64(len(part)) / time.Since(start).Seconds()
		perNodeReqs[n.name] = len(part)
		perNodeRate[n.name] = math.Round(rate)
		clusterRate += rate
	}

	// Affinity must have held: every request was owner-served, nothing
	// crossed a node boundary.
	var nodeRejections uint64
	for _, n := range nodes {
		s := n.router.Stats()
		if s.ForwardedOut != 0 || s.ForwardedIn != 0 || s.Failovers != 0 {
			t.Fatalf("node %s: partitioned replay crossed node boundaries: %+v", n.name, s)
		}
		if int(s.OwnerServed) != perNodeReqs[n.name] {
			t.Fatalf("node %s served %d of its %d requests as owner", n.name, s.OwnerServed, perNodeReqs[n.name])
		}
		nodeRejections += n.shard(t).Budget.Stats().Rejections
	}

	// Gate: zero over-spend. The client's rejection count equals the
	// summed node-accountant rejections (every 429 is accounted exactly
	// once, nowhere silently granted), and no user was granted more than
	// the epsilon window.
	if clusterStats.rejections == 0 {
		t.Fatal("trace produced no budget rejections; the over-spend gate is vacuous")
	}
	if clusterStats.rejections != nodeRejections {
		t.Fatalf("client counted %d rejections, node accountants %d", clusterStats.rejections, nodeRejections)
	}
	overspend := 0
	for uid, eps := range clusterStats.granted {
		if eps > limitEps*(1+1e-9) {
			overspend++
			t.Errorf("uid %d granted %v eps over a %v limit", uid, eps, limitEps)
		}
	}

	// Gate: a non-migrated user's draw sequence is byte-identical to the
	// single-node run. Every user is non-migrated here (fixed membership);
	// the busiest one exercises the longest sequence, through and past
	// budget exhaustion.
	busiest := int64(-1)
	for uid, n := range perUser {
		if busiest < 0 || n > perUser[busiest] || (n == perUser[busiest] && uid < busiest) {
			busiest = uid
		}
	}
	wantDraws, _ := json.Marshal(singleStats.draws[busiest])
	gotDraws, _ := json.Marshal(clusterStats.draws[busiest])
	identical := bytes.Equal(wantDraws, gotDraws) && len(wantDraws) > 4
	if !identical {
		t.Errorf("uid %d draw sequence diverged between cluster and single-node replay", busiest)
	}

	scaling := clusterRate / singleRate
	rep := benchPR9Report{
		SingleNodeReqsPerSec: math.Round(singleRate),
		ClusterReqsPerSec:    math.Round(clusterRate),
		ScalingX:             math.Round(scaling*100) / 100,
		Nodes:                len(nodes),
		TraceRequests:        len(trace),
		Users:                len(perUser),
		LimitEps:             math.Round(limitEps*1000) / 1000,
		ClientRejections:     clusterStats.rejections,
		NodeRejections:       nodeRejections,
		OverspendUsers:       overspend,
		DrawsIdentical:       identical,
		PerNodeRequests:      perNodeReqs,
		PerNodeReqsPerSec:    perNodeRate,
		Methodology: "single-core container: per-node req/s measured sequentially over each node's " +
			"ring-owned trace partition and summed (the rate N nodes sustain on separate machines); " +
			"forwarded_out asserted 0, so the sum only survives if session affinity holds and " +
			"per-request router overhead stays small",
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_pr9: %s\n", data)
	if scaling < minScaling {
		t.Fatalf("3-node cluster sustained %.2fx the single-node rate (acceptance: >= %.1fx)", scaling, minScaling)
	}
}
