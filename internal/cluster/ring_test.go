package cluster

import (
	"testing"
)

func ringMembers(names ...string) []string { return names }

// TestRingDeterminism: member order must not matter — every node builds
// its ring from its own flag parse, and agreement on ownership is the
// whole coordination protocol.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(ringMembers("n1:1", "n2:1", "n3:1"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(ringMembers("n3:1", "n1:1", "n2:1"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for uid := int64(0); uid < 5000; uid++ {
		if a.Owner(uid) != b.Owner(uid) {
			t.Fatalf("uid %d: owner %q vs %q under member-order permutation", uid, a.Owner(uid), b.Owner(uid))
		}
	}
}

func TestRingRejectsBadMembers(t *testing.T) {
	if _, err := NewRing(nil, 0, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing(ringMembers("a", "a"), 0, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing(ringMembers("a", ""), 0, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
}

// TestRingBoundedLoad: with the bounded-load rebuild, no member's
// keyspace share may exceed maxLoad/N, and an empirical uid assignment
// should stay close to those shares.
func TestRingBoundedLoad(t *testing.T) {
	members := ringMembers("node-a:9001", "node-b:9001", "node-c:9001")
	r, err := NewRing(members, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := DefaultMaxLoadFactor / float64(len(members))
	for m, share := range r.Shares() {
		if share > bound+1e-12 {
			t.Fatalf("member %s keyspace share %.4f exceeds bounded-load cap %.4f (vnodes %d)", m, share, bound, r.Vnodes())
		}
	}

	const n = 30000
	counts := map[string]int{}
	for uid := int64(0); uid < n; uid++ {
		counts[r.Owner(uid)]++
	}
	for _, m := range members {
		frac := float64(counts[m]) / n
		if frac > bound*1.1 {
			t.Fatalf("member %s empirically owns %.4f of %d uids, above cap %.4f", m, frac, n, bound)
		}
		if counts[m] == 0 {
			t.Fatalf("member %s owns no uids", m)
		}
	}
}

// TestRingSequence: the failover sequence starts at the owner, visits
// every member exactly once, and is deterministic.
func TestRingSequence(t *testing.T) {
	members := ringMembers("a:1", "b:1", "c:1", "d:1")
	r, err := NewRing(members, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for uid := int64(0); uid < 200; uid++ {
		seq := r.Sequence(uid)
		if len(seq) != len(members) {
			t.Fatalf("uid %d: sequence %v misses members", uid, seq)
		}
		if seq[0] != r.Owner(uid) {
			t.Fatalf("uid %d: sequence starts at %s, owner is %s", uid, seq[0], r.Owner(uid))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("uid %d: member %s appears twice in %v", uid, m, seq)
			}
			seen[m] = true
		}
	}
}

// TestRingRebalanceBound is the scale-out contract (satellite: ring
// rebalance): adding a node moves only about 1/N of the users, and every
// moved user lands on the new node — nobody shuffles between surviving
// nodes, so a rebalance invalidates the minimum number of sessions.
func TestRingRebalanceBound(t *testing.T) {
	old3, err := NewRing(ringMembers("a:1", "b:1", "c:1"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	new4, err := NewRing(ringMembers("a:1", "b:1", "c:1", "d:1"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	moved := 0
	for uid := int64(0); uid < n; uid++ {
		was, is := old3.Owner(uid), new4.Owner(uid)
		if was == is {
			continue
		}
		moved++
		if is != "d:1" {
			t.Fatalf("uid %d moved %s -> %s: rebalance moved a user between surviving nodes", uid, was, is)
		}
	}
	// The new node's keyspace share is bounded by maxLoad/N; allow 10%
	// sampling slack on 20k uids.
	bound := DefaultMaxLoadFactor / 4 * 1.1
	if frac := float64(moved) / n; frac > bound {
		t.Fatalf("adding one node moved %.4f of users, want <= %.4f (~1/N)", frac, bound)
	}
	if moved == 0 {
		t.Fatal("adding a node moved no users at all")
	}

	// Removing a node: only its users move (onto survivors).
	for uid := int64(0); uid < n; uid++ {
		was, is := new4.Owner(uid), old3.Owner(uid)
		if was != is && was != "d:1" {
			t.Fatalf("uid %d moved %s -> %s on node removal: was not on the removed node", uid, was, is)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("127.0.0.1:9001=http://127.0.0.1:8001/, 127.0.0.1:9002,127.0.0.1:9003=127.0.0.1:8003")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("parsed %d peers", len(peers))
	}
	if peers[0].Name != "127.0.0.1:9001" || peers[0].HTTPURL != "http://127.0.0.1:8001" {
		t.Fatalf("peer 0: %+v", peers[0])
	}
	if peers[1].HTTPURL != "" {
		t.Fatalf("peer 1 should have no HTTP URL: %+v", peers[1])
	}
	if peers[2].HTTPURL != "http://127.0.0.1:8003" {
		t.Fatalf("peer 2 scheme not defaulted: %+v", peers[2])
	}
	if _, err := ParsePeers("a,a"); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, err := ParsePeers(" , "); err == nil {
		t.Fatal("empty list accepted")
	}
}
