// Three-node in-process cluster tests: forwarding, budget handoff on
// rebalance, and failover with recovery. External test package so it can
// assemble the same stack cmd/corgi-server wires (registry + stream
// server + router) without cluster importing its own consumers.
package cluster_test

import (
	"context"
	"net"
	"testing"
	"time"

	"corgi/internal/budget"
	"corgi/internal/cluster"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/registry"
	"corgi/internal/stream"
)

const testRegion = "ra"

func clusterSpec() []registry.Spec {
	return []registry.Spec{{
		Name:      testRegion,
		CenterLat: 37.765, CenterLng: -122.435,
		Height: 2, Iterations: 1, Targets: 3,
		UniformPriors: true,
	}}
}

// testNode is one in-process cluster member: its own registry (sessions,
// budget), stream server, and embedded router — exactly what one
// corgi-server process runs in cluster mode.
type testNode struct {
	name   string
	reg    *registry.Registry
	srv    *stream.Server
	router *cluster.Router
}

// shard returns the node's region shard (budget accountant lives on it).
func (n *testNode) shard(t *testing.T) *registry.Shard {
	t.Helper()
	sh, err := n.reg.Shard(context.Background(), testRegion)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// startCluster brings up n nodes. Listeners come first: their addresses
// are the ring member names, and every node gets the identical peer list
// — the same bootstrap order cmd/corgi-server follows with -cluster-peers.
func startCluster(t *testing.T, n int, opts registry.Options) []*testNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range listeners {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		addr := lis.Addr().String()
		peers[i] = cluster.Peer{Name: addr, StreamAddr: addr}
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		reg, err := registry.New(clusterSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := stream.NewServer(reg, stream.Config{})
		if err != nil {
			t.Fatal(err)
		}
		router, err := cluster.NewRouter(reg, peers[i].Name, peers, cluster.RouterConfig{})
		if err != nil {
			t.Fatal(err)
		}
		srv.SetHandler(router)
		go srv.Serve(listeners[i])
		node := &testNode{name: peers[i].Name, reg: reg, srv: srv, router: router}
		t.Cleanup(func() { node.srv.Close(); node.router.Close() })
		nodes[i] = node
	}
	return nodes
}

// uidOwnedBy finds a uid the ring assigns to want, starting from seed.
func uidOwnedBy(t *testing.T, ring *cluster.Ring, want string, seed int64) int64 {
	t.Helper()
	for uid := seed; uid < seed+10000; uid++ {
		if ring.Owner(uid) == want {
			return uid
		}
	}
	t.Fatalf("no uid owned by %s in 10000 tries", want)
	return 0
}

func reportReq(t *testing.T, n *testNode, uid int64) registry.ReportRequest {
	t.Helper()
	tree := n.shard(t).Server.Tree()
	leaf := tree.LevelNodes(0)[0]
	return registry.ReportRequest{
		Region: testRegion,
		Cell:   hexgrid.Coord{Q: leaf.Coord.Q, R: leaf.Coord.R},
		UID:    uid,
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   17,
		Count:  2,
	}
}

// TestClusterForwarding: a request entering at a non-owner node is
// forwarded one hop and served by the owner, with the counters attributing
// it correctly on both sides — and the draws are identical to what a
// single-node deployment would have produced for the same session.
func TestClusterForwarding(t *testing.T) {
	nodes := startCluster(t, 3, registry.Options{})
	ring := nodes[0].router.Ring()

	// A uid owned by node 1, entering at node 0.
	uid := uidOwnedBy(t, ring, nodes[1].name, 100)
	req := reportReq(t, nodes[0], uid)
	res, err := nodes[0].router.Report(context.Background(), req)
	if err != nil {
		t.Fatalf("forwarded report: %v", err)
	}
	gotReports := append([]loctree.NodeID(nil), res.Reports...)

	s0, s1 := nodes[0].router.Stats(), nodes[1].router.Stats()
	if s0.ForwardedOut != 1 || s0.OwnerServed != 0 {
		t.Fatalf("entry node stats: %+v", s0)
	}
	if s1.ForwardedIn != 1 {
		t.Fatalf("owner node stats: %+v", s1)
	}
	if s0.HTTPFallbacks != 0 {
		t.Fatalf("stream forward took the HTTP fallback: %+v", s0)
	}

	// The same session served by a standalone registry draws identically:
	// routing must not perturb the paper's deterministic replay property.
	ref, err := registry.New(clusterSpec(), registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Report(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Reports) != len(gotReports) {
		t.Fatalf("draw count %d vs single-node %d", len(gotReports), len(want.Reports))
	}
	for i := range want.Reports {
		if want.Reports[i] != gotReports[i] {
			t.Fatalf("draw %d: forwarded %v, single-node %v", i, gotReports[i], want.Reports[i])
		}
	}

	// Entering at the owner serves locally, no forward.
	if _, err := nodes[1].router.Report(context.Background(), reportReq(t, nodes[1], uid)); err != nil {
		t.Fatal(err)
	}
	if s1 := nodes[1].router.Stats(); s1.OwnerServed != 1 {
		t.Fatalf("owner-entry stats: %+v", s1)
	}
}

// TestClusterHandoffExactlyOnce is the rebalance contract (satellite:
// ring rebalance + budget): when ownership of a user moves, the first
// forwarded report carries the old owner's live spend exactly once — the
// new owner counts it (no reset), duplicates dedupe (no double charge),
// and subsequent forwards carry nothing.
func TestClusterHandoffExactlyOnce(t *testing.T) {
	opts := registry.Options{Budget: budget.Config{LimitEps: 1000, Window: time.Hour}}
	nodes := startCluster(t, 3, opts)
	fullRing := nodes[0].router.Ring()
	allPeers := make([]cluster.Peer, len(nodes))
	for i, n := range nodes {
		allPeers[i] = cluster.Peer{Name: n.name, StreamAddr: n.name}
	}

	// A uid the full ring assigns to node 1.
	uid := uidOwnedBy(t, fullRing, nodes[1].name, 500)

	// Shrink node 0's view to itself — the "before" topology in which
	// node 0 owns everyone — and let the user spend there.
	if err := nodes[0].router.SetMembers([]cluster.Peer{{Name: nodes[0].name, StreamAddr: nodes[0].name}}); err != nil {
		t.Fatal(err)
	}
	res, err := nodes[0].router.Report(context.Background(), reportReq(t, nodes[0], uid))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Budgeted || res.EpsSpent <= 0 {
		t.Fatalf("pre-move report not budgeted: %+v", res)
	}
	preSpend := nodes[0].shard(t).Budget.Spent(uid)
	if preSpend <= 0 {
		t.Fatal("no spend recorded before the move")
	}

	// Rebalance: node 0 learns the full membership; the uid's owner is
	// now node 1.
	if err := nodes[0].router.SetMembers(allPeers); err != nil {
		t.Fatal(err)
	}

	// First post-move report through node 0: forwarded with the handoff.
	res2, err := nodes[0].router.Report(context.Background(), reportReq(t, nodes[0], uid))
	if err != nil {
		t.Fatalf("post-move report: %v", err)
	}
	spent2 := res2.EpsSpent

	b0, b1 := nodes[0].shard(t).Budget, nodes[1].shard(t).Budget
	if wm := b1.HandoffsApplied(uid, nodes[0].name); wm != 1 {
		t.Fatalf("handoff applied %d times, want exactly 1", wm)
	}
	// No reset: the new owner counts old spend + its own charge.
	if got, want := b1.Spent(uid), preSpend+spent2; got != want {
		t.Fatalf("new owner counts %v, want %v (handoff %v + fresh %v)", got, want, preSpend, spent2)
	}
	// No double charge: the old owner's window is empty after the commit.
	if got := b0.Spent(uid); got != 0 {
		t.Fatalf("old owner still counts %v after handoff commit", got)
	}
	if s0 := nodes[0].router.Stats(); s0.HandoffsSent != 1 {
		t.Fatalf("handoffs sent %d, want 1", s0.HandoffsSent)
	}

	// Second post-move report: nothing left to hand off; the watermark
	// must not advance and the spend grows only by the new charge.
	res3, err := nodes[0].router.Report(context.Background(), reportReq(t, nodes[0], uid))
	if err != nil {
		t.Fatal(err)
	}
	if wm := b1.HandoffsApplied(uid, nodes[0].name); wm != 1 {
		t.Fatalf("second forward re-applied a handoff: watermark %d", wm)
	}
	if got, want := b1.Spent(uid), preSpend+spent2+res3.EpsSpent; got != want {
		t.Fatalf("spend after second forward %v, want %v", got, want)
	}
	if st := b1.Stats(); st.HandoffsImported != 1 {
		t.Fatalf("owner imported %d handoffs, want 1", st.HandoffsImported)
	}
}

// TestClusterFailoverAndRecovery: with the owner down, requests fail over
// along the ring sequence and keep being served; when the owner comes
// back (same address), traffic returns to it — the reconnect-backoff
// probe is what rediscovers it.
func TestClusterFailoverAndRecovery(t *testing.T) {
	nodes := startCluster(t, 3, registry.Options{})
	ring := nodes[0].router.Ring()
	uid := uidOwnedBy(t, ring, nodes[1].name, 900)

	// Kill the owner.
	if err := nodes[1].srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Requests entering at node 0 still succeed, attributed to failover.
	for i := 0; i < 3; i++ {
		if _, err := nodes[0].router.Report(context.Background(), reportReq(t, nodes[0], uid)); err != nil {
			t.Fatalf("report %d with owner down: %v", i, err)
		}
	}
	s0 := nodes[0].router.Stats()
	if s0.Failovers+s0.FailoverLocal < 3 {
		t.Fatalf("failover not attributed: %+v", s0)
	}
	if s0.Nodes[nodes[1].name].Healthy {
		t.Fatalf("dead owner still marked healthy: %+v", s0.Nodes[nodes[1].name])
	}

	// Revive the owner on its old address with a fresh stream server over
	// the same registry and router.
	lis, err := net.Listen("tcp", nodes[1].name)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", nodes[1].name, err)
	}
	srv2, err := stream.NewServer(nodes[1].reg, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv2.SetHandler(nodes[1].router)
	go srv2.Serve(lis)
	t.Cleanup(func() { srv2.Close() })

	// Traffic returns once node 0's breaker probes the recovered node:
	// the owner's forwarded-in counter starts moving again.
	before := nodes[1].router.Stats().ForwardedIn
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := nodes[0].router.Report(context.Background(), reportReq(t, nodes[0], uid)); err != nil {
			t.Fatalf("report during recovery: %v", err)
		}
		if nodes[1].router.Stats().ForwardedIn > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("traffic never returned to the recovered owner: %+v", nodes[0].router.Stats())
		}
		time.Sleep(100 * time.Millisecond)
	}
}
