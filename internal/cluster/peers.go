package cluster

import (
	"fmt"
	"strings"
)

// Peer names one cluster member and how to reach it: the corgi-stream
// address is the member's ring identity and primary forward transport;
// the HTTP base URL (optional) enables the JSON fallback path and peer
// store-snapshot fetches.
type Peer struct {
	// Name is the member's ring identity — the stream address, which every
	// node's flag list spells identically, so all rings agree.
	Name string
	// StreamAddr is the member's corgi-stream listener (host:port).
	StreamAddr string
	// HTTPURL is the member's HTTP base URL (e.g. http://host:8080); empty
	// disables the HTTP fallback and peer store fetch for this member.
	HTTPURL string
}

// ParsePeers parses the -cluster-peers flag value: comma-separated
// entries of the form "streamAddr" or "streamAddr=httpURL". The full
// member list (including the local node's own entry) must be identical on
// every node — member names are hashed into the ring, so the list IS the
// cluster topology.
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p := Peer{}
		if i := strings.IndexByte(part, '='); i >= 0 {
			p.StreamAddr, p.HTTPURL = part[:i], strings.TrimSuffix(part[i+1:], "/")
		} else {
			p.StreamAddr = part
		}
		if p.StreamAddr == "" {
			return nil, fmt.Errorf("cluster: peer entry %q has empty stream address", part)
		}
		if p.HTTPURL != "" && !strings.Contains(p.HTTPURL, "://") {
			p.HTTPURL = "http://" + p.HTTPURL
		}
		p.Name = p.StreamAddr
		if seen[p.Name] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p.Name)
		}
		seen[p.Name] = true
		peers = append(peers, p)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers in %q", spec)
	}
	return peers, nil
}
