package cluster

// The Router is the scale-out decision point, embedded in every node (no
// separate proxy binary — a proxy would be a second hop for every request
// AND a single point of failure). It implements registry.ReportHandler,
// so both transports (internal/proto's JSON routes and internal/stream's
// frame server) route every report/lease ask through it:
//
//   - owner-served: the ring says this node owns the uid → serve from the
//     embedded registry. The warm path: after the client's first request
//     lands on (or is redirected to) the owner, every subsequent draw is
//     node-local — sessions, RNG streams, and budget windows never cross
//     a node boundary, which is what makes throughput scale linearly.
//   - forwarded: another node owns the uid → relay over the peer's
//     corgi-stream connection pool (HTTP JSON fallback when the stream
//     transport fails), attaching this node's budget handoff for the user
//     so spend follows the user to its owner (internal/budget/handoff.go).
//   - failover: the owner (and any closer successor) is unreachable → the
//     ring's deterministic Sequence order names the stand-in every node
//     agrees on; when the walk reaches this node itself, serve locally.
//
// A request already marked Forwarded is always served locally: one
// forward maximum, so no routing loops and a bounded worst-case hop
// count (exactly one) regardless of topology disagreement during a
// membership change.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"corgi/internal/budget"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/registry"
	"corgi/internal/store"
	"corgi/internal/stream"
)

// RouterConfig tunes a cluster router.
type RouterConfig struct {
	// Vnodes and MaxLoadFactor parameterize the ring (see NewRing).
	Vnodes        int
	MaxLoadFactor float64
	// StreamTimeout bounds one forwarded exchange; DialTimeout one peer
	// dial (defaults 10s / 2s — forwards should fail over quickly).
	StreamTimeout time.Duration
	DialTimeout   time.Duration
	// HTTPTimeout bounds one HTTP-fallback round trip and one peer store
	// fetch (default 30s; snapshot payloads can be MBs).
	HTTPTimeout time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.StreamTimeout <= 0 {
		c.StreamTimeout = 10 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = 30 * time.Second
	}
	return c
}

// peerNode is one remote member's transport state.
type peerNode struct {
	peer   Peer
	client *stream.Client
}

// Router routes report and lease asks to their owner nodes. It is safe
// for concurrent use; SetMembers swaps the ring atomically under the
// same lock the request paths read it through.
type Router struct {
	self string
	reg  *registry.Registry
	cfg  RouterConfig

	mu    sync.RWMutex
	ring  *Ring
	peers map[string]*peerNode

	httpc *http.Client

	ownerServed   atomic.Uint64
	forwardedIn   atomic.Uint64
	forwardedOut  atomic.Uint64
	httpFallbacks atomic.Uint64
	failovers     atomic.Uint64
	failoverLocal atomic.Uint64
	handoffsSent  atomic.Uint64
	peerFetches   atomic.Uint64
	peerFetchMiss atomic.Uint64
}

// NewRouter builds the router for one node. self must be one of the
// members' names (every node lists the full cluster, itself included).
func NewRouter(reg *registry.Registry, self string, members []Peer, cfg RouterConfig) (*Router, error) {
	if reg == nil {
		return nil, fmt.Errorf("cluster: nil registry")
	}
	cfg = cfg.withDefaults()
	r := &Router{
		self:  self,
		reg:   reg,
		cfg:   cfg,
		httpc: &http.Client{Timeout: cfg.HTTPTimeout},
	}
	if err := r.SetMembers(members); err != nil {
		return nil, err
	}
	return r, nil
}

// Self returns this node's member name.
func (r *Router) Self() string { return r.self }

// SetMembers replaces the cluster topology: the ring is rebuilt over the
// new member list and peer transports are opened for new members and
// closed for removed ones. Every node must apply the same list — the
// ring is deterministic, so agreement on the list is agreement on
// ownership. Existing in-flight forwards finish on the old transports.
func (r *Router) SetMembers(members []Peer) error {
	names := make([]string, len(members))
	byName := make(map[string]Peer, len(members))
	selfFound := false
	for i, p := range members {
		names[i] = p.Name
		byName[p.Name] = p
		if p.Name == r.self {
			selfFound = true
		}
	}
	if !selfFound {
		return fmt.Errorf("cluster: self %q not in member list %v", r.self, names)
	}
	ring, err := NewRing(names, r.cfg.Vnodes, r.cfg.MaxLoadFactor)
	if err != nil {
		return err
	}
	peers := make(map[string]*peerNode, len(members)-1)
	r.mu.Lock()
	old := r.peers
	for name, p := range byName {
		if name == r.self {
			continue
		}
		if op, ok := old[name]; ok && op.peer == p {
			peers[name] = op // keep the warm connection pool
			continue
		}
		peers[name] = &peerNode{
			peer: p,
			client: stream.NewClient(p.StreamAddr, stream.ClientConfig{
				DialTimeout: r.cfg.DialTimeout,
				Timeout:     r.cfg.StreamTimeout,
			}),
		}
	}
	r.ring = ring
	r.peers = peers
	r.mu.Unlock()
	for name, op := range old {
		if _, kept := peers[name]; !kept {
			op.client.Close()
		}
	}
	return nil
}

// Ring returns the current ring (for stats and tests).
func (r *Router) Ring() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// Owner returns the member owning a uid under the current ring.
func (r *Router) Owner(uid int64) string { return r.Ring().Owner(uid) }

// Close shuts down the peer transports.
func (r *Router) Close() {
	r.mu.Lock()
	peers := r.peers
	r.peers = map[string]*peerNode{}
	r.mu.Unlock()
	for _, pn := range peers {
		pn.client.Close()
	}
}

// route resolves a uid to its serving decision under the current ring:
// the failover sequence and the peer transports, snapshotted together so
// a concurrent SetMembers cannot mix topologies mid-request.
func (r *Router) route(uid int64) ([]string, map[string]*peerNode) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Sequence(uid), r.peers
}

// exportHandoff moves the local accountant's live spend for (region, uid)
// into a handoff, returning the commit/rollback hooks bound to it. All
// three are nil/no-ops when there is nothing to hand off.
func (r *Router) exportHandoff(region string, uid int64) (h *budget.Handoff, commit, rollback func()) {
	sh, ok := r.reg.ShardIfReady(region)
	if !ok || sh.Budget == nil {
		return nil, nil, nil
	}
	h = sh.Budget.ExportHandoff(uid, r.self)
	if h == nil {
		return nil, nil, nil
	}
	acct, seq := sh.Budget, h.Seq
	r.handoffsSent.Add(1)
	return h, func() { acct.CommitHandoff(uid, seq) }, func() { acct.RollbackHandoff(uid, seq) }
}

// Report implements registry.ReportHandler: serve locally when this node
// owns (or is standing in for, or received a forward for) the uid,
// otherwise forward to the owner with the budget handoff attached.
func (r *Router) Report(ctx context.Context, req registry.ReportRequest) (*registry.ReportResult, error) {
	if req.Forwarded {
		// One hop maximum: a forwarded request is served here no matter
		// what this node's ring says (the sender's ring may be one
		// membership change ahead or behind — serving beats bouncing).
		r.forwardedIn.Add(1)
		return r.reg.Report(ctx, req)
	}
	seq, peers := r.route(req.UID)
	for i, member := range seq {
		if member == r.self {
			if i == 0 {
				r.ownerServed.Add(1)
			} else {
				r.failoverLocal.Add(1)
			}
			return r.reg.Report(ctx, req)
		}
		pn := peers[member]
		if pn == nil { // stale sequence during a SetMembers race: skip
			continue
		}
		res, err, final := r.forwardReport(pn, req)
		if final {
			return res, err
		}
		r.failovers.Add(1)
	}
	// Unreachable: self is always in its own ring, so the loop returns at
	// the self hop at the latest. Guard for defense in depth.
	r.failoverLocal.Add(1)
	return r.reg.Report(ctx, req)
}

// forwardReport relays one report to a peer: corgi-stream first, HTTP
// JSON fallback on a transport failure. final=false means both
// transports failed and the caller should try the next ring member.
func (r *Router) forwardReport(pn *peerNode, req registry.ReportRequest) (*registry.ReportResult, error, bool) {
	h, commit, rollback := r.exportHandoff(req.Region, req.UID)
	sreq := stream.Request{
		Region:    req.Region,
		Cell:      [2]int{req.Cell.Q, req.Cell.R},
		UID:       req.UID,
		Policy:    req.Policy,
		Seed:      req.Seed,
		Count:     req.Count,
		Forwarded: true,
		Handoff:   h,
	}
	resp, err := pn.client.Report(sreq)
	if err == nil {
		r.forwardedOut.Add(1)
		if commit != nil {
			commit()
		}
		return toReportResult(&req, resp), nil, true
	}
	var se *stream.StatusError
	if errors.As(err, &se) {
		// The peer answered: its classification (429, 422, ...) is the
		// request's real outcome, and any handoff it imported is applied
		// (import precedes validation), so the export commits. 404 means
		// the peer does not serve the region at all — also final: every
		// node runs the same region set, so a 404 is the client's error.
		r.forwardedOut.Add(1)
		if commit != nil {
			commit()
		}
		return nil, se, true
	}
	// Transport failure: the peer never processed the request. Restore
	// the exported spend, then try the HTTP fallback with a fresh export.
	if rollback != nil {
		rollback()
	}
	if pn.peer.HTTPURL == "" {
		return nil, err, false
	}
	res, err := r.forwardReportHTTP(pn, req)
	if err == nil {
		r.httpFallbacks.Add(1)
		r.forwardedOut.Add(1)
		return res, nil, true
	}
	var he *httpError
	if errors.As(err, &he) {
		r.httpFallbacks.Add(1)
		r.forwardedOut.Add(1)
		return nil, he, true
	}
	return nil, err, false
}

// Lease implements registry.ReportHandler's lease arm with the same
// routing as Report. Forwarding is stream-only — the lease frame carries
// the token and bundle natively; nodes whose stream transport is down
// fall over to the next ring member rather than to HTTP.
func (r *Router) Lease(ctx context.Context, req registry.LeaseRequest) (*registry.LeaseGrant, error) {
	if req.Forwarded {
		r.forwardedIn.Add(1)
		return r.reg.Lease(ctx, req)
	}
	seq, peers := r.route(req.UID)
	for i, member := range seq {
		if member == r.self {
			if i == 0 {
				r.ownerServed.Add(1)
			} else {
				r.failoverLocal.Add(1)
			}
			return r.reg.Lease(ctx, req)
		}
		pn := peers[member]
		if pn == nil {
			continue
		}
		h, commit, rollback := r.exportHandoff(req.Region, req.UID)
		sreq := stream.Request{
			Region:    req.Region,
			Cell:      [2]int{req.Cell.Q, req.Cell.R},
			UID:       req.UID,
			Policy:    req.Policy,
			Seed:      req.Seed,
			Forwarded: true,
			Handoff:   h,
		}
		grant, err := pn.client.Lease(sreq, req.Draws, req.Token)
		if err == nil {
			r.forwardedOut.Add(1)
			if commit != nil {
				commit()
			}
			return grant, nil
		}
		var se *stream.StatusError
		if errors.As(err, &se) {
			r.forwardedOut.Add(1)
			if commit != nil {
				commit()
			}
			return nil, se
		}
		if rollback != nil {
			rollback()
		}
		r.failovers.Add(1)
	}
	r.failoverLocal.Add(1)
	return r.reg.Lease(ctx, req)
}

// toReportResult converts a stream response back into the registry's
// result type for the relaying transport to re-encode. Node levels are
// reconstructed from the request policy (the wire sends coordinates
// only); centers round-tripped the stream's 32-bit fixed point (~5mm),
// which is the same representation a direct stream client would see.
func toReportResult(req *registry.ReportRequest, resp *stream.Response) *registry.ReportResult {
	res := &registry.ReportResult{
		Region: resp.Region,
		SubtreeRoot: loctree.NodeID{
			Level: req.Policy.PrivacyLevel,
			Coord: hexgrid.Coord{Q: resp.SubtreeRoot[0], R: resp.SubtreeRoot[1]},
		},
		PrecisionLevel: resp.PrecisionLevel,
		Pruned:         resp.Pruned,
		Reanchored:     resp.Reanchored,
		Budgeted:       resp.Budgeted,
		EpsSpent:       resp.EpsSpent,
		EpsRemaining:   resp.EpsRemaining,
		Degraded:       resp.Degraded,
		Reports:        make([]loctree.NodeID, len(resp.Reports)),
		Centers:        make([]geo.LatLng, len(resp.Reports)),
	}
	for i, rep := range resp.Reports {
		res.Reports[i] = loctree.NodeID{
			Level: resp.PrecisionLevel,
			Coord: hexgrid.Coord{Q: rep.Q, R: rep.R},
		}
		res.Centers[i] = geo.LatLng{Lat: rep.Lat, Lng: rep.Lng}
	}
	return res
}

// httpError is an HTTP-fallback rejection carrying the peer's status so
// registry.ReportErrStatus re-answers with it (same interface contract
// as stream.StatusError).
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("cluster: peer returned %d: %s", e.status, e.msg)
}
func (e *httpError) HTTPStatus() int { return e.status }

// fallbackReportRequest mirrors proto.ReportRequest's JSON shape (the
// cluster package cannot import internal/proto — proto imports cluster
// for the stats route).
type fallbackReportRequest struct {
	Region string `json:"region,omitempty"`
	Cell   [2]int `json:"cell"`
	UID    int64  `json:"uid,omitempty"`
	policy.Policy
	Seed      int64           `json:"seed,omitempty"`
	Count     int             `json:"count,omitempty"`
	Forwarded bool            `json:"forwarded,omitempty"`
	Handoff   *budget.Handoff `json:"budget_handoff,omitempty"`
}

// fallbackReportResponse mirrors proto.ReportResponse.
type fallbackReportResponse struct {
	Region         string `json:"region"`
	PrecisionLevel int    `json:"precision_l"`
	SubtreeRoot    [2]int `json:"subtree_root"`
	Pruned         int    `json:"pruned"`
	Reports        []struct {
		Q   int     `json:"q"`
		R   int     `json:"r"`
		Lat float64 `json:"lat"`
		Lng float64 `json:"lng"`
	} `json:"reports"`
	Reanchored   bool    `json:"reanchored,omitempty"`
	Budgeted     bool    `json:"budgeted,omitempty"`
	EpsSpent     float64 `json:"eps_spent,omitempty"`
	EpsRemaining float64 `json:"eps_remaining,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
}

// forwardReportHTTP relays one report over the peer's JSON route. A
// non-2xx answer returns *httpError (the peer processed the request); a
// transport error returns it bare (the caller fails over).
func (r *Router) forwardReportHTTP(pn *peerNode, req registry.ReportRequest) (*registry.ReportResult, error) {
	h, commit, rollback := r.exportHandoff(req.Region, req.UID)
	body, err := json.Marshal(fallbackReportRequest{
		Region:    req.Region,
		Cell:      [2]int{req.Cell.Q, req.Cell.R},
		UID:       req.UID,
		Policy:    req.Policy,
		Seed:      req.Seed,
		Count:     req.Count,
		Forwarded: true,
		Handoff:   h,
	})
	if err != nil {
		if rollback != nil {
			rollback()
		}
		return nil, err
	}
	resp, err := r.httpc.Post(pn.peer.HTTPURL+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		if rollback != nil {
			rollback()
		}
		return nil, err
	}
	defer resp.Body.Close()
	if commit != nil {
		commit() // the peer answered; import precedes validation
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, &httpError{status: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
	}
	var fr fallbackReportResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&fr); err != nil {
		return nil, &httpError{status: http.StatusBadGateway, msg: "decoding peer response: " + err.Error()}
	}
	res := &registry.ReportResult{
		Region: fr.Region,
		SubtreeRoot: loctree.NodeID{
			Level: req.Policy.PrivacyLevel,
			Coord: hexgrid.Coord{Q: fr.SubtreeRoot[0], R: fr.SubtreeRoot[1]},
		},
		PrecisionLevel: fr.PrecisionLevel,
		Pruned:         fr.Pruned,
		Reanchored:     fr.Reanchored,
		Budgeted:       fr.Budgeted,
		EpsSpent:       fr.EpsSpent,
		EpsRemaining:   fr.EpsRemaining,
		Degraded:       fr.Degraded,
		Reports:        make([]loctree.NodeID, len(fr.Reports)),
		Centers:        make([]geo.LatLng, len(fr.Reports)),
	}
	for i, rep := range fr.Reports {
		res.Reports[i] = loctree.NodeID{Level: fr.PrecisionLevel, Coord: hexgrid.Coord{Q: rep.Q, R: rep.R}}
		res.Centers[i] = geo.LatLng{Lat: rep.Lat, Lng: rep.Lng}
	}
	return res, nil
}

// FetchSnapshot implements the store's PeerFetchFunc: ask every peer
// with an HTTP endpoint for the snapshot's raw file bytes, first hit
// wins. The store validates the bytes (checksum + key match), so this
// path only needs to move them.
func (r *Router) FetchSnapshot(k store.Key) ([]byte, error) {
	r.mu.RLock()
	peers := make([]*peerNode, 0, len(r.peers))
	for _, pn := range r.peers {
		if pn.peer.HTTPURL != "" {
			peers = append(peers, pn)
		}
	}
	r.mu.RUnlock()
	for _, pn := range peers {
		u := pn.peer.HTTPURL + "/v1/store/snapshot?spec=" + url.QueryEscape(k.SpecHash) +
			"&level=" + strconv.Itoa(k.Level) + "&delta=" + strconv.Itoa(k.Delta)
		resp, err := r.httpc.Get(u)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			continue
		}
		r.peerFetches.Add(1)
		return raw, nil
	}
	r.peerFetchMiss.Add(1)
	return nil, store.ErrNotFound
}

// NodeStats is one peer transport's health snapshot.
type NodeStats struct {
	Healthy bool               `json:"healthy"`
	Stream  stream.ClientStats `json:"stream"`
}

// Stats is the router's /v1/stats cluster section.
type Stats struct {
	Self    string   `json:"self"`
	Members []string `json:"members"`
	Vnodes  int      `json:"vnodes"`
	// OwnerServed counts requests this node served as ring owner;
	// ForwardedIn requests relayed here by peers; ForwardedOut requests
	// this node relayed away (HTTPFallbacks of those over JSON);
	// Failovers forward attempts that moved on to the next ring member;
	// FailoverLocal requests served locally as a stand-in (owner down).
	OwnerServed   uint64 `json:"owner_served"`
	ForwardedIn   uint64 `json:"forwarded_in"`
	ForwardedOut  uint64 `json:"forwarded_out"`
	HTTPFallbacks uint64 `json:"http_fallbacks"`
	Failovers     uint64 `json:"failovers"`
	FailoverLocal uint64 `json:"failover_local"`
	// HandoffsSent counts budget handoffs exported onto forwards;
	// PeerFetches / PeerFetchMisses count store snapshot fetch outcomes.
	HandoffsSent    uint64 `json:"handoffs_sent"`
	PeerFetches     uint64 `json:"peer_fetches"`
	PeerFetchMisses uint64 `json:"peer_fetch_misses"`
	// Nodes is each remote member's transport health.
	Nodes map[string]NodeStats `json:"nodes"`
}

// Stats snapshots the router's counters.
func (r *Router) Stats() Stats {
	r.mu.RLock()
	ring := r.ring
	nodes := make(map[string]NodeStats, len(r.peers))
	for name, pn := range r.peers {
		nodes[name] = NodeStats{Healthy: pn.client.Healthy(), Stream: pn.client.Stats()}
	}
	r.mu.RUnlock()
	return Stats{
		Self:            r.self,
		Members:         ring.Members(),
		Vnodes:          ring.Vnodes(),
		OwnerServed:     r.ownerServed.Load(),
		ForwardedIn:     r.forwardedIn.Load(),
		ForwardedOut:    r.forwardedOut.Load(),
		HTTPFallbacks:   r.httpFallbacks.Load(),
		Failovers:       r.failovers.Load(),
		FailoverLocal:   r.failoverLocal.Load(),
		HandoffsSent:    r.handoffsSent.Load(),
		PeerFetches:     r.peerFetches.Load(),
		PeerFetchMisses: r.peerFetchMiss.Load(),
		Nodes:           nodes,
	}
}
