// Package graphx implements the paper's graph approximation (Sec. 4.2,
// Fig. 4): users' planar mobility over a finite hex-cell region is
// approximated by a weighted graph connecting each cell to its 6 immediate
// neighbors (center distance a) and its 6 diagonal neighbors (center
// distance sqrt(3)*a). Enforcing epsilon-Geo-Ind only on graph edges and
// relying on transitivity (Theorem 4.1) reduces the LP constraint count
// from O(K^3) to O(12*K^2)·(1/K)... i.e. O(K^2) rows.
//
// A note on Lemma 4.1: with edge weights equal to Euclidean center
// distances, the graph distance d_G is necessarily >= the Euclidean
// distance (triangle inequality), with a worst-case lattice stretch of
// Stretch ≈ 1.0353 at headings 15° off a lattice direction. Transitivity
// therefore yields the slightly weaker bound z_i/z_j <= exp(eps*d_G(i,j))
// for non-adjacent pairs. The paper treats d_G ≈ d; we expose both
// behaviours: WeightPaper keeps the paper's weights, WeightExact divides
// every edge weight by Stretch so that d_G/Stretch <= d holds for all pairs
// on the unbounded lattice, restoring the strict all-pairs guarantee at a
// small utility cost. The ext-approx-quality experiment quantifies the gap.
package graphx

import (
	"container/heap"
	"fmt"
	"math"

	"corgi/internal/hexgrid"
)

// Stretch is the worst-case ratio d_G / d_Euclid for the 12-neighbor hex
// lattice: cos(15°) + (2-sqrt(3))*sin(15°).
var Stretch = math.Cos(math.Pi/12) + (2-math.Sqrt(3))*math.Sin(math.Pi/12)

// WeightMode selects how edge weights map to Geo-Ind budgets.
type WeightMode int

// Weight modes.
const (
	// WeightPaper uses true center distances as edge weights (the paper's
	// construction).
	WeightPaper WeightMode = iota
	// WeightExact divides edge weights by Stretch, making the neighbor-pair
	// constraints a sufficient condition for all-pairs epsilon-Geo-Ind on
	// the lattice.
	WeightExact
)

// Edge is an undirected graph edge between node indices From < To with the
// (possibly mode-scaled) weight W in km and the true center distance Dist.
type Edge struct {
	From, To int
	W        float64
	Dist     float64
	Diagonal bool
}

// Graph is the 12-neighbor approximation graph over a finite cell set.
type Graph struct {
	coords []hexgrid.Coord
	index  map[hexgrid.Coord]int
	edges  []Edge
	adj    [][]halfEdge
}

type halfEdge struct {
	to int32
	w  float64
}

// Build constructs the graph over the given same-level cells. dist returns
// the center distance (km) between two cells. Duplicate cells are an error.
// Cells with no neighbors inside the set yield a disconnected graph, which
// Build permits; callers that require connectivity should check Connected.
func Build(cells []hexgrid.Coord, dist func(a, b hexgrid.Coord) float64, mode WeightMode) (*Graph, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("graphx: empty cell set")
	}
	g := &Graph{
		coords: append([]hexgrid.Coord(nil), cells...),
		index:  make(map[hexgrid.Coord]int, len(cells)),
		adj:    make([][]halfEdge, len(cells)),
	}
	for i, c := range g.coords {
		if _, dup := g.index[c]; dup {
			return nil, fmt.Errorf("graphx: duplicate cell %v", c)
		}
		g.index[c] = i
	}
	scale := 1.0
	if mode == WeightExact {
		scale = 1 / Stretch
	}
	add := func(i int, c, n hexgrid.Coord, diag bool) {
		j, ok := g.index[n]
		if !ok || j <= i { // each undirected edge once, from the lower index
			return
		}
		d := dist(c, n)
		e := Edge{From: i, To: j, W: d * scale, Dist: d, Diagonal: diag}
		g.edges = append(g.edges, e)
		g.adj[i] = append(g.adj[i], halfEdge{to: int32(j), w: e.W})
		g.adj[j] = append(g.adj[j], halfEdge{to: int32(i), w: e.W})
	}
	for i, c := range g.coords {
		for _, n := range hexgrid.Neighbors(c) {
			add(i, c, n, false)
		}
		for _, n := range hexgrid.DiagonalNeighbors(c) {
			add(i, c, n, true)
		}
	}
	return g, nil
}

// NumNodes returns the number of cells.
func (g *Graph) NumNodes() int { return len(g.coords) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the undirected edge list. The slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Coord returns the cell of node i.
func (g *Graph) Coord(i int) hexgrid.Coord { return g.coords[i] }

// IndexOf returns the node index of a cell.
func (g *Graph) IndexOf(c hexgrid.Coord) (int, bool) {
	i, ok := g.index[c]
	return i, ok
}

// Degree returns the number of neighbors of node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	if len(g.coords) == 0 {
		return false
	}
	seen := make([]bool, len(g.coords))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, he := range g.adj[v] {
			if !seen[he.to] {
				seen[he.to] = true
				count++
				stack = append(stack, int(he.to))
			}
		}
	}
	return count == len(g.coords)
}

// ShortestFrom returns d_G(src, ·) by Dijkstra. Unreachable nodes get +Inf.
func (g *Graph) ShortestFrom(src int) []float64 {
	n := len(g.coords)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{node: int32(src), d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, he := range g.adj[it.node] {
			nd := it.d + he.w
			if nd < dist[he.to] {
				dist[he.to] = nd
				heap.Push(pq, distItem{node: he.to, d: nd})
			}
		}
	}
	return dist
}

// AllShortest returns the full d_G matrix (n x n) via repeated Dijkstra.
func (g *Graph) AllShortest() [][]float64 {
	out := make([][]float64, len(g.coords))
	for i := range out {
		out[i] = g.ShortestFrom(i)
	}
	return out
}

type distItem struct {
	node int32
	d    float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// ConstraintCount returns the number of Geo-Ind inequality rows an LP over
// K cells needs, with and without the graph approximation, as compared in
// Fig. 10(b). Without: one row per ordered pair (i,j), i != j, per
// obfuscated column l => K^2*(K-1). With: one row per ordered neighbor
// pair per column => 2*|E|*K.
func ConstraintCount(k, numEdges int) (without, with int) {
	return k * k * (k - 1), 2 * numEdges * k
}
