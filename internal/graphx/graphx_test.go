package graphx

import (
	"math"
	"testing"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
)

func testDist(t *testing.T) (func(a, b hexgrid.Coord) float64, *hexgrid.System) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.5)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return func(a, b hexgrid.Coord) float64 {
		return sys.CenterXY(0, a).Dist(sys.CenterXY(0, b))
	}, sys
}

func TestBuildValidation(t *testing.T) {
	dist, _ := testDist(t)
	if _, err := Build(nil, dist, WeightPaper); err == nil {
		t.Error("empty cell set must fail")
	}
	cells := []hexgrid.Coord{{Q: 0, R: 0}, {Q: 0, R: 0}}
	if _, err := Build(cells, dist, WeightPaper); err == nil {
		t.Error("duplicate cells must fail")
	}
}

func TestGraphStructureOnDisk(t *testing.T) {
	dist, _ := testDist(t)
	cells := hexgrid.Disk(hexgrid.Coord{}, 3) // 37 cells
	g, err := Build(cells, dist, WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 37 {
		t.Errorf("NumNodes = %d, want 37", g.NumNodes())
	}
	if !g.Connected() {
		t.Error("disk graph must be connected")
	}
	// The center cell has all 12 neighbors inside the disk.
	ci, ok := g.IndexOf(hexgrid.Coord{})
	if !ok {
		t.Fatal("center not indexed")
	}
	if g.Degree(ci) != 12 {
		t.Errorf("center degree = %d, want 12", g.Degree(ci))
	}
	// Immediate edges have weight ~a, diagonal ~sqrt(3)a.
	a := 0.5
	for _, e := range g.Edges() {
		want := a
		if e.Diagonal {
			want = math.Sqrt(3) * a
		}
		if math.Abs(e.W-want) > 1e-9 {
			t.Errorf("edge %d-%d weight %v, want %v", e.From, e.To, e.W, want)
		}
		if e.From >= e.To {
			t.Errorf("edge %d-%d not normalized", e.From, e.To)
		}
		if e.W != e.Dist {
			t.Errorf("paper mode must keep W == Dist")
		}
	}
}

func TestWeightExactMode(t *testing.T) {
	dist, _ := testDist(t)
	cells := hexgrid.Disk(hexgrid.Coord{}, 2)
	gp, err := Build(cells, dist, WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := Build(cells, dist, WeightExact)
	if err != nil {
		t.Fatal(err)
	}
	if gp.NumEdges() != ge.NumEdges() {
		t.Fatal("edge counts differ across modes")
	}
	for i, ep := range gp.Edges() {
		ee := ge.Edges()[i]
		if math.Abs(ee.W-ep.W/Stretch) > 1e-12 {
			t.Errorf("exact weight %v, want %v/Stretch", ee.W, ep.W)
		}
		if ee.Dist != ep.Dist {
			t.Error("Dist must be mode independent")
		}
	}
}

func TestStretchValue(t *testing.T) {
	// cos(15°) + (2-sqrt(3))sin(15°) ≈ 1.03528
	if math.Abs(Stretch-1.035276) > 1e-5 {
		t.Errorf("Stretch = %v", Stretch)
	}
}

func TestShortestPathsBasics(t *testing.T) {
	dist, _ := testDist(t)
	cells := hexgrid.Disk(hexgrid.Coord{}, 3)
	g, err := Build(cells, dist, WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := g.IndexOf(hexgrid.Coord{})
	d := g.ShortestFrom(ci)
	if d[ci] != 0 {
		t.Errorf("self distance %v", d[ci])
	}
	// Immediate neighbor: a. Diagonal: sqrt(3)a (single diagonal edge,
	// shorter than two immediate hops 2a).
	a := 0.5
	ni, _ := g.IndexOf(hexgrid.Coord{Q: 1, R: 0})
	if math.Abs(d[ni]-a) > 1e-9 {
		t.Errorf("immediate neighbor d_G = %v, want %v", d[ni], a)
	}
	di, _ := g.IndexOf(hexgrid.Coord{Q: 1, R: 1})
	if math.Abs(d[di]-math.Sqrt(3)*a) > 1e-9 {
		t.Errorf("diagonal neighbor d_G = %v, want %v", d[di], math.Sqrt(3)*a)
	}
	// Straight line of 3 immediate hops.
	fi, _ := g.IndexOf(hexgrid.Coord{Q: 3, R: 0})
	if math.Abs(d[fi]-3*a) > 1e-9 {
		t.Errorf("3-hop straight d_G = %v, want %v", d[fi], 3*a)
	}
}

func TestShortestPathsVsEuclidStretch(t *testing.T) {
	// d_Euclid <= d_G <= Stretch * d_Euclid for all pairs in a convex disk.
	dist, sys := testDist(t)
	cells := hexgrid.Disk(hexgrid.Coord{}, 4)
	g, err := Build(cells, dist, WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	all := g.AllShortest()
	for i := 0; i < g.NumNodes(); i++ {
		for j := 0; j < g.NumNodes(); j++ {
			if i == j {
				continue
			}
			eu := sys.CenterXY(0, g.Coord(i)).Dist(sys.CenterXY(0, g.Coord(j)))
			dg := all[i][j]
			if dg < eu-1e-9 {
				t.Fatalf("pair %d-%d: d_G %v < Euclid %v (impossible)", i, j, dg, eu)
			}
			if dg > Stretch*eu+1e-9 {
				t.Fatalf("pair %d-%d: d_G %v > Stretch*Euclid %v", i, j, dg, Stretch*eu)
			}
		}
	}
}

func TestExactModeGuarantee(t *testing.T) {
	// With WeightExact, d_G(scaled) <= d_Euclid for all pairs: the property
	// the paper's Lemma 4.1 needs.
	dist, sys := testDist(t)
	cells := hexgrid.Disk(hexgrid.Coord{}, 4)
	g, err := Build(cells, dist, WeightExact)
	if err != nil {
		t.Fatal(err)
	}
	all := g.AllShortest()
	for i := 0; i < g.NumNodes(); i++ {
		for j := i + 1; j < g.NumNodes(); j++ {
			eu := sys.CenterXY(0, g.Coord(i)).Dist(sys.CenterXY(0, g.Coord(j)))
			if all[i][j] > eu+1e-9 {
				t.Fatalf("pair %d-%d: scaled d_G %v > Euclid %v", i, j, all[i][j], eu)
			}
		}
	}
}

func TestShortestSymmetry(t *testing.T) {
	dist, _ := testDist(t)
	cells := hexgrid.Disk(hexgrid.Coord{}, 3)
	g, err := Build(cells, dist, WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	all := g.AllShortest()
	for i := range all {
		for j := range all {
			if math.Abs(all[i][j]-all[j][i]) > 1e-9 {
				t.Fatalf("asymmetric d_G at %d,%d", i, j)
			}
		}
	}
}

func TestDisconnectedGraph(t *testing.T) {
	dist, _ := testDist(t)
	cells := []hexgrid.Coord{{Q: 0, R: 0}, {Q: 10, R: 10}}
	g, err := Build(cells, dist, WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Error("far-apart cells must be disconnected")
	}
	d := g.ShortestFrom(0)
	if !math.IsInf(d[1], 1) {
		t.Errorf("unreachable distance = %v, want +Inf", d[1])
	}
}

func TestConstraintCount(t *testing.T) {
	without, with := ConstraintCount(49, 240)
	if without != 49*49*48 {
		t.Errorf("without = %d", without)
	}
	if with != 2*240*49 {
		t.Errorf("with = %d", with)
	}
	// The approximation must be a large reduction at paper scale.
	if with >= without {
		t.Error("approximation must reduce constraints")
	}
}

func TestIndexOfMiss(t *testing.T) {
	dist, _ := testDist(t)
	g, err := Build([]hexgrid.Coord{{Q: 0, R: 0}}, dist, WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.IndexOf(hexgrid.Coord{Q: 5, R: 5}); ok {
		t.Error("foreign cell must not be found")
	}
	if g.NumEdges() != 0 {
		t.Error("single cell has no edges")
	}
}
