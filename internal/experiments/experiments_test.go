package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig9", "fig10a", "fig10b", "fig11", "fig12", "fig13", "fig14",
		"headline", "ext-planar", "ext-attack", "ext-budget", "ext-rpbvariant", "ext-approx-quality"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("registry[%d] = %s, want %s", i, ids[i], id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
		if Describe(id) == "" {
			t.Errorf("Describe(%s) empty", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown id must not resolve")
	}
	if Describe("nope") != "" {
		t.Error("unknown id must describe empty")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}, {"333", "4"}}}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestFig10bCountsExactly validates the pure-counting experiment fully.
func TestFig10bCountsExactly(t *testing.T) {
	tabs, err := Fig10b(&Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != 7 {
		t.Fatalf("unexpected shape: %+v", tabs)
	}
	for _, row := range tabs[0].Rows {
		k, _ := strconv.Atoi(row[0])
		without, _ := strconv.Atoi(row[1])
		with, _ := strconv.Atoi(row[2])
		if without != k*k*(k-1) {
			t.Errorf("K=%d: without = %d, want %d", k, without, k*k*(k-1))
		}
		if with >= without && k > 13 {
			t.Errorf("K=%d: approximation did not reduce constraints", k)
		}
	}
}

// TestExtBudgetSoundness checks the approximation dominates the exact
// budget on real matrices (Prop. 4.5).
func TestExtBudgetSoundness(t *testing.T) {
	tabs, err := ExtBudget(&Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		if row[4] != "true" {
			t.Errorf("approx < exact for delta=%s", row[0])
		}
	}
}

// TestHeadlineShape verifies the core robustness claim end to end: the
// robust matrix must violate (strictly) less than the non-robust one.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("headline experiment skipped in -short")
	}
	tabs, err := Headline(&Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	corgi, _ := strconv.ParseFloat(rows[0][1], 64)
	plain, _ := strconv.ParseFloat(rows[1][1], 64)
	if corgi >= plain {
		t.Errorf("CORGI violations %.3f%% not below non-robust %.3f%%", corgi, plain)
	}
	if plain <= 0 {
		t.Error("non-robust matrix should violate after pruning")
	}
}

// TestFig12Shape verifies violations grow with pruning and CORGI stays
// below the baseline at the delta it was built for.
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 skipped in -short")
	}
	tabs, err := Fig12(&Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		first := tab.Rows[0]
		last := tab.Rows[len(tab.Rows)-1]
		nrFirst, _ := strconv.ParseFloat(first[1], 64)
		nrLast, _ := strconv.ParseFloat(last[1], 64)
		if nrLast < nrFirst {
			t.Errorf("%s: non-robust violations should grow with pruning: %v -> %v", tab.ID, nrFirst, nrLast)
		}
		// At small prune counts CORGI must beat the baseline.
		corgiFirst, _ := strconv.ParseFloat(first[2], 64)
		if corgiFirst > nrFirst {
			t.Errorf("%s: CORGI %.3f%% above baseline %.3f%% at 1 pruned", tab.ID, corgiFirst, nrFirst)
		}
	}
}
