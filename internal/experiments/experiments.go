// Package experiments regenerates every figure of the paper's evaluation
// (Sec. 6, Figs. 9-14) plus the extension studies listed in DESIGN.md. Each
// experiment is a named Runner producing printable tables; cmd/
// corgi-experiments drives them, and bench_test.go wraps them as testing.B
// benchmarks.
//
// Scale notes: the harness defaults to "quick" settings sized for a single
// core (fewer Algorithm-1 rounds, fewer Monte-Carlo repeats); Full restores
// paper-scale sweeps. Leaf cells are 0.1 km apart so that the paper's
// epsilon axis (15-20 km^-1) lands in the regime where Geo-Ind constraints
// bind (eps*d in [1.5, 3.5]); see EXPERIMENTS.md for the calibration
// discussion.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"corgi/internal/attack"
	"corgi/internal/budget"
	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/graphx"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
	"corgi/internal/planar"
)

// Config tunes a run.
type Config struct {
	Quick bool  // reduced repeats/rounds (default mode for the harness)
	Seed  int64 // master seed; 0 means 1
}

func (c *Config) seed() int64 {
	if c == nil || c.Seed == 0 {
		return 1
	}
	return c.Seed
}

func (c *Config) quick() bool { return c == nil || c.Quick }

// Table is one printable result series.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Runner produces an experiment's tables.
type Runner func(cfg *Config) ([]*Table, error)

// registryEntry pairs an id with its runner and description.
type registryEntry struct {
	ID   string
	Desc string
	Run  Runner
}

// Registry lists every experiment in presentation order.
var Registry = []registryEntry{
	{"fig9", "Convergence of quality loss over Algorithm-1 iterations (delta=2,4)", Fig9},
	{"fig10a", "Matrix generation time with vs without graph approximation", Fig10a},
	{"fig10b", "Geo-Ind constraint counts with vs without graph approximation", Fig10b},
	{"fig11", "Quality loss vs epsilon for non-robust vs CORGI (delta=1..3)", Fig11},
	{"fig12", "Geo-Ind violations vs number of pruned locations", Fig12},
	{"fig13", "Quality loss vs privacy level (obfuscation range)", Fig13},
	{"fig14", "Precision reduction vs matrix recalculation runtime", Fig14},
	{"headline", "Abstract headline: prune 14.28% -> violation rates", Headline},
	{"ext-planar", "Extension: planar Laplace baseline comparison", ExtPlanar},
	{"ext-attack", "Extension: Bayesian adversary inference error", ExtAttack},
	{"ext-budget", "Extension: exact vs approximate reserved budget", ExtBudget},
	{"ext-rpbvariant", "Extension: RPB row-i (proof) vs row-j (printed) variants", ExtRPBVariant},
	{"ext-approx-quality", "Extension: quality cost of the graph approximation", ExtApproxQuality},
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, len(Registry))
	for i, e := range Registry {
		out[i] = e.ID
	}
	return out
}

// Describe returns the description for an id.
func Describe(id string) string {
	for _, e := range Registry {
		if e.ID == id {
			return e.Desc
		}
	}
	return ""
}

// env is the shared experimental setup: the SF region, a height-3 tree
// (343 leaves, as in the paper), synthetic Gowalla priors, and NR_TARGET
// target locations.
type env struct {
	sys     *hexgrid.System
	tree    *loctree.Tree
	priors  *loctree.Priors
	train   []gowalla.CheckIn
	test    []gowalla.CheckIn
	targets []geo.LatLng
	tprobs  []float64
	seed    int64
}

const (
	leafSpacingKm = 0.1
	nrTarget      = 49
	epsDefault    = 15.0
)

func newEnv(cfg *Config) (*env, error) {
	seed := cfg.seed()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), leafSpacingKm)
	if err != nil {
		return nil, err
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 3)
	if err != nil {
		return nil, err
	}
	ds, err := gowalla.Generate(gowalla.GenConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	// 90/10 split (Sec. 6.2.3): priors from train, user locations from test.
	train, test, err := gowalla.SplitTrainTest(ds.CheckIns, 0.9, seed)
	if err != nil {
		return nil, err
	}
	// Check-ins land across the whole SF box; the tree covers only its
	// center. That matches the paper's approach of indexing an area of
	// interest; priors are smoothed so every leaf is usable.
	leaf, err := gowalla.LeafPriors(train, tree, 1)
	if err != nil {
		return nil, err
	}
	priors, err := loctree.NewPriors(tree, leaf)
	if err != nil {
		return nil, err
	}
	e := &env{sys: sys, tree: tree, priors: priors, train: train, test: test, seed: seed}

	// NR_TARGET targets drawn from the K=49 cluster's leaves so every
	// instance size shares the same service locations.
	cluster, err := tree.ClusterLeaves(7)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1000))
	perm := rng.Perm(len(cluster))[:nrTarget]
	sort.Ints(perm)
	for _, idx := range perm {
		e.targets = append(e.targets, tree.Center(cluster[idx]))
		e.tprobs = append(e.tprobs, 1)
	}
	return e, nil
}

// instance builds a core.Instance over ClusterLeaves(m) — K = 7m cells.
func (e *env) instance(m int) (*core.Instance, []loctree.NodeID, error) {
	leaves, err := e.tree.ClusterLeaves(m)
	if err != nil {
		return nil, nil, err
	}
	cells := make([]hexgrid.Coord, len(leaves))
	for i, l := range leaves {
		cells[i] = l.Coord
	}
	pr, err := e.priors.Subset(e.tree, leaves, true)
	if err != nil {
		return nil, nil, err
	}
	inst, err := core.NewInstance(e.sys, cells, pr, e.targets, e.tprobs, graphx.WeightPaper)
	if err != nil {
		return nil, nil, err
	}
	return inst, leaves, nil
}

func f(v float64) string  { return fmt.Sprintf("%.4f", v) }
func f6(v float64) string { return fmt.Sprintf("%.6f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func ms(t time.Duration) string {
	return fmt.Sprintf("%.1f", float64(t.Microseconds())/1000.0)
}

// Fig9 reproduces Fig. 9: the objective value (quality loss) after each
// Algorithm-1 iteration and its successive differences, for delta = 2 and
// delta = 4, at K = 49, eps = 15.
func Fig9(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	iters, repeats := 15, 3
	if cfg.quick() {
		iters, repeats = 8, 1
	}
	objTab := &Table{ID: "fig9ab", Title: "quality loss per iteration (Fig. 9a/b)",
		Header: []string{"delta", "repeat", "iteration", "quality_loss_km"}}
	diffTab := &Table{ID: "fig9cd", Title: "difference of quality loss in consecutive iterations (Fig. 9c/d)",
		Header: []string{"delta", "repeat", "iteration", "loss_diff_km"}}
	for _, delta := range []int{2, 4} {
		for rep := 0; rep < repeats; rep++ {
			inst, _, err := e.instance(7)
			if err != nil {
				return nil, err
			}
			res, err := inst.Generate(core.Params{
				Epsilon: epsDefault, Delta: delta, Iterations: iters, UseGraphApprox: true,
			})
			if err != nil {
				return nil, err
			}
			for it, loss := range res.Trace {
				objTab.Rows = append(objTab.Rows, []string{d(delta), d(rep + 1), d(it), f6(loss)})
				if it > 0 {
					diffTab.Rows = append(diffTab.Rows,
						[]string{d(delta), d(rep + 1), d(it), f6(loss - res.Trace[it-1])})
				}
			}
		}
	}
	return []*Table{objTab, diffTab}, nil
}

// Fig10a reproduces Fig. 10(a): robust-matrix generation time with and
// without the graph approximation, for increasing delta.
func Fig10a(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	deltas := []int{1, 2, 3, 4, 5, 6, 7}
	iters, m := 10, 7 // K = 49
	if cfg.quick() {
		deltas = []int{1, 3, 5}
		iters, m = 3, 3 // K = 21 keeps the full-constraint runs tractable
	}
	tab := &Table{ID: "fig10a", Title: "running time (s) of robust matrix generation (Fig. 10a)",
		Header: []string{"delta", "with_approx_s", "without_approx_s", "speedup"}}
	for _, delta := range deltas {
		inst, _, err := e.instance(m)
		if err != nil {
			return nil, err
		}
		with, err := inst.Generate(core.Params{Epsilon: epsDefault, Delta: delta,
			Iterations: iters, UseGraphApprox: true})
		if err != nil {
			return nil, err
		}
		without, err := inst.Generate(core.Params{Epsilon: epsDefault, Delta: delta,
			Iterations: iters, UseGraphApprox: false})
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			d(delta),
			fmt.Sprintf("%.3f", with.Elapsed.Seconds()),
			fmt.Sprintf("%.3f", without.Elapsed.Seconds()),
			fmt.Sprintf("%.2fx", without.Elapsed.Seconds()/with.Elapsed.Seconds()),
		})
	}
	return []*Table{tab}, nil
}

// Fig10b reproduces Fig. 10(b): the number of Geo-Ind constraints with and
// without the approximation as the location count grows.
func Fig10b(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	tab := &Table{ID: "fig10b", Title: "number of Geo-Ind constraints (Fig. 10b)",
		Header: []string{"locations", "without_approx", "with_approx", "reduction_pct"}}
	for m := 1; m <= 7; m++ {
		inst, _, err := e.instance(m)
		if err != nil {
			return nil, err
		}
		k := inst.K()
		without := len(inst.AllPairs()) * k
		with := len(inst.NeighborPairs()) * k
		tab.Rows = append(tab.Rows, []string{
			d(k), d(without), d(with),
			fmt.Sprintf("%.2f", 100*(1-float64(with)/float64(without))),
		})
	}
	return []*Table{tab}, nil
}

// Fig11 reproduces Fig. 11: quality loss vs epsilon for the non-robust
// baseline and CORGI with delta = 1, 2, 3.
func Fig11(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	epsList := []float64{15, 16, 17, 18}
	iters := 10
	if cfg.quick() {
		iters = 4
	}
	tab := &Table{ID: "fig11", Title: "quality loss (km) vs epsilon (Fig. 11)",
		Header: []string{"epsilon", "non_robust", "corgi_d1", "corgi_d2", "corgi_d3"}}
	for _, eps := range epsList {
		inst, _, err := e.instance(7)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.0f", eps)}
		nr, err := inst.Generate(core.Params{Epsilon: eps, UseGraphApprox: true})
		if err != nil {
			return nil, err
		}
		row = append(row, f6(nr.QualityLoss))
		for _, delta := range []int{1, 2, 3} {
			res, err := inst.Generate(core.Params{Epsilon: eps, Delta: delta,
				Iterations: iters, UseGraphApprox: true})
			if err != nil {
				return nil, err
			}
			row = append(row, f6(res.QualityLoss))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return []*Table{tab}, nil
}

// pruneTrial prunes n random locations from a matrix and reports the
// violation rate over the surviving constraint pairs.
func pruneTrial(m *obf.Matrix, pairs []obf.Pair, eps float64, n int, rng *rand.Rand) (float64, bool) {
	s := rng.Perm(m.Dim())[:n]
	pm, keep, err := m.Prune(s)
	if err != nil {
		return 0, false // a row lost all mass: skip trial
	}
	newIdx := make(map[int]int, len(keep))
	for ni, oi := range keep {
		newIdx[oi] = ni
	}
	var surviving []obf.Pair
	for _, p := range pairs {
		ni, iok := newIdx[p.I]
		nj, jok := newIdx[p.J]
		if iok && jok {
			surviving = append(surviving, obf.Pair{I: ni, J: nj, Dist: p.Dist})
		}
	}
	rep := pm.CheckGeoInd(surviving, eps, 1e-6)
	return rep.Percent(), true
}

// violationSweep runs the Fig. 12 protocol for one matrix.
func violationSweep(m *obf.Matrix, pairs []obf.Pair, eps float64, maxPrune, trials int, rng *rand.Rand) []float64 {
	out := make([]float64, maxPrune)
	for n := 1; n <= maxPrune; n++ {
		sum, ok := 0.0, 0
		for t := 0; t < trials; t++ {
			if v, valid := pruneTrial(m, pairs, eps, n, rng); valid {
				sum += v
				ok++
			}
		}
		if ok > 0 {
			out[n-1] = sum / float64(ok)
		}
	}
	return out
}

// Fig12 reproduces Fig. 12: percentage of violated Geo-Ind constraints vs
// the number of pruned locations, CORGI vs non-robust, for (a) delta = 3 at
// K = 49 and (b) delta = 5 at K = 70.
func Fig12(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	trials, iters := 500, 10
	if cfg.quick() {
		trials, iters = 40, 4
	}
	var tables []*Table
	for _, setup := range []struct {
		name  string
		m     int
		delta int
	}{
		{"fig12a", 7, 3},  // 49 locations, delta=3
		{"fig12b", 10, 5}, // 70 locations, delta=5
	} {
		inst, _, err := e.instance(setup.m)
		if err != nil {
			return nil, err
		}
		// Violation audits need vertex (optimal) solutions: early-stopped
		// mixtures leave Geo-Ind constraints slack and pruning-immune,
		// hiding the robustness effect under test.
		robust, err := inst.Generate(core.Params{Epsilon: epsDefault, Delta: setup.delta,
			Iterations: iters, UseGraphApprox: true})
		if err != nil {
			return nil, err
		}
		plain, err := inst.Generate(core.Params{Epsilon: epsDefault, UseGraphApprox: true})
		if err != nil {
			return nil, err
		}
		pairs := inst.NeighborPairs()
		rng := rand.New(rand.NewSource(e.seed + int64(setup.m)))
		corgiV := violationSweep(robust.Matrix, pairs, epsDefault, 10, trials, rng)
		plainV := violationSweep(plain.Matrix, pairs, epsDefault, 10, trials, rng)
		tab := &Table{ID: setup.name,
			Title:  fmt.Sprintf("%% violated Geo-Ind constraints, K=%d delta=%d (Fig. 12)", inst.K(), setup.delta),
			Header: []string{"pruned", "non_robust_pct", "corgi_pct"}}
		for n := 1; n <= 10; n++ {
			tab.Rows = append(tab.Rows, []string{d(n), f(plainV[n-1]), f(corgiV[n-1])})
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

// Fig13 reproduces Fig. 13: quality loss for a wider vs narrower
// obfuscation range. The paper compares privacy level 3 (343 leaves) with
// level 2 (49); at single-core scale we compare level 2 (49) with level 1
// (7) — the shape (wider range => higher loss, loss falls with eps, rises
// with delta) is the claim under test. See DESIGN.md §3.4.
func Fig13(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	iters := 6
	if cfg.quick() {
		iters = 3
	}
	gen := func(m, delta int, eps float64) (float64, error) {
		inst, _, err := e.instance(m)
		if err != nil {
			return 0, err
		}
		p := core.Params{Epsilon: eps, Delta: delta, Iterations: iters, UseGraphApprox: true}
		if delta == 0 {
			p.Iterations = 0
		}
		res, err := inst.Generate(p)
		if err != nil {
			return 0, err
		}
		return res.QualityLoss, nil
	}
	tabA := &Table{ID: "fig13a", Title: "quality loss vs epsilon by privacy level (Fig. 13a; delta=2)",
		Header: []string{"epsilon", "privacy_level_low(K=7)", "privacy_level_high(K=49)"}}
	for _, eps := range []float64{15, 16, 17, 18, 19} {
		lo, err := gen(1, 2, eps)
		if err != nil {
			return nil, err
		}
		hi, err := gen(7, 2, eps)
		if err != nil {
			return nil, err
		}
		tabA.Rows = append(tabA.Rows, []string{fmt.Sprintf("%.0f", eps), f6(lo), f6(hi)})
	}
	tabB := &Table{ID: "fig13b", Title: "quality loss vs delta by privacy level (Fig. 13b; eps=15)",
		Header: []string{"delta", "privacy_level_low(K=7)", "privacy_level_high(K=49)"}}
	for _, delta := range []int{1, 2, 3, 4, 5} {
		lo, err := gen(1, delta, epsDefault)
		if err != nil {
			return nil, err
		}
		hi, err := gen(7, delta, epsDefault)
		if err != nil {
			return nil, err
		}
		tabB.Rows = append(tabB.Rows, []string{d(delta), f6(lo), f6(hi)})
	}
	return []*Table{tabA, tabB}, nil
}

// Fig14 reproduces Fig. 14: the running time of obtaining a coarser-level
// matrix by precision reduction vs recalculating it from scratch, (a) as
// the location count grows and (b) as delta grows.
func Fig14(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{4, 5, 6, 7, 8, 9, 10} // K = 28..70
	iters := 5
	if cfg.quick() {
		sizes = []int{4, 6, 8, 10}
		iters = 2
	}
	tabA := &Table{ID: "fig14a", Title: "precision reduction vs matrix recalculation (Fig. 14a)",
		Header: []string{"locations", "recalculation_ms", "reduction_ms", "ratio"}}
	for _, m := range sizes {
		inst, leaves, err := e.instance(m)
		if err != nil {
			return nil, err
		}
		base, err := inst.Generate(core.Params{Epsilon: epsDefault, UseGraphApprox: true})
		if err != nil {
			return nil, err
		}
		// Reduction: leaf matrix -> level-1 matrix via Equ. (17).
		groups, _, err := groupLeavesByParent(e.tree, leaves)
		if err != nil {
			return nil, err
		}
		leafPr := make([]float64, len(leaves))
		for i, l := range leaves {
			leafPr[i] = e.priors.Of(e.tree, l)
		}
		t0 := time.Now()
		if _, err := obf.PrecisionReduce(base.Matrix, groups, leafPr); err != nil {
			return nil, err
		}
		reduceT := time.Since(t0)
		// Recalculation: solve the LP over the m level-1 cells directly.
		recalcT, err := recalcAtLevel1(e, leaves, m)
		if err != nil {
			return nil, err
		}
		tabA.Rows = append(tabA.Rows, []string{
			d(inst.K()), ms(recalcT), ms(reduceT),
			fmt.Sprintf("%.0fx", float64(recalcT)/float64(reduceT+1)),
		})
	}
	tabB := &Table{ID: "fig14b", Title: "precision reduction vs recalculation as delta grows (Fig. 14b; K=49)",
		Header: []string{"delta", "recalculation_ms", "reduction_ms"}}
	deltas := []int{1, 2, 3, 4, 5, 6, 7}
	if cfg.quick() {
		deltas = []int{1, 3, 5, 7}
	}
	inst, leaves, err := e.instance(7)
	if err != nil {
		return nil, err
	}
	groups, _, err := groupLeavesByParent(e.tree, leaves)
	if err != nil {
		return nil, err
	}
	leafPr := make([]float64, len(leaves))
	for i, l := range leaves {
		leafPr[i] = e.priors.Of(e.tree, l)
	}
	for _, delta := range deltas {
		res, err := inst.Generate(core.Params{Epsilon: epsDefault, Delta: delta,
			Iterations: iters, UseGraphApprox: true})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := obf.PrecisionReduce(res.Matrix, groups, leafPr); err != nil {
			return nil, err
		}
		reduceT := time.Since(t0)
		tabB.Rows = append(tabB.Rows, []string{
			d(delta), ms(res.Elapsed), ms(reduceT),
		})
	}
	return []*Table{tabA, tabB}, nil
}

func groupLeavesByParent(tree *loctree.Tree, leaves []loctree.NodeID) ([][]int, []loctree.NodeID, error) {
	order := make([]loctree.NodeID, 0)
	groups := map[loctree.NodeID][]int{}
	for i, leaf := range leaves {
		anc, ok := tree.AncestorAt(leaf, 1)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: leaf %v has no level-1 ancestor", leaf)
		}
		if _, seen := groups[anc]; !seen {
			order = append(order, anc)
		}
		groups[anc] = append(groups[anc], i)
	}
	out := make([][]int, len(order))
	for gi, anc := range order {
		out[gi] = groups[anc]
	}
	return out, order, nil
}

func recalcAtLevel1(e *env, leaves []loctree.NodeID, m int) (time.Duration, error) {
	_, parents, err := groupLeavesByParent(e.tree, leaves)
	if err != nil {
		return 0, err
	}
	cells := make([]hexgrid.Coord, len(parents))
	pr := make([]float64, len(parents))
	for i, p := range parents {
		cells[i] = p.Coord
		pr[i] = e.priors.Of(e.tree, p)
	}
	if len(cells) < 2 {
		return 0, fmt.Errorf("experiments: recalculation needs >= 2 cells")
	}
	inst, err := core.NewInstanceLevel(e.sys, 1, cells, pr, e.targets, e.tprobs, graphx.WeightPaper)
	if err != nil {
		return 0, err
	}
	res, err := inst.Generate(core.Params{Epsilon: epsDefault, UseGraphApprox: true})
	if err != nil {
		return 0, err
	}
	_ = m
	return res.Elapsed, nil
}

// Headline reproduces the abstract's claim: pruning 14.28% of locations
// (7 of 49) causes few violations in CORGI's matrix vs many in the
// non-robust one.
func Headline(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	iters, trials := 10, 200
	if cfg.quick() {
		iters, trials = 5, 50
	}
	inst, _, err := e.instance(7)
	if err != nil {
		return nil, err
	}
	robust, err := inst.Generate(core.Params{Epsilon: epsDefault, Delta: 3,
		Iterations: iters, UseGraphApprox: true})
	if err != nil {
		return nil, err
	}
	plain, err := inst.Generate(core.Params{Epsilon: epsDefault, UseGraphApprox: true})
	if err != nil {
		return nil, err
	}
	pairs := inst.NeighborPairs()
	rng := rand.New(rand.NewSource(e.seed + 99))
	sumR, sumP, okN := 0.0, 0.0, 0
	for t := 0; t < trials; t++ {
		s := rng.Perm(inst.K())[:7]
		r, ok1 := pruneTrialWith(robust.Matrix, pairs, epsDefault, s)
		p, ok2 := pruneTrialWith(plain.Matrix, pairs, epsDefault, s)
		if ok1 && ok2 {
			sumR += r
			sumP += p
			okN++
		}
	}
	tab := &Table{ID: "headline", Title: "pruning 7/49 locations (14.28%): violation rates",
		Header: []string{"mechanism", "violations_pct", "paper_reported_pct"}}
	tab.Rows = append(tab.Rows,
		[]string{"CORGI (delta=3)", f(sumR / float64(okN)), "3.07"},
		[]string{"non-robust", f(sumP / float64(okN)), "18.58"},
	)
	return []*Table{tab}, nil
}

func pruneTrialWith(m *obf.Matrix, pairs []obf.Pair, eps float64, s []int) (float64, bool) {
	pm, keep, err := m.Prune(s)
	if err != nil {
		return 0, false
	}
	newIdx := make(map[int]int, len(keep))
	for ni, oi := range keep {
		newIdx[oi] = ni
	}
	var surviving []obf.Pair
	for _, p := range pairs {
		ni, iok := newIdx[p.I]
		nj, jok := newIdx[p.J]
		if iok && jok {
			surviving = append(surviving, obf.Pair{I: ni, J: nj, Dist: p.Dist})
		}
	}
	return pm.CheckGeoInd(surviving, eps, 1e-6).Percent(), true
}

// ExtPlanar compares CORGI's LP-optimal matrices against the discretized
// planar Laplace mechanism at matched epsilon.
func ExtPlanar(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	samples := 4000
	if cfg.quick() {
		samples = 1000
	}
	inst, _, err := e.instance(3) // K=21
	if err != nil {
		return nil, err
	}
	tab := &Table{ID: "ext-planar", Title: "CORGI vs planar Laplace (K=21)",
		Header: []string{"epsilon", "corgi_loss_km", "laplace_loss_km", "laplace_viol_pct"}}
	centers := make([]geo.XY, inst.K())
	proj := geo.NewProjection(geo.SanFrancisco.Center())
	for i, c := range inst.Centers() {
		centers[i] = proj.Forward(c)
	}
	for _, eps := range []float64{15, 17, 19} {
		res, err := inst.Generate(core.Params{Epsilon: eps, UseGraphApprox: true})
		if err != nil {
			return nil, err
		}
		mech, err := planar.New(eps)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(e.seed + int64(eps)))
		rows, err := mech.EmpiricalMatrix(centers, samples, rng)
		if err != nil {
			return nil, err
		}
		lm, err := obf.FromRows(rows)
		if err != nil {
			return nil, err
		}
		lloss, err := inst.QualityLoss(lm)
		if err != nil {
			return nil, err
		}
		lrep := lm.CheckGeoInd(inst.NeighborPairs(), eps, 1e-6)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f", eps), f6(res.QualityLoss), f6(lloss), f(lrep.Percent()),
		})
	}
	return []*Table{tab}, nil
}

// ExtAttack measures the Bayesian adversary's expected inference error
// against non-robust, robust, and pruned matrices.
func ExtAttack(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	iters := 6
	if cfg.quick() {
		iters = 3
	}
	inst, _, err := e.instance(3) // K=21
	if err != nil {
		return nil, err
	}
	plain, err := inst.Generate(core.Params{Epsilon: epsDefault, UseGraphApprox: true})
	if err != nil {
		return nil, err
	}
	robust, err := inst.Generate(core.Params{Epsilon: epsDefault, Delta: 3,
		Iterations: iters, UseGraphApprox: true})
	if err != nil {
		return nil, err
	}
	dist := func(i, j int) float64 { return inst.Dist(i, j) }
	prior := inst.Priors()
	tab := &Table{ID: "ext-attack", Title: "Bayesian adversary expected inference error (km, higher = more private)",
		Header: []string{"mechanism", "inference_error_km", "after_prune3_km"}}
	rng := rand.New(rand.NewSource(e.seed + 5))
	pruneSet := rng.Perm(inst.K())[:3]
	for _, row := range []struct {
		name string
		m    *obf.Matrix
	}{{"non-robust", plain.Matrix}, {"CORGI delta=3", robust.Matrix}} {
		before, err := attack.RemapError(prior, row.m, dist)
		if err != nil {
			return nil, err
		}
		after, err := attack.PrunedRemapError(prior, row.m, dist, pruneSet)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{row.name, f6(before), f6(after)})
	}
	return []*Table{tab}, nil
}

// ExtBudget compares the exact reserved budget (Equ. 12, exhaustive) with
// the approximation (Equ. 14) on a small instance.
func ExtBudget(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	inst, _, err := e.instance(1) // K=7
	if err != nil {
		return nil, err
	}
	res, err := inst.Generate(core.Params{Epsilon: epsDefault, UseGraphApprox: true})
	if err != nil {
		return nil, err
	}
	m := res.Matrix
	tab := &Table{ID: "ext-budget", Title: "reserved privacy budget: exact (Equ. 12) vs approximate (Equ. 14)",
		Header: []string{"delta", "mean_exact", "mean_approx", "max_gap", "approx_ge_exact"}}
	pairs := inst.NeighborPairs()
	for _, delta := range []int{1, 2} {
		sumE, sumA, maxGap := 0.0, 0.0, 0.0
		holds := true
		for _, p := range pairs {
			ex, err := budget.ExactPair(m.Row(p.I), m.Row(p.J), p.I, p.J, p.Dist, delta)
			if err != nil {
				return nil, err
			}
			ap, err := budget.ApproxPair(m.Row(p.I), m.Row(p.J), p.I, p.J, p.Dist, epsDefault, delta, budget.VariantProof)
			if err != nil {
				return nil, err
			}
			sumE += ex
			sumA += ap
			if gap := ap - ex; gap > maxGap {
				maxGap = gap
			}
			if ap < ex-1e-9 {
				holds = false
			}
		}
		n := float64(len(pairs))
		tab.Rows = append(tab.Rows, []string{
			d(delta), f(sumE / n), f(sumA / n), f(maxGap), fmt.Sprintf("%v", holds),
		})
	}
	return []*Table{tab}, nil
}

// ExtRPBVariant compares the proof (row-i) and printed (row-j) forms of
// Equ. (14) by the violation rates of the matrices they produce.
func ExtRPBVariant(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	iters, trials := 6, 100
	if cfg.quick() {
		iters, trials = 3, 30
	}
	inst, _, err := e.instance(3) // K=21
	if err != nil {
		return nil, err
	}
	tab := &Table{ID: "ext-rpbvariant", Title: "RPB variant ablation (delta=3, prune 3, K=21)",
		Header: []string{"variant", "quality_loss_km", "violations_after_prune_pct"}}
	pairs := inst.NeighborPairs()
	for _, v := range []struct {
		name string
		v    budget.Variant
	}{{"proof (row i)", budget.VariantProof}, {"printed (row j)", budget.VariantPrinted}} {
		res, err := inst.Generate(core.Params{Epsilon: epsDefault, Delta: 3,
			Iterations: iters, UseGraphApprox: true, BudgetVariant: v.v})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(e.seed + 11))
		sum, ok := 0.0, 0
		for t := 0; t < trials; t++ {
			if val, valid := pruneTrial(res.Matrix, pairs, epsDefault, 3, rng); valid {
				sum += val
				ok++
			}
		}
		tab.Rows = append(tab.Rows, []string{v.name, f6(res.QualityLoss), f(sum / float64(ok))})
	}
	return []*Table{tab}, nil
}

// ExtApproxQuality measures the quality-loss premium of the graph
// approximation and audits approximation-generated matrices against the
// full pairwise constraint set (the lattice-stretch effect, DESIGN §4).
func ExtApproxQuality(cfg *Config) ([]*Table, error) {
	e, err := newEnv(cfg)
	if err != nil {
		return nil, err
	}
	sizes := []int{1, 2}
	if !cfg.quick() {
		sizes = []int{1, 2, 3}
	}
	tab := &Table{ID: "ext-approx-quality", Title: "graph approximation: loss premium and all-pairs audit",
		Header: []string{"locations", "full_loss_km", "approx_loss_km", "premium_pct", "allpairs_viol_pct"}}
	for _, m := range sizes {
		inst, _, err := e.instance(m)
		if err != nil {
			return nil, err
		}
		full, err := inst.Generate(core.Params{Epsilon: epsDefault, UseGraphApprox: false})
		if err != nil {
			return nil, err
		}
		approx, err := inst.Generate(core.Params{Epsilon: epsDefault, UseGraphApprox: true})
		if err != nil {
			return nil, err
		}
		rep := approx.Matrix.CheckGeoInd(inst.AllPairs(), epsDefault, 1e-6)
		premium := 0.0
		if full.QualityLoss > 0 {
			premium = 100 * (approx.QualityLoss - full.QualityLoss) / full.QualityLoss
		}
		tab.Rows = append(tab.Rows, []string{
			d(inst.K()), f6(full.QualityLoss), f6(approx.QualityLoss),
			f(premium), f(rep.Percent()),
		})
	}
	return []*Table{tab}, nil
}
