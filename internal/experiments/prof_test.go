package experiments

import (
	"fmt"
	"testing"
	"time"

	"corgi/internal/core"
)

func TestProfileSolves(t *testing.T) {
	e, err := newEnv(&Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{3, 7} {
		inst, _, err := e.instance(m)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		res, err := inst.Generate(core.Params{Epsilon: 15, UseGraphApprox: true})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("K=%d nonrobust: %v loss=%.5f iters=%d\n", inst.K(), time.Since(t0), res.QualityLoss, res.LPIterations)
		t0 = time.Now()
		res, err = inst.Generate(core.Params{Epsilon: 15, Delta: 3, Iterations: 2, UseGraphApprox: true})
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("K=%d robust t2: %v trace=%v\n", inst.K(), time.Since(t0), res.Trace)
	}
}
