// End-to-end transport tests. This is an external test package so it can
// drive both wires against live servers: internal/proto imports
// internal/stream (for /v1/stats), so comparing the two transports from
// inside package stream would be an import cycle.
package stream_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"corgi/internal/budget"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/proto"
	"corgi/internal/registry"
	"corgi/internal/stream"
)

func streamSpecs(names ...string) []registry.Spec {
	specs := make([]registry.Spec, len(names))
	for i, name := range names {
		specs[i] = registry.Spec{
			Name:      name,
			CenterLat: 37.765 + float64(i),
			CenterLng: -122.435,
			Height:    2, Iterations: 1, Targets: 3,
			UniformPriors: true,
		}
	}
	return specs
}

func newRegistry(t *testing.T, opts registry.Options, names ...string) *registry.Registry {
	t.Helper()
	reg, err := registry.New(streamSpecs(names...), opts)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// startStream serves a stream server for reg on a loopback port.
func startStream(t *testing.T, reg *registry.Registry, cfg stream.Config) (*stream.Server, string) {
	t.Helper()
	srv, err := stream.NewServer(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

func leaves(t *testing.T, reg *registry.Registry, region string) (*loctree.Tree, []loctree.NodeID) {
	t.Helper()
	sh, err := reg.Shard(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	tree := sh.Server.Tree()
	return tree, tree.LevelNodes(0)
}

func TestStreamReportRoundTrip(t *testing.T) {
	reg := newRegistry(t, registry.Options{}, "ra", "rb")
	srv, addr := startStream(t, reg, stream.Config{})
	_, leafNodes := leaves(t, reg, "ra")
	leaf := leafNodes[0]

	c := stream.NewClient(addr, stream.ClientConfig{Timeout: 10 * time.Second})
	defer c.Close()
	resp, err := c.Report(stream.Request{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   7,
		Count:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Region != "ra" || len(resp.Reports) != 5 || resp.PrecisionLevel != 0 {
		t.Fatalf("response: %+v", resp)
	}
	for _, rep := range resp.Reports {
		if rep.Lat == 0 && rep.Lng == 0 {
			t.Fatalf("report without a center: %+v", rep)
		}
	}

	// The unnamed region aliases the default, matching the HTTP routes.
	if resp, err = c.Report(stream.Request{
		Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, Policy: policy.Policy{PrivacyLevel: 1},
	}); err != nil || resp.Region != "ra" {
		t.Fatalf("default region: %+v, %v", resp, err)
	}

	st := srv.Stats()
	if st.Handshakes != 1 || st.Reports != 2 || st.ConnsTotal != 1 {
		t.Fatalf("server stats: %+v", st)
	}
}

// TestStreamTrajectoryEquivalence is the cross-transport acceptance
// property: the same seeded trajectory — including a re-anchoring subtree
// crossing — drawn in-process, over HTTP+JSON, and over the stream yields
// the identical (q, r) draw sequence, with stream centers matching to the
// 32-bit fixed-point quantization (~5 mm).
func TestStreamTrajectoryEquivalence(t *testing.T) {
	const (
		seed  = int64(1337)
		uid   = int64(3)
		count = 4
	)
	pol := policy.Policy{PrivacyLevel: 1}

	type draw struct {
		q, r     int
		lat, lng float64
	}

	// Each transport gets its own fresh registry: sessions are stateful,
	// so sharing one registry would continue a single RNG stream across
	// transports instead of replaying it three times.
	movesOf := func(reg *registry.Registry) []loctree.NodeID {
		tree, _ := leaves(t, reg, "ra")
		leafA := tree.LeavesUnder(tree.LevelNodes(1)[0])[0]
		leafB := tree.LeavesUnder(tree.LevelNodes(1)[1])[0]
		return []loctree.NodeID{leafA, leafA, leafB, leafA}
	}

	// In-process: the registry pipeline directly.
	var inproc []draw
	{
		reg := newRegistry(t, registry.Options{}, "ra")
		for i, leaf := range movesOf(reg) {
			res, err := reg.Report(context.Background(), registry.ReportRequest{
				Region: "ra", Cell: leaf.Coord, UID: uid,
				Policy: pol, Seed: seed, Count: count,
			})
			if err != nil {
				t.Fatalf("in-proc move %d: %v", i, err)
			}
			for j, n := range res.Reports {
				c := res.Centers[j]
				inproc = append(inproc, draw{n.Coord.Q, n.Coord.R, c.Lat, c.Lng})
			}
		}
	}

	// HTTP+JSON: POST /v1/report.
	var overHTTP []draw
	{
		reg := newRegistry(t, registry.Options{}, "ra")
		h, err := proto.NewMultiHandler(reg)
		if err != nil {
			t.Fatal(err)
		}
		hsrv := httptest.NewServer(h.Mux())
		t.Cleanup(hsrv.Close)
		c := proto.NewRegionClient(hsrv.URL, "ra")
		for i, leaf := range movesOf(reg) {
			resp, err := c.Report(proto.ReportRequest{
				Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, UID: uid,
				Policy: pol, Seed: seed, Count: count,
			})
			if err != nil {
				t.Fatalf("http move %d: %v", i, err)
			}
			for _, rep := range resp.Reports {
				overHTTP = append(overHTTP, draw{rep.Q, rep.R, rep.Lat, rep.Lng})
			}
		}
	}

	// Stream: REPORT frames on one persistent connection.
	var overStream []draw
	{
		reg := newRegistry(t, registry.Options{}, "ra")
		_, addr := startStream(t, reg, stream.Config{})
		c := stream.NewClient(addr, stream.ClientConfig{Timeout: 10 * time.Second, Region: "ra"})
		defer c.Close()
		for i, leaf := range movesOf(reg) {
			resp, err := c.Report(stream.Request{
				Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, UID: uid,
				Policy: pol, Seed: seed, Count: count,
			})
			if err != nil {
				t.Fatalf("stream move %d: %v", i, err)
			}
			wantReanchor := i == 2 || i == 3
			if resp.Reanchored != wantReanchor {
				t.Fatalf("stream move %d: reanchored = %v, want %v", i, resp.Reanchored, wantReanchor)
			}
			for _, rep := range resp.Reports {
				overStream = append(overStream, draw{rep.Q, rep.R, rep.Lat, rep.Lng})
			}
		}
	}

	if len(inproc) != len(overHTTP) || len(inproc) != len(overStream) {
		t.Fatalf("draw counts: in-proc %d, http %d, stream %d",
			len(inproc), len(overHTTP), len(overStream))
	}
	for i := range inproc {
		if overHTTP[i] != inproc[i] {
			// JSON carries float64 exactly; any difference is a real bug.
			t.Fatalf("draw %d: http %+v != in-proc %+v", i, overHTTP[i], inproc[i])
		}
		if overStream[i].q != inproc[i].q || overStream[i].r != inproc[i].r {
			t.Fatalf("draw %d: stream cell (%d,%d) != in-proc (%d,%d)",
				i, overStream[i].q, overStream[i].r, inproc[i].q, inproc[i].r)
		}
		if math.Abs(overStream[i].lat-inproc[i].lat) > 1e-6 ||
			math.Abs(overStream[i].lng-inproc[i].lng) > 1e-6 {
			t.Fatalf("draw %d: stream center (%v,%v) vs in-proc (%v,%v)",
				i, overStream[i].lat, overStream[i].lng, inproc[i].lat, inproc[i].lng)
		}
	}
}

// TestStreamBatchPartialFailureMatchesHTTP sends one REPORTS frame mixing
// a budget-exhausted user, an unknown region, a malformed cell, and a
// valid item, and requires per-item statuses, messages, and payload
// presence to match the HTTP batch route on an identically prepared
// server exactly.
func TestStreamBatchPartialFailureMatchesHTTP(t *testing.T) {
	const eps = 15.0 // registry default epsilon for specs that leave it zero
	budgeted := registry.Options{Budget: budget.Config{LimitEps: 2 * eps, Window: time.Hour}}

	// Two identically configured registries, identically primed: uid 21
	// spends its whole window, so its batch item must answer 429.
	prime := func(reg *registry.Registry, leaf loctree.NodeID) {
		t.Helper()
		for i := 0; i < 2; i++ {
			if _, err := reg.Report(context.Background(), registry.ReportRequest{
				Region: "ra", Cell: leaf.Coord, UID: 21,
				Policy: policy.Policy{PrivacyLevel: 1}, Seed: 9, Count: 1,
			}); err != nil {
				t.Fatalf("prime %d: %v", i, err)
			}
		}
	}
	type item struct {
		region string
		cell   [2]int
		uid    int64
	}
	itemsOf := func(leaf loctree.NodeID) []item {
		good := [2]int{leaf.Coord.Q, leaf.Coord.R}
		return []item{
			{"ra", good, 21},              // budget exhausted  -> 429
			{"nowhere", good, 7},          // unknown region    -> 404
			{"ra", [2]int{9999, 9999}, 7}, // cell outside tree -> 422
			{"ra", good, 22},              // valid             -> 200
		}
	}

	regHTTP := newRegistry(t, budgeted, "ra")
	_, leafNodes := leaves(t, regHTTP, "ra")
	leaf := leafNodes[0]
	prime(regHTTP, leaf)
	h, err := proto.NewMultiHandler(regHTTP)
	if err != nil {
		t.Fatal(err)
	}
	hsrv := httptest.NewServer(h.Mux())
	t.Cleanup(hsrv.Close)
	hc := proto.NewClient(hsrv.URL)
	httpItems := make([]proto.ReportRequest, 0, 4)
	for _, it := range itemsOf(leaf) {
		httpItems = append(httpItems, proto.ReportRequest{
			Region: it.region, Cell: it.cell, UID: it.uid,
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: 9, Count: 1,
		})
	}
	httpResp, err := hc.ReportBatch(httpItems)
	if err != nil {
		t.Fatal(err)
	}

	regStream := newRegistry(t, budgeted, "ra")
	prime(regStream, leaf)
	_, addr := startStream(t, regStream, stream.Config{})
	sc := stream.NewClient(addr, stream.ClientConfig{Timeout: 10 * time.Second})
	defer sc.Close()
	streamItems := make([]stream.Request, 0, 4)
	for _, it := range itemsOf(leaf) {
		streamItems = append(streamItems, stream.Request{
			Region: it.region, Cell: it.cell, UID: it.uid,
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: 9, Count: 1,
		})
	}
	streamResp, err := sc.ReportBatch(streamItems)
	if err != nil {
		t.Fatal(err)
	}

	wantStatus := []int{429, 404, 422, 200}
	if len(httpResp.Items) != 4 || len(streamResp) != 4 {
		t.Fatalf("item counts: http %d, stream %d", len(httpResp.Items), len(streamResp))
	}
	for i := range wantStatus {
		hi, si := httpResp.Items[i], streamResp[i]
		if hi.Status != wantStatus[i] || si.Status != wantStatus[i] {
			t.Fatalf("item %d: http %d, stream %d, want %d", i, hi.Status, si.Status, wantStatus[i])
		}
		if hi.Error != si.Error {
			t.Fatalf("item %d message diverged: http %q, stream %q", i, hi.Error, si.Error)
		}
		if (hi.Report != nil) != (si.Report != nil) {
			t.Fatalf("item %d payload presence diverged", i)
		}
	}
	// The stream's 429 item additionally carries the user's live headroom,
	// which an exhausted window pins to zero.
	if !streamResp[0].HasEpsRemaining || streamResp[0].EpsRemaining != 0 {
		t.Fatalf("429 item headroom: %+v", streamResp[0])
	}
	// The valid item's draw matches across transports (same seed, fresh
	// identically-primed registries).
	hr, sr := httpResp.Items[3].Report, streamResp[3].Report
	if hr.Reports[0].Q != sr.Reports[0].Q || hr.Reports[0].R != sr.Reports[0].R {
		t.Fatalf("valid item draws diverged: http %+v, stream %+v", hr.Reports[0], sr.Reports[0])
	}

	// A single REPORT for the exhausted user mirrors the batch item as a
	// *StatusError with the same classification.
	_, err = sc.Report(streamItems[0])
	var se *stream.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests || !se.HasEpsRemaining {
		t.Fatalf("single over-budget report: %v", err)
	}
}

// TestStreamMidShutdownReconnect drains a server mid-session: the pooled
// client connection dies cleanly, requests fail while nothing listens,
// and once a new server (same registry, same address) comes up the client
// reconnects on its own — with the user's draw sequence continuing as if
// the connection had never dropped.
func TestStreamMidShutdownReconnect(t *testing.T) {
	reg := newRegistry(t, registry.Options{}, "ra")
	_, leafNodes := leaves(t, reg, "ra")
	leaf := leafNodes[0]
	req := stream.Request{
		Region: "ra", Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, UID: 9,
		Policy: policy.Policy{PrivacyLevel: 1}, Seed: 11, Count: 2,
	}

	srv1, err := stream.NewServer(reg, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	go srv1.Serve(lis)

	c := stream.NewClient(addr, stream.ClientConfig{
		Timeout: 10 * time.Second, DialTimeout: 2 * time.Second,
	})
	defer c.Close()
	first, err := c.Report(req)
	if err != nil {
		t.Fatal(err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv1.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Nothing listens: the pooled connection fails, the retry dial is
	// refused, and the error surfaces cleanly (no hang, no StatusError).
	_, err = c.Report(req)
	if err == nil {
		t.Fatal("report succeeded against a drained server")
	}
	var se *stream.StatusError
	if errors.As(err, &se) {
		t.Fatalf("transport fault misclassified as application error: %v", err)
	}

	// Same address, same registry: the next request dials fresh and the
	// session stream continues.
	srv2, err := stream.NewServer(reg, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(lis2)
	t.Cleanup(func() { srv2.Close() })

	second, err := c.Report(req)
	if err != nil {
		t.Fatalf("report after server replacement: %v", err)
	}
	if st := c.Stats(); st.Retries < 1 || st.Dials < 2 {
		t.Fatalf("client stats after reconnect: %+v", st)
	}

	// The uninterrupted sequence: a fresh registry drawn twice in-process
	// must equal first+second — the reconnect never perturbed the RNG.
	ref := newRegistry(t, registry.Options{}, "ra")
	var want []stream.ReportedLocation
	for i := 0; i < 2; i++ {
		res, err := ref.Report(context.Background(), registry.ReportRequest{
			Region: "ra", Cell: hexgrid.Coord{Q: req.Cell[0], R: req.Cell[1]}, UID: 9,
			Policy: req.Policy, Seed: 11, Count: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range res.Reports {
			want = append(want, stream.ReportedLocation{Q: n.Coord.Q, R: n.Coord.R})
		}
	}
	got := append(append([]stream.ReportedLocation(nil), first.Reports...), second.Reports...)
	if len(got) != len(want) {
		t.Fatalf("drew %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Q != want[i].Q || got[i].R != want[i].R {
			t.Fatalf("draw %d diverged across reconnect: (%d,%d) want (%d,%d)",
				i, got[i].Q, got[i].R, want[i].Q, want[i].R)
		}
	}
}

// TestStreamConcurrentSharedRegistry stresses one registry under
// concurrent stream connections and HTTP requests at once — re-anchoring
// mobility, batches, and distinct-plus-shared user sessions — and then
// checks the stream counters merged into GET /v1/stats. The CI race job
// runs this under -race.
func TestStreamConcurrentSharedRegistry(t *testing.T) {
	reg := newRegistry(t, registry.Options{}, "ra", "rb")
	streamSrv, addr := startStream(t, reg, stream.Config{})
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	h.Stream = streamSrv
	hsrv := httptest.NewServer(h.Mux())
	t.Cleanup(hsrv.Close)

	treeA, _ := leaves(t, reg, "ra")
	leafA := treeA.LeavesUnder(treeA.LevelNodes(1)[0])[0]
	leafB := treeA.LeavesUnder(treeA.LevelNodes(1)[1])[0]

	const (
		goroutines = 8
		iters      = 25
	)
	sc := stream.NewClient(addr, stream.ClientConfig{Timeout: 30 * time.Second})
	defer sc.Close()
	hc := proto.NewClient(hsrv.URL)

	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Goroutines 0 and 1 share uid 100 (one session, serialized
			// draws); the rest get their own. Half the pool speaks HTTP so
			// both transports hammer the same sessions and engines.
			uid := int64(100)
			if g > 1 {
				uid = int64(g)
			}
			region := []string{"ra", "rb"}[g%2]
			for i := 0; i < iters; i++ {
				leaf := leafA
				if i%3 == 2 {
					leaf = leafB // subtree crossing: session re-anchor
				}
				cell := [2]int{leaf.Coord.Q, leaf.Coord.R}
				pol := policy.Policy{PrivacyLevel: 1}
				var err error
				switch {
				case g%2 == 1:
					_, err = hc.Report(proto.ReportRequest{
						Region: region, Cell: cell, UID: uid, Policy: pol, Seed: 3, Count: 2,
					})
				case i%5 == 4:
					_, err = sc.ReportBatch([]stream.Request{
						{Region: region, Cell: cell, UID: uid, Policy: pol, Seed: 3, Count: 2},
						{Region: region, Cell: cell, UID: uid + 1000, Policy: pol, Seed: 4, Count: 1},
					})
				default:
					_, err = sc.Report(stream.Request{
						Region: region, Cell: cell, UID: uid, Policy: pol, Seed: 3, Count: 2,
					})
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Stream counters surface through the shared stats route.
	resp, err := http.Get(hsrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats proto.MultiStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Stream == nil {
		t.Fatal("stream block missing from /v1/stats")
	}
	if stats.Stream.Reports == 0 || stats.Stream.Handshakes == 0 || stats.Stream.Batches == 0 {
		t.Fatalf("stream stats: %+v", *stats.Stream)
	}
}
