package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"corgi/internal/registry"
)

// ErrClientClosed marks calls on a closed client.
var ErrClientClosed = errors.New("stream: client closed")

// ErrNodeDown marks an exchange refused without dialing because the
// target node's last dial failed and its reconnect backoff has not
// expired. Callers (the cluster router) treat it like a dial failure —
// try the next node — but it costs microseconds instead of a connect
// timeout, which is what keeps failover fast while a node is down.
var ErrNodeDown = errors.New("stream: node down (reconnect backoff)")

// ErrDraining marks an exchange abandoned because the server said GOODBYE
// and closed before the response arrived.
var ErrDraining = errors.New("stream: server draining")

// DefaultMaxIdleConns bounds the client's idle-connection pool.
const DefaultMaxIdleConns = 16

// ClientConfig tunes a stream Client.
type ClientConfig struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// Timeout bounds one exchange end to end — write through response —
	// via connection deadlines; zero means no deadline.
	Timeout time.Duration
	// MaxFrameBytes bounds one received frame (default 4 MiB, matching the
	// server).
	MaxFrameBytes int
	// MaxIdleConns bounds the pooled idle connections (default 16). Active
	// connections are unbounded: each concurrent caller holds one
	// exclusively for the duration of its exchange.
	MaxIdleConns int
	// Region, when set, fills empty request regions, mirroring
	// proto.NewRegionClient.
	Region string
	// ReconnectBackoff is the first wait after a failed dial (default
	// 250ms); consecutive failures double it up to MaxReconnectBackoff
	// (default 15s). After two consecutive dial failures, exchanges that
	// would need a fresh dial fail fast with ErrNodeDown while the backoff
	// runs; after it expires ONE probe dial runs (half-open) and its
	// outcome resets or extends the backoff.
	// Before this existed, a node that closed with GOODBYE kept eating a
	// full dial timeout from every caller until it recovered — failover
	// worked, but at seconds per request instead of microseconds — and a
	// recovered node was only rediscovered by luck of timing.
	ReconnectBackoff    time.Duration
	MaxReconnectBackoff time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.MaxIdleConns <= 0 {
		c.MaxIdleConns = DefaultMaxIdleConns
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 250 * time.Millisecond
	}
	if c.MaxReconnectBackoff <= 0 {
		c.MaxReconnectBackoff = 15 * time.Second
	}
	return c
}

// ClientStats snapshots a client's transfer counters.
type ClientStats struct {
	Dials    uint64 `json:"dials"`
	Retries  uint64 `json:"retries"`
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
	// FailFast counts exchanges refused with ErrNodeDown (no dial spent);
	// Probes counts half-open recovery dials after a backoff expired.
	FailFast uint64 `json:"fail_fast"`
	Probes   uint64 `json:"probes"`
}

// Client speaks corgi-stream to one server address with connection
// pooling and auto-reconnect: exchanges check a connection out of the
// idle pool (dialing and re-negotiating HELLO/WELCOME when empty), hold
// it exclusively, and return it on success. An I/O failure on a pooled
// connection — the server restarted, said GOODBYE, or the conn idled out —
// closes it and retries once on a freshly dialed one, the same
// stale-keep-alive retry semantics HTTP clients apply. Application-level
// rejections come back as *StatusError and leave the connection healthy.
//
// Client is safe for concurrent use; each concurrent exchange holds its
// own connection, so per-user FIFO ordering is the caller's to arrange
// (one goroutine per user stream, as corgi-loadgen does).
type Client struct {
	addr string
	cfg  ClientConfig

	mu     sync.Mutex
	idle   []*clientConn // LIFO: most recently used first
	closed bool
	// Reconnect-backoff state (guarded by mu): consecutive dial failures,
	// when the next dial may run, and whether a half-open probe is already
	// in flight (other callers fail fast until it resolves).
	dialFails    int
	backoffUntil time.Time
	probing      bool

	dials    atomic.Uint64
	retries  atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	failFast atomic.Uint64
	probes   atomic.Uint64
}

// clientConn is one negotiated connection.
type clientConn struct {
	conn net.Conn
	fr   *frameReader
	// nextID numbers exchanges on this connection; responses echo it, and
	// a mismatch is a protocol fault (the exchange pattern is strictly
	// serial per connection).
	nextID uint32
	// maxBatch and maxCount are the server's advertised limits.
	maxBatch int
	maxCount int
	draining bool
}

// NewClient targets a server stream address (host:port).
func NewClient(addr string, cfg ClientConfig) *Client {
	return &Client{addr: addr, cfg: cfg.withDefaults()}
}

// dial opens and negotiates a fresh connection.
func (c *Client) dial() (*clientConn, error) {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c.dials.Add(1)
	if tc, ok := conn.(*net.TCPConn); ok {
		// Frames are written whole; batching them behind Nagle only adds
		// latency to the request/response pattern.
		tc.SetNoDelay(true)
	}
	cc := &clientConn{
		conn: conn,
		fr: newFrameReader(
			bufio.NewReaderSize(countingReader{r: conn, n: &c.bytesIn}, 64<<10),
			c.cfg.MaxFrameBytes,
		),
	}
	if err := c.handshake(cc); err != nil {
		conn.Close()
		return nil, err
	}
	return cc, nil
}

// handshake sends HELLO and validates WELCOME.
func (c *Client) handshake(cc *clientConn) error {
	if c.cfg.DialTimeout > 0 {
		cc.conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
		defer cc.conn.SetDeadline(time.Time{})
	}
	bp := getFrame(frameHello)
	*bp = append(*bp, Magic...)
	*bp = append(*bp, Version, Version)
	if err := c.writeFrame(cc, bp); err != nil {
		return err
	}
	ftype, payload, err := cc.fr.next()
	if err != nil {
		return fmt.Errorf("stream: handshake failed: %w", err)
	}
	if ftype == frameError {
		return decodeErrorFrame(payload)
	}
	if ftype != frameWelcome {
		return fmt.Errorf("stream: expected WELCOME, got frame type %d", ftype)
	}
	d := decoder{b: payload}
	if v := d.u8(); v != Version {
		return fmt.Errorf("stream: server negotiated unsupported version %d", v)
	}
	cc.maxBatch = int(d.uvarint())
	cc.maxCount = int(d.uvarint())
	if err := d.done("WELCOME"); err != nil {
		return err
	}
	return nil
}

func (c *Client) writeFrame(cc *clientConn, bp *[]byte) error {
	b := finishFrame(*bp)
	n, err := cc.conn.Write(b)
	c.bytesOut.Add(uint64(n))
	putFrame(bp)
	return err
}

// failFastThreshold is how many consecutive dial failures open the
// fail-fast breaker. One failure can be the node restarting under the
// caller's feet (the very situation the retry-once policy exists for),
// so a single miss never blocks the immediate next attempt; two misses
// in a row mean the node is really down.
const failFastThreshold = 2

// getConn checks a connection out of the pool, dialing when empty.
// reused reports whether the connection might be stale (and so a failed
// exchange should retry on a fresh one). With the pool empty and the
// node in reconnect backoff after failFastThreshold consecutive dial
// failures, it fails fast with ErrNodeDown instead of burning a dial
// timeout; the first caller after the backoff expires becomes the
// half-open probe (probing gates concurrent callers out until its dial
// resolves).
func (c *Client) getConn() (cc *clientConn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		cc = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, true, nil
	}
	probe := false
	if c.dialFails >= failFastThreshold {
		if c.probing || time.Now().Before(c.backoffUntil) {
			c.mu.Unlock()
			c.failFast.Add(1)
			return nil, false, ErrNodeDown
		}
		c.probing, probe = true, true
	}
	c.mu.Unlock()
	if probe {
		c.probes.Add(1)
	}
	cc, err = c.dial()
	c.mu.Lock()
	if probe {
		c.probing = false
	}
	if err != nil {
		c.dialFails++
		backoff := c.cfg.ReconnectBackoff << (c.dialFails - 1)
		if backoff > c.cfg.MaxReconnectBackoff || backoff <= 0 {
			backoff = c.cfg.MaxReconnectBackoff
		}
		c.backoffUntil = time.Now().Add(backoff)
	} else {
		c.dialFails = 0
		c.backoffUntil = time.Time{}
	}
	c.mu.Unlock()
	return cc, false, err
}

// Healthy reports whether the node is dialable as far as the client
// knows: true until a dial fails, false while the reconnect backoff
// runs, true again once a probe dial succeeds. The cluster router reads
// it for its stats, not for routing (routing order is the ring's).
func (c *Client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dialFails == 0
}

// putConn returns a healthy connection to the pool.
func (c *Client) putConn(cc *clientConn) {
	if cc.draining {
		cc.conn.Close()
		return
	}
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.cfg.MaxIdleConns {
		c.mu.Unlock()
		cc.conn.Close()
		return
	}
	c.idle = append(c.idle, cc)
	c.mu.Unlock()
}

// Close closes the client and its pooled connections. In-flight
// exchanges finish on their checked-out connections, which then close on
// return.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, cc := range idle {
		// A GOODBYE tells the server this close is deliberate, not a torn
		// connection. Best effort.
		bp := getFrame(frameGoodbye)
		*bp = appendString(*bp, "client closing")
		c.writeFrame(cc, bp)
		cc.conn.Close()
	}
	return nil
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Dials:    c.dials.Load(),
		Retries:  c.retries.Load(),
		BytesIn:  c.bytesIn.Load(),
		BytesOut: c.bytesOut.Load(),
		FailFast: c.failFast.Load(),
		Probes:   c.probes.Load(),
	}
}

// decodeErrorFrame turns an ERROR payload into a *StatusError.
func decodeErrorFrame(payload []byte) error {
	d := decoder{b: payload}
	d.u32() // reqID, already matched by the caller (0 for connection-level)
	se := &StatusError{Status: int(d.u16())}
	if d.u8()&errFlagEpsRemaining != 0 {
		se.EpsRemaining = d.f64()
		se.HasEpsRemaining = true
	}
	se.Msg = d.str()
	if d.err != nil {
		return fmt.Errorf("stream: malformed ERROR frame: %w", d.err)
	}
	return se
}

// exchange writes one request frame and reads its matching response,
// tolerating a GOODBYE notice in between (the server drains in-flight
// work before closing, so the response is still coming).
func (c *Client) exchange(cc *clientConn, bp *[]byte, reqID uint32, wantType byte) ([]byte, error) {
	if c.cfg.Timeout > 0 {
		cc.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		defer cc.conn.SetDeadline(time.Time{})
	}
	if err := c.writeFrame(cc, bp); err != nil {
		return nil, err
	}
	for {
		ftype, payload, err := cc.fr.next()
		if err != nil {
			if cc.draining && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
				return nil, ErrDraining
			}
			return nil, err
		}
		switch ftype {
		case frameGoodbye:
			cc.draining = true
			continue
		case frameError:
			d := decoder{b: payload}
			if id := d.u32(); d.err == nil && id != reqID && id != 0 {
				return nil, fmt.Errorf("stream: ERROR for request %d while waiting for %d", id, reqID)
			}
			return nil, decodeErrorFrame(payload)
		case wantType:
			d := decoder{b: payload}
			if id := d.u32(); d.err != nil || id != reqID {
				return nil, fmt.Errorf("stream: response for request %d while waiting for %d", id, reqID)
			}
			return payload[4:], nil
		default:
			return nil, fmt.Errorf("stream: unexpected frame type %d", ftype)
		}
	}
}

// retryable reports whether an exchange error may be cured by a fresh
// connection: transport faults yes, application rejections no.
func retryable(err error) bool {
	var se *StatusError
	return !errors.As(err, &se)
}

// Report draws obfuscated reports over the stream, mirroring
// proto.Client.Report. A configured Region fills an empty request region.
func (c *Client) Report(req Request) (*Response, error) {
	if req.Region == "" {
		req.Region = c.cfg.Region
	}
	var resp *Response
	err := c.withConn(func(cc *clientConn) error {
		cc.nextID++
		reqID := cc.nextID
		bp := getFrame(frameReport)
		*bp = appendU32(*bp, reqID)
		*bp = appendRequest(*bp, &req)
		payload, err := c.exchange(cc, bp, reqID, frameReportOK)
		if err != nil {
			return err
		}
		d := decoder{b: payload}
		r, err := d.decodeResponse()
		if err == nil {
			err = d.done("REPORT_OK")
		}
		resp = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Lease requests (or renews) a client-side draw lease over the stream,
// mirroring proto.Client.Lease: the request's Count field is ignored,
// draws is the cap to pre-pay, and a non-nil token renews a previous
// lease. Rejections come back as *StatusError with the same statuses the
// HTTP route answers (429 with eps headroom on budget exhaustion, 403 on
// a bad token).
func (c *Client) Lease(req Request, draws int, token []byte) (*registry.LeaseGrant, error) {
	if req.Region == "" {
		req.Region = c.cfg.Region
	}
	var grant *registry.LeaseGrant
	err := c.withConn(func(cc *clientConn) error {
		cc.nextID++
		reqID := cc.nextID
		bp := getFrame(frameLease)
		*bp = appendU32(*bp, reqID)
		*bp = appendLeaseReq(*bp, &req, draws, token)
		payload, err := c.exchange(cc, bp, reqID, frameLeaseGrant)
		if err != nil {
			return err
		}
		d := decoder{b: payload}
		g, err := d.decodeLeaseGrant()
		if err == nil {
			err = d.done("LEASE_GRANT")
		}
		grant = g
		return err
	})
	if err != nil {
		return nil, err
	}
	return grant, nil
}

// ReportBatch draws for many requests in one REPORTS round trip,
// mirroring proto.Client.ReportBatch: per-item outcomes come back in
// request order with their own statuses, and the caller's slice is not
// modified (a configured Region fills empty item regions on the wire).
func (c *Client) ReportBatch(items []Request) ([]ItemResult, error) {
	var results []ItemResult
	err := c.withConn(func(cc *clientConn) error {
		cc.nextID++
		reqID := cc.nextID
		bp := getFrame(frameReports)
		*bp = appendU32(*bp, reqID)
		*bp = appendUvarints(*bp, uint64(len(items)))
		for i := range items {
			if items[i].Region == "" && c.cfg.Region != "" {
				it := items[i]
				it.Region = c.cfg.Region
				*bp = appendRequest(*bp, &it)
			} else {
				*bp = appendRequest(*bp, &items[i])
			}
		}
		payload, err := c.exchange(cc, bp, reqID, frameReportsOK)
		if err != nil {
			return err
		}
		d := decoder{b: payload}
		n := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if n != uint64(len(items)) {
			return fmt.Errorf("stream: batch answered %d items for %d requests", n, len(items))
		}
		out := make([]ItemResult, 0, n)
		for i := uint64(0); i < n; i++ {
			it, err := d.decodeItem()
			if err != nil {
				return err
			}
			out = append(out, it)
		}
		if err := d.done("REPORTS_OK"); err != nil {
			return err
		}
		results = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// withConn runs one exchange with checkout, pooling, and the retry-once
// reconnect policy.
func (c *Client) withConn(fn func(cc *clientConn) error) error {
	for attempt := 0; ; attempt++ {
		cc, reused, err := c.getConn()
		if err != nil {
			return err
		}
		err = fn(cc)
		if err == nil {
			c.putConn(cc)
			return nil
		}
		if !retryable(err) {
			// Application-level rejection: the connection is fine.
			c.putConn(cc)
			return err
		}
		cc.conn.Close()
		if reused && attempt == 0 {
			// A pooled connection can be stale (server restarted or drained
			// while it idled); one fresh dial retries the exchange. Failures
			// on a fresh connection are real and surface.
			c.retries.Add(1)
			continue
		}
		return err
	}
}
