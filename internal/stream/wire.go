// Package stream implements the corgi-stream binary report transport: the
// report pipeline of internal/registry served over one long-lived TCP
// connection per client instead of an HTTP round trip per draw.
//
// HTTP+JSON serving tops out three orders of magnitude below the in-proc
// sampling rate — virtually all cost is connection setup, header parsing,
// and JSON, not the paper's mechanism. The stream transport removes that
// overhead: length-prefixed binary frames over a persistent connection,
// negotiated once with HELLO/WELCOME, then pipelined REPORT / REPORTS
// exchanges answered in FIFO order (per-connection ordering is what keeps a
// moving user's draw sequence session-sticky). Failures come back as ERROR
// frames carrying the same HTTP-equivalent status classification the JSON
// routes use (registry.ReportErrStatus), including 429 budget exhaustion
// with the user's live eps_remaining; a draining server says GOODBYE.
//
// The wire format (all integers little-endian, varints per encoding/binary):
//
//	frame   := uint32 length | uint8 type | payload     (length covers type+payload)
//	HELLO   := magic "CGS1" | uint8 minVer | uint8 maxVer
//	WELCOME := uint8 version | uvarint maxBatch | uvarint maxReportCount
//	REPORT  := uint32 reqID | request
//	REPORTS := uint32 reqID | uvarint n | n * request
//	REPORT_OK  := uint32 reqID | result
//	REPORTS_OK := uint32 reqID | uvarint n | n * item
//	ERROR   := uint32 reqID | uint16 status | uint8 flags | [float64 epsRemaining] | string msg
//	GOODBYE := string reason
//	LEASE   := uint32 reqID | request | uvarint draws | uvarint tokenLen | token
//	LEASE_GRANT := uint32 reqID | grant
//
// where request serializes proto.ReportRequest's fields (region, cell,
// uid, seed, count, policy triple) with varints and length-prefixed
// strings, and result mirrors proto.ReportResponse except that report
// centers ride as internal/codec's 32-bit fixed point — the same quantized
// representation the forest blobs use, re-scaled to degrees — so each
// drawn location costs 16 bytes flat. reqID 0 in an ERROR frame marks a
// connection-level fault (handshake, framing, oversized frame); the
// connection closes after it.
//
// LEASE asks for a client-side draw lease (the stream analogue of POST
// /v1/lease): the embedded request's count field is ignored, draws is the
// cap to pre-pay, and token (possibly empty) renews a previous lease. The
// grant body carries the customization facts plus the signed token and
// the opaque lease bundle — the bundle's float64 weights ride as exact
// bits inside internal/codec's lease encoding, never re-quantized, which
// is what keeps device-local draws byte-identical to server draws.
package stream

import (
	"encoding/binary"
	"fmt"
	"math"

	"corgi/internal/budget"
	"corgi/internal/codec"
	"corgi/internal/hexgrid"
	"corgi/internal/policy"
	"corgi/internal/registry"
)

// Protocol identity and limits.
const (
	// Magic opens every HELLO frame: "CGS1" (corgi-stream, format family 1).
	Magic = "CGS1"
	// Version is the one protocol version this implementation speaks; HELLO
	// carries a [min, max] range so future versions can negotiate down.
	// Version 2 added the request trailer: a flags byte after the
	// predicates (forwarded marker) and an optional piggybacked budget
	// handoff for cluster forwarding.
	Version = 2

	// DefaultMaxFrameBytes bounds one frame's type+payload. A maximal
	// batch (64 items x 1000 draws x 16 bytes/draw) fits with headroom.
	DefaultMaxFrameBytes = 4 << 20

	frameHeaderLen = 4 // uint32 length prefix
)

// Frame types.
const (
	frameHello      = 1
	frameWelcome    = 2
	frameReport     = 3
	frameReports    = 4
	frameReportOK   = 5
	frameReportsOK  = 6
	frameError      = 7
	frameGoodbye    = 8
	frameLease      = 9
	frameLeaseGrant = 10
)

// ERROR frame flag bits.
const errFlagEpsRemaining = 1 // float64 epsRemaining follows the flags byte

// result flag bits (REPORT_OK payloads).
const (
	resFlagReanchored = 1
	resFlagBudgeted   = 2
	resFlagDegraded   = 4
)

// Request is one report ask on the stream wire, mirroring the JSON
// transport's proto.ReportRequest field for field (the stream package
// cannot import internal/proto — proto imports stream for /v1/stats).
type Request struct {
	Region string
	// Cell is the axial (q, r) coordinate of the true leaf cell.
	Cell [2]int
	UID  int64
	policy.Policy
	Seed  int64
	Count int
	// Forwarded marks a cluster-relayed request (the receiver serves it
	// locally instead of re-routing); Handoff optionally carries the
	// relaying node's budget spend for this user. Both ride the version-2
	// request trailer.
	Forwarded bool
	Handoff   *budget.Handoff
}

// ReportedLocation is one drawn report. Lat/Lng round-trip the wire as
// codec's 32-bit fixed point over [-90,90] x [-180,180], so decoded
// centers match the JSON transport's to ~4.7e-8 degrees (about 5 mm).
type ReportedLocation struct {
	Q   int
	R   int
	Lat float64
	Lng float64
}

// Response mirrors proto.ReportResponse.
type Response struct {
	Region         string
	PrecisionLevel int
	SubtreeRoot    [2]int
	Pruned         int
	Reports        []ReportedLocation
	Reanchored     bool
	Budgeted       bool
	EpsSpent       float64
	EpsRemaining   float64
	// Degraded mirrors proto.ReportResponse.Degraded: the reports came from
	// a planar-Laplace fallback entry, not the LP optimum.
	Degraded bool
}

// ItemResult is one batch item's outcome, mirroring proto.ReportItemResult:
// items fail independently with per-item HTTP-equivalent statuses. A
// 429-status item additionally carries the user's live budget headroom.
type ItemResult struct {
	Status int
	Error  string
	Report *Response
	// EpsRemaining is the user's window headroom on a budget rejection
	// (valid when HasEpsRemaining; mirrors the single-request ERROR frame).
	EpsRemaining    float64
	HasEpsRemaining bool
}

// StatusError is an application-level rejection delivered over the stream:
// the same HTTP-equivalent status the JSON routes would have answered. The
// connection stays healthy after one — only transport faults close it.
type StatusError struct {
	Status int
	Msg    string
	// EpsRemaining carries the user's live budget headroom on a 429
	// (valid when HasEpsRemaining).
	EpsRemaining    float64
	HasEpsRemaining bool
}

// Error formats the server's status and message.
func (e *StatusError) Error() string {
	return fmt.Sprintf("stream: server returned %d: %s", e.Status, e.Msg)
}

// HTTPStatus exposes the owner node's classification to
// registry.ReportErrStatus, so a forwarding router re-answers a peer's
// rejection with the peer's own status instead of a generic 500.
func (e *StatusError) HTTPStatus() int { return e.Status }

// BudgetRemaining exposes a forwarded 429's live headroom to
// registry.BudgetRemaining.
func (e *StatusError) BudgetRemaining() (float64, bool) {
	return e.EpsRemaining, e.HasEpsRemaining
}

// quantLat/quantLng map degrees onto codec's [0,1] fixed-point domain and
// back. Shared with nothing else: the scale is part of the wire contract.
func quantLat(lat float64) uint32 { return codec.Quantize((lat + 90) / 180) }
func quantLng(lng float64) uint32 { return codec.Quantize((lng + 180) / 360) }
func dequantLat(q uint32) float64 { return codec.Dequantize(q)*180 - 90 }
func dequantLng(q uint32) float64 { return codec.Dequantize(q)*360 - 180 }

// appendString appends a uvarint length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

func appendUvarints(b []byte, vs ...uint64) []byte {
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// decoder is a cursor over one frame payload. The first malformed read
// latches err; subsequent reads return zero values, so decode functions
// check err once at the end instead of after every field.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("stream: truncated or malformed %s at byte %d", what, d.off)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off >= len(d.b) {
		d.fail("byte")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail("uint16")
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) f64() float64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// strBytes returns the raw bytes of a length-prefixed string without
// allocating; the slice aliases the frame buffer and must not outlive it.
func (d *decoder) strBytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail("string")
		return nil
	}
	s := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return s
}

func (d *decoder) str() string { return string(d.strBytes()) }

// done checks the cursor consumed the payload exactly.
func (d *decoder) done(what string) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("stream: %s payload has %d trailing bytes", what, len(d.b)-d.off)
	}
	return nil
}

// appendRequest serializes one report request body.
func appendRequest(b []byte, req *Request) []byte {
	b = appendString(b, req.Region)
	b = binary.AppendVarint(b, int64(req.Cell[0]))
	b = binary.AppendVarint(b, int64(req.Cell[1]))
	b = binary.AppendVarint(b, req.UID)
	b = binary.AppendVarint(b, req.Seed)
	b = binary.AppendVarint(b, int64(req.Count))
	b = binary.AppendVarint(b, int64(req.PrivacyLevel))
	b = binary.AppendVarint(b, int64(req.PrecisionLevel))
	b = binary.AppendUvarint(b, uint64(len(req.Preferences)))
	for _, p := range req.Preferences {
		b = appendString(b, p.Var)
		b = append(b, byte(p.Op), byte(p.Val.Kind))
		switch p.Val.Kind {
		case policy.KindString:
			b = appendString(b, p.Val.S)
		case policy.KindNumber:
			b = appendF64(b, p.Val.F)
		default:
			if p.Val.B {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	}
	// Version-2 trailer: cluster flags + optional budget handoff.
	var flags byte
	if req.Forwarded {
		flags |= reqFlagForwarded
	}
	if req.Handoff != nil && len(req.Handoff.Events) > 0 {
		flags |= reqFlagHandoff
	}
	b = append(b, flags)
	if flags&reqFlagHandoff != 0 {
		h := req.Handoff
		b = appendString(b, h.Source)
		b = binary.AppendUvarint(b, h.Seq)
		b = binary.AppendUvarint(b, uint64(len(h.Events)))
		for _, e := range h.Events {
			b = binary.AppendVarint(b, e.AtUnixNano)
			b = appendF64(b, e.Eps)
		}
	}
	return b
}

// Request trailer flag bits (version 2).
const (
	reqFlagForwarded = 1
	reqFlagHandoff   = 2
)

// maxHandoffEvents bounds a handoff's event count on decode. The
// accountant buckets spend at Config.Resolution, so a real handoff holds
// at most Window/Resolution events (3600 at the defaults); anything past
// the bound is a malformed frame.
const maxHandoffEvents = 1 << 14

// maxPreferences bounds one request's predicate count on decode; policies
// are small conjunctions, so anything huge is a malformed frame, not a
// real policy.
const maxPreferences = 1 << 10

// decodeRequest reads one request body. intern maps region-name bytes to a
// shared string (nil falls back to a fresh allocation per request).
func (d *decoder) decodeRequest(intern func([]byte) string) (Request, error) {
	var req Request
	if rb := d.strBytes(); intern != nil {
		req.Region = intern(rb)
	} else {
		req.Region = string(rb)
	}
	req.Cell[0] = int(d.varint())
	req.Cell[1] = int(d.varint())
	req.UID = d.varint()
	req.Seed = d.varint()
	req.Count = int(d.varint())
	req.PrivacyLevel = int(d.varint())
	req.PrecisionLevel = int(d.varint())
	nprefs := d.uvarint()
	if d.err == nil && nprefs > maxPreferences {
		return req, fmt.Errorf("stream: request carries %d preferences (limit %d)", nprefs, maxPreferences)
	}
	if d.err == nil && nprefs > 0 {
		req.Preferences = make([]policy.Predicate, 0, nprefs)
		for i := uint64(0); i < nprefs && d.err == nil; i++ {
			var p policy.Predicate
			p.Var = d.str()
			p.Op = policy.Op(d.u8())
			switch policy.Kind(d.u8()) {
			case policy.KindString:
				p.Val = policy.String(d.str())
			case policy.KindNumber:
				p.Val = policy.Number(d.f64())
			default:
				p.Val = policy.Bool(d.u8() != 0)
			}
			req.Preferences = append(req.Preferences, p)
		}
	}
	flags := d.u8()
	req.Forwarded = flags&reqFlagForwarded != 0
	if flags&reqFlagHandoff != 0 {
		h := &budget.Handoff{Source: d.str(), Seq: d.uvarint()}
		n := d.uvarint()
		if d.err == nil && n > maxHandoffEvents {
			return req, fmt.Errorf("stream: handoff carries %d events (limit %d)", n, maxHandoffEvents)
		}
		if d.err == nil {
			h.Events = make([]budget.HandoffEvent, 0, n)
			for i := uint64(0); i < n && d.err == nil; i++ {
				h.Events = append(h.Events, budget.HandoffEvent{
					AtUnixNano: d.varint(),
					Eps:        d.f64(),
				})
			}
		}
		req.Handoff = h
	}
	return req, d.err
}

// appendResult serializes a registry report result straight from the
// pipeline's own types — the server never builds an intermediate response
// struct, it encodes ReportResult into the pooled frame buffer directly.
func appendResult(b []byte, res *registry.ReportResult) []byte {
	b = appendString(b, res.Region)
	b = binary.AppendVarint(b, int64(res.PrecisionLevel))
	b = binary.AppendVarint(b, int64(res.SubtreeRoot.Coord.Q))
	b = binary.AppendVarint(b, int64(res.SubtreeRoot.Coord.R))
	b = binary.AppendVarint(b, int64(res.Pruned))
	var flags byte
	if res.Reanchored {
		flags |= resFlagReanchored
	}
	if res.Budgeted {
		flags |= resFlagBudgeted
	}
	if res.Degraded {
		flags |= resFlagDegraded
	}
	b = append(b, flags)
	if res.Budgeted {
		b = appendF64(b, res.EpsSpent)
		b = appendF64(b, res.EpsRemaining)
	}
	b = binary.AppendUvarint(b, uint64(len(res.Reports)))
	for i, n := range res.Reports {
		c := res.Centers[i]
		b = binary.AppendVarint(b, int64(n.Coord.Q))
		b = binary.AppendVarint(b, int64(n.Coord.R))
		b = binary.LittleEndian.AppendUint32(b, quantLat(c.Lat))
		b = binary.LittleEndian.AppendUint32(b, quantLng(c.Lng))
	}
	return b
}

// decodeResponse reads one result body into the client-side Response.
func (d *decoder) decodeResponse() (*Response, error) {
	resp := &Response{}
	resp.Region = d.str()
	resp.PrecisionLevel = int(d.varint())
	resp.SubtreeRoot[0] = int(d.varint())
	resp.SubtreeRoot[1] = int(d.varint())
	resp.Pruned = int(d.varint())
	flags := d.u8()
	resp.Reanchored = flags&resFlagReanchored != 0
	resp.Budgeted = flags&resFlagBudgeted != 0
	resp.Degraded = flags&resFlagDegraded != 0
	if resp.Budgeted {
		resp.EpsSpent = d.f64()
		resp.EpsRemaining = d.f64()
	}
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	// Each report costs >= 10 payload bytes; the frame bound keeps n sane.
	if n > uint64(len(d.b)) {
		return nil, fmt.Errorf("stream: result claims %d reports in a %d-byte payload", n, len(d.b))
	}
	resp.Reports = make([]ReportedLocation, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		resp.Reports = append(resp.Reports, ReportedLocation{
			Q:   int(d.varint()),
			R:   int(d.varint()),
			Lat: dequantLat(d.u32()),
			Lng: dequantLng(d.u32()),
		})
	}
	return resp, d.err
}

// appendItemError serializes a failed batch item with the same layout an
// ERROR frame uses after its reqID: status, flags, optional headroom,
// message.
func appendItemError(b []byte, status int, msg string, epsRem float64, hasEps bool) []byte {
	b = appendU16(b, uint16(status))
	if hasEps {
		b = append(b, errFlagEpsRemaining)
		b = appendF64(b, epsRem)
	} else {
		b = append(b, 0)
	}
	return appendString(b, msg)
}

// decodeItem reads one batch item result (status, then error or body).
func (d *decoder) decodeItem() (ItemResult, error) {
	var it ItemResult
	it.Status = int(d.u16())
	if d.err != nil {
		return it, d.err
	}
	if it.Status == statusOK {
		rep, err := d.decodeResponse()
		if err != nil {
			return it, err
		}
		it.Report = rep
		return it, nil
	}
	if d.u8()&errFlagEpsRemaining != 0 {
		it.EpsRemaining = d.f64()
		it.HasEpsRemaining = true
	}
	it.Error = d.str()
	return it, d.err
}

// statusOK avoids importing net/http just for the constant in hot paths.
const statusOK = 200

// reqCell converts the wire cell to the registry's coordinate type.
func (r *Request) reqCell() hexgrid.Coord { return hexgrid.Coord{Q: r.Cell[0], R: r.Cell[1]} }

// grantFlagRenewed extends the result flag bits for LEASE_GRANT payloads:
// the lease was issued against a valid renewal token.
const grantFlagRenewed = 8

// appendLeaseReq serializes one LEASE body after the reqID: the embedded
// report request (its count field unused), the draw cap to pre-pay, and
// the optional renewal token.
func appendLeaseReq(b []byte, req *Request, draws int, token []byte) []byte {
	b = appendRequest(b, req)
	b = binary.AppendUvarint(b, uint64(draws))
	b = binary.AppendUvarint(b, uint64(len(token)))
	return append(b, token...)
}

// decodeLeaseReq reads one LEASE body. The returned token aliases the
// frame buffer (like every strBytes read) and is only read synchronously
// by the handler before the next frame arrives.
func (d *decoder) decodeLeaseReq(intern func([]byte) string) (Request, int, []byte, error) {
	req, err := d.decodeRequest(intern)
	if err != nil {
		return req, 0, nil, err
	}
	draws := int(d.uvarint())
	token := d.strBytes()
	return req, draws, token, d.err
}

// appendLeaseGrant serializes a registry lease grant straight from the
// pipeline's own type, the same zero-intermediate pattern appendResult
// uses. The bundle bytes are already codec-encoded exact float64 weights;
// they ride opaque.
func appendLeaseGrant(b []byte, g *registry.LeaseGrant) []byte {
	b = appendString(b, g.Region)
	b = binary.AppendVarint(b, int64(g.PrecisionLevel))
	b = binary.AppendVarint(b, int64(g.SubtreeRoot.Level))
	b = binary.AppendVarint(b, int64(g.SubtreeRoot.Coord.Q))
	b = binary.AppendVarint(b, int64(g.SubtreeRoot.Coord.R))
	b = binary.AppendVarint(b, int64(g.Pruned))
	var flags byte
	if g.Reanchored {
		flags |= resFlagReanchored
	}
	if g.Budgeted {
		flags |= resFlagBudgeted
	}
	if g.Degraded {
		flags |= resFlagDegraded
	}
	if g.Renewed {
		flags |= grantFlagRenewed
	}
	b = append(b, flags)
	if g.Budgeted {
		b = appendF64(b, g.EpsSpent)
		b = appendF64(b, g.EpsRemaining)
	}
	b = binary.AppendUvarint(b, uint64(g.DrawCap))
	b = binary.AppendUvarint(b, g.RNGPos)
	b = binary.AppendVarint(b, g.ExpiresAt)
	b = binary.AppendUvarint(b, uint64(len(g.Token)))
	b = append(b, g.Token...)
	b = binary.AppendUvarint(b, uint64(len(g.Bundle)))
	return append(b, g.Bundle...)
}

// decodeLeaseGrant reads one LEASE_GRANT body into the registry's grant
// type. Token and bundle are copied out of the frame buffer — the caller
// keeps them for the lease's whole lifetime.
func (d *decoder) decodeLeaseGrant() (*registry.LeaseGrant, error) {
	g := &registry.LeaseGrant{}
	g.Region = d.str()
	g.PrecisionLevel = int(d.varint())
	g.SubtreeRoot.Level = int(d.varint())
	g.SubtreeRoot.Coord.Q = int(d.varint())
	g.SubtreeRoot.Coord.R = int(d.varint())
	g.Pruned = int(d.varint())
	flags := d.u8()
	g.Reanchored = flags&resFlagReanchored != 0
	g.Budgeted = flags&resFlagBudgeted != 0
	g.Degraded = flags&resFlagDegraded != 0
	g.Renewed = flags&grantFlagRenewed != 0
	if g.Budgeted {
		g.EpsSpent = d.f64()
		g.EpsRemaining = d.f64()
	}
	g.DrawCap = int(d.uvarint())
	g.RNGPos = d.uvarint()
	g.ExpiresAt = d.varint()
	g.Token = append([]byte(nil), d.strBytes()...)
	g.Bundle = append([]byte(nil), d.strBytes()...)
	return g, d.err
}
