package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrFrameTooLarge marks a frame whose declared length exceeds the
// negotiated bound. The reader cannot trust anything after an oversized
// header, so the connection closes after reporting it.
var ErrFrameTooLarge = errors.New("stream: frame exceeds size limit")

// framePool recycles frame build buffers so the steady-state data path
// allocates nothing: every outgoing frame is assembled in a pooled buffer
// (header, type, payload) and written with one syscall.
var framePool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// poolCap bounds what returns to the pool; a rare huge frame (maximal
// batch) should not pin megabytes behind a pool entry forever.
const poolCap = 1 << 20

func getFrame(ftype byte) *[]byte {
	bp := framePool.Get().(*[]byte)
	// Reserve the length prefix; finishFrame fills it once the payload is
	// complete.
	*bp = append((*bp)[:0], 0, 0, 0, 0, ftype)
	return bp
}

func putFrame(bp *[]byte) {
	if cap(*bp) <= poolCap {
		framePool.Put(bp)
	}
}

// finishFrame stamps the length prefix (type + payload) over the reserved
// header bytes and returns the complete frame.
func finishFrame(b []byte) []byte {
	binary.LittleEndian.PutUint32(b, uint32(len(b)-frameHeaderLen))
	return b
}

// frameReader reads length-prefixed frames from r into one persistent
// buffer, reused across frames — partial delivery is io.ReadFull's problem,
// and the steady state allocates nothing. The returned payload aliases the
// internal buffer and is valid only until the next call.
type frameReader struct {
	r   io.Reader
	buf []byte
	max int
}

func newFrameReader(r io.Reader, max int) *frameReader {
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	return &frameReader{r: r, buf: make([]byte, 4096), max: max}
}

// next reads one frame, returning its type and payload.
func (fr *frameReader) next() (byte, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.buf[:frameHeaderLen]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(fr.buf)
	if n < 1 {
		return 0, nil, fmt.Errorf("stream: empty frame")
	}
	if int(n) > fr.max {
		return 0, nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooLarge, n, fr.max)
	}
	if int(n) > len(fr.buf) {
		fr.buf = make([]byte, int(n))
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		// A short body after a full header is a torn connection.
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return body[0], body[1:], nil
}
