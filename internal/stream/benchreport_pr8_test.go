package stream_test

// TestBenchReportPR8 writes BENCH_pr8.json for the CI benchmark artifact:
// per-client draw throughput with server-side draws over corgi-stream
// (the PR 6 fast path) versus client-side draws under a lease — one
// LEASE exchange amortized over hundreds of local alias-table draws.
// Skipped unless BENCH_PR8_OUT names the output path.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"corgi/internal/clientdraw"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/stream"
)

// benchLeaseCap is the draw cap each bench lease pre-pays: 32 exact
// refills of benchReportCount draws, so no granted draw is forfeited.
const benchLeaseCap = 32 * benchReportCount

// benchPR8Report is the BENCH_pr8.json shape consumed by CI.
type benchPR8Report struct {
	// Draws per second a single warm user sustains per transport
	// (aggregated over Concurrency independent warm users).
	StreamDrawsPerSec float64 `json:"stream_draws_per_sec"`
	LeaseDrawsPerSec  float64 `json:"lease_draws_per_sec"`
	// Speedup = lease / stream; the acceptance bar is >= 5.
	Speedup     float64 `json:"lease_speedup_vs_stream"`
	Concurrency int     `json:"concurrency"`
	ReportCount int     `json:"report_count"`
	LeaseDraws  int     `json:"lease_draws"`
	// LeaseRoundTrips is how many LEASE exchanges the whole lease-side
	// run needed — the server traffic the offload eliminates is
	// (draws/report_count - lease_round_trips) request round trips.
	LeaseRoundTrips uint64 `json:"lease_round_trips"`
}

func TestBenchReportPR8(t *testing.T) {
	out := os.Getenv("BENCH_PR8_OUT")
	if out == "" {
		t.Skip("set BENCH_PR8_OUT=path to generate the benchmark report")
	}
	const (
		workers = 8
		window  = 2 * time.Second
	)
	pol := policy.Policy{PrivacyLevel: 1}

	// Server-side baseline: warm single-user REPORT frames, each worker a
	// distinct user pinned to its own warm cell (no re-anchors, no LP
	// solves — the steady state PR 6 measured).
	regStream, targets := benchSetup(t)
	_, addr := startStreamB(t, regStream)
	sc := stream.NewClient(addr, stream.ClientConfig{
		Timeout: 30 * time.Second, MaxIdleConns: workers,
	})
	defer sc.Close()
	streamRate := closedLoop(t, workers, window, func(w, i int) error {
		tg := targets[w%len(targets)]
		_, err := sc.Report(stream.Request{
			Region: tg.region, Cell: tg.cell, UID: int64(w),
			Policy: pol, Seed: int64(w), Count: benchReportCount,
		})
		return err
	})
	streamDraws := streamRate * benchReportCount

	// Lease side: identical per-worker workload, but draws happen in the
	// worker against its leased alias tables; the wire only carries a
	// LEASE exchange every benchLeaseCap draws.
	regLease, _ := benchSetup(t)
	_, addrL := startStreamB(t, regLease)
	scL := stream.NewClient(addrL, stream.ClientConfig{
		Timeout: 30 * time.Second, MaxIdleConns: workers,
	})
	defer scL.Close()
	trees := make(map[string]*loctree.Tree)
	for _, name := range []string{"bench-a", "bench-b", "bench-c"} {
		tree, _ := leaves(t, regLease, name)
		trees[name] = tree
	}
	type workerLease struct {
		lease *clientdraw.Lease
		leaf  loctree.NodeID
		buf   []loctree.NodeID
	}
	states := make([]workerLease, workers) // states[w] touched only by worker w
	leaseRate := closedLoop(t, workers, window, func(w, i int) error {
		st := &states[w]
		tg := targets[w%len(targets)]
		if st.lease == nil || st.lease.Remaining() < benchReportCount {
			var token []byte
			if st.lease != nil {
				token = st.lease.Token()
			}
			g, err := scL.Lease(stream.Request{
				Region: tg.region, Cell: tg.cell, UID: int64(w),
				Policy: pol, Seed: int64(w),
			}, benchLeaseCap, token)
			if err != nil {
				return err
			}
			tree := trees[tg.region]
			if st.lease != nil {
				// Handover renewal: O(forfeit gap), not O(position).
				st.lease, err = st.lease.Renew(g.Bundle, g.Token)
			} else {
				st.lease, err = clientdraw.Open(tree, g.Bundle, g.Token)
			}
			if err != nil {
				return err
			}
			st.leaf = loctree.NodeID{}
			for _, leaf := range tree.LevelNodes(0) {
				if leaf.Coord.Q == tg.cell[0] && leaf.Coord.R == tg.cell[1] {
					st.leaf = leaf
				}
			}
			st.buf = make([]loctree.NodeID, benchReportCount)
		}
		return st.lease.DrawCellNInto(st.leaf, st.buf)
	})
	leaseDraws := leaseRate * benchReportCount

	speedup := leaseDraws / streamDraws
	ls := regLease.LeaseStats()
	rep := benchPR8Report{
		StreamDrawsPerSec: math.Round(streamDraws),
		LeaseDrawsPerSec:  math.Round(leaseDraws),
		Speedup:           math.Round(speedup*10) / 10,
		Concurrency:       workers,
		ReportCount:       benchReportCount,
		LeaseDraws:        benchLeaseCap,
		LeaseRoundTrips:   ls.Issued,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_pr8: %s\n", data)
	if speedup < 5 {
		t.Fatalf("leased client-side draws sustained only %.1fx the stream rate (acceptance: >= 5x)", speedup)
	}
}
