package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"corgi/internal/registry"
)

// ErrServerClosed is returned by Serve after Shutdown or Close, mirroring
// http.ErrServerClosed so callers can treat a drained listener as clean.
var ErrServerClosed = errors.New("stream: server closed")

// DefaultHandshakeTimeout bounds how long a fresh connection may sit
// before completing HELLO; slots are cheap but not free.
const DefaultHandshakeTimeout = 10 * time.Second

// Config tunes a stream Server. The zero value matches the HTTP handler's
// defaults, so the two transports enforce the same request limits.
type Config struct {
	// MaxBatch caps the items of one REPORTS frame (default
	// registry.DefaultMaxBatch, the limit every transport shares).
	MaxBatch int
	// MaxReportCount caps the draws of one report request — and the draw
	// cap of one LEASE — (default registry.DefaultMaxReportCount, shared
	// with the HTTP routes).
	MaxReportCount int
	// Timeout bounds each frame's report work (the whole batch for
	// REPORTS); zero means no per-frame deadline.
	Timeout time.Duration
	// MaxFrameBytes bounds one frame's type+payload (default 4 MiB).
	MaxFrameBytes int
	// HandshakeTimeout bounds the HELLO wait on a fresh connection.
	HandshakeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = registry.DefaultMaxBatch
	}
	if c.MaxReportCount <= 0 {
		c.MaxReportCount = registry.DefaultMaxReportCount
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = DefaultHandshakeTimeout
	}
	return c
}

// Stats is a point-in-time snapshot of a stream server's counters,
// merged into GET /v1/stats alongside the engine and session counters.
type Stats struct {
	// ConnsTotal counts accepted connections over the server's lifetime;
	// ConnsActive is the live count. Handshakes counts completed HELLO/
	// WELCOME negotiations (a port scanner accepts but never negotiates).
	ConnsTotal  uint64 `json:"conns_total"`
	ConnsActive int64  `json:"conns_active"`
	Handshakes  uint64 `json:"handshakes"`
	FramesIn    uint64 `json:"frames_in"`
	FramesOut   uint64 `json:"frames_out"`
	BytesIn     uint64 `json:"bytes_in"`
	BytesOut    uint64 `json:"bytes_out"`
	// Reports counts resolved report requests (batch items included via
	// BatchItems; Batches counts REPORTS frames).
	Reports    uint64 `json:"reports"`
	Batches    uint64 `json:"batches"`
	BatchItems uint64 `json:"batch_items"`
	// Leases counts granted LEASE frames (the registry's lease counters
	// track issuance across transports; this is the stream's share).
	Leases uint64 `json:"leases"`
	// ErrorFrames counts ERROR frames sent (application rejections and
	// protocol faults alike); Oversized counts frames refused for size.
	ErrorFrames uint64 `json:"error_frames"`
	Oversized   uint64 `json:"oversized_frames"`
	// GoodbyesSent counts drain notices sent during Shutdown.
	GoodbyesSent uint64 `json:"goodbyes_sent"`
}

// Server speaks the corgi-stream protocol over raw TCP listeners,
// answering every report from the same Registry.Report pipeline the HTTP
// routes use — session re-anchoring, epsilon accounting, and error
// classes are identical across transports by construction.
type Server struct {
	reg *registry.Registry
	cfg Config

	// handler answers report and lease asks; it defaults to the registry
	// and is swapped for the cluster router on clustered nodes (SetHandler)
	// so non-owned users forward instead of serving locally.
	handler atomic.Pointer[registry.ReportHandler]

	// interned maps region-name bytes to the registry's canonical spec
	// names, so the per-frame decode of a known region allocates nothing.
	interned map[string]string

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*serverConn]struct{}
	closed    bool

	connWG   sync.WaitGroup // one per accepted connection
	inflight sync.WaitGroup // one per frame being processed

	connsTotal  atomic.Uint64
	connsActive atomic.Int64
	handshakes  atomic.Uint64
	framesIn    atomic.Uint64
	framesOut   atomic.Uint64
	bytesIn     atomic.Uint64
	bytesOut    atomic.Uint64
	reports     atomic.Uint64
	batches     atomic.Uint64
	batchItems  atomic.Uint64
	leases      atomic.Uint64
	errorFrames atomic.Uint64
	oversized   atomic.Uint64
	goodbyes    atomic.Uint64
}

// NewServer wires a region registry into a stream server.
func NewServer(reg *registry.Registry, cfg Config) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("stream: nil registry")
	}
	s := &Server{
		reg:       reg,
		cfg:       cfg.withDefaults(),
		interned:  make(map[string]string),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*serverConn]struct{}),
	}
	// The region set is fixed at registry construction, so the intern
	// table is immutable after this loop — lookups need no lock. The empty
	// name aliases the default region, matching the HTTP routes.
	for _, name := range reg.Names() {
		s.interned[name] = name
	}
	s.interned[""] = ""
	var h registry.ReportHandler = reg
	s.handler.Store(&h)
	return s, nil
}

// SetHandler replaces the serving surface (default: the registry). The
// cluster router installs itself here during wiring, before Serve.
func (s *Server) SetHandler(h registry.ReportHandler) {
	if h == nil {
		h = s.reg
	}
	s.handler.Store(&h)
}

// intern returns the canonical string for a region name's bytes without
// allocating for known regions (the map lookup with a string(b) key does
// not escape). Unknown names allocate and then fail resolution with 404.
func (s *Server) intern(b []byte) string {
	if name, ok := s.interned[string(b)]; ok {
		return name
	}
	return string(b)
}

// serverConn is one accepted connection's state.
type serverConn struct {
	srv  *Server
	conn net.Conn

	// wmu serializes frame writes: the conn's own responses interleave
	// with Shutdown's GOODBYE from another goroutine.
	wmu sync.Mutex
}

func (sc *serverConn) writeFrame(bp *[]byte) error {
	b := finishFrame(*bp)
	sc.wmu.Lock()
	n, err := sc.conn.Write(b)
	sc.wmu.Unlock()
	sc.srv.bytesOut.Add(uint64(n))
	sc.srv.framesOut.Add(1)
	putFrame(bp)
	return err
}

// Serve accepts connections on lis until Shutdown or Close, then returns
// ErrServerClosed. One server may serve several listeners.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, lis)
		s.mu.Unlock()
	}()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		sc := &serverConn{srv: s, conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[sc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.connsActive.Add(1)
		go func() {
			defer s.connWG.Done()
			defer s.connsActive.Add(-1)
			defer func() {
				s.mu.Lock()
				delete(s.conns, sc)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveConn(sc)
		}()
	}
}

// countingReader feeds the frame reader while accounting received bytes.
type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// serveConn runs one connection: handshake, then frames in FIFO order.
// Processing is sequential per connection — that ordering is the session
// stickiness contract: one user's pipelined reports on one connection
// resolve in send order, so their draw sequence replays deterministically.
func (s *Server) serveConn(sc *serverConn) {
	fr := newFrameReader(
		bufio.NewReaderSize(countingReader{r: sc.conn, n: &s.bytesIn}, 64<<10),
		s.cfg.MaxFrameBytes,
	)
	if !s.handshake(sc, fr) {
		return
	}
	for {
		ftype, payload, err := fr.next()
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				s.oversized.Add(1)
				s.sendError(sc, 0, 413, err.Error(), 0, false)
			}
			return
		}
		s.framesIn.Add(1)
		switch ftype {
		case frameReport:
			s.handleReport(sc, payload)
		case frameReports:
			s.handleReports(sc, payload)
		case frameLease:
			s.handleLease(sc, payload)
		case frameGoodbye:
			return
		default:
			s.sendError(sc, 0, 400, fmt.Sprintf("stream: unexpected frame type %d", ftype), 0, false)
			return
		}
	}
}

// handshake validates HELLO and answers WELCOME. Connection-level
// failures answer an ERROR frame with reqID 0 and close.
func (s *Server) handshake(sc *serverConn, fr *frameReader) bool {
	sc.conn.SetReadDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	ftype, payload, err := fr.next()
	if err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			s.oversized.Add(1)
			s.sendError(sc, 0, 413, err.Error(), 0, false)
		}
		return false
	}
	s.framesIn.Add(1)
	fail := func(msg string) bool {
		s.sendError(sc, 0, 400, msg, 0, false)
		return false
	}
	if ftype != frameHello {
		return fail(fmt.Sprintf("stream: expected HELLO, got frame type %d", ftype))
	}
	if len(payload) != len(Magic)+2 || string(payload[:len(Magic)]) != Magic {
		return fail("stream: bad HELLO magic")
	}
	minVer, maxVer := payload[len(Magic)], payload[len(Magic)+1]
	if minVer > Version || maxVer < Version {
		return fail(fmt.Sprintf("stream: no common version in [%d, %d], server speaks %d", minVer, maxVer, Version))
	}
	sc.conn.SetReadDeadline(time.Time{})
	bp := getFrame(frameWelcome)
	*bp = append(*bp, Version)
	*bp = appendUvarints(*bp, uint64(s.cfg.MaxBatch), uint64(s.cfg.MaxReportCount))
	if sc.writeFrame(bp) != nil {
		return false
	}
	s.handshakes.Add(1)
	return true
}

// frameCtx applies the configured per-frame deadline.
func (s *Server) frameCtx() (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(context.Background(), s.cfg.Timeout)
	}
	return context.WithCancel(context.Background())
}

// outcome is one resolved request, either a result or a classified error.
type outcome struct {
	res    *registry.ReportResult
	status int
	msg    string
	epsRem float64
	hasEps bool
}

// resolve runs one request through the shared registry pipeline, applying
// the same count cap and error classification as the HTTP handlers.
func (s *Server) resolve(ctx context.Context, req *Request) outcome {
	if req.Count > s.cfg.MaxReportCount {
		return outcome{status: 422, msg: fmt.Sprintf("count %d exceeds limit %d", req.Count, s.cfg.MaxReportCount)}
	}
	res, err := (*s.handler.Load()).Report(ctx, registry.ReportRequest{
		Region:    req.Region,
		Cell:      req.reqCell(),
		UID:       req.UID,
		Policy:    req.Policy,
		Seed:      req.Seed,
		Count:     req.Count,
		Forwarded: req.Forwarded,
		Handoff:   req.Handoff,
	})
	if err != nil {
		status, msg := registry.ReportErrStatus(err)
		epsRem, hasEps := registry.BudgetRemaining(err)
		return outcome{status: status, msg: msg, epsRem: epsRem, hasEps: hasEps}
	}
	s.reports.Add(1)
	return outcome{res: res, status: statusOK}
}

// handleReport answers one REPORT frame.
func (s *Server) handleReport(sc *serverConn, payload []byte) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	d := decoder{b: payload}
	reqID := d.u32()
	req, err := d.decodeRequest(s.intern)
	if err == nil {
		err = d.done("REPORT")
	}
	if err != nil {
		s.sendError(sc, reqID, 400, err.Error(), 0, false)
		return
	}
	ctx, cancel := s.frameCtx()
	out := s.resolve(ctx, &req)
	cancel()
	if out.status != statusOK {
		s.sendError(sc, reqID, out.status, out.msg, out.epsRem, out.hasEps)
		return
	}
	bp := getFrame(frameReportOK)
	*bp = appendU32(*bp, reqID)
	*bp = appendResult(*bp, out.res)
	out.res.Release()
	sc.writeFrame(bp)
}

// handleLease answers one LEASE frame from the shared registry lease
// pipeline, applying the same draw-cap limit as the report paths.
func (s *Server) handleLease(sc *serverConn, payload []byte) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	d := decoder{b: payload}
	reqID := d.u32()
	req, draws, token, err := d.decodeLeaseReq(s.intern)
	if err == nil {
		err = d.done("LEASE")
	}
	if err != nil {
		s.sendError(sc, reqID, 400, err.Error(), 0, false)
		return
	}
	if draws > s.cfg.MaxReportCount {
		s.sendError(sc, reqID, 422,
			fmt.Sprintf("count %d exceeds limit %d", draws, s.cfg.MaxReportCount), 0, false)
		return
	}
	ctx, cancel := s.frameCtx()
	grant, err := (*s.handler.Load()).Lease(ctx, registry.LeaseRequest{
		Region:    req.Region,
		Cell:      req.reqCell(),
		UID:       req.UID,
		Policy:    req.Policy,
		Seed:      req.Seed,
		Draws:     draws,
		Token:     token,
		Forwarded: req.Forwarded,
		Handoff:   req.Handoff,
	})
	cancel()
	if err != nil {
		status, msg := registry.ReportErrStatus(err)
		epsRem, hasEps := registry.BudgetRemaining(err)
		s.sendError(sc, reqID, status, msg, epsRem, hasEps)
		return
	}
	s.leases.Add(1)
	bp := getFrame(frameLeaseGrant)
	*bp = appendU32(*bp, reqID)
	*bp = appendLeaseGrant(*bp, grant)
	sc.writeFrame(bp)
}

// handleReports answers one REPORTS frame with per-item outcomes in
// request order, fanned out concurrently like POST /v1/reports — each
// shard's engine still bounds its own solve concurrency and the session
// managers serialize per-session draws.
func (s *Server) handleReports(sc *serverConn, payload []byte) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	d := decoder{b: payload}
	reqID := d.u32()
	n := d.uvarint()
	if d.err != nil {
		s.sendError(sc, reqID, 400, d.err.Error(), 0, false)
		return
	}
	if n == 0 {
		s.sendError(sc, reqID, 400, "batch has no items", 0, false)
		return
	}
	if n > uint64(s.cfg.MaxBatch) {
		s.sendError(sc, reqID, 413,
			fmt.Sprintf("batch of %d items exceeds limit %d", n, s.cfg.MaxBatch), 0, false)
		return
	}
	reqs := make([]Request, n)
	for i := range reqs {
		var err error
		reqs[i], err = d.decodeRequest(s.intern)
		if err != nil {
			s.sendError(sc, reqID, 400, err.Error(), 0, false)
			return
		}
	}
	if err := d.done("REPORTS"); err != nil {
		s.sendError(sc, reqID, 400, err.Error(), 0, false)
		return
	}
	s.batches.Add(1)
	s.batchItems.Add(n)
	ctx, cancel := s.frameCtx()
	outs := make([]outcome, n)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = s.resolve(ctx, &reqs[i])
		}(i)
	}
	wg.Wait()
	cancel()
	bp := getFrame(frameReportsOK)
	*bp = appendU32(*bp, reqID)
	*bp = appendUvarints(*bp, n)
	for i := range outs {
		if outs[i].status == statusOK {
			*bp = appendU16(*bp, uint16(statusOK))
			*bp = appendResult(*bp, outs[i].res)
			outs[i].res.Release()
		} else {
			*bp = appendItemError(*bp, outs[i].status, outs[i].msg, outs[i].epsRem, outs[i].hasEps)
		}
	}
	sc.writeFrame(bp)
}

// sendError writes an ERROR frame (best effort; a failed write surfaces
// as the connection's read error).
func (s *Server) sendError(sc *serverConn, reqID uint32, status int, msg string, epsRem float64, hasEps bool) {
	s.errorFrames.Add(1)
	bp := getFrame(frameError)
	*bp = appendU32(*bp, reqID)
	*bp = appendU16(*bp, uint16(status))
	if hasEps {
		*bp = append(*bp, errFlagEpsRemaining)
		*bp = appendF64(*bp, epsRem)
	} else {
		*bp = append(*bp, 0)
	}
	*bp = appendString(*bp, msg)
	sc.writeFrame(bp)
}

// Shutdown drains the server: stop accepting, say GOODBYE on every live
// connection, wait for in-flight frames to finish writing their responses
// (bounded by ctx), then close all connections. Registered listeners are
// closed immediately; Serve calls return ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for lis := range s.listeners {
		lis.Close()
	}
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()

	for _, sc := range conns {
		bp := getFrame(frameGoodbye)
		*bp = appendString(*bp, "server draining")
		if sc.writeFrame(bp) == nil {
			s.goodbyes.Add(1)
		}
	}

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Closing the connections unblocks every conn goroutine's read; after
	// that the connWG drains promptly regardless of client behavior.
	s.mu.Lock()
	for sc := range s.conns {
		sc.conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	return err
}

// Close force-closes the server without draining.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		ConnsTotal:   s.connsTotal.Load(),
		ConnsActive:  s.connsActive.Load(),
		Handshakes:   s.handshakes.Load(),
		FramesIn:     s.framesIn.Load(),
		FramesOut:    s.framesOut.Load(),
		BytesIn:      s.bytesIn.Load(),
		BytesOut:     s.bytesOut.Load(),
		Reports:      s.reports.Load(),
		Batches:      s.batches.Load(),
		BatchItems:   s.batchItems.Load(),
		Leases:       s.leases.Load(),
		ErrorFrames:  s.errorFrames.Load(),
		Oversized:    s.oversized.Load(),
		GoodbyesSent: s.goodbyes.Load(),
	}
}
