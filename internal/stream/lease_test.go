// Lease-pipeline end-to-end tests: the client-side draw path (POST
// /v1/lease and LEASE frames feeding internal/clientdraw) against the
// three server-side paths, plus the budget and token enforcement the
// offload depends on. External package for the same reason as
// stream_test.go: both wires against live servers.
package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"corgi/internal/budget"
	"corgi/internal/clientdraw"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/proto"
	"corgi/internal/registry"
	"corgi/internal/stream"
)

// TestLeaseTrajectoryEquivalence is the offload acceptance property: a
// seeded trajectory with a re-anchoring subtree crossing, drawn
// server-side in-process, yields the byte-identical draw sequence when
// the client draws it locally from leases acquired over HTTP and over
// the stream — including across renewals, whose caps are sized so every
// leased draw is consumed (unused draws are forfeited by design, so a
// client that wants continuity sizes caps exactly).
func TestLeaseTrajectoryEquivalence(t *testing.T) {
	const (
		seed  = int64(1337)
		uid   = int64(3)
		count = 4
	)
	pol := policy.Policy{PrivacyLevel: 1}

	type draw struct {
		q, r     int
		lat, lng float64
	}

	// Moves 0 and 1 sit at leafA, move 2 crosses to leafB (re-anchor),
	// move 3 crosses back. The initial lease pre-pays moves 0+1 in one
	// 8-draw cap; each crossing renews with an exact 4-draw cap.
	worldOf := func(reg *registry.Registry) (*loctree.Tree, loctree.NodeID, loctree.NodeID) {
		tree, _ := leaves(t, reg, "ra")
		leafA := tree.LeavesUnder(tree.LevelNodes(1)[0])[0]
		leafB := tree.LeavesUnder(tree.LevelNodes(1)[1])[0]
		return tree, leafA, leafB
	}

	// Server-side reference: the registry pipeline directly.
	var inproc []draw
	{
		reg := newRegistry(t, registry.Options{}, "ra")
		_, leafA, leafB := worldOf(reg)
		for i, leaf := range []loctree.NodeID{leafA, leafA, leafB, leafA} {
			res, err := reg.Report(context.Background(), registry.ReportRequest{
				Region: "ra", Cell: leaf.Coord, UID: uid,
				Policy: pol, Seed: seed, Count: count,
			})
			if err != nil {
				t.Fatalf("in-proc move %d: %v", i, err)
			}
			for j, n := range res.Reports {
				c := res.Centers[j]
				inproc = append(inproc, draw{n.Coord.Q, n.Coord.R, c.Lat, c.Lng})
			}
		}
	}

	// drawLocal replays the trajectory from leases acquired via acquire:
	// initial 8-draw lease at leafA, then 4-draw renewals at leafB and
	// leafA. Every grant's RNG position must land exactly where the
	// in-process stream stood: 0, 8, 12. useRenew picks the renewal
	// constructor — Renew's RNG handover and Open's burn-from-seed must
	// produce the same stream.
	drawLocal := func(tree *loctree.Tree, leafA, leafB loctree.NodeID, useRenew bool,
		acquire func(leaf loctree.NodeID, draws int, token []byte) (*registry.LeaseGrant, error)) []draw {

		var out []draw
		consume := func(l *clientdraw.Lease, leaf loctree.NodeID, n int) {
			t.Helper()
			nodes, err := l.DrawCellN(leaf, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, nd := range nodes {
				c := tree.Center(nd)
				out = append(out, draw{nd.Coord.Q, nd.Coord.R, c.Lat, c.Lng})
			}
		}
		open := func(prev *clientdraw.Lease, g *registry.LeaseGrant, wantPos uint64, wantRenewed bool) *clientdraw.Lease {
			t.Helper()
			if g.RNGPos != wantPos || g.Renewed != wantRenewed {
				t.Fatalf("grant at pos %d (renewed %v), want %d (%v)",
					g.RNGPos, g.Renewed, wantPos, wantRenewed)
			}
			var l *clientdraw.Lease
			var err error
			if prev != nil && useRenew {
				l, err = prev.Renew(g.Bundle, g.Token)
			} else {
				l, err = clientdraw.Open(tree, g.Bundle, g.Token)
			}
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil && prev.Remaining() != 0 {
				t.Fatalf("retired lease still reports %d draws", prev.Remaining())
			}
			return l
		}

		g, err := acquire(leafA, 2*count, nil)
		if err != nil {
			t.Fatal(err)
		}
		l := open(nil, g, 0, false)
		consume(l, leafA, count) // move 0
		consume(l, leafA, count) // move 1
		if l.Remaining() != 0 {
			t.Fatalf("lease has %d draws left after exact consumption", l.Remaining())
		}
		if _, err := l.DrawCell(leafA); !errors.Is(err, clientdraw.ErrLeaseExhausted) {
			t.Fatalf("draw past cap: %v, want ErrLeaseExhausted", err)
		}

		g, err = acquire(leafB, count, l.Token()) // move 2: crossing
		if err != nil {
			t.Fatal(err)
		}
		if !g.Reanchored {
			t.Fatal("renewal across subtrees did not re-anchor")
		}
		l = open(l, g, 2*count, true)
		consume(l, leafB, count)

		g, err = acquire(leafA, count, l.Token()) // move 3: crossing back
		if err != nil {
			t.Fatal(err)
		}
		l = open(l, g, 3*count, true)
		consume(l, leafA, count)
		return out
	}

	// Lease over HTTP+JSON: POST /v1/lease, draws on-device.
	var overHTTP []draw
	{
		reg := newRegistry(t, registry.Options{}, "ra")
		tree, leafA, leafB := worldOf(reg)
		h, err := proto.NewMultiHandler(reg)
		if err != nil {
			t.Fatal(err)
		}
		hsrv := httptest.NewServer(h.Mux())
		t.Cleanup(hsrv.Close)
		hc := proto.NewClient(hsrv.URL)
		overHTTP = drawLocal(tree, leafA, leafB, false,
			func(leaf loctree.NodeID, draws int, token []byte) (*registry.LeaseGrant, error) {
				lr, err := hc.Lease(proto.LeaseRequest{
					Region: "ra", Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, UID: uid,
					Policy: pol, Seed: seed, Draws: draws, Token: token,
				})
				if err != nil {
					return nil, err
				}
				return &registry.LeaseGrant{
					Reanchored: lr.Reanchored, Renewed: lr.Renewed,
					DrawCap: lr.DrawCap, RNGPos: lr.RNGPos,
					Token: lr.Token, Bundle: lr.Bundle,
				}, nil
			})
	}

	// Lease over the stream: LEASE/LEASE_GRANT frames on one connection.
	var overStream []draw
	{
		reg := newRegistry(t, registry.Options{}, "ra")
		tree, leafA, leafB := worldOf(reg)
		_, addr := startStream(t, reg, stream.Config{})
		sc := stream.NewClient(addr, stream.ClientConfig{Timeout: 10 * time.Second})
		defer sc.Close()
		overStream = drawLocal(tree, leafA, leafB, true,
			func(leaf loctree.NodeID, draws int, token []byte) (*registry.LeaseGrant, error) {
				return sc.Lease(stream.Request{
					Region: "ra", Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, UID: uid,
					Policy: pol, Seed: seed,
				}, draws, token)
			})
	}

	if len(inproc) != 4*count || len(overHTTP) != len(inproc) || len(overStream) != len(inproc) {
		t.Fatalf("draw counts: in-proc %d, lease/http %d, lease/stream %d",
			len(inproc), len(overHTTP), len(overStream))
	}
	for i := range inproc {
		// Exact equality, centers included: the bundle carries full float64
		// weight bits and the client recomputes centers from the same tree,
		// so even one ulp of drift is a real bug.
		if overHTTP[i] != inproc[i] {
			t.Fatalf("draw %d: lease/http %+v != in-proc %+v", i, overHTTP[i], inproc[i])
		}
		if overStream[i] != inproc[i] {
			t.Fatalf("draw %d: lease/stream %+v != in-proc %+v", i, overStream[i], inproc[i])
		}
	}
}

// TestLeaseBudgetExhaustion pins the zero-over-spend property: a lease
// charges its whole cap up front, and a renewal the window cannot cover
// answers 429 with the user's live headroom — on both wires — without
// spending anything.
func TestLeaseBudgetExhaustion(t *testing.T) {
	const eps = 15.0 // registry default epsilon for specs that leave it zero
	opts := registry.Options{Budget: budget.Config{LimitEps: 10 * eps, Window: time.Hour}}
	pol := policy.Policy{PrivacyLevel: 1}

	// HTTP wire.
	regH := newRegistry(t, opts, "ra")
	_, leafNodes := leaves(t, regH, "ra")
	cell := [2]int{leafNodes[0].Coord.Q, leafNodes[0].Coord.R}
	h, err := proto.NewMultiHandler(regH)
	if err != nil {
		t.Fatal(err)
	}
	hsrv := httptest.NewServer(h.Mux())
	t.Cleanup(hsrv.Close)
	hc := proto.NewClient(hsrv.URL)

	lr, err := hc.Lease(proto.LeaseRequest{
		Region: "ra", Cell: cell, UID: 5, Policy: pol, Seed: 1, Draws: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Budgeted || lr.EpsSpent != 8*eps || lr.EpsRemaining != 2*eps {
		t.Fatalf("issue: budgeted=%v spent=%v remaining=%v", lr.Budgeted, lr.EpsSpent, lr.EpsRemaining)
	}
	// 4 more draws cost 60 against 30 of headroom: refused, headroom intact.
	_, err = hc.Lease(proto.LeaseRequest{
		Region: "ra", Cell: cell, UID: 5, Policy: pol, Seed: 1, Draws: 4, Token: lr.Token,
	})
	var le *proto.LeaseError
	if !errors.As(err, &le) || le.Status != http.StatusTooManyRequests {
		t.Fatalf("over-cap renewal: %v", err)
	}
	if !le.HasEpsRemaining || le.EpsRemaining != 2*eps {
		t.Fatalf("429 headroom: %+v", le)
	}
	// A renewal the headroom does cover still succeeds: the refusal spent
	// nothing.
	if lr, err = hc.Lease(proto.LeaseRequest{
		Region: "ra", Cell: cell, UID: 5, Policy: pol, Seed: 1, Draws: 2, Token: lr.Token,
	}); err != nil {
		t.Fatalf("exact-headroom renewal: %v", err)
	}
	if lr.EpsRemaining != 0 {
		t.Fatalf("headroom after exact renewal: %v", lr.EpsRemaining)
	}
	// Issued counts every grant (renewals included); the refused renewal
	// counted only as a budget denial.
	if st := regH.LeaseStats(); st.DeniedBudget != 1 || st.Issued != 2 || st.Renewed != 1 || st.DrawsGranted != 10 {
		t.Fatalf("lease stats: %+v", st)
	}

	// Stream wire: same refusal as a *StatusError with the headroom field.
	regS := newRegistry(t, opts, "ra")
	_, addr := startStream(t, regS, stream.Config{})
	sc := stream.NewClient(addr, stream.ClientConfig{Timeout: 10 * time.Second})
	defer sc.Close()
	req := stream.Request{Region: "ra", Cell: cell, UID: 5, Policy: pol, Seed: 1}
	g, err := sc.Lease(req, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Budgeted || g.EpsSpent != 8*eps || g.EpsRemaining != 2*eps {
		t.Fatalf("stream issue: %+v", g)
	}
	_, err = sc.Lease(req, 4, g.Token)
	var se *stream.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("stream over-cap renewal: %v", err)
	}
	if !se.HasEpsRemaining || se.EpsRemaining != 2*eps {
		t.Fatalf("stream 429 headroom: %+v", se)
	}
}

// TestLeaseTokenRejections pins the key-gating: a tampered token, a
// genuinely-signed-but-expired token, and a token presented by the wrong
// user all answer 403 on both wires, and the registry counts them.
func TestLeaseTokenRejections(t *testing.T) {
	secret := bytes.Repeat([]byte{0x5a}, 32)
	reg := newRegistry(t, registry.Options{LeaseSecret: secret}, "ra")
	_, leafNodes := leaves(t, reg, "ra")
	cell := [2]int{leafNodes[0].Coord.Q, leafNodes[0].Coord.R}
	pol := policy.Policy{PrivacyLevel: 1}

	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	hsrv := httptest.NewServer(h.Mux())
	t.Cleanup(hsrv.Close)
	hc := proto.NewClient(hsrv.URL)
	_, addr := startStream(t, reg, stream.Config{})
	sc := stream.NewClient(addr, stream.ClientConfig{Timeout: 10 * time.Second})
	defer sc.Close()

	lr, err := hc.Lease(proto.LeaseRequest{
		Region: "ra", Cell: cell, UID: 9, Policy: pol, Seed: 2, Draws: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantHTTP403 := func(req proto.LeaseRequest) {
		t.Helper()
		_, err := hc.Lease(req)
		var le *proto.LeaseError
		if !errors.As(err, &le) || le.Status != http.StatusForbidden {
			t.Fatalf("want 403 LeaseError, got %v", err)
		}
	}

	// Tampered: one flipped byte in the signed payload.
	forged := append([]byte(nil), lr.Token...)
	forged[8] ^= 0x01
	wantHTTP403(proto.LeaseRequest{
		Region: "ra", Cell: cell, UID: 9, Policy: pol, Seed: 2, Draws: 2, Token: forged,
	})
	_, err = sc.Lease(stream.Request{
		Region: "ra", Cell: cell, UID: 9, Policy: pol, Seed: 2,
	}, 2, forged)
	var se *stream.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusForbidden {
		t.Fatalf("stream forged token: %v", err)
	}

	// Expired: the exact claims of the real token, correctly signed under
	// the server's own secret, but past its expiry.
	tok, err := budget.DecodeLeaseToken(lr.Token)
	if err != nil {
		t.Fatal(err)
	}
	kr, err := budget.NewKeyring(secret)
	if err != nil {
		t.Fatal(err)
	}
	tok.ExpiresAt = time.Now().Add(-time.Minute).UnixMilli()
	wantHTTP403(proto.LeaseRequest{
		Region: "ra", Cell: cell, UID: 9, Policy: pol, Seed: 2, Draws: 2, Token: kr.Sign(tok),
	})

	// Wrong presenter: a valid token under a different request UID.
	wantHTTP403(proto.LeaseRequest{
		Region: "ra", Cell: cell, UID: 10, Policy: pol, Seed: 2, Draws: 2, Token: lr.Token,
	})

	if st := reg.LeaseStats(); st.DeniedToken != 4 {
		t.Fatalf("denied_token = %d, want 4: %+v", st.DeniedToken, st)
	}

	// The denials never touched the session: the original lease still
	// renews and continues at the position it granted.
	lr2, err := hc.Lease(proto.LeaseRequest{
		Region: "ra", Cell: cell, UID: 9, Policy: pol, Seed: 2, Draws: 2, Token: lr.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lr2.Renewed || lr2.RNGPos != 2 {
		t.Fatalf("renewal after denials: renewed=%v pos=%d", lr2.Renewed, lr2.RNGPos)
	}
}

// TestMaxReportCountLimit pins the shared draw-count ceiling: every
// transport path — report, batch item, and lease — refuses a count of
// registry.DefaultMaxReportCount+1 with the same 422 classification.
func TestMaxReportCountLimit(t *testing.T) {
	over := registry.DefaultMaxReportCount + 1
	pol := policy.Policy{PrivacyLevel: 1}

	reg := newRegistry(t, registry.Options{}, "ra")
	_, leafNodes := leaves(t, reg, "ra")
	cell := [2]int{leafNodes[0].Coord.Q, leafNodes[0].Coord.R}
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		t.Fatal(err)
	}
	hsrv := httptest.NewServer(h.Mux())
	t.Cleanup(hsrv.Close)
	hc := proto.NewClient(hsrv.URL)
	_, addr := startStream(t, reg, stream.Config{})
	sc := stream.NewClient(addr, stream.ClientConfig{Timeout: 10 * time.Second})
	defer sc.Close()

	statusOf := func(err error) int {
		t.Helper()
		var se *stream.StatusError
		if errors.As(err, &se) {
			return se.Status
		}
		var le *proto.LeaseError
		if errors.As(err, &le) {
			return le.Status
		}
		t.Fatalf("unclassified error: %v", err)
		return 0
	}

	cases := []struct {
		name  string
		issue func() int
	}{
		{"http report", func() int {
			body, _ := json.Marshal(proto.ReportRequest{
				Region: "ra", Cell: cell, Policy: pol, Count: over,
			})
			resp, err := http.Post(hsrv.URL+"/v1/report", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp.StatusCode
		}},
		{"http batch item", func() int {
			br, err := hc.ReportBatch([]proto.ReportRequest{
				{Region: "ra", Cell: cell, Policy: pol, Count: over},
			})
			if err != nil {
				t.Fatal(err)
			}
			return br.Items[0].Status
		}},
		{"http lease", func() int {
			_, err := hc.Lease(proto.LeaseRequest{
				Region: "ra", Cell: cell, Policy: pol, Draws: over,
			})
			return statusOf(err)
		}},
		{"stream report", func() int {
			_, err := sc.Report(stream.Request{Region: "ra", Cell: cell, Policy: pol, Count: over})
			return statusOf(err)
		}},
		{"stream batch item", func() int {
			items, err := sc.ReportBatch([]stream.Request{
				{Region: "ra", Cell: cell, Policy: pol, Count: over},
			})
			if err != nil {
				t.Fatal(err)
			}
			return items[0].Status
		}},
		{"stream lease", func() int {
			_, err := sc.Lease(stream.Request{Region: "ra", Cell: cell, Policy: pol}, over, nil)
			return statusOf(err)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.issue(); got != http.StatusUnprocessableEntity {
				t.Fatalf("count %d answered %d, want 422", over, got)
			}
		})
	}
	// The limit itself is the shared constant, not a per-transport copy.
	if proto.DefaultMaxReportCount != registry.DefaultMaxReportCount {
		t.Fatal("transport limit diverged from registry limit")
	}
}
