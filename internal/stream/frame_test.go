package stream

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"testing/iotest"
	"time"

	"corgi/internal/policy"
	"corgi/internal/registry"
)

// rawFrame assembles one complete frame without the pooled-buffer path, so
// protocol tests control every byte.
func rawFrame(ftype byte, payload []byte) []byte {
	b := make([]byte, 4, 5+len(payload))
	b = append(b, ftype)
	b = append(b, payload...)
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	return b
}

// TestFrameReaderPartialDelivery feeds frames one byte per Read — the
// pathological TCP segmentation — and expects both to arrive intact.
func TestFrameReaderPartialDelivery(t *testing.T) {
	var wire []byte
	wire = append(wire, rawFrame(frameGoodbye, appendString(nil, "first"))...)
	wire = append(wire, rawFrame(frameError, []byte{1, 2, 3})...)

	fr := newFrameReader(iotest.OneByteReader(bytes.NewReader(wire)), 0)
	ftype, payload, err := fr.next()
	if err != nil || ftype != frameGoodbye {
		t.Fatalf("frame 1: type %d, err %v", ftype, err)
	}
	d := decoder{b: payload}
	if got := d.str(); got != "first" || d.done("GOODBYE") != nil {
		t.Fatalf("frame 1 payload: %q", got)
	}
	ftype, payload, err = fr.next()
	if err != nil || ftype != frameError || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("frame 2: type %d payload %v err %v", ftype, payload, err)
	}
	if _, _, err = fr.next(); err != io.EOF {
		t.Fatalf("after last frame: %v", err)
	}
}

func TestFrameReaderRejectsMalformedHeaders(t *testing.T) {
	// Declared length beyond the bound: the reader refuses before buffering.
	huge := make([]byte, 4)
	binary.LittleEndian.PutUint32(huge, 1<<30)
	fr := newFrameReader(bytes.NewReader(huge), 1<<10)
	if _, _, err := fr.next(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}

	// A full header followed by a short body is a torn connection, not EOF.
	torn := rawFrame(frameGoodbye, []byte("hello"))[:7]
	fr = newFrameReader(bytes.NewReader(torn), 0)
	if _, _, err := fr.next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body: %v", err)
	}

	// Zero-length frames carry no type byte.
	fr = newFrameReader(bytes.NewReader(make([]byte, 4)), 0)
	if _, _, err := fr.next(); err == nil {
		t.Fatal("empty frame accepted")
	}
}

// TestRequestWireRoundTrip exercises every predicate kind through the
// request codec.
func TestRequestWireRoundTrip(t *testing.T) {
	req := Request{
		Region: "ra",
		Cell:   [2]int{-3, 7},
		UID:    42,
		Policy: policy.Policy{
			PrivacyLevel:   2,
			PrecisionLevel: 1,
			Preferences: []policy.Predicate{
				{Var: "home", Op: policy.OpNe, Val: policy.Bool(true)},
				{Var: "distance", Op: policy.OpLe, Val: policy.Number(5.5)},
				{Var: "kind", Op: policy.OpEq, Val: policy.String("bar")},
			},
		},
		Seed:  -9,
		Count: 3,
	}
	d := decoder{b: appendRequest(nil, &req)}
	got, err := d.decodeRequest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.done("request"); err != nil {
		t.Fatal(err)
	}
	if got.Region != req.Region || got.Cell != req.Cell || got.UID != req.UID ||
		got.Seed != req.Seed || got.Count != req.Count ||
		got.PrivacyLevel != req.PrivacyLevel || got.PrecisionLevel != req.PrecisionLevel {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Preferences) != 3 {
		t.Fatalf("preferences: %+v", got.Preferences)
	}
	for i, p := range got.Preferences {
		if p != req.Preferences[i] {
			t.Fatalf("preference %d: %+v != %+v", i, p, req.Preferences[i])
		}
	}
}

func frameTestRegistry(t *testing.T, names ...string) *registry.Registry {
	t.Helper()
	specs := make([]registry.Spec, len(names))
	for i, name := range names {
		specs[i] = registry.Spec{
			Name:      name,
			CenterLat: 37.765 + float64(i),
			CenterLng: -122.435,
			Height:    2, Iterations: 1, Targets: 3,
			UniformPriors: true,
		}
	}
	reg, err := registry.New(specs, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func frameTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	reg := frameTestRegistry(t, "ra")
	srv, err := NewServer(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// TestServerSurvivesPartialFrameDelivery drives a real server connection
// one byte per write: handshake and a REPORT must still resolve.
func TestServerSurvivesPartialFrameDelivery(t *testing.T) {
	srv, addr := frameTestServer(t, Config{})
	reg := srv.reg
	sh, err := reg.Shard(context.Background(), "ra")
	if err != nil {
		t.Fatal(err)
	}
	leaf := sh.Server.Tree().LevelNodes(0)[0]

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	writeByByte := func(b []byte) {
		t.Helper()
		for i := range b {
			if _, err := conn.Write(b[i : i+1]); err != nil {
				t.Fatalf("write byte %d/%d: %v", i, len(b), err)
			}
		}
	}
	hello := append([]byte(Magic), Version, Version)
	writeByByte(rawFrame(frameHello, hello))

	fr := newFrameReader(bufio.NewReader(conn), 0)
	ftype, _, err := fr.next()
	if err != nil || ftype != frameWelcome {
		t.Fatalf("handshake: type %d, err %v", ftype, err)
	}

	req := Request{
		Region: "ra",
		Cell:   [2]int{leaf.Coord.Q, leaf.Coord.R},
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   5, Count: 3,
	}
	payload := appendU32(nil, 7)
	payload = appendRequest(payload, &req)
	writeByByte(rawFrame(frameReport, payload))

	ftype, payload, err = fr.next()
	if err != nil || ftype != frameReportOK {
		t.Fatalf("REPORT answer: type %d, err %v", ftype, err)
	}
	d := decoder{b: payload}
	if id := d.u32(); id != 7 {
		t.Fatalf("reqID %d, want 7", id)
	}
	resp, err := d.decodeResponse()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Region != "ra" || len(resp.Reports) != 3 {
		t.Fatalf("response: %+v", resp)
	}
}

// TestServerRejectsOversizedFrame expects ERROR 413 with reqID 0 (a
// connection-level fault) and a closed connection after it.
func TestServerRejectsOversizedFrame(t *testing.T) {
	srv, addr := frameTestServer(t, Config{MaxFrameBytes: 1 << 12})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	hello := append([]byte(Magic), Version, Version)
	if _, err := conn.Write(rawFrame(frameHello, hello)); err != nil {
		t.Fatal(err)
	}
	fr := newFrameReader(bufio.NewReader(conn), 0)
	if ftype, _, err := fr.next(); err != nil || ftype != frameWelcome {
		t.Fatalf("handshake: type %d, err %v", ftype, err)
	}

	// A header declaring 2 MiB against the 4 KiB server bound.
	huge := make([]byte, 4)
	binary.LittleEndian.PutUint32(huge, 2<<20)
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}

	ftype, payload, err := fr.next()
	if err != nil || ftype != frameError {
		t.Fatalf("expected ERROR frame, got type %d, err %v", ftype, err)
	}
	d := decoder{b: payload}
	if id := d.u32(); id != 0 {
		t.Fatalf("connection-level ERROR carries reqID %d, want 0", id)
	}
	var se *StatusError
	if err := decodeErrorFrame(payload); !errors.As(err, &se) || se.Status != 413 {
		t.Fatalf("ERROR decode: %v", err)
	}
	// The server closes after a connection-level fault.
	if _, _, err := fr.next(); err == nil {
		t.Fatal("connection still open after oversized frame")
	}
	if got := srv.Stats().Oversized; got != 1 {
		t.Fatalf("oversized counter %d, want 1", got)
	}
}
