package stream_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"corgi/internal/policy"
	"corgi/internal/registry"
	"corgi/internal/stream"
)

// TestClientReconnectBackoff exercises the fail-fast breaker end to end:
// two consecutive dial failures open it (ErrNodeDown in microseconds, no
// dial timeout spent), the half-open probe closes it once the node is
// back on the same address, and traffic returns — the recovery half of
// cluster failover.
func TestClientReconnectBackoff(t *testing.T) {
	reg := newRegistry(t, registry.Options{}, "ra")
	_, leafNodes := leaves(t, reg, "ra")
	leaf := leafNodes[0]
	req := stream.Request{
		Region: "ra", Cell: [2]int{leaf.Coord.Q, leaf.Coord.R}, UID: 5,
		Policy: policy.Policy{PrivacyLevel: 1}, Seed: 3, Count: 1,
	}

	// Reserve an address with nothing listening on it.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	backoff := 50 * time.Millisecond
	c := stream.NewClient(addr, stream.ClientConfig{
		Timeout:          5 * time.Second,
		DialTimeout:      time.Second,
		ReconnectBackoff: backoff,
	})
	defer c.Close()

	if !c.Healthy() {
		t.Fatal("fresh client reports unhealthy")
	}
	// Two dial failures open the breaker (one alone must not: it may be a
	// node restarting mid-exchange, which the retry-once policy handles).
	for i := 0; i < 2; i++ {
		if _, err := c.Report(req); err == nil {
			t.Fatal("report succeeded with nothing listening")
		} else if errors.Is(err, stream.ErrNodeDown) {
			t.Fatalf("dial attempt %d failed fast before the breaker should open", i+1)
		}
	}
	if c.Healthy() {
		t.Fatal("client healthy after two refused dials")
	}

	// Breaker open: refusals are immediate, no dial spent.
	dialsBefore := c.Stats().Dials
	start := time.Now()
	if _, err := c.Report(req); !errors.Is(err, stream.ErrNodeDown) {
		t.Fatalf("want ErrNodeDown inside backoff, got %v", err)
	}
	if d := time.Since(start); d > backoff {
		t.Fatalf("fail-fast took %v, longer than the backoff itself", d)
	}
	st := c.Stats()
	if st.Dials != dialsBefore {
		t.Fatalf("fail-fast spent a dial: %d -> %d", dialsBefore, st.Dials)
	}
	if st.FailFast == 0 {
		t.Fatal("fail-fast counter not incremented")
	}

	// Revive the node on the same address.
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	srv, err := stream.NewServer(reg, stream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis2)
	t.Cleanup(func() { srv.Close() })

	// After the backoff expires, the next call is the half-open probe and
	// must find the recovered node. The second failure doubled the
	// backoff, so allow a few windows before declaring the client stuck.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Report(req)
		if err == nil {
			break
		}
		if !errors.Is(err, stream.ErrNodeDown) {
			t.Fatalf("probe hit recovered node and failed: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never returned to a recovered node")
		}
		time.Sleep(backoff / 2)
	}
	if !c.Healthy() {
		t.Fatal("client unhealthy after successful exchange")
	}
	if st := c.Stats(); st.Probes == 0 {
		t.Fatalf("recovery did not go through a half-open probe: %+v", st)
	}

	// The breaker is closed: the next exchange works without waiting.
	if _, err := c.Report(req); err != nil {
		t.Fatalf("report after recovery: %v", err)
	}
}
