package stream_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"corgi/internal/hexgrid"
	"corgi/internal/policy"
	"corgi/internal/proto"
	"corgi/internal/registry"
	"corgi/internal/stream"

	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
)

// benchTarget is one (region, cell) the closed loop cycles through.
type benchTarget struct {
	region string
	cell   [2]int
}

// benchSetup bootstraps the three-region registry both transports share
// in spirit (each caller builds its own so sessions replay identically)
// and returns its warm targets.
func benchSetup(tb testing.TB) (*registry.Registry, []benchTarget) {
	tb.Helper()
	specs := streamSpecs("bench-a", "bench-b", "bench-c")
	reg, err := registry.New(specs, registry.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	if err := reg.BootstrapAll(ctx); err != nil {
		tb.Fatal(err)
	}
	var targets []benchTarget
	for _, spec := range specs {
		sh, err := reg.Shard(ctx, spec.Name)
		if err != nil {
			tb.Fatal(err)
		}
		for _, leaf := range sh.Server.Tree().LevelNodes(0)[:8] {
			targets = append(targets, benchTarget{spec.Name, [2]int{leaf.Coord.Q, leaf.Coord.R}})
		}
	}
	// Warm every (region, subtree) entry so measurement is steady state,
	// not LP solves.
	for i, tg := range targets {
		if _, err := reg.Report(ctx, registry.ReportRequest{
			Region: tg.region,
			Cell:   hexgrid.Coord{Q: tg.cell[0], R: tg.cell[1]},
			UID:    int64(i % 32),
			Policy: policy.Policy{PrivacyLevel: 1},
			Seed:   int64(i % 32),
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return reg, targets
}

const benchReportCount = 16 // draws per request, both transports

// BenchmarkReportHTTP measures one POST /v1/report round trip — JSON
// encode, HTTP framing, handler, JSON response — on a warm server.
func BenchmarkReportHTTP(b *testing.B) {
	reg, targets := benchSetup(b)
	h, err := proto.NewMultiHandler(reg)
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(h.Mux())
	defer srv.Close()
	c := proto.NewClient(srv.URL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg := targets[i%len(targets)]
		if _, err := c.Report(proto.ReportRequest{
			Region: tg.region, Cell: tg.cell, UID: int64(i % 32),
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: int64(i % 32),
			Count: benchReportCount,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportStream measures the same request as one REPORT frame
// exchange on a persistent corgi-stream connection.
func BenchmarkReportStream(b *testing.B) {
	reg, targets := benchSetup(b)
	_, addr := startStreamB(b, reg)
	c := stream.NewClient(addr, stream.ClientConfig{Timeout: 30 * time.Second})
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg := targets[i%len(targets)]
		if _, err := c.Report(stream.Request{
			Region: tg.region, Cell: tg.cell, UID: int64(i % 32),
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: int64(i % 32),
			Count: benchReportCount,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// startStreamB is startStream for benchmarks (testing.TB has no Cleanup
// ordering guarantee worth relying on mid-benchmark).
func startStreamB(tb testing.TB, reg *registry.Registry) (*stream.Server, string) {
	tb.Helper()
	srv, err := stream.NewServer(reg, stream.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go srv.Serve(lis)
	tb.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// benchPR6Report is the BENCH_pr6.json shape consumed by CI: both
// transports' sustained request rates on the same three-region setup,
// measured closed-loop with identical workloads.
type benchPR6Report struct {
	HTTPReqPerSec   float64 `json:"http_req_per_sec"`
	StreamReqPerSec float64 `json:"stream_req_per_sec"`
	// Speedup = stream / http; the acceptance bar is >= 20.
	Speedup     float64 `json:"stream_speedup"`
	Regions     int     `json:"regions"`
	Concurrency int     `json:"concurrency"`
	ReportCount int     `json:"report_count"`
	// Bytes per request on each wire (response traffic / requests).
	HTTPBytesPerReq   float64 `json:"http_bytes_per_req"`
	StreamBytesPerReq float64 `json:"stream_bytes_per_req"`
}

// closedLoop drives issue from workers goroutines for the window and
// returns sustained requests/second.
func closedLoop(t *testing.T, workers int, window time.Duration, issue func(w, i int) error) float64 {
	t.Helper()
	var (
		wg    sync.WaitGroup
		total int64
		mu    sync.Mutex
		first error
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := 0
			for time.Since(start) < window {
				if err := issue(w, n); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				n++
			}
			mu.Lock()
			total += int64(n)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if first != nil {
		t.Fatal(first)
	}
	return float64(total) / time.Since(start).Seconds()
}

// TestBenchReportPR6 writes BENCH_pr6.json for the CI benchmark artifact:
// HTTP+JSON vs corgi-stream on the same three-region setup, same closed
// loop, same draw counts. Skipped unless BENCH_PR6_OUT names the output
// path, so regular test runs stay fast.
func TestBenchReportPR6(t *testing.T) {
	out := os.Getenv("BENCH_PR6_OUT")
	if out == "" {
		t.Skip("set BENCH_PR6_OUT=path to generate the benchmark report")
	}
	const (
		workers = 8
		window  = 2 * time.Second
	)

	// HTTP+JSON. Fresh registry so both transports replay identical
	// session streams.
	regHTTP, targets := benchSetup(t)
	h, err := proto.NewMultiHandler(regHTTP)
	if err != nil {
		t.Fatal(err)
	}
	hsrv := httptest.NewServer(h.Mux())
	defer hsrv.Close()
	hc := proto.NewClient(hsrv.URL)
	httpRate := closedLoop(t, workers, window, func(w, i int) error {
		tg := targets[(w*31+i)%len(targets)]
		_, err := hc.Report(proto.ReportRequest{
			Region: tg.region, Cell: tg.cell, UID: int64(w),
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: int64(w),
			Count: benchReportCount,
		})
		return err
	})

	// corgi-stream, identical workload.
	regStream, _ := benchSetup(t)
	streamSrv, addr := startStreamB(t, regStream)
	sc := stream.NewClient(addr, stream.ClientConfig{
		Timeout: 30 * time.Second, MaxIdleConns: workers,
	})
	defer sc.Close()
	streamRate := closedLoop(t, workers, window, func(w, i int) error {
		tg := targets[(w*31+i)%len(targets)]
		_, err := sc.Report(stream.Request{
			Region: tg.region, Cell: tg.cell, UID: int64(w),
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: int64(w),
			Count: benchReportCount,
		})
		return err
	})

	// One raw round trip sizes the HTTP response body (headers excluded,
	// which flatters HTTP); the stream side divides actual wire bytes by
	// answered requests.
	rawBody, _ := json.Marshal(proto.ReportRequest{
		Region: targets[0].region, Cell: targets[0].cell, UID: 0,
		Policy: policy.Policy{PrivacyLevel: 1}, Seed: 0, Count: benchReportCount,
	})
	rawResp, err := http.Post(hsrv.URL+"/v1/report", "application/json", bytes.NewReader(rawBody))
	if err != nil {
		t.Fatal(err)
	}
	httpRespBytes, _ := io.Copy(io.Discard, rawResp.Body)
	rawResp.Body.Close()

	speedup := streamRate / httpRate
	st := streamSrv.Stats()
	cs := sc.Stats()
	rep := benchPR6Report{
		HTTPReqPerSec:     math.Round(httpRate),
		StreamReqPerSec:   math.Round(streamRate),
		Speedup:           math.Round(speedup*10) / 10,
		Regions:           3,
		Concurrency:       workers,
		ReportCount:       benchReportCount,
		HTTPBytesPerReq:   float64(httpRespBytes),
		StreamBytesPerReq: math.Round(float64(cs.BytesIn) / math.Max(1, float64(st.Reports))),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_pr6: %s\n", data)
	if speedup < 20 {
		t.Fatalf("stream sustained only %.1fx the HTTP+JSON rate (acceptance: >= 20x)", speedup)
	}
}
