package gowalla

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
)

func testTree(t *testing.T) *loctree.Tree {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(GenConfig{Seed: 1, NumUsers: 60, NumPlaces: 300, NumCheckIns: 4000})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLoadRoundTrip(t *testing.T) {
	in := strings.Join([]string{
		"0\t2010-10-19T23:55:27Z\t37.774900\t-122.419400\t12",
		"",
		"# comment",
		"7\t2009-02-01T08:00:00Z\t37.800000\t-122.400000\t99",
	}, "\n")
	cs, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d check-ins", len(cs))
	}
	if cs[0].UserID != 0 || cs[0].PlaceID != 12 || cs[0].Loc.Lat != 37.7749 {
		t.Errorf("first record wrong: %+v", cs[0])
	}
	if cs[1].Time.Hour() != 8 {
		t.Errorf("time parsed wrong: %v", cs[1].Time)
	}
	var buf bytes.Buffer
	if err := Save(&buf, cs); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].PlaceID != 99 {
		t.Errorf("save/load roundtrip lost data: %+v", back)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"1\t2010-01-01T00:00:00Z\t37.0",                         // too few fields
		"x\t2010-01-01T00:00:00Z\t37.0\t-122.0\t1",              // bad user
		"1\tnot-a-time\t37.0\t-122.0\t1",                        // bad time
		"1\t2010-01-01T00:00:00Z\tabc\t-122.0\t1",               // bad lat
		"1\t2010-01-01T00:00:00Z\t37.0\tabc\t1",                 // bad lng
		"1\t2010-01-01T00:00:00Z\t37.0\t-122.0\tzz",             // bad place
		"1\t2010-01-01T00:00:00Z\t95.0\t-122.0\t1",              // invalid point
		"1\t2010-01-01T00:00:00Z\t37.0\t-122.0\t1\textra\tmore", // too many
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("line %q should fail", c)
		}
	}
}

func TestFilterBBox(t *testing.T) {
	cs := []CheckIn{
		{Loc: geo.LatLng{Lat: 37.77, Lng: -122.42}},
		{Loc: geo.LatLng{Lat: 40.0, Lng: -74.0}},
	}
	got := FilterBBox(cs, geo.SanFrancisco)
	if len(got) != 1 {
		t.Fatalf("filtered %d, want 1", len(got))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{NumUsers: 100, NumPlaces: 5, NumCheckIns: 1000}); err == nil {
		t.Error("too few places must fail")
	}
	if _, err := Generate(GenConfig{NumUsers: 100, NumPlaces: 100, NumCheckIns: 10}); err == nil {
		t.Error("fewer check-ins than users must fail")
	}
	if _, err := Generate(GenConfig{Start: time.Unix(100, 0), End: time.Unix(50, 0),
		NumUsers: 10, NumPlaces: 100, NumCheckIns: 100}); err == nil {
		t.Error("inverted time range must fail")
	}
}

func TestGenerateShape(t *testing.T) {
	ds := smallDataset(t)
	if len(ds.CheckIns) != 4000 {
		t.Fatalf("generated %d check-ins, want 4000", len(ds.CheckIns))
	}
	if len(ds.Places) != 300 {
		t.Fatalf("generated %d places", len(ds.Places))
	}
	users := map[int]bool{}
	for _, c := range ds.CheckIns {
		if !geo.SanFrancisco.Contains(c.Loc) {
			// Jitter can push a point slightly out of the box; tolerate a
			// small margin.
			margin := geo.BoundingBox{
				MinLat: geo.SanFrancisco.MinLat - 0.01, MinLng: geo.SanFrancisco.MinLng - 0.01,
				MaxLat: geo.SanFrancisco.MaxLat + 0.01, MaxLng: geo.SanFrancisco.MaxLng + 0.01,
			}
			if !margin.Contains(c.Loc) {
				t.Fatalf("check-in far outside region: %v", c.Loc)
			}
		}
		users[c.UserID] = true
		if c.Time.Year() < 2009 || c.Time.Year() > 2010 {
			t.Fatalf("check-in outside era: %v", c.Time)
		}
	}
	if len(users) < 50 {
		t.Errorf("only %d users active", len(users))
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 42, NumUsers: 20, NumPlaces: 100, NumCheckIns: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 42, NumUsers: 20, NumPlaces: 100, NumCheckIns: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CheckIns {
		if a.CheckIns[i] != b.CheckIns[i] {
			t.Fatalf("check-in %d differs across runs with same seed", i)
		}
	}
	c, err := Generate(GenConfig{Seed: 43, NumUsers: 20, NumPlaces: 100, NumCheckIns: 500})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.CheckIns {
		if a.CheckIns[i] != c.CheckIns[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	ds := smallDataset(t)
	counts := map[int]int{}
	for _, c := range ds.CheckIns {
		counts[c.PlaceID]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	mean := float64(len(ds.CheckIns)) / float64(len(counts))
	if float64(max) < 3*mean {
		t.Errorf("popularity not skewed: max %d vs mean %.1f", max, mean)
	}
}

func TestLeafPriors(t *testing.T) {
	tree := testTree(t)
	ds := smallDataset(t)
	priors, err := LeafPriors(ds.CheckIns, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(priors) != tree.NumLeaves() {
		t.Fatalf("got %d priors", len(priors))
	}
	total := 0.0
	for _, v := range priors {
		if v < 1 {
			t.Fatalf("smoothed prior below smoothing constant: %v", v)
		}
		total += v
	}
	if total <= float64(tree.NumLeaves()) {
		t.Error("no check-ins landed in the tree")
	}
	if _, err := LeafPriors(ds.CheckIns, tree, 0); err == nil {
		t.Error("zero smoothing must fail")
	}
}

func TestSplitTrainTest(t *testing.T) {
	ds := smallDataset(t)
	train, test, err := SplitTrainTest(ds.CheckIns, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != len(ds.CheckIns) {
		t.Fatalf("split lost records: %d + %d != %d", len(train), len(test), len(ds.CheckIns))
	}
	if math.Abs(float64(len(train))-0.9*float64(len(ds.CheckIns))) > 1 {
		t.Errorf("train size %d not ~90%%", len(train))
	}
	if _, _, err := SplitTrainTest(ds.CheckIns, 1.5, 7); err == nil {
		t.Error("bad fraction must fail")
	}
	// Determinism.
	train2, _, _ := SplitTrainTest(ds.CheckIns, 0.9, 7)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestBuildMetadata(t *testing.T) {
	tree := testTree(t)
	ds := smallDataset(t)
	md, err := BuildMetadata(ds.CheckIns, tree, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(md.HomeLeaf) == 0 || len(md.OfficeLeaf) == 0 {
		t.Fatal("no home/office inferred")
	}
	if len(md.PopularLeaf) == 0 {
		t.Fatal("no popular cells")
	}
	// Popular fraction roughly respected.
	visited := len(md.CountByLeaf)
	if got := len(md.PopularLeaf); got > visited/2 {
		t.Errorf("too many popular cells: %d of %d visited", got, visited)
	}
	if _, err := BuildMetadata(ds.CheckIns, tree, 0); err == nil {
		t.Error("zero popularFrac must fail")
	}
	// Home cells are in-tree.
	for u, leaf := range md.HomeLeaf {
		if !tree.Contains(leaf) {
			t.Fatalf("user %d home %v not in tree", u, leaf)
		}
	}
}

func TestMetadataDeterminism(t *testing.T) {
	tree := testTree(t)
	ds := smallDataset(t)
	md1, _ := BuildMetadata(ds.CheckIns, tree, 0.2)
	md2, _ := BuildMetadata(ds.CheckIns, tree, 0.2)
	for u, h := range md1.HomeLeaf {
		if md2.HomeLeaf[u] != h {
			t.Fatalf("home for user %d differs across builds", u)
		}
	}
	for leaf := range md1.PopularLeaf {
		if !md2.PopularLeaf[leaf] {
			t.Fatal("popular set differs across builds")
		}
	}
}

func TestAnnotate(t *testing.T) {
	tree := testTree(t)
	ds := smallDataset(t)
	md, err := BuildMetadata(ds.CheckIns, tree, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a user that has a home.
	var user int = -1
	for u := range md.HomeLeaf {
		user = u
		break
	}
	if user == -1 {
		t.Fatal("no user with home")
	}
	ref := geo.SanFrancisco.Center()
	attrs := md.Annotate(user, ref)
	if len(attrs) != tree.NumLeaves() {
		t.Fatalf("annotated %d leaves", len(attrs))
	}
	homeCount := 0
	for leaf, a := range attrs {
		for _, key := range []string{"home", "office", "outlier", "popular", "checkins", "distance"} {
			if _, ok := a[key]; !ok {
				t.Fatalf("leaf %v missing attribute %q", leaf, key)
			}
		}
		if a["home"].B {
			homeCount++
			if leaf != md.HomeLeaf[user] {
				t.Fatal("home flag on wrong leaf")
			}
		}
		if a["distance"].F < 0 {
			t.Fatal("negative distance")
		}
	}
	if homeCount != 1 {
		t.Fatalf("home flagged on %d leaves", homeCount)
	}
	// Attributes satisfy a real policy evaluation.
	pred, _ := policy.ParsePredicate("home != true")
	pol := policy.Policy{PrivacyLevel: 2, PrecisionLevel: 0, Preferences: []policy.Predicate{pred}}
	pruned := 0
	for _, a := range attrs {
		ok, err := pol.Allowed(a)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			pruned++
		}
	}
	if pruned != 1 {
		t.Errorf("home-exclusion policy pruned %d leaves, want 1", pruned)
	}
}

// TestGenerateTimestampsWithinRange pins the weekend-skip bugfix: a range
// whose last days are a weekend used to let office check-ins skip past
// cfg.End. Every generated timestamp must lie in [Start, End).
func TestGenerateTimestampsWithinRange(t *testing.T) {
	// Friday through Sunday noon: any office draw landing on the weekend
	// would previously skip forward to Monday, outside the range.
	start := time.Date(2009, 2, 6, 0, 0, 0, 0, time.UTC) // Friday
	end := time.Date(2009, 2, 8, 12, 0, 0, 0, time.UTC)  // Sunday noon
	for seed := int64(1); seed <= 5; seed++ {
		ds, err := Generate(GenConfig{
			Seed: seed, NumUsers: 20, NumPlaces: 40, NumCheckIns: 500,
			Start: start, End: end,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range ds.CheckIns {
			if c.Time.Before(start) || !c.Time.Before(end) {
				t.Fatalf("seed %d: check-in %d at %v outside [%v, %v)", seed, i, c.Time, start, end)
			}
		}
	}
	// The default paper-scale range must hold the invariant too.
	cfg := GenConfig{Seed: 3}.withDefaults()
	ds, err := Generate(GenConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ds.CheckIns {
		if c.Time.Before(cfg.Start) || !c.Time.Before(cfg.End) {
			t.Fatalf("default range: check-in %d at %v outside [%v, %v)", i, c.Time, cfg.Start, cfg.End)
		}
	}
}

func TestTrajectories(t *testing.T) {
	ds, err := Generate(GenConfig{Seed: 11, NumUsers: 25, NumPlaces: 50, NumCheckIns: 600})
	if err != nil {
		t.Fatal(err)
	}
	trajs := Trajectories(ds.CheckIns)
	if len(trajs) == 0 {
		t.Fatal("no trajectories")
	}
	total := 0
	for i, tr := range trajs {
		if i > 0 && trajs[i-1].UserID >= tr.UserID {
			t.Fatalf("users out of order: %d then %d", trajs[i-1].UserID, tr.UserID)
		}
		if len(tr.Points) == 0 {
			t.Fatalf("user %d has an empty trajectory", tr.UserID)
		}
		for j, p := range tr.Points {
			if p.UserID != tr.UserID {
				t.Fatalf("user %d trajectory holds user %d's point", tr.UserID, p.UserID)
			}
			if j > 0 && tr.Points[j-1].Time.After(p.Time) {
				t.Fatalf("user %d points out of time order at %d", tr.UserID, j)
			}
		}
		total += len(tr.Points)
	}
	if total != len(ds.CheckIns) {
		t.Fatalf("trajectories hold %d points, corpus has %d", total, len(ds.CheckIns))
	}
	// Deterministic for a fixed corpus.
	again := Trajectories(ds.CheckIns)
	for i := range trajs {
		if trajs[i].UserID != again[i].UserID || len(trajs[i].Points) != len(again[i].Points) {
			t.Fatal("trajectory extraction not deterministic")
		}
		for j := range trajs[i].Points {
			if trajs[i].Points[j] != again[i].Points[j] {
				t.Fatal("trajectory extraction not deterministic")
			}
		}
	}
}
