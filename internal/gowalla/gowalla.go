// Package gowalla provides the check-in dataset substrate of Sec. 6.1. The
// paper samples 38,523 Gowalla check-ins from San Francisco; that file is
// not redistributable, so this package offers both
//
//   - Load/LoadFile: a parser for the real Gowalla check-in format
//     (user <TAB> ISO-time <TAB> lat <TAB> lng <TAB> location-id), so the
//     genuine dataset can be dropped in, and
//   - Generate: a synthetic generator that reproduces the statistical
//     features the paper actually consumes: a dense SF check-in sample with
//     Zipf place popularity and per-user routines (home, office, favorite
//     places, rare odd-hour outliers).
//
// On top of either source it computes leaf priors for a location tree (by
// check-in counts, Laplace-smoothed — Sec. 6.1 "Priors") and the policy
// metadata heuristics the paper describes (home, office, outlier, popular).
package gowalla

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"corgi/internal/geo"
	"corgi/internal/loctree"
	"corgi/internal/policy"
)

// CheckIn is one Gowalla check-in record.
type CheckIn struct {
	UserID  int
	Time    time.Time
	Loc     geo.LatLng
	PlaceID int
}

// Load parses check-ins in the Gowalla edge-list format. Malformed lines
// abort with an error identifying the line number.
func Load(r io.Reader) ([]CheckIn, error) {
	var out []CheckIn
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("gowalla: line %d has %d fields, want 5", lineNo, len(fields))
		}
		user, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("gowalla: line %d user: %v", lineNo, err)
		}
		ts, err := time.Parse(time.RFC3339, fields[1])
		if err != nil {
			return nil, fmt.Errorf("gowalla: line %d time: %v", lineNo, err)
		}
		lat, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("gowalla: line %d lat: %v", lineNo, err)
		}
		lng, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("gowalla: line %d lng: %v", lineNo, err)
		}
		place, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("gowalla: line %d place: %v", lineNo, err)
		}
		p := geo.LatLng{Lat: lat, Lng: lng}
		if !p.Valid() {
			return nil, fmt.Errorf("gowalla: line %d invalid point %v", lineNo, p)
		}
		out = append(out, CheckIn{UserID: user, Time: ts, Loc: p, PlaceID: place})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gowalla: scan: %w", err)
	}
	return out, nil
}

// LoadFile loads check-ins from a file path.
func LoadFile(path string) ([]CheckIn, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes check-ins in the Gowalla format.
func Save(w io.Writer, cs []CheckIn) error {
	bw := bufio.NewWriter(w)
	for _, c := range cs {
		_, err := fmt.Fprintf(bw, "%d\t%s\t%.6f\t%.6f\t%d\n",
			c.UserID, c.Time.UTC().Format(time.RFC3339), c.Loc.Lat, c.Loc.Lng, c.PlaceID)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FilterBBox keeps the check-ins inside a bounding box, as the paper does
// when sampling the San Francisco region.
func FilterBBox(cs []CheckIn, b geo.BoundingBox) []CheckIn {
	out := make([]CheckIn, 0, len(cs))
	for _, c := range cs {
		if b.Contains(c.Loc) {
			out = append(out, c)
		}
	}
	return out
}

// Place is a synthetic venue.
type Place struct {
	ID  int
	Loc geo.LatLng
}

// Dataset is a generated corpus: check-ins plus the venue table.
type Dataset struct {
	CheckIns []CheckIn
	Places   []Place
}

// GenConfig parameterizes Generate. The zero value is completed by
// (GenConfig).withDefaults to the paper-scale SF sample.
type GenConfig struct {
	Seed        int64
	NumUsers    int
	NumPlaces   int
	NumCheckIns int
	NumClusters int
	BBox        geo.BoundingBox
	Start, End  time.Time
}

func (c GenConfig) withDefaults() GenConfig {
	if c.NumUsers == 0 {
		c.NumUsers = 500
	}
	if c.NumPlaces == 0 {
		c.NumPlaces = 2000
	}
	if c.NumCheckIns == 0 {
		c.NumCheckIns = 38523 // the paper's SF sample size
	}
	if c.NumClusters == 0 {
		c.NumClusters = 15
	}
	zero := geo.BoundingBox{}
	if c.BBox == zero {
		c.BBox = geo.SanFrancisco
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.End.IsZero() {
		c.End = time.Date(2010, 10, 31, 0, 0, 0, 0, time.UTC)
	}
	return c
}

// userProfile is a synthetic user's routine.
type userProfile struct {
	home      int
	office    int
	favorites []int
	weight    float64
}

// Generate produces a deterministic synthetic dataset with the properties
// the paper's pipeline consumes (see the package comment).
func Generate(cfg GenConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.NumUsers < 1 || cfg.NumPlaces < 10 || cfg.NumCheckIns < cfg.NumUsers {
		return nil, fmt.Errorf("gowalla: degenerate config %+v", cfg)
	}
	if !cfg.End.After(cfg.Start) {
		return nil, fmt.Errorf("gowalla: empty time range")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Venue clusters ("neighborhoods") inside the box.
	type cluster struct {
		center geo.LatLng
		spread float64
	}
	clusters := make([]cluster, cfg.NumClusters)
	for i := range clusters {
		clusters[i] = cluster{
			center: geo.LatLng{
				Lat: cfg.BBox.MinLat + rng.Float64()*(cfg.BBox.MaxLat-cfg.BBox.MinLat),
				Lng: cfg.BBox.MinLng + rng.Float64()*(cfg.BBox.MaxLng-cfg.BBox.MinLng),
			},
			spread: 0.002 + rng.Float64()*0.008, // ~0.2..1.1 km
		}
	}
	places := make([]Place, cfg.NumPlaces)
	for i := range places {
		cl := clusters[rng.Intn(len(clusters))]
		for {
			p := geo.LatLng{
				Lat: cl.center.Lat + rng.NormFloat64()*cl.spread,
				Lng: cl.center.Lng + rng.NormFloat64()*cl.spread,
			}
			if cfg.BBox.Contains(p) {
				places[i] = Place{ID: i, Loc: p}
				break
			}
		}
	}
	// Zipf popularity over places (s ~ 1.05).
	zipf := rand.NewZipf(rng, 1.05, 1, uint64(cfg.NumPlaces-1))
	popPick := func() int { return int(zipf.Uint64()) }

	users := make([]userProfile, cfg.NumUsers)
	totalW := 0.0
	for u := range users {
		home := rng.Intn(cfg.NumPlaces)
		office := rng.Intn(cfg.NumPlaces)
		for office == home {
			office = rng.Intn(cfg.NumPlaces)
		}
		nf := 3 + rng.Intn(6)
		favs := make([]int, nf)
		for i := range favs {
			favs[i] = popPick()
		}
		w := math.Exp(rng.NormFloat64()) // lognormal activity
		users[u] = userProfile{home: home, office: office, favorites: favs, weight: w}
		totalW += w
	}

	span := cfg.End.Sub(cfg.Start)
	ds := &Dataset{Places: places, CheckIns: make([]CheckIn, 0, cfg.NumCheckIns)}
	jitter := func(p geo.LatLng) geo.LatLng {
		return geo.LatLng{
			Lat: p.Lat + rng.NormFloat64()*0.0003,
			Lng: p.Lng + rng.NormFloat64()*0.0003,
		}
	}
	// Apportion check-ins to users proportionally to weight (at least 1).
	for u := range users {
		share := int(float64(cfg.NumCheckIns) * users[u].weight / totalW)
		if share < 1 {
			share = 1
		}
		for k := 0; k < share && len(ds.CheckIns) < cfg.NumCheckIns; k++ {
			var place int
			var hour int
			day := cfg.Start.Add(time.Duration(rng.Int63n(int64(span))))
			day = day.Truncate(24 * time.Hour)
			switch r := rng.Float64(); {
			case r < 0.35: // home: evenings and nights
				place = users[u].home
				hour = (19 + rng.Intn(11)) % 24
			case r < 0.60: // office: weekday working hours
				place = users[u].office
				hour = 9 + rng.Intn(9)
				// Skipping a weekend forward can overrun cfg.End (a Saturday
				// draw on the range's last weekend lands 2 days past it);
				// re-draw the day until a weekday's working hours fit, giving
				// up after a bounded number of tries (degenerate weekend-only
				// ranges), where the final range clamp below still holds the
				// in-range invariant.
				for tries := 0; ; tries++ {
					for day.Weekday() == time.Saturday || day.Weekday() == time.Sunday {
						day = day.Add(24 * time.Hour)
					}
					slotEnd := day.Add(time.Duration(hour)*time.Hour + time.Hour)
					if !slotEnd.After(cfg.End) || tries >= 64 {
						break
					}
					day = cfg.Start.Add(time.Duration(rng.Int63n(int64(span)))).Truncate(24 * time.Hour)
				}
			case r < 0.85: // favorites: daytime/evening
				place = users[u].favorites[rng.Intn(len(users[u].favorites))]
				hour = 10 + rng.Intn(12)
			case r < 0.98: // popular wander
				place = popPick()
				hour = 8 + rng.Intn(14)
			default: // outlier: rare, odd hours
				place = rng.Intn(cfg.NumPlaces)
				hour = rng.Intn(5)
			}
			ts := day.Add(time.Duration(hour)*time.Hour +
				time.Duration(rng.Intn(3600))*time.Second)
			ts = clampTime(ts, cfg.Start, cfg.End)
			ds.CheckIns = append(ds.CheckIns, CheckIn{
				UserID:  u,
				Time:    ts,
				Loc:     jitter(places[place].Loc),
				PlaceID: place,
			})
		}
	}
	// Top up to the exact requested count with popular wanders.
	for len(ds.CheckIns) < cfg.NumCheckIns {
		u := rng.Intn(cfg.NumUsers)
		place := popPick()
		ts := cfg.Start.Add(time.Duration(rng.Int63n(int64(span))))
		ds.CheckIns = append(ds.CheckIns, CheckIn{
			UserID: u, Time: ts, Loc: jitter(places[place].Loc), PlaceID: place,
		})
	}
	return ds, nil
}

// clampTime forces ts into [start, end): every generated check-in must lie
// inside the configured range, whatever day arithmetic (truncation against
// a non-midnight start, weekend skips near the range edge) produced it.
func clampTime(ts, start, end time.Time) time.Time {
	if ts.Before(start) {
		return start
	}
	if !ts.Before(end) {
		return end.Add(-time.Second)
	}
	return ts
}

// Trajectory is one user's time-ordered check-in sequence — the replay
// substrate of mobility workloads: each point is a (time, location) the
// user actually reported from, so replaying Points in order reproduces the
// subtree crossings and session re-anchors a real moving user causes.
type Trajectory struct {
	UserID int
	Points []CheckIn // ascending by time (stable on ties)
}

// Trajectories groups check-ins by user and time-orders each user's
// sequence, returning users in ascending UserID order. Input order breaks
// timestamp ties, so the result is deterministic for a fixed corpus.
func Trajectories(cs []CheckIn) []Trajectory {
	byUser := map[int][]CheckIn{}
	for _, c := range cs {
		byUser[c.UserID] = append(byUser[c.UserID], c)
	}
	users := make([]int, 0, len(byUser))
	for u := range byUser {
		users = append(users, u)
	}
	sort.Ints(users)
	out := make([]Trajectory, 0, len(users))
	for _, u := range users {
		pts := byUser[u]
		sort.SliceStable(pts, func(a, b int) bool { return pts[a].Time.Before(pts[b].Time) })
		out = append(out, Trajectory{UserID: u, Points: pts})
	}
	return out
}

// LeafPriors counts check-ins per leaf cell of the tree and returns the
// add-`smoothing` (Laplace) smoothed, unnormalized weights, aligned with
// tree.LevelNodes(0). Check-ins outside the tree are ignored. Smoothing
// must be positive so every leaf keeps a nonzero prior (Equ. 17 divides by
// node priors).
func LeafPriors(cs []CheckIn, t *loctree.Tree, smoothing float64) ([]float64, error) {
	if smoothing <= 0 {
		return nil, fmt.Errorf("gowalla: smoothing must be positive, got %v", smoothing)
	}
	out := make([]float64, t.NumLeaves())
	for i := range out {
		out[i] = smoothing
	}
	for _, c := range cs {
		leaf, ok := t.Locate(c.Loc, 0)
		if !ok {
			continue
		}
		if idx, ok := t.IndexOf(leaf); ok {
			out[idx]++
		}
	}
	return out, nil
}

// SplitTrainTest deterministically splits check-ins (trainFrac in (0,1))
// for the priors-vs-real-locations protocol of Sec. 6.2.3.
func SplitTrainTest(cs []CheckIn, trainFrac float64, seed int64) (train, test []CheckIn, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("gowalla: trainFrac %v outside (0,1)", trainFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(cs))
	cut := int(float64(len(cs)) * trainFrac)
	train = make([]CheckIn, 0, cut)
	test = make([]CheckIn, 0, len(cs)-cut)
	for i, idx := range perm {
		if i < cut {
			train = append(train, cs[idx])
		} else {
			test = append(test, cs[idx])
		}
	}
	return train, test, nil
}

// Metadata holds per-user and per-cell heuristics used to build realistic
// customization policies (Sec. 6.1): the user's inferred home and office
// leaf cells, the user's outlier cells (rarely visited, odd hours), and the
// globally popular cells.
type Metadata struct {
	tree        *loctree.Tree
	HomeLeaf    map[int]loctree.NodeID // per user
	OfficeLeaf  map[int]loctree.NodeID // per user
	OutlierLeaf map[int]map[loctree.NodeID]bool
	PopularLeaf map[loctree.NodeID]bool
	CountByLeaf map[loctree.NodeID]int
}

// isNight reports home-typical hours (19:00–06:00).
func isNight(h int) bool { return h >= 19 || h < 6 }

// isWork reports office-typical weekday hours (09:00–18:00).
func isWork(ts time.Time) bool {
	wd := ts.Weekday()
	if wd == time.Saturday || wd == time.Sunday {
		return false
	}
	h := ts.Hour()
	return h >= 9 && h < 18
}

// isOdd reports outlier-typical small hours (00:00–05:00).
func isOdd(h int) bool { return h < 5 }

// BuildMetadata derives the policy heuristics from a check-in corpus:
//
//   - home(u): the leaf cell with the most night check-ins of user u,
//   - office(u): the leaf with the most weekday working-hour check-ins,
//   - outlier(u): leaves u visited at most once, at odd hours,
//   - popular: the top `popularFrac` fraction of visited leaves by count.
func BuildMetadata(cs []CheckIn, t *loctree.Tree, popularFrac float64) (*Metadata, error) {
	if popularFrac <= 0 || popularFrac > 1 {
		return nil, fmt.Errorf("gowalla: popularFrac %v outside (0,1]", popularFrac)
	}
	md := &Metadata{
		tree:        t,
		HomeLeaf:    map[int]loctree.NodeID{},
		OfficeLeaf:  map[int]loctree.NodeID{},
		OutlierLeaf: map[int]map[loctree.NodeID]bool{},
		PopularLeaf: map[loctree.NodeID]bool{},
		CountByLeaf: map[loctree.NodeID]int{},
	}
	type cellKey struct {
		user int
		leaf loctree.NodeID
	}
	nightCount := map[cellKey]int{}
	workCount := map[cellKey]int{}
	visitCount := map[cellKey]int{}
	oddCount := map[cellKey]int{}
	for _, c := range cs {
		leaf, ok := t.Locate(c.Loc, 0)
		if !ok {
			continue
		}
		md.CountByLeaf[leaf]++
		k := cellKey{user: c.UserID, leaf: leaf}
		visitCount[k]++
		if isNight(c.Time.Hour()) {
			nightCount[k]++
		}
		if isWork(c.Time) {
			workCount[k]++
		}
		if isOdd(c.Time.Hour()) {
			oddCount[k]++
		}
	}
	argmaxPerUser := func(counts map[cellKey]int) map[int]loctree.NodeID {
		best := map[int]loctree.NodeID{}
		bestN := map[int]int{}
		// Deterministic iteration: sort keys.
		keys := make([]cellKey, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			ka, kb := keys[a], keys[b]
			if ka.user != kb.user {
				return ka.user < kb.user
			}
			ia, _ := t.IndexOf(ka.leaf)
			ib, _ := t.IndexOf(kb.leaf)
			return ia < ib
		})
		for _, k := range keys {
			if counts[k] > bestN[k.user] {
				bestN[k.user] = counts[k]
				best[k.user] = k.leaf
			}
		}
		return best
	}
	md.HomeLeaf = argmaxPerUser(nightCount)
	md.OfficeLeaf = argmaxPerUser(workCount)
	for k, n := range visitCount {
		if n <= 1 && oddCount[k] > 0 {
			if md.OutlierLeaf[k.user] == nil {
				md.OutlierLeaf[k.user] = map[loctree.NodeID]bool{}
			}
			md.OutlierLeaf[k.user][k.leaf] = true
		}
	}
	// Popular: top fraction of visited leaves by check-in count.
	type leafCount struct {
		leaf loctree.NodeID
		n    int
	}
	var lcs []leafCount
	for leaf, n := range md.CountByLeaf {
		lcs = append(lcs, leafCount{leaf, n})
	}
	sort.Slice(lcs, func(a, b int) bool {
		if lcs[a].n != lcs[b].n {
			return lcs[a].n > lcs[b].n
		}
		ia, _ := t.IndexOf(lcs[a].leaf)
		ib, _ := t.IndexOf(lcs[b].leaf)
		return ia < ib
	})
	top := int(math.Ceil(popularFrac * float64(len(lcs))))
	for i := 0; i < top && i < len(lcs); i++ {
		md.PopularLeaf[lcs[i].leaf] = true
	}
	return md, nil
}

// Annotate builds the policy attribute map for every leaf of the tree, from
// the perspective of one user standing at refLoc. These attributes are what
// the paper's example predicates (home, office, outlier, popular, distance,
// checkins) evaluate against.
func (md *Metadata) Annotate(userID int, refLoc geo.LatLng) map[loctree.NodeID]policy.Attributes {
	return md.AnnotateLeaves(userID, refLoc, md.tree.LevelNodes(0))
}

// AnnotateLeaves is Annotate restricted to the given leaves. Preference
// evaluation over one privacy subtree only reads that subtree's leaves, so
// the report path annotates O(subtree) instead of O(region) per session
// bind.
func (md *Metadata) AnnotateLeaves(userID int, refLoc geo.LatLng, leaves []loctree.NodeID) map[loctree.NodeID]policy.Attributes {
	t := md.tree
	out := make(map[loctree.NodeID]policy.Attributes, len(leaves))
	home, hasHome := md.HomeLeaf[userID]
	office, hasOffice := md.OfficeLeaf[userID]
	outliers := md.OutlierLeaf[userID]
	for _, leaf := range leaves {
		attrs := policy.Attributes{
			"home":     policy.Bool(hasHome && leaf == home),
			"office":   policy.Bool(hasOffice && leaf == office),
			"outlier":  policy.Bool(outliers[leaf]),
			"popular":  policy.Bool(md.PopularLeaf[leaf]),
			"checkins": policy.Number(float64(md.CountByLeaf[leaf])),
			"distance": policy.Number(geo.Haversine(refLoc, t.Center(leaf))),
		}
		out[leaf] = attrs
	}
	return out
}
