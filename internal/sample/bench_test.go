package sample

import (
	"math/rand"
	"testing"
)

// stochasticRow builds a random n-entry probability row.
func stochasticRow(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	row := make([]float64, n)
	total := 0.0
	for i := range row {
		row[i] = rng.Float64()
		total += row[i]
	}
	for i := range row {
		row[i] /= total
	}
	return row
}

// linearScan is the inverse-CDF draw obf.Matrix.SampleRow performs,
// reproduced here so the benchmark comparison lives next to the alias
// implementation without an import cycle.
func linearScan(row []float64, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	last := 0
	for j, v := range row {
		if v <= 0 {
			continue
		}
		acc += v
		last = j
		if u < acc {
			return j
		}
	}
	return last
}

// BenchmarkAliasSample measures O(1) alias draws across row sizes; compare
// against BenchmarkLinearScanSample for the speedup the report path buys.
func BenchmarkAliasSample(b *testing.B) {
	for _, n := range []int{49, 343, 1024, 4096} {
		row := stochasticRow(n, int64(n))
		a, err := New(row)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = a.Draw(rng)
			}
		})
	}
}

// BenchmarkLinearScanSample is the pre-alias O(n) baseline.
func BenchmarkLinearScanSample(b *testing.B) {
	for _, n := range []int{49, 343, 1024, 4096} {
		row := stochasticRow(n, int64(n))
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = linearScan(row, rng)
			}
		})
	}
}

// BenchmarkAliasBuild measures the one-time table construction cost.
func BenchmarkAliasBuild(b *testing.B) {
	for _, n := range []int{343, 4096} {
		row := stochasticRow(n, int64(n))
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a, err := New(row)
				if err != nil {
					b.Fatal(err)
				}
				sink = a.N()
			}
		})
	}
}

var sink int

func sizeName(n int) string {
	switch n {
	case 49:
		return "n=49"
	case 343:
		return "n=343"
	case 1024:
		return "n=1024"
	case 4096:
		return "n=4096"
	}
	return "n=?"
}
