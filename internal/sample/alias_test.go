package sample

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestNewRejectsBadWeights(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{-1, 2},
		{math.NaN(), 1},
		{math.Inf(1), 1},
	}
	for _, w := range cases {
		if _, err := New(w); err == nil {
			t.Errorf("New(%v) accepted", w)
		}
	}
}

// TestProbMatchesWeights verifies the reconstructed per-outcome probability
// equals the normalized input weights — the table is an exact
// representation, not an approximation.
func TestProbMatchesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 7, 49, 343} {
		weights := make([]float64, n)
		total := 0.0
		for i := range weights {
			if i%5 == 3 {
				continue // leave some zeros
			}
			weights[i] = rng.Float64()
			total += weights[i]
		}
		if total == 0 {
			weights[0], total = 1, 1
		}
		a, err := New(weights)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for j := range weights {
			want := weights[j] / total
			if got := a.Prob(j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d: Prob(%d) = %v, want %v", n, j, got, want)
			}
		}
	}
}

func TestDrawDistribution(t *testing.T) {
	weights := []float64{0.7, 0.3, 0}
	a, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const trials = 100000
	counts := make([]int, 3)
	for i := 0; i < trials; i++ {
		counts[a.Draw(rng)]++
	}
	if got := float64(counts[0]) / trials; math.Abs(got-0.7) > 0.01 {
		t.Errorf("P(0) = %v, want 0.7", got)
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight outcome drawn %d times", counts[2])
	}
}

// TestDrawUnnormalized: weights that do not sum to 1 (a pruned row before
// renormalization) draw proportionally.
func TestDrawUnnormalized(t *testing.T) {
	a, err := New([]float64{0.2, 0.1, 0.1}) // mass 0.4 -> 1/2, 1/4, 1/4
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const trials = 100000
	counts := make([]int, 3)
	for i := 0; i < trials; i++ {
		counts[a.Draw(rng)]++
	}
	if got := float64(counts[0]) / trials; math.Abs(got-0.5) > 0.01 {
		t.Errorf("P(0) = %v, want 0.5", got)
	}
}

func TestNewSubset(t *testing.T) {
	row := []float64{0.4, 0.3, 0.2, 0.1}
	a, keep, err := NewSubset(row, []bool{false, true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 2 || keep[0] != 0 || keep[1] != 2 {
		t.Fatalf("keep = %v, want [0 2]", keep)
	}
	// Renormalized: 0.4/0.6, 0.2/0.6.
	if got := a.Prob(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Prob(0) = %v, want 2/3", got)
	}
	if got := a.Prob(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Prob(1) = %v, want 1/3", got)
	}

	if _, _, err := NewSubset(row, []bool{true, true, true, true}); err == nil {
		t.Error("dropping every column accepted")
	}
	if _, _, err := NewSubset(row, []bool{true}); err == nil {
		t.Error("mismatched drop length accepted")
	}
	// A row whose surviving mass is ~0 must be rejected like obf.Prune.
	tiny := []float64{1 - 1e-12, 1e-12}
	if _, _, err := NewSubset(tiny, []bool{true, false}); err == nil {
		t.Error("near-zero surviving mass accepted")
	}
}

// TestConcurrentDraws exercises the immutability claim under the race
// detector: many goroutines draw from one shared table, each with its own
// RNG.
func TestConcurrentDraws(t *testing.T) {
	weights := make([]float64, 343)
	for i := range weights {
		weights[i] = float64(i%7) + 1
	}
	a, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10000; i++ {
				if j := a.Draw(rng); j < 0 || j >= a.N() {
					t.Errorf("draw out of range: %d", j)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

// TestDrawDeterministic: the same seed yields the same draw sequence —
// the property the report pipeline's seeded-equivalence guarantee rests on.
func TestDrawDeterministic(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 5}
	a, err := New(weights)
	if err != nil {
		t.Fatal(err)
	}
	seq := func() []int {
		rng := rand.New(rand.NewSource(42))
		out := make([]int, 32)
		for i := range out {
			out[i] = a.Draw(rng)
		}
		return out
	}
	x, y := seq(), seq()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, x[i], y[i])
		}
	}
}

func TestSizeBytes(t *testing.T) {
	a, err := New([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.SizeBytes() < 4*12 {
		t.Errorf("SizeBytes %d too small", a.SizeBytes())
	}
}
