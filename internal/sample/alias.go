// Package sample implements Walker/Vose alias tables: O(1) draws from a
// discrete distribution after an O(n) build. The report-serving hot path
// draws one obfuscated location per request from a matrix row; the linear
// inverse-CDF scan of obf.Matrix.SampleRow costs O(n) per draw, which at
// the paper's height-3 setup (343-leaf subtrees) and beyond (n >= 1024)
// dominates report latency. An alias table pays the scan once and then
// draws in constant time.
//
// Tables are immutable after construction, so any number of goroutines may
// Draw from one table concurrently — each with its own *rand.Rand, which is
// NOT safe for concurrent use (callers serialize or shard their RNGs; see
// also the note in internal/obf).
//
// A draw consumes exactly one uniform variate (the one-uniform trick: the
// integer part of u*n picks the bucket, the fractional part flips the
// biased coin), the same RNG consumption as one inverse-CDF scan. Code
// that switches between the two samplers therefore keeps its RNG stream
// alignment, though the drawn values differ for the same stream.
package sample

import (
	"fmt"
	"math"
	"math/rand"
)

// Alias is an immutable Walker alias table over n outcomes.
type Alias struct {
	n     int
	prob  []float64 // acceptance threshold per bucket, in [0, 1]
	alias []int32   // fallback outcome per bucket
}

// New builds an alias table from non-negative weights, normalizing
// internally — weights need not sum to 1, so a δ-pruned matrix row can be
// passed as-is and the build performs the renormalization of Sec. 4.3
// implicitly. Zero-weight outcomes are representable but never drawn.
// A row with no positive mass, a negative weight, or a non-finite weight
// is an error.
func New(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sample: no weights")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("sample: bad weight %v at %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("sample: no positive mass across %d weights", n)
	}
	a := &Alias{
		n:     n,
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Vose's stable construction: scale every weight to mean 1, then pair
	// each underfull bucket with an overfull donor.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	scale := float64(n) / total
	for i, w := range weights {
		scaled[i] = w * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are exactly 1 up to floating-point error; their coin always
	// lands on themselves.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// NewSubset builds an alias table over the kept entries of row — the
// columns whose drop flag is false — renormalizing the surviving mass.
// It returns the table and keep, the original column index of each table
// outcome in order: a drawn outcome j names original column keep[j].
// Mirroring obf.Matrix.Prune, a row retaining less than minMass = 1e-9 of
// its probability mass is rejected as numerically unstable.
func NewSubset(row []float64, drop []bool) (*Alias, []int, error) {
	const minMass = 1e-9
	if len(drop) != len(row) {
		return nil, nil, fmt.Errorf("sample: %d drop flags for %d columns", len(drop), len(row))
	}
	keep := make([]int, 0, len(row))
	removed := 0.0
	for j, d := range drop {
		if d {
			removed += row[j]
		} else {
			keep = append(keep, j)
		}
	}
	if len(keep) == 0 {
		return nil, nil, fmt.Errorf("sample: all %d columns dropped", len(row))
	}
	if 1-removed < minMass {
		return nil, nil, fmt.Errorf("sample: row retains %.3g probability mass after pruning", 1-removed)
	}
	weights := make([]float64, len(keep))
	for i, j := range keep {
		weights[i] = row[j]
	}
	a, err := New(weights)
	if err != nil {
		return nil, nil, err
	}
	return a, keep, nil
}

// N returns the outcome count.
func (a *Alias) N() int { return a.n }

// Draw returns one outcome index in O(1), consuming exactly one uniform
// variate from rng. The table itself is read-only; rng is the only mutable
// state, so concurrent draws need per-goroutine (or serialized) RNGs.
func (a *Alias) Draw(rng *rand.Rand) int {
	u := rng.Float64() * float64(a.n)
	i := int(u)
	if i >= a.n { // u == n is impossible for Float64 in [0,1), but guard fp
		i = a.n - 1
	}
	if u-float64(i) < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Prob returns the exact probability the table assigns to outcome j —
// the normalized weight reconstructed from the bucket thresholds. Audits
// use it to verify the table matches its source row.
func (a *Alias) Prob(j int) float64 {
	if j < 0 || j >= a.n {
		return 0
	}
	// Outcome j is drawn when bucket j's coin accepts, or any bucket's
	// coin rejects into alias == j.
	p := a.prob[j]
	for i := 0; i < a.n; i++ {
		if int(a.alias[i]) == j && i != j {
			p += 1 - a.prob[i]
		}
	}
	return p / float64(a.n)
}

// SizeBytes estimates the table's resident footprint, used by the engine
// cache's byte accounting.
func (a *Alias) SizeBytes() int64 {
	return 64 + int64(a.n)*12 // struct header + 8B prob + 4B alias per bucket
}
