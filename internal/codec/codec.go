// Package codec implements the compact, quantized, row-sparse matrix
// encoding shared by the wire protocol (internal/proto, format v2) and the
// on-disk forest store (internal/store). Keeping the codec below both lets
// the snapshot format reuse the wire encoding byte for byte without an
// import cycle between the protocol and the store.
//
// Each matrix entry is a probability in [0, 1], quantized to a 32-bit fixed
// point q = round(v * (2^32 - 1)); the decode error per entry is at most
// 0.5/(2^32-1) ≈ 1.2e-10, far inside the 1e-9 wire tolerance and the 1e-6
// row-stochasticity check. Rows are stored back-to-back in one binary blob:
//
//	uint16 n  (little endian)
//	n == 0xFFFF: a dense row follows — dim × uint32 quantized values
//	otherwise:   n sparse entries of (uint16 column, uint32 value)
//
// The encoder picks per row whichever form is smaller. LP basic solutions
// are naturally sparse (few nonzero transitions per row), so the sparse arm
// dominates in practice; even a fully dense matrix is ~4 bytes per entry
// versus ~19 characters of decimal JSON.
//
// Quantization is idempotent: quantize(dequantize(q)) == q, so a matrix
// that round-trips through this codec re-encodes to identical bytes. The
// store and the ETag machinery both rely on that stability.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"corgi/internal/obf"
)

// quantScale maps [0,1] onto the full uint32 range.
const quantScale = float64(1<<32 - 1)

// denseRowMark flags a dense row in the per-row header. Matrix dimensions
// must stay below it (the paper's largest tree has 343 leaves).
const denseRowMark = 0xFFFF

// MaxDim is the largest matrix dimension the encoding supports.
const MaxDim = denseRowMark - 1

// Quantize maps a value in [0, 1] onto the codec's 32-bit fixed point
// (clamping outside the interval). It is the same per-entry representation
// the row blobs use, exported so other binary formats — the stream
// transport encodes report coordinates with it — share one quantization
// with one documented error bound (0.5/(2^32-1) per entry).
func Quantize(v float64) uint32 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return math.MaxUint32
	}
	return uint32(math.Round(v * quantScale))
}

// Dequantize inverts Quantize. Quantize(Dequantize(q)) == q for every q,
// the idempotence the store and ETag machinery rely on.
func Dequantize(q uint32) float64 { return float64(q) / quantScale }

// EncodeMatrix packs a matrix into the quantized row-sparse binary blob.
func EncodeMatrix(m *obf.Matrix) ([]byte, error) {
	dim := m.Dim()
	if dim > MaxDim {
		return nil, fmt.Errorf("codec: matrix dimension %d exceeds limit %d", dim, MaxDim)
	}
	var buf []byte
	qrow := make([]uint32, dim)
	for i := 0; i < dim; i++ {
		row := m.Row(i)
		nnz := 0
		for j, v := range row {
			qrow[j] = Quantize(v)
			if qrow[j] != 0 {
				nnz++
			}
		}
		sparseBytes := 2 + 6*nnz
		denseBytes := 2 + 4*dim
		if sparseBytes < denseBytes {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(nnz))
			for j, q := range qrow {
				if q == 0 {
					continue
				}
				buf = binary.LittleEndian.AppendUint16(buf, uint16(j))
				buf = binary.LittleEndian.AppendUint32(buf, q)
			}
		} else {
			buf = binary.LittleEndian.AppendUint16(buf, denseRowMark)
			for _, q := range qrow {
				buf = binary.LittleEndian.AppendUint32(buf, q)
			}
		}
	}
	return buf, nil
}

// DecodeMatrix unpacks a blob back into a dense matrix.
func DecodeMatrix(data []byte, dim int) (*obf.Matrix, error) {
	if dim < 1 || dim > MaxDim {
		return nil, fmt.Errorf("codec: dimension %d out of range", dim)
	}
	m := obf.NewMatrix(dim)
	off := 0
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("codec: blob truncated at byte %d", off)
		}
		return nil
	}
	for i := 0; i < dim; i++ {
		if err := need(2); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint16(data[off:])
		off += 2
		row := m.Row(i)
		if n == denseRowMark {
			if err := need(4 * dim); err != nil {
				return nil, err
			}
			for j := 0; j < dim; j++ {
				row[j] = Dequantize(binary.LittleEndian.Uint32(data[off:]))
				off += 4
			}
			continue
		}
		if int(n) > dim {
			return nil, fmt.Errorf("codec: row %d claims %d entries for dim %d", i, n, dim)
		}
		if err := need(6 * int(n)); err != nil {
			return nil, err
		}
		for k := 0; k < int(n); k++ {
			col := binary.LittleEndian.Uint16(data[off:])
			off += 2
			if int(col) >= dim {
				return nil, fmt.Errorf("codec: row %d column %d out of range", i, col)
			}
			row[col] = Dequantize(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("codec: blob has %d trailing bytes", len(data)-off)
	}
	return m, nil
}
