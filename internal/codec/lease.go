package codec

// This file is the lease-bundle codec: the serialized form of a detached
// session binding (internal/session.DetachLease) that a client replays
// draws from without the server. Unlike the matrix codec in codec.go, row
// weights here are carried as full IEEE-754 float64 bit patterns, never
// quantized: the client rebuilds Walker alias tables from these vectors
// (internal/sample.New), and a quantization error of even ~1.2e-10 per
// entry would shift alias thresholds and break the byte-identical draw
// equivalence the lease pipeline guarantees. math.Float64bits round-trips
// exactly, so a bundle decodes to the same vectors the server sampled from.
//
// Layout (all integers little endian; varints are encoding/binary's):
//
//	"CGL1"               magic
//	uint8  version (1)
//	uint8  flags (bit 0: degraded entry)
//	uvarint precision level
//	node   subtree root
//	varint seed
//	uvarint rng position (draws consumed before the leased window)
//	uvarint pruned count, then that many nodes
//	uvarint node count n (>= 1), then n nodes (the report outcomes)
//	n rows, each:
//	  uint8 kind 0: empty — the row is unsampleable (degenerate after
//	         pruning); a client draw from it fails without consuming RNG
//	  uint8 kind 1: dense — n float64 bit patterns
//	  uint8 kind 2: sparse — uvarint nnz, then nnz x (uvarint col,
//	         float64 bits); omitted columns are exactly 0.0
//
// where node := varint level, varint q, varint r. The encoder picks dense
// or sparse per row, whichever is smaller; exact-0.0 weights are the only
// thing sparsity elides, which cannot perturb an alias build. Decoding is
// strict: truncated, oversized, out-of-range, or trailing bytes are
// errors, never panics (fuzz-tested).

import (
	"encoding/binary"
	"fmt"
	"math"

	"corgi/internal/loctree"
)

// leaseMagic brands an encoded lease bundle.
const leaseMagic = "CGL1"

// leaseVersion is the current bundle layout version.
const leaseVersion = 1

// MaxLeaseNodes caps the report-node count a bundle may carry, shared with
// the matrix codec's dimension limit (the paper's largest tree has 343
// leaves; the cap exists so a hostile bundle cannot demand gigabyte
// allocations before validation fails).
const MaxLeaseNodes = MaxDim

const (
	leaseFlagDegraded = 1 << 0

	rowEmpty  = 0
	rowDense  = 1
	rowSparse = 2
)

// LeaseBundle is a detached session binding: everything a client needs to
// replay the server's exact draw sequence for one subtree. Produced by
// session.DetachLease, consumed by internal/clientdraw.
type LeaseBundle struct {
	// Root is the privacy subtree the binding covers.
	Root loctree.NodeID
	// PrecisionLevel is the policy's precision level: 0 draws from leaf
	// rows, >0 from precision-group rows (the client maps a true leaf to
	// its ancestor at this level, as the server does).
	PrecisionLevel int
	// Degraded marks rows detached from a planar-Laplace fallback entry.
	Degraded bool
	// Seed and RNGPos are the RNG coordinates: the client seeds
	// rand.New(rand.NewSource(Seed)) and burns RNGPos variates, landing
	// exactly where the server's resident stream stood at detach time.
	Seed   int64
	RNGPos uint64
	// Pruned lists the leaves the policy's preferences removed (a draw at
	// one of them fails at leaf precision, matching the server).
	Pruned []loctree.NodeID
	// Nodes are the report outcomes, index-aligned with Rows; a drawn row
	// index names Nodes[i].
	Nodes []loctree.NodeID
	// Rows holds, per report row, the exact weight vector the server's
	// alias build consumes (len == len(Nodes) each). A nil/empty row is
	// unsampleable: degenerate after pruning, refused client-side without
	// consuming RNG.
	Rows [][]float64
}

func appendNode(buf []byte, n loctree.NodeID) []byte {
	buf = binary.AppendVarint(buf, int64(n.Level))
	buf = binary.AppendVarint(buf, int64(n.Coord.Q))
	buf = binary.AppendVarint(buf, int64(n.Coord.R))
	return buf
}

// EncodeLeaseBundle packs a bundle into its binary form.
func EncodeLeaseBundle(b *LeaseBundle) ([]byte, error) {
	n := len(b.Nodes)
	if n < 1 || n > MaxLeaseNodes {
		return nil, fmt.Errorf("codec: lease node count %d out of range [1, %d]", n, MaxLeaseNodes)
	}
	if len(b.Rows) != n {
		return nil, fmt.Errorf("codec: lease has %d rows for %d nodes", len(b.Rows), n)
	}
	buf := make([]byte, 0, 64+9*n)
	buf = append(buf, leaseMagic...)
	buf = append(buf, leaseVersion)
	var flags byte
	if b.Degraded {
		flags |= leaseFlagDegraded
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(b.PrecisionLevel))
	buf = appendNode(buf, b.Root)
	buf = binary.AppendVarint(buf, b.Seed)
	buf = binary.AppendUvarint(buf, b.RNGPos)
	buf = binary.AppendUvarint(buf, uint64(len(b.Pruned)))
	for _, p := range b.Pruned {
		buf = appendNode(buf, p)
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, nd := range b.Nodes {
		buf = appendNode(buf, nd)
	}
	for i, row := range b.Rows {
		if len(row) == 0 {
			buf = append(buf, rowEmpty)
			continue
		}
		if len(row) != n {
			return nil, fmt.Errorf("codec: lease row %d has %d weights for %d nodes", i, len(row), n)
		}
		nnz := 0
		for _, w := range row {
			if w != 0 {
				nnz++
			}
		}
		// Sparse pays ~1-2 varint bytes of column index per nonzero on top
		// of the 8 weight bytes; dense pays 8 per column, zero or not.
		if 10*nnz < 8*n {
			buf = append(buf, rowSparse)
			buf = binary.AppendUvarint(buf, uint64(nnz))
			for j, w := range row {
				if w == 0 {
					continue
				}
				buf = binary.AppendUvarint(buf, uint64(j))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
			}
		} else {
			buf = append(buf, rowDense)
			for _, w := range row {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
			}
		}
	}
	return buf, nil
}

// leaseReader is a bounds-checked cursor over an encoded bundle.
type leaseReader struct {
	data []byte
	off  int
}

func (r *leaseReader) u8() (byte, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("codec: lease bundle truncated at byte %d", r.off)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *leaseReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: lease bundle bad uvarint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *leaseReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: lease bundle bad varint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *leaseReader) f64() (float64, error) {
	if r.off+8 > len(r.data) {
		return 0, fmt.Errorf("codec: lease bundle truncated at byte %d", r.off)
	}
	bits := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return math.Float64frombits(bits), nil
}

func (r *leaseReader) node() (loctree.NodeID, error) {
	lvl, err := r.varint()
	if err != nil {
		return loctree.NodeID{}, err
	}
	q, err := r.varint()
	if err != nil {
		return loctree.NodeID{}, err
	}
	rr, err := r.varint()
	if err != nil {
		return loctree.NodeID{}, err
	}
	n := loctree.NodeID{Level: int(lvl)}
	n.Coord.Q = int(q)
	n.Coord.R = int(rr)
	return n, nil
}

// DecodeLeaseBundle unpacks an encoded bundle, validating every bound; a
// malformed input of any shape returns an error, never a panic or an
// oversized allocation.
func DecodeLeaseBundle(data []byte) (*LeaseBundle, error) {
	r := &leaseReader{data: data}
	if len(data) < len(leaseMagic)+2 || string(data[:len(leaseMagic)]) != leaseMagic {
		return nil, fmt.Errorf("codec: not a lease bundle")
	}
	r.off = len(leaseMagic)
	ver, _ := r.u8()
	if ver != leaseVersion {
		return nil, fmt.Errorf("codec: lease bundle version %d unsupported", ver)
	}
	flags, _ := r.u8()
	b := &LeaseBundle{Degraded: flags&leaseFlagDegraded != 0}
	prec, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if prec > 64 {
		return nil, fmt.Errorf("codec: lease precision level %d out of range", prec)
	}
	b.PrecisionLevel = int(prec)
	if b.Root, err = r.node(); err != nil {
		return nil, err
	}
	if b.Seed, err = r.varint(); err != nil {
		return nil, err
	}
	if b.RNGPos, err = r.uvarint(); err != nil {
		return nil, err
	}
	nPruned, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nPruned > MaxLeaseNodes {
		return nil, fmt.Errorf("codec: lease pruned count %d exceeds %d", nPruned, MaxLeaseNodes)
	}
	b.Pruned = make([]loctree.NodeID, nPruned)
	for i := range b.Pruned {
		if b.Pruned[i], err = r.node(); err != nil {
			return nil, err
		}
	}
	nNodes, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nNodes < 1 || nNodes > MaxLeaseNodes {
		return nil, fmt.Errorf("codec: lease node count %d out of range [1, %d]", nNodes, MaxLeaseNodes)
	}
	n := int(nNodes)
	b.Nodes = make([]loctree.NodeID, n)
	for i := range b.Nodes {
		if b.Nodes[i], err = r.node(); err != nil {
			return nil, err
		}
	}
	b.Rows = make([][]float64, n)
	for i := 0; i < n; i++ {
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch kind {
		case rowEmpty:
			// stays nil: unsampleable
		case rowDense:
			row := make([]float64, n)
			for j := range row {
				if row[j], err = r.f64(); err != nil {
					return nil, err
				}
			}
			b.Rows[i] = row
		case rowSparse:
			nnz, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if nnz > uint64(n) {
				return nil, fmt.Errorf("codec: lease row %d claims %d entries for %d nodes", i, nnz, n)
			}
			row := make([]float64, n)
			for k := uint64(0); k < nnz; k++ {
				col, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if col >= uint64(n) {
					return nil, fmt.Errorf("codec: lease row %d column %d out of range", i, col)
				}
				if row[col], err = r.f64(); err != nil {
					return nil, err
				}
			}
			b.Rows[i] = row
		default:
			return nil, fmt.Errorf("codec: lease row %d has unknown kind %d", i, kind)
		}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("codec: lease bundle has %d trailing bytes", len(data)-r.off)
	}
	return b, nil
}
