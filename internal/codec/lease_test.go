package codec

import (
	"math"
	"testing"

	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
)

func nid(level, q, r int) loctree.NodeID {
	return loctree.NodeID{Level: level, Coord: hexgrid.Coord{Q: q, R: r}}
}

// testBundle exercises every row kind: a dense row, a sparse row whose
// zeros must decode to exact 0.0, and an empty (unsampleable) row. The
// weights include values a quantizing codec would mangle.
func testBundle() *LeaseBundle {
	return &LeaseBundle{
		Root:           nid(2, -3, 7),
		PrecisionLevel: 1,
		Degraded:       true,
		Seed:           -987654321,
		RNGPos:         4096,
		Pruned:         []loctree.NodeID{nid(0, 1, -1), nid(0, 4, 4)},
		Nodes:          []loctree.NodeID{nid(0, 0, 0), nid(0, 1, 0), nid(0, 0, 1), nid(0, -1, 1)},
		Rows: [][]float64{
			{math.Pi, 1e-300, math.Nextafter(1, 2), 0.1 + 0.2},
			{0, 0, 5e-324, 0},
			nil,
			{0.25, 0, 0, 0.75},
		},
	}
}

func TestLeaseBundleRoundTrip(t *testing.T) {
	want := testBundle()
	blob, err := EncodeLeaseBundle(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLeaseBundle(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != want.Root || got.PrecisionLevel != want.PrecisionLevel ||
		got.Degraded != want.Degraded || got.Seed != want.Seed || got.RNGPos != want.RNGPos {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if len(got.Pruned) != len(want.Pruned) {
		t.Fatalf("pruned count %d want %d", len(got.Pruned), len(want.Pruned))
	}
	for i := range want.Pruned {
		if got.Pruned[i] != want.Pruned[i] {
			t.Fatalf("pruned[%d] = %v want %v", i, got.Pruned[i], want.Pruned[i])
		}
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("node count %d want %d", len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		if got.Nodes[i] != want.Nodes[i] {
			t.Fatalf("nodes[%d] = %v want %v", i, got.Nodes[i], want.Nodes[i])
		}
	}
	for i, row := range want.Rows {
		if len(row) == 0 {
			if got.Rows[i] != nil {
				t.Fatalf("row %d: want nil (unsampleable), got %v", i, got.Rows[i])
			}
			continue
		}
		for j, w := range row {
			// Bit-for-bit: alias tables are rebuilt from these weights and
			// even one ulp of drift would shift a draw.
			if math.Float64bits(got.Rows[i][j]) != math.Float64bits(w) {
				t.Fatalf("row %d col %d: bits %x want %x", i, j,
					math.Float64bits(got.Rows[i][j]), math.Float64bits(w))
			}
		}
	}
}

func TestLeaseBundleEncodeRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*LeaseBundle)
	}{
		{"no nodes", func(b *LeaseBundle) { b.Nodes = nil; b.Rows = nil }},
		{"row count mismatch", func(b *LeaseBundle) { b.Rows = b.Rows[:2] }},
		{"row width mismatch", func(b *LeaseBundle) { b.Rows[0] = []float64{1, 2} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := testBundle()
			tc.mut(b)
			if _, err := EncodeLeaseBundle(b); err == nil {
				t.Fatal("want encode error, got nil")
			}
		})
	}
}

func TestLeaseBundleDecodeRejectsMalformed(t *testing.T) {
	blob, err := EncodeLeaseBundle(testBundle())
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must error (truncation at any byte boundary).
	for i := 0; i < len(blob); i++ {
		if _, err := DecodeLeaseBundle(blob[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
	if _, err := DecodeLeaseBundle(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	bad := append([]byte(nil), blob...)
	bad[4] = leaseVersion + 1
	if _, err := DecodeLeaseBundle(bad); err == nil {
		t.Fatal("bumped version decoded without error")
	}
}

func FuzzDecodeLeaseBundle(f *testing.F) {
	blob, err := EncodeLeaseBundle(testBundle())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte("CGL1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeLeaseBundle(data)
		if err != nil {
			return
		}
		// A successful decode must satisfy the invariants clientdraw
		// relies on without re-checking.
		if len(b.Nodes) < 1 || len(b.Nodes) != len(b.Rows) {
			t.Fatalf("decoded bundle violates shape: %d nodes, %d rows", len(b.Nodes), len(b.Rows))
		}
		for i, row := range b.Rows {
			if row != nil && len(row) != len(b.Nodes) {
				t.Fatalf("row %d has %d weights for %d nodes", i, len(row), len(b.Nodes))
			}
		}
	})
}

func FuzzDecodeMatrix(f *testing.F) {
	m := sparseMatrix(7, 3, 1)
	blob, err := EncodeMatrix(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob, 7)
	f.Add([]byte{}, 1)
	f.Add([]byte("CGM1"), 49)
	f.Fuzz(func(t *testing.T, data []byte, dim int) {
		got, err := DecodeMatrix(data, dim)
		if err != nil {
			return
		}
		if got.Dim() != dim {
			t.Fatalf("decoded matrix dim %d want %d", got.Dim(), dim)
		}
	})
}
