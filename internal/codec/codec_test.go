package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"corgi/internal/obf"
)

// sparseMatrix builds a row-stochastic matrix with nnz nonzeros per row.
func sparseMatrix(dim, nnz int, seed int64) *obf.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := obf.NewMatrix(dim)
	for i := 0; i < dim; i++ {
		cols := rng.Perm(dim)[:nnz]
		total := 0.0
		vals := make([]float64, nnz)
		for k := range vals {
			vals[k] = rng.Float64() + 0.01
			total += vals[k]
		}
		for k, j := range cols {
			m.Set(i, j, vals[k]/total)
		}
	}
	return m
}

func TestRoundTripWithinTolerance(t *testing.T) {
	for _, nnz := range []int{1, 3, 49} {
		m := sparseMatrix(49, nnz, int64(nnz))
		blob, err := EncodeMatrix(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMatrix(blob, 49)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 49; i++ {
			for j := 0; j < 49; j++ {
				if d := math.Abs(got.At(i, j) - m.At(i, j)); d > 1e-9 {
					t.Fatalf("nnz=%d (%d,%d): decode error %g", nnz, i, j, d)
				}
			}
		}
	}
}

// TestReEncodeStable checks quantization idempotence: a decoded matrix
// re-encodes to identical bytes. The store's content addressing and the
// protocol's strong ETags both rely on this.
func TestReEncodeStable(t *testing.T) {
	m := sparseMatrix(49, 4, 7)
	blob, err := EncodeMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeMatrix(blob, 49)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := EncodeMatrix(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-encoding a decoded matrix changed the blob")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	m := sparseMatrix(7, 2, 1)
	blob, err := EncodeMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMatrix(blob[:len(blob)-1], 7); err == nil {
		t.Error("truncated blob must fail")
	}
	if _, err := DecodeMatrix(append(append([]byte(nil), blob...), 0), 7); err == nil {
		t.Error("trailing bytes must fail")
	}
	if _, err := DecodeMatrix(blob, 0); err == nil {
		t.Error("dim 0 must fail")
	}
	if _, err := DecodeMatrix(blob, MaxDim+1); err == nil {
		t.Error("oversized dim must fail")
	}
	// A row claiming more entries than the dimension.
	bad := []byte{9, 0}
	if _, err := DecodeMatrix(bad, 3); err == nil {
		t.Error("overcounted sparse row must fail")
	}
	// A sparse entry naming an out-of-range column.
	bad = []byte{1, 0, 9, 0, 1, 2, 3, 4}
	if _, err := DecodeMatrix(bad, 3); err == nil {
		t.Error("out-of-range column must fail")
	}
}
