// Package clientdraw replays the server's exact draw sequence from a
// lease bundle, on the device. It is the client half of the draw-lease
// pipeline: internal/session.DetachLease serializes a session's
// customized rows plus RNG coordinates (seed + position), internal/codec
// carries them as a bundle, and Open rebuilds them into a
// mechanism.Rows — the detached form of the server's row-serving
// abstraction, building the same Walker alias tables (internal/sample)
// over the same float64 weight vectors, equal inputs, equal tables — then
// seeds math/rand identically and fast-forwards to the recorded position.
// From there every DrawCell consumes exactly one uniform variate, just
// like the server, so the device-local sequence is byte-identical to what
// /v1/report, the stream transport, or an in-proc registry would have
// produced for the same seed, including across re-anchors (each lease
// carries the position its window starts at).
//
// The lease enforces its own draw cap client-side (ErrLeaseExhausted) —
// not as security (the token's HMAC and the server's pre-paid accounting
// are what cap a hostile client) but so an honest client renews instead
// of silently drawing past what it paid for. Error semantics mirror the
// server row for row — leaf→row resolution and refusals are literally the
// same mechanism code the server runs: a cell outside the leased subtree
// is ErrOutsideSubtree (renew at the new location), a draw from a row the
// server would refuse (pruned own location, degenerate row) fails without
// consuming RNG.
//
// A Lease is safe for concurrent use; draws serialize under an internal
// mutex exactly as server-side sessions do.
package clientdraw

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"corgi/internal/budget"
	"corgi/internal/codec"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
)

// ErrLeaseExhausted marks a draw attempted past the lease's pre-paid cap;
// the client must renew (POST /v1/lease with the old token) to continue.
var ErrLeaseExhausted = errors.New("clientdraw: lease draw cap exhausted")

// ErrOutsideSubtree re-exports mechanism.ErrOutsideSubtree (the same
// sentinel session draws fail with): the true cell left the leased
// subtree, and the client must renew at the new location.
var ErrOutsideSubtree = mechanism.ErrOutsideSubtree

// ErrUnsampleable re-exports mechanism.ErrUnsampleable: the row is
// degenerate (empty in the bundle) and no draw can be served from it.
var ErrUnsampleable = mechanism.ErrUnsampleable

// Lease is an open draw lease: the detached mechanism rows with their
// lazily built alias tables, and the positioned RNG stream. Create with
// Open.
type Lease struct {
	tree     *loctree.Tree
	token    []byte
	tok      budget.LeaseToken
	degraded bool
	seed     int64

	mu   sync.Mutex
	rows *mechanism.Rows
	rng  *rand.Rand
	used int
}

// Open decodes a lease grant's bundle and token and positions the RNG
// stream: seed the bundle's source, then burn its recorded position so
// the first local draw consumes the exact variate the server's resident
// stream reserved for it. The token is parsed (unauthenticated — the
// client holds no key) for the draw cap; tampering with it only breaks
// the client's own renewal.
func Open(tree *loctree.Tree, bundle, token []byte) (*Lease, error) {
	if tree == nil {
		return nil, fmt.Errorf("clientdraw: nil tree")
	}
	b, err := codec.DecodeLeaseBundle(bundle)
	if err != nil {
		return nil, err
	}
	tok, err := budget.DecodeLeaseToken(token)
	if err != nil {
		return nil, err
	}
	if tok.RNGPos != b.RNGPos || tok.Root != b.Root {
		return nil, fmt.Errorf("clientdraw: token and bundle disagree (root %v/%v, position %d/%d)",
			tok.Root, b.Root, tok.RNGPos, b.RNGPos)
	}
	return newLease(tree, b, tok, token, nil)
}

// newLease assembles an open lease from a decoded grant. A nil rng means
// positioning from scratch: seed the bundle's source and burn its
// recorded position. A non-nil rng is a handover from Renew, already
// standing at the bundle's position.
func newLease(tree *loctree.Tree, b *codec.LeaseBundle, tok budget.LeaseToken, token []byte, rng *rand.Rand) (*Lease, error) {
	rows, err := mechanism.NewRows(tree, b.Root, b.PrecisionLevel, b.Pruned, b.Nodes, b.Rows)
	if err != nil {
		return nil, fmt.Errorf("clientdraw: %w", err)
	}
	l := &Lease{
		tree:     tree,
		token:    append([]byte(nil), token...),
		tok:      tok,
		degraded: b.Degraded,
		seed:     b.Seed,
		rows:     rows,
		rng:      rng,
	}
	if l.rng == nil {
		l.rng = rand.New(rand.NewSource(b.Seed))
		// Fast-forward to the leased window: one variate per position, the
		// same consumption rate as one alias draw.
		for i := uint64(0); i < b.RNGPos; i++ {
			l.rng.Float64()
		}
	}
	return l, nil
}

// Renew opens the next lease window from a renewal grant, handing this
// lease's live RNG stream over instead of replaying it from the seed.
// Positions grow without bound over a user's lifetime, so Open's
// burn-from-zero costs O(position) per renewal — quadratic over a
// session — while a handover is O(forfeited draws): the stream only
// advances across the gap the server skipped (renewals continue at the
// old window's cap, so unconsumed draws are burned, never replayed by
// the next window). When the grant does not continue this stream (a
// different seed, or a position behind the current one), Renew falls
// back to a fresh Open. Either way this lease is retired: its remaining
// draws report exhausted.
func (l *Lease) Renew(bundle, token []byte) (*Lease, error) {
	b, err := codec.DecodeLeaseBundle(bundle)
	if err != nil {
		return nil, err
	}
	tok, err := budget.DecodeLeaseToken(token)
	if err != nil {
		return nil, err
	}
	if tok.RNGPos != b.RNGPos || tok.Root != b.Root {
		return nil, fmt.Errorf("clientdraw: token and bundle disagree (root %v/%v, position %d/%d)",
			tok.Root, b.Root, tok.RNGPos, b.RNGPos)
	}
	var rng *rand.Rand
	l.mu.Lock()
	pos := l.tok.RNGPos + uint64(l.used)
	if b.Seed == l.seed && b.RNGPos >= pos {
		for ; pos < b.RNGPos; pos++ {
			l.rng.Float64()
		}
		rng = l.rng
	}
	l.used = l.tok.DrawCap // retire the old window either way
	l.mu.Unlock()
	return newLease(l.tree, b, tok, token, rng)
}

// Token returns the signed lease token, for renewal.
func (l *Lease) Token() []byte { return l.token }

// Root returns the leased privacy subtree.
func (l *Lease) Root() loctree.NodeID { return l.rows.Root() }

// Degraded reports whether the leased rows came from a planar-Laplace
// fallback entry.
func (l *Lease) Degraded() bool { return l.degraded }

// DrawCap returns the lease's pre-paid draw cap.
func (l *Lease) DrawCap() int { return l.tok.DrawCap }

// ExpiresUnixMs returns the token expiry (Unix milliseconds).
func (l *Lease) ExpiresUnixMs() int64 { return l.tok.ExpiresAt }

// Used reports how many draws the lease has served.
func (l *Lease) Used() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Remaining reports how many pre-paid draws are left.
func (l *Lease) Remaining() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tok.DrawCap - l.used
}

// Covers reports whether the leased subtree contains leaf.
func (l *Lease) Covers(leaf loctree.NodeID) bool { return l.rows.Covers(leaf) }

// DrawCell draws one obfuscated report node for a true leaf cell.
func (l *Lease) DrawCell(leaf loctree.NodeID) (loctree.NodeID, error) {
	out := make([]loctree.NodeID, 1)
	if err := l.DrawCellNInto(leaf, out); err != nil {
		return loctree.NodeID{}, err
	}
	return out[0], nil
}

// DrawCellN draws n reports for one true cell as one atomic sequence,
// mirroring session.DrawCellN.
func (l *Lease) DrawCellN(leaf loctree.NodeID, n int) ([]loctree.NodeID, error) {
	if n < 1 {
		return nil, fmt.Errorf("clientdraw: draw count %d must be >= 1", n)
	}
	out := make([]loctree.NodeID, n)
	if err := l.DrawCellNInto(leaf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DrawCellNInto draws len(out) reports into a caller-owned slice. All
// checks run before any variate is consumed — a refused draw (cap
// exhausted, cell outside the subtree, pruned own location, degenerate
// row) leaves the stream position untouched, exactly as the server's
// session does, so a client that renews after a refusal stays
// position-aligned with the server's accounting.
func (l *Lease) DrawCellNInto(leaf loctree.NodeID, out []loctree.NodeID) error {
	n := len(out)
	if n < 1 {
		return fmt.Errorf("clientdraw: draw count %d must be >= 1", n)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used+n > l.tok.DrawCap {
		return fmt.Errorf("%w: %d of %d draws used, %d more requested",
			ErrLeaseExhausted, l.used, l.tok.DrawCap, n)
	}
	row, err := l.rows.RowFor(leaf)
	if err != nil {
		return err
	}
	a, err := l.rows.Alias(row)
	if err != nil {
		return err
	}
	nodes := l.rows.Nodes()
	for i := range out {
		out[i] = nodes[a.Draw(l.rng)]
	}
	l.used += n
	return nil
}
