// Package planar implements the planar Laplace mechanism of Andrés et al.
// (the paper's reference [2], deployed in Location Guard) as an additional
// baseline: continuous noise z with density proportional to exp(-eps*|z|),
// drawn via the radial inverse CDF using the Lambert W_{-1} function, then
// optionally discretized onto a finite cell set. CORGI's evaluation
// compares LP-optimal mechanisms against planar Laplace in the ext-planar
// experiment.
package planar

import (
	"fmt"
	"math"
	"math/rand"

	"corgi/internal/geo"
)

// LambertWm1 evaluates the secondary real branch W_{-1}(x) for
// x in [-1/e, 0): the solution w <= -1 of w*e^w = x. Halley iteration from
// a branch-appropriate initial guess; accurate to ~1e-12.
func LambertWm1(x float64) (float64, error) {
	if x < -1/math.E || x >= 0 {
		return 0, fmt.Errorf("planar: W_{-1} domain is [-1/e, 0), got %v", x)
	}
	if x == -1/math.E {
		return -1, nil
	}
	// Initial guess: for x near 0-, W_{-1}(x) ~ ln(-x) - ln(-ln(-x));
	// near -1/e use the series in sqrt(2(1+e*x)).
	var w float64
	if x < -0.25 {
		p := -math.Sqrt(2 * (1 + math.E*x))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	} else {
		l1 := math.Log(-x)
		l2 := math.Log(-l1)
		w = l1 - l2 + l2/l1
	}
	for i := 0; i < 60; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		if math.Abs(f) < 1e-300 {
			break
		}
		d := ew*(w+1) - f*(w+2)/(2*(w+1))
		step := f / d
		w -= step
		if math.Abs(step) < 1e-14*(1+math.Abs(w)) {
			break
		}
	}
	return w, nil
}

// Mechanism is a continuous planar Laplace sampler with budget Epsilon
// (km^-1): P(z) ∝ exp(-Epsilon * |z|) over the plane.
type Mechanism struct {
	Epsilon float64
}

// New validates the budget and returns a mechanism.
func New(epsilon float64) (*Mechanism, error) {
	if epsilon <= 0 || math.IsInf(epsilon, 0) || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("planar: epsilon must be positive and finite, got %v", epsilon)
	}
	return &Mechanism{Epsilon: epsilon}, nil
}

// SampleOffset draws a noise vector in km: angle uniform, radius from the
// Gamma(2, 1/eps) radial law via r = -(W_{-1}((p-1)/e) + 1)/eps.
func (m *Mechanism) SampleOffset(rng *rand.Rand) geo.XY {
	theta := rng.Float64() * 2 * math.Pi
	p := rng.Float64()
	// Guard the open endpoints.
	for p == 0 {
		p = rng.Float64()
	}
	w, err := LambertWm1((p - 1) / math.E)
	if err != nil {
		// (p-1)/e in [-1/e, 0) for p in (0,1); cannot happen.
		panic(err)
	}
	r := -(w + 1) / m.Epsilon
	return geo.XY{X: r * math.Cos(theta), Y: r * math.Sin(theta)}
}

// Perturb returns the obfuscated geographic point for a real location,
// using a local projection anchored at the point itself.
func (m *Mechanism) Perturb(p geo.LatLng, rng *rand.Rand) geo.LatLng {
	pr := geo.NewProjection(p)
	return pr.Inverse(m.SampleOffset(rng))
}

// ExpectedError returns the mean noise magnitude 2/eps (km), the mechanism's
// intrinsic utility loss.
func (m *Mechanism) ExpectedError() float64 { return 2 / m.Epsilon }

// Discretize snaps a perturbed location for real cell index i onto the
// nearest center among cells (the "remap to the obfuscation range" step
// needed to compare against CORGI's finite matrices). Returns the reported
// cell index.
func (m *Mechanism) Discretize(centers []geo.XY, i int, rng *rand.Rand) (int, error) {
	if i < 0 || i >= len(centers) {
		return 0, fmt.Errorf("planar: cell %d out of range [0,%d)", i, len(centers))
	}
	pt := centers[i].Add(m.SampleOffset(rng))
	best, bestD := -1, math.Inf(1)
	for j, c := range centers {
		if d := pt.Dist(c); d < bestD {
			best, bestD = j, d
		}
	}
	return best, nil
}

// DiscretizedRows builds an analytic row-stochastic obfuscation matrix over
// n cells with entries w_i(j) ∝ exp(-(eps/2)·d(i,j)), where dist returns the
// symmetric distance (km) between cell centers. Unlike EmpiricalMatrix it is
// deterministic and costs O(n²) exponentials — milliseconds even for the
// largest subtrees — which makes it usable as a serving fallback, not just
// an evaluation baseline.
//
// The halved exponent is what makes the normalized rows eps-geo-ind: for any
// cells i, j and output l, the triangle inequality bounds the unnormalized
// ratio exp(-(eps/2)(d_il - d_jl)) <= exp((eps/2)·d_ij), and the normalizers
// satisfy the same bound in the other direction, so
// w_i(l)/w_j(l) <= exp(eps·d_ij). Utility is strictly worse than the
// LP-optimal matrix (the fallback spreads mass at the full bound everywhere
// instead of only where constraints bind), which is the price of building it
// without a solve.
func DiscretizedRows(n int, dist func(i, j int) float64, eps float64) ([][]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("planar: need at least 1 cell, got %d", n)
	}
	if eps <= 0 || math.IsInf(eps, 0) || math.IsNaN(eps) {
		return nil, fmt.Errorf("planar: epsilon must be positive and finite, got %v", eps)
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		var sum float64
		for j := 0; j < n; j++ {
			d := dist(i, j)
			if d < 0 || math.IsInf(d, 0) || math.IsNaN(d) {
				return nil, fmt.Errorf("planar: dist(%d,%d) = %v is not a finite non-negative distance", i, j, d)
			}
			w := math.Exp(-(eps / 2) * d)
			row[j] = w
			sum += w
		}
		for j := range row {
			row[j] /= sum
		}
		out[i] = row
	}
	return out, nil
}

// EmpiricalMatrix estimates the discretized mechanism's obfuscation matrix
// by Monte Carlo: samples draws per row. The result is row-stochastic by
// construction and lets CORGI's audit machinery apply to planar Laplace.
func (m *Mechanism) EmpiricalMatrix(centers []geo.XY, samples int, rng *rand.Rand) ([][]float64, error) {
	if samples < 1 {
		return nil, fmt.Errorf("planar: need at least 1 sample, got %d", samples)
	}
	n := len(centers)
	if n == 0 {
		return nil, fmt.Errorf("planar: empty cell set")
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		for s := 0; s < samples; s++ {
			j, err := m.Discretize(centers, i, rng)
			if err != nil {
				return nil, err
			}
			row[j]++
		}
		for j := range row {
			row[j] /= float64(samples)
		}
		out[i] = row
	}
	return out, nil
}
