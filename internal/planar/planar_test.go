package planar

import (
	"math"
	"math/rand"
	"testing"

	"corgi/internal/geo"
)

func TestLambertWm1KnownValues(t *testing.T) {
	// W_{-1}(-1/e) = -1; W_{-1}(x)*e^{W} = x elsewhere.
	w, err := LambertWm1(-1 / math.E)
	if err != nil || math.Abs(w+1) > 1e-9 {
		t.Errorf("W(-1/e) = %v, %v", w, err)
	}
	for _, x := range []float64{-0.3678, -0.35, -0.2, -0.1, -0.01, -1e-4, -1e-8} {
		w, err := LambertWm1(x)
		if err != nil {
			t.Fatalf("W(%v): %v", x, err)
		}
		if w > -1 {
			t.Errorf("W_{-1}(%v) = %v must be <= -1", x, w)
		}
		if back := w * math.Exp(w); math.Abs(back-x) > 1e-9*math.Abs(x)+1e-12 {
			t.Errorf("W(%v): w*e^w = %v", x, back)
		}
	}
}

func TestLambertWm1Domain(t *testing.T) {
	for _, x := range []float64{-1, 0, 0.5, -0.99} {
		if _, err := LambertWm1(x); err == nil {
			t.Errorf("W(%v) should be out of domain", x)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New(eps); err == nil {
			t.Errorf("epsilon %v must fail", eps)
		}
	}
	if _, err := New(2); err != nil {
		t.Errorf("valid epsilon failed: %v", err)
	}
}

func TestSampleOffsetStatistics(t *testing.T) {
	// Mean radius of the planar Laplace is 2/eps.
	m, _ := New(4.0)
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	sum := 0.0
	sumX, sumY := 0.0, 0.0
	for i := 0; i < n; i++ {
		off := m.SampleOffset(rng)
		sum += math.Hypot(off.X, off.Y)
		sumX += off.X
		sumY += off.Y
	}
	meanR := sum / n
	if math.Abs(meanR-m.ExpectedError())/m.ExpectedError() > 0.02 {
		t.Errorf("mean radius %v, want %v", meanR, m.ExpectedError())
	}
	if math.Abs(sumX/n) > 0.01 || math.Abs(sumY/n) > 0.01 {
		t.Errorf("offset not centered: (%v, %v)", sumX/n, sumY/n)
	}
}

func TestRadialCDF(t *testing.T) {
	// P(R <= r) = 1 - (1 + eps*r)exp(-eps*r); check at r = 1/eps.
	m, _ := New(2.0)
	rng := rand.New(rand.NewSource(2))
	const n = 100000
	r0 := 1 / m.Epsilon
	count := 0
	for i := 0; i < n; i++ {
		off := m.SampleOffset(rng)
		if math.Hypot(off.X, off.Y) <= r0 {
			count++
		}
	}
	want := 1 - 2*math.Exp(-1)
	got := float64(count) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("CDF(1/eps) = %v, want %v", got, want)
	}
}

func TestPerturbStaysNearby(t *testing.T) {
	m, _ := New(10)
	rng := rand.New(rand.NewSource(3))
	p := geo.SanFrancisco.Center()
	far := 0
	for i := 0; i < 1000; i++ {
		q := m.Perturb(p, rng)
		if geo.Haversine(p, q) > 3 { // 30x the mean error
			far++
		}
	}
	if far > 2 {
		t.Errorf("%d of 1000 samples implausibly far", far)
	}
}

func TestDiscretize(t *testing.T) {
	m, _ := New(5)
	rng := rand.New(rand.NewSource(4))
	centers := []geo.XY{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 5, Y: 5}}
	counts := make([]int, len(centers))
	for i := 0; i < 2000; i++ {
		j, err := m.Discretize(centers, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[j]++
	}
	if counts[0] < counts[3] {
		t.Errorf("origin should dominate the far cell: %v", counts)
	}
	if _, err := m.Discretize(centers, 9, rng); err == nil {
		t.Error("out-of-range cell must fail")
	}
}

func TestDiscretizedRows(t *testing.T) {
	centers := []geo.XY{{X: 0, Y: 0}, {X: 0.4, Y: 0}, {X: 0.8, Y: 0}, {X: 0.2, Y: 0.6}}
	dist := func(i, j int) float64 { return centers[i].Dist(centers[j]) }
	const eps = 3.0
	rows, err := DiscretizedRows(len(centers), dist, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		sum := 0.0
		for j, v := range row {
			sum += v
			if v <= 0 {
				t.Errorf("row %d entry %d = %v, want strictly positive", i, j, v)
			}
			if row[i] < v {
				t.Errorf("row %d: diagonal %v below entry %d = %v", i, row[i], j, v)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// The eps-geo-ind bound: w_i(l)/w_j(l) <= exp(eps*d(i,j)) for all i,j,l.
	for i := range rows {
		for j := range rows {
			bound := math.Exp(eps * dist(i, j))
			for l := range rows {
				if ratio := rows[i][l] / rows[j][l]; ratio > bound*(1+1e-12) {
					t.Errorf("ratio w_%d(%d)/w_%d(%d) = %v exceeds exp(eps*d) = %v", i, l, j, l, ratio, bound)
				}
			}
		}
	}
}

func TestDiscretizedRowsValidation(t *testing.T) {
	dist := func(i, j int) float64 { return math.Abs(float64(i - j)) }
	if _, err := DiscretizedRows(0, dist, 1); err == nil {
		t.Error("zero cells must fail")
	}
	for _, eps := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := DiscretizedRows(3, dist, eps); err == nil {
			t.Errorf("epsilon %v must fail", eps)
		}
	}
	if _, err := DiscretizedRows(3, func(i, j int) float64 { return -1 }, 1); err == nil {
		t.Error("negative distance must fail")
	}
}

func TestEmpiricalMatrix(t *testing.T) {
	m, _ := New(3)
	rng := rand.New(rand.NewSource(5))
	centers := []geo.XY{{X: 0, Y: 0}, {X: 0.4, Y: 0}, {X: 0.8, Y: 0}}
	rows, err := m.EmpiricalMatrix(centers, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, sum)
		}
		// The diagonal should carry the most mass (nearest-center remap).
		for j := range row {
			if row[i] < row[j]-0.05 {
				t.Errorf("row %d: diagonal %v below entry %d = %v", i, row[i], j, row[j])
			}
		}
	}
	if _, err := m.EmpiricalMatrix(centers, 0, rng); err == nil {
		t.Error("zero samples must fail")
	}
	if _, err := m.EmpiricalMatrix(nil, 10, rng); err == nil {
		t.Error("empty centers must fail")
	}
}
