package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestFrequentReinversion forces a reinversion every few pivots and reruns
// randomized cross-checks, exercising the PFI rebuild path that large
// problems hit.
func TestFrequentReinversion(t *testing.T) {
	old := refactorEtas
	refactorEtas = 3
	defer func() { refactorEtas = old }()

	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 80; trial++ {
		nv := 3 + rng.Intn(7)
		p := NewProblem(nv)
		c := make([]float64, nv)
		for j := range c {
			c[j] = rng.Float64()*2 - 0.5
		}
		mustObj(t, p, c)
		x0 := make([]float64, nv)
		for j := range x0 {
			x0[j] = rng.Float64() * 2
		}
		m := 2 + rng.Intn(8)
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(nv)
			idx := rng.Perm(nv)[:k]
			val := make([]float64, k)
			ax := 0.0
			for t2 := range val {
				val[t2] = rng.Float64()*4 - 2
				ax += val[t2] * x0[idx[t2]]
			}
			switch rng.Intn(3) {
			case 0:
				mustCon(t, p, LE, ax+rng.Float64(), idx, val)
			case 1:
				mustCon(t, p, GE, ax-rng.Float64(), idx, val)
			default:
				mustCon(t, p, EQ, ax, idx, val)
			}
		}
		all := make([]int, nv)
		ones := make([]float64, nv)
		tot := 0.0
		for j := range all {
			all[j], ones[j] = j, 1
			tot += x0[j]
		}
		mustCon(t, p, LE, tot+1, all, ones)
		solveBoth(t, p, &Options{Seed: int64(trial + 5)})
	}
}

// TestCORGIShapedLP reproduces the structure that broke the solver in
// integration: K cells, row-stochasticity equalities, and zero-RHS ratio
// constraints between lattice neighbors — then verifies the solution is
// feasible and matches the dense oracle.
func TestCORGIShapedLP(t *testing.T) {
	for _, k := range []int{4, 6, 9, 12, 16} {
		p := corgiShaped(t, k, 0.8)
		for _, perturb := range []bool{false, true} {
			s, err := Solve(p, &Options{Perturb: perturb})
			if err != nil {
				t.Fatal(err)
			}
			if s.Status != Optimal {
				t.Fatalf("k=%d perturb=%v: status %v", k, perturb, s.Status)
			}
			if v, n := p.CheckFeasible(s.X, 1e-6); n > 0 {
				t.Fatalf("k=%d perturb=%v: %d violations, worst %g", k, perturb, n, v)
			}
			d, err := SolveDense(p, nil)
			if err != nil || d.Status != Optimal {
				t.Fatalf("dense: %v %v", err, d.Status)
			}
			if math.Abs(d.Objective-s.Objective) > 1e-5*(1+math.Abs(d.Objective)) {
				t.Fatalf("k=%d perturb=%v: obj %v vs dense %v", k, perturb, s.Objective, d.Objective)
			}
		}
	}
}

// corgiShaped builds min sum c_ij z_ij s.t. rows stochastic, and
// z[i][c] <= alpha*z[j][c] for ring-adjacent i,j on a cycle of k cells.
func corgiShaped(t *testing.T, k int, dist float64) *Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(k)))
	nv := k * k
	p := NewProblem(nv)
	c := make([]float64, nv)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			c[i*k+j] = math.Abs(float64(i-j)) * (1 + 0.1*rng.Float64())
		}
	}
	mustObj(t, p, c)
	idx := make([]int, k)
	ones := make([]float64, k)
	for j := range ones {
		ones[j] = 1
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			idx[j] = i*k + j
		}
		mustCon(t, p, EQ, 1, idx, ones)
	}
	alpha := math.Exp(1.5 * dist)
	for i := 0; i < k; i++ {
		j := (i + 1) % k
		for col := 0; col < k; col++ {
			mustCon(t, p, LE, 0, []int{i*k + col, j*k + col}, []float64{1, -alpha})
			mustCon(t, p, LE, 0, []int{j*k + col, i*k + col}, []float64{1, -alpha})
		}
	}
	return p
}
