package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildFactorProblem creates a standard form whose first m columns form a
// random nonsingular sparse matrix (guaranteed by a dominant permuted
// diagonal), so a basis of exactly those columns must reinvert cleanly.
func buildFactorProblem(t *testing.T, m int, extraNnz int, rng *rand.Rand) (*sparseState, []int) {
	t.Helper()
	p := NewProblem(m)
	perm := rng.Perm(m)
	rowsOf := make([][]int, m)
	valsOf := make([][]float64, m)
	for j := 0; j < m; j++ {
		seen := map[int]bool{perm[j]: true}
		rowsOf[j] = []int{perm[j]}
		valsOf[j] = []float64{2 + rng.Float64()*3}
		for e := 0; e < extraNnz; e++ {
			r := rng.Intn(m)
			if seen[r] {
				continue
			}
			seen[r] = true
			rowsOf[j] = append(rowsOf[j], r)
			valsOf[j] = append(valsOf[j], (rng.Float64()*2-1)*0.9)
		}
	}
	// Constraints: row i of the matrix as an EQ row (values arbitrary).
	rowIdx := make([][]int, m)
	rowVal := make([][]float64, m)
	for j := 0; j < m; j++ {
		for k, r := range rowsOf[j] {
			rowIdx[r] = append(rowIdx[r], j)
			rowVal[r] = append(rowVal[r], valsOf[j][k])
		}
	}
	for i := 0; i < m; i++ {
		if len(rowIdx[i]) == 0 {
			// Ensure no empty row: put a tiny entry on variable i.
			rowIdx[i] = []int{i}
			rowVal[i] = []float64{1e-3}
		}
		mustCon(t, p, EQ, 1, rowIdx[i], rowVal[i])
	}
	sf, _ := p.toStandard()
	s := newSparseState(sf, &Options{})
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		basis[i] = i
	}
	copy(s.basis, basis)
	for _, j := range basis {
		s.inBasis[j] = true
	}
	return s, basis
}

// TestFactorBumpRandom reinvertes random sparse nonsingular bases and checks
// B^{-1} B = I through the eta file.
func TestFactorBumpRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := 5 + rng.Intn(60)
		s, basis := buildFactorProblem(t, m, 1+rng.Intn(4), rng)
		if err := s.reinvert(); err != nil {
			t.Fatalf("trial %d (m=%d): reinvert: %v", trial, m, err)
		}
		// basis may be reordered; same set expected.
		seen := map[int]bool{}
		for _, j := range s.basis {
			seen[j] = true
		}
		for _, j := range basis {
			if !seen[j] {
				t.Fatalf("trial %d: basis lost column %d", trial, j)
			}
		}
		// FTRAN of basis column at row r must be e_r.
		for r, j := range s.basis {
			rows, vals := s.colOf(j)
			touched := s.ftran(rows, vals)
			for _, i := range touched {
				want := 0.0
				if int(i) == r {
					want = 1
				}
				if math.Abs(s.work[i]-want) > 1e-8 {
					t.Fatalf("trial %d: column %d row %d: got %g want %g", trial, j, i, s.work[i], want)
				}
			}
		}
	}
}

// TestFactorBumpDetectsSingular feeds a structurally singular basis
// (duplicate column) and expects an error, not silence.
func TestFactorBumpDetectsSingular(t *testing.T) {
	p := NewProblem(3)
	mustCon(t, p, EQ, 1, []int{0, 1, 2}, []float64{1, 1, 1})
	mustCon(t, p, EQ, 1, []int{0, 1, 2}, []float64{2, 2, 1})
	mustCon(t, p, EQ, 1, []int{0, 1}, []float64{3, 3})
	sf, _ := p.toStandard()
	s := newSparseState(sf, &Options{})
	// Columns 0 and 1 are identical (values 1,2,3): basis {0,1,2} singular.
	copy(s.basis, []int{0, 1, 2})
	s.inBasis[0], s.inBasis[1], s.inBasis[2] = true, true, true
	if err := s.reinvert(); err == nil {
		t.Fatal("singular basis must be detected")
	}
}
