package lp

import (
	"fmt"
	"math"
	"math/rand"
	"os"
)

// Solve solves the problem with a sparse revised simplex (product form of
// the inverse). It is the production solver: memory and per-iteration cost
// scale with the number of nonzeros, not m*n. See the package comment for
// the algorithmic inventory.
func Solve(p *Problem, opt *Options) (*Solution, error) {
	sf, flipped := p.toStandard()
	if sf.m == 0 {
		return SolveDense(p, opt)
	}
	rowScale, colScale := sf.equilibrate(3)
	s := newSparseState(sf, opt)

	// Optional RHS perturbation to break degeneracy (CORGI's Geo-Ind rows
	// all have b=0, which otherwise causes severe stalling).
	bTrue := append([]float64(nil), sf.b...)
	if opt.perturb() {
		rng := rand.New(rand.NewSource(opt.seed()))
		for i := range sf.b {
			sf.b[i] += pertScale * (1 + rng.Float64())
		}
	}
	return s.run(p, flipped, bTrue, opt, rowScale, colScale), nil
}

const (
	pivotTol   = 1e-8  // ratio-test / reinversion pivot threshold
	dropTol    = 1e-12 // entries below this are dropped from etas
	pertScale  = 1e-8  // RHS perturbation magnitude
	stallLimit = 256   // degenerate pivots before switching to Bland
)

// refactorEtas is the pivot count between reinversions. It is a variable so
// tests can force frequent reinversion.
var refactorEtas = 80

// eta is one elementary transformation of the product-form inverse: the
// basis changed by pivoting the (already FTRAN-transformed) column w at
// position r.
type eta struct {
	r     int32
	idx   []int32
	vals  []float64
	pivot float64
}

type sparseState struct {
	sf  *standardForm
	m   int
	n   int // structural + slack columns (artificials are n..n+m-1)
	tol float64

	basis    []int // basis[i] = column pivoted at row i
	inBasis  []bool
	etas     []eta
	xB       []float64 // current basic values, aligned with rows
	work     []float64 // dense scratch for FTRAN
	stamp    []int64   // touch epochs for work
	epoch    int64
	touched  []int32
	y        []float64 // dual scratch
	costs    []float64 // current phase costs, length n+m
	segCur   int
	iters    int
	maxIters int
}

func newSparseState(sf *standardForm, opt *Options) *sparseState {
	m, n := sf.m, sf.n
	return &sparseState{
		sf: sf, m: m, n: n,
		tol:      opt.tol(),
		basis:    make([]int, m),
		inBasis:  make([]bool, n+m),
		xB:       make([]float64, m),
		work:     make([]float64, m),
		stamp:    make([]int64, m),
		y:        make([]float64, m),
		costs:    make([]float64, n+m),
		maxIters: opt.maxIters(m, n),
	}
}

// colOf returns column j including artificials (e_i for j = n+i).
func (s *sparseState) colOf(j int) (rows []int32, vals []float64) {
	if j < s.n {
		return s.sf.col(j)
	}
	i := int32(j - s.n)
	return []int32{i}, []float64{1}
}

// ftran computes w = B^{-1} a_j into s.work, returning the touched indices.
// The returned slice is invalidated by the next ftran.
func (s *sparseState) ftran(rows []int32, vals []float64) []int32 {
	s.epoch++
	s.touched = s.touched[:0]
	w := s.work
	for k, r := range rows {
		w[r] = vals[k]
		s.stamp[r] = s.epoch
		s.touched = append(s.touched, r)
	}
	for e := range s.etas {
		et := &s.etas[e]
		r := et.r
		if s.stamp[r] != s.epoch {
			continue
		}
		t := w[r]
		if t == 0 {
			continue
		}
		t /= et.pivot
		for k, j := range et.idx {
			if j == r {
				continue
			}
			if s.stamp[j] != s.epoch {
				s.stamp[j] = s.epoch
				s.touched = append(s.touched, j)
				w[j] = 0
			}
			w[j] -= et.vals[k] * t
		}
		w[r] = t
	}
	return s.touched
}

// ftranDense applies B^{-1} to a dense vector in place.
func (s *sparseState) ftranDense(x []float64) {
	for e := range s.etas {
		et := &s.etas[e]
		t := x[et.r]
		if t == 0 {
			continue
		}
		t /= et.pivot
		for k, j := range et.idx {
			if j == et.r {
				continue
			}
			x[j] -= et.vals[k] * t
		}
		x[et.r] = t
	}
}

// btran applies B^{-T} to a dense vector in place (reverse eta order).
func (s *sparseState) btran(y []float64) {
	for e := len(s.etas) - 1; e >= 0; e-- {
		et := &s.etas[e]
		r := et.r
		sum := 0.0
		for k, j := range et.idx {
			if j == r {
				continue
			}
			sum += et.vals[k] * y[j]
		}
		y[r] = (y[r] - sum) / et.pivot
	}
}

// appendEta records the pivot of the transformed column w (given by touched
// indices into s.work) at row r.
func (s *sparseState) appendEta(r int32, touched []int32) {
	w := s.work
	et := eta{r: r, pivot: w[r]}
	for _, j := range touched {
		v := w[j]
		if j != r && math.Abs(v) < dropTol {
			continue
		}
		et.idx = append(et.idx, j)
		et.vals = append(et.vals, v)
	}
	s.etas = append(s.etas, et)
}

// reinvert rebuilds the eta file from the current set of basic columns and
// re-associates each basic column with its pivot row (basis[r] = column
// pivoted at row r). Identity-like columns (artificials, slacks) pivot
// structurally; the residual "bump" is factored by threshold-Markowitz
// Gaussian elimination (factorBump), which both orders pivots for sparsity
// and bounds element growth. xB must be refreshed by the caller.
func (s *sparseState) reinvert() error {
	s.etas = s.etas[:0]
	m := s.m
	newBasis := make([]int, m)
	for i := range newBasis {
		newBasis[i] = -1
	}
	rowCoeff := map[int32]float64{} // singleton rows pivoted with coeff != 1
	var bump []int

	for _, j := range s.basis {
		switch {
		case j >= s.n: // artificial e_i: pivot at its own row, no eta
			i := j - s.n
			if newBasis[i] != -1 {
				return fmt.Errorf("lp: row %d pivoted twice during reinversion", i)
			}
			newBasis[i] = j
		default:
			rows, vals := s.sf.col(j)
			if len(rows) == 1 && newBasis[rows[0]] == -1 {
				// Slack (or any singleton) column: pivot at its row; only a
				// non-unit coefficient needs an eta.
				r := rows[0]
				newBasis[r] = j
				if vals[0] != 1 {
					s.etas = append(s.etas, eta{r: r, idx: []int32{r}, vals: []float64{vals[0]}, pivot: vals[0]})
					rowCoeff[r] = vals[0]
				}
			} else {
				bump = append(bump, j)
			}
		}
	}
	if len(bump) > 0 {
		if err := s.factorBump(bump, newBasis, rowCoeff); err != nil {
			return err
		}
	}
	for i, j := range newBasis {
		if j == -1 {
			return fmt.Errorf("lp: reinversion left row %d unpivoted", i)
		}
	}
	copy(s.basis, newBasis)
	return nil
}

// bumpEntry is a (row, value) pair used during bump factorization.
type bumpEntry struct {
	r int32
	v float64
}

// factorBump factors the non-triangular part of the basis with
// right-looking sparse Gaussian elimination: pivot columns are chosen by
// fewest active nonzeros (Markowitz-style), pivot rows by threshold partial
// pivoting (|a| >= 0.1 * column max, preferring low row degree). Each pivot
// emits a PFI eta identical to what sequential FTRAN-pivoting would have
// produced, so the existing FTRAN/BTRAN machinery applies unchanged.
func (s *sparseState) factorBump(bump []int, newBasis []int, rowCoeff map[int32]float64) error {
	nb := len(bump)
	cols := make([]map[int32]float64, nb)
	rowCols := make(map[int32]map[int]bool) // active row -> bump columns touching it
	activeCount := make([]int, nb)
	pivoted := make([]bool, nb)
	isActive := func(r int32) bool { return newBasis[r] == -1 }

	for ci, j := range bump {
		rows, vals := s.sf.col(j)
		mc := make(map[int32]float64, len(rows)*2)
		for k, r := range rows {
			v := vals[k]
			if c, ok := rowCoeff[r]; ok {
				v /= c // reflect the singleton eta scaling of row r
			}
			mc[r] = v
			if isActive(r) {
				set := rowCols[r]
				if set == nil {
					set = map[int]bool{}
					rowCols[r] = set
				}
				set[ci] = true
				activeCount[ci]++
			}
		}
		cols[ci] = mc
	}

	cand := make([]bumpEntry, 0, 64)
	for done := 0; done < nb; done++ {
		// Column choice: fewest active nonzeros (ties: lower index).
		ci := -1
		for k := 0; k < nb; k++ {
			if pivoted[k] {
				continue
			}
			if ci < 0 || activeCount[k] < activeCount[ci] {
				ci = k
			}
		}
		// Row choice within the column: threshold partial pivoting.
		cand = cand[:0]
		colMax := 0.0
		for r, v := range cols[ci] {
			if !isActive(r) {
				continue
			}
			cand = append(cand, bumpEntry{r: r, v: v})
			if av := math.Abs(v); av > colMax {
				colMax = av
			}
		}
		if colMax < 1e-11 {
			if os.Getenv("LP_DEBUG") != "" {
				fullMax, fullN := 0.0, 0
				for _, v := range cols[ci] {
					fullN++
					if av := math.Abs(v); av > fullMax {
						fullMax = av
					}
				}
				fmt.Printf("bump dead-end: done=%d/%d col=%d activeEntries=%d fullEntries=%d fullMax=%g colMax=%g\n",
					done, nb, bump[ci], len(cand), fullN, fullMax, colMax)
			}
			return fmt.Errorf("lp: numerically singular basis (bump column %d, max entry %g)", bump[ci], colMax)
		}
		sortBumpEntries(cand)
		rPiv, wPiv := int32(-1), 0.0
		bestDeg := -1
		for _, e := range cand {
			if math.Abs(e.v) < 0.99*colMax {
				continue
			}
			deg := len(rowCols[e.r])
			if rPiv < 0 || deg < bestDeg || (deg == bestDeg && math.Abs(e.v) > math.Abs(wPiv)) {
				rPiv, wPiv, bestDeg = e.r, e.v, deg
			}
		}
		// Emit the eta: the column's full current state (sorted for
		// reproducibility), pivot at rPiv.
		et := eta{r: rPiv, pivot: wPiv}
		full := make([]bumpEntry, 0, len(cols[ci]))
		for r, v := range cols[ci] {
			if r != rPiv && math.Abs(v) < dropTol {
				continue
			}
			full = append(full, bumpEntry{r: r, v: v})
		}
		sortBumpEntries(full)
		for _, e := range full {
			et.idx = append(et.idx, e.r)
			et.vals = append(et.vals, e.v)
		}
		s.etas = append(s.etas, et)
		newBasis[rPiv] = bump[ci]
		pivoted[ci] = true

		// Deactivate the pivot row.
		affected := rowCols[rPiv]
		delete(rowCols, rPiv)
		for ck := range affected {
			if !pivoted[ck] {
				activeCount[ck]--
			}
		}
		// Right-looking update of the remaining columns with an entry in
		// the pivot row: x_rPiv' = x_rPiv / wPiv; x_i -= w_i * x_rPiv'.
		for ck := range affected {
			if pivoted[ck] {
				continue
			}
			colK := cols[ck]
			xr, ok := colK[rPiv]
			if !ok || xr == 0 {
				continue
			}
			t := xr / wPiv
			colK[rPiv] = t
			for r, wv := range cols[ci] {
				if r == rPiv {
					continue
				}
				old, had := colK[r]
				nv := old - wv*t
				switch {
				case !had:
					if math.Abs(nv) < dropTol {
						continue
					}
					colK[r] = nv
					if isActive(r) {
						set := rowCols[r]
						if set == nil {
							set = map[int]bool{}
							rowCols[r] = set
						}
						set[ck] = true
						activeCount[ck]++
					}
				case math.Abs(nv) < dropTol:
					delete(colK, r)
					if isActive(r) {
						delete(rowCols[r], ck)
						activeCount[ck]--
					}
				default:
					colK[r] = nv
				}
			}
		}
	}
	return nil
}

func sortBumpEntries(es []bumpEntry) {
	for i := 1; i < len(es); i++ {
		v := es[i]
		j := i - 1
		for j >= 0 && es[j].r > v.r {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = v
	}
}

// refreshXB recomputes xB = B^{-1} b.
func (s *sparseState) refreshXB() {
	copy(s.xB, s.sf.b)
	s.ftranDense(s.xB)
}

// computeDuals sets s.y = B^{-T} c_B for the current phase costs.
func (s *sparseState) computeDuals() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.costs[s.basis[i]]
	}
	s.btran(s.y)
}

// reducedCost returns d_j = c_j - y·a_j.
func (s *sparseState) reducedCost(j int) float64 {
	d := s.costs[j]
	rows, vals := s.colOf(j)
	for k, r := range rows {
		d -= s.y[r] * vals[k]
	}
	return d
}

// price selects an entering column with negative reduced cost, or -1 at
// optimality. In Bland mode it returns the lowest-index eligible column;
// otherwise it uses partial pricing (segment scan, most negative wins).
// allowArtificials is false in every phase (artificials never re-enter).
func (s *sparseState) price(bland bool) int {
	nCols := s.n
	dTol := s.tol
	if bland {
		for j := 0; j < nCols; j++ {
			if s.inBasis[j] {
				continue
			}
			if s.reducedCost(j) < -dTol {
				return j
			}
		}
		return -1
	}
	segSize := nCols / 16
	if segSize < 256 {
		segSize = 256
	}
	start := s.segCur
	scanned := 0
	for scanned < nCols {
		end := start + segSize
		best, bestD := -1, -dTol
		for j := start; j < end && j < nCols; j++ {
			if s.inBasis[j] {
				continue
			}
			if d := s.reducedCost(j); d < bestD {
				bestD = d
				best = j
			}
		}
		scanned += segSize
		start = end
		if start >= nCols {
			start = 0
		}
		if best >= 0 {
			s.segCur = start
			return best
		}
	}
	return -1
}

// phaseResult is the outcome of a primal simplex phase.
type phaseResult int

const (
	phaseOptimal phaseResult = iota
	phaseUnbounded
	phaseIterLimit
	phaseSingular
)

// primalLoop runs primal simplex pivots with the current costs until
// optimality/unboundedness. It maintains xB, basis, and the eta file.
//
// The ratio test is a Harris-style two-pass: pass 1 finds the tightest
// slightly-relaxed bound theta_max, pass 2 picks, among rows whose exact
// ratio does not exceed it, the one with the largest pivot element. CORGI's
// Geo-Ind constraints carry multipliers up to e^{eps*d} ~ 1e6, where the
// classic min-ratio rule happily pivots on 1e-6-scale elements and destroys
// the factorization; the two-pass rule is the standard cure.
func (s *sparseState) primalLoop() phaseResult {
	degenRun := 0
	confirmations := 0
	etaBase := len(s.etas)
	forceReinvert := false
	s.computeDuals()
	for ; s.iters < s.maxIters; s.iters++ {
		if forceReinvert || len(s.etas)-etaBase >= refactorEtas {
			if err := s.reinvert(); err != nil {
				return phaseSingular
			}
			etaBase = len(s.etas)
			forceReinvert = false
			s.refreshXB()
			s.computeDuals()
		}
		bland := degenRun >= stallLimit
		q := s.price(bland)
		if q < 0 {
			// Confirm optimality against a fresh factorization: drift in
			// the eta file can hide negative reduced costs.
			if len(s.etas) > etaBase && confirmations < 20 {
				confirmations++
				if err := s.reinvert(); err != nil {
					return phaseSingular
				}
				etaBase = len(s.etas)
				s.refreshXB()
				s.computeDuals()
				if q = s.price(bland); q < 0 {
					return phaseOptimal
				}
			} else {
				return phaseOptimal
			}
		}
		rows, vals := s.colOf(q)
		touched := s.ftran(rows, vals)
		// Pass 1: relaxed bound.
		const feasTol = 1e-9
		thetaMax := math.Inf(1)
		for _, i := range touched {
			wi := s.work[i]
			if wi <= pivotTol {
				continue
			}
			xb := s.xB[i]
			if xb < 0 {
				xb = 0
			}
			if t := (xb + feasTol) / wi; t < thetaMax {
				thetaMax = t
			}
		}
		if math.IsInf(thetaMax, 1) {
			return phaseUnbounded
		}
		// Pass 2: among admissible rows pick the most stable pivot (largest
		// |w|); in Bland mode pick the smallest leaving variable index.
		r := int32(-1)
		bestW := 0.0
		for _, i := range touched {
			wi := s.work[i]
			if wi <= pivotTol {
				continue
			}
			xb := s.xB[i]
			if xb < 0 {
				xb = 0
			}
			if xb/wi > thetaMax {
				continue
			}
			if bland {
				if r < 0 || s.basis[i] < s.basis[r] {
					r = i
					bestW = wi
				}
			} else if wi > bestW {
				r = i
				bestW = wi
			}
		}
		if r < 0 {
			return phaseUnbounded
		}
		theta := s.xB[r] / s.work[r]
		if theta < 0 {
			theta = 0
		}
		if theta < s.tol {
			degenRun++
		} else {
			degenRun = 0
		}
		// Update basic values: xB -= theta * w; entering takes theta.
		if theta != 0 {
			for _, i := range touched {
				s.xB[i] -= theta * s.work[i]
				if s.xB[i] < 0 && s.xB[i] > -feasTol {
					s.xB[i] = 0
				}
			}
		}
		leaving := s.basis[r]
		s.inBasis[leaving] = false
		s.inBasis[q] = true
		s.basis[r] = q
		s.xB[r] = theta
		s.appendEta(r, touched)
		if os.Getenv("LP_DEBUG") == "2" {
			if err := s.reinvert(); err != nil {
				fmt.Printf("SINGULAR after iter=%d enter=%d leave=%d row=%d pivot=%g: %v\n",
					s.iters, q, leaving, r, bestW, err)
				return phaseSingular
			}
			s.refreshXB()
		}
		// A pivot much smaller than the column's largest transformed entry
		// signals dangerous element growth: refactor immediately.
		colMax := 0.0
		for _, i := range touched {
			if a := math.Abs(s.work[i]); a > colMax {
				colMax = a
			}
		}
		if bestW < 1e-7*colMax {
			forceReinvert = true
		}
		s.computeDuals()
	}
	return phaseIterLimit
}

// dualCleanup restores primal feasibility after the RHS perturbation is
// removed, using dual simplex pivots (the basis is dual feasible because it
// was primal optimal for the perturbed problem).
func (s *sparseState) dualCleanup() phaseResult {
	rowVec := make([]float64, s.m)
	for ; s.iters < s.maxIters; s.iters++ {
		// Leaving row: most negative basic value.
		r, worst := -1, -s.tol
		for i := 0; i < s.m; i++ {
			if s.xB[i] < worst {
				worst = s.xB[i]
				r = i
			}
		}
		if r < 0 {
			return phaseOptimal
		}
		// rowVec = e_r^T B^{-1}.
		for i := range rowVec {
			rowVec[i] = 0
		}
		rowVec[r] = 1
		s.btran(rowVec)
		s.computeDuals()
		// Entering: min ratio d_j / (-alpha_j) over alpha_j < -pivotTol.
		q, bestRatio, bestAlpha := -1, math.Inf(1), 0.0
		for j := 0; j < s.n; j++ {
			if s.inBasis[j] {
				continue
			}
			rows, vals := s.sf.col(j)
			alpha := 0.0
			for k, i := range rows {
				alpha += rowVec[i] * vals[k]
			}
			if alpha >= -pivotTol {
				continue
			}
			d := s.reducedCost(j)
			if d < 0 {
				d = 0 // numerical dust; dual feasibility holds by construction
			}
			ratio := d / -alpha
			if ratio < bestRatio-s.tol || (ratio < bestRatio+s.tol && -alpha > -bestAlpha) {
				bestRatio, bestAlpha, q = ratio, alpha, j
			}
		}
		if q < 0 {
			return phaseUnbounded // primal infeasible row with no pivot: infeasible after cleanup
		}
		rows, vals := s.colOf(q)
		touched := s.ftran(rows, vals)
		wr := s.work[r]
		if math.Abs(wr) < pivotTol {
			return phaseSingular
		}
		theta := s.xB[r] / wr
		for _, i := range touched {
			s.xB[i] -= theta * s.work[i]
		}
		leaving := s.basis[r]
		s.inBasis[leaving] = false
		s.inBasis[q] = true
		s.basis[r] = q
		s.xB[r] = theta
		s.appendEta(int32(r), touched)
		if len(s.etas) >= refactorEtas*4 {
			if err := s.reinvert(); err != nil {
				return phaseSingular
			}
			s.refreshXB()
		}
	}
	return phaseIterLimit
}

// tryWarmBasis swaps the just-installed crash basis for a caller-supplied
// warm basis (Options.WarmBasis encoding). The warm basis is accepted only
// if it is structurally valid, factors without singularity, and is primal
// feasible for the current (possibly perturbed) RHS; any failure restores
// the crash state exactly and reports false. Basis membership is a column
// set, so warm bases survive re-equilibration and RHS perturbation across
// solves unchanged.
func (s *sparseState) tryWarmBasis(warm []int) bool {
	if len(warm) != s.m {
		return false
	}
	cols := make([]int, s.m)
	for i, w := range warm {
		j := w
		if w < 0 {
			r := -w - 1
			if r >= s.m {
				return false
			}
			j = s.n + r
		} else if j >= s.n {
			return false
		}
		cols[i] = j
	}
	seen := make([]bool, s.n+s.m)
	for _, j := range cols {
		if seen[j] {
			return false
		}
		seen[j] = true
	}
	crash := append([]int(nil), s.basis...)
	restore := func() {
		s.etas = s.etas[:0]
		copy(s.basis, crash)
		for j := range s.inBasis {
			s.inBasis[j] = false
		}
		for _, j := range s.basis {
			s.inBasis[j] = true
		}
		copy(s.xB, s.sf.b)
	}
	copy(s.basis, cols)
	for j := range s.inBasis {
		s.inBasis[j] = false
	}
	for _, j := range cols {
		s.inBasis[j] = true
	}
	if err := s.reinvert(); err != nil {
		restore()
		return false
	}
	s.refreshXB()
	for _, v := range s.xB {
		if v < -1e-7 {
			restore()
			return false
		}
	}
	return true
}

// run executes phase 1, phase 2 and, if perturbed, the exact cleanup. The
// standard form has been equilibrated; rowScale/colScale recover original
// units.
func (s *sparseState) run(p *Problem, flipped []bool, bTrue []float64, opt *Options, rowScale, colScale []float64) *Solution {
	// Initial basis: slack where the row has a +1 slack, artificial else.
	for i := 0; i < s.m; i++ {
		if s.sf.slackOf[i] >= 0 && s.sf.slackSign[i] == 1 {
			s.basis[i] = int(s.sf.slackOf[i])
		} else {
			s.basis[i] = s.n + i
		}
		s.inBasis[s.basis[i]] = true
	}
	copy(s.xB, s.sf.b)

	warm := false
	if wb := opt.warmBasis(); len(wb) > 0 {
		warm = s.tryWarmBasis(wb)
	}

	// Phase 1: minimize the sum of artificials (zero cost otherwise).
	nArt := 0
	for j := s.n; j < s.n+s.m; j++ {
		if s.inBasis[j] {
			s.costs[j] = 1
			nArt++
		}
	}
	if nArt > 0 {
		switch s.primalLoop() {
		case phaseIterLimit:
			return &Solution{Status: IterationLimit, Iterations: s.iters, Note: "phase1 iteration limit"}
		case phaseSingular:
			return &Solution{Status: NumericalFailure, Iterations: s.iters, Note: "phase1 singular"}
		case phaseUnbounded:
			return &Solution{Status: NumericalFailure, Iterations: s.iters, Note: "phase1 unbounded"}
		}
		infeas := 0.0
		for i := 0; i < s.m; i++ {
			if s.basis[i] >= s.n {
				infeas += s.xB[i]
			}
		}
		if infeas > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: s.iters, Note: "phase1 positive artificials"}
		}
	}

	// Phase 2: the real objective. Artificials keep zero cost and are
	// barred from entering (price scans only j < n).
	for j := 0; j < s.n+s.m; j++ {
		s.costs[j] = 0
	}
	copy(s.costs[:s.sf.n], s.sf.c)
	switch s.primalLoop() {
	case phaseIterLimit:
		return &Solution{Status: IterationLimit, Iterations: s.iters, Note: "phase2 iteration limit"}
	case phaseUnbounded:
		return &Solution{Status: Unbounded, Iterations: s.iters, Note: "phase2 unbounded"}
	case phaseSingular:
		return &Solution{Status: NumericalFailure, Iterations: s.iters, Note: "phase2 singular"}
	}

	// Remove the perturbation and restore exact feasibility.
	if opt.perturb() {
		copy(s.sf.b, bTrue)
		s.refreshXB()
		switch s.dualCleanup() {
		case phaseIterLimit:
			return &Solution{Status: IterationLimit, Iterations: s.iters, Note: "cleanup iteration limit"}
		case phaseUnbounded:
			return &Solution{Status: Infeasible, Iterations: s.iters, Note: "cleanup infeasible"}
		case phaseSingular:
			return &Solution{Status: NumericalFailure, Iterations: s.iters, Note: "cleanup singular"}
		}
		// One more primal pass: cleanup may have left negative reduced costs.
		switch s.primalLoop() {
		case phaseIterLimit:
			return &Solution{Status: IterationLimit, Iterations: s.iters, Note: "post-cleanup iteration limit"}
		case phaseUnbounded:
			return &Solution{Status: Unbounded, Iterations: s.iters, Note: "post-cleanup unbounded"}
		case phaseSingular:
			return &Solution{Status: NumericalFailure, Iterations: s.iters, Note: "post-cleanup singular"}
		}
	}

	nv := p.NumVars()
	x := make([]float64, nv)
	for i := 0; i < s.m; i++ {
		if j := s.basis[i]; j < nv {
			v := s.xB[i] * colScale[j]
			if v < 0 {
				v = 0
			}
			x[j] = v
		}
	}
	// Self-check in original units; refuse to report a corrupted point.
	if _, bad := p.CheckFeasible(x, 1e-6); bad > 0 {
		return &Solution{Status: NumericalFailure, Iterations: s.iters, Note: "final solution infeasible"}
	}
	s.computeDuals()
	duals := make([]float64, s.m)
	for i := 0; i < s.m; i++ {
		yv := s.y[i] * rowScale[i]
		if flipped[i] {
			yv = -yv
		}
		duals[i] = yv
	}
	basisOut := make([]int, s.m)
	for i, j := range s.basis {
		if j >= s.n {
			basisOut[i] = -(j - s.n + 1)
		} else {
			basisOut[i] = j
		}
	}
	return &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  p.Eval(x),
		Duals:      duals,
		Iterations: s.iters,
		Basis:      basisOut,
		Warm:       warm,
	}
}
