package lp

import (
	"math"
)

// SolveDense solves the problem with a two-phase primal simplex on a dense
// tableau. It is intended for small problems (hundreds of rows/columns) and
// as the correctness oracle for the sparse solver; memory is O(m*(n+m)).
func SolveDense(p *Problem, opt *Options) (*Solution, error) {
	sf, flipped := p.toStandard()
	rowScale, colScale := sf.equilibrate(3)
	tol := opt.tol()
	maxIters := opt.maxIters(sf.m, sf.n)

	m, n := sf.m, sf.n
	if m == 0 {
		// Unconstrained: minimum at x=0 unless some c_j < 0 (then unbounded).
		for _, cj := range sf.c[:p.nv] {
			if cj < -tol {
				return &Solution{Status: Unbounded}, nil
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, p.nv), Duals: []float64{}}, nil
	}

	// Tableau: m rows x (n + m artificials + 1 rhs).
	width := n + m + 1
	t := make([][]float64, m)
	for i := range t {
		t[i] = make([]float64, width)
	}
	for j := 0; j < n; j++ {
		rows, vals := sf.col(j)
		for k, r := range rows {
			t[r][j] = vals[k]
		}
	}
	for i := 0; i < m; i++ {
		t[i][n+i] = 1
		t[i][width-1] = sf.b[i]
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// Phase 1: minimize sum of artificials.
	d := make([]float64, n+m) // reduced costs
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += t[i][j]
		}
		d[j] = -s
	}
	obj := 0.0
	for i := 0; i < m; i++ {
		obj += t[i][width-1]
	}

	cost1 := func(j int) float64 {
		if j >= n {
			return 1
		}
		return 0
	}
	iters := 0
	status := densePivotLoop(t, d, basis, &obj, n, cost1, true, tol, maxIters, &iters)
	if status == IterationLimit {
		return &Solution{Status: IterationLimit, Iterations: iters}, nil
	}
	// Measure infeasibility from the tableau itself, not the incrementally
	// tracked objective (which drifts over long degenerate runs).
	infeas := 0.0
	for i := 0; i < m; i++ {
		if basis[i] >= n {
			infeas += t[i][width-1]
		}
	}
	if infeas > math.Sqrt(tol) {
		return &Solution{Status: Infeasible, Iterations: iters}, nil
	}
	// Drive out any remaining basic artificials (degenerate pivots). Use the
	// largest available pivot element for stability; rows with no usable
	// pivot are redundant and keep their zero-valued artificial.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		bestJ, bestA := -1, 1e-6
		for j := 0; j < n; j++ {
			if a := math.Abs(t[i][j]); a > bestA {
				bestA, bestJ = a, j
			}
		}
		if bestJ >= 0 {
			densePivot(t, d, basis, i, bestJ)
		}
	}

	// Phase 2: real objective. Reduced costs are recomputed from scratch
	// here and periodically inside the loop.
	cost := func(j int) float64 {
		if j < n {
			return sf.c[j]
		}
		return 0 // artificials carry zero cost and are barred from entering
	}
	refreshReducedCosts(t, d, basis, cost, &obj)
	status = densePivotLoop(t, d, basis, &obj, n, cost, false, tol, maxIters, &iters)
	switch status {
	case IterationLimit, Unbounded:
		return &Solution{Status: status, Iterations: iters}, nil
	}

	x := make([]float64, p.nv)
	for i := 0; i < m; i++ {
		if basis[i] < p.nv {
			v := t[i][width-1] * colScale[basis[i]]
			if v < 0 {
				v = 0
			}
			x[basis[i]] = v
		}
	}
	// Self-check: long degenerate runs can corrupt the tableau. Refuse to
	// report a corrupted point as optimal.
	if _, bad := p.CheckFeasible(x, 1e-6); bad > 0 {
		return &Solution{Status: NumericalFailure, Iterations: iters, Note: "final solution infeasible"}, nil
	}
	duals := make([]float64, m)
	for i := 0; i < m; i++ {
		y := -d[n+i] * rowScale[i]
		if flipped[i] {
			y = -y
		}
		duals[i] = y
	}
	return &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  p.Eval(x),
		Duals:      duals,
		Iterations: iters,
	}, nil
}

// refreshReducedCosts recomputes the reduced-cost row and objective from
// the tableau and the basis costs, resetting accumulated drift.
func refreshReducedCosts(t [][]float64, d []float64, basis []int, cost func(int) float64, obj *float64) {
	m := len(t)
	width := len(t[0])
	cB := make([]float64, m)
	for i := 0; i < m; i++ {
		cB[i] = cost(basis[i])
	}
	for j := 0; j < width-1; j++ {
		s := cost(j)
		for i := 0; i < m; i++ {
			if cB[i] != 0 {
				s -= cB[i] * t[i][j]
			}
		}
		d[j] = s
	}
	*obj = 0
	for i := 0; i < m; i++ {
		*obj += cB[i] * t[i][width-1]
	}
}

// densePivotLoop runs simplex pivots until optimality, unboundedness, or the
// iteration limit. phase1 bars nothing; otherwise artificial columns
// (indices >= n) may not enter. Uses Dantzig pricing with a Bland fallback
// after a run of degenerate pivots, and refreshes the reduced-cost row
// periodically to contain drift.
func densePivotLoop(t [][]float64, d []float64, basis []int, obj *float64, n int, cost func(int) float64, phase1 bool, tol float64, maxIters int, iters *int) Status {
	m := len(t)
	width := len(t[0])
	limit := n
	if phase1 {
		limit = n + m
	}
	degenRun := 0
	sinceRefresh := 0
	const stallLimit = 64
	for ; *iters < maxIters; *iters++ {
		if sinceRefresh++; sinceRefresh >= 128 {
			refreshReducedCosts(t, d, basis, cost, obj)
			sinceRefresh = 0
		}
		bland := degenRun >= stallLimit
		q := -1
		best := -tol
		for j := 0; j < limit; j++ {
			if d[j] < best {
				if bland {
					// Bland: first improving index.
					q = j
					break
				}
				best = d[j]
				q = j
			}
		}
		if q < 0 {
			return Optimal
		}
		// Harris-style two-pass ratio test: find the relaxed bound, then
		// among admissible rows pick the most stable pivot (largest
		// element) — or the smallest basis index in Bland mode.
		const feasTol = 1e-9
		const pivTol = 1e-9
		thetaMax := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t[i][q]
			if a <= pivTol {
				continue
			}
			xb := t[i][width-1]
			if xb < 0 {
				xb = 0
			}
			if th := (xb + feasTol) / a; th < thetaMax {
				thetaMax = th
			}
		}
		if math.IsInf(thetaMax, 1) {
			return Unbounded
		}
		r := -1
		bestA := 0.0
		for i := 0; i < m; i++ {
			a := t[i][q]
			if a <= pivTol {
				continue
			}
			xb := t[i][width-1]
			if xb < 0 {
				xb = 0
			}
			if xb/a > thetaMax {
				continue
			}
			if bland {
				if r < 0 || basis[i] < basis[r] {
					r, bestA = i, a
				}
			} else if a > bestA ||
				(a == bestA && r >= 0 && betterLeaving(basis, t, i, r, q, n)) {
				r, bestA = i, a
			}
		}
		if r < 0 {
			return Unbounded
		}
		theta := t[r][width-1] / t[r][q]
		if theta < 0 {
			theta = 0
		}
		if theta < tol {
			degenRun++
		} else {
			degenRun = 0
		}
		*obj += d[q] * theta
		densePivot(t, d, basis, r, q)
	}
	return IterationLimit
}

// betterLeaving breaks ratio-test ties: prefer kicking out artificials, then
// the larger pivot element for stability, then the smaller basis index
// (Bland-ish determinism).
func betterLeaving(basis []int, t [][]float64, i, r, q, n int) bool {
	ai, ar := basis[i] >= n, basis[r] >= n
	if ai != ar {
		return ai
	}
	pi, prv := math.Abs(t[i][q]), math.Abs(t[r][q])
	if pi != prv {
		return pi > prv
	}
	return basis[i] < basis[r]
}

// densePivot performs a Gauss-Jordan pivot at (r, q) and updates the reduced
// cost row.
func densePivot(t [][]float64, d []float64, basis []int, r, q int) {
	width := len(t[0])
	piv := t[r][q]
	inv := 1 / piv
	rowR := t[r]
	for j := 0; j < width; j++ {
		rowR[j] *= inv
	}
	rowR[q] = 1
	for i := range t {
		if i == r {
			continue
		}
		f := t[i][q]
		if f == 0 {
			continue
		}
		rowI := t[i]
		for j := 0; j < width; j++ {
			rowI[j] -= f * rowR[j]
		}
		rowI[q] = 0
	}
	f := d[q]
	if f != 0 {
		for j := 0; j < width-1; j++ {
			d[j] -= f * rowR[j]
		}
		d[q] = 0
	}
	basis[r] = q
}
