// Package lp is a from-scratch linear-programming toolkit — the substrate the
// paper obtains from Matlab's linprog (Sec. 6.1). It solves problems of the
// form
//
//	minimize    c·x
//	subject to  a_i·x  (<= | = | >=)  b_i     for each constraint i
//	            x >= 0
//
// Two solvers are provided:
//
//   - SolveDense: a textbook two-phase primal simplex on a dense tableau.
//     Simple, exhaustively tested, used as the correctness oracle and for
//     small subproblems.
//   - Solve: a sparse revised simplex using the product form of the inverse
//     (PFI): CSC column storage, eta-file FTRAN/BTRAN, periodic reinversion
//     with singleton-first ordering, partial pricing, optional RHS
//     perturbation to defeat the massive primal degeneracy of CORGI's
//     Geo-Ind constraint systems (every inequality has b = 0).
//
// The CORGI LPs are huge but extremely sparse — each Geo-Ind row has two
// structural nonzeros — which is exactly the regime PFI handles well.
package lp

import (
	"fmt"
	"math"
)

// Sense is the direction of a linear constraint.
type Sense int8

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// row is one sparse constraint.
type row struct {
	sense Sense
	b     float64
	idx   []int32
	val   []float64
}

// Problem is a linear program under construction. All variables are
// implicitly bounded below by zero and unbounded above.
type Problem struct {
	nv   int
	c    []float64
	rows []row
}

// NewProblem creates a problem with numVars non-negative variables and an
// all-zero objective.
func NewProblem(numVars int) *Problem {
	if numVars < 1 {
		panic("lp: problem needs at least one variable")
	}
	return &Problem{nv: numVars, c: make([]float64, numVars)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.nv }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjective sets the (minimization) objective coefficients. The slice is
// copied. len(c) must equal NumVars.
func (p *Problem) SetObjective(c []float64) error {
	if len(c) != p.nv {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(c), p.nv)
	}
	for i, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: objective coefficient %d is %v", i, v)
		}
	}
	copy(p.c, c)
	return nil
}

// SetObjectiveCoeff sets a single objective coefficient.
func (p *Problem) SetObjectiveCoeff(j int, v float64) error {
	if j < 0 || j >= p.nv {
		return fmt.Errorf("lp: variable %d out of range [0,%d)", j, p.nv)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("lp: objective coefficient is %v", v)
	}
	p.c[j] = v
	return nil
}

// AddConstraint appends the constraint sum(val[k]*x[idx[k]]) sense b.
// Duplicate indices within one constraint are rejected.
func (p *Problem) AddConstraint(sense Sense, b float64, idx []int, val []float64) error {
	if len(idx) != len(val) {
		return fmt.Errorf("lp: %d indices but %d values", len(idx), len(val))
	}
	if len(idx) == 0 {
		return fmt.Errorf("lp: empty constraint")
	}
	if math.IsNaN(b) || math.IsInf(b, 0) {
		return fmt.Errorf("lp: rhs is %v", b)
	}
	if sense != LE && sense != GE && sense != EQ {
		return fmt.Errorf("lp: invalid sense %d", sense)
	}
	r := row{sense: sense, b: b, idx: make([]int32, 0, len(idx)), val: make([]float64, 0, len(val))}
	seen := make(map[int]bool, len(idx))
	for k, j := range idx {
		if j < 0 || j >= p.nv {
			return fmt.Errorf("lp: variable %d out of range [0,%d)", j, p.nv)
		}
		if seen[j] {
			return fmt.Errorf("lp: duplicate variable %d in constraint", j)
		}
		seen[j] = true
		if math.IsNaN(val[k]) || math.IsInf(val[k], 0) {
			return fmt.Errorf("lp: coefficient for variable %d is %v", j, val[k])
		}
		if val[k] == 0 {
			continue
		}
		r.idx = append(r.idx, int32(j))
		r.val = append(r.val, val[k])
	}
	p.rows = append(p.rows, r)
	return nil
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
	NumericalFailure
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	case NumericalFailure:
		return "numerical-failure"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64 // primal values, length NumVars (valid when Optimal)
	Objective  float64   // c·X
	Duals      []float64 // one per constraint (valid when Optimal)
	Iterations int       // total simplex pivots across phases
	Note       string    // diagnostic detail for non-optimal statuses
	// Basis is the optimal basis in Options.WarmBasis encoding (valid when
	// Optimal and the sparse solver ran): one entry per constraint row —
	// a standard-form column index (structurals first, then slacks) when
	// >= 0, or -(i+1) for row i's artificial. Feed it to a related solve's
	// WarmBasis to skip phase 1 and most of phase 2.
	Basis []int
	// Warm reports whether a caller-supplied WarmBasis was accepted as the
	// starting point of this solve.
	Warm bool
}

// Options tunes the solvers. The zero value asks for defaults.
type Options struct {
	// MaxIters bounds total simplex pivots. Default: 50*(m+n)+10000.
	MaxIters int
	// Tol is the feasibility/optimality tolerance. Default 1e-9.
	Tol float64
	// Perturb enables random RHS perturbation to break degeneracy in the
	// sparse solver (recommended for highly degenerate systems). After the
	// perturbed solve the true RHS is restored and the solve is finished
	// exactly from the same basis.
	Perturb bool
	// Seed drives the perturbation. Zero means a fixed default seed so runs
	// are reproducible.
	Seed int64
	// WarmBasis seeds the sparse solver with a starting basis, typically a
	// prior related solve's Solution.Basis. One entry per constraint row:
	// >= 0 names a standard-form column (structural variables first, then
	// slacks in row order), -(i+1) names row i's artificial. The basis is
	// installed only if it factors cleanly and is primal feasible for the
	// current RHS; otherwise the solver silently falls back to the standard
	// crash basis. An accepted warm basis with no artificials skips phase 1
	// entirely.
	WarmBasis []int
}

func (o *Options) tol() float64 {
	if o == nil || o.Tol <= 0 {
		return 1e-9
	}
	return o.Tol
}

func (o *Options) maxIters(m, n int) int {
	if o == nil || o.MaxIters <= 0 {
		return 50*(m+n) + 10000
	}
	return o.MaxIters
}

func (o *Options) perturb() bool { return o != nil && o.Perturb }

func (o *Options) seed() int64 {
	if o == nil || o.Seed == 0 {
		return 0x5f3759df
	}
	return o.Seed
}

func (o *Options) warmBasis() []int {
	if o == nil {
		return nil
	}
	return o.WarmBasis
}

// Eval returns c·x for this problem's objective.
func (p *Problem) Eval(x []float64) float64 {
	obj := 0.0
	for j, v := range p.c {
		obj += v * x[j]
	}
	return obj
}

// CheckFeasible verifies x against every constraint and the non-negativity
// bounds, returning the worst absolute violation found (0 when feasible
// within tol).
func (p *Problem) CheckFeasible(x []float64, tol float64) (maxViolation float64, violated int) {
	if len(x) != p.nv {
		return math.Inf(1), p.nv
	}
	check := func(v float64) {
		if v > tol {
			violated++
			if v > maxViolation {
				maxViolation = v
			}
		}
	}
	for _, xi := range x {
		check(-xi)
	}
	for _, r := range p.rows {
		ax := 0.0
		for k, j := range r.idx {
			ax += r.val[k] * x[j]
		}
		switch r.sense {
		case LE:
			check(ax - r.b)
		case GE:
			check(r.b - ax)
		case EQ:
			check(math.Abs(ax - r.b))
		}
	}
	return maxViolation, violated
}

// standardForm is min c·x s.t. Ax = b, x >= 0 with b >= 0, produced by
// adding slack/surplus variables and flipping negative-RHS rows. Columns
// 0..nv-1 are the structural variables; slack columns follow.
type standardForm struct {
	m, n int // n includes slacks, excludes artificials
	nv   int // structural variable count (columns [0,nv) are structural)
	// CSC structural+slack matrix.
	colPtr []int32
	rowIdx []int32
	vals   []float64
	c      []float64 // length n
	b      []float64 // length m, >= 0
	// slackOf[i] is the column index of row i's slack, or -1 (EQ rows).
	// slackSign[i] is +1 (row had <=) or -1 (>=) after RHS normalization.
	slackOf   []int32
	slackSign []int8
}

// toStandard converts the problem. Rows keep their original order so duals
// map back one-to-one (dual sign accounts for row flips via flipped[]).
func (p *Problem) toStandard() (*standardForm, []bool) {
	m := len(p.rows)
	flipped := make([]bool, m)
	nSlack := 0
	for _, r := range p.rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	n := p.nv + nSlack
	sf := &standardForm{
		m: m, n: n, nv: p.nv,
		c:         make([]float64, n),
		b:         make([]float64, m),
		slackOf:   make([]int32, m),
		slackSign: make([]int8, m),
	}
	copy(sf.c, p.c)

	// Count structural column nonzeros.
	counts := make([]int32, n+1)
	for _, r := range p.rows {
		for _, j := range r.idx {
			counts[j+1]++
		}
	}
	slackCol := p.nv
	for i, r := range p.rows {
		sf.slackOf[i] = -1
		if r.sense != EQ {
			sf.slackOf[i] = int32(slackCol)
			counts[slackCol+1]++
			slackCol++
		}
	}
	for j := 0; j < n; j++ {
		counts[j+1] += counts[j]
	}
	sf.colPtr = counts
	nnz := counts[n]
	sf.rowIdx = make([]int32, nnz)
	sf.vals = make([]float64, nnz)

	next := make([]int32, n)
	copy(next, counts[:n])
	slackCol = p.nv
	for i, r := range p.rows {
		sign := 1.0
		sense := r.sense
		b := r.b
		if b < 0 {
			sign = -1
			b = -b
			flipped[i] = true
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		sf.b[i] = b
		for k, j := range r.idx {
			pos := next[j]
			sf.rowIdx[pos] = int32(i)
			sf.vals[pos] = sign * r.val[k]
			next[j]++
		}
		if r.sense != EQ {
			var sval float64
			switch sense {
			case LE:
				sval = 1
				sf.slackSign[i] = 1
			case GE:
				sval = -1
				sf.slackSign[i] = -1
			}
			pos := next[slackCol]
			sf.rowIdx[pos] = int32(i)
			sf.vals[pos] = sval
			next[slackCol]++
			slackCol++
		}
	}
	return sf, flipped
}

// col returns the sparse column j of the standard-form matrix.
func (sf *standardForm) col(j int) (rows []int32, vals []float64) {
	lo, hi := sf.colPtr[j], sf.colPtr[j+1]
	return sf.rowIdx[lo:hi], sf.vals[lo:hi]
}

// equilibrate rescales the standard form by iterative geometric-mean
// row/column scaling and returns the applied scales. CORGI's Geo-Ind rows
// mix coefficients 1 and e^{eps*d} (up to ~1e6); without equilibration the
// simplex factorizations overflow their useful precision. After solving the
// scaled problem, recover the original solution as
//
//	x[j] = colScale[j] * xScaled[j],   y[i] = rowScale[i] * yScaled[i].
//
// b and c are scaled in place alongside the matrix.
func (sf *standardForm) equilibrate(iters int) (rowScale, colScale []float64) {
	rowScale = make([]float64, sf.m)
	colScale = make([]float64, sf.n)
	for i := range rowScale {
		rowScale[i] = 1
	}
	for j := range colScale {
		colScale[j] = 1
	}
	rowMax := make([]float64, sf.m)
	rowMin := make([]float64, sf.m)
	for pass := 0; pass < iters; pass++ {
		// Column pass.
		for j := 0; j < sf.n; j++ {
			lo, hi := sf.colPtr[j], sf.colPtr[j+1]
			if lo == hi {
				continue
			}
			mx, mn := 0.0, math.Inf(1)
			for k := lo; k < hi; k++ {
				a := math.Abs(sf.vals[k]) * rowScale[sf.rowIdx[k]] * colScale[j]
				if a == 0 {
					continue
				}
				if a > mx {
					mx = a
				}
				if a < mn {
					mn = a
				}
			}
			if mx > 0 {
				colScale[j] /= math.Sqrt(mx * mn)
			}
		}
		// Row pass.
		for i := range rowMax {
			rowMax[i], rowMin[i] = 0, math.Inf(1)
		}
		for j := 0; j < sf.n; j++ {
			lo, hi := sf.colPtr[j], sf.colPtr[j+1]
			for k := lo; k < hi; k++ {
				i := sf.rowIdx[k]
				a := math.Abs(sf.vals[k]) * rowScale[i] * colScale[j]
				if a == 0 {
					continue
				}
				if a > rowMax[i] {
					rowMax[i] = a
				}
				if a < rowMin[i] {
					rowMin[i] = a
				}
			}
		}
		for i := 0; i < sf.m; i++ {
			if rowMax[i] > 0 {
				rowScale[i] /= math.Sqrt(rowMax[i] * rowMin[i])
			}
		}
	}
	// Apply to the matrix, RHS, and objective.
	for j := 0; j < sf.n; j++ {
		lo, hi := sf.colPtr[j], sf.colPtr[j+1]
		for k := lo; k < hi; k++ {
			sf.vals[k] *= rowScale[sf.rowIdx[k]] * colScale[j]
		}
		sf.c[j] *= colScale[j]
	}
	for i := 0; i < sf.m; i++ {
		sf.b[i] *= rowScale[i]
	}
	return rowScale, colScale
}
