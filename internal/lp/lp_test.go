package lp

import (
	"math"
	"math/rand"
	"testing"
)

// solveBoth runs both solvers and checks they agree on status and (when
// optimal) objective value; it returns the sparse solution.
func solveBoth(t *testing.T, p *Problem, opt *Options) *Solution {
	t.Helper()
	d, err := SolveDense(p, opt)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	s, err := Solve(p, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if d.Status != s.Status {
		t.Fatalf("status mismatch: dense=%v sparse=%v", d.Status, s.Status)
	}
	if d.Status == Optimal {
		if math.Abs(d.Objective-s.Objective) > 1e-6*(1+math.Abs(d.Objective)) {
			t.Fatalf("objective mismatch: dense=%v sparse=%v", d.Objective, s.Objective)
		}
		for _, sol := range []*Solution{d, s} {
			if v, n := p.CheckFeasible(sol.X, 1e-6); n > 0 {
				t.Fatalf("solution infeasible: %d violations, worst %v", n, v)
			}
		}
	}
	return s
}

func TestProblemValidation(t *testing.T) {
	p := NewProblem(3)
	if p.NumVars() != 3 {
		t.Errorf("NumVars = %d", p.NumVars())
	}
	if err := p.SetObjective([]float64{1, 2}); err == nil {
		t.Error("short objective must fail")
	}
	if err := p.SetObjective([]float64{1, math.NaN(), 3}); err == nil {
		t.Error("NaN objective must fail")
	}
	if err := p.SetObjectiveCoeff(5, 1); err == nil {
		t.Error("out-of-range coeff must fail")
	}
	if err := p.SetObjectiveCoeff(0, math.Inf(1)); err == nil {
		t.Error("inf coeff must fail")
	}
	if err := p.AddConstraint(LE, 1, []int{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
	if err := p.AddConstraint(LE, 1, nil, nil); err == nil {
		t.Error("empty constraint must fail")
	}
	if err := p.AddConstraint(LE, math.NaN(), []int{0}, []float64{1}); err == nil {
		t.Error("NaN rhs must fail")
	}
	if err := p.AddConstraint(LE, 1, []int{0, 0}, []float64{1, 1}); err == nil {
		t.Error("duplicate index must fail")
	}
	if err := p.AddConstraint(LE, 1, []int{7}, []float64{1}); err == nil {
		t.Error("out-of-range index must fail")
	}
	if err := p.AddConstraint(Sense(9), 1, []int{0}, []float64{1}); err == nil {
		t.Error("bad sense must fail")
	}
	if err := p.AddConstraint(LE, 1, []int{0}, []float64{math.Inf(1)}); err == nil {
		t.Error("inf coefficient must fail")
	}
	if err := p.AddConstraint(LE, 1, []int{0, 1}, []float64{1, 1}); err != nil {
		t.Errorf("valid constraint failed: %v", err)
	}
	if p.NumConstraints() != 1 {
		t.Errorf("NumConstraints = %d", p.NumConstraints())
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("sense strings wrong")
	}
	if Sense(9).String() == "" {
		t.Error("unknown sense should still print")
	}
	for _, st := range []Status{Optimal, Infeasible, Unbounded, IterationLimit, NumericalFailure, Status(99)} {
		if st.String() == "" {
			t.Errorf("status %d has empty string", st)
		}
	}
}

// Classic textbook LP: max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 => (2,6), obj 36.
func TestTextbookMax(t *testing.T) {
	p := NewProblem(2)
	mustObj(t, p, []float64{-3, -5})
	mustCon(t, p, LE, 4, []int{0}, []float64{1})
	mustCon(t, p, LE, 12, []int{1}, []float64{2})
	mustCon(t, p, LE, 18, []int{0, 1}, []float64{3, 2})
	s := solveBoth(t, p, nil)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	wantX := []float64{2, 6}
	for i := range wantX {
		if math.Abs(s.X[i]-wantX[i]) > 1e-7 {
			t.Errorf("x[%d] = %v, want %v", i, s.X[i], wantX[i])
		}
	}
	if math.Abs(s.Objective+36) > 1e-7 {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
}

// Equality + GE constraints: min x+y s.t. x+y=10, x>=3, y>=2 => obj 10.
func TestEqualityAndGE(t *testing.T) {
	p := NewProblem(2)
	mustObj(t, p, []float64{1, 1})
	mustCon(t, p, EQ, 10, []int{0, 1}, []float64{1, 1})
	mustCon(t, p, GE, 3, []int{0}, []float64{1})
	mustCon(t, p, GE, 2, []int{1}, []float64{1})
	s := solveBoth(t, p, nil)
	if s.Status != Optimal || math.Abs(s.Objective-10) > 1e-7 {
		t.Fatalf("got %v obj %v", s.Status, s.Objective)
	}
	if math.Abs(s.X[0]+s.X[1]-10) > 1e-7 {
		t.Errorf("x sums to %v", s.X[0]+s.X[1])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	mustCon(t, p, GE, 5, []int{0}, []float64{1})
	mustCon(t, p, LE, 3, []int{0}, []float64{1})
	s := solveBoth(t, p, nil)
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	p := NewProblem(2)
	mustCon(t, p, EQ, 1, []int{0, 1}, []float64{1, 1})
	mustCon(t, p, EQ, 3, []int{0, 1}, []float64{1, 1})
	s := solveBoth(t, p, nil)
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	mustObj(t, p, []float64{-1, 0})
	mustCon(t, p, GE, 1, []int{0}, []float64{1})
	s := solveBoth(t, p, nil)
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestUnconstrained(t *testing.T) {
	p := NewProblem(2)
	mustObj(t, p, []float64{1, 2})
	s := solveBoth(t, p, nil)
	if s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("got %v obj %v, want optimal 0 at origin", s.Status, s.Objective)
	}
	p2 := NewProblem(1)
	mustObj(t, p2, []float64{-1})
	s2 := solveBoth(t, p2, nil)
	if s2.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s2.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -5  <=>  x >= 5; minimize x => 5.
	p := NewProblem(1)
	mustObj(t, p, []float64{1})
	mustCon(t, p, LE, -5, []int{0}, []float64{-1})
	s := solveBoth(t, p, nil)
	if s.Status != Optimal || math.Abs(s.X[0]-5) > 1e-7 {
		t.Fatalf("got %v x=%v", s.Status, s.X)
	}
	// Also GE with negative rhs: -x >= -4 <=> x <= 4; maximize x.
	p2 := NewProblem(1)
	mustObj(t, p2, []float64{-1})
	mustCon(t, p2, GE, -4, []int{0}, []float64{-1})
	s2 := solveBoth(t, p2, nil)
	if s2.Status != Optimal || math.Abs(s2.X[0]-4) > 1e-7 {
		t.Fatalf("got %v x=%v", s2.Status, s2.X)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Highly degenerate: many redundant constraints through the optimum.
	p := NewProblem(2)
	mustObj(t, p, []float64{-1, -1})
	for i := 1; i <= 8; i++ {
		mustCon(t, p, LE, 2, []int{0, 1}, []float64{1, 1})
	}
	mustCon(t, p, LE, 1, []int{0}, []float64{1})
	s := solveBoth(t, p, nil)
	if s.Status != Optimal || math.Abs(s.Objective+2) > 1e-7 {
		t.Fatalf("got %v obj %v, want -2", s.Status, s.Objective)
	}
}

func TestZeroRHSDegenerate(t *testing.T) {
	// All-zero RHS inequalities (the CORGI regime): x <= 2y, y <= 2x,
	// x + y = 1, minimize x. Optimum x = 1/3 (x = 2y binding... check:
	// min x s.t. x>=y/2 i.e. y<=2x -> x >= 1/3).
	p := NewProblem(2)
	mustObj(t, p, []float64{1, 0})
	mustCon(t, p, LE, 0, []int{0, 1}, []float64{1, -2})
	mustCon(t, p, LE, 0, []int{1, 0}, []float64{1, -2})
	mustCon(t, p, EQ, 1, []int{0, 1}, []float64{1, 1})
	for _, perturb := range []bool{false, true} {
		s := solveBoth(t, p, &Options{Perturb: perturb})
		if s.Status != Optimal || math.Abs(s.X[0]-1.0/3) > 1e-6 {
			t.Fatalf("perturb=%v: got %v x=%v, want x0=1/3", perturb, s.Status, s.X)
		}
	}
}

func TestDualsStrongDuality(t *testing.T) {
	// Strong duality: c·x* == b·y* for both solvers.
	p := NewProblem(3)
	mustObj(t, p, []float64{2, 3, 4})
	mustCon(t, p, GE, 6, []int{0, 1, 2}, []float64{1, 2, 1})
	mustCon(t, p, GE, 8, []int{0, 1, 2}, []float64{2, 1, 3})
	mustCon(t, p, EQ, 5, []int{0, 1, 2}, []float64{1, 1, 1})
	for name, solver := range map[string]func(*Problem, *Options) (*Solution, error){
		"dense": SolveDense, "sparse": Solve,
	} {
		s, err := solver(p, nil)
		if err != nil || s.Status != Optimal {
			t.Fatalf("%s: %v %v", name, err, s.Status)
		}
		b := []float64{6, 8, 5}
		by := 0.0
		for i, y := range s.Duals {
			by += b[i] * y
		}
		if math.Abs(by-s.Objective) > 1e-6 {
			t.Errorf("%s: duality gap: b·y = %v, c·x = %v", name, by, s.Objective)
		}
		// Dual sign conventions: y >= 0 for GE rows in a min problem.
		for i := 0; i < 2; i++ {
			if s.Duals[i] < -1e-7 {
				t.Errorf("%s: GE dual %d = %v, want >= 0", name, i, s.Duals[i])
			}
		}
	}
}

func TestEvalAndCheckFeasible(t *testing.T) {
	p := NewProblem(2)
	mustObj(t, p, []float64{1, 2})
	mustCon(t, p, LE, 4, []int{0, 1}, []float64{1, 1})
	mustCon(t, p, GE, 1, []int{0}, []float64{1})
	mustCon(t, p, EQ, 2, []int{1}, []float64{1})
	if got := p.Eval([]float64{1, 2}); got != 5 {
		t.Errorf("Eval = %v", got)
	}
	if v, n := p.CheckFeasible([]float64{1, 2}, 1e-9); n != 0 || v != 0 {
		t.Errorf("feasible point flagged: %v %d", v, n)
	}
	if _, n := p.CheckFeasible([]float64{0, 2}, 1e-9); n != 1 {
		t.Errorf("x0<1 should violate exactly the GE row, got %d", n)
	}
	if _, n := p.CheckFeasible([]float64{-1, 2}, 1e-9); n != 2 {
		t.Errorf("negative x should add a bound violation, got %d", n)
	}
	if v, _ := p.CheckFeasible([]float64{1}, 1e-9); !math.IsInf(v, 1) {
		t.Errorf("wrong-length x should be Inf, got %v", v)
	}
}

// TestRandomLPsAgainstDense cross-checks the sparse solver against the dense
// oracle on random LPs that are feasible by construction.
func TestRandomLPsAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		nv := 2 + rng.Intn(8)
		m := 1 + rng.Intn(10)
		p := NewProblem(nv)
		c := make([]float64, nv)
		for j := range c {
			c[j] = math.Round((rng.Float64()*4-1)*8) / 8
		}
		mustObj(t, p, c)
		// A known interior point keeps most problems feasible.
		x0 := make([]float64, nv)
		for j := range x0 {
			x0[j] = rng.Float64() * 3
		}
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(nv)
			idx := rng.Perm(nv)[:k]
			val := make([]float64, k)
			ax := 0.0
			for t2 := range val {
				val[t2] = math.Round((rng.Float64()*4-2)*8) / 8
				ax += val[t2] * x0[idx[t2]]
			}
			switch rng.Intn(3) {
			case 0:
				mustCon(t, p, LE, ax+rng.Float64(), idx, val)
			case 1:
				mustCon(t, p, GE, ax-rng.Float64(), idx, val)
			default:
				mustCon(t, p, EQ, ax, idx, val)
			}
		}
		// Bound the feasible region so unboundedness is rare but allowed.
		if rng.Intn(2) == 0 {
			all := make([]int, nv)
			ones := make([]float64, nv)
			tot := 0.0
			for j := range all {
				all[j] = j
				ones[j] = 1
				tot += x0[j]
			}
			mustCon(t, p, LE, tot+1, all, ones)
		}
		solveBoth(t, p, &Options{Seed: int64(trial + 1)})
	}
}

// TestRandomDegenerateLPs stresses the zero-RHS regime with perturbation.
func TestRandomDegenerateLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nv := 3 + rng.Intn(6)
		p := NewProblem(nv)
		c := make([]float64, nv)
		for j := range c {
			c[j] = rng.Float64()
		}
		mustObj(t, p, c)
		// Random ratio constraints x_i <= alpha x_j (all rhs 0).
		for i := 0; i < nv*2; i++ {
			a, b := rng.Intn(nv), rng.Intn(nv)
			if a == b {
				continue
			}
			alpha := 1 + rng.Float64()*3
			mustCon(t, p, LE, 0, []int{a, b}, []float64{1, -alpha})
		}
		all := make([]int, nv)
		ones := make([]float64, nv)
		for j := range all {
			all[j], ones[j] = j, 1
		}
		mustCon(t, p, EQ, 1, all, ones)
		solveBoth(t, p, &Options{Perturb: true, Seed: int64(trial + 1)})
	}
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(4)
	mustObj(t, p, []float64{-1, -1, -1, -1})
	for i := 0; i < 4; i++ {
		mustCon(t, p, LE, 1, []int{i}, []float64{1})
	}
	s, err := Solve(p, &Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != IterationLimit {
		t.Fatalf("status %v, want iteration-limit", s.Status)
	}
}

func TestSolutionScalesWithSize(t *testing.T) {
	// Transportation-style LP, moderately sized, checked for feasibility
	// and against the dense oracle.
	for _, n := range []int{5, 9} {
		p := NewProblem(n * n)
		c := make([]float64, n*n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range c {
			c[i] = rng.Float64() * 10
		}
		mustObj(t, p, c)
		for i := 0; i < n; i++ { // supply rows
			idx := make([]int, n)
			val := make([]float64, n)
			for j := 0; j < n; j++ {
				idx[j], val[j] = i*n+j, 1
			}
			mustCon(t, p, EQ, 1, idx, val)
		}
		for j := 0; j < n; j++ { // demand columns
			idx := make([]int, n)
			val := make([]float64, n)
			for i := 0; i < n; i++ {
				idx[i], val[i] = i*n+j, 1
			}
			mustCon(t, p, EQ, 1, idx, val)
		}
		solveBoth(t, p, nil)
	}
}

func mustObj(t *testing.T, p *Problem, c []float64) {
	t.Helper()
	if err := p.SetObjective(c); err != nil {
		t.Fatalf("SetObjective: %v", err)
	}
}

func mustCon(t *testing.T, p *Problem, s Sense, b float64, idx []int, val []float64) {
	t.Helper()
	if err := p.AddConstraint(s, b, idx, val); err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
}
