package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomFeasibleLP builds a bounded-feasible random LP in the shape CORGI's
// solves take: a few EQ rows with b=1 plus many sparse LE rows with b=0 and
// mixed-magnitude coefficients.
func randomFeasibleLP(t *testing.T, nv int, rng *rand.Rand) *Problem {
	t.Helper()
	p := NewProblem(nv)
	c := make([]float64, nv)
	for j := range c {
		c[j] = 0.1 + rng.Float64()
	}
	if err := p.SetObjective(c); err != nil {
		t.Fatal(err)
	}
	// A couple of EQ "mass" rows partitioning the variables.
	half := nv / 2
	idx := make([]int, 0, nv)
	val := make([]float64, 0, nv)
	for j := 0; j < half; j++ {
		idx = append(idx, j)
		val = append(val, 1)
	}
	if err := p.AddConstraint(EQ, 1, idx, val); err != nil {
		t.Fatal(err)
	}
	idx, val = idx[:0], val[:0]
	for j := half; j < nv; j++ {
		idx = append(idx, j)
		val = append(val, 1)
	}
	if err := p.AddConstraint(EQ, 1, idx, val); err != nil {
		t.Fatal(err)
	}
	// Sparse two-variable LE rows, b=0, Geo-Ind style x_a <= mult * x_b.
	for i := 0; i < 3*nv; i++ {
		a, b := rng.Intn(nv), rng.Intn(nv)
		if a == b {
			continue
		}
		mult := math.Exp(3 * rng.Float64())
		if err := p.AddConstraint(LE, 0, []int{a, b}, []float64{1, -mult}); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestWarmBasisResolveSameProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomFeasibleLP(t, 40, rng)
	opt := &Options{Perturb: true}
	cold, err := Solve(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal {
		t.Fatalf("cold solve: %v (%s)", cold.Status, cold.Note)
	}
	if len(cold.Basis) != p.NumConstraints() {
		t.Fatalf("Basis has %d entries, want %d", len(cold.Basis), p.NumConstraints())
	}
	warm, err := Solve(p, &Options{Perturb: true, WarmBasis: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm solve: %v (%s)", warm.Status, warm.Note)
	}
	if !warm.Warm {
		t.Fatal("warm basis for the identical problem must be accepted")
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Fatalf("objective drifted: cold=%v warm=%v", cold.Objective, warm.Objective)
	}
	if warm.Iterations > cold.Iterations/2 {
		t.Errorf("warm restart took %d pivots vs %d cold — expected a large cut", warm.Iterations, cold.Iterations)
	}
}

func TestWarmBasisSurvivesObjectiveChange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomFeasibleLP(t, 30, rng)
	cold, err := Solve(p, &Options{Perturb: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal {
		t.Fatalf("cold solve: %v (%s)", cold.Status, cold.Note)
	}
	// Nudge the objective: the old basis stays primal feasible, so the warm
	// start must be accepted and re-optimization must land on the true
	// optimum for the new costs.
	for j := 0; j < p.NumVars(); j++ {
		if err := p.SetObjectiveCoeff(j, 0.1+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := Solve(p, &Options{Perturb: true, WarmBasis: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm solve: %v (%s)", warm.Status, warm.Note)
	}
	if !warm.Warm {
		t.Fatal("feasible warm basis must be accepted after an objective change")
	}
	ref, err := Solve(p, &Options{Perturb: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Objective-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
		t.Fatalf("warm optimum %v differs from cold optimum %v", warm.Objective, ref.Objective)
	}
}

func TestWarmBasisRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomFeasibleLP(t, 20, rng)
	m := p.NumConstraints()
	dup := make([]int, m)
	for i := range dup {
		dup[i] = 0 // duplicate column everywhere
	}
	short := []int{0, 1}
	outOfRange := make([]int, m)
	for i := range outOfRange {
		outOfRange[i] = 1 << 30
	}
	badArt := make([]int, m)
	for i := range badArt {
		badArt[i] = -(m + 5) // artificial row index out of range
	}
	for name, wb := range map[string][]int{
		"duplicate": dup, "short": short, "out-of-range": outOfRange, "bad-artificial": badArt,
	} {
		sol, err := Solve(p, &Options{Perturb: true, WarmBasis: wb})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Status != Optimal {
			t.Errorf("%s: status %v (%s), want optimal via crash fallback", name, sol.Status, sol.Note)
		}
		if sol.Warm {
			t.Errorf("%s: invalid warm basis reported as accepted", name)
		}
	}
}

func TestWarmBasisRoundTripEncoding(t *testing.T) {
	// A problem whose optimum keeps an EQ row degenerate can retain an
	// artificial in the final basis; the encoding must round-trip it.
	rng := rand.New(rand.NewSource(17))
	p := randomFeasibleLP(t, 24, rng)
	sol, err := Solve(p, &Options{Perturb: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("solve: %v (%s)", sol.Status, sol.Note)
	}
	m := p.NumConstraints()
	for i, w := range sol.Basis {
		if w < 0 && -w-1 >= m {
			t.Errorf("entry %d: artificial row %d out of range [0,%d)", i, -w-1, m)
		}
	}
	again, err := Solve(p, &Options{Perturb: true, WarmBasis: sol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != Optimal || !again.Warm {
		t.Fatalf("round-trip warm solve: status=%v warm=%v", again.Status, again.Warm)
	}
}
