package registry

// This file pins the serving limits every transport shares. The HTTP
// handlers (internal/proto), the binary stream transport (internal/stream),
// and the lease pipeline all cap request fan-out against the SAME numbers:
// a draw count the /v1/reports endpoint would refuse is refused identically
// as a REPORTS frame item and as a lease draw cap. The constants live here
// — below both transports in the import graph (proto and stream each
// import registry; neither may import the other) — so a deployment that
// raises one limit raises it everywhere at once.

// DefaultMaxReportCount caps the draws one report request (or one lease)
// may ask for. Every transport enforces it: HTTP /v1/report(+s), stream
// REPORT/REPORTS frames, and the /v1/lease + LEASE draw cap.
const DefaultMaxReportCount = 1000

// DefaultMaxBatch caps the item count of one batch request, shared by
// HTTP /v1/reports and stream REPORTS frames.
const DefaultMaxBatch = 64
