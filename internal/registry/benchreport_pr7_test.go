package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
)

// benchPR7Report is the BENCH_pr7.json shape consumed by CI: the cold-path
// profile after degraded serving and warm-started parallel solves.
type benchPR7Report struct {
	// FallbackFirstReportP50Ms / MaxMs: latency of the FIRST report into a
	// fully cold (level, delta) forest key on a -degraded-serving shard —
	// served from the planar-Laplace fallback while the LP solves in the
	// background. Acceptance: p50 < 50 ms.
	FallbackFirstReportP50Ms float64 `json:"fallback_first_report_p50_ms"`
	FallbackFirstReportMaxMs float64 `json:"fallback_first_report_max_ms"`
	// ColdAssembly*Ms: wall time to assemble one cold privacy forest —
	// sequential workers with warm starts disabled (the pre-PR7 path)
	// vs parallel workers with simplex warm starts (the PR7 path).
	// Acceptance: SpeedupX >= 2.
	ColdAssemblySeqNoWarmMs float64 `json:"cold_assembly_seq_nowarm_ms"`
	ColdAssemblyParWarmMs   float64 `json:"cold_assembly_par_warm_ms"`
	AssemblySpeedupX        float64 `json:"assembly_speedup_x"`
	// WarmAttempts/WarmAccepts: how many solves in the warm assembly tried
	// to install a carried simplex basis, and how many installed cleanly.
	WarmAttempts uint64 `json:"warm_attempts"`
	WarmAccepts  uint64 `json:"warm_accepts"`
	// Workers is the parallel run's solve concurrency (GOMAXPROCS).
	Workers int `json:"workers"`
}

// pr7AssemblyServer builds a core server over a height-3 tree (343 leaves;
// the level-2 forest has 7 subtrees of 49 leaves each) with the given
// worker count and warm-start setting, mirroring how registry shards
// configure their engines.
func pr7AssemblyServer(t *testing.T, workers int, noWarm bool) *core.Server {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := loctree.NewAt(sys, geo.SanFrancisco.Center(), 3)
	if err != nil {
		t.Fatal(err)
	}
	priors := loctree.UniformPriors(tree)
	leaves := tree.LevelNodes(0)
	targets := []geo.LatLng{tree.Center(leaves[0]), tree.Center(leaves[170]), tree.Center(leaves[340])}
	srv, err := core.NewServerWithOptions(tree, priors, targets, []float64{1, 1, 1}, core.Params{
		Epsilon: 15, Iterations: 5, UseGraphApprox: true, NoWarmStart: noWarm,
	}, core.EngineOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestBenchReportPR7 writes BENCH_pr7.json for the CI benchmark artifact
// and enforces PR7's two acceptance gates: fallback first-report p50 under
// 50 ms, and warm-started parallel cold-forest assembly at least 2x faster
// than the sequential no-warm-start baseline. Skipped unless BENCH_PR7_OUT
// names the output path, so regular test runs stay fast.
func TestBenchReportPR7(t *testing.T) {
	out := os.Getenv("BENCH_PR7_OUT")
	if out == "" {
		t.Skip("set BENCH_PR7_OUT=path to generate the benchmark report")
	}
	ctx := context.Background()

	// Gate 1: first report into a cold forest key, served degraded. Each
	// sample is a fresh registry (shard bootstrapped up front so the
	// sample times the report path, not tree construction) reporting at
	// privacy level 2 — the whole-region 49-leaf subtree whose LP solve
	// is the expensive one the fallback hides. Upgrades drain between
	// samples so background solves never contend with the next sample.
	const coldSamples = 7
	var firstMs []float64
	for i := 0; i < coldSamples; i++ {
		reg, err := New(fastSpecs("bench-cold"), Options{
			Engine:      core.EngineOptions{DegradedServing: true},
			WarmupDelta: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sh, err := reg.Shard(ctx, "bench-cold")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := reg.Report(ctx, ReportRequest{
			Region: "bench-cold", Cell: centerCell(t, reg, "bench-cold"),
			UID: int64(i), Policy: policy.Policy{PrivacyLevel: 2}, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		firstMs = append(firstMs, float64(time.Since(start))/float64(time.Millisecond))
		if !res.Degraded {
			t.Fatalf("cold sample %d was not served degraded", i)
		}
		sh.Server.WaitUpgrades()
	}
	sort.Float64s(firstMs)
	p50 := firstMs[len(firstMs)/2]
	max := firstMs[len(firstMs)-1]
	if p50 >= 50 {
		t.Fatalf("fallback first-report p50 = %.1f ms (acceptance: < 50 ms); samples %v", p50, firstMs)
	}

	// Gate 2: cold forest assembly, the level-2 forest of a height-3 tree
	// (7 subtrees x 49 leaves, 5 robustness rounds each). Sequential
	// no-warm-start is the pre-PR7 cold path; parallel warm-started is
	// the PR7 path. The parallel run goes first so neither ordering bias
	// nor thermal ramp favors it.
	parSrv := pr7AssemblyServer(t, 0, false)
	parStart := time.Now()
	if _, err := parSrv.GenerateForestCtx(ctx, 2, 2); err != nil {
		t.Fatal(err)
	}
	parMs := float64(time.Since(parStart)) / float64(time.Millisecond)
	parStats := parSrv.Stats()

	seqSrv := pr7AssemblyServer(t, 1, true)
	seqStart := time.Now()
	if _, err := seqSrv.GenerateForestCtx(ctx, 2, 2); err != nil {
		t.Fatal(err)
	}
	seqMs := float64(time.Since(seqStart)) / float64(time.Millisecond)

	speedup := seqMs / parMs
	if speedup < 2 {
		t.Fatalf("warm+parallel assembly speedup %.2fx (acceptance: >= 2x): seq+nowarm %.0f ms, par+warm %.0f ms",
			speedup, seqMs, parMs)
	}
	if parStats.WarmAccepts == 0 {
		t.Fatal("parallel assembly accepted no warm bases; warm start is not engaging")
	}

	rep := benchPR7Report{
		FallbackFirstReportP50Ms: math.Round(p50*10) / 10,
		FallbackFirstReportMaxMs: math.Round(max*10) / 10,
		ColdAssemblySeqNoWarmMs:  math.Round(seqMs),
		ColdAssemblyParWarmMs:    math.Round(parMs),
		AssemblySpeedupX:         math.Round(speedup*100) / 100,
		WarmAttempts:             parStats.WarmAttempts,
		WarmAccepts:              parStats.WarmAccepts,
		Workers:                  runtime.GOMAXPROCS(0),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_pr7: %s\n", data)
}
