package registry

import (
	"fmt"
	"strings"
)

// SpecDefaults carries flag-level generation defaults applied to any spec
// field left at its zero value. cmd/corgi-server and cmd/corgi-gen share
// this assembly (and expose the same flags with the same defaults), so the
// spec hashes — and therefore the persistent-store snapshots — they
// address agree by construction: a store populated by corgi-gen under some
// flag set is hit by a corgi-server started with the same flags.
type SpecDefaults struct {
	Epsilon       float64
	Height        int
	LeafSpacingKm float64
	Iterations    int
	Targets       int
	Seed          int64
	UniformPriors bool
	// CheckinsPath is applied to the first (default) region only.
	CheckinsPath string
}

// BuildSpecs assembles region specs from a -regions flag value
// (comma-separated builtin metro names; empty means "sf") or a
// -region-config file path (a JSON array of specs), then fills unset
// fields from the flag defaults. Exactly one of the two sources may be
// non-empty.
func BuildSpecs(regionsFlag, configPath string, d SpecDefaults) ([]Spec, error) {
	var specs []Spec
	switch {
	case configPath != "" && regionsFlag != "":
		return nil, fmt.Errorf("use either -regions or -region-config, not both")
	case configPath != "":
		var err error
		specs, err = LoadSpecsFile(configPath)
		if err != nil {
			return nil, err
		}
	default:
		if regionsFlag == "" {
			regionsFlag = "sf"
		}
		for _, name := range strings.Split(regionsFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			spec, ok := BuiltinSpec(name)
			if !ok {
				return nil, fmt.Errorf("unknown builtin region %q; builtins: %s (use -region-config for custom regions)",
					name, strings.Join(BuiltinNames(), ", "))
			}
			specs = append(specs, spec)
		}
		if len(specs) == 0 {
			return nil, fmt.Errorf("-regions named no regions")
		}
	}
	for i := range specs {
		if specs[i].Epsilon == 0 {
			specs[i].Epsilon = d.Epsilon
		}
		if specs[i].Height == 0 {
			specs[i].Height = d.Height
		}
		if specs[i].LeafSpacingKm == 0 {
			specs[i].LeafSpacingKm = d.LeafSpacingKm
		}
		if specs[i].Iterations == 0 {
			specs[i].Iterations = d.Iterations
		}
		if specs[i].Targets == 0 {
			specs[i].Targets = d.Targets
		}
		if specs[i].Seed == 0 {
			specs[i].Seed = d.Seed
		}
		if d.UniformPriors {
			specs[i].UniformPriors = true
		}
	}
	if d.CheckinsPath != "" {
		specs[0].CheckinsPath = d.CheckinsPath
	}
	return specs, nil
}
