package registry

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"corgi/internal/budget"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
)

func reportTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := New(fastSpecs("rep-a", "rep-b"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func centerCell(t *testing.T, reg *Registry, region string) hexgrid.Coord {
	t.Helper()
	sh, err := reg.Shard(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	tree := sh.Server.Tree()
	leaf, ok := tree.Locate(sh.Spec.Center(), 0)
	if !ok {
		t.Fatal("region center not in tree")
	}
	return leaf.Coord
}

func TestReportBasicAndDeterministic(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	req := ReportRequest{
		Region: "rep-a",
		Cell:   centerCell(t, reg, "rep-a"),
		UID:    7,
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   42,
		Count:  8,
	}
	res, err := reg.Report(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 8 {
		t.Fatalf("drew %d reports, want 8", len(res.Reports))
	}
	if res.Region != "rep-a" || res.PrecisionLevel != 0 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
	sh, _ := reg.Shard(ctx, "rep-a")
	for _, n := range res.Reports {
		if n.Level != 0 || !sh.Server.Tree().Contains(n) {
			t.Fatalf("report %v not a tree leaf", n)
		}
	}

	// A fresh registry with the same inputs replays the same sequence —
	// the determinism the remote/local equivalence guarantee needs.
	reg2 := reportTestRegistry(t)
	res2, err := reg2.Report(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Reports {
		if res.Reports[i] != res2.Reports[i] {
			t.Fatalf("replayed draw %d differs: %v vs %v", i, res.Reports[i], res2.Reports[i])
		}
	}

	// Repeat requests reuse the resident session and advance its stream.
	if _, err := reg.Report(ctx, req); err != nil {
		t.Fatal(err)
	}
	if st := reg.AggregateSessionStats(); st.Hits == 0 || st.Created != 1 || st.Draws != 16 {
		t.Fatalf("session stats after reuse: %+v", st)
	}
}

func TestReportWithPreferences(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	sh, err := reg.Shard(ctx, "rep-a")
	if err != nil {
		t.Fatal(err)
	}
	md, err := sh.Metadata()
	if err != nil {
		t.Fatal(err)
	}
	// Pick a user whose inferred home lies in the level-2 subtree but is
	// not the cell they are standing in: "home != true" then prunes
	// exactly one location.
	tree := sh.Server.Tree()
	cell := centerCell(t, reg, "rep-a")
	leaf := loctree.NodeID{Level: 0, Coord: cell}
	root, _ := tree.AncestorAt(leaf, 2)
	inRange := map[loctree.NodeID]bool{}
	for _, l := range tree.LeavesUnder(root) {
		inRange[l] = true
	}
	uid := -1
	for u := 0; u < 500; u++ {
		if h, ok := md.HomeLeaf[u]; ok && inRange[h] && h != leaf {
			uid = u
			break
		}
	}
	if uid < 0 {
		t.Fatal("no user with a home in range; synthetic metadata changed?")
	}
	pred, err := policy.ParsePredicate("home != true")
	if err != nil {
		t.Fatal(err)
	}
	req := ReportRequest{
		Region: "rep-a",
		Cell:   cell,
		UID:    int64(uid),
		Policy: policy.Policy{PrivacyLevel: 2, PrecisionLevel: 1, Preferences: []policy.Predicate{pred}},
		Seed:   1,
		Count:  4,
	}
	res, err := reg.Report(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 1 {
		t.Fatalf("pruned %d, want exactly the user's home cell", res.Pruned)
	}
	for _, n := range res.Reports {
		if n.Level != 1 {
			t.Fatalf("precision-1 policy reported level-%d node %v", n.Level, n)
		}
	}
}

func TestReportBadRequests(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	good := centerCell(t, reg, "rep-a")

	cases := []ReportRequest{
		{Region: "nope", Cell: good, Policy: policy.Policy{PrivacyLevel: 1}},
		{Region: "rep-a", Cell: hexgrid.Coord{Q: 9999, R: 9999}, Policy: policy.Policy{PrivacyLevel: 1}},
		{Region: "rep-a", Cell: good, Policy: policy.Policy{PrivacyLevel: 99}},
		{Region: "rep-a", Cell: good, Policy: policy.Policy{PrivacyLevel: 1, PrecisionLevel: 1}},
	}
	for i, req := range cases {
		_, err := reg.Report(ctx, req)
		if err == nil {
			t.Fatalf("case %d accepted: %+v", i, req)
		}
		if i == 0 {
			if !errors.Is(err, ErrUnknownRegion) {
				t.Fatalf("unknown region not classified: %v", err)
			}
		} else if !errors.Is(err, ErrBadReport) {
			t.Fatalf("case %d not classified as bad request: %v", i, err)
		}
	}
}

// TestReportMovedUserReanchorsPreferences: location-relative preferences
// (the "distance" attribute) anchor at the true cell, so a user who moved
// within the same subtree must get a freshly pruned binding — the session
// re-anchors in place rather than being keyed to where they used to stand.
func TestReportMovedUserReanchorsPreferences(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	sh, err := reg.Shard(ctx, "rep-a")
	if err != nil {
		t.Fatal(err)
	}
	tree := sh.Server.Tree()
	root := tree.LevelNodes(1)[0]
	leaves := tree.LeavesUnder(root)

	// Expected prune counts from geometry: leaves farther than 0.15 km
	// from where the user stands fail "distance <= 0.15".
	const cutoff = 0.15
	prunedFrom := func(at loctree.NodeID) int {
		n := 0
		for _, l := range leaves {
			if tree.Distance(at, l) > cutoff {
				n++
			}
		}
		return n
	}
	// Pick two cells with different prune sets (the subtree's central
	// leaf sees everything within 0.1 km; a rim leaf does not).
	var cellA, cellB loctree.NodeID
	found := false
	for _, a := range leaves {
		for _, b := range leaves {
			if a != b && prunedFrom(a) != prunedFrom(b) {
				cellA, cellB, found = a, b, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no leaf pair with distinct distance prune sets; geometry changed?")
	}

	pred, err := policy.ParsePredicate("distance <= 0.15")
	if err != nil {
		t.Fatal(err)
	}
	mkReq := func(cell loctree.NodeID) ReportRequest {
		return ReportRequest{
			Region: "rep-a",
			Cell:   cell.Coord,
			UID:    5,
			Policy: policy.Policy{PrivacyLevel: 1, Preferences: []policy.Predicate{pred}},
			Seed:   2,
			Count:  1,
		}
	}
	resA, err := reg.Report(ctx, mkReq(cellA))
	if err != nil {
		t.Fatal(err)
	}
	if resA.Pruned != prunedFrom(cellA) {
		t.Fatalf("cell A pruned %d, geometry says %d", resA.Pruned, prunedFrom(cellA))
	}
	resB, err := reg.Report(ctx, mkReq(cellB))
	if err != nil {
		t.Fatal(err)
	}
	if resB.Pruned != prunedFrom(cellB) {
		t.Fatalf("moved user pruned %d, geometry at the new cell says %d (stale binding reused?)",
			resB.Pruned, prunedFrom(cellB))
	}
	if resA.Reanchored || !resB.Reanchored {
		t.Fatalf("re-anchor flags wrong: first %v (want false), moved %v (want true)",
			resA.Reanchored, resB.Reanchored)
	}
	// One session, re-anchored in place: the user's RNG stream survives the
	// move instead of fragmenting into per-anchor sessions.
	if st := reg.AggregateSessionStats(); st.Created != 1 || st.Reanchors != 1 {
		t.Fatalf("moved preference-bearing user must re-anchor its one session: %+v", st)
	}
}

// TestReportMissingAttribute: a preference over an attribute the region's
// metadata does not define is the caller's fault.
func TestReportMissingAttribute(t *testing.T) {
	reg := reportTestRegistry(t)
	pred, _ := policy.ParsePredicate("nonexistent = true")
	_, err := reg.Report(context.Background(), ReportRequest{
		Region: "rep-a",
		Cell:   centerCell(t, reg, "rep-a"),
		Policy: policy.Policy{PrivacyLevel: 1, Preferences: []policy.Predicate{pred}},
	})
	if !errors.Is(err, ErrBadReport) {
		t.Fatalf("missing attribute not a bad request: %v", err)
	}
}

// twoSubtreeCells picks one leaf from each of two distinct privacy-level-1
// subtrees of a region — a minimal "trajectory" that forces a re-anchor.
func twoSubtreeCells(t *testing.T, reg *Registry, region string) (hexgrid.Coord, hexgrid.Coord) {
	t.Helper()
	sh, err := reg.Shard(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	tree := sh.Server.Tree()
	roots := tree.LevelNodes(1)
	if len(roots) < 2 {
		t.Fatal("region has fewer than two level-1 subtrees")
	}
	a := tree.LeavesUnder(roots[0])[0]
	b := tree.LeavesUnder(roots[1])[0]
	return a.Coord, b.Coord
}

// TestReportTrajectoryDeterministicAcrossReanchor is the mobility
// tentpole's contract: one user's move sequence across subtrees re-anchors
// their single session (no stream reset), and a fresh registry replaying
// the same moves reproduces the identical draw sequence.
func TestReportTrajectoryDeterministicAcrossReanchor(t *testing.T) {
	ctx := context.Background()
	mkReq := func(cell hexgrid.Coord) ReportRequest {
		return ReportRequest{
			Region: "rep-a", Cell: cell, UID: 11,
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: 5, Count: 2,
		}
	}
	run := func(reg *Registry) ([]loctree.NodeID, []bool) {
		cellA, cellB := twoSubtreeCells(t, reg, "rep-a")
		var draws []loctree.NodeID
		var moved []bool
		for _, cell := range []hexgrid.Coord{cellA, cellA, cellB, cellA} {
			res, err := reg.Report(ctx, mkReq(cell))
			if err != nil {
				t.Fatal(err)
			}
			draws = append(draws, res.Reports...)
			moved = append(moved, res.Reanchored)
		}
		return draws, moved
	}

	reg1 := reportTestRegistry(t)
	seq1, moved1 := run(reg1)
	wantMoved := []bool{false, false, true, true} // A->A warm, A->B and B->A re-anchor
	for i, m := range moved1 {
		if m != wantMoved[i] {
			t.Fatalf("re-anchor flags %v, want %v", moved1, wantMoved)
		}
	}
	st := reg1.AggregateSessionStats()
	if st.Created != 1 || st.Reanchors != 2 {
		t.Fatalf("trajectory must ride one session with two re-anchors: %+v", st)
	}

	seq2, _ := run(reportTestRegistry(t))
	if len(seq1) != len(seq2) {
		t.Fatalf("replay lengths differ: %d vs %d", len(seq1), len(seq2))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("trajectory replay diverged at draw %d: %v vs %v", i, seq1[i], seq2[i])
		}
	}
}

// TestReportBudgetEnforced pins the acceptance boundary: with a window cap
// of exactly n draws' epsilon, draw n succeeds, draw n+1 is rejected with
// ErrBudgetExhausted, and the rejection does not perturb the user's
// deterministic stream.
func TestReportBudgetEnforced(t *testing.T) {
	specs := fastSpecs("rep-a")
	eps := specs[0].withDefaults().Epsilon
	mk := func(opts Options) *Registry {
		reg, err := New(fastSpecs("rep-a"), opts)
		if err != nil {
			t.Fatal(err)
		}
		return reg
	}
	reg := mk(Options{Budget: budget.Config{LimitEps: 3 * eps, Window: time.Hour}})
	ctx := context.Background()
	req := ReportRequest{
		Region: "rep-a", Cell: centerCell(t, reg, "rep-a"), UID: 9,
		Policy: policy.Policy{PrivacyLevel: 1}, Seed: 4, Count: 1,
	}
	var capped []loctree.NodeID
	for i := 0; i < 3; i++ {
		res, err := reg.Report(ctx, req)
		if err != nil {
			t.Fatalf("draw %d within budget rejected: %v", i+1, err)
		}
		if !res.Budgeted || res.EpsSpent != eps {
			t.Fatalf("budget echo wrong: %+v", res)
		}
		if want := eps * float64(2-i); res.EpsRemaining != want {
			t.Fatalf("draw %d remaining %v, want %v", i+1, res.EpsRemaining, want)
		}
		capped = append(capped, res.Reports...)
	}
	if _, err := reg.Report(ctx, req); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget draw: want ErrBudgetExhausted, got %v", err)
	}
	// A different user is unaffected.
	other := req
	other.UID = 10
	if _, err := reg.Report(ctx, other); err != nil {
		t.Fatalf("other user capped by someone else's spend: %v", err)
	}
	st := reg.AggregateBudgetStats()
	if st.Rejections != 1 || st.Charges != 4 { // 3 for uid 9 + 1 for uid 10
		t.Fatalf("budget stats: %+v", st)
	}

	// Budget rejections must not consume from the RNG stream: an uncapped
	// registry replaying the same requests (including the one that was
	// rejected above) yields the same first three draws.
	free := mk(Options{})
	var uncapped []loctree.NodeID
	for i := 0; i < 3; i++ {
		res, err := free.Report(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Budgeted {
			t.Fatal("accounting disabled but result claims budgeted")
		}
		uncapped = append(uncapped, res.Reports...)
	}
	for i := range capped {
		if capped[i] != uncapped[i] {
			t.Fatalf("budget accounting perturbed the stream at draw %d", i)
		}
	}
}

// TestReportConcurrentMovers races two requests on ONE (uid, seed, policy)
// stream from different subtrees: the shared session re-anchors back and
// forth, and every request must still be served (the check-then-draw pair
// retries on the concurrent-rebind race instead of surfacing a spurious
// rejection).
func TestReportConcurrentMovers(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	cellA, cellB := twoSubtreeCells(t, reg, "rep-a")
	mkReq := func(cell hexgrid.Coord) ReportRequest {
		return ReportRequest{
			Region: "rep-a", Cell: cell, UID: 77,
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: 8,
		}
	}
	// Warm both subtree entries so the race is over session state only.
	for _, c := range []hexgrid.Coord{cellA, cellB} {
		if _, err := reg.Report(ctx, mkReq(c)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		cell := cellA
		if g == 1 {
			cell = cellB
		}
		wg.Add(1)
		go func(cell hexgrid.Coord) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := reg.Report(ctx, mkReq(cell)); err != nil {
					t.Errorf("racing mover rejected: %v", err)
					return
				}
			}
		}(cell)
	}
	wg.Wait()
	if st := reg.AggregateSessionStats(); st.Created != 1 || st.Draws != 402 {
		t.Fatalf("racing movers must share one fully-served stream: %+v", st)
	}
}
