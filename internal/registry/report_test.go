package registry

import (
	"context"
	"errors"
	"testing"

	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
)

func reportTestRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := New(fastSpecs("rep-a", "rep-b"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func centerCell(t *testing.T, reg *Registry, region string) hexgrid.Coord {
	t.Helper()
	sh, err := reg.Shard(context.Background(), region)
	if err != nil {
		t.Fatal(err)
	}
	tree := sh.Server.Tree()
	leaf, ok := tree.Locate(sh.Spec.Center(), 0)
	if !ok {
		t.Fatal("region center not in tree")
	}
	return leaf.Coord
}

func TestReportBasicAndDeterministic(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	req := ReportRequest{
		Region: "rep-a",
		Cell:   centerCell(t, reg, "rep-a"),
		UID:    7,
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   42,
		Count:  8,
	}
	res, err := reg.Report(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 8 {
		t.Fatalf("drew %d reports, want 8", len(res.Reports))
	}
	if res.Region != "rep-a" || res.PrecisionLevel != 0 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
	sh, _ := reg.Shard(ctx, "rep-a")
	for _, n := range res.Reports {
		if n.Level != 0 || !sh.Server.Tree().Contains(n) {
			t.Fatalf("report %v not a tree leaf", n)
		}
	}

	// A fresh registry with the same inputs replays the same sequence —
	// the determinism the remote/local equivalence guarantee needs.
	reg2 := reportTestRegistry(t)
	res2, err := reg2.Report(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Reports {
		if res.Reports[i] != res2.Reports[i] {
			t.Fatalf("replayed draw %d differs: %v vs %v", i, res.Reports[i], res2.Reports[i])
		}
	}

	// Repeat requests reuse the resident session and advance its stream.
	if _, err := reg.Report(ctx, req); err != nil {
		t.Fatal(err)
	}
	if st := reg.AggregateSessionStats(); st.Hits == 0 || st.Created != 1 || st.Draws != 16 {
		t.Fatalf("session stats after reuse: %+v", st)
	}
}

func TestReportWithPreferences(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	sh, err := reg.Shard(ctx, "rep-a")
	if err != nil {
		t.Fatal(err)
	}
	md, err := sh.Metadata()
	if err != nil {
		t.Fatal(err)
	}
	// Pick a user whose inferred home lies in the level-2 subtree but is
	// not the cell they are standing in: "home != true" then prunes
	// exactly one location.
	tree := sh.Server.Tree()
	cell := centerCell(t, reg, "rep-a")
	leaf := loctree.NodeID{Level: 0, Coord: cell}
	root, _ := tree.AncestorAt(leaf, 2)
	inRange := map[loctree.NodeID]bool{}
	for _, l := range tree.LeavesUnder(root) {
		inRange[l] = true
	}
	uid := -1
	for u := 0; u < 500; u++ {
		if h, ok := md.HomeLeaf[u]; ok && inRange[h] && h != leaf {
			uid = u
			break
		}
	}
	if uid < 0 {
		t.Fatal("no user with a home in range; synthetic metadata changed?")
	}
	pred, err := policy.ParsePredicate("home != true")
	if err != nil {
		t.Fatal(err)
	}
	req := ReportRequest{
		Region: "rep-a",
		Cell:   cell,
		UID:    int64(uid),
		Policy: policy.Policy{PrivacyLevel: 2, PrecisionLevel: 1, Preferences: []policy.Predicate{pred}},
		Seed:   1,
		Count:  4,
	}
	res, err := reg.Report(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 1 {
		t.Fatalf("pruned %d, want exactly the user's home cell", res.Pruned)
	}
	for _, n := range res.Reports {
		if n.Level != 1 {
			t.Fatalf("precision-1 policy reported level-%d node %v", n.Level, n)
		}
	}
}

func TestReportBadRequests(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	good := centerCell(t, reg, "rep-a")

	cases := []ReportRequest{
		{Region: "nope", Cell: good, Policy: policy.Policy{PrivacyLevel: 1}},
		{Region: "rep-a", Cell: hexgrid.Coord{Q: 9999, R: 9999}, Policy: policy.Policy{PrivacyLevel: 1}},
		{Region: "rep-a", Cell: good, Policy: policy.Policy{PrivacyLevel: 99}},
		{Region: "rep-a", Cell: good, Policy: policy.Policy{PrivacyLevel: 1, PrecisionLevel: 1}},
	}
	for i, req := range cases {
		_, err := reg.Report(ctx, req)
		if err == nil {
			t.Fatalf("case %d accepted: %+v", i, req)
		}
		if i == 0 {
			if !errors.Is(err, ErrUnknownRegion) {
				t.Fatalf("unknown region not classified: %v", err)
			}
		} else if !errors.Is(err, ErrBadReport) {
			t.Fatalf("case %d not classified as bad request: %v", i, err)
		}
	}
}

// TestReportMovedUserReanchorsPreferences: location-relative preferences
// (the "distance" attribute) anchor at the true cell, so a user who moved
// within the same subtree must get a freshly pruned session — not the one
// keyed to where they used to stand.
func TestReportMovedUserReanchorsPreferences(t *testing.T) {
	reg := reportTestRegistry(t)
	ctx := context.Background()
	sh, err := reg.Shard(ctx, "rep-a")
	if err != nil {
		t.Fatal(err)
	}
	tree := sh.Server.Tree()
	root := tree.LevelNodes(1)[0]
	leaves := tree.LeavesUnder(root)

	// Expected prune counts from geometry: leaves farther than 0.15 km
	// from where the user stands fail "distance <= 0.15".
	const cutoff = 0.15
	prunedFrom := func(at loctree.NodeID) int {
		n := 0
		for _, l := range leaves {
			if tree.Distance(at, l) > cutoff {
				n++
			}
		}
		return n
	}
	// Pick two cells with different prune sets (the subtree's central
	// leaf sees everything within 0.1 km; a rim leaf does not).
	var cellA, cellB loctree.NodeID
	found := false
	for _, a := range leaves {
		for _, b := range leaves {
			if a != b && prunedFrom(a) != prunedFrom(b) {
				cellA, cellB, found = a, b, true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatal("no leaf pair with distinct distance prune sets; geometry changed?")
	}

	pred, err := policy.ParsePredicate("distance <= 0.15")
	if err != nil {
		t.Fatal(err)
	}
	mkReq := func(cell loctree.NodeID) ReportRequest {
		return ReportRequest{
			Region: "rep-a",
			Cell:   cell.Coord,
			UID:    5,
			Policy: policy.Policy{PrivacyLevel: 1, Preferences: []policy.Predicate{pred}},
			Seed:   2,
			Count:  1,
		}
	}
	resA, err := reg.Report(ctx, mkReq(cellA))
	if err != nil {
		t.Fatal(err)
	}
	if resA.Pruned != prunedFrom(cellA) {
		t.Fatalf("cell A pruned %d, geometry says %d", resA.Pruned, prunedFrom(cellA))
	}
	resB, err := reg.Report(ctx, mkReq(cellB))
	if err != nil {
		t.Fatal(err)
	}
	if resB.Pruned != prunedFrom(cellB) {
		t.Fatalf("moved user pruned %d, geometry at the new cell says %d (stale session reused?)",
			resB.Pruned, prunedFrom(cellB))
	}
	if st := reg.AggregateSessionStats(); st.Created != 2 {
		t.Fatalf("moved preference-bearing user must bind a fresh session: %+v", st)
	}
}

// TestReportMissingAttribute: a preference over an attribute the region's
// metadata does not define is the caller's fault.
func TestReportMissingAttribute(t *testing.T) {
	reg := reportTestRegistry(t)
	pred, _ := policy.ParsePredicate("nonexistent = true")
	_, err := reg.Report(context.Background(), ReportRequest{
		Region: "rep-a",
		Cell:   centerCell(t, reg, "rep-a"),
		Policy: policy.Policy{PrivacyLevel: 1, Preferences: []policy.Predicate{pred}},
	})
	if !errors.Is(err, ErrBadReport) {
		t.Fatalf("missing attribute not a bad request: %v", err)
	}
}
