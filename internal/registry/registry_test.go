package registry

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastSpecs returns n cheap-to-bootstrap region specs (uniform priors, so
// no synthetic check-in generation runs).
func fastSpecs(names ...string) []Spec {
	specs := make([]Spec, len(names))
	for i, name := range names {
		specs[i] = Spec{
			Name:      name,
			CenterLat: 37.765 + float64(i),
			CenterLng: -122.435,
			Height:    2, Iterations: 1, Targets: 3,
			UniformPriors: true,
		}
	}
	return specs
}

func TestSpecDefaultsAndValidation(t *testing.T) {
	s := Spec{Name: "x", CenterLat: 37.7, CenterLng: -122.4}.withDefaults()
	if s.LeafSpacingKm != 0.1 || s.Height != 2 || s.Epsilon != 15 ||
		s.Iterations != 5 || s.Targets != 20 || s.SyntheticCheckIns != 38523 {
		t.Errorf("defaults not applied: %+v", s)
	}
	if s.Seed == 0 {
		t.Error("default seed must be nonzero")
	}
	if other := (Spec{Name: "y", CenterLat: 37.7, CenterLng: -122.4}).withDefaults(); other.Seed == s.Seed {
		t.Error("distinct names must derive distinct seeds")
	}

	for _, bad := range []Spec{
		{CenterLat: 1, CenterLng: 1},               // no name
		{Name: "a b", CenterLat: 1, CenterLng: 1},  // reserved char
		{Name: "q?x", CenterLat: 1, CenterLng: 1},  // reserved char
		{Name: "far", CenterLat: 91, CenterLng: 0}, // bad center
		{Name: "neg", CenterLat: 1, CenterLng: 1, Height: -1},
		{Name: "many", CenterLat: 1, CenterLng: 1, Height: 1, Targets: 8}, // 8 targets, 7 leaves
	} {
		if err := bad.withDefaults().validate(); err == nil {
			t.Errorf("spec %+v must fail validation", bad)
		}
	}
}

func TestNewRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty spec list must fail")
	}
	if _, err := New(fastSpecs("a", "a"), Options{}); err == nil {
		t.Error("duplicate names must fail")
	}
}

func TestUnknownRegionErrorListsAvailable(t *testing.T) {
	r, err := New(fastSpecs("sf", "nyc"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Shard(context.Background(), "atlantis")
	if !errors.Is(err, ErrUnknownRegion) {
		t.Fatalf("want ErrUnknownRegion, got %v", err)
	}
	if !strings.Contains(err.Error(), "sf") || !strings.Contains(err.Error(), "nyc") {
		t.Errorf("error must list available regions: %v", err)
	}
}

func TestLazyBootstrapSingleflight(t *testing.T) {
	r, err := New(fastSpecs("sf", "nyc"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ready("sf") {
		t.Fatal("no shard may exist before first use")
	}

	const waiters = 32
	shards := make([]*Shard, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh, err := r.Shard(context.Background(), "sf")
			if err != nil {
				t.Error(err)
				return
			}
			shards[i] = sh
		}(i)
	}
	wg.Wait()
	for i := 1; i < waiters; i++ {
		if shards[i] != shards[0] {
			t.Fatal("concurrent first requests must share one shard")
		}
	}
	if got := r.Bootstraps(); got != 1 {
		t.Fatalf("32 concurrent first requests ran %d bootstraps, want 1", got)
	}
	if !r.Ready("sf") || r.Ready("nyc") {
		t.Error("only the requested region may be bootstrapped")
	}

	// Default region resolution: empty name means the first spec.
	sh, err := r.Shard(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if sh.Spec.Name != "sf" {
		t.Errorf("default region resolved to %q, want sf", sh.Spec.Name)
	}
}

func TestShardWaiterHonorsContext(t *testing.T) {
	r, err := New(fastSpecs("sf"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := r.Shard(ctx, "sf"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context must fail fast, got %v", err)
	}
	// The region remains bootstrappable afterwards.
	if _, err := r.Shard(context.Background(), "sf"); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapAllAndStats(t *testing.T) {
	r, err := New(fastSpecs("a", "b", "c"), Options{WarmupDelta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.BootstrapAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := r.Bootstraps(); got != 3 {
		t.Fatalf("bootstraps = %d, want 3", got)
	}
	stats := r.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats over %d shards, want 3", len(stats))
	}
	var wantSolves uint64
	for name, s := range stats {
		if s.Solves == 0 {
			t.Errorf("region %q warmed up with 0 solves", name)
		}
		wantSolves += s.Solves
	}
	agg := r.AggregateStats()
	if agg.Solves != wantSolves {
		t.Errorf("aggregate solves %d, want %d", agg.Solves, wantSolves)
	}
	if agg.Workers != 3*stats["a"].Workers {
		t.Errorf("aggregate workers %d, want 3x shard's %d", agg.Workers, stats["a"].Workers)
	}
}

func TestSyntheticPriorsDifferPerRegion(t *testing.T) {
	specs := fastSpecs("p", "q")
	for i := range specs {
		specs[i].UniformPriors = false
		specs[i].SyntheticCheckIns = 2000
	}
	r, err := New(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shP, err := r.Shard(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	shQ, err := r.Shard(context.Background(), "q")
	if err != nil {
		t.Fatal(err)
	}
	pTree, qTree := shP.Server.Tree(), shQ.Server.Tree()
	pl := shP.Server.Priors().Level(0)
	ql := shQ.Server.Priors().Level(0)
	if pTree.NumLeaves() != qTree.NumLeaves() {
		t.Fatal("same height regions must match in leaf count")
	}
	same := true
	for i := range pl {
		if pl[i] != ql[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("distinct regions produced identical synthetic priors")
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs([]byte(`[
		{"name": "sf", "center_lat": 37.765, "center_lng": -122.435, "height": 3},
		{"name": "nyc", "center_lat": 40.71, "center_lng": -74.0, "epsilon": 10}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Height != 3 || specs[1].Epsilon != 10 {
		t.Errorf("parsed %+v", specs)
	}
	if _, err := ParseSpecs([]byte(`[]`)); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := ParseSpecs([]byte(`{`)); err == nil {
		t.Error("malformed config must fail")
	}
}

func TestBuiltins(t *testing.T) {
	names := BuiltinNames()
	if len(names) == 0 || names[0] != "sf" {
		t.Fatalf("builtin names: %v", names)
	}
	for _, name := range names {
		s, ok := BuiltinSpec(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		if err := s.withDefaults().validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
	}
	if _, ok := BuiltinSpec("atlantis"); ok {
		t.Error("unknown builtin must miss")
	}
}
