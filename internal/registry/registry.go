// Package registry is the multi-region sharding layer: it owns a set of
// named regions, each with its own location tree, priors, service targets,
// and concurrent generation engine (a core.Server shard), and bootstraps
// them lazily on first use.
//
// Real deployments of geo-indistinguishability mechanisms span many metro
// areas with heterogeneous priors, and per-region optimal mechanisms must
// be computed and cached independently — which maps directly onto one
// engine shard per region. The registry guarantees each region bootstraps
// exactly once even under a stampede of concurrent first requests
// (per-region singleflight), optionally warms a shard's cache right after
// bootstrap, and folds per-shard engine counters into an aggregate view.
package registry

import (
	"context"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"corgi/internal/budget"
	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/gowalla"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/session"
	"corgi/internal/store"
)

// Spec declares one region: where it is, how its tree is built, and how
// its matrices are generated. The zero value of every field except Name
// and the center is completed by defaults (see withDefaults), so a config
// file only needs to name what it wants to override.
type Spec struct {
	// Name addresses the region on the wire (?region=...). Required,
	// unique within a registry.
	Name string `json:"name"`
	// CenterLat/CenterLng anchor the region's location tree. Required.
	CenterLat float64 `json:"center_lat"`
	CenterLng float64 `json:"center_lng"`
	// LeafSpacingKm is the leaf cell center spacing. Default 0.1.
	LeafSpacingKm float64 `json:"leaf_spacing_km,omitempty"`
	// Height is the location-tree height (2 -> 49 leaves, 3 -> 343).
	// Default 2.
	Height int `json:"height,omitempty"`
	// Epsilon is the Geo-Ind budget in km^-1. Default 15.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Iterations is the Algorithm-1 robustness round count. Default 5.
	Iterations int `json:"iterations,omitempty"`
	// Targets is how many service target locations to spread over the
	// leaves. Default 20 (clamped to the leaf count).
	Targets int `json:"targets,omitempty"`
	// Seed drives the synthetic check-in sample that builds the priors.
	// Default: a stable hash of Name, so distinct regions get distinct
	// priors deterministically.
	Seed int64 `json:"seed,omitempty"`
	// CheckinsPath optionally points at a real Gowalla check-in file;
	// check-ins outside the region's bounding box are dropped.
	CheckinsPath string `json:"checkins_path,omitempty"`
	// SyntheticCheckIns sizes the synthetic sample when CheckinsPath is
	// empty. Default 38523 (the paper's SF sample); must be at least 500.
	SyntheticCheckIns int `json:"synthetic_checkins,omitempty"`
	// UniformPriors skips check-in data entirely and uses the uniform
	// leaf distribution (fast bootstrap; useful for tests and load rigs).
	UniformPriors bool `json:"uniform_priors,omitempty"`
}

// Center returns the region's anchor point.
func (s Spec) Center() geo.LatLng { return geo.LatLng{Lat: s.CenterLat, Lng: s.CenterLng} }

func (s Spec) withDefaults() Spec {
	if s.LeafSpacingKm == 0 {
		s.LeafSpacingKm = 0.1
	}
	if s.Height == 0 {
		s.Height = 2
	}
	if s.Epsilon == 0 {
		s.Epsilon = 15
	}
	if s.Iterations == 0 {
		s.Iterations = 5
	}
	if s.Targets == 0 {
		s.Targets = 20
	}
	if s.Seed == 0 {
		s.Seed = nameSeed(s.Name)
	}
	if s.SyntheticCheckIns == 0 {
		s.SyntheticCheckIns = 38523
	}
	return s
}

func (s Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("registry: region spec needs a name")
	}
	if strings.ContainsAny(s.Name, " ,?&=/") {
		return fmt.Errorf("registry: region name %q contains reserved characters", s.Name)
	}
	if s.CenterLat == 0 && s.CenterLng == 0 {
		// (0,0) is open ocean; a zero center is always a missing or
		// misspelled center_lat/center_lng in a config file.
		return fmt.Errorf("registry: region %q needs center_lat and center_lng", s.Name)
	}
	if !s.Center().Valid() {
		return fmt.Errorf("registry: region %q center %v invalid", s.Name, s.Center())
	}
	if s.LeafSpacingKm < 0 || s.Height < 0 || s.Epsilon < 0 || s.Iterations < 0 || s.Targets < 0 {
		return fmt.Errorf("registry: region %q has negative parameters", s.Name)
	}
	// An aperture-7 height-h tree has 7^h leaves, so a bad target count
	// can be rejected at registration instead of at (lazy) bootstrap.
	leaves := 1
	for i := 0; i < s.Height; i++ {
		leaves *= 7
	}
	if s.Targets > leaves {
		return fmt.Errorf("registry: region %q asks for %d targets from %d leaves", s.Name, s.Targets, leaves)
	}
	// gowalla.Generate rejects fewer check-ins than its 500 synthetic
	// users; surface that at registration instead of at (lazy) bootstrap.
	if !s.UniformPriors && s.CheckinsPath == "" && s.SyntheticCheckIns < 500 {
		return fmt.Errorf("registry: region %q synthetic_checkins %d below the generator minimum 500",
			s.Name, s.SyntheticCheckIns)
	}
	return nil
}

// specHashVersion stamps the hash input so a future change to generation
// semantics (not just spec fields) can invalidate every existing snapshot
// at once by bumping it.
const specHashVersion = "corgi-spec-v1"

// Hash fingerprints the full set of generation inputs this spec implies:
// the canonical JSON of the spec with defaults applied, prefixed by a
// format-version tag, hashed with SHA-256. It keys the persistent forest
// store (internal/store) — any change to a region's priors, tree shape, or
// generation parameters changes the hash, so stale snapshots are never
// addressed again, let alone served. Note the hash covers CheckinsPath's
// value, not the file's contents; republishing changed check-in data under
// the same path requires a new path (or clearing the store).
func (s Spec) Hash() string {
	canon, err := json.Marshal(s.withDefaults())
	if err != nil {
		// Spec is a plain struct of scalars; Marshal cannot fail on it.
		panic(fmt.Sprintf("registry: marshaling spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(specHashVersion))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil))
}

// nameSeed derives a stable positive seed from a region name.
func nameSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64() & (1<<63 - 1))
}

// ParseSpecs decodes a JSON array of region specs (the -region-config file
// format of cmd/corgi-server).
func ParseSpecs(data []byte) ([]Spec, error) {
	var specs []Spec
	if err := json.Unmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("registry: parsing region config: %w", err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("registry: region config is empty")
	}
	return specs, nil
}

// LoadSpecsFile reads a JSON region-config file.
func LoadSpecsFile(path string) ([]Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpecs(data)
}

// builtinMetros are the region names cmd/corgi-server accepts without a
// config file. "sf" matches the paper's evaluation region; the rest are
// metro centers for multi-region scale runs.
var builtinMetros = []Spec{
	{Name: "sf", CenterLat: 37.765, CenterLng: -122.435},
	{Name: "nyc", CenterLat: 40.7128, CenterLng: -74.0060},
	{Name: "la", CenterLat: 34.0522, CenterLng: -118.2437},
	{Name: "chicago", CenterLat: 41.8781, CenterLng: -87.6298},
	{Name: "seattle", CenterLat: 47.6062, CenterLng: -122.3321},
	{Name: "boston", CenterLat: 42.3601, CenterLng: -71.0589},
	{Name: "austin", CenterLat: 30.2672, CenterLng: -97.7431},
	{Name: "london", CenterLat: 51.5074, CenterLng: -0.1278},
	{Name: "paris", CenterLat: 48.8566, CenterLng: 2.3522},
	{Name: "tokyo", CenterLat: 35.6762, CenterLng: 139.6503},
}

// BuiltinSpec returns the builtin spec for a metro name.
func BuiltinSpec(name string) (Spec, bool) {
	for _, s := range builtinMetros {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// BuiltinNames lists the builtin metro names in declaration order.
func BuiltinNames() []string {
	names := make([]string, len(builtinMetros))
	for i, s := range builtinMetros {
		names[i] = s.Name
	}
	return names
}

// Options tunes every shard in a registry.
type Options struct {
	// Engine is the per-shard engine tuning (workers, cache bytes). Each
	// shard gets its own worker pool and cache of this shape. Engine.Store
	// is overridden per shard when Store is set.
	Engine core.EngineOptions
	// WarmupDelta >= 0 precomputes every (level, delta <= WarmupDelta)
	// forest right after a shard bootstraps; negative disables warmup.
	WarmupDelta int
	// Store, when non-nil, is the persistent forest store shared by every
	// shard: each bootstrap attaches a per-region view keyed by the spec's
	// hash, hydrates the shard's cache from existing snapshots (so a
	// restarted or -eager server serves precomputed forests with zero LP
	// solves), and newly solved forests write back asynchronously. A spec
	// change changes the hash, invalidating that region's old snapshots.
	Store *store.Store
	// SessionCap bounds each shard's live report-session LRU. <= 0 uses
	// session.DefaultCap.
	SessionCap int
	// Budget, when Budget.LimitEps > 0, attaches a per-shard sliding-window
	// epsilon accountant: every report draw charges the region's epsilon
	// against the requesting user's window cap (linear composition), and a
	// user over cap is rejected with budget.ErrBudgetExhausted until spend
	// slides out of the window. The zero value disables accounting.
	Budget budget.Config
	// LeaseSecret is the master secret the HMAC lease-token keyring derives
	// per-user signing keys from (see internal/budget.Keyring). Empty
	// generates a random per-process secret: leases still work, but tokens
	// do not survive a restart and cannot be verified by a peer node.
	LeaseSecret []byte
	// LeaseTTL bounds draw-lease lifetime; <= 0 uses DefaultLeaseTTL.
	LeaseTTL time.Duration
}

// Shard is one bootstrapped region: its spec, its serving engine, and its
// report-session cache. The tree and priors are reachable through
// Server.Tree and Server.Priors.
type Shard struct {
	Spec   Spec
	Server *core.Server
	// Sessions is the shard's bounded LRU of live report sessions; the
	// report path reuses a resident session's alias rows and RNG stream
	// across a user's repeat reports, re-anchoring it when the user moves.
	Sessions *session.Manager
	// Budget is the shard's per-user epsilon accountant; nil when
	// Options.Budget left accounting disabled.
	Budget *budget.Accountant

	// meta lazily derives the region's policy-attribute metadata (home /
	// office / outlier / popular heuristics, Sec. 6.1) from the same
	// check-in source as the priors. Only the report path needs it, and
	// only for policies with preferences, so no bootstrap pays for it
	// up front.
	metaOnce sync.Once
	meta     *gowalla.Metadata
	metaErr  error
}

// Metadata returns the shard's lazily-built policy metadata. Regions
// configured with UniformPriors still derive metadata from their seeded
// synthetic check-in sample, so preference-bearing report requests work
// against fast-bootstrap regions too.
func (sh *Shard) Metadata() (*gowalla.Metadata, error) {
	sh.metaOnce.Do(func() {
		cs, err := regionCheckIns(sh.Spec, sh.Server.Tree())
		if err != nil {
			sh.metaErr = fmt.Errorf("registry: region %q metadata: %w", sh.Spec.Name, err)
			return
		}
		sh.meta, sh.metaErr = gowalla.BuildMetadata(cs, sh.Server.Tree(), 0.2)
	})
	return sh.meta, sh.metaErr
}

// Attrs builds the attribute map one user's preference evaluation sees
// over the given leaves, anchored at refLoc (the "distance" attribute is
// relative to it). The report path passes only the privacy subtree's
// leaves; nil annotates the whole region.
func (sh *Shard) Attrs(uid int, refLoc geo.LatLng, leaves []loctree.NodeID) (map[loctree.NodeID]policy.Attributes, error) {
	md, err := sh.Metadata()
	if err != nil {
		return nil, err
	}
	if leaves == nil {
		return md.Annotate(uid, refLoc), nil
	}
	return md.AnnotateLeaves(uid, refLoc, leaves), nil
}

// ErrUnknownRegion marks lookups of regions the registry was not
// configured with; the wrapped message lists the available names.
var ErrUnknownRegion = errors.New("unknown region")

// ReportHandler is the serving surface the transports (internal/proto,
// internal/stream) call instead of the registry directly. *Registry
// implements it by serving locally; the cluster router (internal/cluster)
// implements it by forwarding non-owned users to their owner node and
// delegating owned ones to the embedded registry — so clustering slots in
// without either transport knowing whether it runs on a 1-node or N-node
// deployment.
type ReportHandler interface {
	Report(ctx context.Context, req ReportRequest) (*ReportResult, error)
	Lease(ctx context.Context, req LeaseRequest) (*LeaseGrant, error)
}

// bootCall is one in-progress region bootstrap that concurrent first
// requests join instead of bootstrapping again.
type bootCall struct {
	done  chan struct{}
	shard *Shard
	err   error
}

// Registry owns the region set and their lazily-bootstrapped shards.
type Registry struct {
	opts  Options
	order []string
	specs map[string]Spec

	mu     sync.Mutex
	shards map[string]*Shard
	boot   map[string]*bootCall

	bootstraps atomic.Uint64

	// keyring signs and verifies draw-lease tokens (registry-level: a
	// lease token names its region, one key hierarchy covers all shards);
	// leaseTTL bounds lease lifetime; lease holds the lease counters.
	keyring  *budget.Keyring
	leaseTTL time.Duration
	lease    leaseCounters
}

// New validates the specs (defaults applied) and returns a registry with
// no shards bootstrapped yet. The first spec is the default region.
func New(specs []Spec, opts Options) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("registry: at least one region spec required")
	}
	if opts.Engine.Store != nil {
		// A raw engine store has no region namespacing: every shard would
		// read and write the same bare (level, delta) keys, cross-serving
		// forests between regions. The registry only supports the
		// spec-hash-keyed path.
		return nil, fmt.Errorf("registry: set Options.Store (per-region, spec-hash keyed) instead of Options.Engine.Store")
	}
	if opts.WarmupDelta < 0 {
		opts.WarmupDelta = -1
	}
	if opts.Budget.LimitEps > 0 {
		// Construct-and-discard validates the config once at registration
		// instead of failing every lazy bootstrap.
		if _, err := budget.NewAccountant(opts.Budget); err != nil {
			return nil, fmt.Errorf("registry: budget config: %w", err)
		}
	} else if opts.Budget.LimitEps < 0 {
		return nil, fmt.Errorf("registry: budget limit %v is negative (0 disables accounting)", opts.Budget.LimitEps)
	}
	secret := opts.LeaseSecret
	if len(secret) == 0 {
		secret = make([]byte, 32)
		if _, err := cryptorand.Read(secret); err != nil {
			return nil, fmt.Errorf("registry: generating lease secret: %w", err)
		}
	}
	keyring, err := budget.NewKeyring(secret)
	if err != nil {
		return nil, fmt.Errorf("registry: lease keyring: %w", err)
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	r := &Registry{
		opts:     opts,
		specs:    make(map[string]Spec, len(specs)),
		shards:   make(map[string]*Shard, len(specs)),
		boot:     map[string]*bootCall{},
		keyring:  keyring,
		leaseTTL: opts.LeaseTTL,
	}
	for _, s := range specs {
		s = s.withDefaults()
		if err := s.validate(); err != nil {
			return nil, err
		}
		if _, dup := r.specs[s.Name]; dup {
			return nil, fmt.Errorf("registry: duplicate region %q", s.Name)
		}
		r.specs[s.Name] = s
		r.order = append(r.order, s.Name)
	}
	return r, nil
}

// Names returns the configured region names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// DefaultRegion is the first configured region, used when a request names
// no region.
func (r *Registry) DefaultRegion() string { return r.order[0] }

// Spec returns the (defaulted) spec for a region.
func (r *Registry) Spec(name string) (Spec, bool) {
	s, ok := r.specs[name]
	return s, ok
}

// Ready reports whether a region's shard has bootstrapped.
func (r *Registry) Ready(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.shards[name]
	return ok
}

// ShardIfReady returns a region's shard only if it has already
// bootstrapped — never triggering a bootstrap. The cluster router uses it
// to export budget handoffs: a region this node never served has no local
// spend to hand off, so there is nothing to bootstrap for. An empty name
// resolves to the default region, mirroring Shard.
func (r *Registry) ShardIfReady(name string) (*Shard, bool) {
	if name == "" {
		name = r.DefaultRegion()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, ok := r.shards[name]
	return sh, ok
}

// Bootstraps counts completed shard bootstraps (lazy-init observability:
// under any concurrency it never exceeds the region count).
func (r *Registry) Bootstraps() uint64 { return r.bootstraps.Load() }

// Shard returns the serving shard for a region, bootstrapping it on first
// use. Concurrent first requests for the same region join one bootstrap
// (per-region singleflight); requests for distinct regions bootstrap in
// parallel. A waiter whose context expires abandons the wait — the
// bootstrap itself completes for the remaining waiters and the registry.
func (r *Registry) Shard(ctx context.Context, name string) (*Shard, error) {
	if name == "" {
		name = r.DefaultRegion()
	}
	spec, ok := r.specs[name]
	if !ok {
		return nil, fmt.Errorf("%w %q; available regions: %s",
			ErrUnknownRegion, name, strings.Join(r.order, ", "))
	}
	r.mu.Lock()
	if sh, ok := r.shards[name]; ok {
		// A ready shard costs nothing to hand out, so an expired context
		// only matters on the wait/bootstrap paths below (the caller's
		// own generation will still see the expiry).
		r.mu.Unlock()
		return sh, nil
	}
	if err := ctx.Err(); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	if call, ok := r.boot[name]; ok {
		r.mu.Unlock()
		select {
		case <-call.done:
			return call.shard, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &bootCall{done: make(chan struct{})}
	r.boot[name] = call
	r.mu.Unlock()

	// Bootstrap outside the lock with a background-rooted context: the
	// shard outlives the triggering request, so one impatient client must
	// not abort it for everyone queued behind.
	call.shard, call.err = r.bootstrap(context.WithoutCancel(ctx), spec)
	r.mu.Lock()
	if call.err == nil {
		r.shards[name] = call.shard
	}
	delete(r.boot, name)
	r.mu.Unlock()
	close(call.done)
	if call.err == nil {
		r.bootstraps.Add(1)
	}
	return call.shard, call.err
}

// BootstrapAll eagerly bootstraps every configured region in order,
// stopping at the first failure.
func (r *Registry) BootstrapAll(ctx context.Context) error {
	for _, name := range r.order {
		if _, err := r.Shard(ctx, name); err != nil {
			return fmt.Errorf("registry: bootstrapping %q: %w", name, err)
		}
	}
	return nil
}

// bootstrap builds one region's tree, priors, targets, and engine shard.
func (r *Registry) bootstrap(ctx context.Context, spec Spec) (*Shard, error) {
	sys, err := hexgrid.NewSystem(spec.Center(), spec.LeafSpacingKm)
	if err != nil {
		return nil, fmt.Errorf("registry: region %q hex system: %w", spec.Name, err)
	}
	tree, err := loctree.NewAt(sys, spec.Center(), spec.Height)
	if err != nil {
		return nil, fmt.Errorf("registry: region %q tree: %w", spec.Name, err)
	}
	priors, err := buildPriors(spec, tree)
	if err != nil {
		return nil, fmt.Errorf("registry: region %q priors: %w", spec.Name, err)
	}
	targets, probs, err := spreadTargets(tree, spec.Targets)
	if err != nil {
		return nil, fmt.Errorf("registry: region %q: %w", spec.Name, err)
	}
	engineOpts := r.opts.Engine
	if r.opts.Store != nil {
		fs, err := store.NewForestStore(r.opts.Store, spec.Hash(), tree)
		if err != nil {
			return nil, fmt.Errorf("registry: region %q store: %w", spec.Name, err)
		}
		engineOpts.Store = fs
	}
	srv, err := core.NewServerWithOptions(tree, priors, targets, probs, core.Params{
		Epsilon:        spec.Epsilon,
		Iterations:     spec.Iterations,
		UseGraphApprox: true,
	}, engineOpts)
	if err != nil {
		return nil, fmt.Errorf("registry: region %q server: %w", spec.Name, err)
	}
	if r.opts.Store != nil {
		// Best-effort warm restart: snapshots for this spec hash preload
		// the cache so precomputed forests serve with zero LP solves.
		// Hydration failures (unreadable store) degrade to computing —
		// corrupt individual snapshots are already skipped one level down.
		if _, err := srv.HydrateFromStore(ctx); err == nil {
			_ = r.opts.Store.WriteSpecNote(spec.Hash(), spec)
		}
	}
	if r.opts.WarmupDelta >= 0 {
		if err := srv.Warmup(ctx, r.opts.WarmupDelta); err != nil {
			return nil, fmt.Errorf("registry: region %q warmup: %w", spec.Name, err)
		}
	}
	sh := &Shard{Spec: spec, Server: srv, Sessions: session.NewManager(r.opts.SessionCap)}
	if r.opts.Budget.LimitEps > 0 {
		acct, err := budget.NewAccountant(r.opts.Budget)
		if err != nil {
			return nil, fmt.Errorf("registry: region %q budget: %w", spec.Name, err)
		}
		sh.Budget = acct
	}
	return sh, nil
}

// regionCheckIns resolves a region's check-in sample: the configured real
// Gowalla file clipped to the region's bounding box, or the deterministic
// synthetic sample seeded by the spec. Priors and policy metadata both
// derive from it, so the two views of a region always agree.
func regionCheckIns(spec Spec, tree *loctree.Tree) ([]gowalla.CheckIn, error) {
	bbox := treeBBox(tree, spec.LeafSpacingKm)
	if spec.CheckinsPath != "" {
		all, err := gowalla.LoadFile(spec.CheckinsPath)
		if err != nil {
			return nil, err
		}
		return gowalla.FilterBBox(all, bbox), nil
	}
	ds, err := gowalla.Generate(gowalla.GenConfig{
		Seed:        spec.Seed,
		NumCheckIns: spec.SyntheticCheckIns,
		BBox:        bbox,
	})
	if err != nil {
		return nil, err
	}
	return ds.CheckIns, nil
}

// buildPriors derives the region's public leaf priors: uniform, from a
// real check-in file clipped to the region, or from a deterministic
// synthetic sample laid over the region's own bounding box.
func buildPriors(spec Spec, tree *loctree.Tree) (*loctree.Priors, error) {
	if spec.UniformPriors {
		return loctree.UniformPriors(tree), nil
	}
	cs, err := regionCheckIns(spec, tree)
	if err != nil {
		return nil, err
	}
	leaf, err := gowalla.LeafPriors(cs, tree, 1)
	if err != nil {
		return nil, err
	}
	return loctree.NewPriors(tree, leaf)
}

// treeBBox bounds the tree's leaf centers, padded by one leaf spacing so
// boundary cells still attract check-ins.
func treeBBox(tree *loctree.Tree, spacingKm float64) geo.BoundingBox {
	padDeg := spacingKm / 111.0 // ~1 degree latitude per 111 km
	b := geo.BoundingBox{MinLat: 90, MinLng: 180, MaxLat: -90, MaxLng: -180}
	for _, leaf := range tree.LevelNodes(0) {
		c := tree.Center(leaf)
		if c.Lat < b.MinLat {
			b.MinLat = c.Lat
		}
		if c.Lat > b.MaxLat {
			b.MaxLat = c.Lat
		}
		if c.Lng < b.MinLng {
			b.MinLng = c.Lng
		}
		if c.Lng > b.MaxLng {
			b.MaxLng = c.Lng
		}
	}
	b.MinLat -= padDeg
	b.MaxLat += padDeg
	b.MinLng -= padDeg
	b.MaxLng += padDeg
	return b
}

// spreadTargets picks n service targets evenly over the leaves (the even
// spread formerly private to cmd/corgi-server). n beyond the leaf count
// is an error rather than a silent under-delivery.
func spreadTargets(tree *loctree.Tree, n int) ([]geo.LatLng, []float64, error) {
	leaves := tree.LevelNodes(0)
	if n < 1 || n > len(leaves) {
		return nil, nil, fmt.Errorf("target count must be in [1, %d], got %d", len(leaves), n)
	}
	targets := make([]geo.LatLng, 0, n)
	probs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		targets = append(targets, tree.Center(leaves[i*len(leaves)/n]))
		probs = append(probs, 1)
	}
	return targets, probs, nil
}

// FlushStores blocks until every bootstrapped shard's pending store
// write-backs have finished. Call before process exit so freshly solved
// forests are durable; without a configured store it is a no-op.
func (r *Registry) FlushStores() {
	r.mu.Lock()
	shards := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.mu.Unlock()
	for _, sh := range shards {
		sh.Server.FlushStore()
	}
}

// Stats snapshots every bootstrapped shard's engine counters by region.
func (r *Registry) Stats() map[string]core.EngineStats {
	r.mu.Lock()
	shards := make(map[string]*Shard, len(r.shards))
	for name, sh := range r.shards {
		shards[name] = sh
	}
	r.mu.Unlock()
	out := make(map[string]core.EngineStats, len(shards))
	for name, sh := range shards {
		out[name] = sh.Server.Stats()
	}
	return out
}

// AggregateStats folds all shard counters into one fleet-wide snapshot.
func (r *Registry) AggregateStats() core.EngineStats {
	var total core.EngineStats
	for _, s := range r.Stats() {
		total.Merge(s)
	}
	return total
}

// SessionStats snapshots every bootstrapped shard's report-session
// counters by region.
func (r *Registry) SessionStats() map[string]session.Stats {
	r.mu.Lock()
	shards := make(map[string]*Shard, len(r.shards))
	for name, sh := range r.shards {
		shards[name] = sh
	}
	r.mu.Unlock()
	out := make(map[string]session.Stats, len(shards))
	for name, sh := range shards {
		out[name] = sh.Sessions.Stats()
	}
	return out
}

// AggregateSessionStats folds all shard session counters into one
// fleet-wide snapshot.
func (r *Registry) AggregateSessionStats() session.Stats {
	var total session.Stats
	for _, s := range r.SessionStats() {
		total.Merge(s)
	}
	return total
}

// BudgetStats snapshots every bootstrapped shard's epsilon-budget counters
// by region. Regions without accounting (or not yet bootstrapped) are
// absent.
func (r *Registry) BudgetStats() map[string]budget.Stats {
	r.mu.Lock()
	shards := make(map[string]*Shard, len(r.shards))
	for name, sh := range r.shards {
		shards[name] = sh
	}
	r.mu.Unlock()
	out := make(map[string]budget.Stats, len(shards))
	for name, sh := range shards {
		if sh.Budget != nil {
			out[name] = sh.Budget.Stats()
		}
	}
	return out
}

// AggregateBudgetStats folds all shard budget counters into one fleet-wide
// snapshot.
func (r *Registry) AggregateBudgetStats() budget.Stats {
	var total budget.Stats
	for _, s := range r.BudgetStats() {
		total.Merge(s)
	}
	return total
}
