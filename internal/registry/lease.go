package registry

// This file is the lease arm of the report pipeline: where Report draws
// server-side, Lease pre-pays n draws' epsilon in ONE budget charge,
// detaches the user's customized rows into a codec.LeaseBundle, and signs
// an HMAC token (internal/budget.Keyring) binding everything the server
// must never re-trust the client about — user, subtree, prune budget,
// epsilon rate, draw cap, RNG position, expiry. The client then draws at
// device speed (internal/clientdraw); the server's per-report work
// collapses to 1/n of a budget charge. Renewal presents the old token:
// the HMAC proves the server issued it, and the carried RNG position lets
// an evicted session be rebuilt exactly where the leased stream ends, so
// draw sequences stay byte-identical to the server-side paths even across
// session eviction.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"corgi/internal/budget"
	"corgi/internal/codec"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/session"
)

// DefaultLeaseTTL bounds a draw lease's lifetime when Options.LeaseTTL is
// not positive. Short on purpose: an expired token only costs the client a
// fresh (un-renewed) lease request, while a long-lived one extends how
// stale a leaked bundle's rows can be.
const DefaultLeaseTTL = time.Minute

// ErrBadLeaseToken re-exports the keyring's rejection sentinel so serving
// layers classify it (403 Forbidden) without importing internal/budget.
var ErrBadLeaseToken = budget.ErrBadLeaseToken

// LeaseRequest asks for a client-side draw lease: like a ReportRequest,
// plus the draw cap to pre-pay and an optional renewal token.
type LeaseRequest struct {
	Region string
	// Cell is the user's true leaf cell: it anchors preference evaluation
	// and selects the privacy subtree, exactly as a report does. (This is
	// the one cell a lease reveals; every draw after it stays on-device.)
	Cell   hexgrid.Coord
	UID    int64
	Policy policy.Policy
	Seed   int64
	// Draws is the draw cap to pre-pay (min 1); the transport caps it at
	// the same max-report-count limit as /v1/reports.
	Draws int
	// Token, when non-empty, renews: the previous lease's token proves the
	// RNG position the new lease must continue from even if the resident
	// session was evicted. Forged, tampered, or expired tokens are
	// rejected with ErrBadLeaseToken.
	Token []byte
	// Forwarded and Handoff mirror ReportRequest: a peer's cluster router
	// relayed this lease ask to the uid's owner, optionally carrying the
	// relayer's live budget spend to merge before charging.
	Forwarded bool
	Handoff   *budget.Handoff
}

// LeaseGrant is an issued lease: the signed token, the encoded bundle the
// client draws from, and the customization facts a report response would
// carry.
type LeaseGrant struct {
	Region         string
	SubtreeRoot    loctree.NodeID
	PrecisionLevel int
	Pruned         int
	Reanchored     bool
	Budgeted       bool
	EpsSpent       float64
	EpsRemaining   float64
	Degraded       bool
	// DrawCap echoes the granted cap; RNGPos is the stream position the
	// leased window starts at; ExpiresAt the token expiry (Unix ms).
	DrawCap   int
	RNGPos    uint64
	ExpiresAt int64
	// Renewed is true when a valid renewal token accompanied the request.
	Renewed bool
	// Token is the signed lease token; Bundle the encoded lease bundle
	// (codec.DecodeLeaseBundle / clientdraw.Open consume it).
	Token  []byte
	Bundle []byte
}

// leaseCounters tracks lease issuance at the registry level (the keyring
// is registry-wide, so the counters are too).
type leaseCounters struct {
	issued       atomic.Uint64
	renewed      atomic.Uint64
	drawsGranted atomic.Uint64
	deniedBudget atomic.Uint64
	deniedToken  atomic.Uint64
}

// LeaseStats snapshots the lease counters for /v1/stats.
type LeaseStats struct {
	// Issued counts granted leases (renewals included); Renewed the subset
	// granted against a valid renewal token; DrawsGranted the pre-paid
	// draws across all of them.
	Issued       uint64 `json:"issued"`
	Renewed      uint64 `json:"renewed"`
	DrawsGranted uint64 `json:"draws_granted"`
	// DeniedBudget counts leases refused 429 (epsilon cap); DeniedToken
	// leases refused 403 (forged, tampered, or expired token).
	DeniedBudget uint64 `json:"denied_budget"`
	DeniedToken  uint64 `json:"denied_token"`
}

// LeaseStats snapshots the registry's lease counters.
func (r *Registry) LeaseStats() LeaseStats {
	return LeaseStats{
		Issued:       r.lease.issued.Load(),
		Renewed:      r.lease.renewed.Load(),
		DrawsGranted: r.lease.drawsGranted.Load(),
		DeniedBudget: r.lease.deniedBudget.Load(),
		DeniedToken:  r.lease.deniedToken.Load(),
	}
}

// Lease runs the lease pipeline: validate like a report, verify any
// renewal token, charge draws x epsilon in one call, bind (or re-anchor,
// or rebuild) the user's session, detach its rows, and sign the token.
// Budget and token checks both happen before any session work, so a
// refused lease consumes nothing from the user's RNG stream.
func (r *Registry) Lease(ctx context.Context, req LeaseRequest) (*LeaseGrant, error) {
	sh, err := r.Shard(ctx, req.Region)
	if err != nil {
		return nil, err
	}
	// Same placement as Report: merge a forwarded handoff before any
	// validation or charge, so the relayer can commit its export on any
	// response past region resolution.
	if req.Handoff != nil && sh.Budget != nil {
		sh.Budget.ImportHandoff(req.UID, req.Handoff)
	}
	tree := sh.Server.Tree()
	leaf := loctree.NodeID{Level: 0, Coord: req.Cell}
	if !tree.Contains(leaf) {
		return nil, fmt.Errorf("%w: cell (%d, %d) outside region %q",
			ErrBadReport, req.Cell.Q, req.Cell.R, sh.Spec.Name)
	}
	if err := req.Policy.Validate(tree.Height()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	root, ok := tree.AncestorAt(leaf, req.Policy.PrivacyLevel)
	if !ok {
		return nil, fmt.Errorf("%w: no ancestor of %v at privacy level %d",
			ErrBadReport, leaf, req.Policy.PrivacyLevel)
	}
	draws := req.Draws
	if draws < 1 {
		draws = 1
	}

	// Renewal first: a bad token must be refused before the budget is
	// touched (403 beats 429 — the client's next move differs).
	var prev budget.LeaseToken
	renewed := false
	now := time.Now()
	if len(req.Token) > 0 {
		prev, err = r.keyring.Verify(req.Token, now)
		if err != nil {
			r.lease.deniedToken.Add(1)
			return nil, err
		}
		if prev.UID != req.UID || prev.Region != sh.Spec.Name {
			r.lease.deniedToken.Add(1)
			return nil, fmt.Errorf("%w: token bound to user %d region %q",
				ErrBadLeaseToken, prev.UID, prev.Region)
		}
		renewed = true
	}

	grant := &LeaseGrant{
		Region:         sh.Spec.Name,
		SubtreeRoot:    root,
		PrecisionLevel: req.Policy.PrecisionLevel,
		DrawCap:        draws,
		Renewed:        renewed,
	}
	// ONE charge pre-pays the whole cap under linear composition: the
	// client's n draws cost exactly what n report requests would, but the
	// accountant is hit once per lease instead of once per draw. Unused
	// draws are forfeited, not refunded — over-charging is the
	// privacy-conservative direction, and it is what keeps the server
	// from ever trusting client draw accounting.
	if sh.Budget != nil {
		cost := sh.Spec.Epsilon * float64(draws)
		remaining, err := sh.Budget.Charge(req.UID, cost)
		if err != nil {
			r.lease.deniedBudget.Add(1)
			return nil, err
		}
		grant.Budgeted = true
		grant.EpsSpent = cost
		grant.EpsRemaining = remaining
	}

	key := session.Key{
		Region: sh.Spec.Name,
		UID:    req.UID,
		Seed:   req.Seed,
		Policy: session.PolicyFingerprint(req.Policy),
	}
	hasPrefs := len(req.Policy.Preferences) > 0
	sess, ok := sh.Sessions.Get(key)
	if !ok {
		plan, err := evalPrune(sh, tree, ReportRequest{Region: req.Region, Cell: req.Cell,
			UID: req.UID, Policy: req.Policy, Seed: req.Seed}, root, leaf)
		if err != nil {
			return nil, err
		}
		entry, err := sh.Server.ServeEntryCtx(ctx, root, len(plan.pruned))
		if err != nil {
			return nil, err
		}
		sess, err = sh.Sessions.GetOrCreate(key, func() (*session.Session, error) {
			return session.New(session.Config{
				Tree:    tree,
				Entry:   entry,
				Delta:   len(plan.pruned),
				Policy:  req.Policy,
				Pruned:  plan.pruned,
				Anchor:  plan.anchor,
				Priors:  sh.Server.Priors(),
				Seed:    req.Seed,
				Epsilon: sh.Spec.Epsilon,
			})
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
		}
	}
	// A renewal continues the stream where the leased window ends: for a
	// resident session FastForward is a no-op (DetachLease already burned
	// the cap), but a session rebuilt after eviction starts at position 0
	// and must catch up to the token's recorded end before detaching the
	// next window — that is what keeps one seed yielding one sequence
	// across lease generations and evictions alike.
	if renewed {
		sess.FastForward(prev.RNGPos + uint64(prev.DrawCap))
	}

	// Re-anchor + detach, with the same retry loop as Report: DetachLease
	// refuses (without burning RNG) when a concurrent request re-anchored
	// the shared session off this request's subtree.
	var bundle *codec.LeaseBundle
	for attempt := 0; ; attempt++ {
		if sess.Root() != root || (hasPrefs && sess.Anchor() != leaf) {
			plan, err := evalPrune(sh, tree, ReportRequest{Region: req.Region, Cell: req.Cell,
				UID: req.UID, Policy: req.Policy, Seed: req.Seed}, root, leaf)
			if err != nil {
				return nil, err
			}
			entry, err := sh.Server.ServeEntryCtx(ctx, root, len(plan.pruned))
			if err != nil {
				return nil, err
			}
			if err := sess.Rebind(session.Rebind{
				Entry:  entry,
				Delta:  len(plan.pruned),
				Pruned: plan.pruned,
				Anchor: plan.anchor,
			}); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
			}
			grant.Reanchored = true
		}
		if sess.Degraded() {
			d := len(sess.Pruned())
			if e, ok := sh.Server.PeekEntry(sess.Root(), d); ok && !e.Degraded {
				if _, err := sess.Upgrade(e, d); err != nil {
					return nil, err
				}
			}
		}
		bundle, err = sess.DetachLease(leaf, draws)
		if err == nil {
			break
		}
		if errors.Is(err, session.ErrOutsideSubtree) && attempt < 4 {
			continue
		}
		if errors.Is(err, session.ErrUnsampleable) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	grant.Degraded = bundle.Degraded
	grant.Pruned = len(bundle.Pruned)
	grant.RNGPos = bundle.RNGPos
	grant.Bundle, err = codec.EncodeLeaseBundle(bundle)
	if err != nil {
		return nil, err
	}
	expires := now.Add(r.leaseTTL)
	grant.ExpiresAt = expires.UnixMilli()
	grant.Token = r.keyring.Sign(budget.LeaseToken{
		UID:       req.UID,
		Region:    sh.Spec.Name,
		Root:      bundle.Root,
		Delta:     len(bundle.Pruned),
		Eps:       sh.Spec.Epsilon,
		DrawCap:   draws,
		RNGPos:    bundle.RNGPos,
		IssuedAt:  now.UnixMilli(),
		ExpiresAt: grant.ExpiresAt,
	})
	r.lease.issued.Add(1)
	if renewed {
		r.lease.renewed.Add(1)
	}
	r.lease.drawsGranted.Add(uint64(draws))
	return grant, nil
}
