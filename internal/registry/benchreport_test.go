package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"testing"
	"time"

	"corgi/internal/store"
)

// benchStoreDir precomputes a store for specs once per benchmark run.
func benchStoreDir(b *testing.B, specs []Spec, maxDelta int) string {
	b.Helper()
	dir := b.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	reg, err := New(specs, Options{WarmupDelta: maxDelta, Store: st})
	if err != nil {
		b.Fatal(err)
	}
	if err := reg.BootstrapAll(context.Background()); err != nil {
		b.Fatal(err)
	}
	reg.FlushStores()
	return dir
}

func benchSpecs(names ...string) []Spec {
	specs := make([]Spec, len(names))
	for i, name := range names {
		specs[i] = Spec{
			Name:      name,
			CenterLat: 37.765 + float64(i),
			CenterLng: -122.435,
			Height:    2, Iterations: 1, Targets: 3,
			UniformPriors: true,
		}
	}
	return specs
}

// BenchmarkStoreHydration measures loading a full precomputed region
// (every level, deltas 0..2) from disk into the entry cache — the work a
// warm restart pays instead of LP solves.
func BenchmarkStoreHydration(b *testing.B) {
	specs := benchSpecs("bench-hydrate")
	dir := benchStoreDir(b, specs, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		reg, err := New(specs, Options{Store: st})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		sh, err := reg.Shard(context.Background(), specs[0].Name)
		if err != nil {
			b.Fatal(err)
		}
		if est := sh.Server.Stats(); est.StoreHydrated == 0 {
			b.Fatal("benchmark hydrated nothing")
		}
	}
}

// BenchmarkWarmRestartFirstForest measures the full restart-to-first-byte
// path: bootstrap a shard over a populated store and serve one forest,
// with zero LP solves allowed.
func BenchmarkWarmRestartFirstForest(b *testing.B) {
	specs := benchSpecs("bench-restart")
	dir := benchStoreDir(b, specs, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		reg, err := New(specs, Options{Store: st})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		sh, err := reg.Shard(context.Background(), specs[0].Name)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sh.Server.GenerateForest(1, 0); err != nil {
			b.Fatal(err)
		}
		if est := sh.Server.Stats(); est.Solves != 0 {
			b.Fatalf("warm restart ran %d solves", est.Solves)
		}
	}
}

// benchReport is the BENCH_pr3.json shape consumed by CI: the store's
// warm-restart value in three numbers — serving throughput, cold-start
// tail latency over a populated store, and the LP solves a restart costs.
type benchReport struct {
	// WarmReqPerSec is closed-loop in-process GenerateForest throughput
	// over hydrated keys.
	WarmReqPerSec float64 `json:"req_per_sec"`
	// ColdStartP99Ms / ColdStartMaxMs are quantiles over the first request
	// of every (region, level, delta) on a freshly restarted, store-backed
	// registry (includes shard bootstrap for each region's first key).
	ColdStartP99Ms float64 `json:"cold_start_p99_ms"`
	ColdStartMaxMs float64 `json:"cold_start_max_ms"`
	// SolvesOnRestart counts LP solves during that cold sweep; a populated
	// store makes it 0.
	SolvesOnRestart uint64 `json:"solves_on_restart"`
	// HydratedEntries is how many matrices the restart loaded from disk.
	HydratedEntries uint64 `json:"hydrated_entries"`
	Regions         int    `json:"regions"`
	MaxDelta        int    `json:"max_delta"`
}

// TestBenchReportPR3 writes BENCH_pr3.json for the CI benchmark artifact.
// It is skipped unless BENCH_PR3_OUT names the output path, so regular
// test runs stay fast.
func TestBenchReportPR3(t *testing.T) {
	out := os.Getenv("BENCH_PR3_OUT")
	if out == "" {
		t.Skip("set BENCH_PR3_OUT=path to generate the benchmark report")
	}
	specs := fastSpecs("bench-a", "bench-b", "bench-c")
	const maxDelta = 1
	dir := t.TempDir()
	precompute(t, dir, specs, maxDelta)

	// Restart over the populated store and sweep every precomputed key
	// cold, timing each first request.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := New(specs, Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var coldMs []float64
	type key struct {
		name         string
		level, delta int
	}
	var keys []key
	for _, spec := range specs {
		for level := 1; level <= spec.Height; level++ {
			for delta := 0; delta <= maxDelta; delta++ {
				keys = append(keys, key{spec.Name, level, delta})
			}
		}
	}
	for _, k := range keys {
		start := time.Now()
		sh, err := reg.Shard(ctx, k.name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Server.GenerateForest(k.level, k.delta); err != nil {
			t.Fatal(err)
		}
		coldMs = append(coldMs, float64(time.Since(start))/float64(time.Millisecond))
	}
	agg := reg.AggregateStats()

	// Warm throughput: closed-loop requests over the now-hot keys.
	warmStart := time.Now()
	warmReqs := 0
	for time.Since(warmStart) < 2*time.Second {
		k := keys[warmReqs%len(keys)]
		sh, err := reg.Shard(ctx, k.name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Server.GenerateForest(k.level, k.delta); err != nil {
			t.Fatal(err)
		}
		warmReqs++
	}
	warmElapsed := time.Since(warmStart).Seconds()

	sort.Float64s(coldMs)
	rep := benchReport{
		WarmReqPerSec:   math.Round(float64(warmReqs) / warmElapsed),
		ColdStartP99Ms:  coldMs[int(0.99*float64(len(coldMs)-1))],
		ColdStartMaxMs:  coldMs[len(coldMs)-1],
		SolvesOnRestart: agg.Solves,
		HydratedEntries: agg.StoreHydrated,
		Regions:         len(specs),
		MaxDelta:        maxDelta,
	}
	if rep.SolvesOnRestart != 0 {
		t.Fatalf("benchmark restart ran %d solves over a populated store", rep.SolvesOnRestart)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_pr3: %s\n", data)
}
