package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"corgi/internal/budget"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
)

// mobilityBenchWorld bootstraps one region and returns a leaf from each of
// two level-1 subtrees, warming both forest entries so the measured loops
// see no LP solves.
func mobilityBenchWorld(tb testing.TB, opts Options) (*Registry, loctree.NodeID, loctree.NodeID) {
	tb.Helper()
	reg, err := New(fastSpecs("bench-mob"), opts)
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	sh, err := reg.Shard(ctx, "bench-mob")
	if err != nil {
		tb.Fatal(err)
	}
	tree := sh.Server.Tree()
	roots := tree.LevelNodes(1)
	leafA := tree.LeavesUnder(roots[0])[0]
	leafB := tree.LeavesUnder(roots[1])[0]
	for _, leaf := range []loctree.NodeID{leafA, leafB} {
		if _, err := reg.Report(ctx, ReportRequest{
			Region: "bench-mob", Cell: leaf.Coord, UID: 999,
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: 999,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return reg, leafA, leafB
}

// BenchmarkReportWarm is the stationary baseline: one user reporting from
// one cell, every request a warm session hit.
func BenchmarkReportWarm(b *testing.B) {
	reg, leafA, _ := mobilityBenchWorld(b, Options{})
	ctx := context.Background()
	req := ReportRequest{
		Region: "bench-mob", Cell: leafA.Coord, UID: 1,
		Policy: policy.Policy{PrivacyLevel: 1}, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := reg.Report(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		res.Release()
	}
}

// BenchmarkReportMobility is the moving-user worst case: every request
// crosses a subtree boundary, so every request re-anchors the session
// (preference-free: no attribute pass, but a fresh binding build per move).
func BenchmarkReportMobility(b *testing.B) {
	reg, leafA, leafB := mobilityBenchWorld(b, Options{})
	ctx := context.Background()
	cells := [2]hexgrid.Coord{leafA.Coord, leafB.Coord}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Report(ctx, ReportRequest{
			Region: "bench-mob", Cell: cells[i%2], UID: 1,
			Policy: policy.Policy{PrivacyLevel: 1}, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportBudgeted is the warm path with epsilon accounting on —
// the per-report cost of the sliding-window accountant in situ.
func BenchmarkReportBudgeted(b *testing.B) {
	reg, leafA, _ := mobilityBenchWorld(b, Options{
		Budget: budget.Config{LimitEps: 1e18, Window: time.Hour},
	})
	ctx := context.Background()
	req := ReportRequest{
		Region: "bench-mob", Cell: leafA.Coord, UID: 1,
		Policy: policy.Policy{PrivacyLevel: 1}, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Report(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPR5Report is the BENCH_pr5.json shape consumed by CI: the mobility
// layer's cost profile — warm vs re-anchor vs budgeted throughput through
// registry.Report, and the raw accountant charge cost.
type benchPR5Report struct {
	// WarmReportsPerSec / MobilityReportsPerSec / BudgetedReportsPerSec
	// are closed-loop rates: stationary user, user re-anchoring on every
	// request (subtree ping-pong), and stationary user with epsilon
	// accounting enabled.
	WarmReportsPerSec     float64 `json:"warm_reports_per_sec"`
	MobilityReportsPerSec float64 `json:"mobility_reports_per_sec"`
	BudgetedReportsPerSec float64 `json:"budgeted_reports_per_sec"`
	// ReanchorCostX = warm / mobility rate: how much a per-request
	// re-anchor costs relative to a warm hit.
	ReanchorCostX float64 `json:"reanchor_cost_x"`
	// BudgetOverheadPct = (warm - budgeted) / warm * 100: the accountant's
	// toll on the hot path (acceptance: < 25% at peak-slice rates).
	BudgetOverheadPct float64 `json:"budget_overhead_pct"`
	// AccountantNsPerCharge times budget.Accountant.Charge alone.
	AccountantNsPerCharge float64 `json:"accountant_ns_per_charge"`
}

// TestBenchReportPR5 writes BENCH_pr5.json for the CI benchmark artifact.
// It is skipped unless BENCH_PR5_OUT names the output path, so regular
// test runs stay fast.
func TestBenchReportPR5(t *testing.T) {
	out := os.Getenv("BENCH_PR5_OUT")
	if out == "" {
		t.Skip("set BENCH_PR5_OUT=path to generate the benchmark report")
	}
	ctx := context.Background()

	// Each configuration gets its own warmed registry; measurement then
	// interleaves short slices across configurations and keeps each one's
	// peak slice rate. Peak-of-interleaved-slices is robust against the
	// frequency scaling and background noise that back-to-back multi-
	// second windows pick up (and that made a naive A-then-B comparison
	// swing by 2x between runs).
	type probe struct {
		reg   *Registry
		cells [2]hexgrid.Coord
		best  float64
	}
	mkProbe := func(opts Options, move bool) *probe {
		reg, leafA, leafB := mobilityBenchWorld(t, opts)
		cells := [2]hexgrid.Coord{leafA.Coord, leafA.Coord}
		if move {
			cells[1] = leafB.Coord
		}
		return &probe{reg: reg, cells: cells}
	}
	probes := []*probe{
		mkProbe(Options{}, false), // warm
		mkProbe(Options{}, true),  // mobility
		mkProbe(Options{Budget: budget.Config{LimitEps: 1e18, Window: time.Hour}}, false), // budgeted
	}
	const (
		slices   = 6
		sliceLen = 300 * time.Millisecond
	)
	for s := 0; s < slices; s++ {
		for _, p := range probes {
			start := time.Now()
			n := 0
			for time.Since(start) < sliceLen {
				if _, err := p.reg.Report(ctx, ReportRequest{
					Region: "bench-mob", Cell: p.cells[n%2], UID: 1,
					Policy: policy.Policy{PrivacyLevel: 1}, Seed: 1,
				}); err != nil {
					t.Fatal(err)
				}
				n++
			}
			if r := float64(n) / time.Since(start).Seconds(); r > p.best {
				p.best = r
			}
		}
	}
	warm, mobility, budgeted := probes[0].best, probes[1].best, probes[2].best

	acct, err := budget.NewAccountant(budget.Config{LimitEps: 1e18, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const chargeIters = 500000
	start := time.Now()
	for i := 0; i < chargeIters; i++ {
		if _, err := acct.Charge(1, 1e-9); err != nil {
			t.Fatal(err)
		}
	}
	chargeNs := float64(time.Since(start).Nanoseconds()) / chargeIters

	overhead := (warm - budgeted) / warm * 100
	if overhead > 25 {
		t.Fatalf("budget accounting costs %.1f%% of warm throughput (acceptance: < 25%%)", overhead)
	}
	rep := benchPR5Report{
		WarmReportsPerSec:     math.Round(warm),
		MobilityReportsPerSec: math.Round(mobility),
		BudgetedReportsPerSec: math.Round(budgeted),
		ReanchorCostX:         math.Round(warm/mobility*10) / 10,
		BudgetOverheadPct:     math.Round(overhead*10) / 10,
		AccountantNsPerCharge: math.Round(chargeNs*10) / 10,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_pr5: %s\n", data)
}
