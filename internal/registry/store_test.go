package registry

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"corgi/internal/core"
	"corgi/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// precompute bootstraps every region with warmup over a store directory
// and flushes the write-backs — exactly what cmd/corgi-gen does.
func precompute(t *testing.T, dir string, specs []Spec, maxDelta int) {
	t.Helper()
	reg, err := New(specs, Options{WarmupDelta: maxDelta, Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.BootstrapAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	reg.FlushStores()
}

// TestNewRejectsRawEngineStore guards against a caller wiring one
// un-namespaced store into every shard: bare (level, delta) keys would
// cross-serve forests between regions.
func TestNewRejectsRawEngineStore(t *testing.T) {
	ms := struct{ core.ForestStore }{}
	_, err := New(fastSpecs("a", "b"), Options{Engine: core.EngineOptions{Store: ms}})
	if err == nil || !strings.Contains(err.Error(), "Options.Store") {
		t.Fatalf("raw Engine.Store accepted: %v", err)
	}
}

func TestSpecHashStableAndSensitive(t *testing.T) {
	a := Spec{Name: "x", CenterLat: 37.7, CenterLng: -122.4}
	if a.Hash() != a.Hash() {
		t.Fatal("hash not deterministic")
	}
	// Defaults are applied before hashing, so a spec written tersely and
	// one written with its defaults spelled out address the same
	// snapshots.
	explicit := a.withDefaults()
	if a.Hash() != explicit.Hash() {
		t.Error("defaulted and explicit specs must hash identically")
	}
	for _, changed := range []Spec{
		{Name: "y", CenterLat: 37.7, CenterLng: -122.4},
		{Name: "x", CenterLat: 37.8, CenterLng: -122.4},
		{Name: "x", CenterLat: 37.7, CenterLng: -122.4, Epsilon: 10},
		{Name: "x", CenterLat: 37.7, CenterLng: -122.4, Height: 3},
		{Name: "x", CenterLat: 37.7, CenterLng: -122.4, Seed: 99},
		{Name: "x", CenterLat: 37.7, CenterLng: -122.4, UniformPriors: true},
	} {
		if changed.Hash() == a.Hash() {
			t.Errorf("spec change %+v did not change the hash", changed)
		}
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash %q is not 64 hex chars", a.Hash())
	}
}

// TestWarmRestartServesWithZeroSolves is the acceptance test: a registry
// started over a store populated for its exact specs serves the first
// forest request for every precomputed (region, level, delta) with zero LP
// solves.
func TestWarmRestartServesWithZeroSolves(t *testing.T) {
	dir := t.TempDir()
	specs := fastSpecs("wr-a", "wr-b")
	const maxDelta = 1
	precompute(t, dir, specs, maxDelta)

	// "Restart": a brand-new registry over the same store directory.
	reg, err := New(specs, Options{Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range reg.Names() {
		sh, err := reg.Shard(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		for level := 1; level <= sh.Server.Tree().Height(); level++ {
			for delta := 0; delta <= maxDelta; delta++ {
				if _, err := sh.Server.GenerateForest(level, delta); err != nil {
					t.Fatalf("%s L%d d%d: %v", name, level, delta, err)
				}
			}
		}
		st := sh.Server.Stats()
		if st.Solves != 0 {
			t.Fatalf("region %s ran %d LP solves on a warm restart, want 0 (stats %+v)",
				name, st.Solves, st)
		}
		if st.StoreHydrated == 0 {
			t.Fatalf("region %s hydrated nothing from the store", name)
		}
	}
	// Beyond the precomputed range, the engine must still compute.
	sh, err := reg.Shard(ctx, specs[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Server.GenerateForest(1, maxDelta+1); err != nil {
		t.Fatal(err)
	}
	if st := sh.Server.Stats(); st.Solves == 0 {
		t.Fatal("un-precomputed delta must fall through to compute")
	}
}

// TestChangedSpecInvalidatesSnapshots changes a region's priors (seed)
// between precompute and restart and checks the stale snapshots are not
// served: the new spec hash addresses an empty corner of the store, so the
// engine recomputes everything.
func TestChangedSpecInvalidatesSnapshots(t *testing.T) {
	dir := t.TempDir()
	specs := fastSpecs("inv")
	precompute(t, dir, specs, 0)

	changed := fastSpecs("inv")
	changed[0].UniformPriors = false
	changed[0].SyntheticCheckIns = 600
	changed[0].Seed = 4242 // different priors -> different mechanisms
	if changed[0].Hash() == specs[0].Hash() {
		t.Fatal("test premise broken: spec change did not change hash")
	}
	reg, err := New(changed, Options{Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := reg.Shard(context.Background(), "inv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Server.GenerateForest(1, 0); err != nil {
		t.Fatal(err)
	}
	st := sh.Server.Stats()
	if st.StoreHydrated != 0 {
		t.Fatalf("stale snapshots hydrated under a changed spec: %+v", st)
	}
	if st.Solves == 0 {
		t.Fatalf("changed spec served stale snapshots instead of recomputing: %+v", st)
	}
}

// TestCorruptSnapshotFallsThroughToCompute truncates one snapshot on disk
// and checks a restarted registry recomputes that forest (and only
// re-persists it), while intact snapshots still hydrate.
func TestCorruptSnapshotFallsThroughToCompute(t *testing.T) {
	dir := t.TempDir()
	specs := fastSpecs("cor")
	precompute(t, dir, specs, 0)

	// Truncate the level-1 snapshot behind the store's back.
	specDir := filepath.Join(dir, specs[0].Hash()[:16])
	snapPath := filepath.Join(specDir, "L1_d0.snap")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	reg, err := New(specs, Options{Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := reg.Shard(context.Background(), "cor")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Server.GenerateForest(1, 0); err != nil {
		t.Fatal(err)
	}
	st := sh.Server.Stats()
	if st.Solves == 0 {
		t.Fatal("corrupt snapshot must fall through to compute")
	}
	// The height-2 tree has a level-2 snapshot too; that one must have
	// hydrated normally.
	if st.StoreHydrated == 0 {
		t.Fatalf("intact sibling snapshot did not hydrate: %+v", st)
	}
	// The recomputed forest write-back replaces the corrupt file.
	sh.Server.FlushStore()
	st2 := openStore(t, dir)
	if _, err := st2.Load(store.Key{SpecHash: specs[0].Hash(), Level: 1, Delta: 0}); err != nil {
		t.Fatalf("recomputed snapshot not re-persisted cleanly: %v", err)
	}
}

// TestPrecomputeIsIncremental reruns precompute over a populated store and
// checks nothing is re-solved — the corgi-gen rerun path.
func TestPrecomputeIsIncremental(t *testing.T) {
	dir := t.TempDir()
	specs := fastSpecs("inc")
	precompute(t, dir, specs, 0)

	reg, err := New(specs, Options{WarmupDelta: 0, Store: openStore(t, dir)})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.BootstrapAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	reg.FlushStores()
	if st := reg.AggregateStats(); st.Solves != 0 {
		t.Fatalf("precompute rerun re-solved %d forests", st.Solves)
	}
}
