package registry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"corgi/internal/budget"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/policy"
	"corgi/internal/session"
)

// ErrBadReport marks report requests rejected for caller-side reasons
// (cell outside the region, invalid policy, over-budget prune set), so the
// serving layer can answer 4xx instead of 5xx.
var ErrBadReport = errors.New("bad report request")

// ErrBudgetExhausted re-exports the accountant's rejection sentinel so
// serving layers can classify it (429 Too Many Requests) without importing
// internal/budget directly.
var ErrBudgetExhausted = budget.ErrBudgetExhausted

// ReportErrStatus maps a report-pipeline error to an HTTP-equivalent
// status and message. It is the single classification every transport
// shares — the HTTP handlers (internal/proto) and the binary stream
// transport (internal/stream) both answer from it, so a given failure is
// the same class on every wire: unknown regions are 404, caller-side
// rejections (bad cell, invalid policy, over-budget prune set) 422, an
// exhausted per-user epsilon budget 429 (the budget regenerates as the
// accounting window slides, so Too Many Requests is the honest class),
// a forged or expired lease token 403, interrupted work 5xx, and anything
// else a server fault.
func ReportErrStatus(err error) (int, string) {
	// A forwarded request's failure arrives as the transport error the
	// owner node answered with (stream.StatusError or the HTTP fallback's
	// equivalent); both carry the owner's classification, which must pass
	// through unchanged so a 429 on the owner is a 429 to the client.
	var hs interface{ HTTPStatus() int }
	if errors.As(err, &hs) {
		return hs.HTTPStatus(), err.Error()
	}
	switch {
	case errors.Is(err, ErrUnknownRegion):
		return http.StatusNotFound, err.Error()
	case errors.Is(err, ErrBudgetExhausted):
		return http.StatusTooManyRequests, err.Error()
	case errors.Is(err, ErrBadLeaseToken):
		// Forged, tampered, or expired lease tokens: unlike a budget
		// rejection, waiting does not clear the condition.
		return http.StatusForbidden, err.Error()
	case errors.Is(err, ErrBadReport):
		return http.StatusUnprocessableEntity, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "report timed out: " + err.Error()
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "request canceled"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// BudgetRemaining extracts the user's live epsilon headroom from a
// 429-class rejection (0, false for any other error), letting transports
// report eps_remaining on budget rejections without a second accountant
// query.
func BudgetRemaining(err error) (float64, bool) {
	var ex *budget.ExhaustedError
	if errors.As(err, &ex) {
		return ex.Remaining, true
	}
	// Forwarded 429s carry the owner's headroom on the transport error
	// (stream.StatusError's eps_remaining field) rather than as an
	// ExhaustedError.
	var br interface{ BudgetRemaining() (float64, bool) }
	if errors.As(err, &br) {
		return br.BudgetRemaining()
	}
	return 0, false
}

// ReportRequest is one user's report ask: which region, which true leaf
// cell, the inline customization policy, and the draw parameters. Serving
// this path means the true cell and the policy cross the wire — the
// trusted-serving trade-off the report pipeline makes against the paper's
// download-and-customize flow (see ARCHITECTURE.md); deployments that
// must keep Sec. 5's trust model use the forest routes unchanged.
type ReportRequest struct {
	Region string
	// Cell is the axial coordinate of the user's true leaf cell.
	Cell hexgrid.Coord
	// UID selects the per-user view of the region metadata (home/office/
	// outlier attributes), partitions session state between users, and is
	// the unit of epsilon-budget accounting.
	UID int64
	// Policy is the customization triple, evaluated server-side against
	// the shard's metadata.
	Policy policy.Policy
	// Seed fixes the session's RNG stream; a (UID, Seed, Policy) tuple
	// always replays the same draw sequence from a fresh server — even
	// across re-anchors, because the session's RNG survives moves.
	Seed int64
	// Count is how many reports to draw (min 1).
	Count int
	// Forwarded marks a request relayed by a peer node's cluster router:
	// the receiving node serves it locally (it is — or is standing in for —
	// the uid's owner) instead of re-forwarding, which is what makes the
	// routing loop-free.
	Forwarded bool
	// Handoff, on a forwarded request, carries the relaying node's live
	// window spend for this user; the owner merges it before charging so a
	// rebalanced or failed-over user cannot over-spend (see
	// internal/budget/handoff.go).
	Handoff *budget.Handoff
}

// ReportResult carries the drawn reports and the customization facts a
// client may want to display.
type ReportResult struct {
	Region         string
	SubtreeRoot    loctree.NodeID
	PrecisionLevel int
	// Pruned is how many locations the policy's preferences removed from
	// the obfuscation range.
	Pruned  int
	Reports []loctree.NodeID
	// Centers are the reported nodes' centers, index-aligned with
	// Reports, so the serving layer never needs a second shard lookup.
	Centers []geo.LatLng
	// Reanchored is true when this request moved the user's resident
	// session onto a different subtree (or preference anchor) — the
	// mobility slow path between a warm hit and a cold session build.
	Reanchored bool
	// Budgeted is true when the shard runs an epsilon accountant; then
	// EpsSpent is what this request charged (epsilon x draws, linear
	// composition) and EpsRemaining the user's window headroom after it.
	Budgeted     bool
	EpsSpent     float64
	EpsRemaining float64
	// Degraded is true when the reports were drawn from a planar-Laplace
	// fallback entry (degraded serving): the same epsilon bound holds, but
	// utility is below the LP optimum until the background solve lands and
	// the session upgrades.
	Degraded bool

	// bufs, non-nil, backs Reports and Centers with pooled slices;
	// Release returns them.
	bufs *drawBufs
}

// drawBufs is one pooled pair of per-draw result slices. The report hot
// path recycles them across requests (sync.Pool) instead of allocating a
// Reports and a Centers slice per call.
type drawBufs struct {
	nodes   []loctree.NodeID
	centers []geo.LatLng
}

var drawBufsPool = sync.Pool{New: func() any { return new(drawBufs) }}

// Release returns the result's pooled draw buffers for reuse. It is
// optional — a result never released is simply collected by the GC — but
// the serving transports call it after encoding, which is what keeps the
// warm report path allocation-flat. After Release the Reports and Centers
// slices must not be read.
func (res *ReportResult) Release() {
	b := res.bufs
	if b == nil {
		return
	}
	res.bufs, res.Reports, res.Centers = nil, nil, nil
	drawBufsPool.Put(b)
}

// grown returns s resized to n, reallocating only when capacity falls
// short — the pooled-buffer fast path is a reslice.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// prunePlan is the preference evaluation for one (user, subtree): the
// prune set S whose size is the delta the forest entry must absorb.
type prunePlan struct {
	pruned []loctree.NodeID
	anchor loctree.NodeID
}

// evalPrune evaluates the request policy's preferences over the subtree's
// leaves, anchored at the user's true cell. Preference-free policies prune
// nothing and anchor nowhere (their sessions are cell-independent).
func evalPrune(sh *Shard, tree *loctree.Tree, req ReportRequest, root, leaf loctree.NodeID) (prunePlan, error) {
	plan := prunePlan{pruned: []loctree.NodeID{}}
	if len(req.Policy.Preferences) == 0 {
		return plan, nil
	}
	subtreeLeaves := tree.LeavesUnder(root)
	attrs, err := sh.Attrs(int(req.UID), tree.Center(leaf), subtreeLeaves)
	if err != nil {
		return plan, err
	}
	pruned, err := mechanism.EvalPreferences(subtreeLeaves, req.Policy, attrs)
	if err != nil {
		return plan, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	if pruned == nil {
		pruned = []loctree.NodeID{}
	}
	return prunePlan{pruned: pruned, anchor: leaf}, nil
}

// Report runs the full report pipeline for one request: resolve the
// shard, validate cell and policy, bind (or re-anchor, or reuse) the
// user's session, charge the user's epsilon budget, and draw.
//
// Mobility makes this a three-temperature path:
//
//   - warm: the resident (UID, Seed, Policy) session already covers the
//     reported cell — O(1) draws, no attribute pass, no entry lookup;
//   - re-anchor: the user moved outside the bound subtree (or, for
//     preference-bearing policies, away from their attribute anchor):
//     preferences re-evaluate at the new location, the covering forest
//     entry is fetched (cache or solve), and the session rebinds onto it
//     without resetting its RNG stream;
//   - cold: no resident session — build one.
//
// Budget accounting happens up front, after request validation but before
// any session work: a rejected request consumes nothing from the RNG
// stream (a budget-capped user's replay stays aligned with an uncapped
// one) and pays for no entry generation or re-anchoring.
func (r *Registry) Report(ctx context.Context, req ReportRequest) (*ReportResult, error) {
	sh, err := r.Shard(ctx, req.Region)
	if err != nil {
		return nil, err
	}
	// Merge a forwarded budget handoff before validation and charging:
	// once the request is past region resolution the relaying node may
	// commit its export, so the spend must be counted here even if the
	// request itself is then rejected. Duplicate deliveries dedupe inside
	// ImportHandoff.
	if req.Handoff != nil && sh.Budget != nil {
		sh.Budget.ImportHandoff(req.UID, req.Handoff)
	}
	tree := sh.Server.Tree()
	leaf := loctree.NodeID{Level: 0, Coord: req.Cell}
	if !tree.Contains(leaf) {
		return nil, fmt.Errorf("%w: cell (%d, %d) outside region %q",
			ErrBadReport, req.Cell.Q, req.Cell.R, sh.Spec.Name)
	}
	if err := req.Policy.Validate(tree.Height()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	root, ok := tree.AncestorAt(leaf, req.Policy.PrivacyLevel)
	if !ok {
		return nil, fmt.Errorf("%w: no ancestor of %v at privacy level %d",
			ErrBadReport, leaf, req.Policy.PrivacyLevel)
	}

	count := req.Count
	if count < 1 {
		count = 1
	}
	res := &ReportResult{
		Region:         sh.Spec.Name,
		SubtreeRoot:    root,
		PrecisionLevel: req.Policy.PrecisionLevel,
	}
	// Charge epsilon under linear composition — each of the count draws
	// leaks the subtree matrix's epsilon — before any session work: a
	// rejected report never touches the RNG (so a budget-capped user's
	// replay stays aligned with an uncapped one), and an over-budget user
	// hammering moves cannot make the shard pay for entry generation and
	// re-anchoring it will never serve. The flip side: a request that
	// fails after admission (over-budget prune set, degenerate row) has
	// still consumed budget — over-charging is the privacy-conservative
	// direction.
	if sh.Budget != nil {
		cost := sh.Spec.Epsilon * float64(count)
		remaining, err := sh.Budget.Charge(req.UID, cost)
		if err != nil {
			return nil, err
		}
		res.Budgeted = true
		res.EpsSpent = cost
		res.EpsRemaining = remaining
	}

	// The session key is the user's stream identity — region, uid, seed,
	// policy — with no subtree in it: trajectories re-anchor the resident
	// session instead of fragmenting into per-subtree streams.
	key := session.Key{
		Region: sh.Spec.Name,
		UID:    req.UID,
		Seed:   req.Seed,
		Policy: session.PolicyFingerprint(req.Policy),
	}
	hasPrefs := len(req.Policy.Preferences) > 0
	reanchored := false
	sess, ok := sh.Sessions.Get(key)
	if !ok {
		// Cold: evaluate preferences once to size the prune budget the
		// entry must absorb (Sec. 5.3: the request's delta is |S|), then
		// bind a fresh session.
		plan, err := evalPrune(sh, tree, req, root, leaf)
		if err != nil {
			return nil, err
		}
		entry, err := sh.Server.ServeEntryCtx(ctx, root, len(plan.pruned))
		if err != nil {
			return nil, err
		}
		sess, err = sh.Sessions.GetOrCreate(key, func() (*session.Session, error) {
			return session.New(session.Config{
				Tree:    tree,
				Entry:   entry,
				Delta:   len(plan.pruned),
				Policy:  req.Policy,
				Pruned:  plan.pruned,
				Anchor:  plan.anchor,
				Priors:  sh.Server.Priors(),
				Seed:    req.Seed,
				Epsilon: sh.Spec.Epsilon,
			})
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
		}
	}
	// Re-anchor when the trajectory left the bound subtree, or — for
	// preference-bearing policies — moved off the attribute anchor (the
	// "distance" attribute is relative to the user's location, so the
	// prune set must re-evaluate even inside one subtree). This check also
	// covers the GetOrCreate admission race: a race-losing request whose
	// winner is anchored elsewhere re-anchors the shared session instead
	// of failing, which is the right semantics for one moving (uid, seed)
	// stream.
	//
	// The check-then-draw pair loops on ErrOutsideSubtree: a concurrent
	// request on the same stream can re-anchor the shared session between
	// this request's check and its draw, and each request must still be
	// served from its own cell — so retry the re-anchor rather than
	// surface a spurious rejection (whose budget was already charged). The
	// attempt bound only guards against a pathological livelock of
	// perfectly interleaved movers.
	bufs := drawBufsPool.Get().(*drawBufs)
	bufs.nodes = grown(bufs.nodes, count)
	for attempt := 0; ; attempt++ {
		if sess.Root() != root || (hasPrefs && sess.Anchor() != leaf) {
			plan, err := evalPrune(sh, tree, req, root, leaf)
			if err != nil {
				return nil, err
			}
			entry, err := sh.Server.ServeEntryCtx(ctx, root, len(plan.pruned))
			if err != nil {
				return nil, err
			}
			if err := sess.Rebind(session.Rebind{
				Entry:  entry,
				Delta:  len(plan.pruned),
				Pruned: plan.pruned,
				Anchor: plan.anchor,
			}); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
			}
			reanchored = true
		}
		// A session bound while its entry was degraded checks whether the
		// background LP solve has landed and upgrades in place before
		// drawing — the swap never touches the RNG stream, so replayed
		// sequences stay position-aligned across the upgrade.
		if sess.Degraded() {
			d := len(sess.Pruned())
			if e, ok := sh.Server.PeekEntry(sess.Root(), d); ok && !e.Degraded {
				if _, err := sess.Upgrade(e, d); err != nil {
					return nil, err
				}
			}
		}
		res.Degraded = sess.Degraded()
		err := sess.DrawCellNInto(leaf, bufs.nodes)
		if err == nil {
			break
		}
		if errors.Is(err, session.ErrOutsideSubtree) && attempt < 4 {
			continue
		}
		drawBufsPool.Put(bufs)
		if errors.Is(err, session.ErrUnsampleable) {
			// Degenerate matrix data is a server fault (5xx), not a
			// request problem.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	res.Reanchored = reanchored
	bufs.centers = grown(bufs.centers, count)
	for i, n := range bufs.nodes {
		bufs.centers[i] = tree.Center(n)
	}
	res.Pruned = len(sess.Pruned())
	res.Reports = bufs.nodes
	res.Centers = bufs.centers
	res.bufs = bufs
	return res, nil
}
