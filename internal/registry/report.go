package registry

import (
	"context"
	"errors"
	"fmt"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/policy"
	"corgi/internal/session"
)

// ErrBadReport marks report requests rejected for caller-side reasons
// (cell outside the region, invalid policy, over-budget prune set), so the
// serving layer can answer 4xx instead of 5xx.
var ErrBadReport = errors.New("bad report request")

// ReportRequest is one user's report ask: which region, which true leaf
// cell, the inline customization policy, and the draw parameters. Serving
// this path means the true cell and the policy cross the wire — the
// trusted-serving trade-off the report pipeline makes against the paper's
// download-and-customize flow (see ARCHITECTURE.md); deployments that
// must keep Sec. 5's trust model use the forest routes unchanged.
type ReportRequest struct {
	Region string
	// Cell is the axial coordinate of the user's true leaf cell.
	Cell hexgrid.Coord
	// UID selects the per-user view of the region metadata (home/office/
	// outlier attributes) and partitions session state between users.
	UID int64
	// Policy is the customization triple, evaluated server-side against
	// the shard's metadata.
	Policy policy.Policy
	// Seed fixes the session's RNG stream; a (UID, Seed, Policy, subtree)
	// tuple always replays the same draw sequence from a fresh server.
	Seed int64
	// Count is how many reports to draw (min 1).
	Count int
}

// ReportResult carries the drawn reports and the customization facts a
// client may want to display.
type ReportResult struct {
	Region         string
	SubtreeRoot    loctree.NodeID
	PrecisionLevel int
	// Pruned is how many locations the policy's preferences removed from
	// the obfuscation range.
	Pruned  int
	Reports []loctree.NodeID
	// Centers are the reported nodes' centers, index-aligned with
	// Reports, so the serving layer never needs a second shard lookup.
	Centers []geo.LatLng
}

// Report runs the full report pipeline for one request: resolve the
// shard, validate cell and policy, evaluate preferences against the
// shard's metadata to size the prune set, generate (or fetch from cache)
// the δ-prunable forest entry for the user's subtree, bind or reuse the
// (UID, Seed, Policy, subtree) session, and draw. The registry is the
// layer that owns all the pieces — engine shards, metadata, session
// caches — so the serving protocol stays a thin translation.
func (r *Registry) Report(ctx context.Context, req ReportRequest) (*ReportResult, error) {
	sh, err := r.Shard(ctx, req.Region)
	if err != nil {
		return nil, err
	}
	tree := sh.Server.Tree()
	leaf := loctree.NodeID{Level: 0, Coord: req.Cell}
	if !tree.Contains(leaf) {
		return nil, fmt.Errorf("%w: cell (%d, %d) outside region %q",
			ErrBadReport, req.Cell.Q, req.Cell.R, sh.Spec.Name)
	}
	if err := req.Policy.Validate(tree.Height()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	root, ok := tree.AncestorAt(leaf, req.Policy.PrivacyLevel)
	if !ok {
		return nil, fmt.Errorf("%w: no ancestor of %v at privacy level %d",
			ErrBadReport, leaf, req.Policy.PrivacyLevel)
	}

	// The session key is computable from the request alone, so a warm
	// user short-circuits here: no attribute pass, no preference
	// evaluation, no entry lookup — just the resident session's O(1)
	// draws. Preference-bearing policies additionally key on the true
	// cell: their attributes (distance in particular) anchor at the
	// user's location, so a moved user gets a freshly pruned session
	// instead of one anchored where they used to stand.
	key := session.Key{
		Region: sh.Spec.Name,
		UID:    req.UID,
		Seed:   req.Seed,
		Policy: session.PolicyFingerprint(req.Policy),
		Root:   root,
	}
	if len(req.Policy.Preferences) > 0 {
		key.Cell = leaf
	}
	sess, ok := sh.Sessions.Get(key)
	if !ok {
		// Preferences size the prune budget the entry must absorb
		// (Sec. 5.3: the request's delta is |S|). The evaluated prune set
		// rides into the session config so it is computed exactly once.
		pruned := []loctree.NodeID{}
		if len(req.Policy.Preferences) > 0 {
			subtreeLeaves := tree.LeavesUnder(root)
			attrs, err := sh.Attrs(int(req.UID), tree.Center(leaf), subtreeLeaves)
			if err != nil {
				return nil, err
			}
			pruned, err = core.EvalPreferences(subtreeLeaves, req.Policy, attrs)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
			}
			if pruned == nil {
				pruned = []loctree.NodeID{}
			}
		}
		entry, err := sh.Server.GenerateEntryCtx(ctx, root, len(pruned))
		if err != nil {
			return nil, err
		}
		sess, err = sh.Sessions.GetOrCreate(key, func() (*session.Session, error) {
			return session.New(session.Config{
				Tree:   tree,
				Entry:  entry,
				Delta:  len(pruned),
				Policy: req.Policy,
				Pruned: pruned,
				Priors: sh.Server.Priors(),
				Seed:   req.Seed,
			})
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
		}
	}

	count := req.Count
	if count < 1 {
		count = 1
	}
	reports, err := sess.DrawCellN(leaf, count)
	if err != nil {
		if errors.Is(err, session.ErrUnsampleable) {
			// Degenerate matrix data is a server fault (5xx), not a
			// request problem.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	centers := make([]geo.LatLng, len(reports))
	for i, n := range reports {
		centers[i] = tree.Center(n)
	}
	return &ReportResult{
		Region:         sh.Spec.Name,
		SubtreeRoot:    root,
		PrecisionLevel: req.Policy.PrecisionLevel,
		Pruned:         len(sess.Pruned()),
		Reports:        reports,
		Centers:        centers,
	}, nil
}
