package registry

import (
	"context"
	"testing"

	"corgi/internal/core"
	"corgi/internal/policy"
)

func degradedTestRegistry(t *testing.T) *Registry {
	t.Helper()
	// WarmupDelta -1 keeps bootstrap from precomputing the (level, 0)
	// forests — the whole point is hitting the cold path.
	reg, err := New(fastSpecs("deg-a"), Options{
		Engine:      core.EngineOptions{DegradedServing: true},
		WarmupDelta: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestReportDegradedColdThenUpgraded drives the degraded fast path through
// the full report pipeline: the first cold report is flagged degraded and
// served from the planar fallback; once the background solve lands, the
// resident session upgrades in place and reports stop being degraded.
func TestReportDegradedColdThenUpgraded(t *testing.T) {
	reg := degradedTestRegistry(t)
	ctx := context.Background()
	req := ReportRequest{
		Region: "deg-a",
		Cell:   centerCell(t, reg, "deg-a"),
		UID:    3,
		Policy: policy.Policy{PrivacyLevel: 1},
		Seed:   99,
	}
	res, err := reg.Report(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("cold report on a degraded-serving shard was not flagged degraded")
	}
	sh, _ := reg.Shard(ctx, "deg-a")
	sh.Server.WaitUpgrades()
	res2, err := reg.Report(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded {
		t.Fatal("report still degraded after the background solve landed")
	}
	if st := sh.Server.Stats(); st.DegradedBuilds != 1 || st.DegradedUpgrades != 1 {
		t.Fatalf("counters: builds=%d upgrades=%d, want 1/1", st.DegradedBuilds, st.DegradedUpgrades)
	}
}

// TestReportDegradedUpgradeKeepsStreamAligned is the trajectory-equivalence
// guarantee for degraded serving: a session that starts on the planar
// fallback and upgrades mid-stream produces the same post-upgrade draw
// sequence as one that was optimal from the first report. Each alias draw
// consumes exactly one RNG variate regardless of which matrix backs it, so
// the upgrade shifts no positions — draw k is draw k on both sessions.
func TestReportDegradedUpgradeKeepsStreamAligned(t *testing.T) {
	ctx := context.Background()
	mkReq := func() ReportRequest {
		return ReportRequest{
			UID:    11,
			Policy: policy.Policy{PrivacyLevel: 1},
			Seed:   1234,
			Count:  4,
		}
	}

	// Degraded stream: first request served from the fallback, then the
	// upgrade lands, then more draws.
	degReg := degradedTestRegistry(t)
	dreq := mkReq()
	dreq.Region = "deg-a"
	dreq.Cell = centerCell(t, degReg, "deg-a")
	first, err := degReg.Report(ctx, dreq)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Degraded {
		t.Fatal("first report was not degraded; test precondition broken")
	}
	sh, _ := degReg.Shard(ctx, "deg-a")
	sh.Server.WaitUpgrades()
	var degraded []string
	for i := 0; i < 3; i++ {
		res, err := degReg.Report(ctx, dreq)
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded {
			t.Fatalf("post-upgrade request %d still degraded", i)
		}
		for _, n := range res.Reports {
			degraded = append(degraded, n.String())
		}
	}

	// Optimal-from-the-start stream: same region spec (the registry derives
	// the seed from the name, so specs must match), same uid/seed/policy,
	// same request shape — but no degraded serving.
	optReg, err := New(fastSpecs("deg-a"), Options{WarmupDelta: -1})
	if err != nil {
		t.Fatal(err)
	}
	oreq := mkReq()
	oreq.Region = "deg-a"
	oreq.Cell = centerCell(t, optReg, "deg-a")
	if _, err := optReg.Report(ctx, oreq); err != nil { // burn request 1
		t.Fatal(err)
	}
	var optimal []string
	for i := 0; i < 3; i++ {
		res, err := optReg.Report(ctx, oreq)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range res.Reports {
			optimal = append(optimal, n.String())
		}
	}

	if len(degraded) != len(optimal) {
		t.Fatalf("draw counts differ: %d vs %d", len(degraded), len(optimal))
	}
	for i := range degraded {
		if degraded[i] != optimal[i] {
			t.Fatalf("post-upgrade draw %d differs: %s (upgraded stream) vs %s (optimal stream)",
				i, degraded[i], optimal[i])
		}
	}
}
