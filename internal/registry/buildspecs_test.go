package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func flagDefaults() SpecDefaults {
	return SpecDefaults{Epsilon: 15, Height: 2, LeafSpacingKm: 0.1, Iterations: 5, Targets: 20}
}

func TestBuildSpecsBuiltins(t *testing.T) {
	specs, err := BuildSpecs("", "", flagDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "sf" {
		t.Fatalf("default specs: %+v", specs)
	}

	specs, err = BuildSpecs("sf, nyc ,la", "", flagDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[1].Name != "nyc" {
		t.Fatalf("parsed specs: %+v", specs)
	}
	for _, s := range specs {
		if s.Epsilon != 15 || s.Height != 2 || s.Targets != 20 {
			t.Errorf("flag defaults not applied to %+v", s)
		}
	}

	if _, err := BuildSpecs("atlantis", "", flagDefaults()); err == nil ||
		!strings.Contains(err.Error(), "sf") {
		t.Errorf("unknown builtin must fail listing builtins, got %v", err)
	}
	if _, err := BuildSpecs(" , ", "", flagDefaults()); err == nil {
		t.Error("blank region list must fail")
	}
}

func TestBuildSpecsConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "regions.json")
	cfg := `[
		{"name": "alpha", "center_lat": 37.7, "center_lng": -122.4, "epsilon": 8},
		{"name": "beta", "center_lat": 40.7, "center_lng": -74.0, "height": 3}
	]`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	d := flagDefaults()
	d.CheckinsPath = "gowalla.txt"
	d.UniformPriors = true
	specs, err := BuildSpecs("", path, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs: %+v", specs)
	}
	// Explicit file values win; flag defaults fill the gaps.
	if specs[0].Epsilon != 8 || specs[0].Height != 2 {
		t.Errorf("alpha spec: %+v", specs[0])
	}
	if specs[1].Height != 3 || specs[1].Epsilon != 15 {
		t.Errorf("beta spec: %+v", specs[1])
	}
	// -checkins applies to the default (first) region only.
	if specs[0].CheckinsPath != "gowalla.txt" || specs[1].CheckinsPath != "" {
		t.Errorf("checkins wiring: %+v", specs)
	}
	if !specs[0].UniformPriors || !specs[1].UniformPriors {
		t.Error("-uniform-priors must apply everywhere")
	}

	if _, err := BuildSpecs("sf", path, flagDefaults()); err == nil {
		t.Error("-regions and -region-config together must fail")
	}
	if _, err := BuildSpecs("", filepath.Join(t.TempDir(), "missing.json"), flagDefaults()); err == nil {
		t.Error("missing config file must fail")
	}
}

// TestBuildSpecsHashesAgreeAcrossBinaries guards the corgi-gen /
// corgi-server store contract: assembling the same flags through
// BuildSpecs must produce identical spec hashes, whether the spec came
// from the builtin table or a config file.
func TestBuildSpecsHashesAgreeAcrossBinaries(t *testing.T) {
	genSpecs, err := BuildSpecs("sf,nyc", "", flagDefaults())
	if err != nil {
		t.Fatal(err)
	}
	srvSpecs, err := BuildSpecs("sf,nyc", "", flagDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := range genSpecs {
		if genSpecs[i].Hash() != srvSpecs[i].Hash() {
			t.Errorf("region %s: hashes diverge for identical flags", genSpecs[i].Name)
		}
	}
	// And a flag override must move the hash (the store is then
	// legitimately cold for the new parameters).
	d := flagDefaults()
	d.Epsilon = 10
	changed, err := BuildSpecs("sf,nyc", "", d)
	if err != nil {
		t.Fatal(err)
	}
	if changed[0].Hash() == genSpecs[0].Hash() {
		t.Error("changed -eps did not change the spec hash")
	}
}
