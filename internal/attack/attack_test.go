package attack

import (
	"math"
	"testing"

	"corgi/internal/obf"
)

func lineDist(i, j int) float64 { return math.Abs(float64(i - j)) }

func uniformPrior(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1
	}
	return p
}

func TestNewValidation(t *testing.T) {
	z := obf.Uniform(3)
	if _, err := New([]float64{1, 1}, z); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := New([]float64{1, -1, 1}, z); err == nil {
		t.Error("negative prior must fail")
	}
	if _, err := New([]float64{0, 0, 0}, z); err == nil {
		t.Error("zero prior must fail")
	}
}

func TestPosteriorIdentityMechanism(t *testing.T) {
	// Identity matrix: observing l reveals the location exactly.
	a, err := New(uniformPrior(4), obf.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	post := a.Posterior(2)
	for i, p := range post {
		want := 0.0
		if i == 2 {
			want = 1
		}
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("post[%d] = %v, want %v", i, p, want)
		}
	}
	if acc := a.MAPAccuracy(); math.Abs(acc-1) > 1e-12 {
		t.Errorf("identity MAP accuracy %v, want 1", acc)
	}
	if e := a.ExpectedInferenceError(lineDist); e != 0 {
		t.Errorf("identity inference error %v, want 0", e)
	}
}

func TestPosteriorUniformMechanism(t *testing.T) {
	// Uniform matrix: observation is useless; posterior equals prior.
	prior := []float64{0.5, 0.25, 0.25}
	a, err := New(prior, obf.Uniform(3))
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 3; l++ {
		post := a.Posterior(l)
		for i := range post {
			if math.Abs(post[i]-prior[i]) > 1e-12 {
				t.Errorf("post[%d|%d] = %v, want prior %v", i, l, post[i], prior[i])
			}
		}
	}
	// MAP accuracy = max prior mass.
	if acc := a.MAPAccuracy(); math.Abs(acc-0.5) > 1e-12 {
		t.Errorf("uniform MAP accuracy %v, want 0.5", acc)
	}
}

func TestPosteriorOutOfRange(t *testing.T) {
	a, _ := New(uniformPrior(3), obf.Uniform(3))
	if a.Posterior(-1) != nil || a.Posterior(3) != nil {
		t.Error("out-of-range observation must return nil")
	}
}

func TestExpectedInferenceErrorOrdering(t *testing.T) {
	// More obfuscation must not decrease adversary error.
	n := 5
	id, _ := New(uniformPrior(n), obf.Identity(n))
	un, _ := New(uniformPrior(n), obf.Uniform(n))
	if id.ExpectedInferenceError(lineDist) > un.ExpectedInferenceError(lineDist) {
		t.Error("identity must leak more than uniform")
	}
	if un.ExpectedInferenceError(lineDist) <= 0 {
		t.Error("uniform mechanism must have positive inference error")
	}
}

func TestPosteriorRatioBoundGeoInd(t *testing.T) {
	// A mechanism built as z[i][j] ∝ exp(-eps*d) satisfies 2eps-Geo-Ind, so
	// the ratio bound within distance 1 must be <= e^{2*eps}.
	const eps = 1.0
	n := 6
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = make([]float64, n)
		s := 0.0
		for j := 0; j < n; j++ {
			rows[i][j] = math.Exp(-eps * lineDist(i, j))
			s += rows[i][j]
		}
		for j := range rows[i] {
			rows[i][j] /= s
		}
	}
	z, err := obf.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(uniformPrior(n), z)
	if err != nil {
		t.Fatal(err)
	}
	bound := a.PosteriorRatioBound(lineDist, 1.0)
	if bound > math.Exp(2*eps)+1e-9 {
		t.Errorf("ratio bound %v exceeds e^{2eps} = %v", bound, math.Exp(2*eps))
	}
	if bound < 1 {
		t.Errorf("ratio bound %v below 1", bound)
	}
	// Identity has unbounded ratio in principle; with zero entries skipped
	// it reports 1, so use a near-identity matrix to see leakage.
	near, _ := obf.FromRows([][]float64{
		{0.98, 0.01, 0.01},
		{0.01, 0.98, 0.01},
		{0.01, 0.01, 0.98},
	})
	an, _ := New(uniformPrior(3), near)
	if b := an.PosteriorRatioBound(lineDist, 1.0); b < 50 {
		t.Errorf("near-identity ratio bound %v suspiciously small", b)
	}
}

func TestPriorWeightingMatters(t *testing.T) {
	// Skewed prior shifts the posterior even under a symmetric mechanism.
	z := obf.Uniform(2)
	a, _ := New([]float64{0.9, 0.1}, z)
	post := a.Posterior(0)
	if post[0] <= post[1] {
		t.Error("posterior must follow the skewed prior")
	}
}
