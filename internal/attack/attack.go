// Package attack implements a Bayesian inference adversary against
// obfuscation matrices — the attacker model implicit in the paper's
// Geo-Ind definition (Equ. 2 bounds exactly this posterior-to-prior
// shift). Given the public prior and a mechanism Z, the adversary observes
// a reported location and forms the posterior over true locations; its
// power is summarized as the expected inference error under an optimal
// (Bayes) remapping, the standard metric of Shokri et al. (paper refs
// [26, 27]). The ext-attack experiment compares CORGI's robust matrices
// against the non-robust baseline and planar Laplace under this adversary.
package attack

import (
	"fmt"
	"math"

	"corgi/internal/obf"
)

// Adversary holds the attacker's knowledge: the prior and the mechanism.
type Adversary struct {
	prior []float64
	z     *obf.Matrix
	// joint[i][l] = prior_i * z_il; marginal[l] = sum_i joint[i][l].
	joint    [][]float64
	marginal []float64
}

// New validates inputs and precomputes the joint distribution. The prior is
// normalized internally.
func New(prior []float64, z *obf.Matrix) (*Adversary, error) {
	n := z.Dim()
	if len(prior) != n {
		return nil, fmt.Errorf("attack: %d priors for a %d-dim matrix", len(prior), n)
	}
	sum := 0.0
	for i, v := range prior {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("attack: bad prior %v at %d", v, i)
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("attack: zero prior mass")
	}
	a := &Adversary{
		prior:    make([]float64, n),
		z:        z,
		joint:    make([][]float64, n),
		marginal: make([]float64, n),
	}
	for i, v := range prior {
		a.prior[i] = v / sum
	}
	for i := 0; i < n; i++ {
		a.joint[i] = make([]float64, n)
		row := z.Row(i)
		for l := 0; l < n; l++ {
			a.joint[i][l] = a.prior[i] * row[l]
			a.marginal[l] += a.joint[i][l]
		}
	}
	return a, nil
}

// Posterior returns Pr(X = i | Y = l) for all i. Reported locations with
// zero marginal probability return a nil slice.
func (a *Adversary) Posterior(l int) []float64 {
	if l < 0 || l >= len(a.marginal) || a.marginal[l] <= 0 {
		return nil
	}
	n := len(a.prior)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a.joint[i][l] / a.marginal[l]
	}
	return out
}

// PosteriorRatioBound returns the largest posterior-to-prior odds shift
//
//	max_{i,j,l} [post(i|l)/post(j|l)] / [prior_i/prior_j]
//
// restricted to pairs with distance <= maxDist under dist. By Equ. (2) an
// eps-Geo-Ind mechanism keeps this at most exp(eps*maxDist) over such
// pairs; measuring it after customization quantifies realized leakage.
func (a *Adversary) PosteriorRatioBound(dist func(i, j int) float64, maxDist float64) float64 {
	n := len(a.prior)
	worst := 1.0
	for l := 0; l < n; l++ {
		if a.marginal[l] <= 0 {
			continue
		}
		for i := 0; i < n; i++ {
			zi := a.z.At(i, l)
			if zi <= 0 {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j || dist(i, j) > maxDist {
					continue
				}
				zj := a.z.At(j, l)
				if zj <= 0 {
					continue
				}
				// post_i/post_j / (prior_i/prior_j) = z_il/z_jl.
				if r := zi / zj; r > worst {
					worst = r
				}
			}
		}
	}
	return worst
}

// ExpectedInferenceError returns the adversary's minimal expected distance
// error: for each observation l it picks the Bayes-optimal estimate
// argmin_x sum_i post(i|l) d(i, x) over the location set, and the errors
// are averaged over Pr(Y = l). Higher is better for the user.
func (a *Adversary) ExpectedInferenceError(dist func(i, j int) float64) float64 {
	n := len(a.prior)
	total := 0.0
	for l := 0; l < n; l++ {
		if a.marginal[l] <= 0 {
			continue
		}
		best := math.Inf(1)
		for x := 0; x < n; x++ {
			exp := 0.0
			for i := 0; i < n; i++ {
				if a.joint[i][l] > 0 {
					exp += a.joint[i][l] * dist(i, x)
				}
			}
			if exp < best {
				best = exp
			}
		}
		total += best // already weighted by joint = marginal * posterior
	}
	return total
}

// RemapError is the one-call form of the Bayes-optimal remapping metric:
// build the adversary over (prior, z) and return its expected inference
// error under dist (km when dist is km). It is the shared estimator behind
// the ext-attack experiment and the internal/eval frontier sweep — one
// implementation, so the two never drift.
func RemapError(prior []float64, z *obf.Matrix, dist func(i, j int) float64) (float64, error) {
	adv, err := New(prior, z)
	if err != nil {
		return 0, err
	}
	return adv.ExpectedInferenceError(dist), nil
}

// PrunedRemapError measures the remapping adversary against the customized
// mechanism: prune the given row/column indices (obf.Prune, the Sec. 4.3
// renormalization), restrict the prior and the distance to the surviving
// index space, and return the remap error there. This is the robustness
// probe of the paper's Sec. 5 evaluation — a robust matrix should keep its
// error high after pruning where a non-robust one collapses (or fails to
// renormalize at all, which surfaces as the error obf.Prune returns).
func PrunedRemapError(prior []float64, z *obf.Matrix, dist func(i, j int) float64, prune []int) (float64, error) {
	if len(prior) != z.Dim() {
		return 0, fmt.Errorf("attack: %d priors for a %d-dim matrix", len(prior), z.Dim())
	}
	pm, keep, err := z.Prune(prune)
	if err != nil {
		return 0, err
	}
	subPrior := make([]float64, len(keep))
	for ni, oi := range keep {
		subPrior[ni] = prior[oi]
	}
	subDist := func(i, j int) float64 { return dist(keep[i], keep[j]) }
	return RemapError(subPrior, pm, subDist)
}

// MAPAccuracy returns the probability that the maximum-a-posteriori guess
// equals the true location — a cruder but intuitive leakage measure.
func (a *Adversary) MAPAccuracy() float64 {
	n := len(a.prior)
	acc := 0.0
	for l := 0; l < n; l++ {
		if a.marginal[l] <= 0 {
			continue
		}
		best, bestP := -1, -1.0
		for i := 0; i < n; i++ {
			if a.joint[i][l] > bestP {
				best, bestP = i, a.joint[i][l]
			}
		}
		acc += a.joint[best][l]
	}
	return acc
}
