package attack

import (
	"math"
	"testing"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/obf"
	"corgi/internal/planar"
)

// planarFallback builds the degraded-serving fallback matrix exactly as
// core.Server.fallbackEntry does: discretized planar-Laplace rows over the
// cell centers. Returns the matrix and the pairwise distance function.
func planarFallback(t *testing.T, k int, eps float64) (*obf.Matrix, func(i, j int) float64) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var cells []hexgrid.Coord
	for r := 0; ; r++ {
		cells = hexgrid.Disk(hexgrid.Coord{}, r)
		if len(cells) >= k {
			break
		}
	}
	cells = cells[:k]
	centers := make([]geo.LatLng, k)
	for i, c := range cells {
		centers[i] = sys.Center(0, c)
	}
	dist := func(i, j int) float64 { return geo.Haversine(centers[i], centers[j]) }
	rows, err := planar.DiscretizedRows(k, dist, eps)
	if err != nil {
		t.Fatal(err)
	}
	m := obf.NewMatrix(k)
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	return m, dist
}

// TestPlanarFallbackPosteriorRatioBound pins the privacy claim degraded
// serving rests on: the discretized planar-Laplace fallback keeps the
// Bayesian adversary's posterior-to-prior odds shift within exp(eps*d) for
// EVERY pair of cells — not just graph-approximation neighbors — because
// the halved exponent in each row's weights absorbs both the numerator and
// the normalizer via the triangle inequality.
func TestPlanarFallbackPosteriorRatioBound(t *testing.T) {
	const eps = 15.0
	m, dist := planarFallback(t, 19, eps)
	n := m.Dim()

	adv, err := New(uniformPrior(n), m)
	if err != nil {
		t.Fatal(err)
	}
	// Audit at every distance scale present, not one maxDist: for each
	// pair, the realized odds shift z_il/z_jl must respect that pair's own
	// exp(eps*d_ij). The per-pair check is strictly stronger than a single
	// global-bound call.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			limit := math.Exp(eps * dist(i, j))
			for l := 0; l < n; l++ {
				r := m.At(i, l) / m.At(j, l)
				if r > limit*(1+1e-9) {
					t.Fatalf("pair (%d,%d) obs %d: ratio %v exceeds exp(eps*d)=%v", i, j, l, r, limit)
				}
			}
		}
	}
	// And the aggregate adversary-side view agrees.
	maxDist := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := dist(i, j); d > maxDist {
				maxDist = d
			}
		}
	}
	if bound := adv.PosteriorRatioBound(dist, maxDist); bound > math.Exp(eps*maxDist)*(1+1e-9) {
		t.Fatalf("global posterior ratio bound %v exceeds exp(eps*maxDist)", bound)
	}
}

// TestPlanarFallbackPrunableForEveryDelta pins the property that makes the
// fallback safe to serve for ANY requested prune budget: pruning an
// arbitrary cell subset and renormalizing (the session's row-wise
// customization, Sec. 4.3) preserves the exp(eps*d) bound, because every
// surviving pair's rows lose mass over the same kept-column set and each
// row's removed mass is bounded by the same triangle-inequality factor.
// Robust LP matrices guarantee this only for |S| <= delta; the fallback
// guarantees it unconditionally.
func TestPlanarFallbackPrunableForEveryDelta(t *testing.T) {
	const eps = 15.0
	m, dist := planarFallback(t, 19, eps)
	n := m.Dim()

	// An aggressive prune far beyond any reserved budget: drop 8 of 19.
	drop := []int{0, 2, 5, 7, 9, 11, 14, 17}
	pruned, keep, err := m.Prune(drop)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Dim() != n-len(drop) {
		t.Fatalf("pruned dim %d, want %d", pruned.Dim(), n-len(drop))
	}
	pd := func(i, j int) float64 { return dist(keep[i], keep[j]) }
	for i := 0; i < pruned.Dim(); i++ {
		for j := 0; j < pruned.Dim(); j++ {
			if i == j {
				continue
			}
			limit := math.Exp(eps * pd(i, j))
			for l := 0; l < pruned.Dim(); l++ {
				if r := pruned.At(i, l) / pruned.At(j, l); r > limit*(1+1e-9) {
					t.Fatalf("pruned pair (%d,%d) obs %d: ratio %v exceeds exp(eps*d)=%v", i, j, l, r, limit)
				}
			}
		}
	}
}
