package attack

import (
	"math"
	"testing"

	"corgi/internal/core"
	"corgi/internal/geo"
	"corgi/internal/graphx"
	"corgi/internal/hexgrid"
	"corgi/internal/obf"
)

// robustInstance generates a small robust matrix the way the serving
// engine does (graph-approximated Geo-Ind, Algorithm-1 robustness rounds)
// so the adversary audits the same artifact the report sessions sample
// from.
func robustInstance(t *testing.T, k, delta, iterations int) (*core.Instance, *core.Result, []hexgrid.Coord) {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var cells []hexgrid.Coord
	for r := 0; ; r++ {
		cells = hexgrid.Disk(hexgrid.Coord{}, r)
		if len(cells) >= k {
			break
		}
	}
	cells = cells[:k]
	priors := make([]float64, k)
	for i := range priors {
		priors[i] = 1
	}
	targets, probs, err := core.RandomCellTargets(sys, cells, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.NewInstance(sys, cells, priors, targets, probs, graphx.WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Generate(core.Params{
		Epsilon: 15, Delta: delta, Iterations: iterations, UseGraphApprox: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst, res, cells
}

// TestPosteriorRatioBoundAfterPruning ties the robustness audit to the
// report-session path: a δ-prunable robust matrix, pruned by |S| <= δ
// locations and renormalized exactly as a session's row-wise customization
// does (Sec. 4.3), must still keep the adversary's posterior-to-prior odds
// shift within exp(eps*d) over the surviving constraint pairs (Equ. 2).
func TestPosteriorRatioBoundAfterPruning(t *testing.T) {
	const (
		eps   = 15.0
		delta = 2
	)
	inst, res, _ := robustInstance(t, 12, delta, 4)

	// Prune two cells — within the reserved budget.
	drop := []int{3, 7}
	pruned, keep, err := res.Matrix.Prune(drop)
	if err != nil {
		t.Fatal(err)
	}

	// The surviving Geo-Ind pairs, re-indexed to the pruned matrix.
	newIdx := map[int]int{}
	for ni, oi := range keep {
		newIdx[oi] = ni
	}
	var surviving []obf.Pair
	maxDist := 0.0
	for _, p := range inst.NeighborPairs() {
		ni, iok := newIdx[p.I]
		nj, jok := newIdx[p.J]
		if iok && jok {
			surviving = append(surviving, obf.Pair{I: ni, J: nj, Dist: p.Dist})
			if p.Dist > maxDist {
				maxDist = p.Dist
			}
		}
	}
	if len(surviving) == 0 {
		t.Fatal("pruning removed every constraint pair")
	}

	// The robust matrix must audit clean after this customization; the
	// posterior bound below is only meaningful against a clean audit.
	if rep := pruned.CheckGeoInd(surviving, eps, 1e-6); rep.Violated != 0 {
		t.Fatalf("robust matrix violates %d/%d constraints after pruning %d <= delta=%d locations (max excess %v)",
			rep.Violated, rep.Total, len(drop), delta, rep.MaxExcess)
	}

	// Bayesian adversary over the pruned mechanism and the renormalized
	// prior restricted to surviving cells.
	dist := func(i, j int) float64 { return inst.Dist(keep[i], keep[j]) }
	adv, err := New(uniformPrior(len(keep)), pruned)
	if err != nil {
		t.Fatal(err)
	}
	// Only neighbor pairs sit within maxDist in a hex layout (the second
	// ring starts at ~sqrt(3) spacings), so Equ. 2's bound applies to
	// every pair the adversary ranges over.
	bound := adv.PosteriorRatioBound(dist, maxDist*1.0001)
	limit := math.Exp(eps * maxDist)
	if bound > limit*(1+1e-6) {
		t.Fatalf("posterior ratio bound %v exceeds exp(eps*maxDist) = %v after pruning", bound, limit)
	}
	if bound < 1 {
		t.Fatalf("degenerate ratio bound %v", bound)
	}

	// The non-robust baseline (delta = 0) pruned identically shows why the
	// budget matters: its realized leakage is at least the robust one and
	// typically breaches the limit (Fig. 12's comparison).
	_, res0, _ := robustInstance(t, 12, 0, 1)
	pruned0, _, err := res0.Matrix.Prune(drop)
	if err == nil {
		adv0, err := New(uniformPrior(len(keep)), pruned0)
		if err != nil {
			t.Fatal(err)
		}
		bound0 := adv0.PosteriorRatioBound(dist, maxDist*1.0001)
		t.Logf("posterior ratio bound: robust %.4f vs non-robust %.4f (limit %.4f)", bound, bound0, limit)
		if bound0 < bound*(1-1e-9) {
			t.Errorf("non-robust matrix leaks less (%v) than the robust one (%v) after pruning", bound0, bound)
		}
	}
}
