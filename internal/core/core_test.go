package core

import (
	"math"
	"testing"

	"corgi/internal/geo"
	"corgi/internal/graphx"
	"corgi/internal/hexgrid"
	"corgi/internal/obf"
)

// buildInstance creates a K-cell instance over a hex disk with uniform
// priors and nTargets random targets.
func buildInstance(t testing.TB, k int, nTargets int, seed int64) *Instance {
	t.Helper()
	sys, err := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Smallest disk with >= k cells, truncated by ring order.
	var cells []hexgrid.Coord
	for r := 0; ; r++ {
		cells = hexgrid.Disk(hexgrid.Coord{}, r)
		if len(cells) >= k {
			break
		}
	}
	cells = cells[:k]
	priors := make([]float64, k)
	for i := range priors {
		priors[i] = 1
	}
	targets, probs, err := RandomCellTargets(sys, cells, nTargets, seed)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(sys, cells, priors, targets, probs, graphx.WeightPaper)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewInstanceValidation(t *testing.T) {
	sys, _ := hexgrid.NewSystem(geo.SanFrancisco.Center(), 0.1)
	cells := hexgrid.Disk(hexgrid.Coord{}, 1)
	priors := []float64{1, 1, 1, 1, 1, 1, 1}
	tgt := []geo.LatLng{sys.Center(0, cells[0])}
	tp := []float64{1}
	if _, err := NewInstance(sys, cells[:1], priors[:1], tgt, tp, graphx.WeightPaper); err == nil {
		t.Error("single cell must fail")
	}
	if _, err := NewInstance(sys, cells, priors[:3], tgt, tp, graphx.WeightPaper); err == nil {
		t.Error("prior length mismatch must fail")
	}
	if _, err := NewInstance(sys, cells, priors, nil, nil, graphx.WeightPaper); err == nil {
		t.Error("no targets must fail")
	}
	if _, err := NewInstance(sys, cells, priors, tgt, []float64{1, 1}, graphx.WeightPaper); err == nil {
		t.Error("target prob mismatch must fail")
	}
	if _, err := NewInstance(sys, cells, []float64{1, 1, 1, 1, 1, 1, -1}, tgt, tp, graphx.WeightPaper); err == nil {
		t.Error("negative prior must fail")
	}
	// Disconnected cells.
	bad := []hexgrid.Coord{{Q: 0, R: 0}, {Q: 50, R: 50}}
	if _, err := NewInstance(sys, bad, []float64{1, 1}, tgt, tp, graphx.WeightPaper); err == nil {
		t.Error("disconnected cells must fail")
	}
}

func TestGenerateNonRobustSmall(t *testing.T) {
	inst := buildInstance(t, 7, 7, 1)
	res, err := inst.Generate(Params{Epsilon: 15, UseGraphApprox: true})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix
	if err := m.CheckStochastic(1e-6); err != nil {
		t.Fatalf("not stochastic: %v", err)
	}
	// The generated matrix satisfies the constraints it was built with.
	rep := m.CheckGeoInd(inst.NeighborPairs(), 15, 1e-6)
	if rep.Violated != 0 {
		t.Fatalf("fresh matrix violates %d constraints (max %g)", rep.Violated, rep.MaxExcess)
	}
	if res.QualityLoss < 0 {
		t.Fatalf("negative quality loss %v", res.QualityLoss)
	}
	if len(res.Trace) != 1 {
		t.Fatalf("non-robust trace length %d", len(res.Trace))
	}
}

func TestGenerateParamValidation(t *testing.T) {
	inst := buildInstance(t, 7, 3, 2)
	if _, err := inst.Generate(Params{Epsilon: 0}); err == nil {
		t.Error("zero epsilon must fail")
	}
	if _, err := inst.Generate(Params{Epsilon: 15, Delta: -1}); err == nil {
		t.Error("negative delta must fail")
	}
	if _, err := inst.Generate(Params{Epsilon: 15, Delta: 2, Iterations: 0}); err == nil {
		t.Error("robust without iterations must fail")
	}
}

func TestGenerateRobustSmall(t *testing.T) {
	inst := buildInstance(t, 7, 7, 3)
	res, err := inst.Generate(Params{Epsilon: 15, Delta: 2, Iterations: 4, UseGraphApprox: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 5 {
		t.Fatalf("trace length %d, want 5", len(res.Trace))
	}
	if err := res.Matrix.CheckStochastic(1e-6); err != nil {
		t.Fatalf("not stochastic: %v", err)
	}
	// Robustness costs quality: the robust loss should be >= the
	// non-robust (first-trace) loss, within solver tolerance.
	if res.QualityLoss < res.Trace[0]-1e-6 {
		t.Errorf("robust loss %v below non-robust %v", res.QualityLoss, res.Trace[0])
	}
}

func TestQualityLossUniformVsIdentity(t *testing.T) {
	inst := buildInstance(t, 19, 10, 4)
	idLoss, err := inst.QualityLoss(obf.Identity(19))
	if err != nil {
		t.Fatal(err)
	}
	if idLoss != 0 {
		t.Errorf("identity matrix loss = %v, want 0", idLoss)
	}
	uLoss, err := inst.QualityLoss(obf.Uniform(19))
	if err != nil {
		t.Fatal(err)
	}
	if uLoss <= 0 {
		t.Errorf("uniform matrix loss = %v, want > 0", uLoss)
	}
	if _, err := inst.QualityLoss(obf.Uniform(5)); err == nil {
		t.Error("dimension mismatch must fail")
	}
}

func TestPairSets(t *testing.T) {
	inst := buildInstance(t, 19, 5, 5)
	np := inst.NeighborPairs()
	ap := inst.AllPairs()
	if len(ap) != 19*18 {
		t.Fatalf("AllPairs = %d", len(ap))
	}
	if len(np) != 2*inst.Graph().NumEdges() {
		t.Fatalf("NeighborPairs = %d, want %d", len(np), 2*inst.Graph().NumEdges())
	}
	if len(np) >= len(ap) {
		t.Error("approximation must reduce pairs at K=19")
	}
	// Neighbor pairs come in both directions.
	seen := map[[2]int]bool{}
	for _, p := range np {
		seen[[2]int{p.I, p.J}] = true
	}
	for _, p := range np {
		if !seen[[2]int{p.J, p.I}] {
			t.Fatalf("pair (%d,%d) missing its reverse", p.I, p.J)
		}
	}
}

func TestEpsilonMonotonicity(t *testing.T) {
	// Higher epsilon (weaker constraint) must not increase quality loss.
	inst := buildInstance(t, 19, 10, 6)
	prev := math.Inf(1)
	for _, eps := range []float64{10, 15, 20} {
		res, err := inst.Generate(Params{Epsilon: eps, UseGraphApprox: true, DWExact: true})
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if res.QualityLoss > prev+1e-6 {
			t.Errorf("quality loss increased with epsilon: %v -> %v", prev, res.QualityLoss)
		}
		prev = res.QualityLoss
	}
}

func TestGraphApproxMatchesFullSmall(t *testing.T) {
	// At K=7 both constraint sets should produce feasible matrices with the
	// approximation's loss >= the full LP's (shrunken feasible region).
	inst := buildInstance(t, 7, 7, 7)
	full, err := inst.Generate(Params{Epsilon: 15, UseGraphApprox: false})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := inst.Generate(Params{Epsilon: 15, UseGraphApprox: true})
	if err != nil {
		t.Fatal(err)
	}
	if approx.QualityLoss < full.QualityLoss-1e-6 {
		t.Errorf("approximated loss %v below full-LP loss %v", approx.QualityLoss, full.QualityLoss)
	}
	if full.Constraints <= approx.Constraints {
		t.Errorf("full LP must have more constraints: %d vs %d", full.Constraints, approx.Constraints)
	}
	// The full-LP matrix satisfies every pairwise constraint.
	rep := full.Matrix.CheckGeoInd(inst.AllPairs(), 15, 1e-6)
	if rep.Violated != 0 {
		t.Errorf("full LP matrix violates %d pairwise constraints", rep.Violated)
	}
}

func TestRandomTargets(t *testing.T) {
	inst := buildInstance(t, 19, 5, 8)
	pts, probs, err := RandomTargets(inst, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 || len(probs) != 10 {
		t.Fatalf("got %d targets", len(pts))
	}
	if _, _, err := RandomTargets(inst, 0, 3); err == nil {
		t.Error("zero targets must fail")
	}
	if _, _, err := RandomTargets(inst, 20, 3); err == nil {
		t.Error("more targets than cells must fail")
	}
	// Determinism.
	pts2, _, _ := RandomTargets(inst, 10, 3)
	for i := range pts {
		if pts[i] != pts2[i] {
			t.Fatal("targets not deterministic")
		}
	}
}

// TestPaperScaleK49 exercises the paper's main configuration (K = 49,
// eps = 15/km) end to end and reports timing; it is the canary for solver
// performance at scale.
func TestPaperScaleK49(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale solve skipped in -short")
	}
	inst := buildInstance(t, 49, 49, 9)
	res, err := inst.Generate(Params{Epsilon: 15, UseGraphApprox: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("K=49 non-robust: loss=%.4f constraints=%d lp-iters=%d elapsed=%v",
		res.QualityLoss, res.Constraints, res.LPIterations, res.Elapsed)
	if err := res.Matrix.CheckStochastic(1e-6); err != nil {
		t.Fatalf("not stochastic: %v", err)
	}
	rep := res.Matrix.CheckGeoInd(inst.NeighborPairs(), 15, 1e-6)
	if rep.Violated != 0 {
		t.Fatalf("violations on fresh K=49 matrix: %d (max %g)", rep.Violated, rep.MaxExcess)
	}
}
