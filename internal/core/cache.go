package core

import (
	"container/list"
	"sync"
)

// entryCache is a bounded, byte-accounted LRU over generated forest entries.
// Each entry's footprint is estimated from its matrix dimension, constraint
// pairs, and generation trace; inserting past the bound evicts from the cold
// end until the bound holds again, so the cache never exceeds its capacity —
// even a single oversized entry is dropped rather than stored.
type entryCache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[forestKey]*list.Element

	// alias receives each admitted entry's alias-table accounting; evicted
	// entries detach from it so AliasBytes tracks only LRU-pinned tables.
	alias *aliasMetrics

	hits, misses, evictions uint64
}

type cacheItem struct {
	key   forestKey
	entry *ForestEntry
	size  int64
}

func newEntryCache(capacity int64, alias *aliasMetrics) *entryCache {
	c := &entryCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[forestKey]*list.Element{},
		alias:    alias,
	}
	if alias != nil {
		// Alias builds on cached entries re-run the bound check, so a
		// steady state with no new admissions still cannot outgrow the
		// capacity. Wired before the cache is shared.
		alias.enforce = c.enforceBound
	}
	return c
}

// entrySizeBytes estimates the resident footprint of one forest entry. The
// matrix dominates (8 bytes per cell); pairs, leaves, and the trace are
// accounted so tiny matrices still carry a realistic floor.
func entrySizeBytes(e *ForestEntry) int64 {
	size := int64(256) // struct headers, map slot, list element
	if e.Matrix != nil {
		d := int64(e.Matrix.Dim())
		size += 8 * d * d
	}
	size += 24 * int64(len(e.Pairs))
	size += 24 * int64(len(e.Leaves))
	if e.Result != nil {
		size += 8 * int64(len(e.Result.Trace))
	}
	return size
}

func (c *entryCache) get(key forestKey) (*ForestEntry, bool) {
	return c.lookup(key, true)
}

// peek is get without touching the hit/miss counters. The engine uses it
// for second-look checks on paths that already recorded their miss (the
// post-semaphore re-check and snapshot-load followers), so the counters
// keep meaning "one per request" instead of double-counting.
func (c *entryCache) peek(key forestKey) (*ForestEntry, bool) {
	return c.lookup(key, false)
}

func (c *entryCache) lookup(key forestKey, count bool) (*ForestEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		if count {
			c.misses++
		}
		return nil, false
	}
	if count {
		c.hits++
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).entry, true
}

// add inserts an entry and evicts least-recently-used items until the byte
// bound holds. The new entry itself is evicted if it alone exceeds the bound.
// Admitted entries attach to the engine's alias counters; evicted entries
// detach, so alias bytes shrink in step with the matrices they shadow.
//
// The bound covers the cache's full resident footprint: entry sizes plus
// the alias tables lazily built on cached entries (the engine-wide alias
// byte counter tracks exactly the attached set). Both admissions and
// alias builds (via aliasMetrics.enforce) run the eviction loop, so the
// bound holds in steady state too, not just at the next add.
func (c *entryCache) add(key forestKey, e *ForestEntry) {
	size := entrySizeBytes(e)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		if !it.entry.Degraded || e.Degraded {
			// Lost a race with another inserter of the same (or better)
			// quality; refresh recency only.
			c.ll.MoveToFront(el)
			return
		}
		// Optimal entry arriving over a degraded fallback: swap in place so
		// readers atomically switch to the LP-optimal matrix.
		c.bytes -= it.size
		it.entry.detachAliasMetrics()
		if c.alias != nil {
			e.attachAliasMetrics(c.alias)
		}
		it.entry = e
		it.size = size
		c.bytes += size
		c.ll.MoveToFront(el)
		c.evictLocked()
		return
	}
	if c.alias != nil {
		e.attachAliasMetrics(c.alias)
	}
	el := c.ll.PushFront(&cacheItem{key: key, entry: e, size: size})
	c.items[key] = el
	c.bytes += size
	c.evictLocked()
}

// enforceBound evicts cold entries until the byte bound (entries + alias
// tables) holds again; alias builds on cached entries call it.
func (c *entryCache) enforceBound() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictLocked()
}

// evictLocked runs the LRU eviction loop. Caller holds c.mu.
func (c *entryCache) evictLocked() {
	for c.bytes+c.aliasBytes() > c.capacity && c.ll.Len() > 0 {
		back := c.ll.Back()
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.bytes -= it.size
		c.evictions++
		it.entry.detachAliasMetrics()
	}
}

// aliasBytes reads the resident footprint of alias tables attached to
// cached entries (0 when the cache has no alias accounting).
func (c *entryCache) aliasBytes() int64 {
	if c.alias == nil {
		return 0
	}
	return c.alias.bytes.Load()
}

type cacheStats struct {
	hits, misses, evictions uint64
	bytes                   int64
	entries                 int
}

func (c *entryCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		hits:      c.hits,
		misses:    c.misses,
		evictions: c.evictions,
		bytes:     c.bytes,
		entries:   c.ll.Len(),
	}
}
