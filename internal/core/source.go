package core

import (
	"fmt"

	"corgi/internal/graphx"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/obf"
	"corgi/internal/sample"
)

// ForestEntry satisfies mechanism.Source directly: sessions, leases, and
// the user-side Algorithm 4 path all bind forest entries through the one
// mechanism.Binding implementation, sharing this entry's engine-accounted
// alias cache on the unpruned fast path.
var _ mechanism.Source = (*ForestEntry)(nil)

// SubtreeRoot implements mechanism.Source.
func (e *ForestEntry) SubtreeRoot() loctree.NodeID { return e.Root }

// SupportLeaves implements mechanism.Source.
func (e *ForestEntry) SupportLeaves() []loctree.NodeID { return e.Leaves }

// Dim implements mechanism.Source; 0 (the invalid-source signal) covers
// nil entries and entries without a matrix.
func (e *ForestEntry) Dim() int {
	if e == nil || e.Matrix == nil {
		return 0
	}
	return e.Matrix.Dim()
}

// MatrixRow implements mechanism.Source.
func (e *ForestEntry) MatrixRow(i int) []float64 { return e.Matrix.Row(i) }

// SharedAliasRow implements mechanism.Source via the entry's lazy,
// byte-accounted per-row alias cache.
func (e *ForestEntry) SharedAliasRow(i int) (*sample.Alias, error) { return e.AliasRow(i) }

// IsDegraded implements mechanism.Source.
func (e *ForestEntry) IsDegraded() bool { return e.Degraded }

// buildForestMatrix is the factory body behind the forest-optimal and
// forest-nonrobust registrations: the same LP pipeline Server.generate
// runs, over an explicit cell set.
func buildForestMatrix(cfg mechanism.BuildConfig, delta int) (*obf.Matrix, error) {
	inst, err := NewInstance(cfg.Sys, cfg.Cells, cfg.Priors, cfg.Targets, cfg.TargetProbs, graphx.WeightPaper)
	if err != nil {
		return nil, err
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 5
	}
	res, err := inst.Generate(Params{
		Epsilon:        cfg.Epsilon,
		Delta:          delta,
		Iterations:     iters,
		UseGraphApprox: true,
	})
	if err != nil {
		return nil, fmt.Errorf("core: forest build: %w", err)
	}
	return res.Matrix, nil
}

func init() {
	// The LP-optimal mechanisms register from core (which owns the
	// solver), keeping the dependency arrow pointing at mechanism.
	mechanism.Register(mechanism.Factory{
		Name:   "forest-optimal",
		Robust: true,
		Build: func(cfg mechanism.BuildConfig) (*obf.Matrix, error) {
			return buildForestMatrix(cfg, cfg.Delta)
		},
	})
	mechanism.Register(mechanism.Factory{
		Name:   "forest-nonrobust",
		Robust: false,
		Build: func(cfg mechanism.BuildConfig) (*obf.Matrix, error) {
			return buildForestMatrix(cfg, 0)
		},
	})
}
