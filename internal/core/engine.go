package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultCacheBytes bounds the entry cache when EngineOptions.CacheBytes is
// unset: 256 MiB holds every (level, delta) combination of the paper's
// height-3 evaluation tree with room to spare.
const DefaultCacheBytes = 256 << 20

// EngineOptions tunes the concurrent generation engine behind a Server.
type EngineOptions struct {
	// Workers bounds concurrent subtree LP solves. <= 0 uses GOMAXPROCS.
	Workers int
	// CacheBytes bounds the generated-entry LRU cache. <= 0 uses
	// DefaultCacheBytes.
	CacheBytes int64
}

// EngineStats is a point-in-time snapshot of the engine's counters, exposed
// over /v1/stats by internal/proto.
type EngineStats struct {
	// Hits/Misses/Evictions describe the bounded entry cache.
	Hits, Misses, Evictions uint64
	// CacheBytes/CacheEntries/CacheCapacity describe its current occupancy.
	CacheBytes    int64
	CacheEntries  int
	CacheCapacity int64
	// Solves counts completed subtree generations (LP solves actually run;
	// cache hits and singleflight followers do not increment it).
	Solves uint64
	// InFlight is the number of subtree generations running right now.
	InFlight int64
	// Workers is the configured solve-concurrency bound.
	Workers int
}

// Merge accumulates o into s. The multi-region registry uses it to fold
// per-shard engine counters into one aggregate view: counters and byte
// figures add, and Workers/CacheCapacity become fleet-wide totals rather
// than per-shard bounds.
func (s *EngineStats) Merge(o EngineStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.CacheBytes += o.CacheBytes
	s.CacheEntries += o.CacheEntries
	s.CacheCapacity += o.CacheCapacity
	s.Solves += o.Solves
	s.InFlight += o.InFlight
	s.Workers += o.Workers
}

// engine is the concurrent forest-generation core: a semaphore-bounded
// worker pool over independent subtree solves (each subtree's matrix is
// independent, Algorithm 3), per-key singleflight so concurrent requests for
// the same (node, delta) share one LP solve, and a byte-bounded LRU cache of
// finished entries.
type engine struct {
	workers int
	sem     chan struct{}
	cache   *entryCache

	mu     sync.Mutex
	flight map[forestKey]*flightCall

	solves   atomic.Uint64
	inFlight atomic.Int64

	// generate runs one uncached subtree solve; wired to Server.generate.
	generate func(ctx context.Context, root forestKey) (*ForestEntry, error)
}

// flightCall is one in-progress generation that concurrent requesters for
// the same key wait on instead of solving again.
type flightCall struct {
	done  chan struct{}
	entry *ForestEntry
	err   error
}

func newEngine(opts EngineOptions, generate func(context.Context, forestKey) (*ForestEntry, error)) *engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	capacity := opts.CacheBytes
	if capacity <= 0 {
		capacity = DefaultCacheBytes
	}
	return &engine{
		workers:  workers,
		sem:      make(chan struct{}, workers),
		cache:    newEntryCache(capacity),
		flight:   map[forestKey]*flightCall{},
		generate: generate,
	}
}

// entry returns the forest entry for key, consulting the cache, then joining
// any in-flight solve for the same key, then solving under the worker-pool
// semaphore. A waiter whose own context expires abandons the wait. A solve
// runs under its leader's context, so a follower that inherits the leader's
// cancellation (the leader's client disconnected or timed out) retries with
// its own, still-healthy context instead of failing.
func (en *engine) entry(ctx context.Context, key forestKey) (*ForestEntry, error) {
	for {
		e, err := en.entryOnce(ctx, key)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return e, err
	}
}

func (en *engine) entryOnce(ctx context.Context, key forestKey) (*ForestEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e, ok := en.cache.get(key); ok {
		return e, nil
	}
	en.mu.Lock()
	if call, ok := en.flight[key]; ok {
		en.mu.Unlock()
		select {
		case <-call.done:
			return call.entry, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	en.flight[key] = call
	en.mu.Unlock()

	call.entry, call.err = en.solve(ctx, key)
	en.mu.Lock()
	delete(en.flight, key)
	en.mu.Unlock()
	close(call.done)
	return call.entry, call.err
}

// solve runs one generation under the worker-pool semaphore and publishes
// the result to the cache.
func (en *engine) solve(ctx context.Context, key forestKey) (*ForestEntry, error) {
	select {
	case en.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-en.sem }()

	en.inFlight.Add(1)
	defer en.inFlight.Add(-1)
	e, err := en.generate(ctx, key)
	if err != nil {
		return nil, err
	}
	en.solves.Add(1)
	en.cache.add(key, e)
	return e, nil
}

// forest fans the privacy level's nodes out across the worker pool and
// assembles the result. The first error cancels the remaining solves.
func (en *engine) forest(ctx context.Context, keys []forestKey) (map[forestKey]*ForestEntry, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	out := make(map[forestKey]*ForestEntry, len(keys))
	for _, key := range keys {
		wg.Add(1)
		go func(key forestKey) {
			defer wg.Done()
			e, err := en.entry(ctx, key)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				return
			}
			out[key] = e
		}(key)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func (en *engine) stats() EngineStats {
	cs := en.cache.stats()
	return EngineStats{
		Hits:          cs.hits,
		Misses:        cs.misses,
		Evictions:     cs.evictions,
		CacheBytes:    cs.bytes,
		CacheEntries:  cs.entries,
		CacheCapacity: en.cache.capacity,
		Solves:        en.solves.Load(),
		InFlight:      en.inFlight.Load(),
		Workers:       en.workers,
	}
}
