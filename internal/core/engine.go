package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultCacheBytes bounds the entry cache when EngineOptions.CacheBytes is
// unset: 256 MiB holds every (level, delta) combination of the paper's
// height-3 evaluation tree with room to spare.
const DefaultCacheBytes = 256 << 20

// StoredForestRef names one persisted forest: a (privacy level, delta)
// pair within a server's own region.
type StoredForestRef struct {
	Level, Delta int
}

// ForestStore is the engine's second tier: a durable home for completed
// forests that outlives the process. internal/store provides the on-disk
// implementation; the engine only assumes these semantics:
//
//   - Load returns the complete entry set of a previously saved (level,
//     delta) forest, or (nil, nil) when no usable snapshot exists — absent,
//     corrupt, and stale snapshots all look identical to the engine, which
//     simply falls through to compute.
//   - Save persists a complete level's entries; it must be atomic enough
//     that a concurrent Load never observes a partial forest.
//   - List enumerates the (level, delta) forests currently stored, for
//     warm-restart hydration.
type ForestStore interface {
	Load(ctx context.Context, level, delta int) ([]*ForestEntry, error)
	Save(ctx context.Context, level, delta int, entries []*ForestEntry) error
	List() ([]StoredForestRef, error)
}

// EngineOptions tunes the concurrent generation engine behind a Server.
type EngineOptions struct {
	// Workers bounds concurrent subtree LP solves. <= 0 uses GOMAXPROCS.
	Workers int
	// CacheBytes bounds the generated-entry LRU cache. <= 0 uses
	// DefaultCacheBytes.
	CacheBytes int64
	// Store, when non-nil, is the durable second tier: cache misses fall
	// through to it before solving, completed forests write back to it
	// asynchronously, and Server.HydrateFromStore preloads it into the
	// cache at startup.
	Store ForestStore
	// DegradedServing enables the planar-Laplace fast path on
	// Server.ServeEntryCtx: a request whose entry misses both the cache and
	// the store is answered immediately with a discretized planar-Laplace
	// fallback entry (same ε bound, lower utility) while the real LP solve
	// runs in the background and atomically replaces it on completion.
	DegradedServing bool
}

// EngineStats is a point-in-time snapshot of the engine's counters, exposed
// over /v1/stats by internal/proto.
type EngineStats struct {
	// Hits/Misses/Evictions describe the bounded entry cache.
	Hits, Misses, Evictions uint64
	// CacheBytes/CacheEntries/CacheCapacity describe its current occupancy.
	CacheBytes    int64
	CacheEntries  int
	CacheCapacity int64
	// Solves counts completed subtree generations (LP solves actually run;
	// cache hits, store hits, and singleflight followers do not increment
	// it).
	Solves uint64
	// InFlight is the number of subtree generations running right now.
	InFlight int64
	// Workers is the configured solve-concurrency bound.
	Workers int
	// StoreHits/StoreMisses count snapshot lookups on the cache-miss path;
	// StoreWrites counts completed asynchronous write-backs; StoreHydrated
	// counts entries preloaded by HydrateFromStore. All zero when no store
	// is attached.
	StoreHits, StoreMisses, StoreWrites, StoreHydrated uint64
	// AliasBuilds/AliasHits count lazy per-row alias-table constructions
	// and reuses on the report path; AliasBytes is the resident footprint
	// of tables attached to currently cached entries (eviction subtracts).
	AliasBuilds, AliasHits uint64
	AliasBytes             int64
	// DegradedBuilds counts planar-Laplace fallback entries built on the
	// fast path; DegradedHits counts requests served from a cached fallback
	// while its real solve was still running; DegradedUpgrades counts
	// background solves that completed and replaced a fallback with the
	// optimal entry. All zero unless DegradedServing is enabled.
	DegradedBuilds, DegradedHits, DegradedUpgrades uint64
	// WarmAttempts/WarmAccepts aggregate the simplex warm-start counters of
	// every generation run by this engine (see Result.WarmAttempts).
	WarmAttempts, WarmAccepts uint64
}

// Merge accumulates o into s. The multi-region registry uses it to fold
// per-shard engine counters into one aggregate view: counters and byte
// figures add, and Workers/CacheCapacity become fleet-wide totals rather
// than per-shard bounds.
func (s *EngineStats) Merge(o EngineStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.CacheBytes += o.CacheBytes
	s.CacheEntries += o.CacheEntries
	s.CacheCapacity += o.CacheCapacity
	s.Solves += o.Solves
	s.InFlight += o.InFlight
	s.Workers += o.Workers
	s.StoreHits += o.StoreHits
	s.StoreMisses += o.StoreMisses
	s.StoreWrites += o.StoreWrites
	s.StoreHydrated += o.StoreHydrated
	s.AliasBuilds += o.AliasBuilds
	s.AliasHits += o.AliasHits
	s.AliasBytes += o.AliasBytes
	s.DegradedBuilds += o.DegradedBuilds
	s.DegradedHits += o.DegradedHits
	s.DegradedUpgrades += o.DegradedUpgrades
	s.WarmAttempts += o.WarmAttempts
	s.WarmAccepts += o.WarmAccepts
}

// engine is the concurrent forest-generation core: a semaphore-bounded
// worker pool over independent subtree solves (each subtree's matrix is
// independent, Algorithm 3), per-key singleflight so concurrent requests for
// the same (node, delta) share one LP solve, and a two-tier read path over
// finished entries — a byte-bounded in-memory LRU backed by an optional
// durable snapshot store consulted before any solve runs.
type engine struct {
	workers int
	sem     chan struct{}
	cache   *entryCache
	store   ForestStore

	mu     sync.Mutex
	flight map[forestKey]*flightCall

	// storeMu guards the snapshot-load singleflight and the set of (level,
	// delta) forests known to be persisted (or being persisted), which
	// dedupes write-backs.
	storeMu     sync.Mutex
	storeFlight map[StoredForestRef]*storeCall
	persisted   map[StoredForestRef]bool
	writeWG     sync.WaitGroup

	// upMu guards the set of keys with a background optimal solve running;
	// upgradeWG lets tests and shutdown wait for upgrades to land.
	upMu      sync.Mutex
	upgrading map[forestKey]bool
	upgradeWG sync.WaitGroup

	solves           atomic.Uint64
	inFlight         atomic.Int64
	storeHits        atomic.Uint64
	storeMisses      atomic.Uint64
	storeWrites      atomic.Uint64
	storeHydrated    atomic.Uint64
	degradedBuilds   atomic.Uint64
	degradedHits     atomic.Uint64
	degradedUpgrades atomic.Uint64
	warmAttempts     atomic.Uint64
	warmAccepts      atomic.Uint64

	// alias aggregates the per-row alias-table counters of every cached
	// entry (builds, reuse hits, resident bytes); the entry cache attaches
	// it on admission and detaches on eviction.
	alias aliasMetrics

	// generate runs one uncached subtree solve; wired to Server.generate.
	generate func(ctx context.Context, root forestKey) (*ForestEntry, error)
	// fallback builds a degraded (planar-Laplace) entry in milliseconds;
	// nil unless EngineOptions.DegradedServing is set. Wired to
	// Server.fallbackEntry.
	fallback func(ctx context.Context, root forestKey) (*ForestEntry, error)
}

// flightCall is one in-progress generation that concurrent requesters for
// the same key wait on instead of solving again.
type flightCall struct {
	done  chan struct{}
	entry *ForestEntry
	err   error
}

// storeCall is one in-progress snapshot load that concurrent cache misses
// for sibling keys of the same (level, delta) forest wait on instead of
// re-reading the file.
type storeCall struct {
	done chan struct{}
}

func newEngine(opts EngineOptions, generate func(context.Context, forestKey) (*ForestEntry, error)) *engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	capacity := opts.CacheBytes
	if capacity <= 0 {
		capacity = DefaultCacheBytes
	}
	en := &engine{
		workers:     workers,
		sem:         make(chan struct{}, workers),
		store:       opts.Store,
		flight:      map[forestKey]*flightCall{},
		storeFlight: map[StoredForestRef]*storeCall{},
		persisted:   map[StoredForestRef]bool{},
		upgrading:   map[forestKey]bool{},
		generate:    generate,
	}
	en.cache = newEntryCache(capacity, &en.alias)
	return en
}

// entry returns the forest entry for key, consulting the cache, then joining
// any in-flight solve for the same key, then solving under the worker-pool
// semaphore. A waiter whose own context expires abandons the wait. A solve
// runs under its leader's context, so a follower that inherits the leader's
// cancellation (the leader's client disconnected or timed out) retries with
// its own, still-healthy context instead of failing.
func (en *engine) entry(ctx context.Context, key forestKey) (*ForestEntry, error) {
	for {
		e, err := en.entryOnce(ctx, key)
		if err != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return e, err
	}
}

func (en *engine) entryOnce(ctx context.Context, key forestKey) (*ForestEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// A cached degraded fallback does not satisfy the real path: fall
	// through to the solve, whose published result replaces the fallback.
	if e, ok := en.cache.get(key); ok && !e.Degraded {
		return e, nil
	}
	en.mu.Lock()
	if call, ok := en.flight[key]; ok {
		en.mu.Unlock()
		select {
		case <-call.done:
			return call.entry, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	en.flight[key] = call
	en.mu.Unlock()

	call.entry, call.err = en.solve(ctx, key)
	en.mu.Lock()
	delete(en.flight, key)
	en.mu.Unlock()
	close(call.done)
	return call.entry, call.err
}

// solve resolves one cache miss under the worker-pool semaphore: first a
// re-check of the cache (a sibling's snapshot load may have filled it while
// this key queued for a slot), then the durable store, then a real LP
// solve whose result is published to the cache.
func (en *engine) solve(ctx context.Context, key forestKey) (*ForestEntry, error) {
	select {
	case en.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-en.sem }()

	if e, ok := en.cache.peek(key); ok && !e.Degraded {
		return e, nil
	}
	if en.store != nil {
		if e, ok := en.storeFetch(ctx, key); ok {
			return e, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	en.inFlight.Add(1)
	defer en.inFlight.Add(-1)
	e, err := en.generate(ctx, key)
	if err != nil {
		return nil, err
	}
	en.solves.Add(1)
	if e.Result != nil {
		en.warmAttempts.Add(uint64(e.Result.WarmAttempts))
		en.warmAccepts.Add(uint64(e.Result.WarmAccepts))
	}
	en.cache.add(key, e)
	return e, nil
}

// entryFast is the degraded-serving read path: any cached entry (optimal or
// fallback) answers immediately; a full miss is answered with a freshly
// built planar-Laplace fallback in milliseconds while the real LP solve is
// kicked off in the background. Without a configured fallback it is exactly
// entry. Store snapshots still short-circuit the fallback — a stored forest
// loads in milliseconds too and is optimal.
func (en *engine) entryFast(ctx context.Context, key forestKey) (*ForestEntry, error) {
	if en.fallback == nil {
		return en.entry(ctx, key)
	}
	if e, ok := en.cache.get(key); ok {
		if e.Degraded {
			en.degradedHits.Add(1)
			en.startUpgrade(key) // retried here in case an earlier upgrade failed
		}
		return e, nil
	}
	if en.store != nil {
		if e, ok := en.storeFetch(ctx, key); ok {
			return e, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	e, err := en.fallback(ctx, key)
	if err != nil {
		return nil, err
	}
	en.degradedBuilds.Add(1)
	en.cache.add(key, e)
	en.startUpgrade(key)
	// The add may have lost the race with a concurrent optimal publication;
	// serve whatever the cache settled on.
	if cur, ok := en.cache.peek(key); ok {
		return cur, nil
	}
	return e, nil
}

// startUpgrade launches (at most one) background optimal solve for key. The
// solve runs detached from the triggering request's context — the optimal
// entry is wanted regardless of whether that client sticks around — and its
// publication replaces the cached fallback via the cache's degraded-swap
// rule. Resident sessions pick the optimal entry up on their next report.
func (en *engine) startUpgrade(key forestKey) {
	en.upMu.Lock()
	if en.upgrading[key] {
		en.upMu.Unlock()
		return
	}
	en.upgrading[key] = true
	en.upMu.Unlock()
	en.upgradeWG.Add(1)
	go func() {
		defer en.upgradeWG.Done()
		_, err := en.entry(context.Background(), key)
		en.upMu.Lock()
		delete(en.upgrading, key)
		en.upMu.Unlock()
		if err == nil {
			en.degradedUpgrades.Add(1)
		}
	}()
}

// waitUpgrades blocks until every background upgrade started so far has
// finished (successfully or not).
func (en *engine) waitUpgrades() { en.upgradeWG.Wait() }

// storeFetch consults the durable store for the forest containing key.
// Snapshot files hold whole (level, delta) forests, so a hit publishes
// every sibling entry to the cache at once; concurrent misses for siblings
// of the same forest share one file read (per-forest singleflight).
func (en *engine) storeFetch(ctx context.Context, key forestKey) (*ForestEntry, bool) {
	ref := StoredForestRef{Level: key.node.Level, Delta: key.delta}
	en.storeMu.Lock()
	if call, ok := en.storeFlight[ref]; ok {
		en.storeMu.Unlock()
		select {
		case <-call.done:
		case <-ctx.Done():
			return nil, false
		}
		// The leader published any snapshot entries to the cache. Skip a
		// degraded fallback a concurrent fast path may have slipped in: a
		// snapshot hit is always optimal.
		if e, ok := en.cache.peek(key); ok && !e.Degraded {
			return e, true
		}
		return nil, false
	}
	call := &storeCall{done: make(chan struct{})}
	en.storeFlight[ref] = call
	en.storeMu.Unlock()

	var hit *ForestEntry
	entries, err := en.store.Load(ctx, ref.Level, ref.Delta)
	if err == nil && len(entries) > 0 {
		en.storeHits.Add(1)
		en.markPersisted(ref)
		for _, e := range entries {
			k := forestKey{node: e.Root, delta: ref.Delta}
			en.cache.add(k, e)
			if k == key {
				hit = e
			}
		}
	} else {
		en.storeMisses.Add(1)
	}
	en.storeMu.Lock()
	delete(en.storeFlight, ref)
	en.storeMu.Unlock()
	close(call.done)
	return hit, hit != nil
}

// markPersisted records that ref is durably stored (or being stored).
func (en *engine) markPersisted(ref StoredForestRef) {
	en.storeMu.Lock()
	en.persisted[ref] = true
	en.storeMu.Unlock()
}

// persistAsync writes a completed forest back to the durable store without
// blocking the request that generated it. Write-backs dedupe on (level,
// delta): the first completed forest claims the slot, and a failed write
// releases it so a later request can retry. The entries slice is the
// assembled forest itself — not a cache read — so LRU eviction racing the
// write can never truncate the snapshot.
func (en *engine) persistAsync(level, delta int, entries []*ForestEntry) {
	if en.store == nil || len(entries) == 0 {
		return
	}
	// Never persist a degraded fallback: snapshots are a durable tier and
	// must only ever hold LP-optimal matrices. (Forest assembly uses the
	// real path, so this only fires on a logic regression.)
	for _, e := range entries {
		if e.Degraded {
			return
		}
	}
	ref := StoredForestRef{Level: level, Delta: delta}
	en.storeMu.Lock()
	if en.persisted[ref] {
		en.storeMu.Unlock()
		return
	}
	en.persisted[ref] = true
	en.storeMu.Unlock()

	en.writeWG.Add(1)
	go func() {
		defer en.writeWG.Done()
		// Detached from any request context: the snapshot outlives the
		// request that happened to complete the forest first.
		if err := en.store.Save(context.Background(), level, delta, entries); err != nil {
			en.storeMu.Lock()
			delete(en.persisted, ref)
			en.storeMu.Unlock()
			return
		}
		en.storeWrites.Add(1)
	}()
}

// flushStore blocks until every write-back started so far has finished.
func (en *engine) flushStore() { en.writeWG.Wait() }

// hydrate preloads every stored forest into the entry cache, so a restarted
// process serves its first request for any precomputed (level, delta) with
// zero LP solves. Unreadable or corrupt snapshots are skipped (the adapter
// already reports them as absent); the cache's byte bound still applies, so
// hydrating more than the cache holds simply evicts the coldest entries.
func (en *engine) hydrate(ctx context.Context) (int, error) {
	if en.store == nil {
		return 0, nil
	}
	refs, err := en.store.List()
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, ref := range refs {
		if err := ctx.Err(); err != nil {
			return loaded, err
		}
		entries, err := en.store.Load(ctx, ref.Level, ref.Delta)
		if err != nil || len(entries) == 0 {
			continue
		}
		en.markPersisted(ref)
		for _, e := range entries {
			en.cache.add(forestKey{node: e.Root, delta: ref.Delta}, e)
		}
		loaded += len(entries)
		en.storeHydrated.Add(uint64(len(entries)))
	}
	return loaded, nil
}

// forest fans the privacy level's nodes out across the worker pool and
// assembles the result. The first error cancels the remaining solves.
func (en *engine) forest(ctx context.Context, keys []forestKey) (map[forestKey]*ForestEntry, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	out := make(map[forestKey]*ForestEntry, len(keys))
	for _, key := range keys {
		wg.Add(1)
		go func(key forestKey) {
			defer wg.Done()
			e, err := en.entry(ctx, key)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				return
			}
			out[key] = e
		}(key)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

func (en *engine) stats() EngineStats {
	cs := en.cache.stats()
	return EngineStats{
		Hits:             cs.hits,
		Misses:           cs.misses,
		Evictions:        cs.evictions,
		CacheBytes:       cs.bytes,
		CacheEntries:     cs.entries,
		CacheCapacity:    en.cache.capacity,
		Solves:           en.solves.Load(),
		InFlight:         en.inFlight.Load(),
		Workers:          en.workers,
		StoreHits:        en.storeHits.Load(),
		StoreMisses:      en.storeMisses.Load(),
		StoreWrites:      en.storeWrites.Load(),
		StoreHydrated:    en.storeHydrated.Load(),
		AliasBuilds:      en.alias.builds.Load(),
		AliasHits:        en.alias.hits.Load(),
		AliasBytes:       en.alias.bytes.Load(),
		DegradedBuilds:   en.degradedBuilds.Load(),
		DegradedHits:     en.degradedHits.Load(),
		DegradedUpgrades: en.degradedUpgrades.Load(),
		WarmAttempts:     en.warmAttempts.Load(),
		WarmAccepts:      en.warmAccepts.Load(),
	}
}
