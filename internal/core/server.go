package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/obf"
)

// ForestEntry is one privacy-forest element: the robust obfuscation matrix
// for the descendant leaves of a subtree rooted at the privacy level. The
// matrix index order is Leaves' order.
//
// Entries additionally carry a lazily-built per-row alias-table cache for
// O(1) report draws (see AliasRow); the mutex inside means entries must be
// shared by pointer, which every existing path already does.
type ForestEntry struct {
	Root   loctree.NodeID
	Leaves []loctree.NodeID
	Matrix *obf.Matrix
	// Pairs is the Geo-Ind constraint set the matrix was generated under
	// (graph-approximation neighbor pairs), kept for audits. Degraded
	// fallback entries carry none (their bound holds analytically for every
	// pair, not just graph neighbors).
	Pairs []obf.Pair
	// Result carries generation statistics (trace, LP iterations, timing).
	Result *Result
	// Degraded marks a planar-Laplace fallback entry: it satisfies the same
	// ε-Geo-Ind bound as the optimal matrix (robustly, for any pruning set)
	// but at strictly worse utility. Served only on the degraded fast path
	// while the real LP solve runs; the optimal entry replaces it in the
	// cache on completion.
	Degraded bool

	alias aliasState
}

// CheckGeoInd audits the entry's matrix against its own constraint set.
func (e *ForestEntry) CheckGeoInd(eps, tol float64) obf.ViolationReport {
	return e.Matrix.CheckGeoInd(e.Pairs, eps, tol)
}

// Forest is the privacy forest of Sec. 3.2 / Algorithm 3: one entry per
// node of the privacy level, so the server never learns which subtree holds
// the user's real location.
type Forest struct {
	PrivacyLevel int
	Delta        int
	Entries      map[loctree.NodeID]*ForestEntry
}

// Server is the CORGI server: it owns the location tree, the public priors,
// and the target-location distribution, and generates privacy forests on
// request. Only (privacy level, delta) arrive from users — never locations
// or preference contents (Sec. 5.1).
//
// Generation runs on a concurrent engine: subtree solves fan out across a
// bounded worker pool (each subtree's matrix is independent, Algorithm 3),
// concurrent requests for the same (node, delta) share one LP solve, and
// finished entries live on a two-tier read path — a byte-bounded in-memory
// LRU backed by an optional durable snapshot store (EngineOptions.Store)
// consulted before any solve runs, with completed forests written back
// asynchronously. See EngineOptions.
type Server struct {
	tree        *loctree.Tree
	priors      *loctree.Priors
	targets     []geo.LatLng
	targetProbs []float64
	params      Params

	engine *engine
}

type forestKey struct {
	node  loctree.NodeID
	delta int
}

// NewServer validates inputs and builds a server with default engine
// options. params.Delta is ignored (per-request); the rest of params applies
// to every generation.
func NewServer(tree *loctree.Tree, priors *loctree.Priors, targets []geo.LatLng,
	targetProbs []float64, params Params) (*Server, error) {
	return NewServerWithOptions(tree, priors, targets, targetProbs, params, EngineOptions{})
}

// NewServerWithOptions is NewServer with explicit engine tuning (worker
// count, cache bound).
func NewServerWithOptions(tree *loctree.Tree, priors *loctree.Priors, targets []geo.LatLng,
	targetProbs []float64, params Params, opts EngineOptions) (*Server, error) {
	if tree == nil || priors == nil {
		return nil, fmt.Errorf("core: server needs a tree and priors")
	}
	if len(targets) == 0 || len(targets) != len(targetProbs) {
		return nil, fmt.Errorf("core: server needs matching targets and probabilities")
	}
	if params.Epsilon <= 0 {
		return nil, fmt.Errorf("core: server epsilon must be positive")
	}
	if params.Iterations < 1 {
		params.Iterations = 1
	}
	s := &Server{
		tree:        tree,
		priors:      priors,
		targets:     append([]geo.LatLng(nil), targets...),
		targetProbs: append([]float64(nil), targetProbs...),
		params:      params,
	}
	s.engine = newEngine(opts, s.generate)
	if opts.DegradedServing {
		s.engine.fallback = s.fallbackEntry
	}
	return s, nil
}

// Tree returns the server's location tree (shared with users, step 1-3 of
// Fig. 1).
func (s *Server) Tree() *loctree.Tree { return s.tree }

// Params returns the generation parameters in force.
func (s *Server) Params() Params { return s.params }

// Priors returns the server's public leaf priors (footnote 5: priors are
// derived from public check-in data, so sharing them leaks nothing).
func (s *Server) Priors() *loctree.Priors { return s.priors }

// Stats snapshots the engine's cache and solve counters.
func (s *Server) Stats() EngineStats { return s.engine.stats() }

// GenerateEntry generates (or returns cached) the robust matrix for one
// subtree root at the privacy level, prunable up to delta locations.
func (s *Server) GenerateEntry(root loctree.NodeID, delta int) (*ForestEntry, error) {
	return s.GenerateEntryCtx(context.Background(), root, delta)
}

// GenerateEntryCtx is GenerateEntry honoring ctx cancellation/deadline while
// waiting for a worker slot or a shared in-flight solve.
func (s *Server) GenerateEntryCtx(ctx context.Context, root loctree.NodeID, delta int) (*ForestEntry, error) {
	if !s.tree.Contains(root) {
		return nil, fmt.Errorf("core: node %v not in tree", root)
	}
	if delta < 0 {
		return nil, fmt.Errorf("core: delta must be >= 0, got %d", delta)
	}
	return s.engine.entry(ctx, forestKey{node: root, delta: delta})
}

// ServeEntryCtx is the degraded-capable read path: with
// EngineOptions.DegradedServing enabled, a request whose (root, delta)
// entry misses both the cache and the store is answered immediately with a
// discretized planar-Laplace fallback (ForestEntry.Degraded set) while the
// real LP solve proceeds in the background; the optimal entry atomically
// replaces the fallback on completion. Without the option it is exactly
// GenerateEntryCtx.
func (s *Server) ServeEntryCtx(ctx context.Context, root loctree.NodeID, delta int) (*ForestEntry, error) {
	if !s.tree.Contains(root) {
		return nil, fmt.Errorf("core: node %v not in tree", root)
	}
	if delta < 0 {
		return nil, fmt.Errorf("core: delta must be >= 0, got %d", delta)
	}
	return s.engine.entryFast(ctx, forestKey{node: root, delta: delta})
}

// PeekEntry returns the cached entry for (root, delta) without touching the
// hit/miss counters or triggering any generation. The report pipeline uses
// it to discover that a background upgrade has replaced the degraded entry
// a session is bound to.
func (s *Server) PeekEntry(root loctree.NodeID, delta int) (*ForestEntry, bool) {
	return s.engine.cache.peek(forestKey{node: root, delta: delta})
}

// WaitUpgrades blocks until every background degraded-to-optimal upgrade
// started so far has finished. Tests use it for deterministic upgrade
// observation; servers may call it on drain.
func (s *Server) WaitUpgrades() { s.engine.waitUpgrades() }

// fallbackEntry builds a degraded entry for a subtree from analytic
// discretized planar-Laplace rows: w_i(j) ∝ exp(-(ε/2)·d_ij) over the
// subtree's leaf centers. No LP runs — cost is O(K²) exponentials,
// milliseconds even for the largest subtrees. The halved exponent makes the
// normalized rows ε-Geo-Ind for every pair (see planar.DiscretizedRows),
// and the bound survives arbitrary row pruning + renormalization, so the
// fallback is δ-prunable for every δ at once — strictly safe, strictly
// worse utility than the LP optimum.
func (s *Server) fallbackEntry(ctx context.Context, key forestKey) (*ForestEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	root := key.node
	leaves := s.tree.LeavesUnder(root)
	cells := make([]hexgrid.Coord, len(leaves))
	for i, l := range leaves {
		cells[i] = l.Coord
	}
	start := time.Now()
	m, err := mechanism.Build(mechanism.PlanarLaplaceName, mechanism.BuildConfig{
		Sys:     s.tree.System(),
		Cells:   cells,
		Epsilon: s.params.Epsilon,
	})
	if err != nil {
		return nil, fmt.Errorf("core: fallback for subtree %v: %w", root, err)
	}
	return &ForestEntry{
		Root:     root,
		Leaves:   leaves,
		Matrix:   m,
		Result:   &Result{Matrix: m, Elapsed: time.Since(start)},
		Degraded: true,
	}, nil
}

// generate builds the instance for a subtree's leaf set and runs Generate.
// It is the engine's solve callback and always receives a validated key.
func (s *Server) generate(ctx context.Context, key forestKey) (*ForestEntry, error) {
	root, delta := key.node, key.delta
	leaves := s.tree.LeavesUnder(root)
	cellCoords := make([]hexgrid.Coord, len(leaves))
	for i, l := range leaves {
		cellCoords[i] = l.Coord
	}
	leafPriors, err := s.priors.Subset(s.tree, leaves, true)
	if err != nil {
		return nil, err
	}
	inst, err := NewInstance(s.tree.System(), cellCoords, leafPriors, s.targets, s.targetProbs, 0)
	if err != nil {
		return nil, err
	}
	p := s.params
	p.Delta = delta
	if delta == 0 {
		p.Iterations = 0
	}
	res, err := inst.GenerateCtx(ctx, p)
	if err != nil {
		return nil, fmt.Errorf("core: subtree %v: %w", root, err)
	}
	return &ForestEntry{
		Root:   root,
		Leaves: leaves,
		Matrix: res.Matrix,
		Pairs:  inst.NeighborPairs(),
		Result: res,
	}, nil
}

// GenerateForest implements Algorithm 3: a matrix for every node at the
// privacy level, generated concurrently across the engine's worker pool.
func (s *Server) GenerateForest(privacyLevel, delta int) (*Forest, error) {
	return s.GenerateForestCtx(context.Background(), privacyLevel, delta)
}

// GenerateForestCtx is GenerateForest with cancellation: the first subtree
// error (or ctx expiry) cancels the remaining solves.
func (s *Server) GenerateForestCtx(ctx context.Context, privacyLevel, delta int) (*Forest, error) {
	if privacyLevel < 1 || privacyLevel > s.tree.Height() {
		return nil, fmt.Errorf("core: privacy level %d outside [1,%d]", privacyLevel, s.tree.Height())
	}
	if delta < 0 {
		return nil, fmt.Errorf("core: delta must be >= 0, got %d", delta)
	}
	nodes := s.tree.LevelNodes(privacyLevel)
	keys := make([]forestKey, len(nodes))
	for i, node := range nodes {
		keys[i] = forestKey{node: node, delta: delta}
	}
	got, err := s.engine.forest(ctx, keys)
	if err != nil {
		return nil, err
	}
	forest := &Forest{
		PrivacyLevel: privacyLevel,
		Delta:        delta,
		Entries:      make(map[loctree.NodeID]*ForestEntry, len(keys)),
	}
	entries := make([]*ForestEntry, len(keys))
	for i, key := range keys {
		forest.Entries[key.node] = got[key]
		entries[i] = got[key]
	}
	// Write the completed forest back to the durable store asynchronously.
	// The slice above is the assembled forest itself, so cache eviction
	// racing the write cannot truncate the snapshot; write-backs dedupe
	// per (level, delta) inside the engine.
	s.engine.persistAsync(privacyLevel, delta, entries)
	return forest, nil
}

// HydrateFromStore preloads every snapshot the configured store holds into
// the entry cache and returns the number of entries loaded. A server
// restarted over a populated store (or bootstrapped by the registry with
// one attached) serves its first forest request for every precomputed
// (level, delta) with zero LP solves. Without a store it is a no-op.
func (s *Server) HydrateFromStore(ctx context.Context) (int, error) {
	return s.engine.hydrate(ctx)
}

// FlushStore blocks until every asynchronous store write-back started so
// far has finished. Call before process exit so freshly solved forests are
// durable.
func (s *Server) FlushStore() { s.engine.flushStore() }

// Warmup precomputes every (level, delta) combination for privacy levels
// 1..Height and deltas 0..maxDelta, filling the cache before traffic
// arrives. All combinations fan out concurrently — the engine's worker-pool
// semaphore still bounds real solve parallelism, and warm-started bases
// inside each generation keep the individual solves short — so total warmup
// time approaches the critical path of the slowest subtree rather than the
// sum over levels. The first error cancels the remaining forests. Entries
// evicted by the byte bound are simply regenerated on demand later.
func (s *Server) Warmup(ctx context.Context, maxDelta int) error {
	if maxDelta < 0 {
		return fmt.Errorf("core: warmup delta must be >= 0, got %d", maxDelta)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for level := 1; level <= s.tree.Height(); level++ {
		for delta := 0; delta <= maxDelta; delta++ {
			wg.Add(1)
			go func(level, delta int) {
				defer wg.Done()
				if _, err := s.GenerateForestCtx(ctx, level, delta); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: warmup level %d delta %d: %w", level, delta, err)
						cancel()
					}
					mu.Unlock()
				}
			}(level, delta)
		}
	}
	wg.Wait()
	return firstErr
}
