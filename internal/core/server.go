package core

import (
	"fmt"
	"sync"

	"corgi/internal/geo"
	"corgi/internal/hexgrid"
	"corgi/internal/loctree"
	"corgi/internal/obf"
)

// ForestEntry is one privacy-forest element: the robust obfuscation matrix
// for the descendant leaves of a subtree rooted at the privacy level. The
// matrix index order is Leaves' order.
type ForestEntry struct {
	Root   loctree.NodeID
	Leaves []loctree.NodeID
	Matrix *obf.Matrix
	// Pairs is the Geo-Ind constraint set the matrix was generated under
	// (graph-approximation neighbor pairs), kept for audits.
	Pairs []obf.Pair
	// Result carries generation statistics (trace, LP iterations, timing).
	Result *Result
}

// CheckGeoInd audits the entry's matrix against its own constraint set.
func (e *ForestEntry) CheckGeoInd(eps, tol float64) obf.ViolationReport {
	return e.Matrix.CheckGeoInd(e.Pairs, eps, tol)
}

// Forest is the privacy forest of Sec. 3.2 / Algorithm 3: one entry per
// node of the privacy level, so the server never learns which subtree holds
// the user's real location.
type Forest struct {
	PrivacyLevel int
	Delta        int
	Entries      map[loctree.NodeID]*ForestEntry
}

// Server is the CORGI server: it owns the location tree, the public priors,
// and the target-location distribution, and generates privacy forests on
// request. Only (privacy level, delta) arrive from users — never locations
// or preference contents (Sec. 5.1).
type Server struct {
	tree        *loctree.Tree
	priors      *loctree.Priors
	targets     []geo.LatLng
	targetProbs []float64
	params      Params

	mu    sync.Mutex
	cache map[forestKey]*ForestEntry
}

type forestKey struct {
	node  loctree.NodeID
	delta int
}

// NewServer validates inputs and builds a server. params.Delta is ignored
// (per-request); the rest of params applies to every generation.
func NewServer(tree *loctree.Tree, priors *loctree.Priors, targets []geo.LatLng,
	targetProbs []float64, params Params) (*Server, error) {
	if tree == nil || priors == nil {
		return nil, fmt.Errorf("core: server needs a tree and priors")
	}
	if len(targets) == 0 || len(targets) != len(targetProbs) {
		return nil, fmt.Errorf("core: server needs matching targets and probabilities")
	}
	if params.Epsilon <= 0 {
		return nil, fmt.Errorf("core: server epsilon must be positive")
	}
	if params.Iterations < 1 {
		params.Iterations = 1
	}
	return &Server{
		tree:        tree,
		priors:      priors,
		targets:     append([]geo.LatLng(nil), targets...),
		targetProbs: append([]float64(nil), targetProbs...),
		params:      params,
		cache:       map[forestKey]*ForestEntry{},
	}, nil
}

// Tree returns the server's location tree (shared with users, step 1-3 of
// Fig. 1).
func (s *Server) Tree() *loctree.Tree { return s.tree }

// Params returns the generation parameters in force.
func (s *Server) Params() Params { return s.params }

// GenerateEntry generates (or returns cached) the robust matrix for one
// subtree root at the privacy level, prunable up to delta locations.
func (s *Server) GenerateEntry(root loctree.NodeID, delta int) (*ForestEntry, error) {
	if !s.tree.Contains(root) {
		return nil, fmt.Errorf("core: node %v not in tree", root)
	}
	if delta < 0 {
		return nil, fmt.Errorf("core: delta must be >= 0, got %d", delta)
	}
	key := forestKey{node: root, delta: delta}
	s.mu.Lock()
	if e, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return e, nil
	}
	s.mu.Unlock()

	leaves := s.tree.LeavesUnder(root)
	entry, err := s.generate(root, leaves, delta)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[key] = entry
	s.mu.Unlock()
	return entry, nil
}

// generate builds the instance for a leaf set and runs Generate.
func (s *Server) generate(root loctree.NodeID, leaves []loctree.NodeID, delta int) (*ForestEntry, error) {
	cellCoords := make([]hexgrid.Coord, len(leaves))
	for i, l := range leaves {
		cellCoords[i] = l.Coord
	}
	leafPriors, err := s.priors.Subset(s.tree, leaves, true)
	if err != nil {
		return nil, err
	}
	inst, err := NewInstance(s.tree.System(), cellCoords, leafPriors, s.targets, s.targetProbs, 0)
	if err != nil {
		return nil, err
	}
	p := s.params
	p.Delta = delta
	if delta == 0 {
		p.Iterations = 0
	}
	res, err := inst.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("core: subtree %v: %w", root, err)
	}
	return &ForestEntry{
		Root:   root,
		Leaves: leaves,
		Matrix: res.Matrix,
		Pairs:  inst.NeighborPairs(),
		Result: res,
	}, nil
}

// GenerateForest implements Algorithm 3: a matrix for every node at the
// privacy level.
func (s *Server) GenerateForest(privacyLevel, delta int) (*Forest, error) {
	if privacyLevel < 1 || privacyLevel > s.tree.Height() {
		return nil, fmt.Errorf("core: privacy level %d outside [1,%d]", privacyLevel, s.tree.Height())
	}
	forest := &Forest{
		PrivacyLevel: privacyLevel,
		Delta:        delta,
		Entries:      map[loctree.NodeID]*ForestEntry{},
	}
	for _, node := range s.tree.LevelNodes(privacyLevel) {
		e, err := s.GenerateEntry(node, delta)
		if err != nil {
			return nil, err
		}
		forest.Entries[node] = e
	}
	return forest, nil
}
