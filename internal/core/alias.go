package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"corgi/internal/sample"
)

// aliasMetrics aggregates the engine-wide alias-table counters: lazy
// builds, reuse hits, and the resident bytes of tables attached to cached
// entries. The entry cache attaches one shared instance to every entry it
// admits and detaches it (subtracting the entry's table bytes) on
// eviction, so AliasBytes tracks exactly the tables the LRU still pins.
//
// enforce, when set (by the owning cache, before the engine is shared),
// re-checks the cache's byte bound; every table build invokes it so a
// report-heavy steady state — where no new admissions would otherwise run
// the eviction loop — still cannot grow past the configured capacity.
type aliasMetrics struct {
	builds  atomic.Uint64
	hits    atomic.Uint64
	bytes   atomic.Int64
	enforce func()
}

// aliasState is the lazily-built per-row alias-table cache of one forest
// entry. Tables build on first use of each row (a report session's fast
// path draws from only a handful of rows) under the entry mutex — the
// per-entry singleflight: concurrent first draws of one row share a single
// O(n) build. Eviction of the entry from the engine LRU drops the tables
// with it. The zero value is ready to use, so entries built by wire
// decoders work unchanged.
type aliasState struct {
	mu      sync.Mutex
	rows    []*sample.Alias
	bytes   int64
	metrics *aliasMetrics
}

func (s *aliasState) lock()   { s.mu.Lock() }
func (s *aliasState) unlock() { s.mu.Unlock() }

// AliasRow returns the O(1) alias sampler for matrix row i, building and
// caching it on first use. Concurrent callers for rows of the same entry
// serialize on the build; returned tables are immutable and safe for
// concurrent draws (each caller brings its own *rand.Rand). Entries
// decoded from the wire work identically — they simply report no engine
// counters. A build on a cached entry re-checks the engine cache's byte
// bound (outside the entry lock: bound enforcement may evict and detach
// this very entry).
func (e *ForestEntry) AliasRow(i int) (*sample.Alias, error) {
	if e.Matrix == nil {
		return nil, fmt.Errorf("core: entry %v has no matrix", e.Root)
	}
	if i < 0 || i >= e.Matrix.Dim() {
		return nil, fmt.Errorf("core: alias row %d outside matrix dimension %d", i, e.Matrix.Dim())
	}
	e.alias.lock()
	if e.alias.rows == nil {
		e.alias.rows = make([]*sample.Alias, e.Matrix.Dim())
	}
	if a := e.alias.rows[i]; a != nil {
		if m := e.alias.metrics; m != nil {
			m.hits.Add(1)
		}
		e.alias.unlock()
		return a, nil
	}
	a, err := sample.New(e.Matrix.Row(i))
	if err != nil {
		e.alias.unlock()
		return nil, fmt.Errorf("core: alias for row %d of %v: %w", i, e.Root, err)
	}
	e.alias.rows[i] = a
	e.alias.bytes += a.SizeBytes()
	m := e.alias.metrics
	if m != nil {
		m.builds.Add(1)
		m.bytes.Add(a.SizeBytes())
	}
	e.alias.unlock()
	if m != nil && m.enforce != nil {
		m.enforce()
	}
	return a, nil
}

// AliasBytes reports the resident footprint of the entry's built tables.
func (e *ForestEntry) AliasBytes() int64 {
	e.alias.lock()
	defer e.alias.unlock()
	return e.alias.bytes
}

// attachAliasMetrics points the entry's alias cache at the engine
// counters. Called by the entry cache on admission.
func (e *ForestEntry) attachAliasMetrics(m *aliasMetrics) {
	e.alias.lock()
	defer e.alias.unlock()
	if e.alias.metrics == nil {
		e.alias.metrics = m
		// Tables built before admission (or on a previous admission cycle)
		// join the accounted footprint.
		m.bytes.Add(e.alias.bytes)
	}
}

// detachAliasMetrics removes the entry's tables from the engine byte
// accounting. Called by the entry cache on eviction; sessions still
// holding the entry keep drawing from the (now uncounted) tables.
func (e *ForestEntry) detachAliasMetrics() {
	e.alias.lock()
	defer e.alias.unlock()
	if m := e.alias.metrics; m != nil {
		m.bytes.Add(-e.alias.bytes)
		e.alias.metrics = nil
	}
}
