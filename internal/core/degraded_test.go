package core

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestDegradedServingFastPath drives the full fallback lifecycle: a cold
// ServeEntryCtx returns a degraded planar-Laplace entry immediately, the
// background solve replaces it with the LP optimum, and the counters track
// each transition.
func TestDegradedServingFastPath(t *testing.T) {
	srv := newEngineTestServer(t, EngineOptions{Workers: 2, DegradedServing: true})
	tree := srv.Tree()
	leaf := tree.LevelNodes(0)[0]
	root, ok := tree.AncestorAt(leaf, 1)
	if !ok {
		t.Fatal("no level-1 ancestor")
	}

	start := time.Now()
	e, err := srv.ServeEntryCtx(context.Background(), root, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast := time.Since(start)
	if !e.Degraded {
		t.Fatal("cold ServeEntryCtx did not return a degraded entry")
	}
	if e.Root != root || e.Matrix == nil {
		t.Fatalf("degraded entry malformed: root %v matrix %v", e.Root, e.Matrix)
	}
	// The fallback is analytic — milliseconds, not an LP solve. A second
	// bound keeps slow CI from flaking while still catching a fallback
	// that accidentally runs the solver.
	if fast > time.Second {
		t.Fatalf("degraded entry took %v; the fallback must not run the LP", fast)
	}
	for i := 0; i < e.Matrix.Dim(); i++ {
		sum := 0.0
		for j := 0; j < e.Matrix.Dim(); j++ {
			sum += e.Matrix.At(i, j)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("degraded row %d sums to %g", i, sum)
		}
	}
	if st := srv.Stats(); st.DegradedBuilds != 1 {
		t.Fatalf("DegradedBuilds = %d, want 1", st.DegradedBuilds)
	}

	srv.WaitUpgrades()
	up, ok := srv.PeekEntry(root, 1)
	if !ok {
		t.Fatal("entry missing from cache after upgrade")
	}
	if up.Degraded {
		t.Fatal("entry still degraded after WaitUpgrades")
	}
	st := srv.Stats()
	if st.DegradedUpgrades != 1 {
		t.Fatalf("DegradedUpgrades = %d, want 1", st.DegradedUpgrades)
	}

	// Post-upgrade serves hit the optimal entry — no new fallback builds.
	e2, err := srv.ServeEntryCtx(context.Background(), root, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Degraded {
		t.Fatal("post-upgrade ServeEntryCtx returned a degraded entry")
	}
	if st := srv.Stats(); st.DegradedBuilds != 1 {
		t.Fatalf("DegradedBuilds = %d after upgrade, want still 1", st.DegradedBuilds)
	}
}

// TestDegradedHitCountsWhileUpgrading checks that repeat requests served
// from a cached fallback are counted as degraded hits, and that the real
// generation path (GenerateEntryCtx) never serves a degraded entry.
func TestDegradedHitCountsWhileUpgrading(t *testing.T) {
	srv := newEngineTestServer(t, EngineOptions{Workers: 1, DegradedServing: true})
	tree := srv.Tree()
	root, _ := tree.AncestorAt(tree.LevelNodes(0)[0], 1)

	if _, err := srv.ServeEntryCtx(context.Background(), root, 0); err != nil {
		t.Fatal(err)
	}
	// A repeat fast-path request before the upgrade lands may see either
	// the fallback (degraded hit) or the already-published optimum; both
	// are valid. What must never happen is the strict path serving a
	// fallback.
	e, err := srv.GenerateEntryCtx(context.Background(), root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Degraded {
		t.Fatal("GenerateEntryCtx returned a degraded entry")
	}
	srv.WaitUpgrades()

	// With the optimum published, another fast-path request must not count
	// a degraded hit beyond those recorded before the upgrade.
	before := srv.Stats().DegradedHits
	if _, err := srv.ServeEntryCtx(context.Background(), root, 0); err != nil {
		t.Fatal(err)
	}
	if after := srv.Stats().DegradedHits; after != before {
		t.Fatalf("DegradedHits grew %d -> %d after upgrade", before, after)
	}
}

// TestServeEntryWithoutDegradedServing pins ServeEntryCtx to the strict
// path when the option is off: the first return is already LP-optimal.
func TestServeEntryWithoutDegradedServing(t *testing.T) {
	srv := newEngineTestServer(t, EngineOptions{Workers: 1})
	tree := srv.Tree()
	root, _ := tree.AncestorAt(tree.LevelNodes(0)[0], 1)
	e, err := srv.ServeEntryCtx(context.Background(), root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Degraded {
		t.Fatal("degraded entry served with DegradedServing off")
	}
	if st := srv.Stats(); st.DegradedBuilds != 0 {
		t.Fatalf("DegradedBuilds = %d with DegradedServing off", st.DegradedBuilds)
	}
}
