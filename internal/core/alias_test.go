package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"corgi/internal/obf"
)

func testEntry(t *testing.T, n int) *ForestEntry {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		total := 0.0
		for j := range rows[i] {
			rows[i][j] = rng.Float64()
			total += rows[i][j]
		}
		for j := range rows[i] {
			rows[i][j] /= total
		}
	}
	m, err := obf.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return &ForestEntry{Matrix: m}
}

// TestAliasRowLazyAndCached: a row's table builds once and is reused, and
// the drawn distribution matches the matrix row.
func TestAliasRowLazyAndCached(t *testing.T) {
	e := testEntry(t, 8)
	a1, err := e.AliasRow(3)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.AliasRow(3)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("second AliasRow call rebuilt the table")
	}
	for j := 0; j < 8; j++ {
		if got, want := a1.Prob(j), e.Matrix.At(3, j); math.Abs(got-want) > 1e-12 {
			t.Fatalf("alias prob(%d) = %v, matrix says %v", j, got, want)
		}
	}
	if e.AliasBytes() == 0 {
		t.Error("built table not byte-accounted")
	}
	if _, err := e.AliasRow(99); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := (&ForestEntry{}).AliasRow(0); err == nil {
		t.Error("entry without matrix accepted")
	}
}

// TestAliasRowConcurrent hammers lazy builds from many goroutines under
// the race detector: every caller must get the same table per row.
func TestAliasRowConcurrent(t *testing.T) {
	e := testEntry(t, 16)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		seen = map[int]interface{}{}
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				a, err := e.AliasRow(i)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, ok := seen[i]; ok && prev != a {
					t.Errorf("row %d produced two distinct tables", i)
				}
				seen[i] = a
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// TestAliasMetricsEvictionAccounting: engine stats track builds/hits, and
// evicting an entry subtracts its alias bytes.
func TestAliasMetricsEvictionAccounting(t *testing.T) {
	var m aliasMetrics
	// Capacity fits exactly one of these entries plus its alias tables,
	// so adding a second evicts the first.
	e1, e2 := testEntry(t, 8), testEntry(t, 8)
	cache := newEntryCache(entrySizeBytes(e1)+256, &m)
	k1 := forestKey{delta: 1}
	k2 := forestKey{delta: 2}

	cache.add(k1, e1)
	if _, err := e1.AliasRow(0); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.AliasRow(0); err != nil {
		t.Fatal(err)
	}
	if got := m.builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want 1", got)
	}
	if got := m.hits.Load(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := m.bytes.Load(); got != e1.AliasBytes() {
		t.Fatalf("bytes = %d, want %d", got, e1.AliasBytes())
	}

	cache.add(k2, e2) // evicts e1
	if got := m.bytes.Load(); got != 0 {
		t.Fatalf("bytes after eviction = %d, want 0", got)
	}
	// The evicted entry keeps serving draws, just uncounted.
	if _, err := e1.AliasRow(1); err != nil {
		t.Fatal(err)
	}
	if got := m.bytes.Load(); got != 0 {
		t.Fatalf("evicted entry still accounted: %d bytes", got)
	}
	// Tables built before admission join the accounting when (re)admitted.
	var m2 aliasMetrics
	cache2 := newEntryCache(1<<20, &m2)
	cache2.add(k1, e1)
	if got := m2.bytes.Load(); got != e1.AliasBytes() {
		t.Fatalf("re-admitted bytes = %d, want %d", got, e1.AliasBytes())
	}
}

// TestAliasBuildEnforcesCacheBound: in a steady state with no new
// admissions, alias tables built on cached entries still trigger the
// eviction loop — the configured byte bound covers matrices plus tables.
func TestAliasBuildEnforcesCacheBound(t *testing.T) {
	var m aliasMetrics
	e := testEntry(t, 8)
	// Capacity admits the bare entry but not the entry plus one table.
	cache := newEntryCache(entrySizeBytes(e)+8, &m)
	cache.add(forestKey{delta: 1}, e)
	if st := cache.stats(); st.evictions != 0 {
		t.Fatalf("bare entry already evicted: %+v", st)
	}
	if _, err := e.AliasRow(0); err != nil {
		t.Fatal(err)
	}
	if st := cache.stats(); st.evictions != 1 || st.entries != 0 {
		t.Fatalf("alias build did not enforce the bound: %+v", st)
	}
	if got := m.bytes.Load(); got != 0 {
		t.Fatalf("evicted entry's alias bytes still accounted: %d", got)
	}
	// The detached entry still serves draws.
	if _, err := e.AliasRow(1); err != nil {
		t.Fatal(err)
	}
}

// TestEngineStatsAliasCounters: counters surface through Server.Stats and
// Merge adds them.
func TestEngineStatsAliasCounters(t *testing.T) {
	var a, b EngineStats
	a.AliasBuilds, a.AliasHits, a.AliasBytes = 2, 3, 100
	b.AliasBuilds, b.AliasHits, b.AliasBytes = 1, 1, 50
	a.Merge(b)
	if a.AliasBuilds != 3 || a.AliasHits != 4 || a.AliasBytes != 150 {
		t.Fatalf("merged alias counters wrong: %+v", a)
	}
}
