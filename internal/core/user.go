package core

import (
	"fmt"
	"math/rand"

	"corgi/internal/geo"
	"corgi/internal/loctree"
	"corgi/internal/obf"
	"corgi/internal/policy"
)

// Outcome reports one user-side obfuscation (Algorithm 4).
type Outcome struct {
	// Reported is the obfuscated location node at the policy's precision
	// level — what goes to the location-based application.
	Reported loctree.NodeID
	// SubtreeRoot is the privacy-forest entry that served this request.
	SubtreeRoot loctree.NodeID
	// Pruned is the set of leaves removed by the user's preferences.
	Pruned []loctree.NodeID
	// Matrix is the final customized matrix (pruned, precision-reduced);
	// rows/columns align with Nodes.
	Matrix *obf.Matrix
	// Nodes are the precision-level nodes indexing Matrix.
	Nodes []loctree.NodeID
}

// EvalPreferences returns the leaves of the subtree that fail the policy's
// preferences — the prune set S (step 2 of Fig. 8). attrs must cover every
// leaf it is asked about.
func EvalPreferences(leaves []loctree.NodeID, pol policy.Policy,
	attrs map[loctree.NodeID]policy.Attributes) ([]loctree.NodeID, error) {
	var pruned []loctree.NodeID
	for _, leaf := range leaves {
		a, ok := attrs[leaf]
		if !ok {
			return nil, fmt.Errorf("core: no attributes for leaf %v", leaf)
		}
		allowed, err := pol.Allowed(a)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %v: %w", leaf, err)
		}
		if !allowed {
			pruned = append(pruned, leaf)
		}
	}
	return pruned, nil
}

// GenerateObfuscatedLocation implements Algorithm 4 on the user side: find
// the subtree containing the real location, evaluate preferences, prune the
// server's robust matrix, reduce precision, and sample the reported node.
//
// forest must cover the policy's privacy level; attrs provides per-leaf
// attributes for preference evaluation (nil allowed when the policy has no
// preferences); priors are needed for precision reduction (Equ. 17).
func GenerateObfuscatedLocation(tree *loctree.Tree, forest *Forest, real geo.LatLng,
	pol policy.Policy, attrs map[loctree.NodeID]policy.Attributes,
	priors *loctree.Priors, rng *rand.Rand) (*Outcome, error) {
	if err := pol.Validate(tree.Height()); err != nil {
		return nil, err
	}
	if forest == nil || forest.PrivacyLevel != pol.PrivacyLevel {
		return nil, fmt.Errorf("core: forest does not match privacy level %d", pol.PrivacyLevel)
	}
	realLeaf, ok := tree.Locate(real, 0)
	if !ok {
		return nil, fmt.Errorf("core: real location %v outside the tree region", real)
	}
	root, ok := tree.AncestorAt(realLeaf, pol.PrivacyLevel)
	if !ok {
		return nil, fmt.Errorf("core: no ancestor of %v at level %d", realLeaf, pol.PrivacyLevel)
	}
	entry, ok := forest.Entries[root]
	if !ok {
		return nil, fmt.Errorf("core: forest has no entry for subtree %v", root)
	}

	// Step 2-3: evaluate preferences over the subtree's leaves.
	var pruned []loctree.NodeID
	if len(pol.Preferences) > 0 {
		var err error
		pruned, err = EvalPreferences(entry.Leaves, pol, attrs)
		if err != nil {
			return nil, err
		}
	}
	if len(pruned) > forest.Delta {
		return nil, fmt.Errorf("core: preferences prune %d locations but the matrix is only %d-prunable (Sec. 5.3 tradeoff)",
			len(pruned), forest.Delta)
	}
	prunedSet := make(map[loctree.NodeID]bool, len(pruned))
	for _, n := range pruned {
		prunedSet[n] = true
	}
	if prunedSet[realLeaf] && pol.PrecisionLevel == 0 {
		return nil, fmt.Errorf("core: preferences prune the user's own location %v at precision 0", realLeaf)
	}

	// Step 6: matrix pruning (Sec. 4.3).
	indexOf := make(map[loctree.NodeID]int, len(entry.Leaves))
	for i, l := range entry.Leaves {
		indexOf[l] = i
	}
	var s []int
	for _, n := range pruned {
		s = append(s, indexOf[n])
	}
	matrix := entry.Matrix
	keptLeaves := entry.Leaves
	if len(s) > 0 {
		m2, keep, err := entry.Matrix.Prune(s)
		if err != nil {
			return nil, fmt.Errorf("core: pruning: %w", err)
		}
		matrix = m2
		keptLeaves = make([]loctree.NodeID, len(keep))
		for ni, oi := range keep {
			keptLeaves[ni] = entry.Leaves[oi]
		}
	}

	// Step 7: precision reduction (Sec. 4.5) when reporting coarser than
	// leaves.
	nodes := keptLeaves
	if pol.PrecisionLevel > 0 {
		groups, groupNodes, err := GroupByAncestor(tree, keptLeaves, pol.PrecisionLevel)
		if err != nil {
			return nil, err
		}
		leafPriors := make([]float64, len(keptLeaves))
		for i, l := range keptLeaves {
			leafPriors[i] = priors.Of(tree, l)
		}
		m2, err := obf.PrecisionReduce(matrix, groups, leafPriors)
		if err != nil {
			return nil, fmt.Errorf("core: precision reduction: %w", err)
		}
		matrix = m2
		nodes = groupNodes
	}

	// Step 8: sample the row of the real location's node.
	rowNode := realLeaf
	if pol.PrecisionLevel > 0 {
		anc, ok := tree.AncestorAt(realLeaf, pol.PrecisionLevel)
		if !ok {
			return nil, fmt.Errorf("core: no ancestor of %v at precision level", realLeaf)
		}
		rowNode = anc
	}
	row := -1
	for i, n := range nodes {
		if n == rowNode {
			row = i
			break
		}
	}
	if row < 0 {
		return nil, fmt.Errorf("core: node %v missing from the customized matrix", rowNode)
	}
	j, err := matrix.SampleRow(row, rng)
	if err != nil {
		return nil, fmt.Errorf("core: sampling: %w", err)
	}
	reported := nodes[j]
	return &Outcome{
		Reported:    reported,
		SubtreeRoot: root,
		Pruned:      pruned,
		Matrix:      matrix,
		Nodes:       nodes,
	}, nil
}

// GroupByAncestor partitions leaf indices by their ancestor at the given
// level, preserving first-seen ancestor order. It is shared by the
// user-side customization path here and the row-wise report sessions of
// internal/session, so both derive identical precision groupings.
func GroupByAncestor(tree *loctree.Tree, leaves []loctree.NodeID, level int) ([][]int, []loctree.NodeID, error) {
	order := make([]loctree.NodeID, 0)
	groups := map[loctree.NodeID][]int{}
	for i, leaf := range leaves {
		anc, ok := tree.AncestorAt(leaf, level)
		if !ok {
			return nil, nil, fmt.Errorf("core: no ancestor of %v at level %d", leaf, level)
		}
		if _, seen := groups[anc]; !seen {
			order = append(order, anc)
		}
		groups[anc] = append(groups[anc], i)
	}
	out := make([][]int, len(order))
	for gi, anc := range order {
		out[gi] = groups[anc]
	}
	return out, order, nil
}
