package core

import (
	"errors"
	"fmt"
	"math/rand"

	"corgi/internal/geo"
	"corgi/internal/loctree"
	"corgi/internal/mechanism"
	"corgi/internal/obf"
	"corgi/internal/policy"
)

// Outcome reports one user-side obfuscation (Algorithm 4).
type Outcome struct {
	// Reported is the obfuscated location node at the policy's precision
	// level — what goes to the location-based application.
	Reported loctree.NodeID
	// SubtreeRoot is the privacy-forest entry that served this request.
	SubtreeRoot loctree.NodeID
	// Pruned is the set of leaves removed by the user's preferences.
	Pruned []loctree.NodeID
	// Matrix is the final customized matrix (pruned, precision-reduced);
	// rows/columns align with Nodes. It is an audit artifact materialized
	// from the mechanism binding's normalized rows — the draw itself never
	// builds it.
	Matrix *obf.Matrix
	// Nodes are the precision-level nodes indexing Matrix.
	Nodes []loctree.NodeID
}

// GenerateObfuscatedLocation implements Algorithm 4 on the user side: find
// the subtree containing the real location, bind the entry's matrix to
// the policy through the mechanism interface (preference pruning, Sec. 4.3
// renormalization, Equ. 17 precision reduction), and sample the reported
// node from the customized row. The row-wise binding is the same
// implementation the server's report sessions draw from; this path merely
// adds the full customized matrix to the Outcome for audits.
//
// forest must cover the policy's privacy level; attrs provides per-leaf
// attributes for preference evaluation (nil allowed when the policy has no
// preferences); priors are needed for precision reduction (Equ. 17).
func GenerateObfuscatedLocation(tree *loctree.Tree, forest *Forest, real geo.LatLng,
	pol policy.Policy, attrs map[loctree.NodeID]policy.Attributes,
	priors *loctree.Priors, rng *rand.Rand) (*Outcome, error) {
	if err := pol.Validate(tree.Height()); err != nil {
		return nil, err
	}
	if forest == nil || forest.PrivacyLevel != pol.PrivacyLevel {
		return nil, fmt.Errorf("core: forest does not match privacy level %d", pol.PrivacyLevel)
	}
	realLeaf, ok := tree.Locate(real, 0)
	if !ok {
		return nil, fmt.Errorf("core: real location %v outside the tree region", real)
	}
	root, ok := tree.AncestorAt(realLeaf, pol.PrivacyLevel)
	if !ok {
		return nil, fmt.Errorf("core: no ancestor of %v at level %d", realLeaf, pol.PrivacyLevel)
	}
	entry, ok := forest.Entries[root]
	if !ok {
		return nil, fmt.Errorf("core: forest has no entry for subtree %v", root)
	}

	// Steps 2-7: preferences, δ admission, pruning, precision reduction —
	// all inside the binding.
	b, err := mechanism.Bind(mechanism.Config{
		Tree:   tree,
		Source: entry,
		Delta:  forest.Delta,
		Policy: pol,
		Attrs:  attrs,
		Priors: priors,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Step 8: sample the row of the real location's node.
	row, err := b.RowFor(realLeaf)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	a, err := b.Alias(row)
	if err != nil {
		return nil, fmt.Errorf("core: sampling: %w", err)
	}
	nodes := b.Nodes()
	reported := nodes[a.Draw(rng)]

	// Materialize the customized matrix for the Outcome: every report
	// row's normalized distribution. A row degenerate after pruning fails
	// the whole customization, matching the old full-matrix Prune.
	m := obf.NewMatrix(len(nodes))
	for i := range nodes {
		w, err := b.Row(i)
		if err != nil {
			if errors.Is(err, mechanism.ErrUnsampleable) {
				return nil, fmt.Errorf("core: pruning: %w", err)
			}
			return nil, err
		}
		copy(m.Row(i), w)
	}
	return &Outcome{
		Reported:    reported,
		SubtreeRoot: root,
		Pruned:      b.Pruned(),
		Matrix:      m,
		Nodes:       nodes,
	}, nil
}
